# bench_smoke: runs every benchmark harness at a tiny scale and validates that each one
# produced a conforming BENCH_<name>.json. Invoked by ctest (see the bench_smoke test in the
# top-level CMakeLists.txt) as:
#
#   cmake -DBENCH_DIR=<build>/bench -DVALIDATOR=<path> -DOUT_DIR=<scratch> -P bench_smoke.cmake
#
# Fails on: a harness exiting nonzero, a harness not writing its report, or any report
# failing schema validation (schema drift between writer and validator).

foreach(var BENCH_DIR VALIDATOR OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench_smoke: ${var} not set")
  endif()
endforeach()

file(REMOVE_RECURSE ${OUT_DIR})
file(MAKE_DIRECTORY ${OUT_DIR})

file(GLOB harnesses ${BENCH_DIR}/bench_*)
list(LENGTH harnesses harness_count)
if(harness_count EQUAL 0)
  message(FATAL_ERROR "bench_smoke: no harnesses found in ${BENCH_DIR}")
endif()

# Every sim-session harness honors SLIM_TRACE; bench_micro_codec is wall-clock
# (google-benchmark) and traces nothing, so it is the one expected gap.
set(expected_traces 0)
foreach(harness ${harnesses})
  get_filename_component(name ${harness} NAME)
  set(extra_args "")
  if(name STREQUAL "bench_micro_codec")
    # Wall-clock microbenchmarks: one repetition at minimal measuring time.
    set(extra_args --benchmark_min_time=0.01)
  else()
    math(EXPR expected_traces "${expected_traces} + 1")
  endif()
  message(STATUS "bench_smoke: ${name}")
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
      SLIM_USERS=2 SLIM_MINUTES=1 SLIM_SECONDS=5 SLIM_SOAK_EVENTS=20
      SLIM_DP_FRAMES=6 SLIM_DP_REPS=3
      SLIM_CHURN_SESSIONS=2 SLIM_CHURN_CONSOLES=3 SLIM_CHURN_OPS=24
      SLIM_MIG_REPS=2 SLIM_MIG_WIDTH=160 SLIM_MIG_HEIGHT=120
      SLIM_BENCH_DIR=${OUT_DIR}
      SLIM_TRACE=${OUT_DIR}/TRACE_${name}.json
      ${harness} ${extra_args}
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench_smoke: ${name} exited with ${rc}")
  endif()
endforeach()

file(GLOB reports ${OUT_DIR}/BENCH_*.json)
list(LENGTH reports report_count)
if(NOT report_count EQUAL harness_count)
  message(FATAL_ERROR
    "bench_smoke: ${harness_count} harnesses ran but ${report_count} BENCH_*.json reports "
    "were written to ${OUT_DIR} - some harness did not emit its report")
endif()

execute_process(COMMAND ${VALIDATOR} ${reports} RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_smoke: report validation failed (${rc})")
endif()

# Every trace the harnesses wrote must load as Chrome trace JSON (parseable array,
# balanced B/E spans) — SLIM_TRACE was set above, so a harness that ignores it or writes
# a corrupt trace fails here.
file(GLOB traces ${OUT_DIR}/TRACE_*.json)
list(LENGTH traces trace_count)
if(NOT trace_count EQUAL expected_traces)
  message(FATAL_ERROR
    "bench_smoke: expected ${expected_traces} TRACE_*.json files but found ${trace_count} "
    "in ${OUT_DIR} - some harness dropped its SLIM_TRACE output")
endif()
execute_process(COMMAND ${VALIDATOR} --trace ${traces} RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_smoke: trace validation failed (${rc})")
endif()
message(STATUS "bench_smoke: ${report_count} reports and ${trace_count} traces validated")
