# bench_diff_smoke: reruns one deterministic harness at the pinned baseline scale and
# gates it against the committed report in bench/baselines/ via bench_diff. Invoked by
# ctest (see top-level CMakeLists.txt) as:
#
#   cmake -DHARNESS=<path> -DBENCH_DIFF=<path> -DBASELINE=<path> -DOUT_DIR=<scratch>
#         -P bench_diff_smoke.cmake
#
# The simulation is deterministic, so the committed baseline reproduces bit-for-bit on any
# box with the same toolchain; a tiny tolerance absorbs JSON double round-tripping. To
# refresh the baseline after an intentional behavior change, rerun the harness with the
# env below and copy the report over bench/baselines/ (bench_diff prints the drift).

foreach(var HARNESS BENCH_DIFF BASELINE OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench_diff_smoke: ${var} not set")
  endif()
endforeach()

# Optional DIFF_SKIPS: comma-separated substrings of metric names to exclude from the
# gate (forwarded as repeated `bench_diff --skip`). Used by harnesses that mix pinned
# deterministic metrics with machine-dependent timing metrics (bench_kernels gates its
# parity checksums while its GB/s and speedup numbers vary by host).
set(skip_args "")
if(DEFINED DIFF_SKIPS)
  string(REPLACE "," ";" skip_list "${DIFF_SKIPS}")
  foreach(skip ${skip_list})
    list(APPEND skip_args --skip ${skip})
  endforeach()
endif()

file(MAKE_DIRECTORY ${OUT_DIR})
get_filename_component(name ${HARNESS} NAME)

# Pinned scale: must stay in lockstep with the committed baseline's `scale` block
# (bench_diff refuses to compare mismatched knobs).
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
    SLIM_USERS=2 SLIM_MINUTES=1 SLIM_SECONDS=5 SLIM_SOAK_EVENTS=20
    SLIM_BENCH_DIR=${OUT_DIR}
    ${HARNESS}
  RESULT_VARIABLE rc
  OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_diff_smoke: ${name} exited with ${rc}")
endif()

get_filename_component(report ${BASELINE} NAME)
execute_process(
  COMMAND ${BENCH_DIFF} --tol 0.000001 ${skip_args} ${BASELINE} ${OUT_DIR}/${report}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "bench_diff_smoke: ${name} drifted from bench/baselines/${report} (${rc}); if the "
    "change is intentional, regenerate the baseline at the pinned scale")
endif()
message(STATUS "bench_diff_smoke: ${name} matches ${report}")
