// Video streaming: the Section 7 media path, including the console bandwidth allocator.
//
// A video player sends synthetic 720x480 frames to a console through the CSCS command at
// several bit depths while an interactive session shares the same console; the player asks
// the console for bandwidth the way the paper's video library did, and the allocator's
// grants are printed alongside the achieved frame rates.
//
//   ./build/examples/video_streaming

#include <cstdio>

#include "src/console/console.h"
#include "src/net/fabric.h"
#include "src/server/slim_server.h"
#include "src/sim/simulator.h"
#include "src/video/pipeline.h"
#include "src/video/video_source.h"

int main() {
  using namespace slim;

  for (const CscsDepth depth : {CscsDepth::k16, CscsDepth::k8, CscsDepth::k6}) {
    Simulator sim;
    Fabric fabric(&sim, FabricOptions{});
    SlimServer server(&sim, &fabric, ServerOptions{});
    Console console(&sim, &fabric, ConsoleOptions{});
    const uint64_t card = server.auth().IssueCard(1);
    ServerSession& session = server.CreateSession(card);
    console.InsertCard(server.node(), card);
    sim.Run();

    // The video library requests console bandwidth for its stream (Section 7's allocator):
    // estimate from frame size x target rate, exactly "based on past needs".
    const int64_t per_frame =
        static_cast<int64_t>(CscsPayloadBytes(720, 480, depth));
    const int64_t want_bps = per_frame * 8 * 30;
    server.endpoint().Send(console.node(), session.id(), BandwidthRequestMsg{1, want_bps});
    // The interactive desktop keeps a small allocation of its own.
    server.endpoint().Send(console.node(), session.id(),
                           BandwidthRequestMsg{2, 4'000'000});
    sim.Run();

    SyntheticVideoSource source(720, 480, 0x71de0);
    VideoCpuModel cpu;
    MediaPipelineOptions options;
    options.target_fps = 30.0;
    options.depth = depth;
    options.dst = Rect{40, 40, 720, 480};
    options.run_for = Seconds(10);
    MediaPipeline pipeline(&sim, &session, options, [&](int index, SimDuration* cost) {
      *cost = cpu.MpegFrameCost(720 * 480, 720 * 480);
      return source.Frame(index);
    });
    pipeline.Start();
    sim.Run();

    std::printf("CSCS %2d bpp: granted %5.1f Mbps to the stream, %4.1f Mbps to the desktop; "
                "displayed %.1f fps at %.1f Mbps, console busy %.0f%%, match=%s\n",
                BitsPerPixel(depth), console.allocator().GrantFor(1) / 1e6,
                console.allocator().GrantFor(2) / 1e6, pipeline.AchievedFps(),
                pipeline.AverageMbps(),
                100.0 * static_cast<double>(console.busy_time()) / ToSeconds(Seconds(10)) /
                    1e9,
                session.framebuffer().ContentHash() == console.framebuffer().ContentHash()
                    ? "yes"
                    : "NO");
  }
  std::printf("\nLower depths trade chroma fidelity for bandwidth; the server decode cost\n"
              "(not the console or the 100 Mbps fabric) bounds the frame rate, as in the\n"
              "paper's Section 7.1.\n");
  return 0;
}
