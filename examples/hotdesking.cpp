// Hotdesking: the SLIM mobility model (paper Section 1.1).
//
// A user works in the browser at console A, pulls the smart card mid-session, walks to
// console B across the building, and inserts the card: the screen comes back in the exact
// state it was left, because the console is stateless and the server holds the truth.
//
//   ./build/examples/hotdesking

#include <cstdio>

#include "src/apps/benchmark_apps.h"
#include "src/console/console.h"
#include "src/net/fabric.h"
#include "src/server/slim_server.h"
#include "src/sim/simulator.h"
#include "src/workload/user_model.h"

int main() {
  using namespace slim;
  Simulator sim;
  Fabric fabric(&sim, FabricOptions{});
  SlimServer server(&sim, &fabric, ServerOptions{});
  Console desk_a(&sim, &fabric, ConsoleOptions{});
  Console desk_b(&sim, &fabric, ConsoleOptions{});

  const uint64_t card = server.auth().IssueCard(42);
  ServerSession& session = server.CreateSession(card);
  auto browser = MakeApplication(AppKind::kNetscape, &session, 0xb0b);
  browser->BindInput();

  // Morning: the user sits at desk A and browses for a while.
  desk_a.InsertCard(server.node(), card);
  sim.Run();
  browser->Start();
  sim.Run();
  UserModel user(AppKind::kNetscape, Rng(0x5e55));
  for (int i = 0; i < 40; ++i) {
    const auto event = user.Next();
    sim.Schedule(event.delay, [&] {
      if (event.is_key) {
        desk_a.SendKey(server.node(), session.id(), event.keycode, true);
      } else {
        desk_a.SendMouse(server.node(), session.id(), 400 + i * 7, 300 + i * 5, 1, false);
      }
    });
    sim.Run();
  }
  const uint64_t screen_at_a = desk_a.framebuffer().ContentHash();
  std::printf("Desk A after %lld display commands: screen hash %016llx\n",
              static_cast<long long>(desk_a.commands_applied()),
              static_cast<unsigned long long>(screen_at_a));

  // The user pulls the card. Desk A keeps only soft state; the session detaches.
  desk_a.RemoveCard(server.node(), card);
  sim.Run();
  std::printf("Card removed; session attached: %s\n", session.attached() ? "yes" : "no");

  // ...walks across the building (20 simulated seconds)...
  sim.RunUntil(sim.now() + Seconds(20));

  // Inserts the card at desk B: the server repaints the full session there.
  const SimTime insert_at = sim.now();
  desk_b.InsertCard(server.node(), card);
  sim.Run();
  const SimDuration resume_latency = sim.now() - insert_at;
  std::printf("Resumed at desk B in %.1f ms of simulated time\n", ToMillis(resume_latency));

  const bool restored = desk_b.framebuffer().ContentHash() == screen_at_a &&
                        desk_b.framebuffer().ContentHash() ==
                            session.framebuffer().ContentHash();
  std::printf("Screen restored exactly: %s\n", restored ? "yes" : "NO (bug!)");

  // A forged card at desk A gets nothing.
  desk_a.InsertCard(server.node(), 0xbadbadbad);
  sim.Run();
  std::printf("Forged card rejected: %s (auth rejects: %lld)\n",
              server.SessionForCard(0xbadbadbad) == nullptr ? "yes" : "no",
              static_cast<long long>(server.auth().rejected()));
  return restored ? 0 : 1;
}
