// Quake on SLIM: the Section 7.3 pipeline end to end, with an ASCII peek at the frames.
//
// The raycasting engine renders 8-bit indexed frames, the translation layer turns the
// palette into YUV via table lookup, and the frames stream to a simulated console as 5 bpp
// CSCS commands. One decoded console frame is dumped as ASCII art so you can see that real
// pixels made the trip.
//
//   ./build/examples/quake_demo

#include <cstdio>

#include "src/console/console.h"
#include "src/net/fabric.h"
#include "src/quake/raycaster.h"
#include "src/server/slim_server.h"
#include "src/sim/simulator.h"
#include "src/video/pipeline.h"
#include "src/video/video_source.h"

namespace {

// Luma-ramp ASCII dump of a framebuffer region, downsampled to 76x24.
void DumpAscii(const slim::Framebuffer& fb, const slim::Rect& r) {
  static constexpr char kRamp[] = " .:-=+*#%@";
  for (int32_t row = 0; row < 24; ++row) {
    for (int32_t col = 0; col < 76; ++col) {
      const int32_t x = r.x + col * r.w / 76;
      const int32_t y = r.y + row * r.h / 24;
      const slim::Pixel p = fb.GetPixel(x, y);
      const int luma =
          (2 * slim::PixelR(p) + 5 * slim::PixelG(p) + slim::PixelB(p)) / 8;
      std::putchar(kRamp[luma * (sizeof(kRamp) - 2) / 255]);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main() {
  using namespace slim;
  Simulator sim;
  Fabric fabric(&sim, FabricOptions{});
  SlimServer server(&sim, &fabric, ServerOptions{});
  Console console(&sim, &fabric, ConsoleOptions{});
  const uint64_t card = server.auth().IssueCard(1);
  ServerSession& session = server.CreateSession(card);
  console.InsertCard(server.node(), card);
  sim.Run();

  constexpr int32_t kW = 480;
  constexpr int32_t kH = 360;
  RaycastEngine engine(kW, kH);
  YuvTranslationLayer translation(engine.palette());
  VideoCpuModel cpu;

  MediaPipelineOptions options;
  options.target_fps = 60.0;  // the game runs as fast as the server allows
  options.depth = CscsDepth::k5;
  options.dst = Rect{80, 60, kW, kH};
  options.run_for = Seconds(10);
  MediaPipeline pipeline(&sim, &session, options, [&](int index, SimDuration* cost) {
    const Camera camera = engine.DemoCamera(index);
    const auto frame = engine.RenderFrame(camera);
    const int64_t pixels = static_cast<int64_t>(kW) * kH;
    *cost = static_cast<SimDuration>((40.0 * engine.SceneComplexity(camera) + 25.0) *
                                     static_cast<double>(pixels)) +
            cpu.QuakeTranslateCost(pixels);
    return translation.Translate(frame, kW, kH);
  });
  pipeline.Start();
  sim.Run();

  std::printf("Quake at %dx%d over SLIM (5 bpp CSCS): %.1f fps, %.1f Mbps, %d frames sent, "
              "%d dropped to pace the server\n\n",
              kW, kH, pipeline.AchievedFps(), pipeline.AverageMbps(), pipeline.frames_sent(),
              pipeline.frames_dropped());
  std::printf("Last frame as decoded by the console:\n");
  DumpAscii(console.framebuffer(), options.dst);
  const bool match =
      session.framebuffer().ContentHash() == console.framebuffer().ContentHash();
  std::printf("\nConsole pixels match server truth: %s\n", match ? "yes" : "NO (bug!)");
  return match ? 0 : 1;
}
