// The paper's measurement workflow, end to end: run a user study once, save the raw
// protocol traces to disk, then answer analysis questions by post-processing the files —
// without re-running any simulation (Section 3.1: "we can investigate different aspects of
// the system by post-processing the data, rather than conducting more user studies").
//
//   ./build/examples/trace_workflow [trace_dir]

#include <cstdio>
#include <string>

#include "src/trace/trace_file.h"
#include "src/util/stats.h"
#include "src/workload/user_study.h"

int main(int argc, char** argv) {
  using namespace slim;
  const std::string dir = argc > 1 ? argv[1] : "/tmp";

  // Phase 1: the expensive part — run three Netscape users for two simulated minutes each
  // and write their instrumented logs to disk.
  std::printf("Phase 1: running the user study and saving traces to %s ...\n", dir.c_str());
  std::vector<std::string> trace_paths;
  for (int user = 0; user < 3; ++user) {
    UserSessionConfig config;
    config.kind = AppKind::kNetscape;
    config.seed = 100 + static_cast<uint64_t>(user);
    config.duration = Seconds(120);
    const UserSessionResult result = RunUserSession(config);
    const std::string path = dir + "/slim_user" + std::to_string(user) + ".trace";
    if (!WriteFile(path, SerializeLog(result.log))) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    trace_paths.push_back(path);
    std::printf("  user %d: %lld input events, %zu log entries -> %s\n", user,
                static_cast<long long>(result.log.input_events()),
                result.log.entries().size(), path.c_str());
  }

  // Phase 2: the cheap part — reload the traces and answer three different questions.
  std::printf("\nPhase 2: post-processing the saved traces (no simulation involved)\n");
  RunningStats bandwidth;
  RunningStats event_bytes;
  int64_t copy_savings = 0;
  for (const std::string& path : trace_paths) {
    const auto bytes = ReadFile(path);
    if (!bytes.has_value()) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 1;
    }
    const auto log = ParseLog(*bytes);
    if (!log.has_value()) {
      std::fprintf(stderr, "corrupt trace %s\n", path.c_str());
      return 1;
    }
    // Question 1: average protocol bandwidth (Figure 8's SLIM column).
    bandwidth.Add(log->AverageSlimBps());
    // Question 2: bytes per input event (Figure 5).
    for (const auto& update : log->AttributeToEvents()) {
      event_bytes.Add(static_cast<double>(update.slim_bytes));
    }
    // Question 3: how much did COPY save over resending scrolled pixels (Figure 4)?
    ProtocolLog::TypeTotals totals[6];
    log->TotalsByType(totals);
    const auto& copy = totals[static_cast<size_t>(CommandType::kCopy)];
    copy_savings += copy.uncompressed_bytes - copy.wire_bytes;
  }
  std::printf("  Q1 average SLIM bandwidth: %.3f Mbps\n", bandwidth.mean() / 1e6);
  std::printf("  Q2 bytes per input event:  mean %.0f B, max %.0f B\n", event_bytes.mean(),
              event_bytes.max());
  std::printf("  Q3 bytes COPY saved vs resending scrolled pixels: %.2f MB\n",
              static_cast<double>(copy_savings) / 1e6);
  std::printf("\nThe traces on disk can now be re-analyzed any number of times;\n"
              "that is the paper's methodology for making user studies affordable.\n");
  return 0;
}
