// Quickstart: the smallest complete SLIM system.
//
// Builds a simulated 100 Mbps interconnection fabric with one server and one console,
// authenticates a smart card, draws through the server session's device-driver API, and
// verifies that the stateless console converged to the exact same pixels.
//
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "src/apps/content.h"
#include "src/apps/font.h"
#include "src/console/console.h"
#include "src/net/fabric.h"
#include "src/server/slim_server.h"
#include "src/sim/simulator.h"

int main() {
  using namespace slim;

  // 1. The simulated world: a discrete-event clock and a switched 100 Mbps fabric.
  Simulator sim;
  Fabric fabric(&sim, FabricOptions{});

  // 2. One server and one stateless console on the fabric.
  SlimServer server(&sim, &fabric, ServerOptions{});
  Console console(&sim, &fabric, ConsoleOptions{});

  // 3. Authentication: issue a smart card, create the user's session, insert the card.
  const uint64_t card = server.auth().IssueCard(/*user_number=*/1);
  ServerSession& session = server.CreateSession(card);
  console.InsertCard(server.node(), card);
  sim.Run();  // attach handshake + initial repaint
  std::printf("Console attached: %s\n", session.attached() ? "yes" : "no");

  // 4. Draw through the device-driver API: fills, text, an image, a scroll.
  session.FillRect(Rect{0, 0, 1280, 1024}, UiBackground());
  session.FillRect(Rect{100, 100, 600, 400}, kWhite);
  const Font& font = DefaultFont();
  const auto glyphs = font.Shape("hello from the slim server");
  session.DrawGlyphs(120, 120, glyphs, UiText(), kWhite);
  Rng rng(7);
  session.PutImage(Rect{120, 160, 256, 192}, MakePhotoBlock(&rng, 256, 192));
  session.CopyArea(120, 160, Rect{420, 160, 256, 192});
  session.Flush();
  sim.Run();  // everything encodes, travels the fabric, and decodes

  // 5. The console's soft state now equals the server's true state, pixel for pixel.
  const bool match = session.framebuffer().ContentHash() == console.framebuffer().ContentHash();
  std::printf("Framebuffers match: %s\n", match ? "yes" : "NO (bug!)");

  // 6. What it cost on the wire.
  std::printf("Commands sent: %lld (%lld bytes on the wire)\n",
              static_cast<long long>(session.commands_sent()),
              static_cast<long long>(session.bytes_sent()));
  ProtocolLog::TypeTotals totals[6];
  session.log().TotalsByType(totals);
  for (const CommandType type : {CommandType::kSet, CommandType::kBitmap, CommandType::kFill,
                                 CommandType::kCopy, CommandType::kCscs}) {
    const auto& t = totals[static_cast<size_t>(type)];
    if (t.commands > 0) {
      std::printf("  %-6s x%-4lld %8lld bytes (raw pixels: %lld)\n", CommandTypeName(type),
                  static_cast<long long>(t.commands), static_cast<long long>(t.wire_bytes),
                  static_cast<long long>(t.uncompressed_bytes));
    }
  }
  std::printf("Simulated time elapsed: %.2f ms\n", ToMillis(sim.now()));
  return match ? 0 : 1;
}
