
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/benchmark_apps.cc" "src/CMakeFiles/slim.dir/apps/benchmark_apps.cc.o" "gcc" "src/CMakeFiles/slim.dir/apps/benchmark_apps.cc.o.d"
  "/root/repo/src/apps/content.cc" "src/CMakeFiles/slim.dir/apps/content.cc.o" "gcc" "src/CMakeFiles/slim.dir/apps/content.cc.o.d"
  "/root/repo/src/apps/font.cc" "src/CMakeFiles/slim.dir/apps/font.cc.o" "gcc" "src/CMakeFiles/slim.dir/apps/font.cc.o.d"
  "/root/repo/src/codec/decoder.cc" "src/CMakeFiles/slim.dir/codec/decoder.cc.o" "gcc" "src/CMakeFiles/slim.dir/codec/decoder.cc.o.d"
  "/root/repo/src/codec/encoder.cc" "src/CMakeFiles/slim.dir/codec/encoder.cc.o" "gcc" "src/CMakeFiles/slim.dir/codec/encoder.cc.o.d"
  "/root/repo/src/codec/parallel.cc" "src/CMakeFiles/slim.dir/codec/parallel.cc.o" "gcc" "src/CMakeFiles/slim.dir/codec/parallel.cc.o.d"
  "/root/repo/src/color/yuv.cc" "src/CMakeFiles/slim.dir/color/yuv.cc.o" "gcc" "src/CMakeFiles/slim.dir/color/yuv.cc.o.d"
  "/root/repo/src/console/bandwidth.cc" "src/CMakeFiles/slim.dir/console/bandwidth.cc.o" "gcc" "src/CMakeFiles/slim.dir/console/bandwidth.cc.o.d"
  "/root/repo/src/console/console.cc" "src/CMakeFiles/slim.dir/console/console.cc.o" "gcc" "src/CMakeFiles/slim.dir/console/console.cc.o.d"
  "/root/repo/src/console/cost_model.cc" "src/CMakeFiles/slim.dir/console/cost_model.cc.o" "gcc" "src/CMakeFiles/slim.dir/console/cost_model.cc.o.d"
  "/root/repo/src/fb/framebuffer.cc" "src/CMakeFiles/slim.dir/fb/framebuffer.cc.o" "gcc" "src/CMakeFiles/slim.dir/fb/framebuffer.cc.o.d"
  "/root/repo/src/fb/geometry.cc" "src/CMakeFiles/slim.dir/fb/geometry.cc.o" "gcc" "src/CMakeFiles/slim.dir/fb/geometry.cc.o.d"
  "/root/repo/src/loadgen/loadgen.cc" "src/CMakeFiles/slim.dir/loadgen/loadgen.cc.o" "gcc" "src/CMakeFiles/slim.dir/loadgen/loadgen.cc.o.d"
  "/root/repo/src/loadgen/profile.cc" "src/CMakeFiles/slim.dir/loadgen/profile.cc.o" "gcc" "src/CMakeFiles/slim.dir/loadgen/profile.cc.o.d"
  "/root/repo/src/net/fabric.cc" "src/CMakeFiles/slim.dir/net/fabric.cc.o" "gcc" "src/CMakeFiles/slim.dir/net/fabric.cc.o.d"
  "/root/repo/src/net/transport.cc" "src/CMakeFiles/slim.dir/net/transport.cc.o" "gcc" "src/CMakeFiles/slim.dir/net/transport.cc.o.d"
  "/root/repo/src/obs/bench_report.cc" "src/CMakeFiles/slim.dir/obs/bench_report.cc.o" "gcc" "src/CMakeFiles/slim.dir/obs/bench_report.cc.o.d"
  "/root/repo/src/obs/json.cc" "src/CMakeFiles/slim.dir/obs/json.cc.o" "gcc" "src/CMakeFiles/slim.dir/obs/json.cc.o.d"
  "/root/repo/src/obs/metrics.cc" "src/CMakeFiles/slim.dir/obs/metrics.cc.o" "gcc" "src/CMakeFiles/slim.dir/obs/metrics.cc.o.d"
  "/root/repo/src/obs/trace.cc" "src/CMakeFiles/slim.dir/obs/trace.cc.o" "gcc" "src/CMakeFiles/slim.dir/obs/trace.cc.o.d"
  "/root/repo/src/protocol/commands.cc" "src/CMakeFiles/slim.dir/protocol/commands.cc.o" "gcc" "src/CMakeFiles/slim.dir/protocol/commands.cc.o.d"
  "/root/repo/src/protocol/messages.cc" "src/CMakeFiles/slim.dir/protocol/messages.cc.o" "gcc" "src/CMakeFiles/slim.dir/protocol/messages.cc.o.d"
  "/root/repo/src/protocol/wire.cc" "src/CMakeFiles/slim.dir/protocol/wire.cc.o" "gcc" "src/CMakeFiles/slim.dir/protocol/wire.cc.o.d"
  "/root/repo/src/quake/raycaster.cc" "src/CMakeFiles/slim.dir/quake/raycaster.cc.o" "gcc" "src/CMakeFiles/slim.dir/quake/raycaster.cc.o.d"
  "/root/repo/src/sched/scheduler.cc" "src/CMakeFiles/slim.dir/sched/scheduler.cc.o" "gcc" "src/CMakeFiles/slim.dir/sched/scheduler.cc.o.d"
  "/root/repo/src/server/session.cc" "src/CMakeFiles/slim.dir/server/session.cc.o" "gcc" "src/CMakeFiles/slim.dir/server/session.cc.o.d"
  "/root/repo/src/server/slim_server.cc" "src/CMakeFiles/slim.dir/server/slim_server.cc.o" "gcc" "src/CMakeFiles/slim.dir/server/slim_server.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/slim.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/slim.dir/sim/simulator.cc.o.d"
  "/root/repo/src/trace/protocol_log.cc" "src/CMakeFiles/slim.dir/trace/protocol_log.cc.o" "gcc" "src/CMakeFiles/slim.dir/trace/protocol_log.cc.o.d"
  "/root/repo/src/trace/trace_file.cc" "src/CMakeFiles/slim.dir/trace/trace_file.cc.o" "gcc" "src/CMakeFiles/slim.dir/trace/trace_file.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/CMakeFiles/slim.dir/util/histogram.cc.o" "gcc" "src/CMakeFiles/slim.dir/util/histogram.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/slim.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/slim.dir/util/rng.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/slim.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/slim.dir/util/stats.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/slim.dir/util/table.cc.o" "gcc" "src/CMakeFiles/slim.dir/util/table.cc.o.d"
  "/root/repo/src/video/pipeline.cc" "src/CMakeFiles/slim.dir/video/pipeline.cc.o" "gcc" "src/CMakeFiles/slim.dir/video/pipeline.cc.o.d"
  "/root/repo/src/video/video_source.cc" "src/CMakeFiles/slim.dir/video/video_source.cc.o" "gcc" "src/CMakeFiles/slim.dir/video/video_source.cc.o.d"
  "/root/repo/src/vnc/vnc.cc" "src/CMakeFiles/slim.dir/vnc/vnc.cc.o" "gcc" "src/CMakeFiles/slim.dir/vnc/vnc.cc.o.d"
  "/root/repo/src/workload/user_model.cc" "src/CMakeFiles/slim.dir/workload/user_model.cc.o" "gcc" "src/CMakeFiles/slim.dir/workload/user_model.cc.o.d"
  "/root/repo/src/workload/user_study.cc" "src/CMakeFiles/slim.dir/workload/user_study.cc.o" "gcc" "src/CMakeFiles/slim.dir/workload/user_study.cc.o.d"
  "/root/repo/src/xproto/xcost.cc" "src/CMakeFiles/slim.dir/xproto/xcost.cc.o" "gcc" "src/CMakeFiles/slim.dir/xproto/xcost.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
