file(REMOVE_RECURSE
  "libslim.a"
)
