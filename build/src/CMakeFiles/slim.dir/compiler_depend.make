# Empty compiler generated dependencies file for slim.
# This may be replaced when dependencies are built.
