# Empty dependencies file for slim.
# This may be replaced when dependencies are built.
