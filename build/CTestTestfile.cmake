# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke "/usr/bin/cmake" "-DBENCH_DIR=/root/repo/build/bench" "-DVALIDATOR=/root/repo/build/validate_bench_json" "-DOUT_DIR=/root/repo/build/bench_smoke" "-P" "/root/repo/cmake/bench_smoke.cmake")
set_tests_properties(bench_smoke PROPERTIES  TIMEOUT "900" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;68;add_test;/root/repo/CMakeLists.txt;0;")
subdirs("src")
subdirs("tests")
subdirs("examples")
