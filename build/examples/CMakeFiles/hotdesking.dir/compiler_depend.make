# Empty compiler generated dependencies file for hotdesking.
# This may be replaced when dependencies are built.
