file(REMOVE_RECURSE
  "CMakeFiles/hotdesking.dir/hotdesking.cpp.o"
  "CMakeFiles/hotdesking.dir/hotdesking.cpp.o.d"
  "hotdesking"
  "hotdesking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotdesking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
