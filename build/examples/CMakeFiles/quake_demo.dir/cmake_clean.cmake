file(REMOVE_RECURSE
  "CMakeFiles/quake_demo.dir/quake_demo.cpp.o"
  "CMakeFiles/quake_demo.dir/quake_demo.cpp.o.d"
  "quake_demo"
  "quake_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quake_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
