# Empty compiler generated dependencies file for quake_demo.
# This may be replaced when dependencies are built.
