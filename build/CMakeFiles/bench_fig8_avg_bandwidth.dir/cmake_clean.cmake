file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_avg_bandwidth.dir/bench/bench_fig8_avg_bandwidth.cc.o"
  "CMakeFiles/bench_fig8_avg_bandwidth.dir/bench/bench_fig8_avg_bandwidth.cc.o.d"
  "bench/bench_fig8_avg_bandwidth"
  "bench/bench_fig8_avg_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_avg_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
