file(REMOVE_RECURSE
  "CMakeFiles/bench_encoder_scaling.dir/bench/bench_encoder_scaling.cc.o"
  "CMakeFiles/bench_encoder_scaling.dir/bench/bench_encoder_scaling.cc.o.d"
  "bench/bench_encoder_scaling"
  "bench/bench_encoder_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_encoder_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
