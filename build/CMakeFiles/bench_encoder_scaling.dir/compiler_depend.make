# Empty compiler generated dependencies file for bench_encoder_scaling.
# This may be replaced when dependencies are built.
