# Empty dependencies file for bench_chaos_soak.
# This may be replaced when dependencies are built.
