file(REMOVE_RECURSE
  "CMakeFiles/bench_chaos_soak.dir/bench/bench_chaos_soak.cc.o"
  "CMakeFiles/bench_chaos_soak.dir/bench/bench_chaos_soak.cc.o.d"
  "bench/bench_chaos_soak"
  "bench/bench_chaos_soak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chaos_soak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
