# Empty dependencies file for bench_fig7_service_times.
# This may be replaced when dependencies are built.
