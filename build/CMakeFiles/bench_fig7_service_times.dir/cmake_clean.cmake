file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_service_times.dir/bench/bench_fig7_service_times.cc.o"
  "CMakeFiles/bench_fig7_service_times.dir/bench/bench_fig7_service_times.cc.o.d"
  "bench/bench_fig7_service_times"
  "bench/bench_fig7_service_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_service_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
