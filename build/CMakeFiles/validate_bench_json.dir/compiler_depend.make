# Empty compiler generated dependencies file for validate_bench_json.
# This may be replaced when dependencies are built.
