file(REMOVE_RECURSE
  "CMakeFiles/validate_bench_json.dir/tools/validate_bench_json.cc.o"
  "CMakeFiles/validate_bench_json.dir/tools/validate_bench_json.cc.o.d"
  "validate_bench_json"
  "validate_bench_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_bench_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
