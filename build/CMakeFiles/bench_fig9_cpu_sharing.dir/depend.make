# Empty dependencies file for bench_fig9_cpu_sharing.
# This may be replaced when dependencies are built.
