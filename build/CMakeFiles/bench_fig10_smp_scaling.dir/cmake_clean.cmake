file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_smp_scaling.dir/bench/bench_fig10_smp_scaling.cc.o"
  "CMakeFiles/bench_fig10_smp_scaling.dir/bench/bench_fig10_smp_scaling.cc.o.d"
  "bench/bench_fig10_smp_scaling"
  "bench/bench_fig10_smp_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_smp_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
