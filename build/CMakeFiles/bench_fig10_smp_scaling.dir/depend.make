# Empty dependencies file for bench_fig10_smp_scaling.
# This may be replaced when dependencies are built.
