# Empty compiler generated dependencies file for bench_fig11_if_sharing.
# This may be replaced when dependencies are built.
