file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_if_sharing.dir/bench/bench_fig11_if_sharing.cc.o"
  "CMakeFiles/bench_fig11_if_sharing.dir/bench/bench_fig11_if_sharing.cc.o.d"
  "bench/bench_fig11_if_sharing"
  "bench/bench_fig11_if_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_if_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
