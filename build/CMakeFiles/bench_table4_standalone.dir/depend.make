# Empty dependencies file for bench_table4_standalone.
# This may be replaced when dependencies are built.
