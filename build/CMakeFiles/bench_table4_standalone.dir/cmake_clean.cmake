file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_standalone.dir/bench/bench_table4_standalone.cc.o"
  "CMakeFiles/bench_table4_standalone.dir/bench/bench_table4_standalone.cc.o.d"
  "bench/bench_table4_standalone"
  "bench/bench_table4_standalone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_standalone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
