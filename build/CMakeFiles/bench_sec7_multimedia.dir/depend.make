# Empty dependencies file for bench_sec7_multimedia.
# This may be replaced when dependencies are built.
