file(REMOVE_RECURSE
  "CMakeFiles/bench_sec7_multimedia.dir/bench/bench_sec7_multimedia.cc.o"
  "CMakeFiles/bench_sec7_multimedia.dir/bench/bench_sec7_multimedia.cc.o.d"
  "bench/bench_sec7_multimedia"
  "bench/bench_sec7_multimedia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec7_multimedia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
