file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_bytes_per_event.dir/bench/bench_fig5_bytes_per_event.cc.o"
  "CMakeFiles/bench_fig5_bytes_per_event.dir/bench/bench_fig5_bytes_per_event.cc.o.d"
  "bench/bench_fig5_bytes_per_event"
  "bench/bench_fig5_bytes_per_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_bytes_per_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
