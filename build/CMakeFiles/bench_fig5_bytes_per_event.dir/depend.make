# Empty dependencies file for bench_fig5_bytes_per_event.
# This may be replaced when dependencies are built.
