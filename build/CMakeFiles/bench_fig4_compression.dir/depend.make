# Empty dependencies file for bench_fig4_compression.
# This may be replaced when dependencies are built.
