file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_compression.dir/bench/bench_fig4_compression.cc.o"
  "CMakeFiles/bench_fig4_compression.dir/bench/bench_fig4_compression.cc.o.d"
  "bench/bench_fig4_compression"
  "bench/bench_fig4_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
