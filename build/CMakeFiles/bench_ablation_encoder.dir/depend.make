# Empty dependencies file for bench_ablation_encoder.
# This may be replaced when dependencies are built.
