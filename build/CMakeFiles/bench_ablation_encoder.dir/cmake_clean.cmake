file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_encoder.dir/bench/bench_ablation_encoder.cc.o"
  "CMakeFiles/bench_ablation_encoder.dir/bench/bench_ablation_encoder.cc.o.d"
  "bench/bench_ablation_encoder"
  "bench/bench_ablation_encoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_encoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
