file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_case_studies.dir/bench/bench_fig12_case_studies.cc.o"
  "CMakeFiles/bench_fig12_case_studies.dir/bench/bench_fig12_case_studies.cc.o.d"
  "bench/bench_fig12_case_studies"
  "bench/bench_fig12_case_studies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_case_studies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
