# Empty compiler generated dependencies file for bench_fig12_case_studies.
# This may be replaced when dependencies are built.
