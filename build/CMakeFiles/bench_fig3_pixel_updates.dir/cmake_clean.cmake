file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_pixel_updates.dir/bench/bench_fig3_pixel_updates.cc.o"
  "CMakeFiles/bench_fig3_pixel_updates.dir/bench/bench_fig3_pixel_updates.cc.o.d"
  "bench/bench_fig3_pixel_updates"
  "bench/bench_fig3_pixel_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_pixel_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
