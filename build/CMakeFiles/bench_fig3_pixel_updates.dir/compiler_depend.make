# Empty compiler generated dependencies file for bench_fig3_pixel_updates.
# This may be replaced when dependencies are built.
