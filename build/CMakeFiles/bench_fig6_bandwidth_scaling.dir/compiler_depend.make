# Empty compiler generated dependencies file for bench_fig6_bandwidth_scaling.
# This may be replaced when dependencies are built.
