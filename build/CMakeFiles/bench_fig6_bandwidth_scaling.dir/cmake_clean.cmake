file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_bandwidth_scaling.dir/bench/bench_fig6_bandwidth_scaling.cc.o"
  "CMakeFiles/bench_fig6_bandwidth_scaling.dir/bench/bench_fig6_bandwidth_scaling.cc.o.d"
  "bench/bench_fig6_bandwidth_scaling"
  "bench/bench_fig6_bandwidth_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_bandwidth_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
