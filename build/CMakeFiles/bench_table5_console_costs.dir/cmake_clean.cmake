file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_console_costs.dir/bench/bench_table5_console_costs.cc.o"
  "CMakeFiles/bench_table5_console_costs.dir/bench/bench_table5_console_costs.cc.o.d"
  "bench/bench_table5_console_costs"
  "bench/bench_table5_console_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_console_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
