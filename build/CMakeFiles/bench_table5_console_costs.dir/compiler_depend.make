# Empty compiler generated dependencies file for bench_table5_console_costs.
# This may be replaced when dependencies are built.
