# Empty dependencies file for bench_related_vnc.
# This may be replaced when dependencies are built.
