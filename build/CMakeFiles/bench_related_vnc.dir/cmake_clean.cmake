file(REMOVE_RECURSE
  "CMakeFiles/bench_related_vnc.dir/bench/bench_related_vnc.cc.o"
  "CMakeFiles/bench_related_vnc.dir/bench/bench_related_vnc.cc.o.d"
  "bench/bench_related_vnc"
  "bench/bench_related_vnc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_related_vnc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
