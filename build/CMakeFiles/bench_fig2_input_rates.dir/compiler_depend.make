# Empty compiler generated dependencies file for bench_fig2_input_rates.
# This may be replaced when dependencies are built.
