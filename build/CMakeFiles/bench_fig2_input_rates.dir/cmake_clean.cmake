file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_input_rates.dir/bench/bench_fig2_input_rates.cc.o"
  "CMakeFiles/bench_fig2_input_rates.dir/bench/bench_fig2_input_rates.cc.o.d"
  "bench/bench_fig2_input_rates"
  "bench/bench_fig2_input_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_input_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
