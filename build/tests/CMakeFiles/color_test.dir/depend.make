# Empty dependencies file for color_test.
# This may be replaced when dependencies are built.
