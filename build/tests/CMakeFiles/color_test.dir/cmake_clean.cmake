file(REMOVE_RECURSE
  "CMakeFiles/color_test.dir/color_test.cc.o"
  "CMakeFiles/color_test.dir/color_test.cc.o.d"
  "color_test"
  "color_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/color_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
