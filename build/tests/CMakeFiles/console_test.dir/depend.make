# Empty dependencies file for console_test.
# This may be replaced when dependencies are built.
