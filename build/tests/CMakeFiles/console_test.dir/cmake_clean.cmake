file(REMOVE_RECURSE
  "CMakeFiles/console_test.dir/console_test.cc.o"
  "CMakeFiles/console_test.dir/console_test.cc.o.d"
  "console_test"
  "console_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/console_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
