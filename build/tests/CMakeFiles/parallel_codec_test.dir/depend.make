# Empty dependencies file for parallel_codec_test.
# This may be replaced when dependencies are built.
