file(REMOVE_RECURSE
  "CMakeFiles/parallel_codec_test.dir/parallel_codec_test.cc.o"
  "CMakeFiles/parallel_codec_test.dir/parallel_codec_test.cc.o.d"
  "parallel_codec_test"
  "parallel_codec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
