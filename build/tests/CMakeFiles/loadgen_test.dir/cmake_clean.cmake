file(REMOVE_RECURSE
  "CMakeFiles/loadgen_test.dir/loadgen_test.cc.o"
  "CMakeFiles/loadgen_test.dir/loadgen_test.cc.o.d"
  "loadgen_test"
  "loadgen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loadgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
