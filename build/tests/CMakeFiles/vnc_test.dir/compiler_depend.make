# Empty compiler generated dependencies file for vnc_test.
# This may be replaced when dependencies are built.
