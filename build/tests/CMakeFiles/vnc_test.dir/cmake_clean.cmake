file(REMOVE_RECURSE
  "CMakeFiles/vnc_test.dir/vnc_test.cc.o"
  "CMakeFiles/vnc_test.dir/vnc_test.cc.o.d"
  "vnc_test"
  "vnc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
