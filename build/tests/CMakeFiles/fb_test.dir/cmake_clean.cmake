file(REMOVE_RECURSE
  "CMakeFiles/fb_test.dir/fb_test.cc.o"
  "CMakeFiles/fb_test.dir/fb_test.cc.o.d"
  "fb_test"
  "fb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
