# Empty dependencies file for fb_test.
# This may be replaced when dependencies are built.
