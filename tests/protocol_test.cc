// Tests for wire primitives and SLIM message serialization.

#include <gtest/gtest.h>

#include "src/protocol/messages.h"
#include "src/protocol/wire.h"
#include "src/server/checkpoint.h"
#include "src/util/rng.h"

namespace slim {
namespace {

TEST(WireTest, RoundTripScalars) {
  ByteWriter w;
  w.U8(0xab);
  w.U16(0x1234);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefull);
  w.I32(-42);
  w.I64(-1'000'000'000'000);
  const auto buf = w.Take();
  ByteReader r(buf);
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U16(), 0x1234);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.I32(), -42);
  EXPECT_EQ(r.I64(), -1'000'000'000'000);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireTest, LittleEndianLayout) {
  ByteWriter w;
  w.U32(0x04030201);
  const auto buf = w.data();
  EXPECT_EQ(buf[0], 1);
  EXPECT_EQ(buf[1], 2);
  EXPECT_EQ(buf[2], 3);
  EXPECT_EQ(buf[3], 4);
}

TEST(WireTest, ReadPastEndSetsNotOk) {
  const std::vector<uint8_t> buf{1, 2};
  ByteReader r(buf);
  EXPECT_EQ(r.U32(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(WireTest, OkStaysFalseAfterFailure) {
  const std::vector<uint8_t> buf{1, 2, 3, 4, 5};
  ByteReader r(buf);
  r.U32();
  r.U32();  // fails
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U8(), 0);  // subsequent reads also return zero
}

Message RoundTrip(const Message& msg) {
  const auto bytes = SerializeMessage(msg);
  EXPECT_EQ(bytes.size(), MessageWireSize(msg));
  auto parsed = ParseMessage(bytes);
  EXPECT_TRUE(parsed.has_value());
  return *parsed;
}

TEST(MessageTest, FillRoundTrip) {
  Message msg;
  msg.session_id = 7;
  msg.seq = 99;
  msg.body = FillCommand{Rect{1, 2, 30, 40}, MakePixel(9, 8, 7)};
  const Message back = RoundTrip(msg);
  EXPECT_EQ(back.session_id, 7u);
  EXPECT_EQ(back.seq, 99u);
  EXPECT_EQ(std::get<FillCommand>(back.body), std::get<FillCommand>(msg.body));
}

TEST(MessageTest, SetRoundTripPreservesPixels) {
  Rng rng(3);
  SetCommand cmd;
  cmd.dst = Rect{5, 6, 4, 3};
  for (int i = 0; i < 4 * 3 * 3; ++i) {
    cmd.rgb.push_back(static_cast<uint8_t>(rng.NextBelow(256)));
  }
  Message msg{1, 2, cmd};
  const Message back = RoundTrip(msg);
  EXPECT_EQ(std::get<SetCommand>(back.body), cmd);
}

TEST(MessageTest, BitmapRoundTrip) {
  BitmapCommand cmd;
  cmd.dst = Rect{0, 0, 12, 5};
  cmd.fg = kWhite;
  cmd.bg = MakePixel(1, 2, 3);
  cmd.bits.assign(2 * 5, 0x5a);
  Message msg{3, 4, cmd};
  EXPECT_EQ(std::get<BitmapCommand>(RoundTrip(msg).body), cmd);
}

TEST(MessageTest, CopyRoundTrip) {
  const CopyCommand cmd{-4, 10, Rect{8, 8, 100, 50}};
  Message msg{1, 1, cmd};
  EXPECT_EQ(std::get<CopyCommand>(RoundTrip(msg).body), cmd);
}

TEST(MessageTest, CscsRoundTripAllDepths) {
  for (const CscsDepth depth : {CscsDepth::k16, CscsDepth::k12, CscsDepth::k8, CscsDepth::k6,
                                CscsDepth::k5}) {
    CscsCommand cmd;
    cmd.src_w = 16;
    cmd.src_h = 8;
    cmd.dst = Rect{0, 0, 32, 16};
    cmd.depth = depth;
    cmd.payload.assign(CscsPayloadBytes(16, 8, depth), 0x3c);
    Message msg{1, 5, cmd};
    EXPECT_EQ(std::get<CscsCommand>(RoundTrip(msg).body), cmd);
  }
}

TEST(MessageTest, InputAndControlRoundTrips) {
  EXPECT_EQ(std::get<KeyEventMsg>(RoundTrip(Message{1, 1, KeyEventMsg{65, true}}).body),
            (KeyEventMsg{65, true}));
  EXPECT_EQ(
      std::get<MouseEventMsg>(RoundTrip(Message{1, 2, MouseEventMsg{10, -2, 3, true}}).body),
      (MouseEventMsg{10, -2, 3, true}));
  EXPECT_EQ(std::get<StatusMsg>(RoundTrip(Message{1, 3, StatusMsg{2, 888}}).body),
            (StatusMsg{2, 888}));
  EXPECT_EQ(std::get<NackMsg>(RoundTrip(Message{1, 0, NackMsg{5, 9}}).body), (NackMsg{5, 9}));
  EXPECT_EQ(
      std::get<SessionAttachMsg>(RoundTrip(Message{0, 4, SessionAttachMsg{0xcafe}}).body),
      (SessionAttachMsg{0xcafe}));
  EXPECT_EQ(std::get<BandwidthRequestMsg>(
                RoundTrip(Message{1, 5, BandwidthRequestMsg{7, 20'000'000}}).body),
            (BandwidthRequestMsg{7, 20'000'000}));
  EXPECT_EQ(std::get<BandwidthGrantMsg>(
                RoundTrip(Message{1, 6, BandwidthGrantMsg{7, 10'000'000, 100'000'000}}).body),
            (BandwidthGrantMsg{7, 10'000'000, 100'000'000}));
  EXPECT_EQ(std::get<PingMsg>(RoundTrip(Message{1, 7, PingMsg{42}}).body), (PingMsg{42}));
  EXPECT_EQ(std::get<PongMsg>(RoundTrip(Message{1, 8, PongMsg{42}}).body), (PongMsg{42}));
}

TEST(MessageTest, SessionReleaseRoundTripsEveryReason) {
  for (const ReleaseReason reason :
       {ReleaseReason::kHotdesk, ReleaseReason::kCardRemoved, ReleaseReason::kLivenessTimeout,
        ReleaseReason::kEvicted, ReleaseReason::kReplaced, ReleaseReason::kMigrated}) {
    const Message back = RoundTrip(Message{1, 9, SessionReleaseMsg{reason}});
    EXPECT_EQ(std::get<SessionReleaseMsg>(back.body), (SessionReleaseMsg{reason}));
    EXPECT_EQ(TypeOfMessage(back), MessageType::kSessionRelease);
  }
}

// --- Server<->server migration messages (DESIGN.md §9) ---

TEST(MessageTest, MigrationMessagesRoundTrip) {
  CheckpointChunkMsg chunk;
  chunk.epoch = (7ull << 40) | 3;
  chunk.round = 2;
  chunk.index = 4;
  chunk.count = 9;
  chunk.offset = 4 * 16384;
  chunk.data.assign(16384, 0x5a);
  const Message chunk_back = RoundTrip(Message{0, 11, chunk});
  EXPECT_EQ(std::get<CheckpointChunkMsg>(chunk_back.body), chunk);
  EXPECT_EQ(TypeOfMessage(chunk_back), MessageType::kCheckpointChunk);

  for (const MigratePurpose purpose :
       {MigratePurpose::kHandoff, MigratePurpose::kStandby}) {
    const MigrateBeginMsg begin{(7ull << 40) | 3, 0xcafe, 42, 2, purpose, 9, 145000};
    const Message back = RoundTrip(Message{0, 12, begin});
    EXPECT_EQ(std::get<MigrateBeginMsg>(back.body), begin);
    EXPECT_EQ(TypeOfMessage(back), MessageType::kMigrateBegin);
  }

  for (const uint8_t phase : {uint8_t{1}, uint8_t{2}}) {
    const MigrateCommitMsg commit{(7ull << 40) | 3, 2, phase};
    const Message back = RoundTrip(Message{0, 13, commit});
    EXPECT_EQ(std::get<MigrateCommitMsg>(back.body), commit);
    EXPECT_EQ(TypeOfMessage(back), MessageType::kMigrateCommit);
  }

  for (const MigrateAbortReason reason :
       {MigrateAbortReason::kTimeout, MigrateAbortReason::kBadCheckpoint,
        MigrateAbortReason::kSuperseded, MigrateAbortReason::kShutdown}) {
    const MigrateAbortMsg abort{(7ull << 40) | 3, reason};
    const Message back = RoundTrip(Message{0, 14, abort});
    EXPECT_EQ(std::get<MigrateAbortMsg>(back.body), abort);
    EXPECT_EQ(TypeOfMessage(back), MessageType::kMigrateAbort);
  }

  const SeqSyncMsg sync{100, 5000};
  const Message sync_back = RoundTrip(Message{0, 0, sync});
  EXPECT_EQ(std::get<SeqSyncMsg>(sync_back.body), sync);
  EXPECT_EQ(TypeOfMessage(sync_back), MessageType::kSeqSync);
}

// Every prefix truncation of each migration message must parse as nullopt, never crash —
// the transport feeds reassembled bytes straight into ParseMessage, so a fabric that
// truncates a datagram inside the payload must land in a counted reject.
TEST(MessageTest, MigrationMessagesRejectTruncatedPayload) {
  CheckpointChunkMsg chunk;
  chunk.epoch = 1;
  chunk.count = 2;
  chunk.data.assign(64, 0xab);
  const std::vector<Message> msgs{
      Message{0, 11, chunk},
      Message{0, 12, MigrateBeginMsg{1, 2, 3, 0, MigratePurpose::kHandoff, 4, 5}},
      Message{0, 13, MigrateCommitMsg{1, 0, 1}},
      Message{0, 14, MigrateAbortMsg{1, MigrateAbortReason::kTimeout}},
      Message{0, 0, SeqSyncMsg{10, 20}},
  };
  for (const Message& msg : msgs) {
    const auto bytes = SerializeMessage(msg);
    for (size_t len = 0; len < bytes.size(); ++len) {
      const std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + len);
      EXPECT_FALSE(ParseMessage(cut).has_value())
          << "type " << static_cast<int>(TypeOfMessage(msg)) << " len " << len;
    }
  }
}

// Out-of-range enum bytes and impossible field combinations are corruption, not data.
TEST(MessageTest, MigrationMessagesRejectBadFieldValues) {
  // MigrateBegin purpose byte sits after header (20) + epoch/card (16) + session/round (8).
  auto begin = SerializeMessage(
      Message{0, 1, MigrateBeginMsg{1, 2, 3, 0, MigratePurpose::kHandoff, 4, 5}});
  begin[20 + 16 + 8] = 99;
  EXPECT_FALSE(ParseMessage(begin).has_value());

  // MigrateCommit phase byte sits after header + epoch (8) + round (4).
  auto commit = SerializeMessage(Message{0, 1, MigrateCommitMsg{1, 0, 1}});
  commit[20 + 8 + 4] = 3;
  EXPECT_FALSE(ParseMessage(commit).has_value());

  // MigrateAbort reason byte sits right after the epoch.
  auto abort = SerializeMessage(Message{0, 1, MigrateAbortMsg{1, MigrateAbortReason::kTimeout}});
  abort[20 + 8] = 0;
  EXPECT_FALSE(ParseMessage(abort).has_value());

  // A chunk indexed at or past its own count cannot belong to any round.
  CheckpointChunkMsg chunk;
  chunk.count = 2;
  chunk.index = 2;
  chunk.data.assign(8, 0);
  EXPECT_FALSE(ParseMessage(SerializeMessage(Message{0, 1, chunk})).has_value());

  // A seq-sync whose floor precedes its own skip start excuses a negative range.
  EXPECT_FALSE(ParseMessage(SerializeMessage(Message{0, 0, SeqSyncMsg{20, 10}})).has_value());
}

// The checkpoint blob envelope (magic, version, body length) is protocol surface too:
// the chunks reassembled by migration are fed straight into DecodeCheckpoint, so a blob
// from a future format version must be rejected whole, never half-parsed.
TEST(CheckpointEnvelopeTest, RejectsVersionMismatchAndTruncation) {
  SessionCheckpoint ckpt;
  ckpt.card_id = 0xcafe;
  ckpt.width = 2;
  ckpt.height = 2;
  ckpt.fb_pixels.assign(4, 0x123456);
  const std::vector<uint8_t> blob = EncodeCheckpoint(ckpt);
  ASSERT_EQ(DecodeCheckpoint(blob), ckpt);

  std::vector<uint8_t> bad_version = blob;
  bad_version[4] = static_cast<uint8_t>(kCheckpointVersion + 1);
  EXPECT_FALSE(DecodeCheckpoint(bad_version).has_value());

  std::vector<uint8_t> bad_magic = blob;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(DecodeCheckpoint(bad_magic).has_value());

  for (size_t len = 0; len < blob.size(); ++len) {
    const std::vector<uint8_t> cut(blob.begin(), blob.begin() + len);
    EXPECT_FALSE(DecodeCheckpoint(cut).has_value()) << len;
  }
}

TEST(MessageTest, AudioRoundTrip) {
  AudioMsg audio;
  audio.sample_rate = 44100;
  audio.samples.assign(333, 0x11);
  EXPECT_EQ(std::get<AudioMsg>(RoundTrip(Message{2, 9, audio}).body), audio);
}

TEST(MessageTest, RejectsBadMagic) {
  auto bytes = SerializeMessage(Message{1, 1, FillCommand{Rect{0, 0, 1, 1}, 0}});
  bytes[0] = 0x00;
  EXPECT_FALSE(ParseMessage(bytes).has_value());
}

TEST(MessageTest, RejectsTruncatedPayload) {
  auto bytes = SerializeMessage(Message{1, 1, FillCommand{Rect{0, 0, 1, 1}, 0}});
  bytes.resize(bytes.size() - 2);
  EXPECT_FALSE(ParseMessage(bytes).has_value());
}

TEST(MessageTest, RejectsUnknownType) {
  auto bytes = SerializeMessage(Message{1, 1, FillCommand{Rect{0, 0, 1, 1}, 0}});
  bytes[1] = 0x77;  // not a valid MessageType
  EXPECT_FALSE(ParseMessage(bytes).has_value());
}

TEST(MessageTest, RejectsInvalidCscsDepth) {
  CscsCommand cmd;
  cmd.src_w = 2;
  cmd.src_h = 2;
  cmd.dst = Rect{0, 0, 2, 2};
  cmd.depth = CscsDepth::k8;
  cmd.payload.assign(CscsPayloadBytes(2, 2, CscsDepth::k8), 0);
  auto bytes = SerializeMessage(Message{1, 1, cmd});
  // Depth byte sits after header (20) + src_w/src_h (8) + rect (16).
  bytes[20 + 8 + 16] = 99;
  EXPECT_FALSE(ParseMessage(bytes).has_value());
}

TEST(MessageTest, FuzzRandomBytesNeverCrash) {
  Rng rng(1234);
  for (int i = 0; i < 3000; ++i) {
    std::vector<uint8_t> noise(rng.NextBelow(200));
    for (auto& b : noise) {
      b = static_cast<uint8_t>(rng.NextBelow(256));
    }
    (void)ParseMessage(noise);  // must not crash or throw
  }
}

TEST(MessageTest, FuzzTruncationsOfValidMessageNeverCrash) {
  SetCommand cmd;
  cmd.dst = Rect{0, 0, 10, 10};
  cmd.rgb.assign(300, 7);
  const auto bytes = SerializeMessage(Message{1, 1, cmd});
  for (size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + len);
    EXPECT_FALSE(ParseMessage(cut).has_value()) << len;
  }
}

TEST(CommandTest, WireSizeTracksPayload) {
  const FillCommand fill{Rect{0, 0, 100, 100}, 0};
  EXPECT_EQ(WireSize(DisplayCommand(fill)), kMessageHeaderBytes + 16 + 4);
  SetCommand set;
  set.dst = Rect{0, 0, 10, 10};
  set.rgb.assign(300, 0);
  EXPECT_EQ(WireSize(DisplayCommand(set)), kMessageHeaderBytes + 16 + 300);
}

TEST(CommandTest, UncompressedBytesIsThreePerPixel) {
  const FillCommand fill{Rect{0, 0, 20, 10}, 0};
  EXPECT_EQ(UncompressedBytes(DisplayCommand(fill)), 20 * 10 * 3);
}

TEST(CommandTest, PackUnpackRgbRoundTrip) {
  Rng rng(5);
  std::vector<Pixel> pixels(257);
  for (Pixel& p : pixels) {
    p = static_cast<Pixel>(rng.NextU64() & 0xffffff);
  }
  EXPECT_EQ(UnpackRgb(PackRgb(pixels)), pixels);
}

TEST(CommandTest, TypeNamesStable) {
  EXPECT_STREQ(CommandTypeName(CommandType::kSet), "SET");
  EXPECT_STREQ(CommandTypeName(CommandType::kCscs), "CSCS");
}

}  // namespace
}  // namespace slim
