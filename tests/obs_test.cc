// Tests for the observability layer: the JSON model, the metrics registry (and the
// migration of the legacy stats structs onto it), the sim-time tracer, and the BENCH
// report writer/validator pair.

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <variant>

#include "src/console/console.h"
#include "src/net/fabric.h"
#include "src/net/transport.h"
#include "src/obs/bench_report.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/server/slim_server.h"
#include "src/sim/simulator.h"

namespace slim {
namespace {

// ---------------------------------------------------------------- JSON model

TEST(JsonTest, RoundTripsNestedDocument) {
  JsonObject inner;
  inner.emplace_back("pi", JsonValue(3.25));
  inner.emplace_back("n", JsonValue(int64_t{-42}));
  JsonObject doc;
  doc.emplace_back("name", JsonValue("quote\"and\\slash\n"));
  doc.emplace_back("flag", JsonValue(true));
  doc.emplace_back("nothing", JsonValue(nullptr));
  doc.emplace_back("list", JsonValue(JsonArray{JsonValue(int64_t{1}), JsonValue("two")}));
  doc.emplace_back("inner", JsonValue(std::move(inner)));

  const std::string text = JsonValue(doc).Dump();
  std::string error;
  const auto parsed = JsonParse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->Find("name")->as_string(), "quote\"and\\slash\n");
  EXPECT_TRUE(parsed->Find("flag")->as_bool());
  EXPECT_TRUE(parsed->Find("nothing")->is_null());
  ASSERT_EQ(parsed->Find("list")->as_array().size(), 2u);
  EXPECT_EQ(parsed->Find("list")->as_array()[0].as_int(), 1);
  EXPECT_EQ(parsed->Find("inner")->Find("n")->as_int(), -42);
  EXPECT_DOUBLE_EQ(parsed->Find("inner")->Find("pi")->as_double(), 3.25);
}

TEST(JsonTest, ParserRejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated",
                          "{\"a\":1,}"}) {
    std::string error;
    EXPECT_FALSE(JsonParse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(JsonTest, IntegersSurviveExactly) {
  const int64_t big = 9007199254740993;  // 2^53 + 1: breaks if routed through a double
  const std::string text = JsonValue(big).Dump();
  const auto parsed = JsonParse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->as_int(), big);
}

// ---------------------------------------------------------- metrics registry

TEST(MetricNameTest, EnforcesDotScopedLowercase) {
  EXPECT_TRUE(IsValidMetricName("transport.nacks_sent"));
  EXPECT_TRUE(IsValidMetricName("fabric.fault.datagrams_corrupted"));
  EXPECT_FALSE(IsValidMetricName(""));
  EXPECT_FALSE(IsValidMetricName("nodots"));
  EXPECT_FALSE(IsValidMetricName("Upper.case"));
  EXPECT_FALSE(IsValidMetricName("spa ce.x"));
}

TEST(MetricRegistryTest, BindsCountersAndReadsThroughPointer) {
  MetricRegistry registry;
  int64_t cell = 7;
  ASSERT_TRUE(registry.BindCounter("test.cell", &cell));
  EXPECT_TRUE(registry.Contains("test.cell"));
  cell += 5;  // the hot path keeps bumping the struct field directly
  EXPECT_EQ(registry.CounterValue("test.cell"), 12);
}

TEST(MetricRegistryTest, RejectsDuplicateAndInvalidNames) {
  MetricRegistry registry;
  int64_t a = 0;
  int64_t b = 0;
  ASSERT_TRUE(registry.BindCounter("dup.name", &a));
  EXPECT_FALSE(registry.BindCounter("dup.name", &b));  // duplicate: first wins
  a = 3;
  EXPECT_EQ(registry.CounterValue("dup.name"), 3);
  EXPECT_FALSE(registry.BindCounter("NotValid", &b));
  EXPECT_EQ(registry.Counter("dup.name"), nullptr);
  EXPECT_EQ(registry.Histogram("dup.name"), nullptr);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricRegistryTest, SnapshotJsonRoundTrips) {
  MetricRegistry registry;
  int64_t* owned = registry.Counter("owned.counter");
  ASSERT_NE(owned, nullptr);
  *owned = 99;
  ASSERT_TRUE(registry.BindGauge("some.gauge", [] { return 2.5; }));
  ExpHistogram* hist = registry.Histogram("some.latency_ns");
  ASSERT_NE(hist, nullptr);
  hist->Record(100);
  hist->Record(200);

  std::string error;
  const auto parsed = JsonParse(registry.SnapshotJson(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->Find("counters")->Find("owned.counter")->as_int(), 99);
  EXPECT_DOUBLE_EQ(parsed->Find("gauges")->Find("some.gauge")->as_double(), 2.5);
  const JsonValue* h = parsed->Find("histograms")->Find("some.latency_ns");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->Find("count")->as_int(), 2);
  EXPECT_EQ(h->Find("sum")->as_int(), 300);
  EXPECT_EQ(h->Find("min")->as_int(), 100);
  EXPECT_EQ(h->Find("max")->as_int(), 200);
}

TEST(ExpHistogramTest, TracksExactStatsAndQuantizedPercentiles) {
  ExpHistogram hist;
  for (int64_t v : {1, 2, 3, 1000}) {
    hist.Record(v);
  }
  EXPECT_EQ(hist.count(), 4);
  EXPECT_EQ(hist.sum(), 1006);
  EXPECT_EQ(hist.min(), 1);
  EXPECT_EQ(hist.max(), 1000);
  EXPECT_DOUBLE_EQ(hist.mean(), 251.5);
  // p50 lands in the bucket holding 2-3; p100's bucket upper bound covers 1000.
  EXPECT_LT(hist.PercentileUpperBound(0.5), 8);
  EXPECT_GE(hist.PercentileUpperBound(1.0), 1000);
}

// ------------------------------------------------------------------- tracer

TEST(TracerTest, EmitsValidSortedBalancedJson) {
  Tracer tracer;
  tracer.SetThreadName(kTraceTidServer, "server");
  tracer.Begin(2000, "outer", "server", kTraceTidServer);
  tracer.Begin(2500, "inner", "server", kTraceTidServer);
  EXPECT_EQ(tracer.open_spans(), 2u);
  tracer.End(3000, kTraceTidServer);
  tracer.End(4000, kTraceTidServer);
  tracer.Instant(1000, "early", "input", kTraceTidInput);  // recorded late, sorts first
  tracer.Complete(1500, 250, "work", "console", kTraceTidConsole);
  EXPECT_EQ(tracer.open_spans(), 0u);

  std::string error;
  const auto parsed = JsonParse(tracer.Json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_TRUE(parsed->is_array());
  const JsonArray& events = parsed->as_array();
  double last_ts = -1.0;
  int begins = 0;
  int ends = 0;
  bool seen_non_meta = false;
  for (const JsonValue& event : events) {
    const std::string& ph = event.Find("ph")->as_string();
    if (ph == "M") {
      EXPECT_FALSE(seen_non_meta) << "metadata must precede timed events";
      continue;
    }
    seen_non_meta = true;
    const double ts = event.Find("ts")->as_double();
    EXPECT_GE(ts, last_ts) << "timestamps must be non-decreasing";
    last_ts = ts;
    begins += ph == "B" ? 1 : 0;
    ends += ph == "E" ? 1 : 0;
  }
  EXPECT_EQ(begins, 2);
  EXPECT_EQ(ends, 2);
}

TEST(TracerTest, UnbalancedEndIsDropped) {
  Tracer tracer;
  tracer.End(100, kTraceTidServer);  // no open span: must not emit an E
  tracer.Begin(200, "a", "server", kTraceTidServer);
  tracer.End(300, kTraceTidServer);
  const auto parsed = JsonParse(tracer.Json());
  ASSERT_TRUE(parsed.has_value());
  int ends = 0;
  for (const JsonValue& event : parsed->as_array()) {
    ends += event.Find("ph")->as_string() == "E" ? 1 : 0;
  }
  EXPECT_EQ(ends, 1);
}

TEST(TracerTest, AttachesCurrentInputIdToNestedEvents) {
  Tracer tracer;
  const int64_t id = tracer.NextInputId();
  tracer.set_current_input(id);
  tracer.Begin(100, "input.dispatch", "server", kTraceTidServer);
  tracer.Instant(150, "transport.send", "transport", kTraceTidTransportBase);
  tracer.End(200, kTraceTidServer);
  tracer.set_current_input(-1);
  tracer.Instant(300, "uncorrelated", "input", kTraceTidInput);

  const auto parsed = JsonParse(tracer.Json());
  ASSERT_TRUE(parsed.has_value());
  for (const JsonValue& event : parsed->as_array()) {
    const std::string& name = event.Find("name")->as_string();
    if (name == "input.dispatch" || name == "transport.send") {
      ASSERT_NE(event.Find("args"), nullptr) << name;
      ASSERT_NE(event.Find("args")->Find("input_id"), nullptr) << name;
      EXPECT_EQ(event.Find("args")->Find("input_id")->as_int(), id);
    } else if (name == "uncorrelated") {
      const JsonValue* args = event.Find("args");
      EXPECT_TRUE(args == nullptr || args->Find("input_id") == nullptr);
    }
  }
}

// ------------------------------------------------------------------- EnvInt

TEST(EnvIntTest, ParsesValidAndFallsBackOnGarbage) {
  setenv("SLIM_TEST_KNOB", "17", 1);
  EXPECT_EQ(EnvInt("SLIM_TEST_KNOB", 5), 17);
  setenv("SLIM_TEST_KNOB", "banana", 1);
  EXPECT_EQ(EnvInt("SLIM_TEST_KNOB", 5), 5);
  setenv("SLIM_TEST_KNOB", "12abc", 1);  // trailing garbage: std::atoi would return 12
  EXPECT_EQ(EnvInt("SLIM_TEST_KNOB", 5), 5);
  setenv("SLIM_TEST_KNOB", "-3", 1);  // scale knobs are counts: non-positive is a mistake
  EXPECT_EQ(EnvInt("SLIM_TEST_KNOB", 5), 5);
  setenv("SLIM_TEST_KNOB", "0", 1);
  EXPECT_EQ(EnvInt("SLIM_TEST_KNOB", 5), 5);
  setenv("SLIM_TEST_KNOB", "99999999999999999999", 1);  // overflows long
  EXPECT_EQ(EnvInt("SLIM_TEST_KNOB", 5), 5);
  unsetenv("SLIM_TEST_KNOB");
  EXPECT_EQ(EnvInt("SLIM_TEST_KNOB", 5), 5);
}

// ------------------------------------------------------------- bench report

TEST(BenchReportTest, DocumentPassesItsOwnValidator) {
  setenv("SLIM_BENCH_DIR", testing::TempDir().c_str(), 1);  // keep the dtor write off cwd
  BenchReporter report("unit_test", "validator round trip");
  report.Metric("some.metric", 1.5, "ms");
  report.Metric("some.count", int64_t{7}, "count");
  report.Knob("SLIM_EXTRA", 3);
  MetricRegistry registry;
  int64_t cell = 11;
  ASSERT_TRUE(registry.BindCounter("x.y", &cell));
  report.AttachSnapshot(registry);

  const JsonValue doc = report.Document();
  EXPECT_EQ(ValidateBenchReport(doc), std::nullopt);
  // And after a serialization round trip.
  const auto parsed = JsonParse(doc.Dump(2));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(ValidateBenchReport(*parsed), std::nullopt);
  EXPECT_EQ(parsed->Find("bench")->as_string(), "unit_test");
  EXPECT_EQ(parsed->Find("scale")->Find("SLIM_EXTRA")->as_int(), 3);
  EXPECT_EQ(parsed->Find("metrics_registry")->Find("counters")->Find("x.y")->as_int(), 11);
}

TEST(BenchReportTest, ValidatorCatchesSchemaDrift) {
  setenv("SLIM_BENCH_DIR", testing::TempDir().c_str(), 1);
  BenchReporter report("unit_test", "drift");
  report.Metric("a.b", 1.0, "x");
  JsonValue doc = report.Document();

  JsonValue no_metrics = doc;
  for (auto& [key, value] : no_metrics.as_object()) {
    if (key == "metrics") {
      value = JsonValue(JsonArray{});
    }
  }
  EXPECT_NE(ValidateBenchReport(no_metrics), std::nullopt);

  JsonValue bad_version = doc;
  for (auto& [key, value] : bad_version.as_object()) {
    if (key == "schema_version") {
      value = JsonValue(int64_t{999});
    }
  }
  EXPECT_NE(ValidateBenchReport(bad_version), std::nullopt);

  EXPECT_NE(ValidateBenchReport(JsonValue("not an object")), std::nullopt);
}

// ------------------------------------- migration of the legacy stats structs

// Chaos regression: the chaos counters (checksum rejects, NACKs, replays) must appear in a
// registry snapshot with exactly the values the legacy struct accessors report.
TEST(MigrationTest, TransportSnapshotMatchesLegacyAccessorsUnderChaos) {
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimEndpoint a(&fabric, fabric.AddNode());
  SlimEndpoint b(&fabric, fabric.AddNode());
  b.set_handler([](const Message&, NodeId) {});

  MetricRegistry registry;
  ASSERT_TRUE(fabric.RegisterMetrics(&registry));
  ASSERT_TRUE(a.RegisterMetrics(&registry, "a.transport"));
  ASSERT_TRUE(b.RegisterMetrics(&registry, "b.transport"));

  FaultProfile chaos;
  chaos.loss = 0.10;
  chaos.duplicate = 0.05;
  chaos.corrupt = 0.05;
  chaos.truncate = 0.02;
  fabric.InjectFaults(a.node(), b.node(), chaos);

  std::function<void(int)> send_next = [&](int i) {
    if (i >= 400) {
      return;
    }
    a.Send(b.node(), 1, KeyEventMsg{static_cast<uint32_t>(i), true});
    sim.Schedule(Milliseconds(1), [&, i] { send_next(i + 1); });
  };
  send_next(0);
  sim.Run();

  const EndpointStats& bs = b.stats();
  EXPECT_GT(bs.datagrams_corrupted, 0);  // chaos really injected corruption
  EXPECT_GT(bs.nacks_sent, 0);           // and losses really triggered NACK recovery
  EXPECT_EQ(registry.CounterValue("b.transport.datagrams_corrupted"),
            bs.datagrams_corrupted);
  EXPECT_EQ(registry.CounterValue("b.transport.nacks_sent"), bs.nacks_sent);
  EXPECT_EQ(registry.CounterValue("b.transport.messages_received"), bs.messages_received);
  EXPECT_EQ(registry.CounterValue("b.transport.duplicate_messages"),
            bs.duplicate_messages);
  EXPECT_EQ(registry.CounterValue("a.transport.replays_sent"), a.stats().replays_sent);
  EXPECT_EQ(registry.CounterValue("a.transport.messages_sent"), a.stats().messages_sent);
  const FaultStats& fs = fabric.fault_stats();
  EXPECT_EQ(registry.CounterValue("fabric.fault.datagrams_corrupted"),
            fs.datagrams_corrupted);
  EXPECT_EQ(registry.CounterValue("fabric.fault.datagrams_dropped"), fs.datagrams_dropped);

  // The snapshot serializes the same values.
  const auto parsed = JsonParse(registry.SnapshotJson());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->Find("counters")->Find("b.transport.nacks_sent")->as_int(),
            bs.nacks_sent);
}

TEST(MigrationTest, ServerAndConsoleRegisterWithoutCollisions) {
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimServer server(&sim, &fabric, {});
  Console console(&sim, &fabric, {});
  MetricRegistry registry;
  ASSERT_TRUE(fabric.RegisterMetrics(&registry));
  ASSERT_TRUE(server.RegisterMetrics(&registry));
  ASSERT_TRUE(console.RegisterMetrics(&registry));

  const uint64_t card = server.auth().IssueCard(1);
  ServerSession& session = server.CreateSession(card);
  ASSERT_TRUE(session.RegisterMetrics(&registry));
  console.InsertCard(server.node(), card);
  sim.Run();
  session.FillRect(Rect{0, 0, 64, 64}, kWhite);
  session.Flush();
  sim.Run();

  EXPECT_EQ(registry.CounterValue("console.commands_applied"),
            console.commands_applied());
  EXPECT_EQ(registry.CounterValue("session.commands_sent"), session.commands_sent());
  EXPECT_EQ(registry.CounterValue("session.bytes_sent"), session.bytes_sent());
  EXPECT_EQ(registry.CounterValue("server.auth.accepted"), server.auth().accepted());
  EXPECT_EQ(registry.Value("server.sessions"), 1.0);
  // Per-type codec counters mirror the session's EncodeStats accumulation.
  EXPECT_EQ(registry.CounterValue("session.codec.fill.commands"),
            session.encode_stats()[static_cast<size_t>(CommandType::kFill)].commands);
  EXPECT_GT(*registry.CounterValue("session.codec.fill.commands"), 0);
}

// End-to-end trace: a full session under a lossy fabric produces a loadable Chrome trace
// with the whole pipeline on it, including transport replay-stall spans.
TEST(TraceIntegrationTest, PipelineTraceCoversDispatchToPresentAndReplayStalls) {
  Tracer tracer;
  Tracer::SetGlobal(&tracer);
  {
    Simulator sim;
    Fabric fabric(&sim, {});
    SlimServer server(&sim, &fabric, {});
    Console console(&sim, &fabric, {});
    FaultProfile chaos;
    chaos.loss = 0.15;
    fabric.InjectFaults(server.node(), console.node(), chaos);
    const uint64_t card = server.auth().IssueCard(1);
    ServerSession& session = server.CreateSession(card);
    session.set_input_handler([&session](const Message& msg) {
      if (const auto* key = std::get_if<KeyEventMsg>(&msg.body); key && key->pressed) {
        session.FillRect(Rect{static_cast<int32_t>(key->keycode % 600), 10, 80, 60},
                         kBlack);
        session.Flush();
      }
    });
    console.InsertCard(server.node(), card);
    sim.Run();
    for (int i = 0; i < 120; ++i) {
      console.SendKey(server.node(), session.id(), static_cast<uint32_t>(i), true);
      sim.RunUntil(sim.now() + Milliseconds(5));
    }
    sim.Run();
  }
  Tracer::SetGlobal(nullptr);

  std::string error;
  const auto parsed = JsonParse(tracer.Json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  bool seen[6] = {};
  const char* expected[6] = {"input.key",     "input.dispatch", "server.render",
                             "transport.send", "console.decode", "transport.replay_stall"};
  for (const JsonValue& event : parsed->as_array()) {
    const JsonValue* name = event.Find("name");
    if (name == nullptr) {
      continue;
    }
    for (int i = 0; i < 6; ++i) {
      seen[i] = seen[i] || name->as_string() == expected[i];
    }
  }
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(seen[i]) << "missing trace event " << expected[i];
  }
  EXPECT_EQ(tracer.open_spans(), 0u);
}

}  // namespace
}  // namespace slim
