// LatencyAudit tests: stage decomposition and SLO attribution at the unit level, flight
// dumps on breach, and a full server<->console session whose every keystroke must appear
// in the session.latency.* histograms. The latency_audit_test_4threads ctest entry re-runs
// this binary with SLIM_ENCODE_THREADS=4, proving the audit's single-writer rule holds
// when the band-parallel encoder pool is live (all stamps stay on the sim thread).

#include "src/obs/latency_audit.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/apps/benchmark_apps.h"
#include "src/console/console.h"
#include "src/net/fabric.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/server/slim_server.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace slim {
namespace {

int64_t HistCount(const MetricRegistry& registry, const std::string& name) {
  const JsonValue snapshot = registry.Snapshot();
  const JsonValue* hist = snapshot.Find("histograms")->Find(name);
  return hist != nullptr ? hist->Find("count")->as_int() : -1;
}

int64_t HistMax(const MetricRegistry& registry, const std::string& name) {
  const JsonValue snapshot = registry.Snapshot();
  const JsonValue* hist = snapshot.Find("histograms")->Find(name);
  return hist != nullptr ? hist->Find("max")->as_int() : -1;
}

TEST(LatencyAuditTest, InputWithoutDisplayOutputCompletesOnDispatch) {
  MetricRegistry registry;
  LatencyAudit audit;
  ASSERT_TRUE(audit.RegisterMetrics(&registry));
  const int64_t id = audit.BeginInput(/*session_id=*/7, /*now=*/0);
  EXPECT_EQ(audit.current_input(), id);
  audit.EndInput(id, Milliseconds(2), Milliseconds(1), Milliseconds(1), /*now=*/0);
  EXPECT_EQ(audit.current_input(), -1);
  EXPECT_EQ(audit.events_completed(), 1);
  EXPECT_EQ(audit.breaches(), 0);
  EXPECT_EQ(HistCount(registry, "session.latency.e2e_ns"), 1);
  // e2e = the modeled CPU: 2 + 1 + 1 ms.
  EXPECT_EQ(HistMax(registry, "session.latency.e2e_ns"), Milliseconds(4));
  EXPECT_EQ(HistCount(registry, "session.latency.s7.e2e_ns"), 1);
}

TEST(LatencyAuditTest, DisplayCommandDecomposesIntoTxqNetworkDecode) {
  MetricRegistry registry;
  LatencyAuditOptions options;
  options.slo = Milliseconds(10);  // force a breach so attribution is observable
  LatencyAudit audit(options);
  ASSERT_TRUE(audit.RegisterMetrics(&registry));
  const NodeId console = 5;
  const int64_t id = audit.BeginInput(1, /*now=*/0);
  audit.NoteEnqueued(id);  // a display command entered the txq during dispatch
  audit.EndInput(id, Milliseconds(1), Milliseconds(1), Milliseconds(1), /*now=*/0);
  EXPECT_EQ(audit.events_completed(), 0);  // still open: command outstanding
  audit.NoteDeparture(id, console, /*seq=*/42, /*departed=*/Milliseconds(10));
  audit.NoteDecodeStart(console, 42, /*arrival=*/Milliseconds(30));
  audit.NotePresent(console, 42, /*completion=*/Milliseconds(35));
  EXPECT_EQ(audit.events_completed(), 1);
  // e2e 35ms > 10ms slo; dominant stage is network: txq = 10-3 = 7ms,
  // network = 30-10 = 20ms, decode = 35-30 = 5ms.
  EXPECT_EQ(audit.breaches(), 1);
  EXPECT_EQ(audit.last_breach_input(), id);
  EXPECT_EQ(audit.last_breach_stage(), kStageNetwork);
  EXPECT_EQ(audit.breaches_by(kStageNetwork), 1);
  EXPECT_EQ(HistMax(registry, "session.latency.txq_ns"), Milliseconds(7));
  EXPECT_EQ(HistMax(registry, "session.latency.network_ns"), Milliseconds(20));
  EXPECT_EQ(HistMax(registry, "session.latency.decode_ns"), Milliseconds(5));
}

TEST(LatencyAuditTest, PaceStallAttributedToPaceNotTxq) {
  // A departure held back by a bandwidth grant's token bucket must show up as `pace`, so a
  // pacing-induced breach is distinguishable from CPU queueing (txq) and replay stalls.
  MetricRegistry registry;
  LatencyAuditOptions options;
  options.slo = Milliseconds(10);
  LatencyAudit audit(options);
  ASSERT_TRUE(audit.RegisterMetrics(&registry));
  const NodeId console = 5;
  const int64_t id = audit.BeginInput(1, /*now=*/0);
  audit.NoteEnqueued(id);
  audit.EndInput(id, Milliseconds(1), Milliseconds(1), Milliseconds(1), /*now=*/0);
  // Departed at 33ms, of which 25ms was the token bucket: txq keeps only the remainder.
  audit.NoteDeparture(id, console, /*seq=*/42, /*departed=*/Milliseconds(33),
                      /*pace_delay=*/Milliseconds(25));
  audit.NoteDecodeStart(console, 42, /*arrival=*/Milliseconds(34));
  audit.NotePresent(console, 42, /*completion=*/Milliseconds(35));
  EXPECT_EQ(audit.events_completed(), 1);
  EXPECT_EQ(HistMax(registry, "session.latency.pace_ns"), Milliseconds(25));
  EXPECT_EQ(HistMax(registry, "session.latency.txq_ns"), Milliseconds(5));  // 33 - 3 - 25
  EXPECT_EQ(audit.breaches(), 1);
  EXPECT_EQ(audit.last_breach_stage(), kStagePace);
  EXPECT_EQ(audit.breaches_by(kStagePace), 1);
}

TEST(LatencyAuditTest, PurgedCommandClosesItsSlot) {
  // A queued command cancelled by a transmit-queue purge (session release/eviction) must
  // not leave its input event dangling as incomplete forever.
  LatencyAudit audit;
  const int64_t id = audit.BeginInput(1, 0);
  audit.NoteEnqueued(id);
  audit.NoteEnqueued(id);
  audit.EndInput(id, 0, 0, Milliseconds(1), 0);
  EXPECT_EQ(audit.events_completed(), 0);
  audit.NotePurged(id);
  EXPECT_EQ(audit.events_completed(), 0);  // one command still outstanding
  audit.NotePurged(id);
  EXPECT_EQ(audit.events_completed(), 1);  // both purged: event folds as dispatched-only
}

TEST(LatencyAuditTest, DeferredDepartureAfterEndInputStillTracksTheTail) {
  // The transmit queue enqueues during dispatch but may send after EndInput; the entry
  // must stay open on NoteEnqueued alone or the tail is silently lost.
  LatencyAudit audit;
  const int64_t id = audit.BeginInput(1, 0);
  audit.NoteEnqueued(id);
  audit.EndInput(id, 0, 0, Milliseconds(1), 0);
  EXPECT_EQ(audit.events_completed(), 0);
  audit.NoteDeparture(id, 5, 9, Milliseconds(2));  // fired later by the deferred send
  audit.NoteDecodeStart(5, 9, Milliseconds(4));
  audit.NotePresent(5, 9, Milliseconds(5));
  EXPECT_EQ(audit.events_completed(), 1);
}

TEST(LatencyAuditTest, ReplayStallAccumulatesIntoReplayStage) {
  MetricRegistry registry;
  LatencyAudit audit;
  ASSERT_TRUE(audit.RegisterMetrics(&registry));
  const NodeId console = 5;
  const int64_t id = audit.BeginInput(1, 0);
  audit.NoteEnqueued(id);
  audit.EndInput(id, 0, 0, 0, 0);
  audit.NoteDeparture(id, console, 42, /*departed=*/Milliseconds(1));
  // The receiving endpoint noticed seq 42 missing at 5ms and got the replay at 25ms.
  audit.NoteReplayResolved(console, 42, /*since=*/Milliseconds(5), /*now=*/Milliseconds(25),
                           "replayed");
  audit.NoteDecodeStart(console, 42, /*arrival=*/Milliseconds(26));
  audit.NotePresent(console, 42, /*completion=*/Milliseconds(27));
  EXPECT_EQ(audit.events_completed(), 1);
  EXPECT_EQ(HistMax(registry, "session.latency.replay_ns"), Milliseconds(20));
  // Network = arrival - departure - replay stall = 26 - 1 - 20 = 5ms.
  EXPECT_EQ(HistMax(registry, "session.latency.network_ns"), Milliseconds(5));
  EXPECT_EQ(audit.breaches(), 0);
}

TEST(LatencyAuditTest, TransportGiveUpBreachesImmediatelyAsReplay) {
  LatencyAudit audit;
  const NodeId console = 5;
  const int64_t id = audit.BeginInput(3, 0);
  audit.NoteEnqueued(id);
  audit.EndInput(id, 0, 0, 0, 0);
  audit.NoteDeparture(id, console, 77, Milliseconds(1));
  audit.NoteReplayResolved(console, 77, /*since=*/Milliseconds(5), /*now=*/Milliseconds(90),
                           "gave_up_strikes");
  EXPECT_EQ(audit.gave_up(), 1);
  EXPECT_EQ(audit.breaches(), 1);  // give-up breaches regardless of e2e vs slo
  EXPECT_EQ(audit.events_completed(), 1);
  EXPECT_EQ(audit.last_breach_input(), id);
  EXPECT_EQ(audit.last_breach_stage(), kStageReplay);
}

TEST(LatencyAuditTest, FinalizeAllFoldsOpenEventsAsIncomplete) {
  LatencyAudit audit;
  const int64_t id = audit.BeginInput(1, 0);
  audit.NoteEnqueued(id);
  audit.EndInput(id, 0, 0, 0, 0);  // command never presents
  audit.FinalizeAll();
  EXPECT_EQ(audit.events_incomplete(), 1);
  EXPECT_EQ(audit.events_completed(), 0);
}

TEST(LatencyAuditTest, BreachDumpsFlightRecorderAsValidTrace) {
  FlightRecorder recorder(/*capacity=*/256);
  Tracer::SetGlobal(&recorder);
  LatencyAuditOptions options;
  options.slo = Milliseconds(10);
  options.flight_dir = testing::TempDir();
  LatencyAudit audit(options);
  recorder.Instant(0, "context_before_breach", "t", kTraceTidServer);
  const NodeId console = 5;
  const int64_t id = audit.BeginInput(1, 0);
  audit.NoteEnqueued(id);
  audit.EndInput(id, 0, 0, 0, 0);
  audit.NoteDeparture(id, console, 42, Milliseconds(1));
  audit.NoteDecodeStart(console, 42, Milliseconds(40));
  audit.NotePresent(console, 42, Milliseconds(41));
  Tracer::SetGlobal(nullptr);
  ASSERT_EQ(audit.flight_dumps(), 1);
  std::ifstream in(audit.last_flight_path(), std::ios::binary);
  ASSERT_TRUE(in.good()) << audit.last_flight_path();
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  const auto doc = JsonParse(buffer.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  // The dump names the breached input and its dominant stage in an audit.breach instant.
  bool found = false;
  for (const JsonValue& event : doc->as_array()) {
    const JsonValue* name = event.Find("name");
    if (name != nullptr && name->as_string() == "audit.breach") {
      found = true;
      EXPECT_EQ(event.Find("args")->Find("input_id")->as_int(), id);
      EXPECT_EQ(event.Find("args")->Find("stage")->as_string(), "network");
    }
  }
  EXPECT_TRUE(found) << "no audit.breach instant in the flight dump";
  std::remove(audit.last_flight_path().c_str());
}

TEST(LatencyAuditTest, FullSessionAuditsEveryKeystroke) {
  // End-to-end over a healthy fabric: every input event must complete through the real
  // dispatch -> txq -> transport -> console pipeline and land in the histograms. Under the
  // latency_audit_test_4threads canary this runs with the band-parallel encoder pool on.
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimServer server(&sim, &fabric, {});
  Console console(&sim, &fabric, {});
  MetricRegistry registry;
  LatencyAudit audit;
  ASSERT_TRUE(audit.RegisterMetrics(&registry));
  LatencyAudit::SetGlobal(&audit);
  const uint64_t card = server.auth().IssueCard(1);
  ServerSession& session = server.CreateSession(card);
  auto app = MakeApplication(AppKind::kPim, &session, 1234);
  app->BindInput();
  console.InsertCard(server.node(), card);
  sim.Run();
  app->Start();
  sim.Run();
  constexpr int kEvents = 40;
  Rng rng(99);
  for (int i = 0; i < kEvents; ++i) {
    console.SendKey(server.node(), session.id(), static_cast<uint32_t>(rng.NextBelow(997)),
                    true);
    sim.RunUntil(sim.now() + Milliseconds(25));
  }
  sim.Run();
  audit.FinalizeAll();
  LatencyAudit::SetGlobal(nullptr);
  EXPECT_EQ(audit.events_completed() + audit.events_incomplete(), kEvents);
  EXPECT_EQ(audit.events_incomplete(), 0);
  EXPECT_EQ(audit.breaches(), 0) << "healthy fabric should meet the 150ms budget";
  EXPECT_EQ(HistCount(registry, "session.latency.e2e_ns"), kEvents);
  EXPECT_EQ(HistCount(registry,
                      "session.latency.s" + std::to_string(session.id()) + ".e2e_ns"),
            kEvents);
  // Sanity on the decomposition: every stage histogram saw every event.
  for (const char* stage :
       {"render", "encode", "wire_cpu", "txq", "pace", "network", "decode"}) {
    EXPECT_EQ(HistCount(registry, std::string("session.latency.") + stage + "_ns"), kEvents)
        << stage;
  }
}

}  // namespace
}  // namespace slim
