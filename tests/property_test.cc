// Cross-cutting property sweeps (TEST_P): the encoder round-trip must hold under every
// option combination, message serialization under every command type and size, and the
// end-to-end pixel-exactness under transport stress.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "src/apps/content.h"
#include "src/codec/decoder.h"
#include "src/codec/encoder.h"
#include "src/console/console.h"
#include "src/net/fabric.h"
#include "src/server/slim_server.h"
#include "src/sim/simulator.h"

namespace slim {
namespace {

// ---------------------------------------------------------------------------
// Encoder round-trip across the whole option space.
// ---------------------------------------------------------------------------

using EncoderParams = std::tuple<bool, bool, int, int>;  // fill, bitmap, band, chunk

class EncoderOptionSweep : public ::testing::TestWithParam<EncoderParams> {};

TEST_P(EncoderOptionSweep, RoundTripHoldsForEveryConfiguration) {
  const auto [fill, bitmap, band, chunk] = GetParam();
  EncoderOptions options;
  options.enable_fill = fill;
  options.enable_bitmap = bitmap;
  options.band_height = band;
  options.chunk_width = chunk;
  Encoder encoder(options);

  Rng rng(static_cast<uint64_t>(band) * 131 + chunk + (fill ? 7 : 0) + (bitmap ? 13 : 0));
  Framebuffer before(137, 93);  // deliberately not tile/band aligned
  before.Fill(Rect{0, 0, 137, 50}, MakePixel(20, 30, 40));
  Framebuffer after = before;
  Region damage;
  for (int i = 0; i < 6; ++i) {
    const Rect r{static_cast<int32_t>(rng.NextBelow(120)),
                 static_cast<int32_t>(rng.NextBelow(80)),
                 3 + static_cast<int32_t>(rng.NextBelow(30)),
                 3 + static_cast<int32_t>(rng.NextBelow(25))};
    switch (rng.NextBelow(3)) {
      case 0:
        after.Fill(r, static_cast<Pixel>(rng.NextU64() & 0xffffff));
        break;
      case 1:
        for (int32_t y = r.y; y < r.bottom(); ++y) {
          for (int32_t x = r.x; x < r.right(); ++x) {
            after.PutPixel(x, y, ((x + y) & 1) ? kWhite : kBlack);
          }
        }
        break;
      default:
        after.SetPixels(r, MakePhotoBlock(&rng, r.w, r.h));
        break;
    }
    damage.Add(Intersect(r, after.bounds()));
  }
  Framebuffer replica = before;
  for (const auto& cmd : encoder.EncodeDamage(after, damage)) {
    ASSERT_TRUE(ValidateCommand(cmd));
    ASSERT_TRUE(ApplyCommand(cmd, &replica));
  }
  EXPECT_EQ(replica.ContentHash(), after.ContentHash());
}

INSTANTIATE_TEST_SUITE_P(
    OptionSpace, EncoderOptionSweep,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(), ::testing::Values(8, 32, 128),
                       ::testing::Values(16, 64, 512)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) ? "fill" : "nofill") +
             (std::get<1>(info.param) ? "_bitmap" : "_nobitmap") + "_band" +
             std::to_string(std::get<2>(info.param)) + "_chunk" +
             std::to_string(std::get<3>(info.param));
    });

// ---------------------------------------------------------------------------
// Region normalization: overlapping Adds must reach the encoder de-overlapped, and the
// encoder must never emit two commands touching the same pixel (double-encoding shared
// pixels would inflate the wire_bytes/pixels stats behind Figures 4 and 5).
// ---------------------------------------------------------------------------

class RegionOverlapSweep : public ::testing::TestWithParam<int> {};

TEST_P(RegionOverlapSweep, AddKeepsRectsDisjointAndAreaExact) {
  Rng rng(7000 + static_cast<uint64_t>(GetParam()));
  constexpr int32_t kEdge = 96;
  Region region;
  std::vector<bool> covered(kEdge * kEdge, false);
  for (int i = 0; i < 25; ++i) {
    const Rect r{static_cast<int32_t>(rng.NextBelow(kEdge)),
                 static_cast<int32_t>(rng.NextBelow(kEdge)),
                 1 + static_cast<int32_t>(rng.NextBelow(40)),
                 1 + static_cast<int32_t>(rng.NextBelow(40))};
    const Rect clipped = Intersect(r, Rect{0, 0, kEdge, kEdge});
    region.Add(clipped);  // adds overlap heavily across iterations
    for (int32_t y = clipped.y; y < clipped.bottom(); ++y) {
      for (int32_t x = clipped.x; x < clipped.right(); ++x) {
        covered[static_cast<size_t>(y) * kEdge + x] = true;
      }
    }
  }
  // Invariant: pairwise disjoint, none empty.
  const auto& rects = region.rects();
  for (size_t a = 0; a < rects.size(); ++a) {
    EXPECT_FALSE(rects[a].empty());
    for (size_t b = a + 1; b < rects.size(); ++b) {
      EXPECT_FALSE(rects[a].Intersects(rects[b]))
          << rects[a].ToString() << " overlaps " << rects[b].ToString();
    }
  }
  // Exactness: area() equals the brute-force pixel count, and membership agrees.
  const int64_t expected_area = std::count(covered.begin(), covered.end(), true);
  EXPECT_EQ(region.area(), expected_area);
  for (int32_t y = 0; y < kEdge; ++y) {
    for (int32_t x = 0; x < kEdge; ++x) {
      ASSERT_EQ(region.Contains(Point{x, y}), !!covered[static_cast<size_t>(y) * kEdge + x])
          << "(" << x << "," << y << ")";
    }
  }
}

TEST_P(RegionOverlapSweep, EncoderNeverEmitsOverlappingCommands) {
  Rng rng(8000 + static_cast<uint64_t>(GetParam()));
  Framebuffer fb(128, 96);
  fb.SetPixels(fb.bounds(), MakePhotoBlock(&rng, 128, 96));
  Region damage;
  for (int i = 0; i < 12; ++i) {
    const Rect r{static_cast<int32_t>(rng.NextBelow(110)),
                 static_cast<int32_t>(rng.NextBelow(80)),
                 2 + static_cast<int32_t>(rng.NextBelow(50)),
                 2 + static_cast<int32_t>(rng.NextBelow(40))};
    damage.Add(Intersect(r, fb.bounds()));
  }
  Encoder encoder;
  const auto cmds = encoder.EncodeDamage(fb, damage);
  int64_t encoded_pixels = 0;
  for (size_t a = 0; a < cmds.size(); ++a) {
    encoded_pixels += AffectedPixels(cmds[a]);
    for (size_t b = a + 1; b < cmds.size(); ++b) {
      EXPECT_FALSE(DestinationOf(cmds[a]).Intersects(DestinationOf(cmds[b])))
          << DestinationOf(cmds[a]).ToString() << " overlaps "
          << DestinationOf(cmds[b]).ToString();
    }
  }
  // No pixel double-encoded and none skipped: encoded pixels == damage area exactly.
  EXPECT_EQ(encoded_pixels, damage.area());
}

INSTANTIATE_TEST_SUITE_P(RandomizedOverlaps, RegionOverlapSweep, ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Serialized command round-trip across sizes (fragmentation boundaries included).
// ---------------------------------------------------------------------------

class SetSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(SetSizeSweep, SerializeParseFragmentBoundaries) {
  const int32_t edge = GetParam();
  SetCommand cmd;
  cmd.dst = Rect{1, 2, edge, edge};
  Rng rng(static_cast<uint64_t>(edge));
  cmd.rgb.resize(static_cast<size_t>(edge) * edge * 3);
  for (auto& b : cmd.rgb) {
    b = static_cast<uint8_t>(rng.NextBelow(256));
  }
  const Message msg{9, 77, cmd};
  const auto bytes = SerializeMessage(msg);
  EXPECT_EQ(bytes.size(), MessageWireSize(msg));
  const auto back = ParseMessage(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<SetCommand>(back->body), cmd);
}

// 22 is just under one MTU of payload; 23 just over; 163 spans many fragments.
INSTANTIATE_TEST_SUITE_P(Sizes, SetSizeSweep, ::testing::Values(1, 4, 22, 23, 64, 163));

// ---------------------------------------------------------------------------
// End-to-end pixel exactness under per-link loss, with final repaint healing.
// ---------------------------------------------------------------------------

class LossSweep : public ::testing::TestWithParam<int> {};  // loss in tenths of a percent

TEST_P(LossSweep, TransportStressNeverCorruptsOnlyDelays) {
  Simulator sim;
  FabricOptions options;
  options.link.loss_probability = GetParam() / 1000.0;
  options.link.reorder_jitter = Microseconds(200);
  Fabric fabric(&sim, options);
  SlimServer server(&sim, &fabric, {});
  Console console(&sim, &fabric, {});
  const uint64_t card = server.auth().IssueCard(1);
  ServerSession& session = server.CreateSession(card);
  console.InsertCard(server.node(), card);
  sim.Run();
  Rng rng(static_cast<uint64_t>(GetParam()) + 5);
  for (int i = 0; i < 60; ++i) {
    const Rect r{static_cast<int32_t>(rng.NextBelow(1200)),
                 static_cast<int32_t>(rng.NextBelow(960)),
                 4 + static_cast<int32_t>(rng.NextBelow(60)),
                 4 + static_cast<int32_t>(rng.NextBelow(60))};
    if (rng.NextBool(0.5)) {
      session.FillRect(r, static_cast<Pixel>(rng.NextU64() & 0xffffff));
    } else {
      session.PutImage(r, MakePhotoBlock(&rng, r.w, r.h));
    }
    session.Flush();
    sim.RunUntil(sim.now() + Milliseconds(20));
  }
  sim.Run();
  // Quiesce with repaints so NACK recovery windows close any holes. Forced: after loss the
  // console has diverged from the damage tracker's shadow, so a refined repaint would
  // wrongly transmit nothing.
  for (int i = 0; i < 4; ++i) {
    session.ForceRepaintAll();
    session.Flush();
    sim.Run();
  }
  EXPECT_EQ(session.framebuffer().ContentHash(), console.framebuffer().ContentHash())
      << "loss " << GetParam() / 10.0 << "%";
  EXPECT_EQ(console.commands_rejected(), 0);
}

INSTANTIATE_TEST_SUITE_P(LossLevels, LossSweep, ::testing::Values(0, 5, 20, 50),
                         [](const auto& info) {
                           return "loss_" + std::to_string(info.param) + "permille";
                         });

// ---------------------------------------------------------------------------
// CSCS quality: round-trip error bound per depth on photographic content.
// ---------------------------------------------------------------------------

class CscsDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(CscsDepthSweep, LumaErrorBoundedByQuantizationStep) {
  const auto depth = static_cast<CscsDepth>(GetParam());
  Rng rng(3);
  const auto rgb = MakePhotoBlock(&rng, 48, 48);
  const YuvImage image = YuvImage::FromPixels(rgb, 48, 48);
  const YuvImage back = UnpackCscsPayload(PackCscsPayload(image, depth), 48, 48, depth);
  // Luma quantization keeps the top y_bits bits: max error is one expanded step.
  const int y_bits = depth == CscsDepth::k16 || depth == CscsDepth::k12 ? 8
                     : depth == CscsDepth::k8                           ? 6
                                                                        : 4;
  const int max_err = y_bits >= 8 ? 0 : (256 >> y_bits);
  for (int32_t y = 0; y < 48; ++y) {
    for (int32_t x = 0; x < 48; ++x) {
      EXPECT_LE(std::abs(back.At(x, y).y - image.At(x, y).y), max_err);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, CscsDepthSweep,
                         ::testing::Values(static_cast<int>(CscsDepth::k16),
                                           static_cast<int>(CscsDepth::k12),
                                           static_cast<int>(CscsDepth::k8),
                                           static_cast<int>(CscsDepth::k6),
                                           static_cast<int>(CscsDepth::k5)));

}  // namespace
}  // namespace slim
