// Chaos-layer tests: the fabric's fault injection (loss, duplication, corruption,
// truncation, reordering) and the transport/system behaviour under it, ending with the
// acceptance soak: a full server<->console session over a hostile fabric profile must
// converge to a pixel-identical framebuffer with every fault class actually exercised.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "src/apps/benchmark_apps.h"
#include "src/console/console.h"
#include "src/net/fabric.h"
#include "src/net/transport.h"
#include "src/server/slim_server.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace slim {
namespace {

Datagram MakeDatagram(NodeId src, NodeId dst, uint8_t fill, size_t size = 64) {
  return Datagram{src, dst, std::vector<uint8_t>(size, fill)};
}

TEST(ChaosFabricTest, LossDropsRoughlyTheConfiguredFraction) {
  Simulator sim;
  Fabric fabric(&sim, {});
  const NodeId a = fabric.AddNode();
  const NodeId b = fabric.AddNode();
  int received = 0;
  fabric.SetReceiver(b, [&](Datagram) { ++received; });
  FaultProfile profile;
  profile.loss = 0.25;
  fabric.InjectFaults(a, b, profile);
  constexpr int kSent = 2000;
  for (int i = 0; i < kSent; ++i) {
    fabric.Send(MakeDatagram(a, b, 0xab));
    sim.Run();
  }
  EXPECT_EQ(received + fabric.fault_stats().datagrams_dropped, kSent);
  EXPECT_GT(fabric.fault_stats().datagrams_dropped, kSent / 5);   // > 20%
  EXPECT_LT(fabric.fault_stats().datagrams_dropped, 3 * kSent / 10);  // < 30%
}

TEST(ChaosFabricTest, CorruptionMutatesEveryPayloadAndIsCounted) {
  Simulator sim;
  Fabric fabric(&sim, {});
  const NodeId a = fabric.AddNode();
  const NodeId b = fabric.AddNode();
  const std::vector<uint8_t> original(64, 0x5c);
  int received = 0;
  int mutated = 0;
  fabric.SetReceiver(b, [&](Datagram d) {
    ++received;
    if (d.payload != original) {
      ++mutated;
    }
  });
  FaultProfile profile;
  profile.corrupt = 1.0;
  fabric.InjectFaults(a, b, profile);
  constexpr int kSent = 200;
  for (int i = 0; i < kSent; ++i) {
    fabric.Send(Datagram{a, b, original});
    sim.Run();
  }
  // Corruption never drops: every datagram arrives, none arrives intact (the XOR mask is
  // always non-zero, so a corrupted payload can never equal the original).
  EXPECT_EQ(received, kSent);
  EXPECT_EQ(mutated, kSent);
  EXPECT_EQ(fabric.fault_stats().datagrams_corrupted, kSent);
}

TEST(ChaosFabricTest, DuplicationInjectsASecondCopy) {
  Simulator sim;
  Fabric fabric(&sim, {});
  const NodeId a = fabric.AddNode();
  const NodeId b = fabric.AddNode();
  int received = 0;
  fabric.SetReceiver(b, [&](Datagram) { ++received; });
  FaultProfile profile;
  profile.duplicate = 1.0;
  fabric.InjectFaults(a, b, profile);
  constexpr int kSent = 100;
  for (int i = 0; i < kSent; ++i) {
    fabric.Send(MakeDatagram(a, b, 0x11));
    sim.Run();
  }
  EXPECT_EQ(received, 2 * kSent);
  EXPECT_EQ(fabric.fault_stats().datagrams_duplicated, kSent);
}

TEST(ChaosFabricTest, TruncationShortensButNeverEmptiesThePayload) {
  Simulator sim;
  Fabric fabric(&sim, {});
  const NodeId a = fabric.AddNode();
  const NodeId b = fabric.AddNode();
  constexpr size_t kSize = 64;
  bool all_shorter = true;
  bool none_empty = true;
  int received = 0;
  fabric.SetReceiver(b, [&](Datagram d) {
    ++received;
    all_shorter = all_shorter && d.payload.size() < kSize;
    none_empty = none_empty && !d.payload.empty();
  });
  FaultProfile profile;
  profile.truncate = 1.0;
  fabric.InjectFaults(a, b, profile);
  constexpr int kSent = 200;
  for (int i = 0; i < kSent; ++i) {
    fabric.Send(MakeDatagram(a, b, 0x22, kSize));
    sim.Run();
  }
  EXPECT_EQ(received, kSent);
  EXPECT_TRUE(all_shorter);
  EXPECT_TRUE(none_empty);
  EXPECT_EQ(fabric.fault_stats().datagrams_truncated, kSent);
}

TEST(ChaosFabricTest, DelayJitterReordersBackToBackDatagrams) {
  Simulator sim;
  Fabric fabric(&sim, {});
  const NodeId a = fabric.AddNode();
  const NodeId b = fabric.AddNode();
  std::vector<uint8_t> arrival_order;
  fabric.SetReceiver(b, [&](Datagram d) { arrival_order.push_back(d.payload[0]); });
  FaultProfile profile;
  profile.delay_jitter = Milliseconds(5);
  fabric.InjectFaults(a, b, profile);
  std::vector<uint8_t> sent_order;
  for (int i = 0; i < 50; ++i) {
    sent_order.push_back(static_cast<uint8_t>(i));
    fabric.Send(MakeDatagram(a, b, static_cast<uint8_t>(i), 32));
  }
  sim.Run();
  ASSERT_EQ(arrival_order.size(), sent_order.size());
  EXPECT_NE(arrival_order, sent_order) << "5 ms of jitter on back-to-back sends must reorder";
  EXPECT_EQ(fabric.fault_stats().datagrams_delayed, 50);
}

TEST(ChaosFabricTest, FaultsAreScopedToTheDirectedPair) {
  Simulator sim;
  Fabric fabric(&sim, {});
  const NodeId a = fabric.AddNode();
  const NodeId b = fabric.AddNode();
  const NodeId c = fabric.AddNode();
  int b_received = 0;
  int a_received = 0;
  fabric.SetReceiver(b, [&](Datagram) { ++b_received; });
  fabric.SetReceiver(a, [&](Datagram) { ++a_received; });
  FaultProfile black_hole;
  black_hole.loss = 1.0;
  fabric.InjectFaults(a, b, black_hole);
  for (int i = 0; i < 10; ++i) {
    fabric.Send(MakeDatagram(a, b, 1));  // a->b: black-holed
    fabric.Send(MakeDatagram(b, a, 2));  // b->a (reverse direction): healthy
    fabric.Send(MakeDatagram(c, b, 3));  // c->b (same destination): healthy
    sim.Run();
  }
  EXPECT_EQ(b_received, 10) << "only c->b traffic should arrive at b";
  EXPECT_EQ(a_received, 10);
  EXPECT_EQ(fabric.fault_stats().datagrams_dropped, 10);
}

TEST(ChaosFabricTest, FabricWideDefaultAppliesEverywhereAndClears) {
  Simulator sim;
  Fabric fabric(&sim, {});
  const NodeId a = fabric.AddNode();
  const NodeId b = fabric.AddNode();
  int received = 0;
  fabric.SetReceiver(b, [&](Datagram) { ++received; });
  FaultProfile black_hole;
  black_hole.loss = 1.0;
  fabric.InjectFaults(black_hole);
  fabric.Send(MakeDatagram(a, b, 1));
  sim.Run();
  EXPECT_EQ(received, 0);
  fabric.ClearFaults();
  fabric.Send(MakeDatagram(a, b, 2));
  sim.Run();
  EXPECT_EQ(received, 1);
}

TEST(ChaosFabricTest, FaultScheduleIsDeterministicForAGivenSeed) {
  auto run = [] {
    Simulator sim;
    FabricOptions options;
    options.fault_seed = 0xfeedface;
    Fabric fabric(&sim, options);
    const NodeId a = fabric.AddNode();
    const NodeId b = fabric.AddNode();
    uint64_t payload_hash = 0;
    fabric.SetReceiver(b, [&](Datagram d) {
      for (const uint8_t byte : d.payload) {
        payload_hash = payload_hash * 1099511628211ull + byte;
      }
    });
    FaultProfile profile;
    profile.loss = 0.1;
    profile.duplicate = 0.1;
    profile.corrupt = 0.2;
    profile.truncate = 0.1;
    profile.delay_jitter = Milliseconds(2);
    fabric.InjectFaults(a, b, profile);
    for (int i = 0; i < 500; ++i) {
      fabric.Send(MakeDatagram(a, b, static_cast<uint8_t>(i)));
    }
    sim.Run();
    const FaultStats& stats = fabric.fault_stats();
    return std::make_tuple(payload_hash, stats.datagrams_dropped, stats.datagrams_duplicated,
                           stats.datagrams_corrupted, stats.datagrams_truncated,
                           stats.datagrams_delayed);
  };
  EXPECT_EQ(run(), run());
}

TEST(ChaosTransportTest, CorruptingFabricNeverDeliversGarbageMessages) {
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimEndpoint sender(&fabric, fabric.AddNode());
  SlimEndpoint receiver(&fabric, fabric.AddNode());
  int delivered = 0;
  receiver.set_handler([&](const Message&, NodeId) { ++delivered; });
  FaultProfile profile;
  profile.corrupt = 1.0;
  fabric.InjectFaults(sender.node(), receiver.node(), profile);
  for (int i = 0; i < 100; ++i) {
    sender.Send(receiver.node(), 1, PingMsg{static_cast<uint64_t>(i)});
    sim.Run();
  }
  // Every datagram was mutated in flight; the framing checksum must reject all of them.
  // Nothing is delivered and nothing is misparsed as a fragment (reassembly never starts).
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(receiver.stats().datagrams_corrupted, 100);
  EXPECT_EQ(receiver.stats().fragments_received, 0);
}

TEST(ChaosTransportTest, DuplicatingFabricDeliversEachMessageOnce) {
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimEndpoint sender(&fabric, fabric.AddNode());
  SlimEndpoint receiver(&fabric, fabric.AddNode());
  int delivered = 0;
  receiver.set_handler([&](const Message&, NodeId) { ++delivered; });
  FaultProfile profile;
  profile.duplicate = 1.0;
  fabric.InjectFaults(sender.node(), receiver.node(), profile);
  for (int i = 0; i < 100; ++i) {
    sender.Send(receiver.node(), 1, PingMsg{static_cast<uint64_t>(i)});
    sim.Run();
  }
  EXPECT_EQ(delivered, 100);
  EXPECT_EQ(receiver.stats().duplicate_messages, 100);
}

// The acceptance soak (ISSUE): a full server<->console session over a fabric injecting
// >=5% loss, >=1% duplication, >=1% corruption, truncation and reordering in BOTH
// directions, driven through >=10k simulator events, must converge to a pixel-identical
// framebuffer with zero crashes, and the corruption must be visible in EndpointStats.
TEST(ChaosSoakTest, HostileFabricSessionConvergesPixelIdentical) {
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimServer server(&sim, &fabric, {});
  Console console(&sim, &fabric, {});
  const uint64_t card = server.auth().IssueCard(1);
  ServerSession& session = server.CreateSession(card);
  auto app = MakeApplication(AppKind::kPim, &session, 41);
  app->BindInput();

  FaultProfile hostile;
  hostile.loss = 0.05;
  hostile.duplicate = 0.02;
  hostile.corrupt = 0.02;
  hostile.truncate = 0.01;
  hostile.delay_jitter = Milliseconds(2);
  fabric.InjectFaults(server.node(), console.node(), hostile);
  fabric.InjectFaults(console.node(), server.node(), hostile);

  console.InsertCard(server.node(), card);
  sim.Run();
  app->Start();
  sim.Run();

  Rng rng(97);
  for (int i = 0; i < 400; ++i) {
    if (rng.NextBool(0.8)) {
      console.SendKey(server.node(), session.id(), static_cast<uint32_t>(rng.NextBelow(997)),
                      true);
    } else {
      console.SendMouse(server.node(), session.id(),
                        static_cast<int32_t>(rng.NextBelow(1280)),
                        static_cast<int32_t>(rng.NextBelow(1024)), 1, false);
    }
    sim.RunUntil(sim.now() + Milliseconds(25));
  }
  sim.Run();

  // Convergence: repaint rounds give NACK recovery fresh traffic to detect tail loss
  // against. The chaos profile stays ACTIVE throughout — recovery must win against the
  // still-hostile fabric, not against a conveniently healed one.
  // Forced repaints: chaos loss means the console no longer matches the damage tracker's
  // shadow frame, so refined repaints would transmit nothing and never heal the holes.
  bool converged = false;
  for (int round = 0; round < 30 && !converged; ++round) {
    session.ForceRepaintAll();
    session.Flush();
    sim.Run();
    converged =
        session.framebuffer().ContentHash() == console.framebuffer().ContentHash();
  }
  EXPECT_TRUE(converged) << "console framebuffer never converged to the server's";

  // The run must have been a genuine soak with every fault class actually injected.
  EXPECT_GE(sim.events_executed(), 10000u);
  const FaultStats& faults = fabric.fault_stats();
  EXPECT_GT(faults.datagrams_dropped, 0);
  EXPECT_GT(faults.datagrams_duplicated, 0);
  EXPECT_GT(faults.datagrams_corrupted, 0);
  EXPECT_GT(faults.datagrams_truncated, 0);
  EXPECT_GT(faults.datagrams_delayed, 0);

  // Corruption/truncation surfaced as counted checksum rejections, and the recovery
  // machinery (NACK + replay + dedup) did real work.
  const EndpointStats& console_stats = console.endpoint().stats();
  const EndpointStats& server_stats = server.endpoint().stats();
  EXPECT_GT(console_stats.datagrams_corrupted, 0);
  EXPECT_GT(console_stats.nacks_sent, 0);
  EXPECT_GT(console_stats.duplicate_messages, 0);
  EXPECT_GT(server_stats.replays_sent, 0);
  // No display command was ever applied from corrupted bytes: the console either applied a
  // well-formed command or rejected/dropped it at a counted gate.
  EXPECT_EQ(console.commands_rejected(), 0);
}

}  // namespace
}  // namespace slim
