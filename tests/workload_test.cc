// Tests for the user behaviour models and the end-to-end user-study harness, including the
// paper's empirical regimes from Figure 2.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/util/stats.h"
#include "src/workload/user_model.h"
#include "src/workload/user_study.h"

namespace slim {
namespace {

// Figure 2's regimes must hold for every application model.
class UserModelRegimes : public ::testing::TestWithParam<int> {};

TEST_P(UserModelRegimes, InputFrequenciesMatchPaper) {
  const auto kind = static_cast<AppKind>(GetParam());
  UserModel model(kind, Rng(42));
  std::vector<double> frequencies;
  for (int i = 0; i < 20000; ++i) {
    const auto event = model.Next();
    if (event.delay > 0) {
      frequencies.push_back(1.0 / ToSeconds(event.delay));
    }
  }
  const double above_28 =
      static_cast<double>(std::count_if(frequencies.begin(), frequencies.end(),
                                        [](double f) { return f > 28.0; })) /
      static_cast<double>(frequencies.size());
  const double below_10 =
      static_cast<double>(std::count_if(frequencies.begin(), frequencies.end(),
                                        [](double f) { return f < 10.0; })) /
      static_cast<double>(frequencies.size());
  EXPECT_LT(above_28, 0.01) << "fewer than 1% of events above 28 Hz (Figure 2)";
  EXPECT_GT(below_10, 0.55) << "most events below 10 Hz (Figure 2)";
  EXPECT_LT(below_10, 0.97);
}

TEST_P(UserModelRegimes, DelaysArePositive) {
  const auto kind = static_cast<AppKind>(GetParam());
  UserModel model(kind, Rng(1));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(model.Next().delay, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, UserModelRegimes, ::testing::Range(0, kAppKindCount),
                         [](const auto& info) {
                           return std::string(AppKindName(static_cast<AppKind>(info.param)));
                         });

TEST(UserModelTest, ReadingAppsPauseLongerThanTypingApps) {
  // Netscape/Photoshop show substantially more >1 s gaps than FrameMaker/PIM (Figure 2).
  auto gap_fraction = [](AppKind kind) {
    UserModel model(kind, Rng(7));
    int long_gaps = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      if (model.Next().delay > Seconds(1)) {
        ++long_gaps;
      }
    }
    return static_cast<double>(long_gaps) / n;
  };
  EXPECT_GT(gap_fraction(AppKind::kNetscape), 3 * gap_fraction(AppKind::kFrameMaker));
  EXPECT_GT(gap_fraction(AppKind::kPhotoshop), 3 * gap_fraction(AppKind::kPim));
}

TEST(UserModelTest, DeterministicPerSeed) {
  UserModel a(AppKind::kNetscape, Rng(9));
  UserModel b(AppKind::kNetscape, Rng(9));
  for (int i = 0; i < 200; ++i) {
    const auto ea = a.Next();
    const auto eb = b.Next();
    EXPECT_EQ(ea.delay, eb.delay);
    EXPECT_EQ(ea.is_key, eb.is_key);
    EXPECT_EQ(ea.keycode, eb.keycode);
  }
}

TEST(UserStudyTest, SessionProducesConsistentLogs) {
  UserSessionConfig config;
  config.kind = AppKind::kPim;
  config.seed = 3;
  config.duration = Seconds(30);
  const UserSessionResult result = RunUserSession(config);
  EXPECT_TRUE(result.framebuffers_match);
  EXPECT_EQ(result.commands_dropped, 0);
  EXPECT_GT(result.input_events_sent, 0);
  // Every sent input is recorded by the instrumented server.
  EXPECT_EQ(result.log.input_events(), result.input_events_sent);
  EXPECT_GT(result.commands_applied, 0);
}

TEST(UserStudyTest, StudyRunsMultipleIndependentUsers) {
  const auto results = RunUserStudy(AppKind::kFrameMaker, 3, Seconds(20), 77);
  ASSERT_EQ(results.size(), 3u);
  // Different seeds produce different activity.
  EXPECT_NE(results[0].input_events_sent, results[1].input_events_sent);
  for (const auto& r : results) {
    EXPECT_TRUE(r.framebuffers_match);
  }
}

TEST(UserStudyTest, SameSeedReproducesExactly) {
  UserSessionConfig config;
  config.kind = AppKind::kNetscape;
  config.seed = 11;
  config.duration = Seconds(20);
  const auto a = RunUserSession(config);
  const auto b = RunUserSession(config);
  EXPECT_EQ(a.input_events_sent, b.input_events_sent);
  EXPECT_EQ(a.commands_applied, b.commands_applied);
  ASSERT_EQ(a.log.entries().size(), b.log.entries().size());
  EXPECT_EQ(a.log.AverageSlimBps(), b.log.AverageSlimBps());
}

TEST(UserStudyTest, ImageAppsUseMoreBandwidthThanTextApps) {
  // Figure 8's headline shape, checked end to end on short sessions.
  auto bandwidth = [](AppKind kind) {
    double total = 0;
    const auto results = RunUserStudy(kind, 3, Seconds(60), 1001);
    for (const auto& r : results) {
      total += r.log.AverageSlimBps();
    }
    return total / 3;
  };
  const double photoshop = bandwidth(AppKind::kPhotoshop);
  const double pim = bandwidth(AppKind::kPim);
  EXPECT_GT(photoshop, 3 * pim);
}

TEST(UpdateServiceTimesTest, GroupsByArrivalGaps) {
  std::vector<ServiceRecord> log;
  auto record = [&](SimTime arrival, SimTime completion) {
    ServiceRecord r;
    r.arrival = arrival;
    r.start = arrival;
    r.completion = completion;
    log.push_back(r);
  };
  // Two commands 0.5 ms apart (one update), then a 10 ms gap, then another update.
  record(0, Milliseconds(1));
  record(Microseconds(500), Milliseconds(3));
  record(Milliseconds(13), Milliseconds(14));
  const auto times = UpdateServiceTimesMs(log, Milliseconds(2));
  ASSERT_EQ(times.size(), 2u);
  EXPECT_NEAR(times[0], 3.0, 1e-9);
  EXPECT_NEAR(times[1], 1.0, 1e-9);
}

TEST(UpdateServiceTimesTest, EmptyLogEmptyResult) {
  EXPECT_TRUE(UpdateServiceTimesMs({}).empty());
}

}  // namespace
}  // namespace slim
