// Tracer edge cases (unbalanced ends, interleaved tids) and FlightRecorder ring-buffer
// properties: a dump taken after the ring has wrapped must still parse, stay sorted, and
// carry only balanced B/E pairs — the invariants Perfetto needs to load the file at all.

#include "src/obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/trace.h"
#include "src/util/rng.h"

namespace slim {
namespace {

// Parses a trace dump and checks the Perfetto-load invariants: every element is an object
// with a ph; non-metadata events carry nondecreasing timestamps; every tid's B/E spans
// nest. Fills `events` (when non-null) with the parsed array for further inspection.
void CheckTraceInvariants(const std::string& json, std::vector<JsonValue>* events = nullptr) {
  std::string error;
  const auto doc = JsonParse(json, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  ASSERT_TRUE(doc->is_array());
  std::map<int64_t, std::vector<std::string>> open;
  double last_ts = -1.0;
  for (const JsonValue& event : doc->as_array()) {
    ASSERT_TRUE(event.is_object());
    const JsonValue* ph = event.Find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->as_string() == "M") {
      continue;
    }
    const JsonValue* ts = event.Find("ts");
    ASSERT_NE(ts, nullptr);
    EXPECT_GE(ts->as_double(), last_ts) << "events out of order";
    last_ts = ts->as_double();
    const int64_t tid = event.Find("tid")->as_int();
    const std::string name = event.Find("name")->as_string();
    if (ph->as_string() == "B") {
      open[tid].push_back(name);
    } else if (ph->as_string() == "E") {
      ASSERT_FALSE(open[tid].empty()) << "unbalanced E on tid " << tid;
      open[tid].pop_back();
    }
  }
  for (const auto& [tid, stack] : open) {
    EXPECT_TRUE(stack.empty()) << "unclosed B on tid " << tid;
  }
  if (events != nullptr) {
    *events = doc->as_array();
  }
}

TEST(TracerTest, UnbalancedEndIsDroppedPerTid) {
  Tracer tracer;
  tracer.Begin(10, "a", "t", 1);
  tracer.Begin(20, "b", "t", 2);
  tracer.End(30, 3);  // no open span on tid 3: dropped, not emitted
  tracer.End(40, 1);
  tracer.End(50, 2);
  tracer.End(60, 1);  // tid 1 already closed: dropped
  tracer.End(70, 2);  // tid 2 already closed: dropped
  EXPECT_EQ(tracer.open_spans(), 0u);
  EXPECT_EQ(tracer.event_count(), 4u);  // 2 B + 2 E survive
  CheckTraceInvariants(tracer.Json());
}

TEST(TracerTest, InterleavedTidsKeepIndependentStacks) {
  Tracer tracer;
  // tid 1 nests two spans while tid 2 opens and closes across them; each tid's stack must
  // be independent for the end-on-tid-2 not to close tid 1's inner span.
  tracer.Begin(10, "outer", "t", 1);
  tracer.Begin(20, "other", "t", 2);
  tracer.Begin(30, "inner", "t", 1);
  tracer.End(40, 2);
  tracer.End(50, 1);  // closes "inner"
  EXPECT_EQ(tracer.open_spans(), 1u);  // "outer" still open
  tracer.End(60, 1);
  EXPECT_EQ(tracer.open_spans(), 0u);
  CheckTraceInvariants(tracer.Json());
}

TEST(TracerTest, OpenSpansCountsDanglingBeginsAfterDroppedEnds) {
  Tracer tracer;
  tracer.Begin(10, "a", "t", 1);
  tracer.Begin(20, "b", "t", 1);
  tracer.Begin(30, "c", "t", 2);
  tracer.End(40, 1);
  tracer.End(50, 7);  // dropped; must not disturb the real stacks
  EXPECT_EQ(tracer.open_spans(), 2u);
  // A dump with dangling B spans is the base tracer's contract (they render as unfinished
  // spans); only the flight recorder balance-filters. Parse-ability still holds.
  std::string error;
  EXPECT_TRUE(JsonParse(tracer.Json(), &error).has_value()) << error;
}

TEST(FlightRecorderTest, RingKeepsAtMostCapacityEvents) {
  FlightRecorder recorder(/*capacity=*/32);
  for (int i = 0; i < 100; ++i) {
    recorder.Instant(i * 10, "tick", "t", 1);
  }
  EXPECT_EQ(recorder.size(), 32u);
  EXPECT_EQ(recorder.total_recorded(), 100u);
  std::vector<JsonValue> events;
  CheckTraceInvariants(recorder.Json(), &events);
  // The survivors are the newest 32 instants.
  int instants = 0;
  for (const JsonValue& event : events) {
    if (event.Find("ph")->as_string() == "i") {
      ++instants;
      EXPECT_GE(event.Find("ts")->as_double(), 68 * 10 / 1000.0);
    }
  }
  EXPECT_EQ(instants, 32);
}

TEST(FlightRecorderTest, WraparoundDumpIsSortedBalancedAndParseable) {
  // Property test: drive the ring well past capacity with randomly interleaved spans,
  // instants, and completes across several tids, dumping repeatedly. Every dump must
  // satisfy the trace invariants even though overwrite orphans B/E halves arbitrarily.
  FlightRecorder recorder(/*capacity=*/64);
  Rng rng(1234);
  std::map<int, int> open_depth;
  SimTime now = 0;
  for (int i = 0; i < 1000; ++i) {
    now += static_cast<SimTime>(rng.NextBelow(5000));
    const int tid = 1 + static_cast<int>(rng.NextBelow(4));
    switch (rng.NextBelow(4)) {
      case 0:
        recorder.Begin(now, "span" + std::to_string(i % 7), "t", tid);
        ++open_depth[tid];
        break;
      case 1:
        if (open_depth[tid] > 0) {
          recorder.End(now, tid);
          --open_depth[tid];
        } else {
          recorder.End(now, tid);  // unbalanced: must be dropped, not recorded
        }
        break;
      case 2:
        recorder.Instant(now, "mark", "t", tid);
        break;
      default:
        recorder.Complete(now, static_cast<SimDuration>(rng.NextBelow(900)), "x", "t", tid);
        break;
    }
    if (i % 250 == 249) {
      CheckTraceInvariants(recorder.Json());  // mid-run dumps while spans are open
    }
  }
  EXPECT_GT(recorder.total_recorded(), recorder.capacity());
  EXPECT_EQ(recorder.size(), recorder.capacity());
  CheckTraceInvariants(recorder.Json());
}

TEST(FlightRecorderTest, ScopedInstallRespectsAnExistingGlobalTracer) {
  ASSERT_EQ(Tracer::Global(), nullptr);
  {
    ScopedFlightRecorder scoped;
    EXPECT_NE(scoped.recorder(), nullptr);
    EXPECT_EQ(Tracer::Global(), scoped.recorder());
    {
      // A full tracer is already installed (SLIM_TRACE scenario): the inner scope must
      // defer rather than displace it.
      ScopedFlightRecorder inner;
      EXPECT_EQ(inner.recorder(), nullptr);
      EXPECT_EQ(Tracer::Global(), scoped.recorder());
    }
    EXPECT_EQ(Tracer::Global(), scoped.recorder());
  }
  EXPECT_EQ(Tracer::Global(), nullptr);
}

}  // namespace
}  // namespace slim
