// Tests for src/util: rng, stats, histogram, table, time helpers.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/util/histogram.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/util/time.h"

namespace slim {
namespace {

TEST(TimeTest, UnitConversions) {
  EXPECT_EQ(Microseconds(1), 1000);
  EXPECT_EQ(Milliseconds(1), 1000 * 1000);
  EXPECT_EQ(Seconds(2), 2'000'000'000);
  EXPECT_DOUBLE_EQ(ToMillis(Milliseconds(5)), 5.0);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(3)), 3.0);
}

TEST(TimeTest, TransmissionDelayMatchesLineRate) {
  // 1500 bytes at 100 Mbps = 120 us.
  EXPECT_EQ(TransmissionDelay(1500, 100'000'000), Microseconds(120));
  // Rounds up: 1 byte at 1 Gbps is 8 ns.
  EXPECT_EQ(TransmissionDelay(1, 1'000'000'000), 8);
}

TEST(TimeTest, TransmissionDelayPositiveForAnyPayload) {
  for (int64_t bytes = 1; bytes < 100; ++bytes) {
    EXPECT_GT(TransmissionDelay(bytes, 1'000'000'000), 0) << bytes;
  }
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextU64() == b.NextU64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.NextBelow(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextInRangeInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.Add(rng.NextExponential(4.0));
  }
  EXPECT_NEAR(stats.mean(), 4.0, 0.15);
}

TEST(RngTest, NormalMoments) {
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.Add(rng.NextNormal(10.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(RngTest, ParetoRespectsScale) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.NextPareto(1.5, 2.0), 1.5);
  }
}

TEST(RngTest, PoissonMeanApproximatelyCorrect) {
  Rng rng(29);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(rng.NextPoisson(3.0));
  }
  EXPECT_NEAR(stats.mean(), 3.0, 0.15);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Split();
  // The child stream should not simply replay the parent's outputs.
  Rng parent2(31);
  parent2.NextU64();  // advance past the split draw
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += child.NextU64() == parent2.NextU64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(PercentileTest, InterpolatesBetweenSamples) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 25.0);
}

TEST(PercentileTest, UnsortedInputHandled) {
  const std::vector<double> v{40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 10.0);
}

TEST(PercentileTest, EmptyReturnsZero) {
  EXPECT_EQ(Percentile(std::vector<double>{}, 50), 0.0);
}

TEST(FitLineTest, RecoversExactLine) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(i);
    y.push_back(5000.0 + 270.0 * i);  // Table 5: SET startup + per-pixel shape
  }
  const LinearFit fit = FitLine(x, y);
  EXPECT_NEAR(fit.slope, 270.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 5000.0, 1e-6);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLineTest, DegenerateInputs) {
  const LinearFit empty = FitLine(std::vector<double>{}, std::vector<double>{});
  EXPECT_EQ(empty.slope, 0.0);
  const std::vector<double> one_x{3.0};
  const std::vector<double> one_y{9.0};
  const LinearFit single = FitLine(one_x, one_y);
  EXPECT_EQ(single.intercept, 9.0);
}

TEST(HistogramTest, CdfMatchesCounts) {
  Histogram h(0.0, 100.0, 1.0);
  for (int i = 0; i < 100; ++i) {
    h.Add(i + 0.5);
  }
  EXPECT_EQ(h.total_count(), 100);
  EXPECT_NEAR(h.CdfAt(49.9), 0.5, 0.011);
  EXPECT_DOUBLE_EQ(h.CdfAt(1000.0), 1.0);
  EXPECT_DOUBLE_EQ(h.CdfAt(-5.0), 0.0);
}

TEST(HistogramTest, InverseCdfFindsMedian) {
  Histogram h(0.0, 10.0, 0.1);
  for (int i = 0; i < 1000; ++i) {
    h.Add(i < 500 ? 2.0 : 8.0);
  }
  EXPECT_NEAR(h.InverseCdf(0.5), 2.1, 0.11);
  EXPECT_NEAR(h.InverseCdf(0.99), 8.1, 0.11);
}

TEST(HistogramTest, ValuesOutsideRangeClampToEdges) {
  Histogram h(0.0, 10.0, 1.0);
  h.Add(-5.0);
  h.Add(50.0);
  EXPECT_EQ(h.total_count(), 2);
  EXPECT_NEAR(h.CdfAt(0.99), 0.5, 1e-9);
}

TEST(HistogramTest, CdfSeriesEndsAtOne) {
  Histogram h(0.0, 100.0, 1.0);
  for (int i = 0; i < 1000; ++i) {
    h.Add(static_cast<double>(i % 100));
  }
  const std::string series = h.CdfSeries(16);
  ASSERT_FALSE(series.empty());
  const size_t last_line = series.rfind('\t');
  EXPECT_NE(last_line, std::string::npos);
  EXPECT_NEAR(std::stod(series.substr(last_line + 1)), 1.0, 1e-6);
}

TEST(HistogramTest, CdfSeriesOfEmptyHistogramEmitsMarker) {
  // An empty histogram must still produce one row so downstream gnuplot/awk pipelines can
  // tell "series exists but is empty" apart from "series file missing".
  Histogram h(0.0, 100.0, 1.0);
  EXPECT_EQ(h.CdfSeries(16), "# empty\n");
}

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "10000"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 10000 |"), std::string::npos);
}

TEST(FormatTest, PrintfSemantics) {
  EXPECT_EQ(Format("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(Format("empty"), "empty");
}

}  // namespace
}  // namespace slim
