// Tests for protocol logging and the paper's post-processing analyses.

#include <gtest/gtest.h>

#include "src/trace/protocol_log.h"
#include "src/xproto/xcost.h"

namespace slim {
namespace {

DisplayCommand SmallFill() { return FillCommand{Rect{0, 0, 10, 10}, kWhite}; }

TEST(ProtocolLogTest, CountsInputEvents) {
  ProtocolLog log;
  log.RecordInput(Seconds(1), true);
  log.RecordInput(Seconds(2), false);
  log.RecordCommand(Seconds(2), SmallFill());
  EXPECT_EQ(log.input_events(), 2);
  EXPECT_EQ(log.entries().size(), 3u);
}

TEST(ProtocolLogTest, InputIntervals) {
  ProtocolLog log;
  log.RecordInput(Seconds(1), true);
  log.RecordInput(Seconds(1) + Milliseconds(100), true);
  log.RecordInput(Seconds(1) + Milliseconds(350), true);
  const auto intervals = log.InputIntervalsSeconds();
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_NEAR(intervals[0], 0.1, 1e-9);
  EXPECT_NEAR(intervals[1], 0.25, 1e-9);
}

TEST(ProtocolLogTest, AttributionAssignsDisplayToPrecedingEvent) {
  // The Section 5.2 heuristic: everything between event N and N+1 belongs to N.
  ProtocolLog log;
  log.RecordCommand(Milliseconds(5), SmallFill());  // before any event: dropped
  log.RecordInput(Milliseconds(10), true);
  log.RecordCommand(Milliseconds(20), SmallFill());
  log.RecordCommand(Milliseconds(30), SmallFill());
  log.RecordInput(Milliseconds(100), true);
  log.RecordCommand(Milliseconds(110), SmallFill());
  const auto updates = log.AttributeToEvents();
  ASSERT_EQ(updates.size(), 2u);
  EXPECT_EQ(updates[0].commands, 2);
  EXPECT_EQ(updates[0].pixels, 200);
  EXPECT_EQ(updates[1].commands, 1);
}

TEST(ProtocolLogTest, AttributionIncludesXCosts) {
  ProtocolLog log;
  log.RecordInput(Milliseconds(10), true);
  log.RecordXRequest(Milliseconds(12), 100);
  log.RecordXRequest(Milliseconds(14), 50);
  const auto updates = log.AttributeToEvents();
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_EQ(updates[0].x_bytes, 150);
}

TEST(ProtocolLogTest, AverageBandwidths) {
  ProtocolLog log;
  // Span exactly 10 seconds; one display command of known size.
  log.RecordInput(0, true);
  SetCommand set;
  set.dst = Rect{0, 0, 100, 100};
  set.rgb.assign(100 * 100 * 3, 0);
  log.RecordCommand(Seconds(5), DisplayCommand(set));
  log.RecordXRequest(Seconds(6), 10000);
  log.RecordInput(Seconds(10), true);
  const double slim_expected =
      static_cast<double>(WireSize(DisplayCommand(set))) * 8.0 / 10.0;
  EXPECT_NEAR(log.AverageSlimBps(), slim_expected, 1.0);
  EXPECT_NEAR(log.AverageXBps(), 10000 * 8.0 / 10.0, 1.0);
  EXPECT_NEAR(log.AverageRawBps(), 100 * 100 * 3 * 8.0 / 10.0, 1.0);
}

TEST(ProtocolLogTest, TotalsByTypeSeparateCommands) {
  ProtocolLog log;
  log.RecordCommand(0, SmallFill());
  log.RecordCommand(0, SmallFill());
  log.RecordCommand(0, CopyCommand{0, 0, Rect{0, 0, 50, 50}});
  ProtocolLog::TypeTotals totals[6];
  log.TotalsByType(totals);
  EXPECT_EQ(totals[static_cast<size_t>(CommandType::kFill)].commands, 2);
  EXPECT_EQ(totals[static_cast<size_t>(CommandType::kCopy)].commands, 1);
  EXPECT_EQ(totals[static_cast<size_t>(CommandType::kCopy)].uncompressed_bytes, 50 * 50 * 3);
  EXPECT_EQ(totals[static_cast<size_t>(CommandType::kSet)].commands, 0);
}

TEST(ProtocolLogTest, EmptyLogSafeDefaults) {
  ProtocolLog log;
  EXPECT_EQ(log.Span(), 0);
  EXPECT_EQ(log.AverageSlimBps(), 0.0);
  EXPECT_TRUE(log.AttributeToEvents().empty());
  EXPECT_TRUE(log.InputIntervalsSeconds().empty());
}

TEST(XCostTest, RequestSizesFollowCoreProtocol) {
  EXPECT_EQ(XFillRectBytes(), 20);
  EXPECT_EQ(XFillRectBytes(3), 36);
  EXPECT_EQ(XCopyAreaBytes(), 28);
  EXPECT_EQ(XEventBytes(), 32);
  EXPECT_EQ(XChangeGcBytes(), 16);
  // Text: 16-byte request + item header + chars, padded to 4.
  EXPECT_EQ(XDrawTextBytes(1), 16 + 4);
  EXPECT_EQ(XDrawTextBytes(10), 16 + 12);
  // Images: 4 bytes per pixel at depth 24.
  EXPECT_EQ(XPutImageBytes(100), 24 + 400);
  EXPECT_EQ(XVideoFrameBytes(720, 480), 24 + 4LL * 720 * 480);
}

TEST(XCostTest, ImageCostExceedsSlimPackedEncoding) {
  // The structural reason SLIM wins on image apps (Figure 8): 4 B/px vs 3 B/px + header.
  const int64_t pixels = 300 * 200;
  SetCommand set;
  set.dst = Rect{0, 0, 300, 200};
  set.rgb.assign(static_cast<size_t>(pixels) * 3, 0);
  EXPECT_GT(XPutImageBytes(pixels), static_cast<int64_t>(WireSize(DisplayCommand(set))));
}

}  // namespace
}  // namespace slim
