// Session-lifecycle tests: transmit ordering through the server's single FIFO pipeline,
// the hotdesk handoff protocol (old console released and blanked before the new console's
// repaint), console liveness (keepalive probe -> timeout -> detach, with bounded re-probe
// backoff), idle-session eviction, and the attach/detach state machine's behaviour when a
// chaotic fabric loses the control messages themselves.
//
// Every test here uses RunFor/RunUntil, never Run(): an armed keepalive re-probes forever,
// so with liveness enabled the event queue never goes empty.

#include <gtest/gtest.h>

#include <vector>

#include "src/apps/content.h"
#include "src/console/console.h"
#include "src/net/fabric.h"
#include "src/net/transport.h"
#include "src/protocol/messages.h"
#include "src/server/slim_server.h"
#include "src/server/transmit_queue.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/util/time.h"

namespace slim {
namespace {

uint64_t BlankHash(const Console& console) {
  return Framebuffer(console.framebuffer().width(), console.framebuffer().height())
      .ContentHash();
}

// --- Transmit queue unit behaviour -------------------------------------------------------

TEST(TransmitQueueTest, ZeroCostSendQueuesBehindBusyPipeline) {
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimEndpoint server(&fabric, fabric.AddNode());
  SlimEndpoint console(&fabric, fabric.AddNode());
  std::vector<MessageType> arrivals;
  console.set_handler(
      [&](const Message& msg, NodeId) { arrivals.push_back(TypeOfMessage(msg)); });

  TransmitQueue queue(&sim, &server, /*model_cpu_delay=*/true);
  const SimTime costly_done =
      queue.Send(console.node(), 1, FillCommand{Rect{0, 0, 8, 8}, kWhite}, Milliseconds(5));
  EXPECT_EQ(costly_done, Milliseconds(5));
  // An audio sample costs the modeled CPU nothing, but it must still leave after the fill
  // the pipeline is busy with — this is the slim_server.cc fast-path reordering bug.
  const SimTime audio_done = queue.Send(console.node(), 1, AudioMsg{8000, {1, 2, 3}}, 0);
  EXPECT_EQ(audio_done, costly_done);
  EXPECT_EQ(queue.deferred(), 2);
  EXPECT_EQ(queue.depth(1), 2);

  sim.RunFor(Milliseconds(20));
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], MessageType::kFill);
  EXPECT_EQ(arrivals[1], MessageType::kAudio);
  EXPECT_EQ(queue.total_depth(), 0);
  EXPECT_EQ(queue.max_depth(), 2);

  // Pipeline drained: a zero-cost send now takes the immediate path again.
  const int64_t deferred_before = queue.deferred();
  EXPECT_EQ(queue.Send(console.node(), 1, AudioMsg{8000, {4}}, 0), sim.now());
  EXPECT_EQ(queue.deferred(), deferred_before);
}

// --- Server-level transmit ordering ------------------------------------------------------

class OrderingFixture : public ::testing::Test {
 protected:
  OrderingFixture() : fabric_(&sim_, {}) {
    ServerOptions options;
    options.model_cpu_delay = true;
    server_ = std::make_unique<SlimServer>(&sim_, &fabric_, options);
    fake_console_ = std::make_unique<SlimEndpoint>(&fabric_, fabric_.AddNode());
    fake_console_->set_handler(
        [&](const Message& msg, NodeId) { arrivals_.push_back(TypeOfMessage(msg)); });
  }

  bool IsDisplay(MessageType t) const {
    return t == MessageType::kSet || t == MessageType::kBitmap || t == MessageType::kFill ||
           t == MessageType::kCopy || t == MessageType::kCscs;
  }

  Simulator sim_;
  Fabric fabric_;
  std::unique_ptr<SlimServer> server_;
  std::unique_ptr<SlimEndpoint> fake_console_;
  std::vector<MessageType> arrivals_;
};

TEST_F(OrderingFixture, AudioAndPongNeverOvertakeCpuDelayedDisplayCommands) {
  const uint64_t card = server_->auth().IssueCard(1);
  ServerSession& session = server_->CreateSession(card);
  fake_console_->Send(server_->node(), 0, SessionAttachMsg{card});
  sim_.RunFor(Seconds(1));
  ASSERT_TRUE(session.attached());
  arrivals_.clear();

  // A costed burst, then — at the same simulated instant — a zero-cost audio sample and a
  // ping. The modeled CPU is busy with the burst, so neither may overtake it.
  Rng rng(21);
  session.PutImage(Rect{0, 0, 320, 240}, MakePhotoBlock(&rng, 320, 240));
  session.Flush();
  const uint8_t samples[64] = {};
  session.SendAudio(8000, samples);
  fake_console_->Send(server_->node(), session.id(), PingMsg{7});
  sim_.RunFor(Seconds(1));

  EXPECT_GT(server_->tx_queue().deferred(), 0);
  int last_display = -1;
  int audio_at = -1;
  int pong_at = -1;
  for (int i = 0; i < static_cast<int>(arrivals_.size()); ++i) {
    if (IsDisplay(arrivals_[i])) {
      last_display = i;
    } else if (arrivals_[i] == MessageType::kAudio) {
      audio_at = i;
    } else if (arrivals_[i] == MessageType::kPong) {
      pong_at = i;
    }
  }
  ASSERT_GE(last_display, 0);
  ASSERT_GE(audio_at, 0);
  ASSERT_GE(pong_at, 0);
  EXPECT_GT(audio_at, last_display) << "audio overtook a CPU-delayed display command";
  EXPECT_GT(pong_at, last_display) << "pong overtook a CPU-delayed display command";
}

// --- Hotdesk handoff ---------------------------------------------------------------------

class LifecycleFixture : public ::testing::Test {
 protected:
  explicit LifecycleFixture(ServerOptions options = {})
      : fabric_(&sim_, {}),
        server_(&sim_, &fabric_, options),
        console_a_(&sim_, &fabric_, ConsoleOptions{}),
        console_b_(&sim_, &fabric_, ConsoleOptions{}) {}

  ServerSession& AttachedAt(Console& console) {
    card_ = server_.auth().IssueCard(1);
    ServerSession& session = server_.CreateSession(card_);
    console.InsertCard(server_.node(), card_);
    sim_.RunFor(Seconds(1));
    EXPECT_TRUE(session.attached());
    EXPECT_EQ(session.console(), console.node());
    return session;
  }

  Simulator sim_;
  Fabric fabric_;
  SlimServer server_;
  Console console_a_;
  Console console_b_;
  uint64_t card_ = 0;
};

TEST_F(LifecycleFixture, HotdeskReleasesAndBlanksTheOldConsole) {
  ServerSession& session = AttachedAt(console_a_);
  Rng rng(31);
  session.PutImage(Rect{10, 10, 200, 150}, MakePhotoBlock(&rng, 200, 150));
  session.Flush();
  sim_.RunFor(Seconds(1));
  ASSERT_EQ(session.framebuffer().ContentHash(), console_a_.framebuffer().ContentHash());

  // The card appears at console B without a RemoveCard first — the pull case the old
  // server mishandled by leaving console A live with a stale screen.
  console_b_.InsertCard(server_.node(), card_);
  sim_.RunFor(Seconds(1));
  const int64_t a_commands_after_handoff = console_a_.commands_applied();

  EXPECT_EQ(session.console(), console_b_.node());
  EXPECT_EQ(server_.lifecycle_stats().hotdesk_handoffs, 1);
  // The new console converges bit-exact on the session's true framebuffer.
  EXPECT_EQ(session.framebuffer().ContentHash(), console_b_.framebuffer().ContentHash());
  // The old console honoured the release: blanked, not frozen on the user's last screen.
  EXPECT_GE(console_a_.releases_applied(), 1);
  EXPECT_EQ(console_a_.framebuffer().ContentHash(), BlankHash(console_a_));

  // And it stops receiving session traffic: more drawing reaches only console B.
  session.PutImage(Rect{50, 50, 100, 100}, MakePhotoBlock(&rng, 100, 100));
  session.Flush();
  sim_.RunFor(Seconds(1));
  EXPECT_EQ(console_a_.commands_applied(), a_commands_after_handoff);
  EXPECT_EQ(session.framebuffer().ContentHash(), console_b_.framebuffer().ContentHash());
  EXPECT_EQ(console_a_.framebuffer().ContentHash(), BlankHash(console_a_));
}

TEST_F(LifecycleFixture, CardRemovalDetachesAndBlanks) {
  ServerSession& session = AttachedAt(console_a_);
  console_a_.RemoveCard(server_.node(), card_);
  sim_.RunFor(Seconds(1));
  EXPECT_FALSE(session.attached());
  EXPECT_EQ(server_.session_state(session.id()), SessionState::kDetached);
  EXPECT_EQ(server_.lifecycle_stats().detaches, 1);
  EXPECT_EQ(console_a_.framebuffer().ContentHash(), BlankHash(console_a_));
  // The session itself survives (it is detached, not evicted) and resumes on re-insert.
  EXPECT_EQ(server_.session_count(), 1u);
  console_a_.InsertCard(server_.node(), card_);
  sim_.RunFor(Seconds(1));
  EXPECT_TRUE(session.attached());
  EXPECT_EQ(session.framebuffer().ContentHash(), console_a_.framebuffer().ContentHash());
}

// --- Console liveness --------------------------------------------------------------------

ServerOptions LivenessOptions(SimDuration interval, SimDuration timeout, int max_missed) {
  ServerOptions options;
  options.lifecycle.keepalive_interval = interval;
  options.lifecycle.keepalive_timeout = timeout;
  options.lifecycle.max_missed_probes = max_missed;
  return options;
}

class KeepaliveFixture : public LifecycleFixture {
 protected:
  KeepaliveFixture()
      : LifecycleFixture(LivenessOptions(Milliseconds(50), Milliseconds(60), 3)) {}
};

TEST_F(KeepaliveFixture, SilentConsoleIsDetachedWithinBoundAndProbesBackOff) {
  ServerSession& session = AttachedAt(console_a_);
  // The console goes silent: everything it sends (pongs included) is lost. The server's
  // own traffic still flows, so the release notice will reach the dead-uplink console.
  FaultProfile mute;
  mute.loss = 1.0;
  fabric_.InjectFaults(console_a_.node(), server_.node(), mute);
  const int64_t probes_while_healthy = server_.lifecycle_stats().probes_sent;

  sim_.RunFor(Seconds(2));

  EXPECT_FALSE(session.attached());
  EXPECT_EQ(server_.session_state(session.id()), SessionState::kDetached);
  EXPECT_EQ(server_.lifecycle_stats().keepalive_timeouts, 1);
  EXPECT_EQ(server_.lifecycle_stats().detaches, 1);
  // Detach happened within the configured bound: first probe at 50ms, then misses at
  // backed-off gaps (100ms, 200ms) — three misses land well inside 500ms, and the
  // exponential backoff keeps the probe count small instead of hammering a dead console.
  EXPECT_LE(server_.lifecycle_stats().probes_sent - probes_while_healthy, 6);
  EXPECT_EQ(console_a_.framebuffer().ContentHash(), BlankHash(console_a_));
  // The console did answer every ping it heard; the answers just never arrived.
  EXPECT_GT(console_a_.pings_answered(), 0);
}

TEST_F(KeepaliveFixture, ResponsiveConsoleStaysAttachedIndefinitely) {
  ServerSession& session = AttachedAt(console_a_);
  sim_.RunFor(Seconds(5));
  EXPECT_TRUE(session.attached());
  EXPECT_EQ(server_.lifecycle_stats().keepalive_timeouts, 0);
  EXPECT_GT(server_.lifecycle_stats().probes_sent, 0);
  EXPECT_GT(console_a_.pings_answered(), 0);
}

class LossyKeepaliveFixture : public LifecycleFixture {
 protected:
  // Tolerant liveness settings: a quarter of all datagrams die in each direction, but a
  // pong every 300ms is enough to stay attached.
  LossyKeepaliveFixture()
      : LifecycleFixture(LivenessOptions(Milliseconds(50), Milliseconds(300), 8)) {}
};

TEST_F(LossyKeepaliveFixture, LivenessSurvivesChaosLossWithoutFalseDetach) {
  ServerSession& session = AttachedAt(console_a_);
  FaultProfile lossy;
  lossy.loss = 0.25;
  fabric_.InjectFaults(server_.node(), console_a_.node(), lossy);
  fabric_.InjectFaults(console_a_.node(), server_.node(), lossy);

  sim_.RunFor(Seconds(5));

  EXPECT_TRUE(session.attached());
  EXPECT_EQ(server_.lifecycle_stats().keepalive_timeouts, 0);
  EXPECT_GT(server_.lifecycle_stats().probes_sent, 10);
  EXPECT_GT(console_a_.pings_answered(), 0);
}

// --- Eviction and directory hygiene ------------------------------------------------------

class EvictionFixture : public LifecycleFixture {
 protected:
  static ServerOptions Options() {
    ServerOptions options;
    options.lifecycle.evict_after = Milliseconds(100);
    return options;
  }
  EvictionFixture() : LifecycleFixture(Options()) {}
};

TEST_F(EvictionFixture, IdleDetachedSessionIsEvictedAndCardMappingReclaimed) {
  ServerSession& session = AttachedAt(console_a_);
  const uint32_t id = session.id();
  console_a_.RemoveCard(server_.node(), card_);
  sim_.RunFor(Milliseconds(50));
  // Still inside the idle window: the session survives.
  EXPECT_EQ(server_.session_count(), 1u);

  sim_.RunFor(Seconds(1));
  EXPECT_EQ(server_.session_count(), 0u);
  EXPECT_EQ(server_.card_count(), 0u);
  EXPECT_EQ(server_.lifecycle_stats().evictions, 1);
  EXPECT_EQ(server_.FindSession(id), nullptr);
  EXPECT_EQ(server_.session_state(id), SessionState::kDetached);

  // The card still authenticates; re-inserting it starts a fresh session (the old desktop
  // is gone — that is what eviction means).
  console_a_.InsertCard(server_.node(), card_);
  sim_.RunFor(Seconds(1));
  EXPECT_EQ(server_.session_count(), 1u);
  ServerSession* fresh = server_.SessionForCard(card_);
  ASSERT_NE(fresh, nullptr);
  EXPECT_NE(fresh->id(), id);
  EXPECT_TRUE(fresh->attached());
}

TEST_F(EvictionFixture, ReattachCancelsEviction) {
  ServerSession& session = AttachedAt(console_a_);
  console_a_.RemoveCard(server_.node(), card_);
  sim_.RunFor(Milliseconds(50));
  console_a_.InsertCard(server_.node(), card_);  // back before the idle window expires
  sim_.RunFor(Seconds(1));
  EXPECT_TRUE(session.attached());
  EXPECT_EQ(server_.session_count(), 1u);
  EXPECT_EQ(server_.lifecycle_stats().evictions, 0);
}

TEST(SessionDirectoryTest, RebindingACardEvictsTheOldSessionInsteadOfDangling) {
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimServer server(&sim, &fabric, {});
  const uint64_t card = server.auth().IssueCard(1);
  ServerSession& first = server.CreateSession(card);
  const uint32_t first_id = first.id();
  ServerSession& second = server.CreateSession(card);

  // Before the fix, the first session stayed alive in sessions_ with no card mapping —
  // unreachable, unevictable, and growing without bound under churn.
  EXPECT_NE(second.id(), first_id);
  EXPECT_EQ(server.session_count(), 1u);
  EXPECT_EQ(server.card_count(), 1u);
  EXPECT_EQ(server.FindSession(first_id), nullptr);
  EXPECT_EQ(server.SessionForCard(card), &second);
  EXPECT_EQ(server.lifecycle_stats().evictions, 1);
}

// --- Churn under chaos -------------------------------------------------------------------

// The acceptance property: a card storming between two consoles over a fabric that loses
// one datagram in ten — including the attach/detach/release control messages themselves —
// must end with exactly one console attached, the other blanked, and the winner bit-exact.
TEST(ChurnChaosTest, HotdeskStormOverLossyFabricConverges) {
  Simulator sim;
  Fabric fabric(&sim, {});
  ServerOptions options = LivenessOptions(Milliseconds(50), Milliseconds(400), 8);
  SlimServer server(&sim, &fabric, options);
  Console a(&sim, &fabric, ConsoleOptions{});
  Console b(&sim, &fabric, ConsoleOptions{});
  const uint64_t card = server.auth().IssueCard(1);
  ServerSession& session = server.CreateSession(card);

  FaultProfile lossy;
  lossy.loss = 0.1;
  lossy.delay_jitter = Milliseconds(1);
  for (const Console* c : {&a, &b}) {
    fabric.InjectFaults(server.node(), c->node(), lossy);
    fabric.InjectFaults(c->node(), server.node(), lossy);
  }

  a.InsertCard(server.node(), card);
  sim.RunFor(Milliseconds(200));

  Rng rng(71);
  Console* holder = &a;
  for (int i = 0; i < 24; ++i) {
    if (rng.NextBool(0.25)) {
      holder->RemoveCard(server.node(), card);  // sometimes a clean pull first
      sim.RunFor(Milliseconds(20));
    }
    holder = rng.NextBool(0.5) ? &a : &b;
    holder->InsertCard(server.node(), card);
    sim.RunFor(Milliseconds(20));
    // Some churn traffic so handoffs happen mid-stream, not on an idle screen.
    if (session.attached()) {
      session.FillRect(Rect{static_cast<int32_t>(rng.NextBelow(1000)),
                            static_cast<int32_t>(rng.NextBelow(800)), 64, 64},
                       MakePixel(static_cast<uint8_t>(rng.NextBelow(255)), 64, 64));
      session.Flush();
    }
  }

  // Settle on console A — re-insert until the attach wins against the loss — then heal
  // with forced repaints. Faults stay active throughout: convergence must beat the still
  // lossy fabric, not a conveniently healed one.
  Console* winner = &a;
  Console* loser = &b;
  bool converged = false;
  for (int round = 0; round < 40 && !converged; ++round) {
    if (!session.attached() || session.console() != winner->node()) {
      winner->InsertCard(server.node(), card);
    } else {
      session.ForceRepaintAll();
      session.Flush();
    }
    sim.RunFor(Milliseconds(100));
    converged = session.attached() && session.console() == winner->node() &&
                session.framebuffer().ContentHash() == winner->framebuffer().ContentHash();
  }
  EXPECT_TRUE(converged) << "hotdesk churn never converged on the final console";

  // No stuck or double-attached state: exactly one session, attached exactly once.
  EXPECT_EQ(server.session_count(), 1u);
  EXPECT_EQ(server.card_count(), 1u);
  EXPECT_EQ(server.session_state(session.id()), SessionState::kAttached);

  // The loser ends blanked even though individual release notices were droppable — the
  // bounded re-sends make the blank reliable. Give any trailing re-send time to land.
  sim.RunFor(Milliseconds(300));
  EXPECT_EQ(loser->framebuffer().ContentHash(),
            Framebuffer(loser->framebuffer().width(), loser->framebuffer().height())
                .ContentHash());
  EXPECT_GT(server.lifecycle_stats().hotdesk_handoffs, 0);
  EXPECT_GT(server.lifecycle_stats().releases_sent, 0);
  // And the winner is still live (keepalive saw it the whole time).
  EXPECT_EQ(server.lifecycle_stats().keepalive_timeouts, 0);
}

}  // namespace
}  // namespace slim
