// Tests for resource profiles, the trace-driven load generator, and both yardsticks.

#include <gtest/gtest.h>

#include "src/loadgen/loadgen.h"

namespace slim {
namespace {

TEST(ProfileTest, SynthesizedAveragesMatchParams) {
  for (int k = 0; k < kAppKindCount; ++k) {
    const auto kind = static_cast<AppKind>(k);
    const AppResourceParams params = ResourceParamsFor(kind);
    // Long horizon so the stochastic interval draws converge.
    const ResourceProfile profile = SynthesizeProfile(kind, Seconds(3600 * 4), Rng(7));
    EXPECT_NEAR(profile.AverageCpu(), params.mean_cpu, params.mean_cpu * 0.25)
        << AppKindName(kind);
    EXPECT_NEAR(profile.AverageNetBps(), params.mean_net_bps, params.mean_net_bps * 0.3)
        << AppKindName(kind);
    EXPECT_LE(profile.PeakResidentBytes(), params.working_set_bytes);
    EXPECT_GT(profile.PeakResidentBytes(), params.working_set_bytes / 2);
  }
}

TEST(ProfileTest, IntervalValuesAreSane) {
  const ResourceProfile profile = SynthesizeProfile(AppKind::kNetscape, Seconds(600), Rng(3));
  EXPECT_EQ(profile.intervals.size(), 120u);
  for (const auto& interval : profile.intervals) {
    EXPECT_GE(interval.cpu_fraction, 0.0);
    EXPECT_LE(interval.cpu_fraction, 1.0);
    EXPECT_GE(interval.net_bytes, 0);
    EXPECT_GE(interval.resident_bytes, 0);
  }
}

TEST(LoadGeneratorTest, ConsumesApproximatelyProfileCpuWhenUnderloaded) {
  Simulator sim;
  MpScheduler sched(&sim, {});
  const ResourceProfile profile = SynthesizeProfile(AppKind::kNetscape, Seconds(300), Rng(5));
  LoadGeneratorProcess proc(&sim, &sched, profile, Rng(6));
  proc.Start();
  sim.Run();
  const double target = profile.AverageCpu() * 300.0;
  EXPECT_NEAR(ToSeconds(proc.cpu_consumed()), target, target * 0.1);
  EXPECT_LT(ToSeconds(proc.cpu_discarded()), target * 0.05);
}

TEST(LoadGeneratorTest, OverloadDiscardsInsteadOfBackloggingForever) {
  // 30 Netscape-class users on one CPU: offered ~4x capacity. The generators must discard
  // the excess at interval boundaries (paper semantics), keeping the system stable.
  Simulator sim;
  MpScheduler sched(&sim, {});
  std::vector<std::unique_ptr<LoadGeneratorProcess>> procs;
  Rng rng(9);
  for (int i = 0; i < 30; ++i) {
    procs.push_back(std::make_unique<LoadGeneratorProcess>(
        &sim, &sched, SynthesizeProfile(AppKind::kNetscape, Seconds(120), rng.Split()),
        rng.Split()));
    procs.back()->Start();
  }
  sim.Run();
  SimDuration consumed = 0;
  SimDuration discarded = 0;
  for (const auto& p : procs) {
    consumed += p->cpu_consumed();
    discarded += p->cpu_discarded();
  }
  // Cannot consume more than one CPU's worth of the 120 s horizon.
  EXPECT_LE(consumed, Seconds(125));
  EXPECT_GT(discarded, Seconds(10)) << "oversubscription must be visible as discards";
  EXPECT_GT(sched.Utilization(), 0.9);
}

TEST(CpuYardstickTest, UnloadedAddedLatencyIsZero) {
  Simulator sim;
  MpScheduler sched(&sim, {});
  CpuYardstick yardstick(&sim, &sched);
  yardstick.Start();
  sim.RunUntil(Seconds(10));
  EXPECT_GT(yardstick.added_latency_ms().size(), 50u);
  EXPECT_NEAR(yardstick.AverageAddedLatencyMs(), 0.0, 0.01);
}

TEST(CpuYardstickTest, CyclePeriodIsBurstPlusThink) {
  Simulator sim;
  MpScheduler sched(&sim, {});
  CpuYardstick yardstick(&sim, &sched);
  yardstick.Start();
  sim.RunUntil(Seconds(9));
  // 180 ms per cycle => 50 cycles in 9 s.
  EXPECT_NEAR(static_cast<double>(yardstick.added_latency_ms().size()), 50.0, 2.0);
}

TEST(CpuYardstickTest, LatencyGrowsWithBackgroundLoad) {
  auto run = [](int users) {
    Simulator sim;
    MpScheduler sched(&sim, {});
    Rng rng(31);
    std::vector<std::unique_ptr<LoadGeneratorProcess>> procs;
    for (int i = 0; i < users; ++i) {
      procs.push_back(std::make_unique<LoadGeneratorProcess>(
          &sim, &sched, SynthesizeProfile(AppKind::kPhotoshop, Seconds(60), rng.Split()),
          rng.Split()));
      procs.back()->Start();
    }
    CpuYardstick yardstick(&sim, &sched);
    yardstick.Start();
    sim.RunUntil(Seconds(60));
    return yardstick.AverageAddedLatencyMs();
  };
  const double idle = run(0);
  const double heavy = run(40);
  EXPECT_LT(idle, 1.0);
  EXPECT_GT(heavy, idle + 5.0);
}

TEST(NetYardstickTest, QuietNetworkRttIsSubMillisecond) {
  Simulator sim;
  Fabric fabric(&sim, {});
  const NodeId server = fabric.AddNode();
  const NodeId probe = fabric.AddNode();
  InstallEchoResponder(&fabric, server);
  NetYardstick yardstick(&sim, &fabric, probe, server);
  yardstick.Start();
  sim.RunUntil(Seconds(5));
  ASSERT_GT(yardstick.rtt_ms().size(), 20u);
  EXPECT_EQ(yardstick.timeouts(), 0);
  // 64 B up + 1200 B down over two 100 Mbps hops + 4x5 us propagation: well under 1 ms.
  EXPECT_LT(yardstick.AverageRttMs(), 1.0);
  EXPECT_GT(yardstick.AverageRttMs(), 0.05);
}

TEST(NetYardstickTest, RttGrowsWithBackgroundTraffic) {
  auto run = [](int flows) {
    Simulator sim;
    Fabric fabric(&sim, {});
    const NodeId server = fabric.AddNode();
    const NodeId sink = fabric.AddNode();
    const NodeId probe = fabric.AddNode();
    InstallEchoResponder(&fabric, server);
    Rng rng(17);
    std::vector<std::unique_ptr<TrafficGenerator>> gens;
    for (int i = 0; i < flows; ++i) {
      gens.push_back(std::make_unique<TrafficGenerator>(
          &sim, &fabric, server, sink,
          SynthesizeProfile(AppKind::kNetscape, Seconds(30), rng.Split()), rng.Split()));
      gens.back()->Start();
    }
    NetYardstick yardstick(&sim, &fabric, probe, server);
    yardstick.Start();
    sim.RunUntil(Seconds(30));
    return yardstick.AverageRttMs();
  };
  const double quiet = run(0);
  const double busy = run(120);  // ~80% of the server link
  EXPECT_GT(busy, 2 * quiet);
}

TEST(TrafficGeneratorTest, OffersApproximatelyProfileBytes) {
  Simulator sim;
  Fabric fabric(&sim, {});
  const NodeId src = fabric.AddNode();
  const NodeId sink = fabric.AddNode();
  ResourceProfile profile = SynthesizeProfile(AppKind::kPhotoshop, Seconds(120), Rng(3));
  int64_t profile_bytes = 0;
  for (const auto& interval : profile.intervals) {
    profile_bytes += interval.net_bytes;
  }
  TrafficGenerator gen(&sim, &fabric, src, sink, profile, Rng(4));
  gen.Start();
  sim.Run();
  EXPECT_NEAR(static_cast<double>(gen.bytes_offered()),
              static_cast<double>(profile_bytes), 0.15 * static_cast<double>(profile_bytes));
}

TEST(NetYardstickTest, TimeoutRecoversWhenResponderSilent) {
  Simulator sim;
  Fabric fabric(&sim, {});
  const NodeId server = fabric.AddNode();  // no responder installed
  const NodeId probe = fabric.AddNode();
  NetYardstick yardstick(&sim, &fabric, probe, server);
  yardstick.Start();
  sim.RunUntil(Seconds(3));
  EXPECT_GT(yardstick.timeouts(), 3);
  EXPECT_TRUE(yardstick.rtt_ms().empty());
}

}  // namespace
}  // namespace slim
