// Tests for the SLIM encoder/decoder, including the core round-trip property: encoding a
// damaged framebuffer and applying the commands to a stale copy reproduces it exactly.

#include <gtest/gtest.h>

#include "src/apps/content.h"
#include "src/codec/decoder.h"
#include "src/codec/encoder.h"
#include "src/util/rng.h"

namespace slim {
namespace {

TEST(DecoderTest, ValidatesSetPayloadSize) {
  SetCommand cmd;
  cmd.dst = Rect{0, 0, 4, 4};
  cmd.rgb.assign(4 * 4 * 3, 0);
  EXPECT_TRUE(ValidateCommand(DisplayCommand(cmd)));
  cmd.rgb.pop_back();
  EXPECT_FALSE(ValidateCommand(DisplayCommand(cmd)));
}

TEST(DecoderTest, ValidatesBitmapStride) {
  BitmapCommand cmd;
  cmd.dst = Rect{0, 0, 12, 3};  // stride 2 bytes
  cmd.bits.assign(2 * 3, 0);
  EXPECT_TRUE(ValidateCommand(DisplayCommand(cmd)));
  cmd.bits.push_back(0);
  EXPECT_FALSE(ValidateCommand(DisplayCommand(cmd)));
}

TEST(DecoderTest, RejectsEmptyRects) {
  EXPECT_FALSE(ValidateCommand(DisplayCommand(FillCommand{Rect{0, 0, 0, 5}, 0})));
  EXPECT_FALSE(ValidateCommand(DisplayCommand(FillCommand{Rect{0, 0, 5, -1}, 0})));
}

TEST(DecoderTest, RejectsCscsDownscaleAndBadPayload) {
  CscsCommand cmd;
  cmd.src_w = 8;
  cmd.src_h = 8;
  cmd.dst = Rect{0, 0, 4, 4};  // downscale: not supported by the console
  cmd.depth = CscsDepth::k16;
  cmd.payload.assign(CscsPayloadBytes(8, 8, CscsDepth::k16), 0);
  EXPECT_FALSE(ValidateCommand(DisplayCommand(cmd)));
  cmd.dst = Rect{0, 0, 8, 8};
  EXPECT_TRUE(ValidateCommand(DisplayCommand(cmd)));
  cmd.payload.pop_back();
  EXPECT_FALSE(ValidateCommand(DisplayCommand(cmd)));
}

TEST(DecoderTest, ApplyRejectsMalformedWithoutTouchingFramebuffer) {
  Framebuffer fb(16, 16);
  const uint64_t before = fb.ContentHash();
  SetCommand bad;
  bad.dst = Rect{0, 0, 4, 4};
  bad.rgb.assign(5, 0);
  EXPECT_FALSE(ApplyCommand(DisplayCommand(bad), &fb));
  EXPECT_EQ(fb.ContentHash(), before);
}

TEST(DecoderTest, FillApplies) {
  Framebuffer fb(16, 16);
  EXPECT_TRUE(
      ApplyCommand(DisplayCommand(FillCommand{Rect{2, 2, 4, 4}, MakePixel(1, 2, 3)}), &fb));
  EXPECT_EQ(fb.GetPixel(3, 3), MakePixel(1, 2, 3));
  EXPECT_EQ(fb.GetPixel(7, 7), kBlack);
}

TEST(EncoderTest, UniformRegionBecomesSingleFill) {
  Framebuffer fb(128, 64, MakePixel(10, 20, 30));
  Encoder encoder;
  std::vector<DisplayCommand> cmds;
  encoder.EncodeRect(fb, Rect{0, 0, 128, 32}, &cmds);
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(TypeOf(cmds[0]), CommandType::kFill);
  EXPECT_EQ(std::get<FillCommand>(cmds[0]).color, MakePixel(10, 20, 30));
}

TEST(EncoderTest, BicolorRegionBecomesBitmaps) {
  Framebuffer fb(64, 32, kWhite);
  // Checkerboard of two colors: classic text-like content.
  for (int32_t y = 0; y < 32; ++y) {
    for (int32_t x = 0; x < 64; ++x) {
      if (((x / 2) ^ (y / 2)) & 1) {
        fb.PutPixel(x, y, kBlack);
      }
    }
  }
  Encoder encoder;
  std::vector<DisplayCommand> cmds;
  encoder.EncodeRect(fb, fb.bounds(), &cmds);
  ASSERT_FALSE(cmds.empty());
  int64_t bitmap_pixels = 0;
  for (const auto& cmd : cmds) {
    EXPECT_EQ(TypeOf(cmd), CommandType::kBitmap);
    bitmap_pixels += AffectedPixels(cmd);
  }
  EXPECT_EQ(bitmap_pixels, 64 * 32);
}

TEST(EncoderTest, PhotoContentFallsBackToSet) {
  Framebuffer fb(128, 64);
  Rng rng(5);
  fb.SetPixels(Rect{0, 0, 128, 64}, MakePhotoBlock(&rng, 128, 64));
  Encoder encoder;
  std::vector<DisplayCommand> cmds;
  encoder.EncodeRect(fb, fb.bounds(), &cmds);
  int64_t set_pixels = 0;
  int64_t total_pixels = 0;
  for (const auto& cmd : cmds) {
    total_pixels += AffectedPixels(cmd);
    if (TypeOf(cmd) == CommandType::kSet) {
      set_pixels += AffectedPixels(cmd);
    }
  }
  EXPECT_EQ(total_pixels, 128 * 64);
  EXPECT_GT(set_pixels, total_pixels * 9 / 10);
}

TEST(EncoderTest, LargeSetSplitsBelowLimit) {
  EncoderOptions options;
  options.max_set_pixels = 1000;
  Framebuffer fb(200, 100);
  Rng rng(6);
  fb.SetPixels(Rect{0, 0, 200, 100}, MakePhotoBlock(&rng, 200, 100));
  Encoder encoder(options);
  std::vector<DisplayCommand> cmds;
  encoder.EncodeRect(fb, fb.bounds(), &cmds);
  for (const auto& cmd : cmds) {
    if (TypeOf(cmd) == CommandType::kSet) {
      EXPECT_LE(AffectedPixels(cmd), 1000);
    }
  }
}

TEST(EncoderTest, SetSplitsHorizontallyWhenRectIsWiderThanLimit) {
  // Regression: EmitSet used to split only by rows, so a merged run wider than
  // max_set_pixels produced a single SET exceeding the limit (and, at one row minimum, the
  // row split could not help). The encoder must split horizontally too.
  EncoderOptions options;
  options.max_set_pixels = 64;
  Framebuffer fb(300, 20);
  Rng rng(7);
  fb.SetPixels(Rect{0, 0, 300, 20}, MakePhotoBlock(&rng, 300, 20));
  Encoder encoder(options);
  std::vector<DisplayCommand> cmds;
  encoder.EncodeRect(fb, fb.bounds(), &cmds);
  int64_t total = 0;
  for (const auto& cmd : cmds) {
    if (TypeOf(cmd) == CommandType::kSet) {
      EXPECT_LE(AffectedPixels(cmd), options.max_set_pixels);
    }
    total += AffectedPixels(cmd);
  }
  EXPECT_EQ(total, 300 * 20);
  // The split must still reproduce the source exactly (no gaps or overlaps).
  Framebuffer target(300, 20);
  for (const auto& cmd : cmds) {
    ASSERT_TRUE(ApplyCommand(cmd, &target));
  }
  EXPECT_EQ(target.ContentHash(), fb.ContentHash());
}

TEST(DecoderTest, ApplyRejectsCopyReadingOutsideTheFramebuffer) {
  Framebuffer fb(32, 32);
  fb.Fill(Rect{0, 0, 32, 32}, MakePixel(9, 9, 9));
  const uint64_t before = fb.ContentHash();
  // ValidateCommand is framebuffer-agnostic, so an out-of-bounds source rect passes it;
  // ApplyCommand must be the backstop and reject without touching the framebuffer.
  CopyCommand bad{24, 24, Rect{0, 0, 16, 16}};  // source exits the 32x32 framebuffer
  EXPECT_TRUE(ValidateCommand(DisplayCommand(bad)));
  EXPECT_FALSE(ApplyCommand(DisplayCommand(bad), &fb));
  EXPECT_EQ(fb.ContentHash(), before);
  CopyCommand negative{-1, 0, Rect{4, 4, 8, 8}};
  EXPECT_FALSE(ApplyCommand(DisplayCommand(negative), &fb));
  EXPECT_EQ(fb.ContentHash(), before);
  CopyCommand good{0, 0, Rect{16, 16, 8, 8}};
  EXPECT_TRUE(ApplyCommand(DisplayCommand(good), &fb));
}

TEST(EncoderTest, DisablingHeuristicsForcesSet) {
  EncoderOptions options;
  options.enable_fill = false;
  options.enable_bitmap = false;
  Framebuffer fb(64, 32, kWhite);
  Encoder encoder(options);
  std::vector<DisplayCommand> cmds;
  encoder.EncodeRect(fb, fb.bounds(), &cmds);
  for (const auto& cmd : cmds) {
    EXPECT_EQ(TypeOf(cmd), CommandType::kSet);
  }
}

// The round-trip property, over randomized content mixes: a stale framebuffer brought
// forward by encoded commands must match the source exactly inside the damage and remain
// untouched outside it.
class EncoderRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(EncoderRoundTrip, DamageEncodingReproducesSourceExactly) {
  Rng rng(1000 + GetParam());
  Framebuffer before(160, 120);
  // Shared history: both sides start from the same painted state.
  before.Fill(Rect{0, 0, 160, 60}, MakePixel(30, 30, 40));
  before.SetPixels(Rect{10, 70, 64, 40}, MakePhotoBlock(&rng, 64, 40));
  Framebuffer after = before;  // server's evolving truth

  // Random mutations: fills, bicolor patches, photo patches.
  Region damage;
  for (int i = 0; i < 8; ++i) {
    const Rect r{static_cast<int32_t>(rng.NextBelow(140)),
                 static_cast<int32_t>(rng.NextBelow(100)),
                 4 + static_cast<int32_t>(rng.NextBelow(40)),
                 4 + static_cast<int32_t>(rng.NextBelow(30))};
    const double kind = rng.NextDouble();
    if (kind < 0.3) {
      after.Fill(r, static_cast<Pixel>(rng.NextU64() & 0xffffff));
    } else if (kind < 0.6) {
      for (int32_t y = r.y; y < r.bottom(); ++y) {
        for (int32_t x = r.x; x < r.right(); ++x) {
          after.PutPixel(x, y, ((x ^ y) & 1) ? kWhite : kBlack);
        }
      }
    } else {
      after.SetPixels(r, MakePhotoBlock(&rng, r.w, r.h));
    }
    damage.Add(Intersect(r, after.bounds()));
  }

  Encoder encoder;
  const auto cmds = encoder.EncodeDamage(after, damage);
  Framebuffer replica = before;  // console's stale soft state
  for (const auto& cmd : cmds) {
    EXPECT_TRUE(ApplyCommand(cmd, &replica));
  }
  EXPECT_EQ(replica.ContentHash(), after.ContentHash());
}

INSTANTIATE_TEST_SUITE_P(RandomizedContent, EncoderRoundTrip, ::testing::Range(0, 20));

TEST(EncoderTest, CommandsStayInsideDamage) {
  Rng rng(77);
  Framebuffer fb(100, 100);
  fb.SetPixels(Rect{0, 0, 100, 100}, MakePhotoBlock(&rng, 100, 100));
  Region damage;
  damage.Add(Rect{10, 10, 30, 30});
  damage.Add(Rect{60, 60, 20, 20});
  Encoder encoder;
  for (const auto& cmd : encoder.EncodeDamage(fb, damage)) {
    const Rect dst = DestinationOf(cmd);
    bool contained = false;
    for (const Rect& r : damage.rects()) {
      contained |= r.ContainsRect(dst);
    }
    EXPECT_TRUE(contained) << dst.ToString();
  }
}

TEST(EncoderTest, AccumulateCountsPerType) {
  Framebuffer fb(64, 64, kWhite);
  Encoder encoder;
  std::vector<DisplayCommand> cmds;
  encoder.EncodeRect(fb, fb.bounds(), &cmds);
  EncodeStats stats[6] = {};
  Encoder::Accumulate(cmds, stats);
  EXPECT_GT(stats[static_cast<size_t>(CommandType::kFill)].commands, 0);
  EXPECT_EQ(stats[static_cast<size_t>(CommandType::kSet)].commands, 0);
  EXPECT_EQ(stats[static_cast<size_t>(CommandType::kFill)].uncompressed_bytes, 64 * 64 * 3);
}

TEST(EncoderTest, CompressionOnTextBeatsTenX) {
  // Text screen: white background with bicolor glyph-like rows.
  Framebuffer fb(640, 480, kWhite);
  Rng rng(9);
  for (int32_t row = 0; row < 30; ++row) {
    const int32_t y0 = row * 16;
    for (int32_t x = 8; x < 632; ++x) {
      for (int32_t y = y0 + 2; y < y0 + 12; ++y) {
        if (rng.NextBool(0.3)) {
          fb.PutPixel(x, y, kBlack);
        }
      }
    }
  }
  Encoder encoder;
  std::vector<DisplayCommand> cmds;
  encoder.EncodeRect(fb, fb.bounds(), &cmds);
  EncodeStats stats[6] = {};
  Encoder::Accumulate(cmds, stats);
  int64_t wire = 0;
  int64_t raw = 0;
  for (const auto& s : stats) {
    wire += s.wire_bytes;
    raw += s.uncompressed_bytes;
  }
  EXPECT_GT(raw, wire * 10) << "text should compress at least 10x (paper Figure 4)";
}

TEST(ScrollDetectTest, FindsPureVerticalScroll) {
  Rng rng(21);
  Framebuffer before(100, 200);
  before.SetPixels(Rect{0, 0, 100, 200}, MakePhotoBlock(&rng, 100, 200));
  Framebuffer after = before;
  after.CopyRect(0, 16, Rect{0, 0, 100, 184});  // scrolled up by 16
  // Fill the exposed strip with fresh content.
  after.Fill(Rect{0, 184, 100, 16}, kWhite);
  const int32_t dy = DetectVerticalScroll(before, after, Rect{0, 0, 100, 184}, 32);
  EXPECT_EQ(dy, -16);
}

TEST(ScrollDetectTest, NarrowRectNeverFalsePositives) {
  // Regression: the width guard was missing, so a sliver of vertically-uniform stripes
  // (every column constant) "scrolled" by any dy — the sparse probe grid collapsed its 16
  // probe columns onto a handful of duplicates that all matched, and the interior confirm
  // also passes on vertically-uniform content. A 4-wide rect must return no scroll.
  Framebuffer before(4, 64);
  for (int32_t x = 0; x < 4; ++x) {
    before.Fill(Rect{x, 0, 1, 64}, MakePixel(static_cast<uint8_t>(40 * x), 10, 200));
  }
  const Framebuffer after = before;  // nothing moved
  EXPECT_EQ(DetectVerticalScroll(before, after, before.bounds(), 8), 0);
  // Same for a narrow sub-rect of a wide framebuffer.
  Framebuffer wide_before(64, 64);
  for (int32_t x = 0; x < 64; ++x) {
    wide_before.Fill(Rect{x, 0, 1, 64}, MakePixel(static_cast<uint8_t>(4 * x), 0, 0));
  }
  const Framebuffer wide_after = wide_before;
  EXPECT_EQ(DetectVerticalScroll(wide_before, wide_after, Rect{10, 0, 5, 64}, 8), 0);
}

TEST(ScrollDetectTest, FindsScrollOnRectNarrowerThanProbeGrid) {
  // 12 columns < the 16-probe grid: the probe stride must clamp to distinct columns and
  // still find a genuine scroll.
  Rng rng(23);
  Framebuffer before(12, 120);
  before.SetPixels(before.bounds(), MakePhotoBlock(&rng, 12, 120));
  Framebuffer after = before;
  after.CopyRect(0, 5, Rect{0, 0, 12, 115});  // scrolled up by 5
  after.Fill(Rect{0, 115, 12, 5}, kWhite);
  EXPECT_EQ(DetectVerticalScroll(before, after, Rect{0, 0, 12, 115}, 16), -5);
}

TEST(EncoderTest, AccumulateAbortsOnInvalidCommandType) {
  // A command type outside the wire enum (e.g. decoded from a corrupted stream) must trip
  // the range check instead of indexing out of the 6-slot stats array.
  EncodeStats stats[6] = {};
  EXPECT_DEATH_IF_SUPPORTED(
      Encoder::AccumulateOne(static_cast<CommandType>(9), 16, 3, 1, stats), "check failed");
  EXPECT_DEATH_IF_SUPPORTED(
      Encoder::AccumulateOne(static_cast<CommandType>(0), 16, 3, 1, stats), "check failed");
  // Valid types land in their slot.
  Encoder::AccumulateOne(CommandType::kFill, 40, 300, 100, stats);
  EXPECT_EQ(stats[static_cast<size_t>(CommandType::kFill)].pixels, 100);
}

TEST(ScrollDetectTest, NoScrollReturnsZero) {
  Rng rng(22);
  Framebuffer before(64, 64);
  before.SetPixels(Rect{0, 0, 64, 64}, MakePhotoBlock(&rng, 64, 64));
  Framebuffer after(64, 64);
  after.SetPixels(Rect{0, 0, 64, 64}, MakePhotoBlock(&rng, 64, 64));
  EXPECT_EQ(DetectVerticalScroll(before, after, before.bounds(), 16), 0);
}

// The bitmap packer's final byte covers fewer than 8 pixels when the rect width is not a
// multiple of 8; the padding bits must not read past the row and the round-trip must be
// exact for every remainder width.
TEST(EncoderTest, BitmapRoundTripsAtNonByteAlignedWidths) {
  const Pixel bg = MakePixel(0, 0, 96);
  const Pixel fg = MakePixel(250, 250, 210);
  for (const int32_t w : {1, 7, 9, 13, 31}) {
    Framebuffer fb(40, 20, MakePixel(10, 20, 30));
    const Rect r{3, 2, w, 12};
    for (int32_t y = r.y; y < r.bottom(); ++y) {
      for (int32_t x = r.x; x < r.right(); ++x) {
        fb.PutPixel(x, y, ((x * 5 + y * 3) % 7 < 3) ? fg : bg);
      }
    }
    Encoder encoder;
    std::vector<DisplayCommand> out;
    encoder.EncodeRect(fb, r, &out);
    ASSERT_FALSE(out.empty()) << "w=" << w;
    Framebuffer replica(40, 20, MakePixel(10, 20, 30));
    bool saw_bitmap = false;
    for (const DisplayCommand& cmd : out) {
      saw_bitmap = saw_bitmap || TypeOf(cmd) == CommandType::kBitmap;
      ASSERT_TRUE(ValidateCommand(cmd)) << "w=" << w;
      ASSERT_TRUE(ApplyCommand(cmd, &replica)) << "w=" << w;
    }
    // Two colors over more than a handful of pixels: the encoder should have picked
    // BITMAP, not fallen back to SET (w=1 rects may legitimately become FILL slivers).
    if (w >= 7) {
      EXPECT_TRUE(saw_bitmap) << "w=" << w;
    }
    EXPECT_EQ(replica.ContentHash(), fb.ContentHash()) << "w=" << w;
  }
}

}  // namespace
}  // namespace slim
