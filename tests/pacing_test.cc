// Pacing tests: grant-enforced token buckets in the TransmitQueue (GCRA departures,
// per-flow FIFO floors, purge/depth hygiene), the server<->console bandwidth-grant loop,
// and the session's backpressure adaptation — newest-frame-wins video staging and
// damage-coalescing flush deferral, which must be bit-exact once the queue drains. The
// pacing_test_4threads ctest entry re-runs this binary with SLIM_ENCODE_THREADS=4 so the
// tsan preset proves the pacing state stays on the simulation thread when the encoder
// pool is live.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "src/apps/content.h"
#include "src/console/console.h"
#include "src/net/fabric.h"
#include "src/net/transport.h"
#include "src/protocol/messages.h"
#include "src/server/slim_server.h"
#include "src/server/transmit_queue.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/util/time.h"
#include "src/video/video_source.h"

namespace slim {
namespace {

// --- TransmitQueue unit behaviour --------------------------------------------------------

TEST(PacingQueueTest, TokenBucketSpacesDeparturesAtGrantRate) {
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimEndpoint server(&fabric, fabric.AddNode());
  SlimEndpoint console(&fabric, fabric.AddNode());
  TransmitQueue queue(&sim, &server, /*model_cpu_delay=*/false);
  const uint64_t flow = 3;
  queue.SetFlowRate(flow, 1'000'000, /*burst=*/0);

  const FillCommand cmd{Rect{0, 0, 8, 8}, kWhite};
  const auto bytes = static_cast<int64_t>(BodyWireSize(MessageBody{cmd}));
  const SimDuration wire = TransmissionDelay(bytes, 1'000'000);
  ASSERT_GT(wire, 0);

  std::vector<SimTime> departures;
  for (int i = 0; i < 5; ++i) {
    departures.push_back(queue.Send(console.node(), 1, cmd, 0, flow));
  }
  // With no burst credit, back-to-back sends depart exactly one wire time apart: the
  // grant is enforced, not advisory.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(departures[i], static_cast<SimTime>(i) * wire) << "send " << i;
  }
  EXPECT_EQ(queue.paced(), 5);
  EXPECT_EQ(queue.pace_delayed(), 4);  // the first went immediately
  EXPECT_EQ(queue.flow_rate(flow), 1'000'000);
  EXPECT_GT(queue.PaceBacklog(flow), 0);

  // Flow 0 (control) and flows without a grant are never paced.
  sim.Run();
  const SimTime now = sim.now();
  EXPECT_EQ(queue.Send(console.node(), 1, cmd, 0, 0), now);
  EXPECT_EQ(queue.Send(console.node(), 1, cmd, 0, 99), now);
  EXPECT_EQ(queue.paced(), 5);
}

TEST(PacingQueueTest, BurstWindowAdmitsCreditThenPaces) {
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimEndpoint server(&fabric, fabric.AddNode());
  SlimEndpoint console(&fabric, fabric.AddNode());
  TransmitQueue queue(&sim, &server, /*model_cpu_delay=*/false);

  const FillCommand cmd{Rect{0, 0, 8, 8}, kWhite};
  const auto bytes = static_cast<int64_t>(BodyWireSize(MessageBody{cmd}));
  const SimDuration wire = TransmissionDelay(bytes, 1'000'000);
  const uint64_t flow = 7;
  queue.SetFlowRate(flow, 1'000'000, /*burst=*/2 * wire);

  std::vector<SimTime> departures;
  for (int i = 0; i < 5; ++i) {
    departures.push_back(queue.Send(console.node(), 1, cmd, 0, flow));
  }
  // Two wire times of credit admit the first three immediately (the bucket may run up to
  // `burst` ahead); after that the flow settles onto the granted rate.
  EXPECT_EQ(departures[0], 0);
  EXPECT_EQ(departures[1], 0);
  EXPECT_EQ(departures[2], 0);
  EXPECT_EQ(departures[3], wire);
  EXPECT_EQ(departures[4], 2 * wire);
}

TEST(PacingQueueTest, FifoFloorSurvivesGrantWithdrawal) {
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimEndpoint server(&fabric, fabric.AddNode());
  SlimEndpoint console(&fabric, fabric.AddNode());
  TransmitQueue queue(&sim, &server, /*model_cpu_delay=*/false);

  const FillCommand cmd{Rect{0, 0, 8, 8}, kWhite};
  const uint64_t flow = 4;
  queue.SetFlowRate(flow, 100'000, 0);  // slow: each send is a long wire time
  const SimTime first = queue.Send(console.node(), 1, cmd, 0, flow);
  const SimTime second = queue.Send(console.node(), 1, cmd, 0, flow);
  EXPECT_GT(second, first);

  // The grant is withdrawn (rate 0 stops pacing) — but a later send of the same flow must
  // still not overtake the already-admitted one: the per-flow FIFO floor survives.
  queue.SetFlowRate(flow, 0, 0);
  const SimTime third = queue.Send(console.node(), 1, cmd, 0, flow);
  EXPECT_GE(third, second);
}

TEST(PacingQueueTest, DepthAccountingExactUnderInterleavedSendDrainPurge) {
  // Property sweep over both queue modes: random interleavings of paced/unpaced sends,
  // partial drains, and session purges must never leave phantom depth, a stale map entry
  // for a drained session, or deliver a purged message.
  for (const bool model_cpu : {false, true}) {
    Simulator sim;
    Fabric fabric(&sim, {});
    SlimEndpoint server(&fabric, fabric.AddNode());
    SlimEndpoint console(&fabric, fabric.AddNode());
    int64_t delivered = 0;
    console.set_handler([&](const Message&, NodeId) { ++delivered; });
    TransmitQueue queue(&sim, &server, model_cpu);
    queue.SetFlowRate(1, 2'000'000, Milliseconds(5));
    queue.SetFlowRate(2, 500'000, 0);

    Rng rng(model_cpu ? 7 : 11);
    int64_t sends = 0;
    for (int step = 0; step < 500; ++step) {
      const auto session = static_cast<uint32_t>(1 + rng.NextBelow(3));
      const uint64_t op = rng.NextBelow(10);
      if (op < 6) {
        const uint64_t flow = rng.NextBelow(3);  // 0 = unpaced control
        const auto cost = static_cast<SimDuration>(rng.NextBelow(200'000));
        queue.Send(console.node(), session, FillCommand{Rect{0, 0, 4, 4}, kWhite}, cost,
                   flow);
        ++sends;
      } else if (op < 8) {
        sim.RunFor(static_cast<SimDuration>(rng.NextBelow(Milliseconds(2))));
      } else {
        queue.PurgeSession(session);
        ASSERT_EQ(queue.depth(session), 0) << "purge left depth behind";
      }
      int64_t sum = 0;
      for (uint32_t s = 1; s <= 3; ++s) {
        sum += queue.depth(s);
      }
      ASSERT_EQ(sum, queue.total_depth())
          << "per-session depths disagree with the total at step " << step;
      ASSERT_LE(queue.tracked_sessions(), 3u);
    }
    sim.Run();
    EXPECT_EQ(queue.total_depth(), 0) << "model_cpu=" << model_cpu;
    EXPECT_EQ(queue.tracked_sessions(), 0u)
        << "drained sessions must erase their map entry (model_cpu=" << model_cpu << ")";
    // Conservation: everything sent was either delivered or explicitly purged.
    EXPECT_EQ(delivered, sends - queue.purged()) << "model_cpu=" << model_cpu;
    EXPECT_GT(queue.purged(), 0);
  }
}

// --- Server <-> console grant loop -------------------------------------------------------

ServerOptions PacedServerOptions(bool enabled, bool adapt) {
  ServerOptions options;
  options.model_cpu_delay = true;
  options.pacing.enabled = enabled;
  options.pacing.adapt = adapt;
  return options;
}

ConsoleOptions ConstrainedConsoleOptions(int64_t allocatable_bps) {
  ConsoleOptions options;
  options.allocatable_bps = allocatable_bps;
  return options;
}

// One server + one constrained console with a session attached and (when enabled) grants
// already in force. Tests use RunFor, never Run(): the keepalive probe re-arms forever.
struct PacingRig {
  Simulator sim;
  Fabric fabric;
  SlimServer server;
  Console console;
  ServerSession* session = nullptr;
  uint64_t card = 0;

  PacingRig(int64_t allocatable_bps, bool enabled, bool adapt)
      : fabric(&sim, {}),
        server(&sim, &fabric, PacedServerOptions(enabled, adapt)),
        console(&sim, &fabric, ConstrainedConsoleOptions(allocatable_bps)) {
    card = server.auth().IssueCard(1);
    session = &server.CreateSession(card);
    console.InsertCard(server.node(), card);
    sim.RunFor(Seconds(1));
  }
};

uint64_t BlankHash(const Console& console) {
  return Framebuffer(console.framebuffer().width(), console.framebuffer().height())
      .ContentHash();
}

TEST(PacingLoopTest, AttachRequestsFlowsAndGrantsAreEnforced) {
  PacingRig rig(10'000'000, /*enabled=*/true, /*adapt=*/true);
  ASSERT_TRUE(rig.session->attached());
  EXPECT_GE(rig.server.pacing_stats().requests_sent, 2);
  EXPECT_GE(rig.server.pacing_stats().grants_applied, 2);
  EXPECT_GE(rig.console.grants_sent(), 2);
  // Ascending allocation: the modest interactive ask is satisfied in full first (the
  // paper's starvation guarantee); video gets whatever is left of the 10 Mbps link.
  EXPECT_EQ(rig.session->interactive_grant_bps(), 2'000'000);
  EXPECT_EQ(rig.session->video_grant_bps(), 8'000'000);
  EXPECT_EQ(rig.session->link_total_bps(), 10'000'000);
  // The grants are live in the transmit queue, not just remembered.
  EXPECT_EQ(rig.server.tx_queue().flow_rate(rig.session->interactive_flow()), 2'000'000);
  EXPECT_EQ(rig.server.tx_queue().flow_rate(rig.session->video_flow()), 8'000'000);
}

TEST(PacingLoopTest, PacingOffSendsNoRequestsAndPacesNothing) {
  PacingRig rig(10'000'000, /*enabled=*/false, /*adapt=*/false);
  ASSERT_TRUE(rig.session->attached());
  EXPECT_EQ(rig.server.pacing_stats().requests_sent, 0);
  EXPECT_EQ(rig.server.pacing_stats().grants_applied, 0);
  EXPECT_EQ(rig.console.grants_sent(), 0);
  EXPECT_EQ(rig.server.tx_queue().paced(), 0);
}

// --- Session backpressure adaptation -----------------------------------------------------

TEST(PacingSessionTest, StaleVideoFramesDropNewestWins) {
  PacingRig rig(5'000'000, /*enabled=*/true, /*adapt=*/true);
  // k12 160x120 at ~100 fps offers ~23 Mbps into a 3 Mbps video grant: the staged slot
  // must keep being overwritten (newest wins) while the bucket drains.
  SyntheticVideoSource source(160, 120, 9);
  const Rect dst{0, 0, 160, 120};
  for (int i = 0; i < 30; ++i) {
    rig.session->SendVideoFrame(source.Frame(i), dst, CscsDepth::k12);
    rig.sim.RunFor(Milliseconds(10));
  }
  EXPECT_GT(rig.session->video_deferred(), 0);
  EXPECT_GT(rig.session->video_dropped(), 0);
  EXPECT_GT(rig.server.pacing_stats().video_dropped, 0);
  EXPECT_LT(rig.session->video_dropped(), 30);  // some frames did get through

  // Once the offered load stops, the last staged frame must drain and present: the
  // console converges on the session's true framebuffer, which only transmitted frames
  // ever touched — a dropped frame leaves no trace anywhere.
  rig.sim.RunFor(Seconds(3));
  EXPECT_FALSE(rig.session->has_staged_video());
  EXPECT_EQ(rig.session->framebuffer().ContentHash(),
            rig.console.framebuffer().ContentHash());
}

TEST(PacingSessionTest, CoalescedDeferredDamageIsBitExactOnceDrained) {
  // The same drawing sequence through an adaptive paced server and an unpaced one: the
  // paced run must coalesce flushes under pressure, and once both queues drain the two
  // consoles must hold bit-identical screens.
  PacingRig paced(4'000'000, /*enabled=*/true, /*adapt=*/true);
  PacingRig unpaced(4'000'000, /*enabled=*/false, /*adapt=*/false);
  const auto drive = [](PacingRig& rig, uint64_t seed) {
    Rng rng(seed);
    for (int step = 0; step < 40; ++step) {
      const auto x = static_cast<int32_t>(rng.NextBelow(1280 - 64));
      const auto y = static_cast<int32_t>(rng.NextBelow(1024 - 64));
      rig.session->PutImage(Rect{x, y, 64, 64}, MakePhotoBlock(&rng, 64, 64));
      rig.session->Flush();
      rig.sim.RunFor(Milliseconds(2));
    }
    rig.sim.RunFor(Seconds(8));  // drain the paced backlog completely
  };
  drive(paced, 77);
  drive(unpaced, 77);
  EXPECT_GT(paced.session->coalesced_flushes(), 0);
  EXPECT_GT(paced.server.pacing_stats().coalesced_flushes, 0);
  // Both sessions drew identically...
  ASSERT_EQ(paced.session->framebuffer().ContentHash(),
            unpaced.session->framebuffer().ContentHash());
  // ...and deferral lost nothing: each console converged on its session's truth.
  EXPECT_EQ(paced.console.framebuffer().ContentHash(),
            paced.session->framebuffer().ContentHash());
  EXPECT_EQ(unpaced.console.framebuffer().ContentHash(),
            unpaced.session->framebuffer().ContentHash());
}

TEST(PacingSessionTest, AdaptationBoundsQueueDepth) {
  // Same saturating video offer against the same 3 Mbps link: the naive (adapt=false) run
  // queues every paced frame and the backlog grows without bound, while the adaptive run
  // stages frames (newest wins) and keeps the transmit queue shallow.
  const auto run = [](bool adapt) {
    PacingRig rig(3'000'000, /*enabled=*/true, adapt);
    const int64_t after_attach = rig.server.tx_queue().max_depth();
    SyntheticVideoSource source(160, 120, 4);
    for (int i = 0; i < 100; ++i) {
      rig.session->SendVideoFrame(source.Frame(i), Rect{0, 0, 160, 120}, CscsDepth::k12);
      rig.sim.RunFor(Milliseconds(10));
    }
    return std::max<int64_t>(rig.server.tx_queue().max_depth() - after_attach, 0);
  };
  const int64_t naive = run(false);
  const int64_t adaptive = run(true);
  EXPECT_GT(naive, 2 * adaptive) << "naive=" << naive << " adaptive=" << adaptive;
  EXPECT_GT(naive, 20);
}

TEST(PacingSessionTest, HotdeskPurgesPacedBacklogAndBlanksOldConsole) {
  // A pile of paced video is queued for console A when the card appears at console B. The
  // purge must cancel the stale backlog *without* cancelling the release notice queued
  // right after it — A blanks, B converges, nothing stale survives.
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimServer server(&sim, &fabric, PacedServerOptions(true, /*adapt=*/false));
  Console a(&sim, &fabric, ConstrainedConsoleOptions(3'000'000));
  Console b(&sim, &fabric, ConstrainedConsoleOptions(3'000'000));
  const uint64_t card = server.auth().IssueCard(1);
  ServerSession& session = server.CreateSession(card);
  a.InsertCard(server.node(), card);
  sim.RunFor(Seconds(1));
  ASSERT_TRUE(session.attached());

  SyntheticVideoSource source(160, 120, 5);
  for (int i = 0; i < 10; ++i) {
    session.SendVideoFrame(source.Frame(i), Rect{0, 0, 160, 120}, CscsDepth::k12);
  }
  ASSERT_GT(server.tx_queue().depth(session.id()), 0);  // paced backlog is queued

  b.InsertCard(server.node(), card);
  sim.RunFor(Seconds(2));
  EXPECT_GT(server.tx_queue().purged(), 0);
  EXPECT_EQ(session.console(), b.node());
  EXPECT_EQ(server.lifecycle_stats().hotdesk_handoffs, 1);
  EXPECT_GE(a.releases_applied(), 1);
  EXPECT_EQ(a.framebuffer().ContentHash(), BlankHash(a));
  EXPECT_EQ(session.framebuffer().ContentHash(), b.framebuffer().ContentHash());
}

}  // namespace
}  // namespace slim
