// The parallel encoding determinism contract (src/codec/parallel.h): for every thread
// count, EncoderPool::EncodeDamage must produce a command stream byte-identical to the
// serial Encoder and merged EncodeStats identical to the serial accumulation, over
// randomized framebuffers, damage shapes, and encoder options. The parallel_codec_test
// ctest entry runs this suite as-is; the 4-thread entry re-runs it with
// SLIM_ENCODE_THREADS=4 (picked up below and by SlimServer), which is what the tsan
// preset leans on to catch data races in CI.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/apps/content.h"
#include "src/codec/decoder.h"
#include "src/codec/parallel.h"
#include "src/console/console.h"
#include "src/net/fabric.h"
#include "src/server/slim_server.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace slim {
namespace {

// The sweep always covers {1, 2, 4, 8}; an SLIM_ENCODE_THREADS override outside that set
// (e.g. from the CI ctest entry or a soak run) is added rather than replacing it.
std::vector<int> ThreadCounts() {
  std::vector<int> counts{1, 2, 4, 8};
  const int env = EncodeThreadsFromEnv(1);
  if (std::find(counts.begin(), counts.end(), env) == counts.end()) {
    counts.push_back(env);
  }
  return counts;
}

// Paints a randomized mix of fills, bicolor patches, and photo blocks and returns the
// damage the mutations covered.
Region MutateRandomly(Framebuffer* fb, Rng* rng, int mutations) {
  Region damage;
  for (int i = 0; i < mutations; ++i) {
    const Rect r{static_cast<int32_t>(rng->NextBelow(static_cast<uint64_t>(fb->width()))),
                 static_cast<int32_t>(rng->NextBelow(static_cast<uint64_t>(fb->height()))),
                 2 + static_cast<int32_t>(rng->NextBelow(70)),
                 2 + static_cast<int32_t>(rng->NextBelow(60))};
    const Rect clipped = Intersect(r, fb->bounds());
    if (clipped.empty()) {
      continue;
    }
    switch (rng->NextBelow(3)) {
      case 0:
        fb->Fill(clipped, static_cast<Pixel>(rng->NextU64() & 0xffffff));
        break;
      case 1:
        for (int32_t y = clipped.y; y < clipped.bottom(); ++y) {
          for (int32_t x = clipped.x; x < clipped.right(); ++x) {
            fb->PutPixel(x, y, ((x + y) & 1) ? kWhite : kBlack);
          }
        }
        break;
      default:
        fb->SetPixels(clipped, MakePhotoBlock(rng, clipped.w, clipped.h));
        break;
    }
    damage.Add(clipped);
  }
  return damage;
}

class ParallelEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ParallelEquivalence, PoolMatchesSerialForEveryThreadCount) {
  Rng rng(4000 + static_cast<uint64_t>(GetParam()));
  EncoderOptions options;
  // Vary the analysis granularity too, so band/chunk edges move across seeds.
  options.band_height = 8 << rng.NextBelow(3);  // 8, 16, 32
  options.chunk_width = 16 << rng.NextBelow(3);
  Framebuffer fb(251, 173);  // deliberately not band aligned
  fb.Fill(fb.bounds(), MakePixel(25, 35, 45));
  const Region damage = MutateRandomly(&fb, &rng, 10);

  const Encoder serial(options);
  const std::vector<DisplayCommand> expected = serial.EncodeDamage(fb, damage);
  EncodeStats expected_stats[6] = {};
  Encoder::Accumulate(expected, expected_stats);

  for (const int threads : ThreadCounts()) {
    EncoderOptions threaded = options;
    threaded.threads = threads;
    EncoderPool pool(threaded);
    EXPECT_EQ(pool.threads(), threads);
    EncodeStats merged[6] = {};
    const std::vector<DisplayCommand> got = pool.EncodeDamage(fb, damage, merged);
    ASSERT_EQ(got.size(), expected.size()) << "threads=" << threads;
    for (size_t i = 0; i < got.size(); ++i) {
      // DisplayCommand equality is deep (payload bytes included), so this is the
      // bit-identical-stream check.
      ASSERT_TRUE(got[i] == expected[i]) << "threads=" << threads << " command " << i;
    }
    for (int t = 0; t < 6; ++t) {
      EXPECT_EQ(merged[t], expected_stats[t]) << "threads=" << threads << " type " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomizedContent, ParallelEquivalence, ::testing::Range(0, 12));

TEST(ParallelCodecTest, RepeatedEncodesOnOnePoolStayIdentical) {
  // The pool is persistent; its generation protocol must not leak state across calls.
  Rng rng(99);
  EncoderOptions options;
  options.threads = 4;
  EncoderPool pool(options);
  Framebuffer fb(320, 200);
  for (int round = 0; round < 5; ++round) {
    const Region damage = MutateRandomly(&fb, &rng, 6);
    const std::vector<DisplayCommand> expected = pool.encoder().EncodeDamage(fb, damage);
    const std::vector<DisplayCommand> got = pool.EncodeDamage(fb, damage);
    ASSERT_EQ(got.size(), expected.size()) << "round " << round;
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_TRUE(got[i] == expected[i]) << "round " << round << " command " << i;
    }
  }
}

TEST(ParallelCodecTest, PoolOutputRoundTripsThroughDecoder) {
  Rng rng(123);
  EncoderOptions options;
  options.threads = 8;
  EncoderPool pool(options);
  Framebuffer before(200, 150);
  before.SetPixels(before.bounds(), MakePhotoBlock(&rng, 200, 150));
  Framebuffer after = before;
  const Region damage = MutateRandomly(&after, &rng, 8);
  Framebuffer replica = before;
  for (const DisplayCommand& cmd : pool.EncodeDamage(after, damage)) {
    ASSERT_TRUE(ValidateCommand(cmd));
    ASSERT_TRUE(ApplyCommand(cmd, &replica));
  }
  EXPECT_EQ(replica.ContentHash(), after.ContentHash());
}

TEST(ParallelCodecTest, SingleThreadPoolIsPlainSerialEncode) {
  EncoderOptions options;  // threads = 1
  EncoderPool pool(options);
  EXPECT_EQ(pool.threads(), 1);
  Framebuffer fb(64, 64, MakePixel(1, 2, 3));
  EncodeStats merged[6] = {};
  const auto cmds = pool.EncodeDamage(fb, Region(fb.bounds()), merged);
  ASSERT_EQ(cmds.size(), 2u);  // two 32-row bands, each a FILL
  EXPECT_EQ(merged[static_cast<size_t>(CommandType::kFill)].commands, 2);
}

// End-to-end: a server whose sessions encode on a pool must transmit exactly the stream a
// serial server transmits — same commands, bytes, per-type stats, and console pixels.
// (Under the SLIM_ENCODE_THREADS=4 ctest entry both servers run with 4 threads; the
// default run compares 1 vs 4.)
TEST(ParallelCodecTest, ServerSessionsAgreeAcrossThreadCounts) {
  struct Run {
    uint64_t console_hash = 0;
    int64_t commands = 0;
    int64_t bytes = 0;
    EncodeStats stats[6] = {};
  };
  const auto run_with_threads = [](int threads) {
    Simulator sim;
    Fabric fabric(&sim, {});
    ServerOptions options;
    options.encoder.threads = threads;
    SlimServer server(&sim, &fabric, options);
    Console console(&sim, &fabric, {});
    const uint64_t card = server.auth().IssueCard(7);
    ServerSession& session = server.CreateSession(card);
    console.InsertCard(server.node(), card);
    sim.Run();
    Rng rng(555);
    for (int i = 0; i < 40; ++i) {
      const Rect r{static_cast<int32_t>(rng.NextBelow(1100)),
                   static_cast<int32_t>(rng.NextBelow(900)),
                   4 + static_cast<int32_t>(rng.NextBelow(80)),
                   4 + static_cast<int32_t>(rng.NextBelow(60))};
      if (rng.NextBool(0.4)) {
        session.FillRect(r, static_cast<Pixel>(rng.NextU64() & 0xffffff));
      } else {
        session.PutImage(r, MakePhotoBlock(&rng, r.w, r.h));
      }
      session.Flush();
      sim.Run();
    }
    Run result;
    result.console_hash = console.framebuffer().ContentHash();
    result.commands = session.commands_sent();
    result.bytes = session.bytes_sent();
    std::copy(session.encode_stats(), session.encode_stats() + 6, result.stats);
    return result;
  };
  const Run serial = run_with_threads(1);
  const Run parallel = run_with_threads(4);
  EXPECT_EQ(parallel.console_hash, serial.console_hash);
  EXPECT_EQ(parallel.commands, serial.commands);
  EXPECT_EQ(parallel.bytes, serial.bytes);
  for (int t = 0; t < 6; ++t) {
    EXPECT_EQ(parallel.stats[t], serial.stats[t]) << "type " << t;
  }
}

TEST(ParallelCodecTest, MergeEncodeStatsSums) {
  EncodeStats a[6] = {};
  EncodeStats b[6] = {};
  a[1] = EncodeStats{1, 10, 30, 10};
  b[1] = EncodeStats{2, 20, 60, 20};
  b[3] = EncodeStats{5, 50, 150, 50};
  MergeEncodeStats(a, b);
  EXPECT_EQ(b[1], (EncodeStats{3, 30, 90, 30}));
  EXPECT_EQ(b[3], (EncodeStats{5, 50, 150, 50}));
  EXPECT_EQ(b[0], EncodeStats{});
}

}  // namespace
}  // namespace slim
