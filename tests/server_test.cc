// Tests for the SLIM server: drawing API semantics, damage encoding order, hotdesking
// (session mobility), authentication, and the device manager.

#include <gtest/gtest.h>

#include "src/apps/content.h"
#include "src/apps/font.h"
#include "src/console/console.h"
#include "src/net/fabric.h"
#include "src/server/slim_server.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace slim {
namespace {

class ServerFixture : public ::testing::Test {
 protected:
  ServerFixture()
      : fabric_(&sim_, {}),
        server_(&sim_, &fabric_, ServerOptions{}),
        console_(&sim_, &fabric_, ConsoleOptions{}) {}

  // Creates a session attached to the console and synced.
  ServerSession& AttachedSession() {
    const uint64_t card = server_.auth().IssueCard(1);
    ServerSession& session = server_.CreateSession(card);
    console_.InsertCard(server_.node(), card);
    sim_.Run();
    EXPECT_TRUE(session.attached());
    return session;
  }

  void Sync() { sim_.Run(); }

  bool Matches(const ServerSession& session) {
    return session.framebuffer().ContentHash() == console_.framebuffer().ContentHash();
  }

  Simulator sim_;
  Fabric fabric_;
  SlimServer server_;
  Console console_;
};

TEST_F(ServerFixture, AttachRepaintsWholeScreen) {
  ServerSession& session = AttachedSession();
  EXPECT_TRUE(Matches(session));
  EXPECT_GT(console_.commands_applied(), 0);
}

TEST_F(ServerFixture, FillPassesThroughAsFillCommand) {
  ServerSession& session = AttachedSession();
  console_.ClearServiceLog();
  session.FillRect(Rect{10, 10, 100, 50}, MakePixel(200, 10, 10));
  session.Flush();
  Sync();
  ASSERT_EQ(console_.service_log().size(), 1u);
  EXPECT_EQ(console_.service_log()[0].type, CommandType::kFill);
  EXPECT_TRUE(Matches(session));
}

TEST_F(ServerFixture, TextBecomesBitmapCommands) {
  ServerSession& session = AttachedSession();
  session.FillRect(Rect{0, 0, 400, 60}, kWhite);
  session.Flush();
  Sync();
  console_.ClearServiceLog();
  const Font& font = DefaultFont();
  const auto glyphs = font.Shape("hello slim world");
  session.DrawGlyphs(20, 20, glyphs, kBlack, kWhite);
  session.Flush();
  Sync();
  bool saw_bitmap = false;
  for (const auto& rec : console_.service_log()) {
    EXPECT_NE(rec.type, CommandType::kSet) << "text must not ship as literal pixels";
    saw_bitmap |= rec.type == CommandType::kBitmap;
  }
  EXPECT_TRUE(saw_bitmap);
  EXPECT_TRUE(Matches(session));
}

TEST_F(ServerFixture, ImageBecomesSetCommands) {
  ServerSession& session = AttachedSession();
  console_.ClearServiceLog();
  Rng rng(3);
  session.PutImage(Rect{50, 50, 128, 96}, MakePhotoBlock(&rng, 128, 96));
  session.Flush();
  Sync();
  int64_t set_pixels = 0;
  for (const auto& rec : console_.service_log()) {
    if (rec.type == CommandType::kSet) {
      set_pixels += rec.pixels;
    }
  }
  EXPECT_GT(set_pixels, 128 * 96 * 9 / 10);
  EXPECT_TRUE(Matches(session));
}

TEST_F(ServerFixture, CopyAreaShipsAsCopyAndStaysConsistent) {
  ServerSession& session = AttachedSession();
  Rng rng(5);
  session.PutImage(Rect{0, 0, 200, 100}, MakePhotoBlock(&rng, 200, 100));
  session.Flush();
  Sync();
  console_.ClearServiceLog();
  session.CopyArea(0, 0, Rect{300, 300, 200, 100});
  session.Flush();
  Sync();
  bool saw_copy = false;
  for (const auto& rec : console_.service_log()) {
    saw_copy |= rec.type == CommandType::kCopy;
  }
  EXPECT_TRUE(saw_copy);
  EXPECT_TRUE(Matches(session));
}

TEST_F(ServerFixture, CopyOfUnflushedDamageEncodesDamageFirst) {
  // Draw, then immediately copy the drawn area without an intervening Flush: the encoder
  // must ship the damage before the COPY or the console would copy stale pixels.
  ServerSession& session = AttachedSession();
  Rng rng(7);
  session.PutImage(Rect{0, 0, 64, 64}, MakePhotoBlock(&rng, 64, 64));
  session.CopyArea(0, 0, Rect{100, 100, 64, 64});
  session.Flush();
  Sync();
  EXPECT_TRUE(Matches(session));
}

TEST_F(ServerFixture, InterleavedFillAndImageKeepCommandOrder) {
  ServerSession& session = AttachedSession();
  Rng rng(9);
  session.PutImage(Rect{20, 20, 80, 80}, MakePhotoBlock(&rng, 80, 80));
  session.FillRect(Rect{40, 40, 30, 30}, MakePixel(1, 2, 3));  // over part of the image
  session.PutImage(Rect{60, 60, 50, 50}, MakePhotoBlock(&rng, 50, 50));
  session.Flush();
  Sync();
  EXPECT_TRUE(Matches(session));
}

TEST_F(ServerFixture, VideoFrameShipsAsCscs) {
  ServerSession& session = AttachedSession();
  console_.ClearServiceLog();
  YuvImage frame(64, 48);
  for (int32_t y = 0; y < 48; ++y) {
    for (int32_t x = 0; x < 64; ++x) {
      frame.Set(x, y, Yuv{static_cast<uint8_t>(x * 4), 128, 128});
    }
  }
  session.SendVideoFrame(frame, Rect{100, 100, 128, 96}, CscsDepth::k12);
  Sync();
  ASSERT_FALSE(console_.service_log().empty());
  EXPECT_EQ(console_.service_log().back().type, CommandType::kCscs);
  EXPECT_TRUE(Matches(session)) << "server truth must mirror the console's decoded frame";
}

TEST_F(ServerFixture, HotdeskingMovesSessionBetweenConsoles) {
  ServerSession& session = AttachedSession();
  Rng rng(11);
  session.PutImage(Rect{10, 10, 100, 100}, MakePhotoBlock(&rng, 100, 100));
  session.Flush();
  Sync();
  ASSERT_TRUE(Matches(session));

  // The user pulls the card and walks to another console.
  Console second(&sim_, &fabric_, ConsoleOptions{});
  console_.RemoveCard(server_.node(), server_.auth().IssueCard(1));
  second.InsertCard(server_.node(), server_.auth().IssueCard(1));
  sim_.Run();
  EXPECT_EQ(session.console(), second.node());
  // The second console shows the exact screen state that was left behind.
  EXPECT_EQ(session.framebuffer().ContentHash(), second.framebuffer().ContentHash());
}

TEST_F(ServerFixture, UnknownCardIsRejected) {
  console_.InsertCard(server_.node(), 0xdeadbeef);  // never issued
  sim_.Run();
  EXPECT_EQ(server_.session_count(), 0u);
  EXPECT_GT(server_.auth().rejected(), 0);
}

TEST_F(ServerFixture, InputRoutesToSessionHandler) {
  ServerSession& session = AttachedSession();
  int keys = 0;
  int clicks = 0;
  session.set_input_handler([&](const Message& msg) {
    if (std::holds_alternative<KeyEventMsg>(msg.body)) {
      ++keys;
    } else if (std::holds_alternative<MouseEventMsg>(msg.body)) {
      ++clicks;
    }
  });
  console_.SendKey(server_.node(), session.id(), 65, true);
  console_.SendMouse(server_.node(), session.id(), 5, 5, 1, false);
  sim_.Run();
  EXPECT_EQ(keys, 1);
  EXPECT_EQ(clicks, 1);
  EXPECT_EQ(session.log().input_events(), 2);
}

TEST_F(ServerFixture, EncodeOverheadIsSmallFractionOfRenderTime) {
  // Section 5.5: protocol encoding adds ~1.7% to the X-server's execution time.
  ServerSession& session = AttachedSession();
  Rng rng(13);
  for (int i = 0; i < 20; ++i) {
    session.PutImage(Rect{i * 10, i * 10, 200, 150}, MakePhotoBlock(&rng, 200, 150));
    session.Flush();
  }
  Sync();
  const double ratio = static_cast<double>(session.encode_time()) /
                       static_cast<double>(session.render_time() + session.wire_time());
  EXPECT_LT(ratio, 0.25);
  EXPECT_GT(ratio, 0.0);
}

TEST(AuthTest, IssuedCardsVerify) {
  AuthenticationManager auth(42);
  const uint64_t card = auth.IssueCard(7);
  EXPECT_TRUE(auth.Verify(card));
  EXPECT_FALSE(auth.Verify(card + 1));
  EXPECT_EQ(auth.accepted(), 1);
  EXPECT_EQ(auth.rejected(), 1);
}

TEST(AuthTest, DifferentUsersGetDifferentCards) {
  AuthenticationManager auth(42);
  EXPECT_NE(auth.IssueCard(1), auth.IssueCard(2));
}

TEST(DeviceManagerTest, TracksAttachDetach) {
  RemoteDeviceManager devices;
  devices.DeviceAttached(3, 0x01);  // keyboard at console 3
  devices.DeviceAttached(3, 0x02);  // mouse
  devices.DeviceAttached(5, 0x08);  // mass storage elsewhere
  EXPECT_EQ(devices.DevicesAt(3), 2);
  EXPECT_EQ(devices.total_devices(), 3);
  devices.DeviceDetached(3, 0x01);
  EXPECT_EQ(devices.DevicesAt(3), 1);
  devices.DeviceDetached(3, 0x99);  // unknown: no-op
  EXPECT_EQ(devices.total_devices(), 2);
}

}  // namespace
}  // namespace slim
