// Tests for the VNC-style client-pull baseline.

#include <gtest/gtest.h>

#include "src/apps/content.h"
#include "src/net/fabric.h"
#include "src/server/slim_server.h"
#include "src/sim/simulator.h"
#include "src/vnc/vnc.h"

namespace slim {
namespace {

class VncFixture : public ::testing::Test {
 protected:
  VncFixture() : fabric_(&sim_, {}), server_(&sim_, &fabric_, ServerOptions{}) {
    session_ = &server_.CreateSession(server_.auth().IssueCard(1));
  }

  Simulator sim_;
  Fabric fabric_;
  SlimServer server_;
  ServerSession* session_ = nullptr;
};

TEST_F(VncFixture, ViewerConvergesToSource) {
  Rng rng(3);
  session_->FillRect(session_->framebuffer().bounds(), UiBackground());
  session_->PutImage(Rect{100, 100, 200, 150}, MakePhotoBlock(&rng, 200, 150));
  session_->Flush();  // no console attached: drawing only mutates server truth

  VncViewerSystem vnc(&sim_, &fabric_, session_, VncOptions{});
  vnc.Start();
  sim_.RunUntil(Seconds(1));
  vnc.Stop();
  sim_.Run();
  EXPECT_TRUE(vnc.InSync());
  EXPECT_GT(vnc.updates(), 0);
}

TEST_F(VncFixture, IdleScreenStillCostsDeltaScans) {
  // The paper's criticism: the pull model scans even when nothing changed.
  VncViewerSystem vnc(&sim_, &fabric_, session_, VncOptions{});
  vnc.Start();
  sim_.RunUntil(Seconds(2));
  vnc.Stop();
  sim_.Run();
  EXPECT_GT(vnc.updates(), 30);  // ~40 polls at 50 ms
  EXPECT_GT(vnc.diff_cpu_time(), Milliseconds(50));
  // But nothing changed, so almost nothing was sent (just update-complete markers).
  EXPECT_LT(vnc.bytes_sent(), 1000);
}

TEST_F(VncFixture, TracksOngoingChanges) {
  VncViewerSystem vnc(&sim_, &fabric_, session_, VncOptions{});
  vnc.Start();
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    sim_.RunUntil(sim_.now() + Milliseconds(200));
    session_->FillRect(Rect{i * 40, i * 30, 120, 90},
                       static_cast<Pixel>(rng.NextU64() & 0xffffff));
    session_->Flush();
  }
  sim_.RunUntil(sim_.now() + Milliseconds(500));
  vnc.Stop();
  sim_.Run();
  EXPECT_TRUE(vnc.InSync());
  EXPECT_GT(vnc.bytes_sent(), 0);
}

TEST_F(VncFixture, UpdateLatencyBoundedByPollInterval) {
  VncOptions options;
  options.poll_interval = Milliseconds(40);
  VncViewerSystem vnc(&sim_, &fabric_, session_, options);
  vnc.Start();
  sim_.RunUntil(Seconds(1));
  const SimTime drawn_at = sim_.now();
  session_->FillRect(Rect{10, 10, 50, 50}, kWhite);
  session_->Flush();
  // Step until the viewer first shows the change.
  while (!vnc.InSync() && sim_.Step()) {
  }
  const SimDuration refresh = sim_.now() - drawn_at;
  vnc.Stop();
  sim_.Run();
  EXPECT_TRUE(vnc.InSync());
  // One poll interval + scan + transfer bounds the refresh, and pull can never be instant.
  EXPECT_LE(refresh, Milliseconds(100));
  EXPECT_GT(refresh, Milliseconds(1));
}

}  // namespace
}  // namespace slim
