// Tests for RGB<->YUV conversion and the CSCS payload encodings.

#include <gtest/gtest.h>

#include <cmath>

#include "src/color/yuv.h"
#include "src/util/rng.h"

namespace slim {
namespace {

int ChannelError(Pixel a, Pixel b) {
  return std::max({std::abs(PixelR(a) - PixelR(b)), std::abs(PixelG(a) - PixelG(b)),
                   std::abs(PixelB(a) - PixelB(b))});
}

TEST(YuvTest, GrayAxisMapsToNeutralChroma) {
  for (int v = 0; v <= 255; v += 15) {
    const Yuv yuv = RgbToYuv(MakePixel(static_cast<uint8_t>(v), static_cast<uint8_t>(v),
                                       static_cast<uint8_t>(v)));
    EXPECT_NEAR(yuv.y, v, 1);
    EXPECT_NEAR(yuv.u, 128, 1);
    EXPECT_NEAR(yuv.v, 128, 1);
  }
}

TEST(YuvTest, PrimariesHaveExpectedLuma) {
  EXPECT_NEAR(RgbToYuv(MakePixel(255, 0, 0)).y, 76, 2);   // 0.299 * 255
  EXPECT_NEAR(RgbToYuv(MakePixel(0, 255, 0)).y, 150, 2);  // 0.587 * 255
  EXPECT_NEAR(RgbToYuv(MakePixel(0, 0, 255)).y, 29, 2);   // 0.114 * 255
}

TEST(YuvTest, RoundTripErrorBounded) {
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const Pixel p = static_cast<Pixel>(rng.NextU64() & 0xffffff);
    const Pixel q = YuvToRgb(RgbToYuv(p));
    EXPECT_LE(ChannelError(p, q), 3) << std::hex << p;
  }
}

TEST(CscsTest, PayloadBytesMatchDepthBudget) {
  // For block-aligned sizes the payload must be exactly depth/8 bytes per pixel.
  for (const CscsDepth depth : {CscsDepth::k16, CscsDepth::k12, CscsDepth::k8, CscsDepth::k6,
                                CscsDepth::k5}) {
    const int32_t w = 64;
    const int32_t h = 32;
    const size_t expected =
        static_cast<size_t>(w) * h * static_cast<size_t>(BitsPerPixel(depth)) / 8;
    EXPECT_EQ(CscsPayloadBytes(w, h, depth), expected) << BitsPerPixel(depth);
  }
}

TEST(CscsTest, PackedSizeMatchesPredictedSize) {
  Rng rng(9);
  for (const CscsDepth depth : {CscsDepth::k16, CscsDepth::k12, CscsDepth::k8, CscsDepth::k6,
                                CscsDepth::k5}) {
    for (const auto [w, h] : {std::pair{17, 9}, std::pair{64, 48}, std::pair{3, 3}}) {
      YuvImage image(w, h);
      for (int32_t y = 0; y < h; ++y) {
        for (int32_t x = 0; x < w; ++x) {
          image.Set(x, y, Yuv{static_cast<uint8_t>(rng.NextBelow(256)),
                              static_cast<uint8_t>(rng.NextBelow(256)),
                              static_cast<uint8_t>(rng.NextBelow(256))});
        }
      }
      EXPECT_EQ(PackCscsPayload(image, depth).size(), CscsPayloadBytes(w, h, depth));
    }
  }
}

TEST(CscsTest, SixteenBitRoundTripPreservesLumaExactly) {
  Rng rng(11);
  YuvImage image(32, 16);
  for (int32_t y = 0; y < 16; ++y) {
    for (int32_t x = 0; x < 32; ++x) {
      image.Set(x, y, Yuv{static_cast<uint8_t>(rng.NextBelow(256)), 128, 128});
    }
  }
  const auto payload = PackCscsPayload(image, CscsDepth::k16);
  const YuvImage back = UnpackCscsPayload(payload, 32, 16, CscsDepth::k16);
  for (int32_t y = 0; y < 16; ++y) {
    for (int32_t x = 0; x < 32; ++x) {
      EXPECT_EQ(back.At(x, y).y, image.At(x, y).y);
    }
  }
}

TEST(CscsTest, UniformImageSurvivesEveryDepth) {
  YuvImage image(24, 24);
  const Yuv value = RgbToYuv(MakePixel(120, 64, 200));
  for (int32_t y = 0; y < 24; ++y) {
    for (int32_t x = 0; x < 24; ++x) {
      image.Set(x, y, value);
    }
  }
  for (const CscsDepth depth : {CscsDepth::k16, CscsDepth::k12, CscsDepth::k8, CscsDepth::k6,
                                CscsDepth::k5}) {
    const YuvImage back =
        UnpackCscsPayload(PackCscsPayload(image, depth), 24, 24, depth);
    const int tolerance = BitsPerPixel(depth) >= 12 ? 1 : 40;  // quantization widens error
    for (int32_t y = 0; y < 24; ++y) {
      for (int32_t x = 0; x < 24; ++x) {
        EXPECT_NEAR(back.At(x, y).y, value.y, tolerance);
        EXPECT_NEAR(back.At(x, y).u, value.u, tolerance);
        EXPECT_NEAR(back.At(x, y).v, value.v, tolerance);
      }
    }
  }
}

TEST(CscsTest, RoundTripErrorShrinksWithDepth) {
  // Aggregate luma error must be monotone in bit depth for natural content.
  Rng rng(13);
  YuvImage image(64, 64);
  for (int32_t y = 0; y < 64; ++y) {
    for (int32_t x = 0; x < 64; ++x) {
      // Smooth gradient plus noise, photograph-like.
      const auto base = static_cast<uint8_t>((x * 2 + y) & 0xff);
      image.Set(x, y, Yuv{base, static_cast<uint8_t>(96 + (x & 31)),
                          static_cast<uint8_t>(160 - (y & 31))});
    }
  }
  double previous_error = 1e18;
  for (const CscsDepth depth : {CscsDepth::k5, CscsDepth::k6, CscsDepth::k8, CscsDepth::k12,
                                CscsDepth::k16}) {
    const YuvImage back = UnpackCscsPayload(PackCscsPayload(image, depth), 64, 64, depth);
    double err = 0;
    for (int32_t y = 0; y < 64; ++y) {
      for (int32_t x = 0; x < 64; ++x) {
        err += std::abs(back.At(x, y).y - image.At(x, y).y) +
               std::abs(back.At(x, y).u - image.At(x, y).u) +
               std::abs(back.At(x, y).v - image.At(x, y).v);
      }
    }
    EXPECT_LE(err, previous_error) << "depth " << BitsPerPixel(depth);
    previous_error = err;
  }
}

TEST(ScaleTest, IdentityScaleMatchesDirectConversion) {
  Rng rng(17);
  YuvImage image(20, 12);
  for (int32_t y = 0; y < 12; ++y) {
    for (int32_t x = 0; x < 20; ++x) {
      image.Set(x, y, Yuv{static_cast<uint8_t>(rng.NextBelow(256)),
                          static_cast<uint8_t>(rng.NextBelow(256)),
                          static_cast<uint8_t>(rng.NextBelow(256))});
    }
  }
  const auto out = YuvToRgbScaled(image, 20, 12);
  for (int32_t y = 0; y < 12; ++y) {
    for (int32_t x = 0; x < 20; ++x) {
      EXPECT_EQ(out[static_cast<size_t>(y) * 20 + x], YuvToRgb(image.At(x, y)));
    }
  }
}

TEST(ScaleTest, UpscaleOfUniformImageStaysUniform) {
  YuvImage image(8, 8);
  const Yuv value = RgbToYuv(MakePixel(40, 180, 90));
  for (int32_t y = 0; y < 8; ++y) {
    for (int32_t x = 0; x < 8; ++x) {
      image.Set(x, y, value);
    }
  }
  const auto out = YuvToRgbScaled(image, 32, 24);  // the paper's 2x video upscale and more
  const Pixel expected = YuvToRgb(value);
  for (const Pixel p : out) {
    EXPECT_LE(ChannelError(p, expected), 1);
  }
}

TEST(ScaleTest, UpscaleInterpolatesBetweenExtremes) {
  YuvImage image(2, 1);
  image.Set(0, 0, Yuv{0, 128, 128});
  image.Set(1, 0, Yuv{255, 128, 128});
  const auto out = YuvToRgbScaled(image, 8, 1);
  // Values must be monotone left to right.
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(PixelR(out[i]), PixelR(out[i - 1]));
  }
  EXPECT_LT(PixelR(out[0]), 64);
  EXPECT_GT(PixelR(out[7]), 192);
}

}  // namespace
}  // namespace slim
