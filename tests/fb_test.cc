// Tests for rect/region algebra and the software framebuffer.

#include <gtest/gtest.h>

#include "src/fb/framebuffer.h"
#include "src/fb/geometry.h"
#include "src/util/rng.h"

namespace slim {
namespace {

TEST(RectTest, EmptyAndArea) {
  EXPECT_TRUE(Rect{}.empty());
  EXPECT_TRUE((Rect{0, 0, 5, 0}).empty());
  EXPECT_TRUE((Rect{0, 0, -1, 4}).empty());
  EXPECT_EQ((Rect{1, 2, 3, 4}).area(), 12);
}

TEST(RectTest, IntersectBasics) {
  const Rect a{0, 0, 10, 10};
  const Rect b{5, 5, 10, 10};
  EXPECT_EQ(Intersect(a, b), (Rect{5, 5, 5, 5}));
  EXPECT_TRUE(Intersect(a, Rect{20, 20, 5, 5}).empty());
  EXPECT_EQ(Intersect(a, a), a);
}

TEST(RectTest, ContainsPointAndRect) {
  const Rect r{2, 2, 4, 4};
  EXPECT_TRUE(r.Contains(Point{2, 2}));
  EXPECT_FALSE(r.Contains(Point{6, 6}));  // half-open
  EXPECT_TRUE(r.ContainsRect(Rect{3, 3, 2, 2}));
  EXPECT_FALSE(r.ContainsRect(Rect{3, 3, 4, 4}));
  EXPECT_TRUE(r.ContainsRect(Rect{}));  // empty contained anywhere
}

TEST(RectTest, BoundingUnion) {
  EXPECT_EQ(BoundingUnion(Rect{0, 0, 2, 2}, Rect{8, 8, 2, 2}), (Rect{0, 0, 10, 10}));
  EXPECT_EQ(BoundingUnion(Rect{}, Rect{1, 1, 2, 2}), (Rect{1, 1, 2, 2}));
  EXPECT_TRUE(BoundingUnion(Rect{}, Rect{}).empty());
}

TEST(SubtractRectTest, FragmentsAreDisjointAndCoverDifference) {
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const Rect a{static_cast<int32_t>(rng.NextBelow(20)),
                 static_cast<int32_t>(rng.NextBelow(20)),
                 1 + static_cast<int32_t>(rng.NextBelow(20)),
                 1 + static_cast<int32_t>(rng.NextBelow(20))};
    const Rect b{static_cast<int32_t>(rng.NextBelow(20)),
                 static_cast<int32_t>(rng.NextBelow(20)),
                 1 + static_cast<int32_t>(rng.NextBelow(20)),
                 1 + static_cast<int32_t>(rng.NextBelow(20))};
    std::vector<Rect> frags;
    SubtractRect(a, b, &frags);
    // Exact area accounting.
    int64_t frag_area = 0;
    for (const Rect& f : frags) {
      frag_area += f.area();
      EXPECT_TRUE(a.ContainsRect(f));
      EXPECT_TRUE(Intersect(f, b).empty());
    }
    EXPECT_EQ(frag_area, a.area() - Intersect(a, b).area());
    // Pairwise disjoint.
    for (size_t i = 0; i < frags.size(); ++i) {
      for (size_t j = i + 1; j < frags.size(); ++j) {
        EXPECT_TRUE(Intersect(frags[i], frags[j]).empty());
      }
    }
  }
}

TEST(RegionTest, AddOverlappingRectsCountsAreaOnce) {
  Region region;
  region.Add(Rect{0, 0, 10, 10});
  region.Add(Rect{5, 5, 10, 10});
  EXPECT_EQ(region.area(), 100 + 100 - 25);
  EXPECT_EQ(region.bounds(), (Rect{0, 0, 15, 15}));
}

TEST(RegionTest, AddDuplicateIsIdempotent) {
  Region region;
  region.Add(Rect{2, 2, 8, 8});
  region.Add(Rect{2, 2, 8, 8});
  EXPECT_EQ(region.area(), 64);
}

TEST(RegionTest, SubtractRemovesArea) {
  Region region(Rect{0, 0, 10, 10});
  region.Subtract(Rect{0, 0, 10, 5});
  EXPECT_EQ(region.area(), 50);
  EXPECT_FALSE(region.Contains(Point{5, 2}));
  EXPECT_TRUE(region.Contains(Point{5, 7}));
}

TEST(RegionTest, RandomizedAreaMatchesBitmapOracle) {
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    Region region;
    bool bitmap[40][40] = {};
    for (int ops = 0; ops < 12; ++ops) {
      const Rect r{static_cast<int32_t>(rng.NextBelow(28)),
                   static_cast<int32_t>(rng.NextBelow(28)),
                   1 + static_cast<int32_t>(rng.NextBelow(10)),
                   1 + static_cast<int32_t>(rng.NextBelow(10))};
      const bool subtract = rng.NextBool(0.3);
      if (subtract) {
        region.Subtract(r);
      } else {
        region.Add(r);
      }
      for (int32_t y = r.y; y < std::min<int32_t>(40, r.bottom()); ++y) {
        for (int32_t x = r.x; x < std::min<int32_t>(40, r.right()); ++x) {
          bitmap[y][x] = !subtract;
        }
      }
    }
    int64_t oracle_area = 0;
    for (int y = 0; y < 40; ++y) {
      for (int x = 0; x < 40; ++x) {
        if (bitmap[y][x]) {
          ++oracle_area;
          EXPECT_TRUE(region.Contains(Point{x, y})) << trial << " " << x << "," << y;
        } else {
          EXPECT_FALSE(region.Contains(Point{x, y})) << trial << " " << x << "," << y;
        }
      }
    }
    EXPECT_EQ(region.area(), oracle_area);
  }
}

TEST(RegionTest, CoalesceBoundsFragmentCount) {
  Region region;
  for (int i = 0; i < 100; ++i) {
    region.Add(Rect{i * 3, (i % 7) * 3, 2, 2});
  }
  const Rect bounds = region.bounds();
  region.Coalesce(16);
  EXPECT_LE(region.rects().size(), 16u);
  EXPECT_EQ(region.bounds(), bounds);
}

TEST(FramebufferTest, FillAndGet) {
  Framebuffer fb(64, 64);
  EXPECT_EQ(fb.GetPixel(10, 10), kBlack);
  fb.Fill(Rect{8, 8, 16, 16}, MakePixel(255, 0, 0));
  EXPECT_EQ(fb.GetPixel(8, 8), MakePixel(255, 0, 0));
  EXPECT_EQ(fb.GetPixel(23, 23), MakePixel(255, 0, 0));
  EXPECT_EQ(fb.GetPixel(24, 24), kBlack);
}

TEST(FramebufferTest, FillClipsToBounds) {
  Framebuffer fb(16, 16);
  fb.Fill(Rect{-10, -10, 100, 100}, kWhite);
  EXPECT_EQ(fb.GetPixel(0, 0), kWhite);
  EXPECT_EQ(fb.GetPixel(15, 15), kWhite);
}

TEST(FramebufferTest, OutOfBoundsAccessSafe) {
  Framebuffer fb(8, 8);
  EXPECT_EQ(fb.GetPixel(-1, 0), kBlack);
  EXPECT_EQ(fb.GetPixel(0, 100), kBlack);
  fb.PutPixel(-5, -5, kWhite);  // no crash
  fb.PutPixel(100, 100, kWhite);
}

TEST(FramebufferTest, SetPixelsRoundTripsThroughReadPixels) {
  Framebuffer fb(32, 32);
  Rng rng(5);
  std::vector<Pixel> block(8 * 8);
  for (Pixel& p : block) {
    p = static_cast<Pixel>(rng.NextU64() & 0xffffff);
  }
  fb.SetPixels(Rect{4, 4, 8, 8}, block);
  std::vector<Pixel> readback;
  fb.ReadPixels(Rect{4, 4, 8, 8}, &readback);
  EXPECT_EQ(readback, block);
}

TEST(FramebufferTest, SetPixelsClipsButKeepsSourceAlignment) {
  Framebuffer fb(10, 10);
  std::vector<Pixel> block(4 * 4, MakePixel(1, 2, 3));
  block[0] = MakePixel(9, 9, 9);  // top-left, which falls outside
  fb.SetPixels(Rect{-2, -2, 4, 4}, block);
  // Only the bottom-right 2x2 of the block lands in bounds.
  EXPECT_EQ(fb.GetPixel(0, 0), MakePixel(1, 2, 3));
  EXPECT_EQ(fb.GetPixel(1, 1), MakePixel(1, 2, 3));
  EXPECT_EQ(fb.GetPixel(2, 2), kBlack);
}

TEST(FramebufferTest, ExpandBitmapSetsForegroundWhereBitsSet) {
  Framebuffer fb(16, 16);
  // 8x2 bitmap: 0b10110000 then 0b00000001.
  const std::vector<uint8_t> bits{0xb0, 0x01};
  fb.ExpandBitmap(Rect{0, 0, 8, 2}, bits, kWhite, MakePixel(10, 10, 10));
  EXPECT_EQ(fb.GetPixel(0, 0), kWhite);
  EXPECT_EQ(fb.GetPixel(1, 0), MakePixel(10, 10, 10));
  EXPECT_EQ(fb.GetPixel(2, 0), kWhite);
  EXPECT_EQ(fb.GetPixel(3, 0), kWhite);
  EXPECT_EQ(fb.GetPixel(7, 1), kWhite);
  EXPECT_EQ(fb.GetPixel(6, 1), MakePixel(10, 10, 10));
}

TEST(FramebufferTest, CopyRectNonOverlapping) {
  Framebuffer fb(32, 32);
  fb.Fill(Rect{0, 0, 4, 4}, MakePixel(200, 0, 0));
  fb.CopyRect(0, 0, Rect{10, 10, 4, 4});
  EXPECT_EQ(fb.GetPixel(10, 10), MakePixel(200, 0, 0));
  EXPECT_EQ(fb.GetPixel(13, 13), MakePixel(200, 0, 0));
  EXPECT_EQ(fb.GetPixel(0, 0), MakePixel(200, 0, 0));  // source untouched
}

TEST(FramebufferTest, CopyRectOverlappingBehavesAsSimultaneousMove) {
  Framebuffer fb(16, 1);
  for (int x = 0; x < 8; ++x) {
    fb.PutPixel(x, 0, MakePixel(static_cast<uint8_t>(x), 0, 0));
  }
  // Shift right by 2 with overlap.
  fb.CopyRect(0, 0, Rect{2, 0, 8, 1});
  for (int x = 0; x < 8; ++x) {
    EXPECT_EQ(fb.GetPixel(x + 2, 0), MakePixel(static_cast<uint8_t>(x), 0, 0)) << x;
  }
}

TEST(FramebufferTest, CopyFromOutsideBoundsReadsBlack) {
  Framebuffer fb(8, 8, kWhite);
  fb.CopyRect(-4, -4, Rect{0, 0, 4, 4});
  EXPECT_EQ(fb.GetPixel(0, 0), kBlack);
}

TEST(FramebufferTest, ContentHashDetectsAnySinglePixelChange) {
  Framebuffer a(64, 64);
  Framebuffer b(64, 64);
  EXPECT_EQ(a.ContentHash(), b.ContentHash());
  b.PutPixel(63, 63, MakePixel(0, 0, 1));
  EXPECT_NE(a.ContentHash(), b.ContentHash());
}

TEST(FramebufferTest, DiffWithFindsExactDamage) {
  Framebuffer a(100, 60);
  Framebuffer b(100, 60);
  b.Fill(Rect{20, 10, 30, 20}, kWhite);
  const auto diff = a.DiffWith(b);
  EXPECT_EQ(diff.differing_pixels, 30 * 20);
  EXPECT_FALSE(diff.damage.empty());
  // Damage tiles must cover every differing pixel.
  for (int32_t y = 10; y < 30; ++y) {
    for (int32_t x = 20; x < 50; ++x) {
      EXPECT_TRUE(diff.damage.Contains(Point{x, y})) << x << "," << y;
    }
  }
}

TEST(FramebufferTest, DiffWithIdenticalIsEmpty) {
  Framebuffer a(64, 64);
  Framebuffer b(64, 64);
  const auto diff = a.DiffWith(b);
  EXPECT_TRUE(diff.damage.empty());
  EXPECT_EQ(diff.differing_pixels, 0);
}

TEST(FramebufferTest, DiffWithNonTileAlignedWidth) {
  Framebuffer a(50, 20);  // 50 is not a multiple of the 16-pixel tile
  Framebuffer b(50, 20);
  b.PutPixel(49, 19, kWhite);
  const auto diff = a.DiffWith(b);
  EXPECT_EQ(diff.differing_pixels, 1);
  EXPECT_TRUE(diff.damage.Contains(Point{49, 19}));
  EXPECT_LE(diff.damage.bounds().right(), 50);
}

}  // namespace
}  // namespace slim
