// Tests for the discrete-event simulator core.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"

namespace slim {
namespace {

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Milliseconds(30), [&] { order.push_back(3); });
  sim.Schedule(Milliseconds(10), [&] { order.push_back(1); });
  sim.Schedule(Milliseconds(20), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Milliseconds(30));
}

TEST(SimulatorTest, EqualTimesRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(Milliseconds(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, ClockVisibleInsideCallback) {
  Simulator sim;
  SimTime seen = -1;
  sim.Schedule(Microseconds(550), [&] { seen = sim.now(); });
  sim.Run();
  EXPECT_EQ(seen, Microseconds(550));
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) {
      sim.Schedule(Milliseconds(1), chain);
    }
  };
  sim.Schedule(0, chain);
  sim.Run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), Milliseconds(4));
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.Schedule(Milliseconds(1), [&] { ran = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SimulatorTest, CancelUnknownIdIsNoop) {
  Simulator sim;
  sim.Cancel(12345);
  bool ran = false;
  sim.Schedule(0, [&] { ran = true; });
  sim.Run();
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, RunUntilAdvancesClockExactly) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Milliseconds(10), [&] { ++fired; });
  sim.Schedule(Milliseconds(30), [&] { ++fired; });
  sim.RunUntil(Milliseconds(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Milliseconds(20));
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunUntilSkipsCancelledHead) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.Schedule(Milliseconds(5), [] {});
  sim.Schedule(Milliseconds(8), [&] { ran = true; });
  sim.Cancel(id);
  sim.RunUntil(Milliseconds(10));
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.Step());
  sim.Schedule(0, [] {});
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, PendingEventsTracksQueue) {
  Simulator sim;
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.Schedule(1, [] {});
  sim.Schedule(2, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.Run();
  EXPECT_EQ(sim.pending_events(), 0u);
}

}  // namespace
}  // namespace slim
