// System-level integration tests: multiple users on one server, lossy fabric end-to-end,
// audio, bandwidth negotiation under contention, and full-session determinism.

#include <gtest/gtest.h>

#include <memory>

#include "src/apps/benchmark_apps.h"
#include "src/console/console.h"
#include "src/net/fabric.h"
#include "src/server/slim_server.h"
#include "src/sim/simulator.h"
#include "src/video/pipeline.h"
#include "src/video/video_source.h"
#include "src/workload/user_model.h"

namespace slim {
namespace {

TEST(IntegrationTest, FourUsersShareOneServer) {
  // One server, four consoles, four different applications, interleaved input. Every
  // console must track its own session exactly; sessions must not bleed into each other.
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimServer server(&sim, &fabric, {});
  std::vector<std::unique_ptr<Console>> consoles;
  std::vector<ServerSession*> sessions;
  std::vector<std::unique_ptr<Application>> apps;
  for (int u = 0; u < 4; ++u) {
    consoles.push_back(std::make_unique<Console>(&sim, &fabric, ConsoleOptions{}));
    const uint64_t card = server.auth().IssueCard(static_cast<uint32_t>(u + 1));
    sessions.push_back(&server.CreateSession(card));
    apps.push_back(MakeApplication(static_cast<AppKind>(u), sessions.back(),
                                   0xabc + static_cast<uint64_t>(u)));
    apps.back()->BindInput();
    consoles.back()->InsertCard(server.node(), card);
    sim.Run();
    apps.back()->Start();
    sim.Run();
  }
  Rng rng(0xd1ce);
  for (int i = 0; i < 200; ++i) {
    const int u = static_cast<int>(rng.NextBelow(4));
    if (rng.NextBool(0.7)) {
      consoles[u]->SendKey(server.node(), sessions[u]->id(),
                           static_cast<uint32_t>(rng.NextBelow(997)), true);
    } else {
      consoles[u]->SendMouse(server.node(), sessions[u]->id(),
                             static_cast<int32_t>(rng.NextBelow(1280)),
                             static_cast<int32_t>(rng.NextBelow(1024)), 1, false);
    }
    sim.Run();
  }
  for (int u = 0; u < 4; ++u) {
    EXPECT_EQ(sessions[u]->framebuffer().ContentHash(),
              consoles[u]->framebuffer().ContentHash())
        << "user " << u;
    EXPECT_GT(sessions[u]->log().input_events(), 0) << "user " << u;
  }
  // Sessions diverged from each other (no cross-talk produced identical screens).
  EXPECT_NE(sessions[0]->framebuffer().ContentHash(),
            sessions[1]->framebuffer().ContentHash());
}

TEST(IntegrationTest, LossyFabricConvergesViaReplay) {
  // 2% loss per hop. NACK replay must keep the console converging; after the traffic goes
  // quiet and a final full repaint flushes through a clean recovery window, screens match.
  Simulator sim;
  FabricOptions options;
  options.link.loss_probability = 0.02;
  Fabric fabric(&sim, options);
  SlimServer server(&sim, &fabric, {});
  Console console(&sim, &fabric, {});
  const uint64_t card = server.auth().IssueCard(1);
  ServerSession& session = server.CreateSession(card);
  auto app = MakeApplication(AppKind::kPim, &session, 5);
  app->BindInput();
  console.InsertCard(server.node(), card);
  sim.Run();
  app->Start();
  sim.Run();
  Rng rng(6);
  for (int i = 0; i < 150; ++i) {
    console.SendKey(server.node(), session.id(), static_cast<uint32_t>(rng.NextBelow(997)),
                    true);
    sim.RunUntil(sim.now() + Milliseconds(30));
  }
  sim.Run();
  // Heal any residual holes (lost input events don't matter; lost display commands might):
  // the session repaints and keepalive traffic gives NACK recovery windows to finish. The
  // forced variant discards the damage tracker's shadow — after loss the console has
  // diverged from it, and a refined repaint would transmit nothing.
  for (int i = 0; i < 5; ++i) {
    session.ForceRepaintAll();
    session.Flush();
    sim.Run();
  }
  EXPECT_EQ(session.framebuffer().ContentHash(), console.framebuffer().ContentHash());
  EXPECT_GT(console.endpoint().stats().nacks_sent +
                server.endpoint().stats().replays_sent,
            0)
      << "the lossy run should actually have exercised recovery";
}

TEST(IntegrationTest, AudioReachesConsole) {
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimServer server(&sim, &fabric, {});
  Console console(&sim, &fabric, {});
  const uint64_t card = server.auth().IssueCard(1);
  ServerSession& session = server.CreateSession(card);
  console.InsertCard(server.node(), card);
  sim.Run();
  // One second of 8 kHz uLaw audio in 20 ms packets.
  std::vector<uint8_t> chunk(160, 0x7f);
  for (int i = 0; i < 50; ++i) {
    session.SendAudio(8000, chunk);
  }
  sim.Run();
  EXPECT_EQ(console.audio_bytes(), 50 * 160);
}

TEST(IntegrationTest, VideoAndInteractiveSessionCoexist) {
  // A video stream and an interactive app share one console; both must stay pixel-exact
  // and the interactive updates must not starve (bounded decode latency).
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimServer server(&sim, &fabric, {});
  Console console(&sim, &fabric, {});
  const uint64_t video_card = server.auth().IssueCard(1);
  ServerSession& video_session = server.CreateSession(video_card);
  console.InsertCard(server.node(), video_card);
  sim.Run();

  SyntheticVideoSource source(320, 240, 9);
  VideoCpuModel cpu;
  MediaPipelineOptions options;
  options.target_fps = 24.0;
  options.depth = CscsDepth::k8;
  options.dst = Rect{600, 100, 320, 240};
  options.run_for = Seconds(5);
  MediaPipeline pipeline(&sim, &video_session, options, [&](int index, SimDuration* cost) {
    *cost = Milliseconds(10);
    return source.Frame(index);
  });
  pipeline.Start();

  // Interactive typing into the same session while video plays.
  const Font& font = DefaultFont();
  SimDuration worst_service = 0;
  console.set_apply_callback([&](const ServiceRecord& rec) {
    if (rec.type == CommandType::kBitmap) {
      worst_service = std::max(worst_service, rec.completion - rec.arrival);
    }
  });
  for (int i = 0; i < 40; ++i) {
    sim.RunUntil(sim.now() + Milliseconds(100));
    const char c = static_cast<char>('a' + i % 26);
    video_session.DrawGlyphs(40 + (i % 30) * font.char_width(), 700,
                             font.Shape(std::string_view(&c, 1)), kWhite, kBlack);
    video_session.Flush();
  }
  sim.Run();
  EXPECT_EQ(video_session.framebuffer().ContentHash(), console.framebuffer().ContentHash());
  EXPECT_GT(pipeline.frames_sent(), 100);
  // Interactive text behind a 24 fps video stream must still decode promptly.
  EXPECT_LT(worst_service, Milliseconds(50));
}

TEST(IntegrationTest, WholeSessionIsDeterministic) {
  auto run_hash = [] {
    Simulator sim;
    Fabric fabric(&sim, {});
    SlimServer server(&sim, &fabric, {});
    Console console(&sim, &fabric, {});
    const uint64_t card = server.auth().IssueCard(3);
    ServerSession& session = server.CreateSession(card);
    auto app = MakeApplication(AppKind::kNetscape, &session, 777);
    app->BindInput();
    console.InsertCard(server.node(), card);
    sim.Run();
    app->Start();
    sim.Run();
    UserModel user(AppKind::kNetscape, Rng(88));
    for (int i = 0; i < 60; ++i) {
      const auto event = user.Next();
      sim.Schedule(event.delay, [&] {
        if (event.is_key) {
          console.SendKey(server.node(), session.id(), event.keycode, true);
        } else {
          console.SendMouse(server.node(), session.id(), 500, 400, 1, false);
        }
      });
      sim.Run();
    }
    return console.framebuffer().ContentHash() ^ (sim.now() * 0x9e3779b97f4a7c15ull);
  };
  EXPECT_EQ(run_hash(), run_hash());
}

}  // namespace
}  // namespace slim
