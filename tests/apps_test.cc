// Tests for the font, content generators and the four benchmark applications.

#include <gtest/gtest.h>

#include <set>

#include "src/apps/benchmark_apps.h"
#include "src/apps/content.h"
#include "src/console/console.h"
#include "src/net/fabric.h"
#include "src/server/slim_server.h"
#include "src/sim/simulator.h"

namespace slim {
namespace {

TEST(FontTest, GlyphsHaveUniformMetrics) {
  const Font& font = DefaultFont();
  for (int c = 0x20; c < 0x80; ++c) {
    const GlyphBitmap& glyph = font.Glyph(static_cast<char>(c));
    EXPECT_EQ(glyph.width, font.char_width());
    EXPECT_EQ(glyph.height, font.char_height());
    EXPECT_EQ(glyph.bits.size(),
              static_cast<size_t>((font.char_width() + 7) / 8) * font.char_height());
  }
}

TEST(FontTest, SpaceIsEmptyLettersAreNot) {
  const Font& font = DefaultFont();
  auto ink = [](const GlyphBitmap& g) {
    int bits = 0;
    for (const uint8_t byte : g.bits) {
      bits += __builtin_popcount(byte);
    }
    return bits;
  };
  EXPECT_EQ(ink(font.Glyph(' ')), 0);
  for (const char c : {'a', 'e', 'Z', '9', '!'}) {
    EXPECT_GT(ink(font.Glyph(c)), 0) << c;
  }
}

TEST(FontTest, GlyphsAreStableAndDistinct) {
  const Font a;
  const Font b;
  EXPECT_EQ(a.Glyph('q').bits, b.Glyph('q').bits);
  std::set<std::vector<uint8_t>> shapes;
  for (char c = 'a'; c <= 'z'; ++c) {
    shapes.insert(a.Glyph(c).bits);
  }
  EXPECT_GT(shapes.size(), 20u) << "letterforms should mostly differ";
}

TEST(FontTest, ControlCharactersFallBackSafely) {
  const Font& font = DefaultFont();
  EXPECT_EQ(font.Glyph('\n').bits, font.Glyph('?').bits);
  EXPECT_EQ(font.Glyph(static_cast<char>(0xff)).bits, font.Glyph('?').bits);
}

TEST(FontTest, ShapeReturnsGlyphPerCharacter) {
  const Font& font = DefaultFont();
  const auto glyphs = font.Shape("abc");
  ASSERT_EQ(glyphs.size(), 3u);
  EXPECT_EQ(glyphs[0], &font.Glyph('a'));
  EXPECT_EQ(font.TextWidth("abcd"), 4 * font.char_width());
}

TEST(ContentTest, PhotoBlockIsIncompressible) {
  Rng rng(1);
  const auto block = MakePhotoBlock(&rng, 64, 64);
  std::set<Pixel> distinct(block.begin(), block.end());
  EXPECT_GT(distinct.size(), block.size() / 4) << "photo content must have many colors";
}

TEST(ContentTest, ArtBlockHasSmallPalette) {
  Rng rng(2);
  const auto block = MakeArtBlock(&rng, 64, 64);
  std::set<Pixel> distinct(block.begin(), block.end());
  EXPECT_LE(distinct.size(), 6u);
}

TEST(ContentTest, TextLineRespectsLengthAndHasWords) {
  Rng rng(3);
  const std::string line = MakeTextLine(&rng, 40);
  EXPECT_LE(line.size(), 40u);
  EXPECT_NE(line.find(' '), std::string::npos);
}

TEST(ContentTest, GeneratorsAreDeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  EXPECT_EQ(MakePhotoBlock(&a, 32, 32), MakePhotoBlock(&b, 32, 32));
}

// Every application must start, accept a stream of arbitrary input, keep all drawing inside
// the framebuffer, and leave the attached console pixel-identical to the server.
class AppConformance : public ::testing::TestWithParam<int> {};

TEST_P(AppConformance, SurvivesInputStreamAndStaysConsistent) {
  const auto kind = static_cast<AppKind>(GetParam());
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimServer server(&sim, &fabric, {});
  Console console(&sim, &fabric, {});
  const uint64_t card = server.auth().IssueCard(9);
  ServerSession& session = server.CreateSession(card);
  auto app = MakeApplication(kind, &session, 1234);
  EXPECT_EQ(app->kind(), kind);
  app->BindInput();
  console.InsertCard(server.node(), card);
  sim.Run();
  app->Start();
  sim.Run();
  EXPECT_GT(session.commands_sent(), 0);

  Rng rng(55);
  for (int i = 0; i < 120; ++i) {
    if (rng.NextBool(0.7)) {
      console.SendKey(server.node(), session.id(),
                      static_cast<uint32_t>(rng.NextBelow(997)), true);
    } else {
      console.SendMouse(server.node(), session.id(),
                        static_cast<int32_t>(rng.NextBelow(1280)),
                        static_cast<int32_t>(rng.NextBelow(1024)), 1, false);
    }
    sim.Run();
    ASSERT_EQ(session.framebuffer().ContentHash(), console.framebuffer().ContentHash())
        << AppKindName(kind) << " diverged at event " << i;
  }
  EXPECT_EQ(console.commands_dropped(), 0);
  EXPECT_EQ(console.commands_rejected(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppConformance, ::testing::Range(0, kAppKindCount),
                         [](const auto& info) {
                           return std::string(AppKindName(static_cast<AppKind>(info.param)));
                         });

TEST(AppKindTest, NamesAreStable) {
  EXPECT_STREQ(AppKindName(AppKind::kPhotoshop), "Photoshop");
  EXPECT_STREQ(AppKindName(AppKind::kNetscape), "Netscape");
  EXPECT_STREQ(AppKindName(AppKind::kFrameMaker), "FrameMaker");
  EXPECT_STREQ(AppKindName(AppKind::kPim), "PIM");
}

}  // namespace
}  // namespace slim
