// Tests for the console actor: decode pipeline timing, queue saturation, bandwidth
// allocation, and the Table 5 cost model.

#include <gtest/gtest.h>

#include "src/console/bandwidth.h"
#include "src/console/console.h"
#include "src/net/transport.h"
#include "src/util/rng.h"

namespace slim {
namespace {

class ConsoleFixture : public ::testing::Test {
 protected:
  ConsoleFixture() : fabric_(&sim_, {}), console_(&sim_, &fabric_, ConsoleOptions{}) {
    server_ = std::make_unique<SlimEndpoint>(&fabric_, fabric_.AddNode());
  }

  Simulator sim_;
  Fabric fabric_;
  Console console_;
  std::unique_ptr<SlimEndpoint> server_;
};

TEST_F(ConsoleFixture, AppliesFillToFramebuffer) {
  server_->Send(console_.node(), 1, FillCommand{Rect{0, 0, 64, 64}, MakePixel(9, 9, 9)});
  sim_.Run();
  EXPECT_EQ(console_.commands_applied(), 1);
  EXPECT_EQ(console_.framebuffer().GetPixel(10, 10), MakePixel(9, 9, 9));
}

TEST_F(ConsoleFixture, ServiceTimeMatchesCostModel) {
  const FillCommand cmd{Rect{0, 0, 100, 100}, kWhite};
  server_->Send(console_.node(), 1, cmd);
  sim_.Run();
  ASSERT_EQ(console_.service_log().size(), 1u);
  const ServiceRecord& rec = console_.service_log()[0];
  const ConsoleCostModel model;
  EXPECT_EQ(rec.completion - rec.start, model.CostOf(DisplayCommand(cmd)));
  EXPECT_EQ(rec.pixels, 100 * 100);
}

TEST_F(ConsoleFixture, QueuedCommandsServiceSequentially) {
  // Two large SETs: the second's decode starts when the first finishes.
  SetCommand cmd;
  cmd.dst = Rect{0, 0, 200, 200};
  cmd.rgb.assign(200 * 200 * 3, 5);
  server_->Send(console_.node(), 1, cmd);
  server_->Send(console_.node(), 1, cmd);
  sim_.Run();
  ASSERT_EQ(console_.service_log().size(), 2u);
  const auto& log = console_.service_log();
  EXPECT_EQ(log[1].start, std::max(log[0].completion, log[1].arrival));
  EXPECT_GT(log[1].start, log[1].arrival);  // it actually queued
}

TEST_F(ConsoleFixture, MalformedCommandRejected) {
  SetCommand bad;
  bad.dst = Rect{0, 0, 10, 10};
  bad.rgb.assign(7, 0);  // wrong payload size
  server_->Send(console_.node(), 1, bad);
  sim_.Run();
  EXPECT_EQ(console_.commands_applied(), 0);
  EXPECT_EQ(console_.commands_rejected(), 1);
}

TEST_F(ConsoleFixture, RespondsToPing) {
  uint64_t pong_payload = 0;
  server_->set_handler([&](const Message& m, NodeId) {
    if (const auto* pong = std::get_if<PongMsg>(&m.body)) {
      pong_payload = pong->payload;
    }
  });
  server_->Send(console_.node(), 1, PingMsg{1234});
  sim_.Run();
  EXPECT_EQ(pong_payload, 1234u);
}

TEST_F(ConsoleFixture, BandwidthRequestGetsGrant) {
  int64_t granted = -1;
  server_->set_handler([&](const Message& m, NodeId) {
    if (const auto* grant = std::get_if<BandwidthGrantMsg>(&m.body)) {
      granted = grant->bits_per_second;
    }
  });
  server_->Send(console_.node(), 1, BandwidthRequestMsg{1, 40'000'000});
  sim_.Run();
  EXPECT_EQ(granted, 40'000'000);
}

TEST_F(ConsoleFixture, InputEventsReachServer) {
  std::vector<MessageType> types;
  server_->set_handler(
      [&](const Message& m, NodeId) { types.push_back(TypeOfMessage(m)); });
  console_.SendKey(server_->node(), 3, 65, true);
  console_.SendMouse(server_->node(), 3, 10, 20, 1, false);
  console_.InsertCard(server_->node(), 0xcafe);
  sim_.Run();
  ASSERT_EQ(types.size(), 3u);
  EXPECT_EQ(types[0], MessageType::kKeyEvent);
  EXPECT_EQ(types[1], MessageType::kMouseEvent);
  EXPECT_EQ(types[2], MessageType::kSessionAttach);
}

TEST(ConsoleSaturationTest, OverloadDropsCommands) {
  // Faster-than-decodable stream: the 2 MB command memory fills and the console drops, the
  // saturation behaviour Table 5's methodology relies on.
  Simulator sim;
  FabricOptions fast;
  fast.link.bits_per_second = 1'000'000'000;  // 1 Gbps feed so decode is the bottleneck
  Fabric fabric(&sim, fast);
  ConsoleOptions options;
  options.record_service_log = false;
  Console console(&sim, &fabric, options);
  SlimEndpoint server(&fabric, fabric.AddNode());
  SetCommand cmd;
  cmd.dst = Rect{0, 0, 256, 256};  // ~17.7 ms decode each at 270 ns/pixel
  cmd.rgb.assign(256 * 256 * 3, 1);
  std::function<void(int)> send_next = [&](int i) {
    if (i >= 400) {
      return;
    }
    server.Send(console.node(), 1, cmd);
    sim.Schedule(Milliseconds(2), [&, i] { send_next(i + 1); });
  };
  send_next(0);
  sim.Run();
  EXPECT_GT(console.commands_dropped(), 0);
  // It still made steady progress at its service rate (~17.7 ms per command over ~0.93 s).
  EXPECT_GT(console.commands_applied(), 40);
}

TEST(CostModelTest, MatchesTable5Constants) {
  const ConsoleCostModel model;
  auto cost_minus_dispatch = [&](const DisplayCommand& cmd) {
    return model.CostOf(cmd) - model.dispatch_overhead;
  };
  SetCommand set;
  set.dst = Rect{0, 0, 100, 10};
  set.rgb.assign(100 * 10 * 3, 0);
  EXPECT_EQ(cost_minus_dispatch(set), 5000 + 270 * 1000);
  FillCommand fill{Rect{0, 0, 100, 10}, 0};
  EXPECT_EQ(cost_minus_dispatch(fill), 5000 + 2 * 1000);
  CopyCommand copy{0, 0, Rect{0, 0, 100, 10}};
  EXPECT_EQ(cost_minus_dispatch(copy), 5000 + 10 * 1000);
  BitmapCommand bitmap;
  bitmap.dst = Rect{0, 0, 100, 10};
  bitmap.bits.assign(13 * 10, 0);
  EXPECT_EQ(cost_minus_dispatch(bitmap), 11080 + 22 * 1000);
}

TEST(CostModelTest, CscsDepthsOrderedByCost) {
  const ConsoleCostModel model;
  SimDuration previous = 0;
  for (const CscsDepth depth :
       {CscsDepth::k5, CscsDepth::k6, CscsDepth::k8, CscsDepth::k12, CscsDepth::k16}) {
    CscsCommand cmd;
    cmd.src_w = 100;
    cmd.src_h = 100;
    cmd.dst = Rect{0, 0, 100, 100};
    cmd.depth = depth;
    cmd.payload.assign(CscsPayloadBytes(100, 100, depth), 0);
    const SimDuration cost = model.CostOf(DisplayCommand(cmd));
    EXPECT_GT(cost, previous);
    previous = cost;
  }
}

TEST(CostModelTest, StreamingCscsCheaperThanCold) {
  const ConsoleCostModel model;
  CscsCommand cmd;
  cmd.src_w = 320;
  cmd.src_h = 240;
  cmd.dst = Rect{0, 0, 320, 240};
  cmd.depth = CscsDepth::k8;
  cmd.payload.assign(CscsPayloadBytes(320, 240, CscsDepth::k8), 0);
  EXPECT_LT(model.StreamingCscsCost(cmd), model.CostOf(DisplayCommand(cmd)));
}

TEST(ConsoleStreamingTest, RepeatedVideoGeometryHitsWarmPath) {
  Simulator sim;
  Fabric fabric(&sim, {});
  Console console(&sim, &fabric, ConsoleOptions{});
  SlimEndpoint server(&fabric, fabric.AddNode());
  CscsCommand frame;
  frame.src_w = 64;
  frame.src_h = 48;
  frame.dst = Rect{0, 0, 64, 48};
  frame.depth = CscsDepth::k6;
  frame.payload.assign(CscsPayloadBytes(64, 48, CscsDepth::k6), 0);
  for (int i = 0; i < 5; ++i) {
    server.Send(console.node(), 1, frame);
  }
  sim.Run();
  EXPECT_EQ(console.cscs_stream_hits(), 4);  // first is cold, rest warm
  const auto& log = console.service_log();
  ASSERT_EQ(log.size(), 5u);
  EXPECT_GT(log[0].completion - log[0].start, log[1].completion - log[1].start);
}

TEST(BandwidthAllocatorTest, AllRequestsFitAllGranted) {
  const auto grants = AllocateBandwidth(
      {{1, 10'000'000}, {2, 20'000'000}, {3, 30'000'000}}, 100'000'000);
  ASSERT_EQ(grants.size(), 3u);
  for (const auto& g : grants) {
    int64_t want = static_cast<int64_t>(g.flow_id) * 10'000'000;
    EXPECT_EQ(g.bits_per_second, want);
  }
}

TEST(BandwidthAllocatorTest, AscendingGrantThenFairShare) {
  // Paper Section 7: grant ascending until one does not fit, split the rest fairly.
  const auto grants =
      AllocateBandwidth({{1, 5'000'000}, {2, 60'000'000}, {3, 80'000'000}}, 100'000'000);
  ASSERT_EQ(grants.size(), 3u);
  EXPECT_EQ(grants[0].flow_id, 1u);
  EXPECT_EQ(grants[0].bits_per_second, 5'000'000);
  // 95 Mbps left, 60 fits: granted. 80 does not fit in the remaining 35: fair share.
  EXPECT_EQ(grants[1].bits_per_second, 60'000'000);
  EXPECT_EQ(grants[2].bits_per_second, 35'000'000);
}

TEST(BandwidthAllocatorTest, SmallerRequestSatisfiedBeforeFairShare) {
  // Paper semantics: ascending grants take what fits; only the remainder is split.
  const auto grants =
      AllocateBandwidth({{1, 70'000'000}, {2, 90'000'000}}, 100'000'000);
  ASSERT_EQ(grants.size(), 2u);
  EXPECT_EQ(grants[0].bits_per_second, 70'000'000);
  EXPECT_EQ(grants[1].bits_per_second, 30'000'000);
}

TEST(BandwidthAllocatorTest, NothingFitsSplitsEverythingFairly) {
  const auto grants = AllocateBandwidth(
      {{1, 120'000'000}, {2, 150'000'000}, {3, 200'000'000}}, 90'000'000);
  ASSERT_EQ(grants.size(), 3u);
  for (const auto& g : grants) {
    EXPECT_EQ(g.bits_per_second, 30'000'000);
  }
}

TEST(BandwidthAllocatorTest, NeverOverAllocatesProperty) {
  Rng rng(31337);
  for (int trial = 0; trial < 500; ++trial) {
    const int n = 1 + static_cast<int>(rng.NextBelow(10));
    std::vector<BandwidthRequest> requests;
    for (int i = 0; i < n; ++i) {
      requests.push_back({static_cast<uint64_t>(i),
                          static_cast<int64_t>(rng.NextBelow(120'000'000))});
    }
    const int64_t total = 1'000'000 + static_cast<int64_t>(rng.NextBelow(100'000'000));
    const auto grants = AllocateBandwidth(requests, total);
    ASSERT_EQ(grants.size(), requests.size());
    int64_t sum = 0;
    for (size_t i = 0; i < grants.size(); ++i) {
      sum += grants[i].bits_per_second;
      EXPECT_GE(grants[i].bits_per_second, 0);
    }
    EXPECT_LE(sum, total);
    // No flow is granted more than it asked for.
    std::map<uint64_t, int64_t> asked;
    for (const auto& r : requests) {
      asked[r.flow_id] = r.bits_per_second;
    }
    for (const auto& g : grants) {
      EXPECT_LE(g.bits_per_second, std::max<int64_t>(asked[g.flow_id], 0));
    }
  }
}

TEST(BandwidthAllocatorTest, NonPositiveRequestsGetExplicitZeroGrants) {
  const auto grants = AllocateBandwidth({{1, 0}, {2, -5'000'000}, {3, 50'000'000}},
                                        40'000'000);
  ASSERT_EQ(grants.size(), 3u);
  std::map<uint64_t, int64_t> by_flow;
  for (const auto& g : grants) {
    by_flow[g.flow_id] = g.bits_per_second;
  }
  // Rejected flows appear explicitly (a zero grant, not a missing row) and take no part
  // in the fair-share split: flow 3 alone gets the whole link.
  EXPECT_EQ(by_flow.at(1), 0);
  EXPECT_EQ(by_flow.at(2), 0);
  EXPECT_EQ(by_flow.at(3), 40'000'000);
}

TEST(BandwidthAllocatorTest, FairShareResidueHandedOutExactly) {
  // 100 bps over three equal over-askers: the integer fair share is 33 with residue 1,
  // which the old divide-and-forget code stranded. The residue goes to the first flow in
  // the deterministic ascending order, making the total bit-exact.
  const auto grants = AllocateBandwidth({{1, 200}, {2, 200}, {3, 200}}, 100);
  ASSERT_EQ(grants.size(), 3u);
  EXPECT_EQ(grants[0].bits_per_second + grants[1].bits_per_second +
                grants[2].bits_per_second,
            100);
  EXPECT_EQ(grants[0].bits_per_second, 34);
  EXPECT_EQ(grants[1].bits_per_second, 33);
  EXPECT_EQ(grants[2].bits_per_second, 33);
}

TEST(BandwidthAllocatorTest, ContendedTotalIsExactProperty) {
  // Satellite property: never over-grant any flow, and the granted total equals
  // min(total, sum of positive requests) exactly — no residue stranded, none invented.
  Rng rng(0xbadc0ffe);
  for (int trial = 0; trial < 1000; ++trial) {
    const int n = 1 + static_cast<int>(rng.NextBelow(12));
    std::vector<BandwidthRequest> requests;
    int64_t positive_sum = 0;
    for (int i = 0; i < n; ++i) {
      // Mix magnitudes (tiny to huge) and sprinkle non-positive requests in.
      int64_t bps = static_cast<int64_t>(rng.NextBelow(1'000'000'000));
      if (rng.NextBelow(8) == 0) {
        bps = -bps;
      }
      positive_sum += std::max<int64_t>(bps, 0);
      requests.push_back({static_cast<uint64_t>(i), bps});
    }
    const int64_t total = 1 + static_cast<int64_t>(rng.NextBelow(2'000'000'000));
    const auto grants = AllocateBandwidth(requests, total);
    ASSERT_EQ(grants.size(), requests.size());
    std::map<uint64_t, int64_t> asked;
    for (const auto& r : requests) {
      asked[r.flow_id] = r.bits_per_second;
    }
    int64_t sum = 0;
    for (const auto& g : grants) {
      EXPECT_GE(g.bits_per_second, 0);
      EXPECT_LE(g.bits_per_second, std::max<int64_t>(asked.at(g.flow_id), 0));
      sum += g.bits_per_second;
    }
    EXPECT_EQ(sum, std::min(total, positive_sum))
        << "trial " << trial << ": contended split must be bit-exact";
  }
}

TEST(BandwidthAllocatorTest, RemoveReturnsFreshGrantSet) {
  BandwidthAllocator alloc(100'000'000);
  alloc.Request(1, 80'000'000);
  alloc.Request(2, 80'000'000);
  EXPECT_EQ(alloc.GrantFor(2), 20'000'000);
  // Remove surfaces the recomputed survivors immediately: no stale-grant window where the
  // freed 80 Mbps exists but nobody was told.
  const auto fresh = alloc.Remove(1);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].flow_id, 2u);
  EXPECT_EQ(fresh[0].bits_per_second, 80'000'000);
  EXPECT_EQ(alloc.flow_count(), 1u);
  // A non-positive request is an explicit withdrawal with the same contract.
  alloc.Request(3, 60'000'000);
  const auto after = alloc.Request(2, 0);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].flow_id, 3u);
  EXPECT_EQ(after[0].bits_per_second, 60'000'000);
  EXPECT_EQ(alloc.GrantFor(2), 0);
}

TEST_F(ConsoleFixture, GrantRevisionsReachEveryMovedFlow) {
  std::map<uint64_t, std::vector<int64_t>> heard;  // flow -> grant history
  server_->set_handler([&](const Message& m, NodeId) {
    if (const auto* g = std::get_if<BandwidthGrantMsg>(&m.body)) {
      heard[g->flow_id].push_back(g->bits_per_second);
      EXPECT_EQ(g->total_bps, 100'000'000);  // the console advertises its whole link
    }
  });
  server_->Send(console_.node(), 1, BandwidthRequestMsg{1, 80'000'000});
  sim_.Run();
  server_->Send(console_.node(), 1, BandwidthRequestMsg{2, 80'000'000});
  sim_.Run();
  // Flow 1's share did not move when flow 2 arrived, so it hears nothing new (no
  // duplicate grant spam); flow 2 gets the remainder.
  EXPECT_EQ(heard[1], (std::vector<int64_t>{80'000'000}));
  EXPECT_EQ(heard[2], (std::vector<int64_t>{20'000'000}));
  // Withdrawing flow 1 frees its share, and the revision is pushed to flow 2 unasked.
  server_->Send(console_.node(), 1, BandwidthRequestMsg{1, 0});
  sim_.Run();
  EXPECT_EQ(heard[2], (std::vector<int64_t>{20'000'000, 80'000'000}));
  EXPECT_EQ(console_.grants_sent(), 3);
}

TEST_F(ConsoleFixture, AppliedReleaseReclaimsTheSessionsFlows) {
  auto other = std::make_unique<SlimEndpoint>(&fabric_, fabric_.AddNode());
  std::vector<int64_t> other_grants;
  other->set_handler([&](const Message& m, NodeId) {
    if (const auto* g = std::get_if<BandwidthGrantMsg>(&m.body)) {
      other_grants.push_back(g->bits_per_second);
    }
  });
  server_->Send(console_.node(), 1, BandwidthRequestMsg{1, 80'000'000});
  sim_.Run();
  other->Send(console_.node(), 2, BandwidthRequestMsg{11, 80'000'000});
  sim_.Run();
  ASSERT_EQ(other_grants, (std::vector<int64_t>{20'000'000}));
  // The first server's session leaves this console: its flows die with the release and
  // the freed bandwidth is rebroadcast to the surviving flow immediately.
  server_->Send(console_.node(), 1, SessionReleaseMsg{ReleaseReason::kHotdesk});
  sim_.Run();
  EXPECT_GE(console_.releases_applied(), 1);
  EXPECT_EQ(other_grants, (std::vector<int64_t>{20'000'000, 80'000'000}));
  EXPECT_EQ(console_.allocator().flow_count(), 1u);
}

TEST(BandwidthAllocatorTest, StatefulTrackerUpdatesGrants) {
  BandwidthAllocator alloc(100'000'000);
  alloc.Request(1, 80'000'000);
  EXPECT_EQ(alloc.GrantFor(1), 80'000'000);
  alloc.Request(2, 80'000'000);
  // Equal requests tie-break by flow id: flow 1 fits, flow 2 gets the remainder.
  EXPECT_EQ(alloc.GrantFor(1), 80'000'000);
  EXPECT_EQ(alloc.GrantFor(2), 20'000'000);
  alloc.Remove(1);
  alloc.Request(2, 80'000'000);
  EXPECT_EQ(alloc.GrantFor(2), 80'000'000);
}

}  // namespace
}  // namespace slim
