// Server-farm tests (DESIGN.md §9): checkpoint round-trip exactness, hostile-blob
// rejection, cross-server hotdesk migration (clean and under chaos loss), and warm-standby
// crash failover.
//
// The acceptance properties from the issue:
//   - checkpoint -> restore is bit-identical on the framebuffer AND the damage tracker's
//     shadow state (property-tested over randomized sessions);
//   - a cross-server hotdesk under 10% fabric loss converges with exactly one owning
//     server and zero stale card mappings;
//   - a killed server's session comes back from the warm standby with the pre-crash
//     pixels on screen.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/apps/content.h"
#include "src/console/console.h"
#include "src/net/fabric.h"
#include "src/obs/metrics.h"
#include "src/protocol/messages.h"
#include "src/server/checkpoint.h"
#include "src/server/migration.h"
#include "src/server/session.h"
#include "src/server/slim_server.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/util/time.h"

namespace slim {
namespace {

ServerOptions SmallSession() {
  ServerOptions options;
  options.session_width = 160;
  options.session_height = 120;
  return options;
}

// Console geometry must match the small sessions, or whole-framebuffer hashes can never
// agree.
ConsoleOptions SmallConsole() {
  ConsoleOptions options;
  options.width = 160;
  options.height = 120;
  return options;
}

uint64_t BlankHash(const Console& console) {
  return Framebuffer(console.framebuffer().width(), console.framebuffer().height())
      .ContentHash();
}

// --- Checkpoint blob round-trip ----------------------------------------------------------

SessionCheckpoint SyntheticCheckpoint() {
  SessionCheckpoint ckpt;
  ckpt.origin_session = 7;
  ckpt.card_id = 0xDEADBEEFCAFEull;
  ckpt.lifecycle_state = 1;
  ckpt.console_send_seq = 123456789;
  ckpt.width = 8;
  ckpt.height = 3;
  ckpt.fb_pixels.resize(24);
  for (size_t i = 0; i < ckpt.fb_pixels.size(); ++i) {
    ckpt.fb_pixels[i] = static_cast<Pixel>(0x010203 * i);
  }
  ckpt.tracker_present = true;
  ckpt.tracker_valid = true;
  ckpt.shadow_pixels = ckpt.fb_pixels;
  ckpt.shadow_row_hashes = {11, 22, 33};
  ckpt.damage = {Rect{1, 1, 4, 2}, Rect{0, 0, 8, 1}};
  ckpt.interactive_grant_bps = 2'000'000;
  ckpt.video_grant_bps = 40'000'000;
  ckpt.link_total_bps = 100'000'000;
  ckpt.video_deferred = 3;
  ckpt.video_dropped = 1;
  ckpt.coalesced_flushes = 9;
  ckpt.commands_sent = 1234;
  ckpt.bytes_sent = 567890;
  ckpt.render_time = Milliseconds(12);
  ckpt.encode_time = Milliseconds(34);
  ckpt.wire_time = Milliseconds(56);
  for (int t = 1; t <= 5; ++t) {
    ckpt.encode_stats[t] = {t * 10, t * 100, t * 1000, t * 10000};
  }
  return ckpt;
}

TEST(CheckpointTest, EncodeDecodeRoundTripIsExact) {
  const SessionCheckpoint ckpt = SyntheticCheckpoint();
  const std::vector<uint8_t> blob = EncodeCheckpoint(ckpt);
  const std::optional<SessionCheckpoint> decoded = DecodeCheckpoint(blob);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, ckpt);
}

TEST(CheckpointTest, TrackerlessCheckpointRoundTrips) {
  SessionCheckpoint ckpt = SyntheticCheckpoint();
  ckpt.tracker_present = false;
  ckpt.tracker_valid = false;
  ckpt.shadow_pixels.clear();
  ckpt.shadow_row_hashes.clear();
  const std::optional<SessionCheckpoint> decoded = DecodeCheckpoint(EncodeCheckpoint(ckpt));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, ckpt);
}

TEST(CheckpointTest, EveryTruncationIsRejected) {
  const std::vector<uint8_t> blob = EncodeCheckpoint(SyntheticCheckpoint());
  // Every prefix of the blob must decode to nullopt — never crash, never half-parse. The
  // outer length header catches most cuts; the internal consistency checks catch the rest.
  for (size_t len = 0; len < blob.size(); ++len) {
    EXPECT_FALSE(DecodeCheckpoint(std::span(blob.data(), len)).has_value())
        << "truncation at byte " << len << " parsed";
  }
  // Trailing garbage is equally fatal: a blob is exact or it is nothing.
  std::vector<uint8_t> padded = blob;
  padded.push_back(0);
  EXPECT_FALSE(DecodeCheckpoint(padded).has_value());
}

TEST(CheckpointTest, VersionAndMagicMismatchesAreRejected) {
  const SessionCheckpoint ckpt = SyntheticCheckpoint();
  std::vector<uint8_t> blob = EncodeCheckpoint(ckpt);
  ASSERT_TRUE(DecodeCheckpoint(blob).has_value());
  std::vector<uint8_t> bad_version = blob;
  bad_version[4] = 2;  // version 2 does not exist
  EXPECT_FALSE(DecodeCheckpoint(bad_version).has_value());
  std::vector<uint8_t> bad_magic = blob;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(DecodeCheckpoint(bad_magic).has_value());
}

TEST(CheckpointTest, RandomByteFlipsNeverCrashTheDecoder) {
  const std::vector<uint8_t> blob = EncodeCheckpoint(SyntheticCheckpoint());
  Rng rng(97);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> mutated = blob;
    const int flips = 1 + static_cast<int>(rng.NextBelow(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.NextBelow(mutated.size())] ^= static_cast<uint8_t>(1 + rng.NextBelow(255));
    }
    // Either the mutation hit don't-care bytes (decodes to something) or it is rejected;
    // both are fine — what is not fine is a crash or a SLIM_CHECK abort.
    (void)DecodeCheckpoint(mutated);
  }
}

// --- Capture/restore on live sessions ----------------------------------------------------

class CheckpointSessionFixture : public ::testing::Test {
 protected:
  CheckpointSessionFixture()
      : fabric_(&sim_, {}),
        server_a_(&sim_, &fabric_, SmallSession()),
        server_b_(&sim_, &fabric_, SmallSession()),
        console_(&sim_, &fabric_, SmallConsole()) {}

  // Attach at server A and scribble `rounds` of randomized content so the framebuffer,
  // damage tracker shadow, and counters all hold non-trivial state.
  ServerSession& PopulatedSession(Rng* rng, int rounds) {
    card_ = server_a_.auth().IssueCard(1);
    ServerSession& session = server_a_.CreateSession(card_);
    console_.InsertCard(server_a_.node(), card_);
    sim_.RunFor(Milliseconds(200));
    EXPECT_TRUE(session.attached());
    for (int i = 0; i < rounds; ++i) {
      const int32_t x = static_cast<int32_t>(rng->NextBelow(120));
      const int32_t y = static_cast<int32_t>(rng->NextBelow(90));
      if (rng->NextBool(0.5)) {
        session.PutImage(Rect{x, y, 32, 24}, MakePhotoBlock(rng, 32, 24));
      } else {
        session.FillRect(Rect{x, y, 40, 30},
                         MakePixel(static_cast<uint8_t>(rng->NextBelow(255)), 80, 40));
      }
      session.Flush();
      sim_.RunFor(Milliseconds(50));
    }
    return session;
  }

  Simulator sim_;
  Fabric fabric_;
  SlimServer server_a_;
  SlimServer server_b_;
  Console console_;
  uint64_t card_ = 0;
};

TEST_F(CheckpointSessionFixture, RandomizedSessionsRoundTripBitIdentical) {
  Rng rng(4242);
  ServerSession& session = PopulatedSession(&rng, 12);

  SessionCheckpoint ckpt;
  session.CaptureCheckpoint(&ckpt);
  ckpt.card_id = card_;
  ckpt.lifecycle_state = 1;
  EXPECT_EQ(ckpt.fb_pixels.size(), static_cast<size_t>(160 * 120));

  // Wire round trip is exact.
  const std::optional<SessionCheckpoint> decoded = DecodeCheckpoint(EncodeCheckpoint(ckpt));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, ckpt);

  // Restoring on another server reproduces framebuffer AND shadow state bit-identically:
  // a second capture from the restored session differs only in its identity fields.
  std::unique_ptr<ServerSession> restored = server_b_.BuildStagedSession(*decoded);
  SessionCheckpoint recaptured;
  restored->CaptureCheckpoint(&recaptured);
  EXPECT_EQ(recaptured.fb_pixels, ckpt.fb_pixels);
  EXPECT_EQ(recaptured.tracker_present, ckpt.tracker_present);
  EXPECT_EQ(recaptured.tracker_valid, ckpt.tracker_valid);
  EXPECT_EQ(recaptured.shadow_pixels, ckpt.shadow_pixels);
  EXPECT_EQ(recaptured.shadow_row_hashes, ckpt.shadow_row_hashes);
  EXPECT_EQ(recaptured.damage, ckpt.damage);
  EXPECT_EQ(recaptured.commands_sent, ckpt.commands_sent);
  EXPECT_EQ(recaptured.bytes_sent, ckpt.bytes_sent);
  for (int t = 1; t <= 5; ++t) {
    EXPECT_EQ(recaptured.encode_stats[t], ckpt.encode_stats[t]);
  }
  EXPECT_EQ(restored->framebuffer().ContentHash(), session.framebuffer().ContentHash());
}

TEST(CheckpointPropertyTest, PropertyManySeedsManyShapes) {
  // The property, over a spread of seeds and drawing mixes: capture -> encode -> decode ->
  // restore -> recapture reproduces every non-identity field exactly. Each seed gets its
  // own sim+fabric world (a torn-down server must not leave armed probes behind).
  for (uint64_t seed : {1ull, 17ull, 99ull, 1234ull}) {
    Rng rng(seed);
    Simulator sim;
    Fabric fabric(&sim, {});
    SlimServer src(&sim, &fabric, SmallSession());
    SlimServer dst(&sim, &fabric, SmallSession());
    Console console(&sim, &fabric, SmallConsole());
    const uint64_t card = src.auth().IssueCard(1);
    ServerSession& session = src.CreateSession(card);
    console.InsertCard(src.node(), card);
    sim.RunFor(Milliseconds(200));
    ASSERT_TRUE(session.attached()) << "seed " << seed;
    const int rounds = 3 + static_cast<int>(rng.NextBelow(8));
    for (int i = 0; i < rounds; ++i) {
      const int32_t x = static_cast<int32_t>(rng.NextBelow(150));
      const int32_t y = static_cast<int32_t>(rng.NextBelow(110));
      session.PutImage(Rect{x, y, 1 + static_cast<int32_t>(rng.NextBelow(64)),
                            1 + static_cast<int32_t>(rng.NextBelow(48))},
                       MakePhotoBlock(&rng, 64, 48));
      session.Flush();
      sim.RunFor(Milliseconds(20));
    }
    SessionCheckpoint ckpt;
    session.CaptureCheckpoint(&ckpt);
    const std::optional<SessionCheckpoint> decoded =
        DecodeCheckpoint(EncodeCheckpoint(ckpt));
    ASSERT_TRUE(decoded.has_value()) << "seed " << seed;
    ASSERT_EQ(*decoded, ckpt) << "seed " << seed;
    SessionCheckpoint recaptured;
    dst.BuildStagedSession(*decoded)->CaptureCheckpoint(&recaptured);
    EXPECT_EQ(recaptured.fb_pixels, ckpt.fb_pixels) << "seed " << seed;
    EXPECT_EQ(recaptured.shadow_pixels, ckpt.shadow_pixels) << "seed " << seed;
    EXPECT_EQ(recaptured.shadow_row_hashes, ckpt.shadow_row_hashes) << "seed " << seed;
    EXPECT_EQ(recaptured.tracker_valid, ckpt.tracker_valid) << "seed " << seed;
    EXPECT_EQ(recaptured.damage, ckpt.damage) << "seed " << seed;
  }
}

// --- Cross-server hotdesk migration ------------------------------------------------------

class MigrationFixture : public ::testing::Test {
 protected:
  MigrationFixture()
      : fabric_(&sim_, {}),
        server_a_(&sim_, &fabric_, SmallSession()),
        server_b_(&sim_, &fabric_, SmallSession()),
        console_a_(&sim_, &fabric_, SmallConsole()),
        console_b_(&sim_, &fabric_, SmallConsole()) {
    manager_a_ = &server_a_.EnableMigration(pool_, MigrationOptions{});
    manager_b_ = &server_b_.EnableMigration(pool_, MigrationOptions{});
    card_ = pool_.IssueCard(1);
  }

  // Attach the card at console A / server A and draw recognizable content.
  uint64_t StartSessionAtA() {
    console_a_.InsertCard(server_a_.node(), card_);
    sim_.RunFor(Milliseconds(300));
    ServerSession* session = server_a_.SessionForCard(card_);
    EXPECT_NE(session, nullptr);
    Rng rng(7);
    session->PutImage(Rect{8, 8, 96, 72}, MakePhotoBlock(&rng, 96, 72));
    session->FillRect(Rect{120, 80, 30, 30}, MakePixel(200, 40, 40));
    session->Flush();
    sim_.RunFor(Milliseconds(300));
    EXPECT_EQ(session->framebuffer().ContentHash(), console_a_.framebuffer().ContentHash());
    EXPECT_EQ(pool_.owner(card_), &server_a_);
    return session->framebuffer().ContentHash();
  }

  Simulator sim_;
  Fabric fabric_;
  ServerPool pool_;
  SlimServer server_a_;
  SlimServer server_b_;
  MigrationManager* manager_a_ = nullptr;
  MigrationManager* manager_b_ = nullptr;
  Console console_a_;
  Console console_b_;
  uint64_t card_ = 0;
};

TEST_F(MigrationFixture, CleanHotdeskAcrossServersMovesTheSessionExactly) {
  const uint64_t content_hash = StartSessionAtA();

  // The card surfaces at a console homed on server B: B pulls the session from A.
  console_b_.InsertCard(server_b_.node(), card_);
  sim_.RunFor(Seconds(2));

  // Exactly one owner, zero stale card mappings.
  ServerSession* moved = server_b_.SessionForCard(card_);
  ASSERT_NE(moved, nullptr);
  EXPECT_TRUE(moved->attached());
  EXPECT_EQ(moved->console(), console_b_.node());
  EXPECT_EQ(pool_.owner(card_), &server_b_);
  EXPECT_EQ(pool_.owned_cards(), 1u);
  EXPECT_EQ(server_a_.SessionForCard(card_), nullptr);
  EXPECT_EQ(server_a_.session_count(), 0u);
  EXPECT_EQ(server_a_.card_count(), 0u);
  EXPECT_EQ(server_b_.card_count(), 1u);
  EXPECT_FALSE(manager_a_->MigrationInFlight());
  EXPECT_FALSE(manager_b_->MigrationInFlight());

  // The pixels made the trip bit-exactly and reached the new console.
  EXPECT_EQ(moved->framebuffer().ContentHash(), content_hash);
  EXPECT_EQ(console_b_.framebuffer().ContentHash(), content_hash);
  // The old console was released (blanked), not left frozen on a ghost desktop.
  EXPECT_GE(console_a_.releases_applied(), 1);
  EXPECT_EQ(console_a_.framebuffer().ContentHash(), BlankHash(console_a_));

  // Protocol accounting: one commit on the source, one install on the destination, a
  // measured blackout on the destination's attach.
  EXPECT_EQ(manager_a_->stats().started, 1);
  EXPECT_EQ(manager_a_->stats().committed, 1);
  EXPECT_EQ(manager_b_->stats().installs, 1);
  EXPECT_EQ(manager_b_->stats().pulls_requested, 1);
  EXPECT_GT(manager_b_->stats().blackout_last_ns, 0);
  EXPECT_GT(manager_a_->checkpoint_stats().captures, 0);
  EXPECT_GT(manager_b_->checkpoint_stats().restores, 0);
}

TEST_F(MigrationFixture, HotdeskBackAndForthKeepsASingleOwner) {
  const uint64_t content_hash = StartSessionAtA();
  // A -> B -> A: two migrations; state survives both.
  console_b_.InsertCard(server_b_.node(), card_);
  sim_.RunFor(Seconds(2));
  ASSERT_NE(server_b_.SessionForCard(card_), nullptr);
  console_a_.InsertCard(server_a_.node(), card_);
  sim_.RunFor(Seconds(2));

  ServerSession* back = server_a_.SessionForCard(card_);
  ASSERT_NE(back, nullptr);
  EXPECT_TRUE(back->attached());
  EXPECT_EQ(back->console(), console_a_.node());
  EXPECT_EQ(back->framebuffer().ContentHash(), content_hash);
  EXPECT_EQ(console_a_.framebuffer().ContentHash(), content_hash);
  EXPECT_EQ(pool_.owner(card_), &server_a_);
  EXPECT_EQ(pool_.owned_cards(), 1u);
  EXPECT_EQ(server_b_.SessionForCard(card_), nullptr);
  EXPECT_EQ(server_b_.card_count(), 0u);
  EXPECT_FALSE(manager_a_->MigrationInFlight());
  EXPECT_FALSE(manager_b_->MigrationInFlight());
}

TEST_F(MigrationFixture, ChaosLossMigrationConvergesToExactlyOneOwner) {
  const uint64_t content_hash = StartSessionAtA();

  // One datagram in ten dies on the server<->server path — Begin, chunks, commits and
  // aborts included — plus jitter, and the same on the destination console's links.
  FaultProfile lossy;
  lossy.loss = 0.10;
  lossy.delay_jitter = Milliseconds(1);
  fabric_.InjectFaults(server_a_.node(), server_b_.node(), lossy);
  fabric_.InjectFaults(server_b_.node(), server_a_.node(), lossy);
  fabric_.InjectFaults(server_b_.node(), console_b_.node(), lossy);
  fabric_.InjectFaults(console_b_.node(), server_b_.node(), lossy);

  // Like a real user, keep tapping the card until the desktop shows up.
  bool converged = false;
  for (int round = 0; round < 60 && !converged; ++round) {
    ServerSession* moved = server_b_.SessionForCard(card_);
    if (moved == nullptr || !moved->attached() || moved->console() != console_b_.node()) {
      console_b_.InsertCard(server_b_.node(), card_);
    }
    sim_.RunFor(Milliseconds(200));
    moved = server_b_.SessionForCard(card_);
    converged = moved != nullptr && moved->attached() &&
                moved->console() == console_b_.node() &&
                moved->framebuffer().ContentHash() == content_hash &&
                console_b_.framebuffer().ContentHash() == content_hash;
  }
  EXPECT_TRUE(converged) << "migration under 10% loss never converged";

  // Let stragglers (re-sent commits, release notices) settle, then check the invariant:
  // exactly one owning server, zero stale card mappings anywhere.
  sim_.RunFor(Seconds(1));
  EXPECT_EQ(pool_.owner(card_), &server_b_);
  EXPECT_EQ(pool_.owned_cards(), 1u);
  EXPECT_EQ(server_a_.SessionForCard(card_), nullptr);
  EXPECT_EQ(server_a_.session_count(), 0u);
  EXPECT_EQ(server_a_.card_count(), 0u);
  EXPECT_EQ(server_b_.session_count(), 1u);
  EXPECT_EQ(server_b_.card_count(), 1u);
  EXPECT_FALSE(manager_a_->MigrationInFlight());
  EXPECT_FALSE(manager_b_->MigrationInFlight());

  // The chaos was real (datagrams actually died), and the protocol actually retried.
  EXPECT_GT(fabric_.fault_stats().datagrams_dropped, 0);
  EXPECT_EQ(manager_a_->stats().committed, 1);
  EXPECT_EQ(manager_b_->stats().installs, 1);
}

// --- Crash failover from the warm standby ------------------------------------------------

TEST_F(MigrationFixture, KilledServerFailsOverToWarmStandby) {
  manager_a_->EnableStandby(&server_b_, Milliseconds(50));
  const uint64_t content_hash = StartSessionAtA();
  // Let the standby replication lap the last draw so B's warm blob holds the final state.
  sim_.RunFor(Milliseconds(300));
  EXPECT_GT(manager_a_->stats().standby_sent, 0);
  EXPECT_GT(manager_b_->stats().standby_stored, 0);
  ASSERT_TRUE(manager_b_->HasWarmCheckpoint(card_));

  // Power failure on A: its endpoint goes deaf and mute mid-flight.
  pool_.KillServer(&server_a_);
  EXPECT_FALSE(pool_.alive(&server_a_));

  // The user walks to a console homed on the standby and taps the card.
  console_b_.InsertCard(server_b_.node(), card_);
  sim_.RunFor(Seconds(1));

  ServerSession* restored = server_b_.SessionForCard(card_);
  ASSERT_NE(restored, nullptr);
  EXPECT_TRUE(restored->attached());
  EXPECT_EQ(restored->console(), console_b_.node());
  // The forced full repaint puts the pre-crash desktop on the new console bit-exactly.
  EXPECT_EQ(restored->framebuffer().ContentHash(), content_hash);
  EXPECT_EQ(console_b_.framebuffer().ContentHash(), content_hash);
  EXPECT_EQ(pool_.owner(card_), &server_b_);
  EXPECT_EQ(manager_b_->stats().failover_restores, 1);
  EXPECT_EQ(manager_b_->stats().cold_starts, 0);
  EXPECT_FALSE(manager_b_->MigrationInFlight());
}

TEST_F(MigrationFixture, DeadOwnerWithoutWarmCheckpointColdStarts) {
  StartSessionAtA();  // no standby: nothing replicated
  pool_.KillServer(&server_a_);
  console_b_.InsertCard(server_b_.node(), card_);
  sim_.RunFor(Seconds(1));

  // The session is lost (that is what "no standby" means) but the user is not locked out:
  // the card gets a fresh session on B and the directory converges to one owner.
  ServerSession* fresh = server_b_.SessionForCard(card_);
  ASSERT_NE(fresh, nullptr);
  EXPECT_TRUE(fresh->attached());
  EXPECT_EQ(pool_.owner(card_), &server_b_);
  EXPECT_EQ(manager_b_->stats().cold_starts, 1);
  EXPECT_EQ(manager_b_->stats().failover_restores, 0);
}

// --- Observability ----------------------------------------------------------------------

TEST_F(MigrationFixture, MigrationCountersRegisterAndReadBack) {
  MetricRegistry registry;
  ASSERT_TRUE(server_a_.RegisterMetrics(&registry, "server"));
  EXPECT_TRUE(registry.Contains("server.migration.started"));
  EXPECT_TRUE(registry.Contains("server.migration.committed"));
  EXPECT_TRUE(registry.Contains("server.migration.installs"));
  EXPECT_TRUE(registry.Contains("server.migration.blackout_last_ns"));
  EXPECT_TRUE(registry.Contains("server.checkpoint.captures"));
  EXPECT_TRUE(registry.Contains("server.checkpoint.restores"));

  StartSessionAtA();
  console_b_.InsertCard(server_b_.node(), card_);
  sim_.RunFor(Seconds(2));
  EXPECT_EQ(registry.CounterValue("server.migration.started").value_or(-1), 1);
  EXPECT_EQ(registry.CounterValue("server.migration.committed").value_or(-1), 1);
  EXPECT_GT(registry.CounterValue("server.checkpoint.captures").value_or(-1), 0);
}

}  // namespace
}  // namespace slim
