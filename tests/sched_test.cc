// Tests for the multiprocessor time-sharing scheduler.

#include <gtest/gtest.h>

#include "src/sched/scheduler.h"

namespace slim {
namespace {

TEST(SchedulerTest, SingleBurstRunsToCompletion) {
  Simulator sim;
  MpScheduler sched(&sim, {});
  const int pid = sched.AddProcess(0);
  bool done = false;
  EXPECT_TRUE(sched.Submit(pid, Milliseconds(25), true, [&] { done = true; }));
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), Milliseconds(25));
  EXPECT_EQ(sched.busy_time(), Milliseconds(25));
}

TEST(SchedulerTest, RejectsSecondBurstWhileInFlight) {
  Simulator sim;
  MpScheduler sched(&sim, {});
  const int pid = sched.AddProcess(0);
  EXPECT_TRUE(sched.Submit(pid, Milliseconds(10), true, {}));
  EXPECT_TRUE(sched.HasBurstInFlight(pid));
  EXPECT_FALSE(sched.Submit(pid, Milliseconds(10), true, {}));
  sim.Run();
  EXPECT_FALSE(sched.HasBurstInFlight(pid));
  EXPECT_TRUE(sched.Submit(pid, Milliseconds(10), true, {}));
  sim.Run();
}

TEST(SchedulerTest, TwoProcessesOnOneCpuShareViaQuanta) {
  Simulator sim;
  SchedulerOptions options;
  options.quantum = Milliseconds(10);
  MpScheduler sched(&sim, options);
  const int a = sched.AddProcess(0);
  const int b = sched.AddProcess(0);
  SimTime a_done = 0;
  SimTime b_done = 0;
  sched.Submit(a, Milliseconds(30), true, [&] { a_done = sim.now(); });
  sched.Submit(b, Milliseconds(30), true, [&] { b_done = sim.now(); });
  sim.Run();
  // Interleaved quanta: both finish near 60 ms, not 30/60 serially.
  EXPECT_EQ(std::max(a_done, b_done), Milliseconds(60));
  EXPECT_GE(std::min(a_done, b_done), Milliseconds(50));
}

TEST(SchedulerTest, TwoCpusRunTwoProcessesInParallel) {
  Simulator sim;
  SchedulerOptions options;
  options.cpus = 2;
  MpScheduler sched(&sim, options);
  const int a = sched.AddProcess(0);
  const int b = sched.AddProcess(0);
  SimTime a_done = 0;
  SimTime b_done = 0;
  sched.Submit(a, Milliseconds(30), true, [&] { a_done = sim.now(); });
  sched.Submit(b, Milliseconds(30), true, [&] { b_done = sim.now(); });
  sim.Run();
  EXPECT_EQ(a_done, Milliseconds(30));
  EXPECT_EQ(b_done, Milliseconds(30));
}

TEST(SchedulerTest, InteractiveBurstDoesNotWaitBehindHogBacklog) {
  // A fresh interactive burst must not wait behind a long background queue: this is the
  // Solaris-TS-like behaviour the paper's oversubscription results depend on. With three
  // 1-second hogs queued, a 30 ms interactive burst pays at most a few head-of-line
  // bottom-level slices (its own last quantum is demoted to the bottom), never the
  // 3-second serial backlog.
  Simulator sim;
  SchedulerOptions options;
  options.quantum = Milliseconds(10);
  MpScheduler sched(&sim, options);
  for (int i = 0; i < 3; ++i) {
    const int hog = sched.AddProcess(0);
    sched.Submit(hog, Seconds(1), false, {});
  }
  sim.RunUntil(Milliseconds(35));  // hogs are mid-flight
  const int yard = sched.AddProcess(0);
  SimTime done = 0;
  const SimTime submitted = sim.now();
  sched.Submit(yard, Milliseconds(30), true, [&] { done = sim.now(); });
  sim.Run();
  const SimDuration added = done - submitted - Milliseconds(30);
  EXPECT_LT(added, Milliseconds(200));
  EXPECT_GT(added, 0);
}

TEST(SchedulerTest, InteractiveWaitBoundedRegardlessOfHogCount) {
  // The head-of-line penalty for a freshly-woken burst is one bottom-level slice plus its
  // own demoted tail - it must NOT scale with the number of queued hogs.
  auto added_for_hogs = [](int hogs) {
    Simulator sim;
    SchedulerOptions options;
    options.quantum = Milliseconds(10);
    MpScheduler sched(&sim, options);
    for (int i = 0; i < hogs; ++i) {
      sched.Submit(sched.AddProcess(0), Seconds(2), false, {});
    }
    sim.RunUntil(Milliseconds(35));
    const int pid = sched.AddProcess(0);
    SimTime done = 0;
    const SimTime submitted = sim.now();
    sched.Submit(pid, Milliseconds(10), true, [&] { done = sim.now(); });
    sim.Run();
    return done - submitted - Milliseconds(10);
  };
  // A 10 ms burst stays at the top level: it pays at most the in-service slice.
  const SimDuration few = added_for_hogs(2);
  const SimDuration many = added_for_hogs(12);
  EXPECT_LE(many, few + Milliseconds(31));
  EXPECT_LT(many, Milliseconds(35));
}

TEST(SchedulerTest, MemoryOvercommitStretchesWallTime) {
  Simulator sim;
  SchedulerOptions options;
  options.ram_bytes = 100;
  options.paging_penalty = 4.0;
  MpScheduler sched(&sim, options);
  const int pid = sched.AddProcess(150);  // 1.5x RAM => overcommit 0.5 => stretch 3x
  EXPECT_DOUBLE_EQ(sched.MemoryOvercommit(), 0.5);
  SimTime done = 0;
  sched.Submit(pid, Milliseconds(10), true, [&] { done = sim.now(); });
  sim.Run();
  EXPECT_EQ(done, Milliseconds(30));
  EXPECT_EQ(sched.busy_time(), Milliseconds(10));  // useful work unchanged
}

TEST(SchedulerTest, ResidentBytesUpdateChangesOvercommit) {
  Simulator sim;
  SchedulerOptions options;
  options.ram_bytes = 1000;
  MpScheduler sched(&sim, options);
  const int pid = sched.AddProcess(400);
  EXPECT_EQ(sched.MemoryOvercommit(), 0.0);
  sched.SetResidentBytes(pid, 1600);
  EXPECT_DOUBLE_EQ(sched.MemoryOvercommit(), 0.6);
  EXPECT_EQ(sched.total_resident_bytes(), 1600);
}

TEST(SchedulerTest, UtilizationReflectsBusyFraction) {
  Simulator sim;
  MpScheduler sched(&sim, {});
  const int pid = sched.AddProcess(0);
  sched.Submit(pid, Milliseconds(30), true, {});
  sim.Run();
  sim.RunUntil(Milliseconds(60));
  EXPECT_NEAR(sched.Utilization(), 0.5, 1e-9);
}

TEST(SchedulerTest, ManyProcessesAllComplete) {
  Simulator sim;
  SchedulerOptions options;
  options.cpus = 4;
  MpScheduler sched(&sim, options);
  int completed = 0;
  for (int i = 0; i < 64; ++i) {
    const int pid = sched.AddProcess(0);
    sched.Submit(pid, Milliseconds(7 + i % 13), i % 2 == 0, [&] { ++completed; });
  }
  sim.Run();
  EXPECT_EQ(completed, 64);
  // 4 CPUs: makespan >= total work / 4.
  EXPECT_GE(sim.now() * 4, sched.busy_time());
}

}  // namespace
}  // namespace slim
