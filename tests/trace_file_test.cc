// Tests for binary trace serialization (the log-once / post-process-many workflow).

#include <gtest/gtest.h>

#include <cstdio>

#include "src/trace/trace_file.h"
#include "src/util/rng.h"
#include "src/workload/user_study.h"

namespace slim {
namespace {

ProtocolLog MakeSampleLog() {
  ProtocolLog log;
  log.RecordInput(Milliseconds(10), true);
  log.RecordXRequest(Milliseconds(11), 52);
  SetCommand set;
  set.dst = Rect{5, 6, 20, 10};
  set.rgb.assign(20 * 10 * 3, 9);
  log.RecordCommand(Milliseconds(12), DisplayCommand(set));
  log.RecordInput(Milliseconds(200), false);
  log.RecordCommand(Milliseconds(201), CopyCommand{0, 0, Rect{1, 2, 30, 40}});
  return log;
}

TEST(TraceFileTest, LogRoundTripPreservesEveryField) {
  const ProtocolLog log = MakeSampleLog();
  const auto bytes = SerializeLog(log);
  const auto back = ParseLog(bytes);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->entries().size(), log.entries().size());
  for (size_t i = 0; i < log.entries().size(); ++i) {
    const LogEntry& a = log.entries()[i];
    const LogEntry& b = back->entries()[i];
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.is_key, b.is_key);
    EXPECT_EQ(a.pixels, b.pixels);
    EXPECT_EQ(a.wire_bytes, b.wire_bytes);
    EXPECT_EQ(a.uncompressed_bytes, b.uncompressed_bytes);
    EXPECT_EQ(a.x_bytes, b.x_bytes);
  }
  // The derived analyses agree too.
  EXPECT_EQ(back->input_events(), log.input_events());
  EXPECT_EQ(back->AverageSlimBps(), log.AverageSlimBps());
}

TEST(TraceFileTest, RejectsCorruption) {
  auto bytes = SerializeLog(MakeSampleLog());
  // Bad magic.
  auto bad = bytes;
  bad[0] = 'X';
  EXPECT_FALSE(ParseLog(bad).has_value());
  // Truncated.
  auto cut = bytes;
  cut.resize(cut.size() - 3);
  EXPECT_FALSE(ParseLog(cut).has_value());
  // Trailing garbage.
  auto extra = bytes;
  extra.push_back(0);
  EXPECT_FALSE(ParseLog(extra).has_value());
}

TEST(TraceFileTest, FuzzRandomBytesNeverCrash) {
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    std::vector<uint8_t> noise(rng.NextBelow(300));
    for (auto& b : noise) {
      b = static_cast<uint8_t>(rng.NextBelow(256));
    }
    (void)ParseLog(noise);
    (void)ParseServiceLog(noise);
  }
}

TEST(TraceFileTest, ServiceLogRoundTrip) {
  std::vector<ServiceRecord> log;
  for (int i = 0; i < 20; ++i) {
    ServiceRecord rec;
    rec.arrival = Milliseconds(i);
    rec.start = rec.arrival + Microseconds(5);
    rec.completion = rec.start + Microseconds(100 + i);
    rec.type = static_cast<CommandType>(1 + i % 5);
    rec.pixels = i * 100;
    rec.wire_bytes = static_cast<size_t>(44 + i);
    rec.seq = static_cast<uint64_t>(i + 1);
    log.push_back(rec);
  }
  const auto back = ParseServiceLog(SerializeServiceLog(log));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), log.size());
  for (size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ((*back)[i].arrival, log[i].arrival);
    EXPECT_EQ((*back)[i].completion, log[i].completion);
    EXPECT_EQ((*back)[i].type, log[i].type);
    EXPECT_EQ((*back)[i].pixels, log[i].pixels);
    EXPECT_EQ((*back)[i].wire_bytes, log[i].wire_bytes);
    EXPECT_EQ((*back)[i].seq, log[i].seq);
  }
}

TEST(TraceFileTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/slim_trace_test.bin";
  const auto bytes = SerializeLog(MakeSampleLog());
  ASSERT_TRUE(WriteFile(path, bytes));
  const auto read = ReadFile(path);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(*read, bytes);
  std::remove(path.c_str());
  EXPECT_FALSE(ReadFile(path).has_value());
}

TEST(TraceFileTest, RealSessionLogSurvivesRoundTrip) {
  UserSessionConfig config;
  config.kind = AppKind::kPim;
  config.seed = 9;
  config.duration = Seconds(20);
  const UserSessionResult result = RunUserSession(config);
  const auto back = ParseLog(SerializeLog(result.log));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->entries().size(), result.log.entries().size());
  EXPECT_EQ(back->AverageSlimBps(), result.log.AverageSlimBps());
  EXPECT_EQ(back->AttributeToEvents().size(), result.log.AttributeToEvents().size());
  const auto service_back = ParseServiceLog(SerializeServiceLog(result.console_log));
  ASSERT_TRUE(service_back.has_value());
  EXPECT_EQ(service_back->size(), result.console_log.size());
}

}  // namespace
}  // namespace slim
