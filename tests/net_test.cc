// Tests for the simulated fabric (links, switch, queues) and the SLIM transport
// (fragmentation, reassembly, NACK replay, duplicate suppression).

#include <gtest/gtest.h>

#include "src/net/fabric.h"
#include "src/net/transport.h"
#include "src/protocol/wire.h"
#include "src/sim/simulator.h"

namespace slim {
namespace {

// Hand-frames one fragment datagram exactly as SlimEndpoint would put it on the wire
// (magic, checksum, index, count, msg_seq, payload); lets tests inject crafted fragments.
std::vector<uint8_t> FrameFragment(uint16_t index, uint16_t count, uint64_t msg_seq,
                                   std::span<const uint8_t> payload) {
  ByteWriter w;
  w.U8(0x5f);  // fragment magic
  w.U32(0);    // checksum placeholder
  w.U16(index);
  w.U16(count);
  w.U64(msg_seq);
  w.Bytes(payload);
  std::vector<uint8_t> bytes = w.Take();
  const uint32_t sum = Fnv1a32(std::span<const uint8_t>(bytes).subspan(5));
  for (int i = 0; i < 4; ++i) {
    bytes[1 + i] = static_cast<uint8_t>(sum >> (8 * i));
  }
  return bytes;
}

TEST(FabricTest, DeliversDatagramBetweenNodes) {
  Simulator sim;
  Fabric fabric(&sim, {});
  const NodeId a = fabric.AddNode();
  const NodeId b = fabric.AddNode();
  std::vector<uint8_t> received;
  fabric.SetReceiver(b, [&](Datagram d) { received = d.payload; });
  fabric.Send(Datagram{a, b, {1, 2, 3}});
  sim.Run();
  EXPECT_EQ(received, (std::vector<uint8_t>{1, 2, 3}));
}

TEST(FabricTest, LatencyIsSerializationPlusPropagationTwice) {
  // Store-and-forward: host link then switch egress link, each 5 us propagation.
  Simulator sim;
  FabricOptions options;
  options.link.bits_per_second = 100'000'000;
  options.link.propagation = Microseconds(5);
  Fabric fabric(&sim, options);
  const NodeId a = fabric.AddNode();
  const NodeId b = fabric.AddNode();
  SimTime arrival = -1;
  fabric.SetReceiver(b, [&](Datagram) { arrival = sim.now(); });
  const int64_t payload = 1000;
  fabric.Send(Datagram{a, b, std::vector<uint8_t>(payload)});
  sim.Run();
  const SimDuration tx = TransmissionDelay(payload + kDatagramOverheadBytes, 100'000'000);
  EXPECT_EQ(arrival, 2 * tx + 2 * Microseconds(5));
}

TEST(FabricTest, UnknownDestinationCountsAsMisrouted) {
  Simulator sim;
  Fabric fabric(&sim, {});
  const NodeId a = fabric.AddNode();
  fabric.Send(Datagram{a, 99, {1}});
  sim.Run();
  EXPECT_EQ(fabric.datagrams_misrouted(), 1);
}

TEST(FabricTest, SlowLinkDelaysDelivery) {
  Simulator sim;
  Fabric fabric(&sim, {});
  const NodeId fast = fabric.AddNode();
  LinkOptions slow;
  slow.bits_per_second = 1'000'000;  // 1 Mbps home link
  const NodeId home = fabric.AddNode(slow);
  SimTime arrival = -1;
  fabric.SetReceiver(home, [&](Datagram) { arrival = sim.now(); });
  fabric.Send(Datagram{fast, home, std::vector<uint8_t>(1454)});
  sim.Run();
  // The 1 Mbps egress dominates: 1500 B * 8 / 1 Mbps = 12 ms.
  EXPECT_GT(arrival, Milliseconds(12));
  EXPECT_LT(arrival, Milliseconds(13));
}

TEST(FabricTest, QueueOverflowDropsAtSwitchEgress) {
  // Two senders converging on one egress port offer 2x its line rate; the shallow egress
  // queue must overflow while the host uplinks (paced at line rate) never drop.
  Simulator sim;
  FabricOptions options;
  options.link.queue_limit_bytes = 10'000;
  Fabric fabric(&sim, options);
  const NodeId a1 = fabric.AddNode();
  const NodeId a2 = fabric.AddNode();
  const NodeId b = fabric.AddNode();
  int delivered = 0;
  fabric.SetReceiver(b, [&](Datagram) { ++delivered; });
  for (int i = 0; i < 100; ++i) {
    fabric.Send(Datagram{a1, b, std::vector<uint8_t>(1400)});
    fabric.Send(Datagram{a2, b, std::vector<uint8_t>(1400)});
  }
  sim.Run();
  EXPECT_LT(delivered, 200);
  EXPECT_EQ(fabric.downlink_stats(b).datagrams_dropped_queue, 200 - delivered);
  EXPECT_EQ(fabric.uplink_stats(a1).datagrams_dropped_queue, 0);
}

TEST(FabricTest, HostUplinkAbsorbsBursts) {
  // The same burst that overflows a switch egress queue survives the host-side uplink.
  Simulator sim;
  FabricOptions options;
  options.link.queue_limit_bytes = 10'000;
  options.host_queue_bytes = 8 * 1024 * 1024;
  Fabric fabric(&sim, options);
  const NodeId a = fabric.AddNode();
  (void)fabric.AddNode();
  for (int i = 0; i < 100; ++i) {
    fabric.Send(Datagram{a, 1, std::vector<uint8_t>(1400)});
  }
  sim.Run();
  EXPECT_EQ(fabric.uplink_stats(a).datagrams_dropped_queue, 0);
}

TEST(FabricTest, LossInjectionDropsApproximatelyTheConfiguredFraction) {
  Simulator sim;
  FabricOptions options;
  options.link.loss_probability = 0.2;
  Fabric fabric(&sim, options);
  const NodeId a = fabric.AddNode();
  const NodeId b = fabric.AddNode();
  int delivered = 0;
  fabric.SetReceiver(b, [&](Datagram) { ++delivered; });
  std::function<void(int)> send_next = [&](int i) {
    if (i >= 2000) {
      return;
    }
    fabric.Send(Datagram{a, b, {0}});
    sim.Schedule(Microseconds(50), [&, i] { send_next(i + 1); });
  };
  send_next(0);
  sim.Run();
  // Two lossy hops: survival probability 0.64.
  EXPECT_NEAR(delivered / 2000.0, 0.64, 0.05);
}

TEST(TransportTest, SmallMessageRoundTrip) {
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimEndpoint a(&fabric, fabric.AddNode());
  SlimEndpoint b(&fabric, fabric.AddNode());
  std::vector<Message> received;
  b.set_handler([&](const Message& m, NodeId) { received.push_back(m); });
  a.Send(b.node(), 5, KeyEventMsg{42, true});
  sim.Run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].session_id, 5u);
  EXPECT_EQ(std::get<KeyEventMsg>(received[0].body).keycode, 42u);
}

TEST(TransportTest, LargeMessageFragmentsAndReassembles) {
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimEndpoint a(&fabric, fabric.AddNode());
  SlimEndpoint b(&fabric, fabric.AddNode());
  SetCommand cmd;
  cmd.dst = Rect{0, 0, 200, 100};
  cmd.rgb.assign(200 * 100 * 3, 0xab);
  std::vector<Message> received;
  b.set_handler([&](const Message& m, NodeId) { received.push_back(m); });
  a.Send(b.node(), 1, cmd);
  sim.Run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(std::get<SetCommand>(received[0].body), cmd);
  EXPECT_GT(a.stats().fragments_sent, 40);  // 60 KB at ~1.5 KB MTU
}

TEST(TransportTest, SequenceNumbersIncreasePerPeer) {
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimEndpoint a(&fabric, fabric.AddNode());
  SlimEndpoint b(&fabric, fabric.AddNode());
  EXPECT_EQ(a.Send(b.node(), 1, PingMsg{1}), 1u);
  EXPECT_EQ(a.Send(b.node(), 1, PingMsg{2}), 2u);
  EXPECT_EQ(a.Send(b.node(), 1, PingMsg{3}), 3u);
}

TEST(TransportTest, GapTriggersNackAndReplayRecovers) {
  Simulator sim;
  FabricOptions options;
  options.link.loss_probability = 0.15;
  Fabric fabric(&sim, options);
  SlimEndpoint a(&fabric, fabric.AddNode());
  SlimEndpoint b(&fabric, fabric.AddNode());
  int received = 0;
  b.set_handler([&](const Message&, NodeId) { ++received; });
  // Paced sends so each loss creates a detectable gap before the next arrival.
  std::function<void(int)> send_next = [&](int i) {
    if (i >= 300) {
      return;
    }
    a.Send(b.node(), 1, PingMsg{static_cast<uint64_t>(i)});
    sim.Schedule(Milliseconds(2), [&, i] { send_next(i + 1); });
  };
  send_next(0);
  sim.Run();
  EXPECT_GT(b.stats().nacks_sent, 0);
  EXPECT_GT(a.stats().replays_sent, 0);
  // Replay recovers most of the ~28% two-hop loss. Recovery is driven by later arrivals,
  // so losses near the end of the stream (and lost replays of lost NACKs) can stay lost;
  // ranges whose replays keep getting lost also retry on a widening back-off gate, which
  // trades some tail recovery for not hammering the return path.
  EXPECT_GT(received, 240);
}

TEST(TransportTest, DuplicateDeliveryIsSuppressed) {
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimEndpoint a(&fabric, fabric.AddNode());
  SlimEndpoint b(&fabric, fabric.AddNode());
  int received = 0;
  b.set_handler([&](const Message&, NodeId) { ++received; });
  a.Send(b.node(), 1, PingMsg{7});
  sim.Run();
  // Force a replay of everything: b NACKs the already-received message.
  b.Send(a.node(), 1, NackMsg{1, 1});
  sim.Run();
  EXPECT_EQ(a.stats().replays_sent, 1);
  EXPECT_EQ(received, 1);
  EXPECT_EQ(b.stats().duplicate_messages, 1);
}

TEST(TransportTest, ReorderingToleratedByReassembly) {
  Simulator sim;
  FabricOptions options;
  options.link.reorder_jitter = Microseconds(400);
  Fabric fabric(&sim, options);
  SlimEndpoint a(&fabric, fabric.AddNode());
  EndpointOptions no_nack;
  no_nack.enable_nack = false;
  SlimEndpoint b(&fabric, fabric.AddNode(), no_nack);
  SetCommand cmd;
  cmd.dst = Rect{0, 0, 100, 100};
  cmd.rgb.assign(100 * 100 * 3, 0x7e);
  int got = 0;
  b.set_handler([&](const Message& m, NodeId) {
    if (std::get<SetCommand>(m.body) == cmd) {
      ++got;
    }
  });
  for (int i = 0; i < 5; ++i) {
    a.Send(b.node(), 1, cmd);
  }
  sim.Run();
  EXPECT_EQ(got, 5);
}

TEST(TransportBatchingTest, SmallMessagesCoalesceIntoOneDatagram) {
  Simulator sim;
  Fabric fabric(&sim, {});
  EndpointOptions batching;
  batching.enable_batching = true;
  SlimEndpoint a(&fabric, fabric.AddNode(), batching);
  SlimEndpoint b(&fabric, fabric.AddNode());
  std::vector<uint64_t> seqs;
  b.set_handler([&](const Message& m, NodeId) { seqs.push_back(m.seq); });
  for (int i = 0; i < 10; ++i) {
    a.Send(b.node(), 3, FillCommand{Rect{i, 0, 5, 5}, kWhite});
  }
  sim.Run();
  ASSERT_EQ(seqs.size(), 10u);
  for (size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i], i + 1);  // in order, nothing lost
  }
  // All ten fills shared one datagram instead of ten.
  EXPECT_EQ(a.stats().batches_sent, 1);
  EXPECT_EQ(a.stats().fragments_sent, 1);
  EXPECT_EQ(a.stats().messages_batched, 10);
}

TEST(TransportBatchingTest, LargeMessageFlushesPendingBatchFirst) {
  // Ordering property: a held FILL must arrive before a later big SET that bypasses the
  // batch, or overlapping display commands would apply out of order.
  Simulator sim;
  Fabric fabric(&sim, {});
  EndpointOptions batching;
  batching.enable_batching = true;
  SlimEndpoint a(&fabric, fabric.AddNode(), batching);
  SlimEndpoint b(&fabric, fabric.AddNode());
  std::vector<MessageType> order;
  b.set_handler([&](const Message& m, NodeId) { order.push_back(TypeOfMessage(m)); });
  a.Send(b.node(), 1, FillCommand{Rect{0, 0, 64, 64}, kWhite});
  SetCommand big;
  big.dst = Rect{0, 0, 64, 64};
  big.rgb.assign(64 * 64 * 3, 1);
  a.Send(b.node(), 1, big);
  sim.Run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], MessageType::kFill);
  EXPECT_EQ(order[1], MessageType::kSet);
}

TEST(TransportBatchingTest, BatchFlushesOnDelayWhenQuiet) {
  Simulator sim;
  Fabric fabric(&sim, {});
  EndpointOptions batching;
  batching.enable_batching = true;
  batching.batch_delay = Milliseconds(5);
  SlimEndpoint a(&fabric, fabric.AddNode(), batching);
  SlimEndpoint b(&fabric, fabric.AddNode());
  SimTime delivered_at = -1;
  b.set_handler([&](const Message&, NodeId) { delivered_at = sim.now(); });
  a.Send(b.node(), 1, KeyEventMsg{65, true});
  sim.Run();
  EXPECT_GE(delivered_at, Milliseconds(5));  // held for the batch window
  EXPECT_LT(delivered_at, Milliseconds(6));
}

TEST(TransportBatchingTest, SavesFramingBytesForTypingTraffic) {
  // The Section 5.4 claim: batching + header compression dramatically shrinks the framing
  // overhead of small-command traffic (typing echoes on a modem link).
  auto wire_bytes_for = [](bool batching_enabled) {
    Simulator sim;
    Fabric fabric(&sim, {});
    EndpointOptions options;
    options.enable_batching = batching_enabled;
    SlimEndpoint a(&fabric, fabric.AddNode(), options);
    SlimEndpoint b(&fabric, fabric.AddNode());
    b.set_handler([](const Message&, NodeId) {});
    for (int burst = 0; burst < 20; ++burst) {
      for (int i = 0; i < 5; ++i) {
        BitmapCommand glyph;
        glyph.dst = Rect{i * 8, 0, 8, 13};
        glyph.bits.assign(13, 0x3c);
        a.Send(b.node(), 1, glyph);
      }
      sim.Run();
    }
    return fabric.uplink_stats(a.node()).bytes_sent;
  };
  const int64_t plain = wire_bytes_for(false);
  const int64_t batched = wire_bytes_for(true);
  // 5 glyphs per burst: 5 x 116 framed bytes plain vs one 293-byte batch datagram (~1.98x).
  EXPECT_LT(batched * 19, plain * 10) << "batching should nearly halve small-command framing";
}

TEST(TransportBatchingTest, BatchedTrafficRecoversFromLossViaNack) {
  Simulator sim;
  FabricOptions lossy;
  lossy.link.loss_probability = 0.1;
  Fabric fabric(&sim, lossy);
  EndpointOptions batching;
  batching.enable_batching = true;
  SlimEndpoint a(&fabric, fabric.AddNode(), batching);
  SlimEndpoint b(&fabric, fabric.AddNode());
  int received = 0;
  b.set_handler([&](const Message&, NodeId) { ++received; });
  std::function<void(int)> send_next = [&](int i) {
    if (i >= 200) {
      return;
    }
    a.Send(b.node(), 1, PingMsg{static_cast<uint64_t>(i)});
    sim.Schedule(Milliseconds(8), [&, i] { send_next(i + 1); });
  };
  send_next(0);
  sim.Run();
  EXPECT_GT(received, 180);
  EXPECT_GT(a.stats().replays_sent, 0);
}

TEST(TransportTest, CorruptDatagramIgnored) {
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimEndpoint a(&fabric, fabric.AddNode());
  SlimEndpoint b(&fabric, fabric.AddNode());
  int received = 0;
  b.set_handler([&](const Message&, NodeId) { ++received; });
  // Unknown magic: never parsed, counted as corrupt at the framing gate.
  fabric.Send(Datagram{a.node(), b.node(), {0xde, 0xad, 0xbe, 0xef}});
  sim.Run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(b.stats().datagrams_corrupted, 1);
  EXPECT_EQ(b.stats().reassembly_failures, 0);
}

TEST(TransportTest, ChecksumRejectsFlippedAndTruncatedBytes) {
  // Capture a genuine fragment datagram, then replay mutated variants of it; every
  // mutation must be caught by the framing checksum and counted, never delivered.
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimEndpoint a(&fabric, fabric.AddNode());
  SlimEndpoint b(&fabric, fabric.AddNode());
  const NodeId tap = fabric.AddNode();
  std::vector<uint8_t> genuine;
  fabric.SetReceiver(tap, [&](Datagram d) { genuine = d.payload; });
  a.Send(tap, 1, KeyEventMsg{7, true});
  sim.Run();
  ASSERT_FALSE(genuine.empty());

  int received = 0;
  b.set_handler([&](const Message&, NodeId) { ++received; });
  for (size_t flip = 1; flip < genuine.size(); ++flip) {
    std::vector<uint8_t> bent = genuine;
    bent[flip] ^= 0x40;
    fabric.Send(Datagram{a.node(), b.node(), std::move(bent)});
  }
  std::vector<uint8_t> chopped(genuine.begin(), genuine.end() - 3);
  fabric.Send(Datagram{a.node(), b.node(), std::move(chopped)});
  sim.Run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(b.stats().datagrams_corrupted, static_cast<int64_t>(genuine.size() - 1) + 1);

  // The unmutated original still parses (same seq namespace, fresh endpoint state).
  fabric.Send(Datagram{a.node(), b.node(), genuine});
  sim.Run();
  EXPECT_EQ(received, 1);
}

TEST(TransportTest, StaleReplayBelowDedupWindowIsStillSuppressed) {
  // Regression: a replayed seq that has aged out of the 1024-entry dedup window must be
  // caught by the eviction floor instead of being applied a second time.
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimEndpoint a(&fabric, fabric.AddNode());
  SlimEndpoint b(&fabric, fabric.AddNode());
  int received = 0;
  b.set_handler([&](const Message&, NodeId) { ++received; });
  a.Send(b.node(), 1, PingMsg{0});
  sim.Run();
  ASSERT_EQ(received, 1);
  // Push seq 1 far below the dedup window.
  for (int i = 0; i < 1600; ++i) {
    a.Send(b.node(), 1, PingMsg{static_cast<uint64_t>(i + 1)});
  }
  sim.Run();
  ASSERT_EQ(received, 1601);
  // Replay seq 1 directly, framed as the single-fragment datagram a sender honoring a
  // stale NACK would emit (a's replay history, 512 deep, no longer holds it).
  const int64_t dupes_before = b.stats().duplicate_messages;
  Message stale;
  stale.session_id = 1;
  stale.seq = 1;
  stale.body = PingMsg{0};
  fabric.Send(Datagram{a.node(), b.node(),
                       FrameFragment(0, 1, stale.seq, SerializeMessage(stale))});
  sim.Run();
  EXPECT_EQ(received, 1601) << "stale replay must not be applied twice";
  EXPECT_EQ(b.stats().duplicate_messages, dupes_before + 1);
}

TEST(TransportTest, PartialReassemblyContextTimesOut) {
  // One fragment of a three-fragment message arrives and the rest never does: the context
  // must be reclaimed on the timeout instead of leaking forever.
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimEndpoint a(&fabric, fabric.AddNode());
  EndpointOptions opts;
  opts.reassembly_timeout = Milliseconds(50);
  SlimEndpoint b(&fabric, fabric.AddNode(), opts);
  int received = 0;
  b.set_handler([&](const Message&, NodeId) { ++received; });
  const std::vector<uint8_t> chunk(100, 0x11);
  fabric.Send(Datagram{a.node(), b.node(), FrameFragment(0, 3, 9, chunk)});
  sim.Run();  // runs the sweep event as well; the queue must drain completely
  EXPECT_EQ(received, 0);
  EXPECT_EQ(b.stats().reassembly_timeouts, 1);
  EXPECT_EQ(sim.pending_events(), 0u) << "no sweep timer may linger once contexts are gone";

  // Fragments of the same message arriving after the timeout start a fresh context; once
  // all three are present the message would still need to parse, so use a real one.
  SlimEndpoint c(&fabric, fabric.AddNode());
  std::vector<Message> delivered;
  b.set_handler([&](const Message& m, NodeId) { delivered.push_back(m); });
  SetCommand cmd;
  cmd.dst = Rect{0, 0, 50, 50};
  cmd.rgb.assign(50 * 50 * 3, 0x3d);
  c.Send(b.node(), 2, cmd);
  sim.Run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(std::get<SetCommand>(delivered[0].body), cmd);
}

TEST(TransportTest, ReassemblyEvictsOldestContextNotMapOrder) {
  // Fill the reassembly table with partial contexts whose map order (keyed by msg_seq)
  // disagrees with their age: seq 100 is oldest but sorts last. Overflow must evict seq 100
  // (oldest by arrival), leaving the low-seq newcomers completable.
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimEndpoint a(&fabric, fabric.AddNode());
  EndpointOptions opts;
  opts.max_reassembly = 4;
  opts.reassembly_timeout = Seconds(10);  // timeouts out of the picture
  SlimEndpoint b(&fabric, fabric.AddNode(), opts);
  int received = 0;
  b.set_handler([&](const Message&, NodeId) { ++received; });

  const std::vector<uint8_t> chunk(100, 0x22);
  auto send_partial = [&](uint64_t seq) {
    fabric.Send(Datagram{a.node(), b.node(), FrameFragment(0, 2, seq, chunk)});
    sim.RunFor(Milliseconds(1));
  };
  send_partial(100);  // oldest by time, last in map order
  send_partial(2);
  send_partial(3);
  send_partial(4);
  // Seq 1: sorts first in the map, so map-order eviction would pick it as the victim the
  // moment its own arrival overflows the table. Send it as two real message halves.
  Message msg;
  msg.session_id = 1;
  msg.seq = 1;
  msg.body = PingMsg{42};
  const std::vector<uint8_t> wire = SerializeMessage(msg);
  const std::span<const uint8_t> wire_span(wire);
  const size_t half = wire.size() / 2;
  fabric.Send(Datagram{a.node(), b.node(), FrameFragment(0, 2, 1, wire_span.subspan(0, half))});
  // Bounded steps, not sim.Run(): draining the whole queue would fast-forward 10 s to the
  // sweep timer and expire the very context under test.
  sim.RunFor(Milliseconds(1));
  fabric.Send(Datagram{a.node(), b.node(), FrameFragment(1, 2, 1, wire_span.subspan(half))});
  sim.RunFor(Milliseconds(1));
  EXPECT_EQ(received, 1) << "the freshest context must not have been the eviction victim";
  EXPECT_EQ(b.stats().reassembly_failures, 1);  // exactly one eviction (seq 100, the oldest)
}

TEST(TransportTest, NackGateBacksOffWhenReplayKeepsFailing) {
  // A NACK whose replay never arrives must be retried on a widening (but bounded) gate,
  // not at the old fixed 5 ms cadence. Deliver seqs 2..20 (seq 1 permanently missing) from
  // a node with no endpoint behind it, so b's NACKs vanish unanswered.
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimEndpoint b(&fabric, fabric.AddNode());
  const NodeId mute = fabric.AddNode();
  b.set_handler([](const Message&, NodeId) {});
  Message msg;
  msg.session_id = 1;
  msg.body = PingMsg{1};
  for (uint64_t seq = 2; seq <= 20; ++seq) {
    msg.seq = seq;
    fabric.Send(Datagram{mute, b.node(), FrameFragment(0, 1, seq, SerializeMessage(msg))});
    sim.RunFor(Milliseconds(10));
  }
  sim.Run();
  // 190 ms of arrivals, each a re-NACK opportunity: the old limiter would send ~19 NACKs;
  // the 5..40 ms exponential gate must settle at its cap and send far fewer.
  EXPECT_GT(b.stats().nack_backoffs, 0);
  EXPECT_GT(b.stats().nacks_sent, 2);
  EXPECT_LT(b.stats().nacks_sent, 12);
}

}  // namespace
}  // namespace slim
