// Tests for the simulated fabric (links, switch, queues) and the SLIM transport
// (fragmentation, reassembly, NACK replay, duplicate suppression).

#include <gtest/gtest.h>

#include "src/net/fabric.h"
#include "src/net/transport.h"
#include "src/sim/simulator.h"

namespace slim {
namespace {

TEST(FabricTest, DeliversDatagramBetweenNodes) {
  Simulator sim;
  Fabric fabric(&sim, {});
  const NodeId a = fabric.AddNode();
  const NodeId b = fabric.AddNode();
  std::vector<uint8_t> received;
  fabric.SetReceiver(b, [&](Datagram d) { received = d.payload; });
  fabric.Send(Datagram{a, b, {1, 2, 3}});
  sim.Run();
  EXPECT_EQ(received, (std::vector<uint8_t>{1, 2, 3}));
}

TEST(FabricTest, LatencyIsSerializationPlusPropagationTwice) {
  // Store-and-forward: host link then switch egress link, each 5 us propagation.
  Simulator sim;
  FabricOptions options;
  options.link.bits_per_second = 100'000'000;
  options.link.propagation = Microseconds(5);
  Fabric fabric(&sim, options);
  const NodeId a = fabric.AddNode();
  const NodeId b = fabric.AddNode();
  SimTime arrival = -1;
  fabric.SetReceiver(b, [&](Datagram) { arrival = sim.now(); });
  const int64_t payload = 1000;
  fabric.Send(Datagram{a, b, std::vector<uint8_t>(payload)});
  sim.Run();
  const SimDuration tx = TransmissionDelay(payload + kDatagramOverheadBytes, 100'000'000);
  EXPECT_EQ(arrival, 2 * tx + 2 * Microseconds(5));
}

TEST(FabricTest, UnknownDestinationCountsAsMisrouted) {
  Simulator sim;
  Fabric fabric(&sim, {});
  const NodeId a = fabric.AddNode();
  fabric.Send(Datagram{a, 99, {1}});
  sim.Run();
  EXPECT_EQ(fabric.datagrams_misrouted(), 1);
}

TEST(FabricTest, SlowLinkDelaysDelivery) {
  Simulator sim;
  Fabric fabric(&sim, {});
  const NodeId fast = fabric.AddNode();
  LinkOptions slow;
  slow.bits_per_second = 1'000'000;  // 1 Mbps home link
  const NodeId home = fabric.AddNode(slow);
  SimTime arrival = -1;
  fabric.SetReceiver(home, [&](Datagram) { arrival = sim.now(); });
  fabric.Send(Datagram{fast, home, std::vector<uint8_t>(1454)});
  sim.Run();
  // The 1 Mbps egress dominates: 1500 B * 8 / 1 Mbps = 12 ms.
  EXPECT_GT(arrival, Milliseconds(12));
  EXPECT_LT(arrival, Milliseconds(13));
}

TEST(FabricTest, QueueOverflowDropsAtSwitchEgress) {
  // Two senders converging on one egress port offer 2x its line rate; the shallow egress
  // queue must overflow while the host uplinks (paced at line rate) never drop.
  Simulator sim;
  FabricOptions options;
  options.link.queue_limit_bytes = 10'000;
  Fabric fabric(&sim, options);
  const NodeId a1 = fabric.AddNode();
  const NodeId a2 = fabric.AddNode();
  const NodeId b = fabric.AddNode();
  int delivered = 0;
  fabric.SetReceiver(b, [&](Datagram) { ++delivered; });
  for (int i = 0; i < 100; ++i) {
    fabric.Send(Datagram{a1, b, std::vector<uint8_t>(1400)});
    fabric.Send(Datagram{a2, b, std::vector<uint8_t>(1400)});
  }
  sim.Run();
  EXPECT_LT(delivered, 200);
  EXPECT_EQ(fabric.downlink_stats(b).datagrams_dropped_queue, 200 - delivered);
  EXPECT_EQ(fabric.uplink_stats(a1).datagrams_dropped_queue, 0);
}

TEST(FabricTest, HostUplinkAbsorbsBursts) {
  // The same burst that overflows a switch egress queue survives the host-side uplink.
  Simulator sim;
  FabricOptions options;
  options.link.queue_limit_bytes = 10'000;
  options.host_queue_bytes = 8 * 1024 * 1024;
  Fabric fabric(&sim, options);
  const NodeId a = fabric.AddNode();
  (void)fabric.AddNode();
  for (int i = 0; i < 100; ++i) {
    fabric.Send(Datagram{a, 1, std::vector<uint8_t>(1400)});
  }
  sim.Run();
  EXPECT_EQ(fabric.uplink_stats(a).datagrams_dropped_queue, 0);
}

TEST(FabricTest, LossInjectionDropsApproximatelyTheConfiguredFraction) {
  Simulator sim;
  FabricOptions options;
  options.link.loss_probability = 0.2;
  Fabric fabric(&sim, options);
  const NodeId a = fabric.AddNode();
  const NodeId b = fabric.AddNode();
  int delivered = 0;
  fabric.SetReceiver(b, [&](Datagram) { ++delivered; });
  std::function<void(int)> send_next = [&](int i) {
    if (i >= 2000) {
      return;
    }
    fabric.Send(Datagram{a, b, {0}});
    sim.Schedule(Microseconds(50), [&, i] { send_next(i + 1); });
  };
  send_next(0);
  sim.Run();
  // Two lossy hops: survival probability 0.64.
  EXPECT_NEAR(delivered / 2000.0, 0.64, 0.05);
}

TEST(TransportTest, SmallMessageRoundTrip) {
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimEndpoint a(&fabric, fabric.AddNode());
  SlimEndpoint b(&fabric, fabric.AddNode());
  std::vector<Message> received;
  b.set_handler([&](const Message& m, NodeId) { received.push_back(m); });
  a.Send(b.node(), 5, KeyEventMsg{42, true});
  sim.Run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].session_id, 5u);
  EXPECT_EQ(std::get<KeyEventMsg>(received[0].body).keycode, 42u);
}

TEST(TransportTest, LargeMessageFragmentsAndReassembles) {
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimEndpoint a(&fabric, fabric.AddNode());
  SlimEndpoint b(&fabric, fabric.AddNode());
  SetCommand cmd;
  cmd.dst = Rect{0, 0, 200, 100};
  cmd.rgb.assign(200 * 100 * 3, 0xab);
  std::vector<Message> received;
  b.set_handler([&](const Message& m, NodeId) { received.push_back(m); });
  a.Send(b.node(), 1, cmd);
  sim.Run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(std::get<SetCommand>(received[0].body), cmd);
  EXPECT_GT(a.stats().fragments_sent, 40);  // 60 KB at ~1.5 KB MTU
}

TEST(TransportTest, SequenceNumbersIncreasePerPeer) {
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimEndpoint a(&fabric, fabric.AddNode());
  SlimEndpoint b(&fabric, fabric.AddNode());
  EXPECT_EQ(a.Send(b.node(), 1, PingMsg{1}), 1u);
  EXPECT_EQ(a.Send(b.node(), 1, PingMsg{2}), 2u);
  EXPECT_EQ(a.Send(b.node(), 1, PingMsg{3}), 3u);
}

TEST(TransportTest, GapTriggersNackAndReplayRecovers) {
  Simulator sim;
  FabricOptions options;
  options.link.loss_probability = 0.15;
  Fabric fabric(&sim, options);
  SlimEndpoint a(&fabric, fabric.AddNode());
  SlimEndpoint b(&fabric, fabric.AddNode());
  int received = 0;
  b.set_handler([&](const Message&, NodeId) { ++received; });
  // Paced sends so each loss creates a detectable gap before the next arrival.
  std::function<void(int)> send_next = [&](int i) {
    if (i >= 300) {
      return;
    }
    a.Send(b.node(), 1, PingMsg{static_cast<uint64_t>(i)});
    sim.Schedule(Milliseconds(2), [&, i] { send_next(i + 1); });
  };
  send_next(0);
  sim.Run();
  EXPECT_GT(b.stats().nacks_sent, 0);
  EXPECT_GT(a.stats().replays_sent, 0);
  // Replay recovers most of the ~28% two-hop loss. Recovery is driven by later arrivals,
  // so losses near the end of the stream (and lost replays of lost NACKs) can stay lost.
  EXPECT_GT(received, 265);
}

TEST(TransportTest, DuplicateDeliveryIsSuppressed) {
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimEndpoint a(&fabric, fabric.AddNode());
  SlimEndpoint b(&fabric, fabric.AddNode());
  int received = 0;
  b.set_handler([&](const Message&, NodeId) { ++received; });
  a.Send(b.node(), 1, PingMsg{7});
  sim.Run();
  // Force a replay of everything: b NACKs the already-received message.
  b.Send(a.node(), 1, NackMsg{1, 1});
  sim.Run();
  EXPECT_EQ(a.stats().replays_sent, 1);
  EXPECT_EQ(received, 1);
  EXPECT_EQ(b.stats().duplicate_messages, 1);
}

TEST(TransportTest, ReorderingToleratedByReassembly) {
  Simulator sim;
  FabricOptions options;
  options.link.reorder_jitter = Microseconds(400);
  Fabric fabric(&sim, options);
  SlimEndpoint a(&fabric, fabric.AddNode());
  EndpointOptions no_nack;
  no_nack.enable_nack = false;
  SlimEndpoint b(&fabric, fabric.AddNode(), no_nack);
  SetCommand cmd;
  cmd.dst = Rect{0, 0, 100, 100};
  cmd.rgb.assign(100 * 100 * 3, 0x7e);
  int got = 0;
  b.set_handler([&](const Message& m, NodeId) {
    if (std::get<SetCommand>(m.body) == cmd) {
      ++got;
    }
  });
  for (int i = 0; i < 5; ++i) {
    a.Send(b.node(), 1, cmd);
  }
  sim.Run();
  EXPECT_EQ(got, 5);
}

TEST(TransportBatchingTest, SmallMessagesCoalesceIntoOneDatagram) {
  Simulator sim;
  Fabric fabric(&sim, {});
  EndpointOptions batching;
  batching.enable_batching = true;
  SlimEndpoint a(&fabric, fabric.AddNode(), batching);
  SlimEndpoint b(&fabric, fabric.AddNode());
  std::vector<uint64_t> seqs;
  b.set_handler([&](const Message& m, NodeId) { seqs.push_back(m.seq); });
  for (int i = 0; i < 10; ++i) {
    a.Send(b.node(), 3, FillCommand{Rect{i, 0, 5, 5}, kWhite});
  }
  sim.Run();
  ASSERT_EQ(seqs.size(), 10u);
  for (size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i], i + 1);  // in order, nothing lost
  }
  // All ten fills shared one datagram instead of ten.
  EXPECT_EQ(a.stats().batches_sent, 1);
  EXPECT_EQ(a.stats().fragments_sent, 1);
  EXPECT_EQ(a.stats().messages_batched, 10);
}

TEST(TransportBatchingTest, LargeMessageFlushesPendingBatchFirst) {
  // Ordering property: a held FILL must arrive before a later big SET that bypasses the
  // batch, or overlapping display commands would apply out of order.
  Simulator sim;
  Fabric fabric(&sim, {});
  EndpointOptions batching;
  batching.enable_batching = true;
  SlimEndpoint a(&fabric, fabric.AddNode(), batching);
  SlimEndpoint b(&fabric, fabric.AddNode());
  std::vector<MessageType> order;
  b.set_handler([&](const Message& m, NodeId) { order.push_back(TypeOfMessage(m)); });
  a.Send(b.node(), 1, FillCommand{Rect{0, 0, 64, 64}, kWhite});
  SetCommand big;
  big.dst = Rect{0, 0, 64, 64};
  big.rgb.assign(64 * 64 * 3, 1);
  a.Send(b.node(), 1, big);
  sim.Run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], MessageType::kFill);
  EXPECT_EQ(order[1], MessageType::kSet);
}

TEST(TransportBatchingTest, BatchFlushesOnDelayWhenQuiet) {
  Simulator sim;
  Fabric fabric(&sim, {});
  EndpointOptions batching;
  batching.enable_batching = true;
  batching.batch_delay = Milliseconds(5);
  SlimEndpoint a(&fabric, fabric.AddNode(), batching);
  SlimEndpoint b(&fabric, fabric.AddNode());
  SimTime delivered_at = -1;
  b.set_handler([&](const Message&, NodeId) { delivered_at = sim.now(); });
  a.Send(b.node(), 1, KeyEventMsg{65, true});
  sim.Run();
  EXPECT_GE(delivered_at, Milliseconds(5));  // held for the batch window
  EXPECT_LT(delivered_at, Milliseconds(6));
}

TEST(TransportBatchingTest, SavesFramingBytesForTypingTraffic) {
  // The Section 5.4 claim: batching + header compression dramatically shrinks the framing
  // overhead of small-command traffic (typing echoes on a modem link).
  auto wire_bytes_for = [](bool batching_enabled) {
    Simulator sim;
    Fabric fabric(&sim, {});
    EndpointOptions options;
    options.enable_batching = batching_enabled;
    SlimEndpoint a(&fabric, fabric.AddNode(), options);
    SlimEndpoint b(&fabric, fabric.AddNode());
    b.set_handler([](const Message&, NodeId) {});
    for (int burst = 0; burst < 20; ++burst) {
      for (int i = 0; i < 5; ++i) {
        BitmapCommand glyph;
        glyph.dst = Rect{i * 8, 0, 8, 13};
        glyph.bits.assign(13, 0x3c);
        a.Send(b.node(), 1, glyph);
      }
      sim.Run();
    }
    return fabric.uplink_stats(a.node()).bytes_sent;
  };
  const int64_t plain = wire_bytes_for(false);
  const int64_t batched = wire_bytes_for(true);
  // 5 glyphs per burst: 5 x 116 framed bytes plain vs one 293-byte batch datagram (~1.98x).
  EXPECT_LT(batched * 19, plain * 10) << "batching should nearly halve small-command framing";
}

TEST(TransportBatchingTest, BatchedTrafficRecoversFromLossViaNack) {
  Simulator sim;
  FabricOptions lossy;
  lossy.link.loss_probability = 0.1;
  Fabric fabric(&sim, lossy);
  EndpointOptions batching;
  batching.enable_batching = true;
  SlimEndpoint a(&fabric, fabric.AddNode(), batching);
  SlimEndpoint b(&fabric, fabric.AddNode());
  int received = 0;
  b.set_handler([&](const Message&, NodeId) { ++received; });
  std::function<void(int)> send_next = [&](int i) {
    if (i >= 200) {
      return;
    }
    a.Send(b.node(), 1, PingMsg{static_cast<uint64_t>(i)});
    sim.Schedule(Milliseconds(8), [&, i] { send_next(i + 1); });
  };
  send_next(0);
  sim.Run();
  EXPECT_GT(received, 180);
  EXPECT_GT(a.stats().replays_sent, 0);
}

TEST(TransportTest, CorruptDatagramIgnored) {
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimEndpoint a(&fabric, fabric.AddNode());
  SlimEndpoint b(&fabric, fabric.AddNode());
  int received = 0;
  b.set_handler([&](const Message&, NodeId) { ++received; });
  fabric.Send(Datagram{a.node(), b.node(), {0xde, 0xad, 0xbe, 0xef}});
  sim.Run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(b.stats().reassembly_failures, 1);
}

}  // namespace
}  // namespace slim
