// Tests for the video sources, media pipeline, raycast engine and YUV translation layer.

#include <gtest/gtest.h>

#include <set>

#include "src/console/console.h"
#include "src/net/fabric.h"
#include "src/quake/raycaster.h"
#include "src/server/slim_server.h"
#include "src/video/pipeline.h"
#include "src/video/video_source.h"

namespace slim {
namespace {

TEST(VideoSourceTest, FramesAreDeterministicAndMoving) {
  SyntheticVideoSource source(64, 48, 42);
  const YuvImage a0 = source.Frame(0);
  const YuvImage a0_again = source.Frame(0);
  const YuvImage a5 = source.Frame(5);
  int same = 0;
  int diff = 0;
  for (int32_t y = 0; y < 48; ++y) {
    for (int32_t x = 0; x < 64; ++x) {
      same += a0.At(x, y) == a0_again.At(x, y) ? 1 : 0;
      diff += a0.At(x, y) == a5.At(x, y) ? 0 : 1;
    }
  }
  EXPECT_EQ(same, 64 * 48) << "same frame index must reproduce exactly";
  EXPECT_GT(diff, 64 * 48 / 2) << "distant frames must differ (motion)";
}

TEST(VideoSourceTest, FieldsAreHalfHeightAndInterlaced) {
  SyntheticVideoSource source(64, 48, 7);
  const YuvImage even = source.Field(3, false);
  const YuvImage odd = source.Field(3, true);
  EXPECT_EQ(even.height(), 24);
  EXPECT_EQ(odd.height(), 24);
  const YuvImage full = source.Frame(3);
  EXPECT_EQ(even.At(10, 5), full.At(10, 10));
  EXPECT_EQ(odd.At(10, 5), full.At(10, 11));
}

TEST(VideoCpuModelTest, CostsScaleWithWork) {
  const VideoCpuModel model;
  EXPECT_GT(model.MpegFrameCost(720 * 480, 720 * 480), model.MpegFrameCost(720 * 480, 720 * 240));
  EXPECT_GT(model.JpegFieldCost(640 * 240), model.JpegFieldCost(320 * 240));
  EXPECT_GT(model.SendCost(100000), model.SendCost(1000));
  // Calibration sanity: one full MPEG frame costs ~45 ms, capping the server at ~20 Hz.
  const SimDuration frame = model.MpegFrameCost(720 * 480, 720 * 480) +
                            model.SendCost(720 * 480 * 6 / 8);
  EXPECT_GT(frame, Milliseconds(40));
  EXPECT_LT(frame, Milliseconds(55));
}

class PipelineFixture : public ::testing::Test {
 protected:
  PipelineFixture()
      : fabric_(&sim_, {}),
        server_(&sim_, &fabric_, ServerOptions{}),
        console_(&sim_, &fabric_, ConsoleOptions{}) {
    const uint64_t card = server_.auth().IssueCard(1);
    session_ = &server_.CreateSession(card);
    console_.InsertCard(server_.node(), card);
    sim_.Run();
  }

  Simulator sim_;
  Fabric fabric_;
  SlimServer server_;
  Console console_;
  ServerSession* session_ = nullptr;
};

TEST_F(PipelineFixture, UnconstrainedPipelineHitsTargetFps) {
  SyntheticVideoSource source(160, 120, 3);
  MediaPipelineOptions options;
  options.target_fps = 24.0;
  options.depth = CscsDepth::k12;
  options.dst = Rect{0, 0, 160, 120};
  options.run_for = Seconds(5);
  MediaPipeline pipeline(&sim_, session_, options,
                         [&](int index, SimDuration* cost) {
                           *cost = Milliseconds(2);  // trivially cheap production
                           return source.Frame(index);
                         });
  pipeline.Start();
  sim_.RunUntil(Seconds(5));
  EXPECT_NEAR(pipeline.AchievedFps(), 24.0, 1.0);
  EXPECT_EQ(pipeline.frames_dropped(), 0);
}

TEST_F(PipelineFixture, CpuBoundPipelineDegradesToProductionRate) {
  SyntheticVideoSource source(160, 120, 3);
  MediaPipelineOptions options;
  options.target_fps = 30.0;
  options.depth = CscsDepth::k12;
  options.dst = Rect{0, 0, 160, 120};
  options.run_for = Seconds(5);
  MediaPipeline pipeline(&sim_, session_, options,
                         [&](int index, SimDuration* cost) {
                           *cost = Milliseconds(50);  // ~20 Hz server ceiling
                           return source.Frame(index);
                         });
  pipeline.Start();
  sim_.RunUntil(Seconds(5));
  // Production-limited: ~1/(50 ms + send cost), NOT quantized down to a 33 ms tick grid.
  EXPECT_NEAR(pipeline.AchievedFps(), 19.3, 1.0);
  EXPECT_GT(pipeline.frames_dropped(), 0);
}

TEST_F(PipelineFixture, FramesReachConsolePixelExact) {
  SyntheticVideoSource source(80, 60, 9);
  MediaPipelineOptions options;
  options.target_fps = 10.0;
  options.depth = CscsDepth::k16;
  options.dst = Rect{20, 20, 80, 60};
  options.run_for = Seconds(1);
  MediaPipeline pipeline(&sim_, session_, options,
                         [&](int index, SimDuration* cost) {
                           *cost = Milliseconds(1);
                           return source.Frame(index);
                         });
  pipeline.Start();
  sim_.Run();
  EXPECT_GT(pipeline.frames_sent(), 5);
  EXPECT_EQ(session_->framebuffer().ContentHash(), console_.framebuffer().ContentHash());
  EXPECT_GT(console_.cscs_stream_hits(), 0) << "steady stream must hit the warm path";
}

TEST(RaycastTest, FrameHasFloorCeilingAndWalls) {
  RaycastEngine engine(160, 120);
  const Camera cam = engine.DemoCamera(0);
  EXPECT_FALSE(engine.IsWall(cam.x, cam.y)) << "demo path must stay out of walls";
  const auto frame = engine.RenderFrame(cam);
  ASSERT_EQ(frame.size(), 160u * 120u);
  std::set<uint8_t> indices(frame.begin(), frame.end());
  EXPECT_GT(indices.size(), 10u) << "scene should use many palette entries";
  // Ceiling base colors occupy palette entries 0..7, floor 8..15.
  EXPECT_LT(frame[0], 8) << "top-left pixel should be ceiling";
  EXPECT_GE(frame[160 * 119], 8);
  EXPECT_LT(frame[160 * 119], 16);
}

TEST(RaycastTest, DeterministicAcrossInstances) {
  RaycastEngine a(64, 48, 99);
  RaycastEngine b(64, 48, 99);
  EXPECT_EQ(a.RenderFrame(a.DemoCamera(10)), b.RenderFrame(b.DemoCamera(10)));
  EXPECT_EQ(a.palette(), b.palette());
}

TEST(RaycastTest, CameraMotionChangesFrame) {
  RaycastEngine engine(64, 48);
  const auto f0 = engine.RenderFrame(engine.DemoCamera(0));
  const auto f30 = engine.RenderFrame(engine.DemoCamera(30));
  EXPECT_NE(f0, f30);
}

TEST(RaycastTest, DemoPathStaysClearForThousandsOfFrames) {
  RaycastEngine engine(32, 24);
  for (int frame = 0; frame < 3000; frame += 7) {
    const Camera cam = engine.DemoCamera(frame);
    ASSERT_FALSE(engine.IsWall(cam.x, cam.y)) << "frame " << frame;
  }
}

TEST(RaycastTest, SceneComplexityBounded) {
  RaycastEngine engine(64, 48);
  for (int frame = 0; frame < 500; frame += 11) {
    const double c = engine.SceneComplexity(engine.DemoCamera(frame));
    EXPECT_GE(c, 0.5);
    EXPECT_LE(c, 1.5);
  }
}

TEST(TranslationTest, LutMatchesDirectConversion) {
  RaycastEngine engine(32, 24);
  const YuvTranslationLayer translation(engine.palette());
  const auto frame = engine.RenderFrame(engine.DemoCamera(5));
  const YuvImage yuv = translation.Translate(frame, 32, 24);
  for (int32_t y = 0; y < 24; ++y) {
    for (int32_t x = 0; x < 32; ++x) {
      const Yuv expected = RgbToYuv(engine.palette()[frame[static_cast<size_t>(y) * 32 + x]]);
      EXPECT_EQ(yuv.At(x, y), expected);
    }
  }
}

TEST(TranslationTest, FiveBitPayloadSizeMatchesPaper) {
  // 640x480 at 5 bpp = 192,000 bytes per frame; at 20 Hz that is ~30 Mbps, the regime the
  // paper reports for Quake (22-26 Mbps at 18-21 Hz).
  EXPECT_EQ(CscsPayloadBytes(640, 480, CscsDepth::k5), 192000u);
}

}  // namespace
}  // namespace slim
