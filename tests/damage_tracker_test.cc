// Properties of the shadow-frame damage pipeline (src/codec/damage_tracker.h):
//   (a) refined damage stays within the reported damage and covers every pixel that
//       differs between the shadow and the current frame,
//   (b) applying the scroll-salvage COPYs plus the commands encoded from the refined
//       region to a replica of the previous frame reproduces the new frame bit-exactly,
//   (c) the hash-indexed scroll detector agrees with the probe-based reference detector
//       on randomized scroll / noise / ambiguous inputs,
// plus the session-level contracts: a RepaintAll of an unchanged frame transmits nothing,
// and a tracker-enabled session transmits an identical stream for every encode thread
// count (the EncoderPool determinism contract survives refinement).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "src/apps/content.h"
#include "src/codec/damage_tracker.h"
#include "src/codec/decoder.h"
#include "src/codec/encoder.h"
#include "src/console/console.h"
#include "src/net/fabric.h"
#include "src/server/slim_server.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace slim {
namespace {

// Paints a randomized mix of fills, bicolor patches, and photo blocks and returns the
// damage the mutations covered.
Region MutateRandomly(Framebuffer* fb, Rng* rng, int mutations) {
  Region damage;
  for (int i = 0; i < mutations; ++i) {
    const Rect r{static_cast<int32_t>(rng->NextBelow(static_cast<uint64_t>(fb->width()))),
                 static_cast<int32_t>(rng->NextBelow(static_cast<uint64_t>(fb->height()))),
                 2 + static_cast<int32_t>(rng->NextBelow(40)),
                 2 + static_cast<int32_t>(rng->NextBelow(30))};
    const Rect clipped = Intersect(r, fb->bounds());
    if (clipped.empty()) {
      continue;
    }
    switch (rng->NextBelow(3)) {
      case 0:
        fb->Fill(clipped, static_cast<Pixel>(rng->NextU64() & 0xffffff));
        break;
      case 1:
        for (int32_t y = clipped.y; y < clipped.bottom(); ++y) {
          for (int32_t x = clipped.x; x < clipped.right(); ++x) {
            fb->PutPixel(x, y, ((x + y) & 1) ? kWhite : kBlack);
          }
        }
        break;
      default:
        fb->SetPixels(clipped, MakePhotoBlock(rng, clipped.w, clipped.h));
        break;
    }
    damage.Add(clipped);
  }
  return damage;
}

class RefineProperty : public ::testing::TestWithParam<int> {};

// Property (a): refined ⊆ damage, refined covers every differing pixel inside damage, and
// the shadow is brought up to date over the whole damage region (so an immediate repeat
// refines to nothing).
TEST_P(RefineProperty, CoversEveryDifferingPixelWithinDamage) {
  Rng rng(1000 + static_cast<uint64_t>(GetParam()));
  const int32_t w = 120, h = 90;
  Framebuffer before(w, h);
  before.SetPixels(before.bounds(), MakePhotoBlock(&rng, w, h));
  DamageTracker tracker(w, h);
  tracker.SyncRect(before, before.bounds());

  Framebuffer after = before;
  MutateRandomly(&after, &rng, 5);

  // Randomized damage: sometimes full-frame (over-broad), sometimes partial rects that
  // may miss some of the mutations — refinement only answers for pixels inside damage.
  Region damage;
  if (rng.NextBool(0.3)) {
    damage.Add(after.bounds());
  } else {
    for (int i = 0; i < 4; ++i) {
      const Rect r{static_cast<int32_t>(rng.NextBelow(w)),
                   static_cast<int32_t>(rng.NextBelow(h)),
                   1 + static_cast<int32_t>(rng.NextBelow(80)),
                   1 + static_cast<int32_t>(rng.NextBelow(60))};
      damage.Add(Intersect(r, after.bounds()));
    }
  }

  const Region refined = tracker.Refine(after, damage);

  for (const Rect& r : refined.rects()) {
    for (int32_t y = r.y; y < r.bottom(); ++y) {
      for (int32_t x = r.x; x < r.right(); ++x) {
        ASSERT_TRUE(damage.Contains(Point{x, y}))
            << "refined pixel (" << x << "," << y << ") outside the damage region";
      }
    }
  }
  for (int32_t y = 0; y < h; ++y) {
    for (int32_t x = 0; x < w; ++x) {
      if (!damage.Contains(Point{x, y})) {
        continue;
      }
      if (before.GetPixel(x, y) != after.GetPixel(x, y)) {
        ASSERT_TRUE(refined.Contains(Point{x, y}))
            << "differing pixel (" << x << "," << y << ") missing from refined damage";
      }
      // Shadow is synced over all of damage, changed or not.
      ASSERT_EQ(tracker.shadow().GetPixel(x, y), after.GetPixel(x, y));
    }
  }
  EXPECT_LE(refined.area(), damage.area());
  EXPECT_TRUE(tracker.Refine(after, damage).empty())
      << "repeat refinement of an unchanged frame must be empty";
}

// Property (b): previous frame + scroll COPYs + commands encoded from the refined region
// == new frame, bit-exactly. This is the wire-level correctness of the whole pipeline:
// whatever the scroll detector does or does not find, the residual refinement patches the
// replica to equality.
TEST_P(RefineProperty, SalvagedScrollPlusResidualRoundTrips) {
  Rng rng(2000 + static_cast<uint64_t>(GetParam()));
  const int32_t w = 140, h = 120;
  Framebuffer before(w, h);
  // Unique-ish rows so scrolls are unambiguous in some seeds; photo content in others.
  before.SetPixels(before.bounds(), MakePhotoBlock(&rng, w, h));
  DamageTracker tracker(w, h);
  tracker.SyncRect(before, before.bounds());

  // A vertical scroll of the whole frame (GetPixel reads black outside bounds, which is
  // also what the exposed strip shows until the workload repaints it)...
  const int32_t dy = static_cast<int32_t>(rng.NextInRange(-20, 20));
  Framebuffer after(w, h);
  for (int32_t y = 0; y < h; ++y) {
    for (int32_t x = 0; x < w; ++x) {
      after.PutPixel(x, y, before.GetPixel(x, y - dy));
    }
  }
  // ...plus fresh content in the exposed strip and sprinkled noise, so the residual is
  // nonempty whether or not the detector confirms the scroll.
  if (dy < 0) {
    after.SetPixels(Rect{0, h + dy, w, -dy}, MakePhotoBlock(&rng, w, -dy));
  } else if (dy > 0) {
    after.SetPixels(Rect{0, 0, w, dy}, MakePhotoBlock(&rng, w, dy));
  }
  for (int i = 0; i < 5; ++i) {
    after.PutPixel(static_cast<int32_t>(rng.NextBelow(w)),
                   static_cast<int32_t>(rng.NextBelow(h)),
                   static_cast<Pixel>(rng.NextU64() & 0xffffff));
  }

  std::vector<DisplayCommand> scroll_cmds;
  const Region refined =
      tracker.Refine(after, Region(after.bounds()), /*scroll_max_shift=*/32, &scroll_cmds);
  EXPECT_LE(scroll_cmds.size(), 1u);

  Framebuffer replica = before;
  for (const DisplayCommand& cmd : scroll_cmds) {
    ASSERT_TRUE(ValidateCommand(cmd));
    ASSERT_TRUE(ApplyCommand(cmd, &replica));
  }
  const Encoder encoder;
  for (const DisplayCommand& cmd : encoder.EncodeDamage(after, refined)) {
    ASSERT_TRUE(ValidateCommand(cmd));
    ASSERT_TRUE(ApplyCommand(cmd, &replica));
  }
  EXPECT_EQ(replica.ContentHash(), after.ContentHash()) << "dy=" << dy;
  EXPECT_EQ(tracker.shadow().ContentHash(), after.ContentHash());
}

// Property (c): the hash-indexed detector returns exactly what the probe-based reference
// returns, across clean scrolls, scroll+noise, pure noise, ambiguous uniform fills, and
// periodic (duplicate-row) content, for varied rects and shift limits.
TEST_P(RefineProperty, HashScrollDetectorAgreesWithProbeReference) {
  Rng rng(3000 + static_cast<uint64_t>(GetParam()));
  const int32_t w = 100, h = 80;
  Framebuffer before(w, h);
  const int scenario = GetParam() % 5;
  switch (scenario) {
    case 0:  // unique photo rows: unambiguous
    case 1:
      before.SetPixels(before.bounds(), MakePhotoBlock(&rng, w, h));
      break;
    case 2:  // uniform: every shift "matches"; both detectors must pick the same one
      before.Fill(before.bounds(), MakePixel(40, 40, 40));
      break;
    case 3:  // periodic rows: duplicate row hashes, multiple plausible shifts
      for (int32_t y = 0; y < h; ++y) {
        before.Fill(Rect{0, y, w, 1}, (y % 7 < 3) ? kWhite : MakePixel(0, 0, 128));
      }
      break;
    default:  // bicolor texture
      for (int32_t y = 0; y < h; ++y) {
        for (int32_t x = 0; x < w; ++x) {
          before.PutPixel(x, y, (((x / 3) + y) & 1) ? kWhite : kBlack);
        }
      }
      break;
  }

  const int32_t true_dy = static_cast<int32_t>(rng.NextInRange(-24, 24));
  Framebuffer after(w, h);
  for (int32_t y = 0; y < h; ++y) {
    for (int32_t x = 0; x < w; ++x) {
      after.PutPixel(x, y, before.GetPixel(x, y - true_dy));
    }
  }
  const int noise = static_cast<int>(rng.NextBelow(3)) * static_cast<int>(rng.NextBelow(8));
  for (int i = 0; i < noise; ++i) {
    after.PutPixel(static_cast<int32_t>(rng.NextBelow(w)),
                   static_cast<int32_t>(rng.NextBelow(h)),
                   static_cast<Pixel>(rng.NextU64()));
  }

  const Rect rects[] = {
      after.bounds(),
      Rect{7, 5, 64, 48},
      Rect{0, 10, w, 20},   // wide and short
      Rect{30, 0, 6, h},    // too narrow for detection
      Rect{10, 10, 40, 6},  // too short
      Rect{-8, -8, w, h},   // partially out of bounds
      Rect{static_cast<int32_t>(rng.NextBelow(w / 2)),
           static_cast<int32_t>(rng.NextBelow(h / 2)),
           8 + static_cast<int32_t>(rng.NextBelow(w / 2)),
           8 + static_cast<int32_t>(rng.NextBelow(h / 2))},
  };
  const int32_t shifts[] = {0, 1, 5, 24, h + 3};
  for (const Rect& rect : rects) {
    for (const int32_t max_shift : shifts) {
      const int32_t hash_dy = DetectVerticalScroll(before, after, rect, max_shift);
      const int32_t probe_dy = DetectVerticalScrollProbe(before, after, rect, max_shift);
      ASSERT_EQ(hash_dy, probe_dy)
          << "scenario=" << scenario << " true_dy=" << true_dy << " noise=" << noise
          << " rect=" << rect.ToString() << " max_shift=" << max_shift;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Randomized, RefineProperty, ::testing::Range(0, 20));

TEST(DamageTrackerTest, InvalidationPassesDamageThroughUntilFullFrameFlush) {
  const int32_t w = 64, h = 48;
  Framebuffer fb(w, h, MakePixel(200, 180, 60));
  DamageTracker tracker(w, h);
  tracker.SyncRect(fb, fb.bounds());
  // In sync: a full-frame refine is empty.
  EXPECT_TRUE(tracker.Refine(fb, Region(fb.bounds())).empty());

  tracker.Invalidate();
  EXPECT_FALSE(tracker.valid());
  // While invalid, even unchanged partial damage passes through verbatim...
  const Region partial(Rect{4, 4, 16, 16});
  EXPECT_EQ(tracker.Refine(fb, partial).area(), partial.area());
  EXPECT_FALSE(tracker.valid());
  // ...until a full-frame flush revalidates, after which refinement resumes.
  EXPECT_EQ(tracker.Refine(fb, Region(fb.bounds())).area(), fb.bounds().area());
  EXPECT_TRUE(tracker.valid());
  EXPECT_TRUE(tracker.Refine(fb, Region(fb.bounds())).empty());
}

TEST(DamageTrackerTest, EnvOverrideParsesLikeTheOtherKnobs) {
  ASSERT_EQ(setenv("SLIM_DAMAGE_TRACKER", "0", 1), 0);
  EXPECT_FALSE(DamageTrackerFromEnv(true));
  ASSERT_EQ(setenv("SLIM_DAMAGE_TRACKER", "1", 1), 0);
  EXPECT_TRUE(DamageTrackerFromEnv(false));
  ASSERT_EQ(setenv("SLIM_DAMAGE_TRACKER", "banana", 1), 0);
  EXPECT_TRUE(DamageTrackerFromEnv(true));   // garbage: keep fallback
  EXPECT_FALSE(DamageTrackerFromEnv(false));
  ASSERT_EQ(unsetenv("SLIM_DAMAGE_TRACKER"), 0);
  EXPECT_TRUE(DamageTrackerFromEnv(true));
}

// --- Session-level contracts ---

struct SessionRun {
  uint64_t console_hash = 0;
  uint64_t server_hash = 0;
  int64_t commands = 0;
  int64_t bytes = 0;
  EncodeStats stats[6] = {};
};

// Drives a session through a hint-less scroll workload: every frame the full screen is
// PutImage'd (over-broad damage), with the content scrolled up by one 12-row text line
// and a fresh line painted at the bottom — exactly the shape the scroll salvage exists
// for. Returns the transmitted-stream fingerprint.
SessionRun RunScrollWorkload(int threads, bool tracker) {
  Simulator sim;
  Fabric fabric(&sim, {});
  ServerOptions options;
  options.session_width = 320;
  options.session_height = 240;
  options.encoder.threads = threads;
  options.encoder.damage_tracker = tracker;
  SlimServer server(&sim, &fabric, options);
  ConsoleOptions copts;
  copts.width = options.session_width;  // console hash comparable to the session's
  copts.height = options.session_height;
  Console console(&sim, &fabric, copts);
  const uint64_t card = server.auth().IssueCard(7);
  ServerSession& session = server.CreateSession(card);
  console.InsertCard(server.node(), card);
  sim.Run();

  const int32_t w = 320, h = 240, line = 12;
  Framebuffer content(w, h);
  Rng rng(777);
  const auto paint_line = [&](int32_t y0) {
    // A distinct bicolor "text line" per call; rows are unique across the screen.
    const Pixel fg = static_cast<Pixel>(rng.NextU64() & 0xffffff);
    for (int32_t y = y0; y < y0 + line && y < h; ++y) {
      for (int32_t x = 0; x < w; ++x) {
        content.PutPixel(x, y, (((x * 7 + y * 13) % 11) < 4) ? fg : kBlack);
      }
    }
  };
  for (int32_t y = 0; y < h; y += line) {
    paint_line(y);
  }
  std::vector<Pixel> pixels;
  for (int frame = 0; frame < 12; ++frame) {
    content.ReadPixels(content.bounds(), &pixels);
    ServerSession& s = session;
    s.PutImage(content.bounds(), pixels);
    s.Flush();
    sim.Run();
    content.CopyRect(0, line, Rect{0, 0, w, h - line});  // scroll up one line
    paint_line(h - line);
  }

  SessionRun run;
  run.console_hash = console.framebuffer().ContentHash();
  run.server_hash = session.framebuffer().ContentHash();
  run.commands = session.commands_sent();
  run.bytes = session.bytes_sent();
  std::copy(session.encode_stats(), session.encode_stats() + 6, run.stats);
  return run;
}

// The RepaintAll satellite: with the tracker on, repainting an unchanged frame transmits
// zero commands, while ForceRepaintAll (the loss-recovery path) still retransmits fully.
TEST(DamageTrackerSessionTest, RepaintAllOfUnchangedFrameTransmitsNothing) {
  Simulator sim;
  Fabric fabric(&sim, {});
  ServerOptions options;
  options.session_width = 200;
  options.session_height = 160;
  SlimServer server(&sim, &fabric, options);
  ASSERT_TRUE(server.options().encoder.damage_tracker);  // default on
  ConsoleOptions copts;
  copts.width = options.session_width;
  copts.height = options.session_height;
  Console console(&sim, &fabric, copts);
  const uint64_t card = server.auth().IssueCard(3);
  ServerSession& session = server.CreateSession(card);
  console.InsertCard(server.node(), card);
  sim.Run();

  Rng rng(42);
  session.PutImage(Rect{10, 10, 120, 90}, MakePhotoBlock(&rng, 120, 90));
  session.Flush();
  sim.Run();
  const int64_t sent = session.commands_sent();
  ASSERT_GT(sent, 0);

  session.RepaintAll();
  session.Flush();
  sim.Run();
  EXPECT_EQ(session.commands_sent(), sent)
      << "refined repaint of an unchanged frame must transmit nothing";

  session.ForceRepaintAll();
  session.Flush();
  sim.Run();
  EXPECT_GT(session.commands_sent(), sent);
  EXPECT_EQ(console.framebuffer().ContentHash(), session.framebuffer().ContentHash());
}

// Tracker + EncoderPool: the transmitted stream must stay identical for every thread
// count (refinement runs before the pool fan-out and is deterministic), and the salvage
// must actually fire on the scroll workload — COPY commands on the wire despite the
// workload never calling CopyArea.
TEST(DamageTrackerSessionTest, ScrollWorkloadStreamsAgreeAcrossThreadCounts) {
  const SessionRun serial = RunScrollWorkload(/*threads=*/1, /*tracker=*/true);
  EXPECT_EQ(serial.console_hash, serial.server_hash);
  EXPECT_GT(serial.stats[static_cast<size_t>(CommandType::kCopy)].commands, 0)
      << "scroll salvage never fired on a pure scroll workload";
  for (const int threads : {2, 4, 8}) {
    const SessionRun threaded = RunScrollWorkload(threads, /*tracker=*/true);
    EXPECT_EQ(threaded.console_hash, serial.console_hash) << "threads=" << threads;
    EXPECT_EQ(threaded.commands, serial.commands) << "threads=" << threads;
    EXPECT_EQ(threaded.bytes, serial.bytes) << "threads=" << threads;
    for (int t = 0; t < 6; ++t) {
      EXPECT_EQ(threaded.stats[t], serial.stats[t])
          << "threads=" << threads << " type " << t;
    }
  }
}

// Ablation correctness: with the tracker off the stream is bigger but the console must
// converge to the same pixels.
TEST(DamageTrackerSessionTest, TrackerOffProducesSamePixelsWithMoreBytes) {
  const SessionRun on = RunScrollWorkload(/*threads=*/1, /*tracker=*/true);
  const SessionRun off = RunScrollWorkload(/*threads=*/1, /*tracker=*/false);
  EXPECT_EQ(on.console_hash, off.console_hash);
  EXPECT_LT(on.bytes, off.bytes)
      << "refinement + salvage should shrink the scroll workload's wire traffic";
}

}  // namespace
}  // namespace slim
