// Parity properties of the SIMD kernel layer (src/codec/kernels/): every compiled-in
// tier must be bit-identical to the scalar reference on every input — the invariant the
// whole dispatch design rests on (kernels.h). The fuzz matrix covers widths 1..257,
// unaligned row offsets (so vector loads straddle cache lines and nothing assumes
// 32-byte alignment), degenerate empty/1px spans, and adversarial content (uniform,
// bicolor, third-color planted at every interesting position, pure noise).
//
// The suite also proves the end-to-end consequence: the damage-tracker + encoder
// pipeline emits an IDENTICAL command stream under every tier, so wire output does not
// depend on the host CPU or SLIM_KERNELS. ctest re-runs this binary with each tier
// forced (kernels_test_scalar / _sse2 / _avx2), skipping when the CPU lacks the ISA.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iterator>
#include <string>
#include <vector>

#include "src/codec/damage_tracker.h"
#include "src/codec/encoder.h"
#include "src/codec/kernels/kernels.h"
#include "src/codec/row_hash.h"
#include "src/color/yuv.h"
#include "src/util/rng.h"

namespace slim {
namespace {

// Scalar first, then every other tier this build + CPU can execute.
std::vector<const KernelOps*> AllTiers() {
  std::vector<const KernelOps*> tiers{KernelsForTier(KernelTier::kScalar)};
  for (const KernelTier tier :
       {KernelTier::kSse2, KernelTier::kAvx2, KernelTier::kNeon}) {
    if (const KernelOps* ops = KernelsForTier(tier)) {
      tiers.push_back(ops);
    }
  }
  // The NEON stub's bodies are scalar forwards, so the table runs on any host even when
  // dispatch gates it out of KernelsForTier (non-ARM builds). Fold it into the matrix so
  // the fallback table is exercised by every CI run, not only AArch64 ones.
  if (KernelsForTier(KernelTier::kNeon) == nullptr) {
    tiers.push_back(GetNeonKernelsForTest());
  }
  return tiers;
}

// The fuzz width sweep: every width in [0, 257] at several unaligned pixel offsets.
constexpr int32_t kMaxWidth = 257;
constexpr size_t kOffsets[] = {0, 1, 2, 3, 5, 7};

// A buffer with room for any width at any offset. Sized exactly so that a vector tail
// that over-reads past width+offset is an out-of-bounds access ASan can see.
std::vector<Pixel> RandomPixels(Rng* rng, size_t palette = 0) {
  std::vector<Pixel> data(kMaxWidth + 16);
  for (Pixel& p : data) {
    p = palette == 0 ? static_cast<Pixel>(rng->NextU64() & 0xffffff)
                     : static_cast<Pixel>(rng->NextBelow(palette) * 0x123457);
  }
  return data;
}

TEST(KernelsTest, TierNamesRoundTrip) {
  for (const KernelTier tier : {KernelTier::kScalar, KernelTier::kSse2,
                                KernelTier::kAvx2, KernelTier::kNeon}) {
    const auto parsed = KernelTierFromName(KernelTierName(tier));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, tier);
  }
  EXPECT_EQ(KernelTierFromName("AVX2"), KernelTier::kAvx2);  // case-insensitive
  EXPECT_FALSE(KernelTierFromName("avx512").has_value());
  EXPECT_FALSE(KernelTierFromName("").has_value());
}

TEST(KernelsTest, ScalarTierAlwaysAvailable) {
  ASSERT_NE(KernelsForTier(KernelTier::kScalar), nullptr);
  EXPECT_EQ(KernelsForTier(KernelTier::kScalar)->tier, KernelTier::kScalar);
}

// The NEON stub table must be installable on ANY host: its bodies forward to scalar, so
// only the dispatch gate (GetNeonKernels) is ISA-dependent. This is what lets the parity
// matrix below cover the ARM fallback path on x86 CI instead of leaving it dead code.
TEST(KernelsTest, NeonStubInstallsViaScopedOverride) {
  const KernelOps* neon = GetNeonKernelsForTest();
  ASSERT_NE(neon, nullptr);
  EXPECT_EQ(neon->tier, KernelTier::kNeon);
  ScopedKernelsForTest forced(neon);
  EXPECT_EQ(Kernels().tier, KernelTier::kNeon);
}

// When ctest forces a tier via SLIM_KERNELS, dispatch must have landed on it — that is
// what makes the tier-forced suite runs mean something. Skips (rather than fails) when
// this machine cannot execute the requested ISA.
TEST(KernelsTest, DispatchHonorsForcedTier) {
  const char* forced = std::getenv("SLIM_KERNELS");
  if (forced == nullptr || *forced == '\0') {
    GTEST_SKIP() << "SLIM_KERNELS not set";
  }
  const auto tier = KernelTierFromName(forced);
  ASSERT_TRUE(tier.has_value()) << "unparseable SLIM_KERNELS: " << forced;
  if (KernelsForTier(*tier) == nullptr) {
    GTEST_SKIP() << "CPU cannot execute tier " << forced;
  }
  EXPECT_EQ(Kernels().tier, *tier);
}

TEST(KernelsTest, RowHashParityFuzz) {
  Rng rng(0xae01);
  const KernelOps* scalar = KernelsForTier(KernelTier::kScalar);
  for (int round = 0; round < 4; ++round) {
    const std::vector<Pixel> data = RandomPixels(&rng, round == 0 ? 0 : 3);
    for (const size_t offset : kOffsets) {
      for (int32_t w = 0; w <= kMaxWidth; ++w) {
        const uint64_t want = scalar->row_hash(data.data() + offset, w);
        for (const KernelOps* ops : AllTiers()) {
          ASSERT_EQ(ops->row_hash(data.data() + offset, w), want)
              << KernelTierName(ops->tier) << " w=" << w << " offset=" << offset;
        }
      }
    }
  }
  // And the public wrapper routes through dispatch.
  const std::vector<Pixel> data = RandomPixels(&rng);
  EXPECT_EQ(RowHash64(std::span<const Pixel>(data.data(), 100)),
            Kernels().row_hash(data.data(), 100));
}

TEST(KernelsTest, ScanColorsParityFuzz) {
  Rng rng(0xae02);
  const KernelOps* scalar = KernelsForTier(KernelTier::kScalar);
  for (int round = 0; round < 6; ++round) {
    // Rounds: uniform, bicolor x2, tricolor (early-exit), planted third color, noise.
    const size_t palette = round < 1 ? 1 : round < 3 ? 2 : round < 5 ? 3 : 0;
    std::vector<Pixel> data = RandomPixels(&rng, palette);
    if (round == 4) {
      // Adversarial: bicolor everywhere; a third color is planted per width below at
      // the start, middle, or end — the exact spots a vector early-exit can get wrong.
      for (Pixel& p : data) {
        p = (p & 1) ? 0x111111 : 0x222222;
      }
    }
    for (const size_t offset : kOffsets) {
      for (int32_t w = 0; w <= kMaxWidth; ++w) {
        std::vector<Pixel> row(data.begin() + offset, data.begin() + offset + w);
        if (round == 4 && w > 0) {
          row[rng.NextBelow(3) * static_cast<size_t>(w - 1) / 2] = 0x333333;
        }
        ColorScan want;
        scalar->scan_colors(row.data(), row.size(), &want);
        for (const KernelOps* ops : AllTiers()) {
          ColorScan got;
          ops->scan_colors(row.data(), row.size(), &got);
          ASSERT_EQ(got.distinct, want.distinct)
              << KernelTierName(ops->tier) << " w=" << w << " offset=" << offset;
          ASSERT_EQ(got.first, want.first) << KernelTierName(ops->tier) << " w=" << w;
          ASSERT_EQ(got.second, want.second) << KernelTierName(ops->tier) << " w=" << w;
        }
      }
    }
  }
}

// The encoder feeds one ColorScan across many rows; mid-state entry must match too.
TEST(KernelsTest, ScanColorsMultiRowContinuation) {
  Rng rng(0xae03);
  for (int round = 0; round < 8; ++round) {
    std::vector<std::vector<Pixel>> rows;
    for (int r = 0; r < 3; ++r) {
      std::vector<Pixel> src = RandomPixels(&rng, 1 + static_cast<size_t>(round % 4));
      src.resize(33 + static_cast<size_t>(round));
      rows.push_back(std::move(src));
    }
    ColorScan want;
    for (const auto& row : rows) {
      KernelsForTier(KernelTier::kScalar)->scan_colors(row.data(), row.size(), &want);
    }
    for (const KernelOps* ops : AllTiers()) {
      ColorScan got;
      for (const auto& row : rows) {
        ops->scan_colors(row.data(), row.size(), &got);
      }
      EXPECT_EQ(got.distinct, want.distinct) << KernelTierName(ops->tier);
      EXPECT_EQ(got.first, want.first) << KernelTierName(ops->tier);
      EXPECT_EQ(got.second, want.second) << KernelTierName(ops->tier);
    }
  }
}

TEST(KernelsTest, PackBitmapRowParityFuzz) {
  Rng rng(0xae04);
  const KernelOps* scalar = KernelsForTier(KernelTier::kScalar);
  const Pixel fg = 0xabcdef;
  for (int round = 0; round < 4; ++round) {
    std::vector<Pixel> data = RandomPixels(&rng, 2);
    for (Pixel& p : data) {
      p = (p & 1) ? fg : 0x000042;
    }
    for (const size_t offset : kOffsets) {
      for (int32_t w = 0; w <= kMaxWidth; ++w) {
        const size_t stride = (static_cast<size_t>(w) + 7) / 8;
        // Poison both outputs so unwritten bytes and stale trailing bits both surface.
        std::vector<uint8_t> want(stride + 2, 0xaa), got(stride + 2, 0x55);
        scalar->pack_bitmap_row(data.data() + offset, w, fg, want.data());
        for (const KernelOps* ops : AllTiers()) {
          std::fill(got.begin(), got.end(), 0x55);
          ops->pack_bitmap_row(data.data() + offset, w, fg, got.data());
          ASSERT_EQ(std::vector<uint8_t>(got.begin(), got.begin() + stride),
                    std::vector<uint8_t>(want.begin(), want.begin() + stride))
              << KernelTierName(ops->tier) << " w=" << w << " offset=" << offset;
          ASSERT_EQ(got[stride], 0x55)  // must not write past (n+7)/8 bytes
              << KernelTierName(ops->tier) << " w=" << w;
        }
      }
    }
  }
}

TEST(KernelsTest, RowDiffSpanParityFuzz) {
  Rng rng(0xae05);
  const KernelOps* scalar = KernelsForTier(KernelTier::kScalar);
  const std::vector<Pixel> base = RandomPixels(&rng);
  for (const size_t offset : kOffsets) {
    for (int32_t w = 1; w <= kMaxWidth; ++w) {
      for (int variant = 0; variant < 5; ++variant) {
        std::vector<Pixel> a(base.begin() + offset, base.begin() + offset + w);
        std::vector<Pixel> b = a;
        // Variants: identical, diff at first, diff at last, single random diff, two
        // random diffs (tests that lo/hi bracket, not just find-any).
        if (variant == 1) {
          b[0] ^= 0xffffff;
        } else if (variant == 2) {
          b[static_cast<size_t>(w) - 1] ^= 0xffffff;
        } else if (variant == 3) {
          b[rng.NextBelow(static_cast<uint64_t>(w))] ^= 0xffffff;
        } else if (variant == 4) {
          b[rng.NextBelow(static_cast<uint64_t>(w))] ^= 0xffffff;
          b[rng.NextBelow(static_cast<uint64_t>(w))] ^= 0xffffff;
        }
        int32_t want_lo = -1, want_hi = -1;
        const bool want =
            scalar->row_diff_span(a.data(), b.data(), a.size(), &want_lo, &want_hi);
        for (const KernelOps* ops : AllTiers()) {
          int32_t lo = -1, hi = -1;
          const bool changed =
              ops->row_diff_span(a.data(), b.data(), a.size(), &lo, &hi);
          ASSERT_EQ(changed, want)
              << KernelTierName(ops->tier) << " w=" << w << " variant=" << variant;
          if (want) {
            ASSERT_EQ(lo, want_lo) << KernelTierName(ops->tier) << " w=" << w;
            ASSERT_EQ(hi, want_hi) << KernelTierName(ops->tier) << " w=" << w;
          }
        }
      }
    }
  }
  // Degenerate: empty span is "no difference" on every tier.
  for (const KernelOps* ops : AllTiers()) {
    int32_t lo = 7, hi = 7;
    EXPECT_FALSE(ops->row_diff_span(base.data(), base.data() + 1, 0, &lo, &hi));
  }
}

TEST(KernelsTest, RgbToYuvParityFuzz) {
  Rng rng(0xae06);
  const KernelOps* scalar = KernelsForTier(KernelTier::kScalar);
  std::vector<Pixel> data = RandomPixels(&rng);
  // Saturated corners exercise the U/V clamp (pure blue/red hit 255.5 -> 256 -> 255).
  const Pixel corners[] = {0x000000, 0xffffff, 0xff0000, 0x00ff00, 0x0000ff,
                           0x00ffff, 0xff00ff, 0xffff00, 0x808080, 0x7f8081};
  for (size_t i = 0; i < std::size(corners); ++i) {
    data[i * 13 % data.size()] = corners[i];
  }
  for (const size_t offset : kOffsets) {
    for (int32_t w = 0; w <= kMaxWidth; ++w) {
      const size_t n = static_cast<size_t>(w);
      std::vector<uint8_t> wy(n + 1, 0xee), wu(n + 1, 0xee), wv(n + 1, 0xee);
      scalar->rgb_to_yuv_row(data.data() + offset, n, wy.data(), wu.data(), wv.data());
      for (const KernelOps* ops : AllTiers()) {
        std::vector<uint8_t> gy(n + 1, 0x11), gu(n + 1, 0x11), gv(n + 1, 0x11);
        ops->rgb_to_yuv_row(data.data() + offset, n, gy.data(), gu.data(), gv.data());
        ASSERT_TRUE(std::equal(gy.begin(), gy.end() - 1, wy.begin()) &&
                    std::equal(gu.begin(), gu.end() - 1, wu.begin()) &&
                    std::equal(gv.begin(), gv.end() - 1, wv.begin()))
            << KernelTierName(ops->tier) << " w=" << w << " offset=" << offset;
        ASSERT_EQ(gy[n], 0x11) << KernelTierName(ops->tier);  // no overwrite past n
      }
    }
  }
}

// The bulk kernel and the single-pixel RgbToYuv in src/color/yuv.cc share one fixed-point
// definition; FromPixels must equal a per-pixel conversion exactly.
TEST(KernelsTest, FromPixelsMatchesSinglePixelConversion) {
  Rng rng(0xae07);
  const int32_t w = 61, h = 17;
  std::vector<Pixel> rgb(static_cast<size_t>(w) * h);
  for (Pixel& p : rgb) {
    p = static_cast<Pixel>(rng.NextU64() & 0xffffff);
  }
  const YuvImage image = YuvImage::FromPixels(rgb, w, h);
  for (int32_t y = 0; y < h; ++y) {
    for (int32_t x = 0; x < w; ++x) {
      const Yuv want = RgbToYuv(rgb[static_cast<size_t>(y) * w + x]);
      ASSERT_EQ(image.At(x, y), want) << "at " << x << "," << y;
    }
  }
}

// End-to-end: the damage-tracker + encoder pipeline transmits an IDENTICAL command
// stream under every kernel tier — the per-tier analogue of the per-thread-count
// equality the parallel encoder proves. Runs a scroll (COPY salvage), random damage,
// and text-like bicolor repaints through the full refine+encode path per tier.
TEST(KernelsTest, WireStreamIdenticalAcrossTiers) {
  const int32_t w = 200, h = 120;
  const auto run_pipeline = [&](const KernelOps* ops) {
    ScopedKernelsForTest forced(ops);
    Rng rng(0xfeed);
    Framebuffer fb(w, h);
    DamageTracker tracker(w, h);
    const Encoder encoder;
    std::vector<DisplayCommand> stream;
    // Frame 0: dense text-like repaint. Frame 1: scroll up 16px (COPY salvage path).
    // Frames 2..5: sparse mutations. All reported as full-frame damage so the tracker
    // does the refining.
    for (int frame = 0; frame < 6; ++frame) {
      if (frame == 1) {
        fb.CopyRect(0, 16, Rect{0, 0, w, h - 16});
      }
      const int mutations = frame == 0 ? 40 : 6;
      for (int m = 0; m < mutations; ++m) {
        const Pixel color = static_cast<Pixel>(rng.NextU64() & 0xffffff);
        const int32_t y0 = static_cast<int32_t>(rng.NextBelow(h));
        const int32_t x0 = static_cast<int32_t>(rng.NextBelow(w));
        for (int32_t x = x0; x < std::min<int32_t>(x0 + 40, w); ++x) {
          fb.PutPixel(x, y0, (x % 3) ? color : kBlack);
        }
      }
      std::vector<DisplayCommand> cmds;
      const Region residual =
          tracker.Refine(fb, Region(fb.bounds()), /*scroll_max_shift=*/32, &cmds);
      for (DisplayCommand& cmd : encoder.EncodeDamage(fb, residual)) {
        cmds.push_back(std::move(cmd));
      }
      for (DisplayCommand& cmd : cmds) {
        stream.push_back(std::move(cmd));
      }
    }
    return stream;
  };

  const auto tiers = AllTiers();
  const std::vector<DisplayCommand> want = run_pipeline(tiers[0]);
  EXPECT_FALSE(want.empty());
  for (size_t t = 1; t < tiers.size(); ++t) {
    const std::vector<DisplayCommand> got = run_pipeline(tiers[t]);
    ASSERT_EQ(got.size(), want.size()) << KernelTierName(tiers[t]->tier);
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i], want[i])
          << KernelTierName(tiers[t]->tier) << " command " << i;
    }
  }
}

}  // namespace
}  // namespace slim
