// Compares two BENCH_*.json reports (schema v1) metric-by-metric and exits nonzero when
// the current run has drifted from the baseline beyond tolerance — the regression gate for
// the deterministic simulation benchmarks.
//
//   bench_diff [options] BASELINE.json CURRENT.json
//     --tol FRAC          default relative tolerance (default 0.0: the simulation is
//                         deterministic, so exact equality is the natural baseline)
//     --tol NAME=FRAC     per-metric override (repeatable; NAME may also be a prefix
//                         ending in '.', matching every metric under it)
//     --skip SUBSTR       ignore metrics whose name contains SUBSTR (repeatable)
//     --allow-missing     a metric present on one side only is a note, not a failure
//
// Rules: both files must validate against the report schema and describe the same bench
// at the same scale knobs (comparing different scales is always a bug, not a regression).
// For each metric, |cur - base| <= tol * max(|base|, |cur|) passes; a zero baseline with a
// nonzero tolerance passes only if the current value is also zero.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/bench_report.h"
#include "src/obs/json.h"

namespace {

using slim::JsonValue;

std::optional<JsonValue> LoadReport(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", path);
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  auto doc = slim::JsonParse(buffer.str(), &error);
  if (!doc.has_value()) {
    std::fprintf(stderr, "bench_diff: %s: json parse: %s\n", path, error.c_str());
    return std::nullopt;
  }
  if (const auto schema_error = slim::ValidateBenchReport(*doc)) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", path, schema_error->c_str());
    return std::nullopt;
  }
  return doc;
}

std::map<std::string, double> MetricMap(const JsonValue& doc) {
  std::map<std::string, double> out;
  for (const JsonValue& row : doc.Find("metrics")->as_array()) {
    out[row.Find("name")->as_string()] = row.Find("value")->as_double();
  }
  return out;
}

struct Options {
  double default_tol = 0.0;
  // Exact names and '.'-terminated prefixes; longest match wins.
  std::vector<std::pair<std::string, double>> overrides;
  std::vector<std::string> skips;
  bool allow_missing = false;
};

double ToleranceFor(const Options& options, const std::string& name) {
  double tol = options.default_tol;
  size_t best = 0;
  for (const auto& [pattern, value] : options.overrides) {
    const bool match = pattern == name || (pattern.back() == '.' &&
                                           name.rfind(pattern, 0) == 0);
    if (match && pattern.size() >= best) {
      best = pattern.size();
      tol = value;
    }
  }
  return tol;
}

bool Skipped(const Options& options, const std::string& name) {
  for (const std::string& skip : options.skips) {
    if (name.find(skip) != std::string::npos) {
      return true;
    }
  }
  return false;
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_diff [--tol FRAC | --tol NAME=FRAC]... [--skip SUBSTR]...\n"
               "                  [--allow-missing] BASELINE.json CURRENT.json\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tol") == 0 && i + 1 < argc) {
      const char* spec = argv[++i];
      if (const char* eq = std::strchr(spec, '=')) {
        options.overrides.emplace_back(std::string(spec, eq - spec), std::atof(eq + 1));
      } else {
        options.default_tol = std::atof(spec);
      }
    } else if (std::strcmp(argv[i], "--skip") == 0 && i + 1 < argc) {
      options.skips.emplace_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--allow-missing") == 0) {
      options.allow_missing = true;
    } else if (argv[i][0] == '-') {
      return Usage();
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.size() != 2) {
    return Usage();
  }
  const auto base_doc = LoadReport(files[0]);
  const auto cur_doc = LoadReport(files[1]);
  if (!base_doc.has_value() || !cur_doc.has_value()) {
    return 2;
  }

  // Same bench, same scale: a diff across different workloads is operator error.
  if (base_doc->Find("bench")->as_string() != cur_doc->Find("bench")->as_string()) {
    std::fprintf(stderr, "bench_diff: bench mismatch: '%s' vs '%s'\n",
                 base_doc->Find("bench")->as_string().c_str(),
                 cur_doc->Find("bench")->as_string().c_str());
    return 2;
  }
  for (const auto& [knob, value] : base_doc->Find("scale")->as_object()) {
    const JsonValue* cur = cur_doc->Find("scale")->Find(knob);
    if (cur == nullptr || cur->as_int() != value.as_int()) {
      std::fprintf(stderr, "bench_diff: scale mismatch on %s: %lld vs %s\n", knob.c_str(),
                   static_cast<long long>(value.as_int()),
                   cur != nullptr ? std::to_string(cur->as_int()).c_str() : "(absent)");
      return 2;
    }
  }

  const auto base = MetricMap(*base_doc);
  const auto cur = MetricMap(*cur_doc);
  int failures = 0;
  int compared = 0;
  for (const auto& [name, base_value] : base) {
    if (Skipped(options, name)) {
      continue;
    }
    const auto it = cur.find(name);
    if (it == cur.end()) {
      if (options.allow_missing) {
        std::printf("note  %-48s missing from current\n", name.c_str());
      } else {
        std::printf("FAIL  %-48s missing from current\n", name.c_str());
        ++failures;
      }
      continue;
    }
    ++compared;
    const double cur_value = it->second;
    const double tol = ToleranceFor(options, name);
    const double scale = std::max(std::fabs(base_value), std::fabs(cur_value));
    const double delta = std::fabs(cur_value - base_value);
    if (delta <= tol * scale) {
      continue;
    }
    std::printf("FAIL  %-48s base %.6g -> cur %.6g (%+.2f%%, tol %.2f%%)\n", name.c_str(),
                base_value, cur_value,
                base_value != 0.0 ? 100.0 * (cur_value - base_value) / std::fabs(base_value)
                                  : HUGE_VAL,
                100.0 * tol);
    ++failures;
  }
  for (const auto& [name, value] : cur) {
    if (!Skipped(options, name) && base.find(name) == base.end()) {
      // New metrics are growth, not regression — note them either way.
      std::printf("note  %-48s new in current (%.6g)\n", name.c_str(), value);
    }
  }
  std::printf("bench_diff: %s: %d compared, %d failed\n",
              base_doc->Find("bench")->as_string().c_str(), compared, failures);
  return failures > 0 ? 1 : 0;
}
