// slimtop: live text dashboard over a SLIM metrics-snapshot stream.
//
// A harness run with SLIM_STATS_JSONL=<path> (see src/obs/stats_stream.h) appends one
// registry snapshot per sim-time interval to <path>. slimtop renders those samples as a
// per-session dashboard — end-to-end latency percentiles, SLO breach counts, transmit
// queue depth, bytes per event, chaos/transport counters — either live (`-f` follows the
// file while the harness runs, like top) or as an end-of-run summary (default: read the
// whole file, print the final state and per-sample delta of the last interval).
//
//   bench_chaos_soak &   SLIM_STATS_JSONL=/tmp/soak.jsonl
//   slimtop -f /tmp/soak.jsonl
//
// The dashboard is harness-agnostic: sections appear when their metrics exist in the
// stream (session.latency.*, *.txq.*, *.transport.*, *.migration.*, fabric.fault.*,
// console.*), so any
// bench harness that registers the standard subsystems gets a sensible display for free.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/util/time.h"

namespace {

using slim::JsonParse;
using slim::JsonValue;

struct Sample {
  int64_t index = 0;
  slim::SimTime t_ns = 0;
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  // name -> {count, p50, p90, p99, max} (already summarized by the registry).
  struct Hist {
    int64_t count = 0;
    int64_t p50 = 0;
    int64_t p90 = 0;
    int64_t p99 = 0;
    int64_t max = 0;
  };
  std::map<std::string, Hist> hists;
};

std::optional<Sample> ParseSample(const std::string& line) {
  std::string error;
  const auto doc = JsonParse(line, &error);
  if (!doc.has_value() || !doc->is_object()) {
    std::fprintf(stderr, "slimtop: bad sample line: %s\n", error.c_str());
    return std::nullopt;
  }
  Sample s;
  if (const JsonValue* v = doc->Find("sample"); v != nullptr && v->is_number()) {
    s.index = v->as_int();
  }
  if (const JsonValue* v = doc->Find("t_ns"); v != nullptr && v->is_number()) {
    s.t_ns = v->as_int();
  }
  const JsonValue* snap = doc->Find("snapshot");
  if (snap == nullptr || !snap->is_object()) {
    return std::nullopt;
  }
  if (const JsonValue* c = snap->Find("counters"); c != nullptr && c->is_object()) {
    for (const auto& [name, value] : c->as_object()) {
      s.counters[name] = value.as_int();
    }
  }
  if (const JsonValue* g = snap->Find("gauges"); g != nullptr && g->is_object()) {
    for (const auto& [name, value] : g->as_object()) {
      s.gauges[name] = value.as_double();
    }
  }
  if (const JsonValue* h = snap->Find("histograms"); h != nullptr && h->is_object()) {
    for (const auto& [name, summary] : h->as_object()) {
      if (!summary.is_object()) {
        continue;
      }
      Sample::Hist hist;
      const auto num = [&](const char* key) -> int64_t {
        const JsonValue* v = summary.Find(key);
        return v != nullptr && v->is_number() ? v->as_int() : 0;
      };
      hist.count = num("count");
      hist.p50 = num("p50");
      hist.p90 = num("p90");
      hist.p99 = num("p99");
      hist.max = num("max");
      s.hists[name] = hist;
    }
  }
  return s;
}

double Ms(int64_t ns) { return static_cast<double>(ns) / 1e6; }

void RenderLatency(const Sample& s) {
  const auto e2e = s.hists.find("session.latency.e2e_ns");
  if (e2e == s.hists.end()) {
    return;
  }
  const auto counter = [&](const char* name) -> int64_t {
    const auto it = s.counters.find(name);
    return it == s.counters.end() ? 0 : it->second;
  };
  std::printf("latency   events %-8lld p50 %8.2fms  p90 %8.2fms  p99 %8.2fms  max %8.2fms\n",
              static_cast<long long>(e2e->second.count), Ms(e2e->second.p50),
              Ms(e2e->second.p90), Ms(e2e->second.p99), Ms(e2e->second.max));
  std::printf("slo       breaches %-6lld gave_up %-6lld incomplete %-6lld flight_dumps %lld\n",
              static_cast<long long>(counter("session.latency.breaches")),
              static_cast<long long>(counter("session.latency.gave_up")),
              static_cast<long long>(counter("session.latency.incomplete")),
              static_cast<long long>(counter("session.latency.flight_dumps")));
  // Stage decomposition: p99 per stage plus breach attribution.
  static constexpr const char* kStages[] = {"render",  "encode", "wire_cpu", "txq",
                                            "network", "replay", "decode"};
  std::printf("stages    ");
  for (const char* stage : kStages) {
    const auto it = s.hists.find(std::string("session.latency.") + stage + "_ns");
    if (it != s.hists.end() && it->second.count > 0) {
      std::printf("%s p99 %.2fms  ", stage, Ms(it->second.p99));
    }
  }
  std::printf("\n");
  bool any = false;
  for (const char* stage : kStages) {
    const int64_t n = counter((std::string("session.latency.breach_by.") + stage).c_str());
    if (n > 0) {
      if (!any) {
        std::printf("breach_by ");
        any = true;
      }
      std::printf("%s %lld  ", stage, static_cast<long long>(n));
    }
  }
  if (any) {
    std::printf("\n");
  }
  // Per-session rows: session.latency.s<id>.e2e_ns.
  for (const auto& [name, hist] : s.hists) {
    constexpr const char* kPrefix = "session.latency.s";
    if (name.rfind(kPrefix, 0) != 0 || name.find(".e2e_ns") == std::string::npos) {
      continue;
    }
    const std::string id = name.substr(std::strlen(kPrefix),
                                       name.size() - std::strlen(kPrefix) - 7);
    std::printf("  s%-6s events %-8lld p50 %8.2fms  p99 %8.2fms  max %8.2fms\n", id.c_str(),
                static_cast<long long>(hist.count), Ms(hist.p50), Ms(hist.p99), Ms(hist.max));
  }
}

// Server-farm view (DESIGN.md §9): one row per server prefix that registered migration
// metrics, with its checkpoint traffic and the blackout clock, plus a placement line
// showing which server currently holds how many sessions. Appears only when the stream
// carries *.migration.* counters, like every other section.
void RenderMigration(const Sample& s) {
  // Collect the registration prefixes ("server", "server_b", ...) that have migration
  // counters in this sample.
  std::vector<std::string> prefixes;
  for (const auto& [name, value] : s.counters) {
    const size_t at = name.find(".migration.");
    if (at == std::string::npos) {
      continue;
    }
    const std::string prefix = name.substr(0, at);
    if (prefixes.empty() || prefixes.back() != prefix) {
      prefixes.push_back(prefix);
    }
  }
  if (prefixes.empty()) {
    return;
  }
  const auto counter = [&](const std::string& name) -> int64_t {
    const auto it = s.counters.find(name);
    return it == s.counters.end() ? 0 : it->second;
  };
  for (const std::string& p : prefixes) {
    const std::string m = p + ".migration.";
    const std::string c = p + ".checkpoint.";
    std::printf(
        "migrate   %-10s started %-4lld committed %-4lld aborted %-4lld installs %-4lld "
        "adoptions %-3lld pulls %-4lld retries %lld\n",
        p.c_str(), static_cast<long long>(counter(m + "started")),
        static_cast<long long>(counter(m + "committed")),
        static_cast<long long>(counter(m + "aborted")),
        static_cast<long long>(counter(m + "installs")),
        static_cast<long long>(counter(m + "adoptions")),
        static_cast<long long>(counter(m + "pulls_requested")),
        static_cast<long long>(counter(m + "retries")));
    std::printf(
        "          %-10s ckpt %lld/%.1fKB restores %-4lld decode_fail %-3lld standby %lld/%lld "
        "failover %-3lld blackout %.1f/%.1fms\n",
        "", static_cast<long long>(counter(c + "captures")),
        static_cast<double>(counter(c + "capture_bytes")) / 1024.0,
        static_cast<long long>(counter(c + "restores")),
        static_cast<long long>(counter(c + "decode_failures")),
        static_cast<long long>(counter(m + "standby_sent")),
        static_cast<long long>(counter(m + "standby_stored")),
        static_cast<long long>(counter(m + "failover_restores")),
        Ms(counter(m + "blackout_last_ns")), Ms(counter(m + "blackout_total_ns")));
  }
  // Placement: the per-server session-count gauges, side by side. Zero-session servers
  // are shown too — an empty server is exactly what a migration just produced.
  std::printf("placement ");
  for (const std::string& p : prefixes) {
    const auto it = s.gauges.find(p + ".sessions");
    std::printf("%s %.0f  ", p.c_str(), it == s.gauges.end() ? 0.0 : it->second);
  }
  std::printf("\n");
}

void RenderGauges(const Sample& s) {
  bool any = false;
  for (const auto& [name, value] : s.gauges) {
    const bool interesting = name.find("txq") != std::string::npos ||
                             name.find("queued_bytes") != std::string::npos ||
                             name.find("sessions") != std::string::npos ||
                             name.find("cards") != std::string::npos;
    if (!interesting || value == 0.0) {
      continue;
    }
    if (!any) {
      std::printf("gauges    ");
      any = true;
    }
    std::printf("%s %.0f  ", name.c_str(), value);
  }
  if (any) {
    std::printf("\n");
  }
}

void RenderDeltas(const Sample& cur, const Sample* prev) {
  // Busiest counters over the last interval, by absolute delta (whole-run totals when
  // there is no previous sample yet). bytes/event when both are visible.
  const double dt = prev != nullptr && cur.t_ns > prev->t_ns
                        ? slim::ToSeconds(cur.t_ns - prev->t_ns)
                        : slim::ToSeconds(cur.t_ns);
  std::vector<std::pair<int64_t, std::string>> rows;
  for (const auto& [name, value] : cur.counters) {
    int64_t delta = value;
    if (prev != nullptr) {
      const auto it = prev->counters.find(name);
      delta = value - (it == prev->counters.end() ? 0 : it->second);
    }
    if (delta != 0) {
      rows.emplace_back(delta, name);
    }
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  if (rows.size() > 16) {
    rows.resize(16);
  }
  if (!rows.empty()) {
    std::printf("%s\n", prev != nullptr ? "deltas (last interval)" : "totals");
    for (const auto& [delta, name] : rows) {
      std::printf("  %-44s %12lld  %10.1f/s\n", name.c_str(),
                  static_cast<long long>(delta),
                  dt > 0 ? static_cast<double>(delta) / dt : 0.0);
    }
  }
  // Interactive efficiency: wire bytes per input event, when both counters exist.
  const auto bytes = cur.counters.find("session.bytes_sent");
  const auto events = cur.hists.find("session.latency.e2e_ns");
  if (bytes != cur.counters.end() && events != cur.hists.end() && events->second.count > 0) {
    std::printf("wire      %.1f bytes/event over %lld events\n",
                static_cast<double>(bytes->second) /
                    static_cast<double>(events->second.count),
                static_cast<long long>(events->second.count));
  }
}

void Render(const Sample& cur, const Sample* prev, bool clear) {
  if (clear) {
    std::printf("\033[H\033[2J");
  }
  std::printf("slimtop — sample %lld  t=%.3fs\n", static_cast<long long>(cur.index),
              slim::ToSeconds(cur.t_ns));
  RenderLatency(cur);
  RenderMigration(cur);
  RenderGauges(cur);
  RenderDeltas(cur, prev);
  std::fflush(stdout);
}

int Usage() {
  std::fprintf(stderr,
               "usage: slimtop [-f] [--idle-exit-ms N] <stats.jsonl>\n"
               "  -f                follow the file live (top-style; default renders the\n"
               "                    whole file once and prints the final dashboard)\n"
               "  --idle-exit-ms N  in follow mode, exit after N ms without new samples\n"
               "                    (default: follow until killed)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool follow = false;
  long idle_exit_ms = -1;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-f") == 0) {
      follow = true;
    } else if (std::strcmp(argv[i], "--idle-exit-ms") == 0 && i + 1 < argc) {
      idle_exit_ms = std::strtol(argv[++i], nullptr, 10);
    } else if (argv[i][0] == '-') {
      return Usage();
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    return Usage();
  }

  std::FILE* f = nullptr;
  // In follow mode the harness may not have created the file yet.
  for (int attempt = 0;; ++attempt) {
    f = std::fopen(path, "r");
    if (f != nullptr || !follow || attempt >= 100) {
      break;
    }
    usleep(100 * 1000);
  }
  if (f == nullptr) {
    std::fprintf(stderr, "slimtop: cannot open %s\n", path);
    return 1;
  }

  const bool tty = isatty(fileno(stdout)) != 0;
  std::optional<Sample> prev;
  std::optional<Sample> cur;
  std::string line;
  long idle_ms = 0;
  int samples_seen = 0;
  char buf[1 << 16];
  for (;;) {
    if (std::fgets(buf, sizeof(buf), f) != nullptr) {
      line += buf;
      if (line.empty() || line.back() != '\n') {
        continue;  // partial line: the writer is mid-append
      }
      auto sample = ParseSample(line);
      line.clear();
      if (!sample.has_value()) {
        continue;
      }
      ++samples_seen;
      prev = std::move(cur);
      cur = std::move(sample);
      idle_ms = 0;
      if (follow) {
        Render(*cur, prev.has_value() ? &*prev : nullptr, tty);
      }
      continue;
    }
    if (!follow) {
      break;  // end of file: fall through to the final dashboard
    }
    std::clearerr(f);
    usleep(200 * 1000);
    idle_ms += 200;
    if (idle_exit_ms >= 0 && idle_ms >= idle_exit_ms && samples_seen > 0) {
      break;
    }
  }
  std::fclose(f);
  if (samples_seen == 0) {
    std::fprintf(stderr, "slimtop: no samples in %s\n", path);
    return 1;
  }
  if (!follow) {
    Render(*cur, prev.has_value() ? &*prev : nullptr, /*clear=*/false);
  }
  return 0;
}
