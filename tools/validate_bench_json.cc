// Validates BENCH_*.json artifacts against the BenchReporter schema.
//
//   validate_bench_json FILE...
//
// Exits nonzero (listing every failure) if any file is unreadable, unparseable, or does
// not conform. Used by the bench_smoke ctest target, which runs every harness at a tiny
// scale and feeds the resulting reports through this binary — so a schema change that
// forgets to update writer and validator together fails CI instead of silently producing
// unparseable perf artifacts.

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "src/obs/bench_report.h"
#include "src/obs/json.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s BENCH_file.json...\n", argv[0]);
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    const char* path = argv[i];
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "FAIL %s: cannot open\n", path);
      ++failures;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    const std::optional<slim::JsonValue> doc = slim::JsonParse(buffer.str(), &error);
    if (!doc) {
      std::fprintf(stderr, "FAIL %s: json parse: %s\n", path, error.c_str());
      ++failures;
      continue;
    }
    if (const auto schema_error = slim::ValidateBenchReport(*doc)) {
      std::fprintf(stderr, "FAIL %s: %s\n", path, schema_error->c_str());
      ++failures;
      continue;
    }
    std::printf("ok %s\n", path);
  }
  if (failures > 0) {
    std::fprintf(stderr, "%d of %d report(s) failed validation\n", failures, argc - 1);
    return 1;
  }
  return 0;
}
