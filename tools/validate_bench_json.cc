// Validates BENCH_*.json artifacts against the BenchReporter schema.
//
//   validate_bench_json FILE...
//   validate_bench_json --trace TRACE...
//
// Exits nonzero (listing every failure) if any file is unreadable, unparseable, or does
// not conform. Used by the bench_smoke ctest target, which runs every harness at a tiny
// scale and feeds the resulting reports through this binary — so a schema change that
// forgets to update writer and validator together fails CI instead of silently producing
// unparseable perf artifacts.
//
// With --trace, the files are instead checked as Chrome trace JSON (the SLIM_TRACE /
// flight-recorder output): a top-level array of event objects, each with a one-char "ph"
// and numeric "ts", and with every tid's B/E duration events properly nested — the same
// invariants chrome://tracing and Perfetto rely on to load the file at all.

#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/bench_report.h"
#include "src/obs/json.h"

namespace {

std::optional<std::string> ValidateChromeTrace(const slim::JsonValue& doc) {
  if (!doc.is_array()) {
    return "trace is not a JSON array of events";
  }
  std::map<int64_t, std::vector<std::string>> open;  // tid -> stack of open B names
  size_t spans = 0;
  for (size_t i = 0; i < doc.as_array().size(); ++i) {
    const slim::JsonValue& event = doc.as_array()[i];
    const std::string at = "event[" + std::to_string(i) + "]";
    if (!event.is_object()) {
      return at + " is not an object";
    }
    const slim::JsonValue* ph = event.Find("ph");
    if (ph == nullptr || !ph->is_string() || ph->as_string().size() != 1) {
      return at + ".ph missing or not a one-char string";
    }
    // Metadata ('M') events carry no timestamp; everything else must.
    if (ph->as_string() != "M") {
      if (const slim::JsonValue* ts = event.Find("ts"); ts == nullptr || !ts->is_number()) {
        return at + ".ts missing or not a number";
      }
    }
    const slim::JsonValue* name = event.Find("name");
    if (name == nullptr || !name->is_string()) {
      return at + ".name missing or not a string";
    }
    const slim::JsonValue* tid = event.Find("tid");
    const int64_t tid_value = tid != nullptr && tid->is_number() ? tid->as_int() : 0;
    const char kind = ph->as_string()[0];
    if (kind == 'B') {
      open[tid_value].push_back(name->as_string());
      ++spans;
    } else if (kind == 'E') {
      auto& stack = open[tid_value];
      if (stack.empty()) {
        return at + ": 'E' (" + name->as_string() + ") with no open 'B' on tid " +
               std::to_string(tid_value);
      }
      stack.pop_back();
    }
  }
  for (const auto& [tid, stack] : open) {
    if (!stack.empty()) {
      return "tid " + std::to_string(tid) + " ends with " + std::to_string(stack.size()) +
             " unclosed 'B' span(s), first '" + stack.front() + "'";
    }
  }
  if (doc.as_array().empty()) {
    return "trace has no events";
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  bool trace_mode = false;
  int first_file = 1;
  if (argc >= 2 && std::string(argv[1]) == "--trace") {
    trace_mode = true;
    first_file = 2;
  }
  if (argc <= first_file) {
    std::fprintf(stderr, "usage: %s [--trace] FILE.json...\n", argv[0]);
    return 2;
  }
  int failures = 0;
  for (int i = first_file; i < argc; ++i) {
    const char* path = argv[i];
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "FAIL %s: cannot open\n", path);
      ++failures;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    const std::optional<slim::JsonValue> doc = slim::JsonParse(buffer.str(), &error);
    if (!doc) {
      std::fprintf(stderr, "FAIL %s: json parse: %s\n", path, error.c_str());
      ++failures;
      continue;
    }
    const auto schema_error =
        trace_mode ? ValidateChromeTrace(*doc) : slim::ValidateBenchReport(*doc);
    if (schema_error) {
      std::fprintf(stderr, "FAIL %s: %s\n", path, schema_error->c_str());
      ++failures;
      continue;
    }
    std::printf("ok %s\n", path);
  }
  if (failures > 0) {
    std::fprintf(stderr, "%d of %d file(s) failed validation\n", failures,
                 argc - first_file);
    return 1;
  }
  return 0;
}
