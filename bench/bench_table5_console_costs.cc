// Table 5: Sun Ray 1 protocol processing costs.
//
// Reproduces the paper's methodology: stream each command type at several sizes, observe the
// console's service times, and recover a per-command startup cost plus an incremental cost
// per pixel by linear regression. Also demonstrates the saturation behaviour the paper used
// to find the sustainable rate: past the decode capacity the console's command memory fills
// and it drops commands.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/console/console.h"
#include "src/net/fabric.h"
#include "src/net/transport.h"
#include "src/sim/simulator.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace slim {
namespace {

DisplayCommand MakeCommandOfSize(CommandType type, CscsDepth depth, int32_t w, int32_t h,
                                 int32_t x, int32_t y) {
  switch (type) {
    case CommandType::kSet: {
      SetCommand cmd;
      cmd.dst = Rect{x, y, w, h};
      cmd.rgb.assign(static_cast<size_t>(w) * h * 3, 0x55);
      return cmd;
    }
    case CommandType::kBitmap: {
      BitmapCommand cmd;
      cmd.dst = Rect{x, y, w, h};
      cmd.bits.assign(((static_cast<size_t>(w) + 7) / 8) * h, 0xa5);
      return cmd;
    }
    case CommandType::kFill:
      return FillCommand{Rect{x, y, w, h}, kWhite};
    case CommandType::kCopy:
      return CopyCommand{0, 0, Rect{x, y, w, h}};
    case CommandType::kCscs: {
      CscsCommand cmd;
      cmd.src_w = w;
      cmd.src_h = h;
      cmd.dst = Rect{x, y, w, h};
      cmd.depth = depth;
      cmd.payload.assign(CscsPayloadBytes(w, h, depth), 0x3c);
      return cmd;
    }
  }
  return FillCommand{};
}

struct FitRow {
  LinearFit fit;
};

// Measures average decode time at each size and regresses time = startup + per_pixel * px.
LinearFit MeasureCommand(CommandType type, CscsDepth depth) {
  std::vector<double> pixels;
  std::vector<double> nanos;
  for (const int32_t edge : {16, 32, 64, 96, 128, 192, 256}) {
    Simulator sim;
    FabricOptions fast;
    fast.link.bits_per_second = 10'000'000'000;  // measurement feed, not the bottleneck
    Fabric fabric(&sim, fast);
    Console console(&sim, &fabric, {});
    SlimEndpoint server(&fabric, fabric.AddNode());
    constexpr int kRepeats = 24;
    for (int i = 0; i < kRepeats; ++i) {
      // Vary the destination so CSCS never hits the warm streaming path: Table 5
      // characterizes the cold, per-command cost.
      const int32_t x = (i * 37) % 512;
      const int32_t y = (i * 53) % 512;
      server.Send(console.node(), 1, std::visit([](auto b) { return MessageBody(b); },
                                                MakeCommandOfSize(type, depth, edge, edge, x,
                                                                  y)));
      sim.Run();  // one at a time: pure service time, no queueing
    }
    RunningStats stats;
    for (const ServiceRecord& rec : console.service_log()) {
      stats.Add(static_cast<double>(rec.completion - rec.start));
    }
    pixels.push_back(static_cast<double>(edge) * edge);
    nanos.push_back(stats.mean());
  }
  return FitLine(pixels, nanos);
}

void DemonstrateSaturation() {
  // Offer SET commands at increasing rates; report sustained rate and drops.
  std::printf("\nSaturation probe (SET 128x128): offered vs sustained rate\n");
  TextTable table({"offered cmds/s", "applied cmds/s", "dropped %"});
  for (const int offered : {100, 200, 300, 400}) {
    Simulator sim;
    FabricOptions fast;
    fast.link.bits_per_second = 1'000'000'000;
    Fabric fabric(&sim, fast);
    ConsoleOptions options;
    options.record_service_log = false;
    Console console(&sim, &fabric, options);
    SlimEndpoint server(&fabric, fabric.AddNode());
    const SimDuration gap = kSecond / offered;
    const int total = offered * 2;  // two simulated seconds
    std::function<void(int)> send_next = [&](int i) {
      if (i >= total) {
        return;
      }
      server.Send(console.node(), 1,
                  std::visit([](auto b) { return MessageBody(b); },
                             MakeCommandOfSize(CommandType::kSet, CscsDepth::k16, 128, 128,
                                               (i * 61) % 512, (i * 17) % 512)));
      sim.Schedule(gap, [&, i] { send_next(i + 1); });
    };
    send_next(0);
    sim.Run();
    const double seconds = ToSeconds(sim.now());
    table.AddRow({Format("%d", offered),
                  Format("%.0f", console.commands_applied() / seconds),
                  Format("%.1f", 100.0 * console.commands_dropped() / total)});
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace
}  // namespace slim

int main() {
  using namespace slim;
  PrintHeader("Table 5 - SLIM console protocol processing costs",
              "Schmidt et al., SOSP'99, Table 5");
  // SLIM_TRACE=<path.json> captures the run as a Chrome trace (chrome://tracing,
  // Perfetto); zero cost when unset.
  ScopedTraceFromEnv trace;
  BenchReporter report("table5_console_costs", "SLIM console protocol processing costs");

  struct Row {
    const char* name;
    const char* slug;
    CommandType type;
    CscsDepth depth;
    double paper_startup;
    double paper_per_pixel;
  };
  const Row rows[] = {
      {"SET", "set", CommandType::kSet, CscsDepth::k16, 5000, 270},
      {"BITMAP", "bitmap", CommandType::kBitmap, CscsDepth::k16, 11080, 22},
      {"FILL", "fill", CommandType::kFill, CscsDepth::k16, 5000, 2},
      {"COPY", "copy", CommandType::kCopy, CscsDepth::k16, 5000, 10},
      {"CSCS (16 bpp)", "cscs16", CommandType::kCscs, CscsDepth::k16, 24000, 205},
      {"CSCS (12 bpp)", "cscs12", CommandType::kCscs, CscsDepth::k12, 24000, 193},
      {"CSCS (8 bpp)", "cscs8", CommandType::kCscs, CscsDepth::k8, 24000, 178},
      {"CSCS (5 bpp)", "cscs5", CommandType::kCscs, CscsDepth::k5, 24000, 150},
  };
  TextTable table({"Command", "Startup (paper)", "Startup (meas.)", "ns/px (paper)",
                   "ns/px (meas.)", "R^2"});
  for (const Row& row : rows) {
    const LinearFit fit = MeasureCommand(row.type, row.depth);
    table.AddRow({row.name, Format("%.0f ns", row.paper_startup),
                  Format("%.0f ns", fit.intercept), Format("%.0f", row.paper_per_pixel),
                  Format("%.1f", fit.slope), Format("%.4f", fit.r_squared)});
    const std::string base = row.slug;
    report.Metric(base + ".startup", fit.intercept, "ns");
    report.Metric(base + ".per_pixel", fit.slope, "ns/px");
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\nMeasured startup includes the %d ns per-message dispatch overhead the\n"
              "regression cannot separate from the command startup.\n",
              static_cast<int>(ConsoleCostModel{}.dispatch_overhead));
  DemonstrateSaturation();
  return 0;
}
