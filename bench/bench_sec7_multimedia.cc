// Section 7: multimedia applications on SLIM.
//
//   7.1 MPEG-II player: 720x480 via CSCS at 6 bpp. Paper: ~20 Hz, ~40 Mbps, server-bound;
//       full 30 Hz rate achievable by sending every other line and scaling at the console,
//       halving bandwidth.
//   7.2 Live NTSC video: 640x240 JPEG fields scaled to 640x480. Paper: 16-20 Hz
//       (19-23 Mbps), decode-bound; four parallel 320x240 players reach 25-28 Hz each
//       (59-66 Mbps aggregate), console-bound.
//   7.3 Quake: frames rendered by the engine in 8-bit indexed color, translated through the
//       palette->YUV lookup layer, sent as 5 bpp CSCS. Paper: 18-21 Hz at 640x480
//       (22-26 Mbps), 28-34 Hz at 480x360, four parallel 320x240 instances at 37-40 Hz
//       (46-50 Mbps), translation-bound.
//
// In all cases the console's decode pipeline and the 100 Mbps IF are simulated for real;
// server-side decode/translation costs come from VideoCpuModel.
//
// The final table is the contended desktop (Section 7's allocator closing the loop): a
// saturating video stream next to an interactive application on a console whose
// allocatable bandwidth cannot carry the video's offered rate, run unconstrained, with
// grants enforced naively, and with grants enforced plus backpressure adaptation.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/benchmark_apps.h"
#include "src/console/console.h"
#include "src/net/fabric.h"
#include "src/quake/raycaster.h"
#include "src/server/slim_server.h"
#include "src/util/histogram.h"
#include "src/util/table.h"
#include "src/video/pipeline.h"
#include "src/video/video_source.h"

namespace slim {
namespace {

struct MediaRun {
  double fps = 0;       // frames DISPLAYED per player (applied at the console)
  double mbps = 0;
  int64_t console_drops = 0;
  double console_busy = 0;  // decode pipeline utilization
};

struct Rig {
  explicit Rig(ServerOptions server_options = {}, ConsoleOptions console_options = {})
      : fabric(&sim, {}),
        server(&sim, &fabric, server_options),
        console(&sim, &fabric, console_options) {
    console.set_apply_callback([this](const ServiceRecord& rec) {
      if (rec.type == CommandType::kCscs) {
        ++cscs_displayed;
        cscs_bytes += static_cast<int64_t>(rec.wire_bytes);
      }
    });
  }

  ServerSession& NewSession() {
    const uint64_t card = server.auth().IssueCard(++user);
    ServerSession& session = server.CreateSession(card);
    console.InsertCard(server.node(), card);
    sim.Run();
    return session;
  }

  Simulator sim;
  Fabric fabric;
  SlimServer server;
  Console console;
  uint32_t user = 0;
  int64_t cscs_displayed = 0;
  int64_t cscs_bytes = 0;
};

MediaRun Finish(Rig& rig, const std::vector<std::unique_ptr<MediaPipeline>>& pipelines,
                SimDuration horizon) {
  // Pipelines stop themselves after `horizon`; drain everything.
  rig.sim.Run();
  MediaRun out;
  (void)pipelines;
  // The display rate (and bandwidth) is what the console actually applied, not what the
  // server offered: when the console is the bottleneck, excess frames drop in its queue.
  out.fps = static_cast<double>(rig.cscs_displayed) /
            static_cast<double>(pipelines.size()) / ToSeconds(horizon);
  out.mbps = static_cast<double>(rig.cscs_bytes) * 8.0 / ToSeconds(horizon) / 1e6;
  out.console_drops = rig.console.commands_dropped();
  out.console_busy = static_cast<double>(rig.console.busy_time()) /
                     static_cast<double>(horizon);
  return out;
}

// 7.1: stored MPEG-II clip playback.
MediaRun RunMpeg(bool half_lines, SimDuration horizon) {
  Rig rig;
  ServerSession& session = rig.NewSession();
  auto source = std::make_shared<SyntheticVideoSource>(720, half_lines ? 240 : 480, 71);
  MediaPipelineOptions options;
  options.target_fps = 30.0;  // the clip's native rate
  options.depth = CscsDepth::k6;
  options.dst = Rect{40, 40, 720, 480};  // console upscales in half-line mode
  options.run_for = horizon;
  VideoCpuModel cpu;
  std::vector<std::unique_ptr<MediaPipeline>> pipelines;
  pipelines.push_back(std::make_unique<MediaPipeline>(
      &rig.sim, &session, options, [source, cpu, half_lines](int index, SimDuration* cost) {
        // Decode always processes the full frame; only conversion/transmit shrink.
        const int64_t full = 720 * 480;
        const int64_t sent = half_lines ? full / 2 : full;
        *cost = cpu.MpegFrameCost(full, sent);
        return half_lines ? source->Field(index, false) : source->Frame(index);
      }));
  pipelines.back()->Start();
  return Finish(rig, pipelines, horizon);
}

// 7.2: live NTSC video (n parallel players, each on its own CPU).
MediaRun RunNtsc(int players, int32_t w, int32_t field_h, int32_t dst_h,
                 SimDuration horizon) {
  Rig rig;
  VideoCpuModel cpu;
  // Sessions attach first (NewSession drains the simulator), then every player starts so
  // the parallel instances genuinely overlap in simulated time.
  std::vector<ServerSession*> sessions;
  for (int p = 0; p < players; ++p) {
    sessions.push_back(&rig.NewSession());
  }
  std::vector<std::unique_ptr<MediaPipeline>> pipelines;
  for (int p = 0; p < players; ++p) {
    auto source = std::make_shared<SyntheticVideoSource>(w, field_h * 2, 720 + p);
    MediaPipelineOptions options;
    options.target_fps = 30.0;
    options.depth = CscsDepth::k8;
    options.dst = Rect{20 + (p % 2) * (w + 10), 20 + (p / 2) * (dst_h + 10), w, dst_h};
    options.run_for = horizon;
    pipelines.push_back(std::make_unique<MediaPipeline>(
        &rig.sim, sessions[static_cast<size_t>(p)], options,
        [source, cpu, p](int index, SimDuration* cost) {
          *cost = cpu.JpegFieldCost(static_cast<int64_t>(source->width()) *
                                    (source->height() / 2));
          return source->Field(index, (index + p) % 2 == 1);
        }));
    pipelines.back()->Start();
  }
  return Finish(rig, pipelines, horizon);
}

// 7.3: Quake through the YUV translation layer (n parallel instances).
MediaRun RunQuake(int instances, int32_t w, int32_t h, SimDuration horizon) {
  Rig rig;
  VideoCpuModel cpu;
  std::vector<ServerSession*> sessions;
  for (int i = 0; i < instances; ++i) {
    sessions.push_back(&rig.NewSession());
  }
  std::vector<std::unique_ptr<MediaPipeline>> pipelines;
  for (int i = 0; i < instances; ++i) {
    ServerSession& session = *sessions[static_cast<size_t>(i)];
    auto engine = std::make_shared<RaycastEngine>(w, h, 0x9a4e + i);
    auto translation = std::make_shared<YuvTranslationLayer>(engine->palette());
    MediaPipelineOptions options;
    options.target_fps = 60.0;  // the game runs as fast as it can
    options.depth = CscsDepth::k5;
    options.dst = Rect{10 + (i % 2) * (w + 10), 10 + (i / 2) * (h + 10), w, h};
    options.run_for = horizon;
    pipelines.push_back(std::make_unique<MediaPipeline>(
        &rig.sim, &session, options,
        [engine, translation, cpu, w, h](int index, SimDuration* cost) {
          const Camera camera = engine->DemoCamera(index);
          const auto frame = engine->RenderFrame(camera);
          const int64_t pixels = static_cast<int64_t>(w) * h;
          // Engine render cost scales with resolution and scene complexity; translation is
          // the paper's dominant cost (~30 ms/frame at 640x480), and the frame must also be
          // copied out of the engine's private buffer before translation.
          const double complexity = engine->SceneComplexity(camera);
          const auto engine_cost = static_cast<SimDuration>(
              40.0 * complexity * static_cast<double>(pixels));
          const auto copy_cost =
              static_cast<SimDuration>(25.0 * static_cast<double>(pixels));
          *cost = engine_cost + copy_cost + cpu.QuakeTranslateCost(pixels);
          return translation->Translate(frame, w, h);
        }));
    pipelines.back()->Start();
  }
  return Finish(rig, pipelines, horizon);
}

// Contended desktop: one session runs a 640x480 video stream offering ~74 Mbps next to a
// keystroke-driven interactive app, on a console that can only allocate 25 Mbps. The
// ascending allocator grants the interactive flow its modest 2 Mbps first and the video
// flow the ~23 Mbps that remain, so the stream must lose frames, not the keystrokes.
struct ContendedRun {
  double key_p50_ms = 0;     // keystroke -> echoed pixels on the display
  double key_p99_ms = 0;
  double video_fps = 0;      // frames displayed within the horizon (stale arrivals do not count)
  int64_t video_dropped = 0;
  int64_t coalesced = 0;
  int64_t txq_max_depth = 0;
};

ContendedRun RunContended(bool pacing, bool adapt, SimDuration horizon) {
  ServerOptions server_options;
  server_options.pacing.enabled = pacing;
  server_options.pacing.adapt = adapt;
  ConsoleOptions console_options;
  console_options.allocatable_bps = 25'000'000;
  Rig rig(server_options, console_options);
  ServerSession& session = rig.NewSession();
  auto app = MakeApplication(AppKind::kPim, &session, 0x7e11);
  app->BindInput();
  app->Start();
  rig.sim.Run();

  // Per-keystroke latency: send time to the display completion of the first echoed
  // (non-CSCS) command. One keystroke is outstanding at a time, so the correlation is by
  // order; video frames ride the CSCS path and never collide with it.
  Histogram latency(0.0, 10'000.0, 0.1);  // ms
  SimTime key_sent = 0;
  bool key_pending = false;
  SimTime video_deadline = 0;  // set once the stream starts; 0 admits everything
  rig.console.set_apply_callback([&](const ServiceRecord& rec) {
    if (rec.type == CommandType::kCscs) {
      if (video_deadline == 0 || rec.completion <= video_deadline) {
        ++rig.cscs_displayed;
      }
      return;
    }
    if (key_pending && rec.completion >= key_sent) {
      latency.Add(ToMillis(rec.completion - key_sent));
      key_pending = false;
    }
  });

  auto source = std::make_shared<SyntheticVideoSource>(640, 480, 77);
  MediaPipelineOptions options;
  options.target_fps = 30.0;
  options.depth = CscsDepth::k8;  // 640x480 @8bpp @30fps -> ~74 Mbps offered
  options.dst = Rect{600, 40, 640, 480};
  options.run_for = horizon;
  auto pipeline = std::make_unique<MediaPipeline>(
      &rig.sim, &session, options, [source](int index, SimDuration* cost) {
        // The wire is the story here, not the decoder: a nominal production cost keeps the
        // stream CPU-unconstrained so every lost frame is the allocator's doing.
        *cost = Milliseconds(5);
        return source->Frame(index);
      });
  pipeline->Start();
  video_deadline = rig.sim.now() + horizon;

  // A keystroke every 100 ms against the video stream, PIM-style echo.
  const SimTime end = rig.sim.now() + horizon;
  uint32_t keycode = 0;
  while (rig.sim.now() < end) {
    key_sent = rig.sim.now();
    key_pending = true;
    rig.console.SendKey(rig.server.node(), session.id(), 'a' + (keycode++ % 26), true);
    rig.sim.RunUntil(rig.sim.now() + Milliseconds(100));
  }
  rig.sim.Run();  // drain the paced backlog (the naive configuration has plenty)

  ContendedRun out;
  out.key_p50_ms = latency.InverseCdf(0.5);
  out.key_p99_ms = latency.InverseCdf(0.99);
  out.video_fps = static_cast<double>(rig.cscs_displayed) / ToSeconds(horizon);
  out.video_dropped = rig.server.pacing_stats().video_dropped;
  out.coalesced = rig.server.pacing_stats().coalesced_flushes;
  out.txq_max_depth = rig.server.tx_queue().max_depth();
  return out;
}

}  // namespace
}  // namespace slim

int main() {
  using namespace slim;
  PrintHeader("Section 7 - Multimedia applications",
              "Schmidt et al., SOSP'99, Sections 7.1-7.3");
  // SLIM_TRACE=<path.json> captures the run as a Chrome trace (chrome://tracing,
  // Perfetto); zero cost when unset.
  ScopedTraceFromEnv trace;
  BenchReporter report("sec7_multimedia", "Multimedia applications on SLIM");
  const SimDuration horizon = Seconds(EnvInt("SLIM_SECONDS", 20));

  TextTable table({"Experiment", "paper fps", "fps", "paper Mbps", "Mbps", "console busy",
                   "drops"});
  auto add = [&](const char* name, const char* slug, const char* paper_fps,
                 const char* paper_mbps, const MediaRun& run) {
    table.AddRow({name, paper_fps, Format("%.1f", run.fps), paper_mbps,
                  Format("%.1f", run.mbps), Format("%.0f%%", run.console_busy * 100.0),
                  Format("%lld", static_cast<long long>(run.console_drops))});
    const std::string base = slug;
    report.Metric(base + ".fps", run.fps, "fps");
    report.Metric(base + ".bandwidth", run.mbps, "Mbps");
    report.Metric(base + ".console_busy", run.console_busy * 100.0, "percent");
  };
  std::fprintf(stderr, "[sec7] mpeg...\n");
  add("MPEG-II 720x480 @6bpp", "mpeg_full", "20", "~40", RunMpeg(false, horizon));
  add("MPEG-II half-line + console scale", "mpeg_half", "~30", "~20",
      RunMpeg(true, horizon));
  std::fprintf(stderr, "[sec7] ntsc...\n");
  add("NTSC 640x240->480 @8bpp", "ntsc_single", "16-20", "19-23",
      RunNtsc(1, 640, 240, 480, horizon));
  add("NTSC 4x 320x240 players", "ntsc_quad", "25-28", "59-66 agg",
      RunNtsc(4, 320, 240, 240, horizon));
  std::fprintf(stderr, "[sec7] quake...\n");
  add("Quake 640x480 @5bpp", "quake_640", "18-21", "22-26", RunQuake(1, 640, 480, horizon));
  add("Quake 480x360", "quake_480", "28-34", "20-24", RunQuake(1, 480, 360, horizon));
  add("Quake 4x 320x240", "quake_quad", "37-40", "46-50 agg",
      RunQuake(4, 320, 240, horizon));
  std::printf("%s", table.Render().c_str());
  std::printf("\nNotes: fps is per player/instance; Mbps is summed across parallel "
              "instances.\nServer CPU (decode/translation) is the bottleneck for the single "
              "streams; the console's\ndecode pipeline becomes the limit only for the "
              "4-way parallel cases, as in the paper.\n");

  std::fprintf(stderr, "[sec7] contended desktop...\n");
  TextTable contended({"Configuration", "key p50", "key p99", "video fps", "vid dropped",
                       "coalesced", "txq max depth"});
  struct ContendedMode {
    const char* name;
    const char* slug;
    bool pacing;
    bool adapt;
  };
  const ContendedMode modes[] = {
      {"unconstrained (pacing off)", "contended_off", false, false},
      {"grants enforced, naive", "contended_naive", true, false},
      {"grants enforced + adaptation", "contended_adaptive", true, true},
  };
  for (const ContendedMode& mode : modes) {
    const ContendedRun run = RunContended(mode.pacing, mode.adapt, horizon);
    contended.AddRow({mode.name, Format("%.1f ms", run.key_p50_ms),
                      Format("%.1f ms", run.key_p99_ms), Format("%.1f", run.video_fps),
                      Format("%lld", static_cast<long long>(run.video_dropped)),
                      Format("%lld", static_cast<long long>(run.coalesced)),
                      Format("%lld", static_cast<long long>(run.txq_max_depth))});
    const std::string base = mode.slug;
    report.Metric(base + ".key_p50", run.key_p50_ms, "ms");
    report.Metric(base + ".key_p99", run.key_p99_ms, "ms");
    report.Metric(base + ".video_fps", run.video_fps, "fps");
    report.Metric(base + ".video_dropped", run.video_dropped, "count");
    report.Metric(base + ".coalesced_flushes", run.coalesced, "count");
    report.Metric(base + ".txq_max_depth", run.txq_max_depth, "count");
  }
  std::printf("\nContended desktop: 640x480 @8bpp video (~74 Mbps offered) + keystroke "
              "echo on a 25 Mbps\nconsole. Naive enforcement paces correctly but queues "
              "every stale frame; adaptation drops\nnewest-wins, keeps the transmit queue "
              "bounded, and leaves keystroke latency at its\nunconstrained level.\n%s",
              contended.Render().c_str());
  return 0;
}
