// Related-work comparison (paper Section 8.3): SLIM's server-push vs a VNC-style
// client-pull display, on identical drawing activity over the same 100 Mbps fabric.
//
// Paper claims reproduced: client-pull adds update latency even on a low-latency,
// high-bandwidth network (the paper calls VNC "fairly sluggish"), and it loads the server
// with per-request delta computation over the whole framebuffer, growing with poll rate
// whether or not anything changed.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/content.h"
#include "src/apps/font.h"
#include "src/console/console.h"
#include "src/net/fabric.h"
#include "src/server/slim_server.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/vnc/vnc.h"

namespace slim {
namespace {

// Draws a small text update every 120 ms and measures how long until the remote copy shows
// it; returns (avg latency ms, server cpu seconds of delta scanning, KB sent).
struct RemoteResult {
  double avg_latency_ms = 0;
  double diff_cpu_s = 0;
  int64_t kb_sent = 0;
};

RemoteResult MeasureSlim() {
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimServer server(&sim, &fabric, {});
  Console console(&sim, &fabric, {});
  const uint64_t card = server.auth().IssueCard(1);
  ServerSession& session = server.CreateSession(card);
  console.InsertCard(server.node(), card);
  sim.Run();
  session.FillRect(session.framebuffer().bounds(), UiBackground());
  session.Flush();
  sim.Run();

  const Font& font = DefaultFont();
  RunningStats latency;
  SimTime drawn_at = 0;
  console.set_apply_callback([&](const ServiceRecord& rec) {
    if (rec.type == CommandType::kBitmap) {
      latency.Add(ToMillis(rec.completion - drawn_at));
    }
  });
  for (int i = 0; i < 100; ++i) {
    sim.RunUntil(sim.now() + Milliseconds(120));
    drawn_at = sim.now();
    const char c = static_cast<char>('a' + i % 26);
    session.DrawGlyphs(40 + (i % 60) * font.char_width(), 200,
                       font.Shape(std::string_view(&c, 1)), kBlack, UiBackground());
    session.Flush();
    sim.Run();
  }
  RemoteResult result;
  result.avg_latency_ms = latency.mean();
  result.diff_cpu_s = 0.0;  // push model: the driver knows the damage, no scanning
  result.kb_sent = session.bytes_sent() / 1024;
  return result;
}

RemoteResult MeasureVnc(SimDuration poll) {
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimServer server(&sim, &fabric, {});
  const uint64_t card = server.auth().IssueCard(1);
  ServerSession& session = server.CreateSession(card);  // no console: VNC replaces it
  session.FillRect(session.framebuffer().bounds(), UiBackground());
  session.Flush();  // logged but untransmitted

  VncOptions options;
  options.poll_interval = poll;
  VncViewerSystem vnc(&sim, &fabric, &session, options);
  vnc.Start();
  sim.RunUntil(Seconds(1));

  const Font& font = DefaultFont();
  RunningStats latency;
  for (int i = 0; i < 100; ++i) {
    sim.RunUntil(sim.now() + Milliseconds(120));
    const SimTime drawn_at = sim.now();
    const char c = static_cast<char>('a' + i % 26);
    session.DrawGlyphs(40 + (i % 60) * font.char_width(), 200,
                       font.Shape(std::string_view(&c, 1)), kBlack, UiBackground());
    session.Flush();
    // Wait until the viewer's copy includes the change.
    while (!vnc.InSync() && sim.now() < drawn_at + Seconds(1)) {
      if (!sim.Step()) {
        break;
      }
    }
    latency.Add(ToMillis(sim.now() - drawn_at));
  }
  vnc.Stop();
  RemoteResult result;
  result.avg_latency_ms = latency.mean();
  result.diff_cpu_s = ToSeconds(vnc.diff_cpu_time());
  result.kb_sent = vnc.bytes_sent() / 1024;
  return result;
}

}  // namespace
}  // namespace slim

int main() {
  using namespace slim;
  PrintHeader("Related work - SLIM server-push vs VNC-style client-pull",
              "Schmidt et al., SOSP'99, Section 8.3");
  // SLIM_TRACE=<path.json> captures the run as a Chrome trace (chrome://tracing,
  // Perfetto); zero cost when unset.
  ScopedTraceFromEnv trace;
  BenchReporter report("related_vnc", "SLIM server-push vs VNC-style client-pull");
  TextTable table({"system", "keystroke->pixels", "server delta CPU (12s run)", "KB sent"});
  const RemoteResult slim_result = MeasureSlim();
  table.AddRow({"SLIM (push at damage time)", Format("%.2f ms", slim_result.avg_latency_ms),
                "none", Format("%lld", static_cast<long long>(slim_result.kb_sent))});
  report.Metric("slim.latency", slim_result.avg_latency_ms, "ms");
  report.Metric("slim.kb_sent", slim_result.kb_sent, "KB");
  for (const auto& [name, slug, poll] :
       {std::tuple{"VNC-style pull, 20 ms poll", "vnc_20ms", Milliseconds(20)},
        std::tuple{"VNC-style pull, 50 ms poll", "vnc_50ms", Milliseconds(50)},
        std::tuple{"VNC-style pull, 100 ms poll", "vnc_100ms", Milliseconds(100)}}) {
    const RemoteResult r = MeasureVnc(poll);
    table.AddRow({name, Format("%.2f ms", r.avg_latency_ms), Format("%.2f s", r.diff_cpu_s),
                  Format("%lld", static_cast<long long>(r.kb_sent))});
    const std::string base = slug;
    report.Metric(base + ".latency", r.avg_latency_ms, "ms");
    report.Metric(base + ".diff_cpu", r.diff_cpu_s, "s");
    report.Metric(base + ".kb_sent", r.kb_sent, "KB");
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\nThe pull model pays half a poll interval on average before the server even\n"
              "learns it should send, plus a full-framebuffer delta scan per request - the\n"
              "paper's explanation for VNC feeling sluggish on the same fast network.\n");
  return 0;
}
