// Figure 11: sharing the interconnection fabric (Section 6.2).
//
// The paper's three-machine setup: a server whose switch link carries both the measured
// yardstick traffic (64 B up, 1200 B down, 150 ms think) and trace-driven background SLIM
// traffic toward a sink. Paper regimes: round-trip delay stays flat until the shared link
// approaches saturation; usable until ~30 ms RTT; tolerable counts of roughly 130-140
// Photoshop/Netscape users or 400-450 FrameMaker/PIM users — an order of magnitude beyond
// the processor's limits.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/loadgen/loadgen.h"
#include "src/util/table.h"

namespace slim {
namespace {

struct IfResult {
  double rtt_ms = 0;
  int64_t timeouts = 0;
  double offered_mbps = 0;
};

IfResult MeasureRtt(AppKind kind, int users, SimDuration horizon, uint64_t seed) {
  Simulator sim;
  Fabric fabric(&sim, {});  // 100 Mbps switched ethernet
  const NodeId server = fabric.AddNode();
  const NodeId sink = fabric.AddNode();
  const NodeId probe = fabric.AddNode();
  InstallEchoResponder(&fabric, server);
  Rng rng(seed);
  std::vector<std::unique_ptr<TrafficGenerator>> gens;
  gens.reserve(static_cast<size_t>(users));
  for (int i = 0; i < users; ++i) {
    gens.push_back(std::make_unique<TrafficGenerator>(
        &sim, &fabric, server, sink, SynthesizeProfile(kind, horizon, rng.Split()),
        rng.Split()));
    gens.back()->Start();
  }
  NetYardstick yardstick(&sim, &fabric, probe, server);
  yardstick.Start();
  sim.RunUntil(horizon);
  IfResult result;
  result.rtt_ms = yardstick.AverageRttMs();
  result.timeouts = yardstick.timeouts();
  int64_t offered = 0;
  for (const auto& g : gens) {
    offered += g->bytes_offered();
  }
  result.offered_mbps = static_cast<double>(offered) * 8.0 / ToSeconds(horizon) / 1e6;
  return result;
}

}  // namespace
}  // namespace slim

int main() {
  using namespace slim;
  PrintHeader("Figure 11 - Round-trip latency vs users sharing the IF",
              "Schmidt et al., SOSP'99, Figure 11");
  // SLIM_TRACE=<path.json> captures the run as a Chrome trace (chrome://tracing,
  // Perfetto); zero cost when unset.
  ScopedTraceFromEnv trace;
  BenchReporter report("fig11_if_sharing", "Round-trip latency vs users sharing the IF");
  const SimDuration horizon = Seconds(EnvInt("SLIM_SECONDS", 60));

  struct Sweep {
    AppKind kind;
    std::vector<int> counts;
    const char* paper_knee;
  };
  const Sweep sweeps[] = {
      {AppKind::kPhotoshop, {25, 50, 75, 100, 125, 150, 175}, "130-140"},
      {AppKind::kNetscape, {25, 50, 75, 100, 125, 150, 175}, "130-140"},
      {AppKind::kFrameMaker, {100, 200, 300, 400, 500, 600}, "400-450"},
      {AppKind::kPim, {100, 200, 300, 400, 500, 600}, "400-450"},
  };
  for (const Sweep& sweep : sweeps) {
    TextTable table({"users", "offered Mbps", "avg RTT", "timeouts"});
    int knee = 0;
    for (const int users : sweep.counts) {
      const IfResult r =
          MeasureRtt(sweep.kind, users, horizon, 0x11f + static_cast<uint64_t>(users));
      if (knee == 0 && (r.rtt_ms >= 30.0 || r.timeouts > 5)) {
        knee = users;
      }
      table.AddRow({Format("%d", users), Format("%.1f", r.offered_mbps),
                    Format("%.2f ms", r.rtt_ms),
                    Format("%lld", static_cast<long long>(r.timeouts))});
      std::fprintf(stderr, "[fig11] %s %d users done\n", AppKindName(sweep.kind), users);
    }
    std::printf("\n%s (paper knee: %s users at ~30 ms RTT / packet loss)\n%s",
                AppKindName(sweep.kind), sweep.paper_knee, table.Render().c_str());
    if (knee > 0) {
      std::printf("RTT/loss knee near %d users.\n", knee);
    } else {
      std::printf("No knee inside the sweep.\n");
    }
    report.Metric(std::string(AppKindName(sweep.kind)) + ".knee_users",
                  static_cast<int64_t>(knee), "users");
  }
  return 0;
}
