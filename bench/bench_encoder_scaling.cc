// Real-hardware encode scaling: wall-clock speedup of EncoderPool over the serial encoder
// at 1/2/4/8 threads.
//
// The figure harnesses replay the paper's *simulated* SMP scaling (Figure 10); this one
// measures what the worker pool actually buys on the host CPU, so the BENCH json
// trajectory records real scaling next to the modeled curve. Content is the mixed screen
// the encoder sees in practice — photo blocks (SET), text-like bicolor patches (BITMAP),
// and solid panels (FILL) — over full-frame damage.
//
// Knobs: SLIM_ENCODE_REPS (timed encodes per thread count, default 9),
// SLIM_ENCODE_WIDTH/HEIGHT (frame size, default 1280x1024). Each configuration reports its
// best-of-reps wall time and the speedup over the 1-thread pool; expect >= 1.5x at 4
// threads on a >= 4-core host, and ~1x on a single-core container (the pool costs almost
// nothing when it cannot win).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "src/apps/content.h"
#include "src/codec/parallel.h"
#include "src/obs/bench_report.h"
#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace slim {
namespace {

Framebuffer MakeMixedScreen(int32_t width, int32_t height) {
  Rng rng(42);
  Framebuffer fb(width, height, MakePixel(238, 238, 238));
  // A photo pane on the left (SET traffic), a text pane on the right (BITMAP traffic),
  // solid panels elsewhere (FILL traffic) — roughly a browser next to an image editor.
  const Rect photo{0, 0, width / 2, height * 2 / 3};
  fb.SetPixels(photo, MakePhotoBlock(&rng, photo.w, photo.h));
  for (int32_t y = height / 8; y < height * 7 / 8; ++y) {
    for (int32_t x = width / 2 + 8; x < width - 8; ++x) {
      if (rng.NextBool(0.25)) {
        fb.PutPixel(x, y, kBlack);
      }
    }
  }
  fb.Fill(Rect{0, height * 2 / 3, width / 2, height / 3}, MakePixel(60, 80, 120));
  return fb;
}

double BestEncodeMillis(EncoderPool* pool, const Framebuffer& fb, const Region& damage,
                        int reps) {
  double best = 0;
  for (int rep = 0; rep <= reps; ++rep) {  // rep 0 is an untimed warmup
    const auto start = std::chrono::steady_clock::now();
    const std::vector<DisplayCommand> cmds = pool->EncodeDamage(fb, damage);
    const auto stop = std::chrono::steady_clock::now();
    SLIM_CHECK(!cmds.empty());
    const double ms = std::chrono::duration<double, std::milli>(stop - start).count();
    if (rep > 0 && (best == 0 || ms < best)) {
      best = ms;
    }
  }
  return best;
}

}  // namespace
}  // namespace slim

int main() {
  using namespace slim;
  const int reps = EnvInt("SLIM_ENCODE_REPS", 9);
  const int32_t width = EnvInt("SLIM_ENCODE_WIDTH", 1280);
  const int32_t height = EnvInt("SLIM_ENCODE_HEIGHT", 1024);

  // SLIM_TRACE=<path.json> captures the run as a Chrome trace (chrome://tracing,
  // Perfetto); zero cost when unset.
  ScopedTraceFromEnv trace;
  BenchReporter report("encoder_scaling",
                       "Wall-clock encode speedup of the band-parallel worker pool");
  report.Knob("SLIM_ENCODE_REPS", reps);
  report.Knob("SLIM_ENCODE_WIDTH", width);
  report.Knob("SLIM_ENCODE_HEIGHT", height);

  const Framebuffer fb = MakeMixedScreen(width, height);
  const Region damage(fb.bounds());
  const int64_t pixels = fb.bounds().area();

  std::printf("Encoder scaling, %dx%d mixed screen, best of %d encodes:\n", width, height,
              reps);
  double serial_ms = 0;
  for (const int threads : {1, 2, 4, 8}) {
    EncoderOptions options;
    options.threads = threads;
    EncoderPool pool(options);
    const double ms = BestEncodeMillis(&pool, fb, damage, reps);
    if (threads == 1) {
      serial_ms = ms;
    }
    const double speedup = ms > 0 ? serial_ms / ms : 0;
    const double mpix_s = ms > 0 ? static_cast<double>(pixels) / (ms * 1000.0) : 0;
    std::printf("  %d thread%s  %8.2f ms  %7.1f Mpix/s  speedup %.2fx\n", threads,
                threads == 1 ? " " : "s", ms, mpix_s, speedup);
    const std::string prefix = "encode." + std::to_string(threads) + "t.";
    report.Metric(prefix + "best_ms", ms, "ms");
    report.Metric(prefix + "throughput", mpix_s, "Mpix/s");
    report.Metric(prefix + "speedup", speedup, "x");
  }
  return report.Write() ? 0 : 1;
}
