// Ablation: how much each encoder heuristic and design choice contributes (DESIGN.md §5).
//
//   1. Command-selection heuristics: disable FILL / BITMAP detection and re-measure the
//      compression of a realistic screen (Figure 4's result depends on them).
//   2. Band height / chunk width: the damage-analysis granularity trade-off.
//   3. CSCS depth: bandwidth vs decode cost for a video frame.
//   4. Transport: NACK recovery on a lossy link vs no recovery.
//   5. Console bandwidth allocator: paper's ascending+fair-share vs naive equal split.
//   6. Section 5.4 future work: command batching + header compression on a modem link.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/content.h"
#include "src/apps/font.h"
#include "src/codec/encoder.h"
#include "src/console/bandwidth.h"
#include "src/console/cost_model.h"
#include "src/net/transport.h"
#include "src/sim/simulator.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace slim {
namespace {

// A realistic mixed screen: UI chrome, text panes, photos.
Framebuffer MakeMixedScreen() {
  Framebuffer fb(1024, 768, UiBackground());
  Rng rng(42);
  fb.Fill(Rect{0, 0, 1024, 32}, UiPanel());
  const Font& font = DefaultFont();
  for (int line = 0; line < 24; ++line) {
    const std::string text = MakeTextLine(&rng, 70);
    int32_t x = 24;
    for (const char c : text) {
      const GlyphBitmap& glyph = font.Glyph(c);
      fb.ExpandBitmap(Rect{x, 64 + line * font.line_height(), glyph.width, glyph.height},
                      glyph.bits, UiText(), kWhite);
      x += glyph.width;
    }
  }
  fb.SetPixels(Rect{640, 80, 320, 240}, MakePhotoBlock(&rng, 320, 240));
  fb.SetPixels(Rect{640, 360, 280, 200}, MakeArtBlock(&rng, 280, 200));
  return fb;
}

void EncoderHeuristicAblation(BenchReporter* report) {
  std::printf("\n1) Encoder command-selection heuristics (1024x768 mixed screen)\n");
  const Framebuffer screen = MakeMixedScreen();
  TextTable table({"configuration", "commands", "KB on wire", "compression"});
  struct Config {
    const char* name;
    const char* slug;
    bool fill;
    bool bitmap;
  };
  for (const Config& config : {Config{"full encoder", "full", true, true},
                               Config{"no BITMAP detection", "no_bitmap", true, false},
                               Config{"no FILL detection", "no_fill", false, true},
                               Config{"SET only (raw pixels)", "set_only", false, false}}) {
    EncoderOptions options;
    options.enable_fill = config.fill;
    options.enable_bitmap = config.bitmap;
    Encoder encoder(options);
    std::vector<DisplayCommand> cmds;
    encoder.EncodeRect(screen, screen.bounds(), &cmds);
    int64_t wire = 0;
    for (const auto& cmd : cmds) {
      wire += static_cast<int64_t>(WireSize(cmd));
    }
    const int64_t raw = screen.bounds().area() * 3;
    table.AddRow({config.name, Format("%zu", cmds.size()), Format("%lld", wire / 1024),
                  Format("%.1fx", static_cast<double>(raw) / static_cast<double>(wire))});
    report->Metric(std::string("encoder.") + config.slug + ".compression",
                   static_cast<double>(raw) / static_cast<double>(wire), "ratio");
  }
  std::printf("%s", table.Render().c_str());
}

void GranularityAblation() {
  std::printf("\n2) Damage-analysis granularity (band height x chunk width)\n");
  const Framebuffer screen = MakeMixedScreen();
  TextTable table({"band x chunk", "commands", "KB on wire"});
  for (const int32_t band : {8, 32, 128}) {
    for (const int32_t chunk : {32, 64, 256}) {
      EncoderOptions options;
      options.band_height = band;
      options.chunk_width = chunk;
      Encoder encoder(options);
      std::vector<DisplayCommand> cmds;
      encoder.EncodeRect(screen, screen.bounds(), &cmds);
      int64_t wire = 0;
      for (const auto& cmd : cmds) {
        wire += static_cast<int64_t>(WireSize(cmd));
      }
      table.AddRow({Format("%dx%d", band, chunk), Format("%zu", cmds.size()),
                    Format("%lld", wire / 1024)});
    }
  }
  std::printf("%s", table.Render().c_str());
}

void CscsDepthAblation() {
  std::printf("\n3) CSCS depth: bandwidth vs console decode time (320x240 frame)\n");
  const ConsoleCostModel model;
  TextTable table({"depth", "KB/frame", "Mbps @24fps", "cold decode", "warm decode"});
  for (const CscsDepth depth : {CscsDepth::k16, CscsDepth::k12, CscsDepth::k8, CscsDepth::k6,
                                CscsDepth::k5}) {
    CscsCommand cmd;
    cmd.src_w = 320;
    cmd.src_h = 240;
    cmd.dst = Rect{0, 0, 320, 240};
    cmd.depth = depth;
    cmd.payload.assign(CscsPayloadBytes(320, 240, depth), 0);
    const auto bytes = static_cast<int64_t>(cmd.payload.size());
    table.AddRow({Format("%d bpp", BitsPerPixel(depth)), Format("%lld", bytes / 1024),
                  Format("%.1f", bytes * 8.0 * 24 / 1e6),
                  Format("%.1f ms", ToMillis(model.CostOf(DisplayCommand(cmd)))),
                  Format("%.1f ms", ToMillis(model.StreamingCscsCost(cmd)))});
  }
  std::printf("%s", table.Render().c_str());
}

void NackAblation(BenchReporter* report) {
  std::printf("\n4) Transport recovery on a 5%%-loss link (per direction)\n");
  TextTable table({"configuration", "delivered / 400", "replays"});
  for (const bool nack : {true, false}) {
    Simulator sim;
    FabricOptions options;
    options.link.loss_probability = 0.05;
    Fabric fabric(&sim, options);
    SlimEndpoint a(&fabric, fabric.AddNode());
    EndpointOptions receiver_options;
    receiver_options.enable_nack = nack;
    SlimEndpoint b(&fabric, fabric.AddNode(), receiver_options);
    int received = 0;
    b.set_handler([&](const Message&, NodeId) { ++received; });
    std::function<void(int)> send_next = [&](int i) {
      if (i >= 400) {
        return;
      }
      a.Send(b.node(), 1, PingMsg{static_cast<uint64_t>(i)});
      sim.Schedule(Milliseconds(2), [&, i] { send_next(i + 1); });
    };
    send_next(0);
    sim.Run();
    table.AddRow({nack ? "NACK + idempotent replay" : "no recovery",
                  Format("%d", received),
                  Format("%lld", static_cast<long long>(a.stats().replays_sent))});
    report->Metric(nack ? "transport.nack.delivered" : "transport.no_recovery.delivered",
                   int64_t{received}, "messages");
  }
  std::printf("%s", table.Render().c_str());
}

void AllocatorAblation() {
  std::printf("\n5) Console bandwidth allocation: paper policy vs naive equal split\n");
  // One interactive window (2 Mbps) plus two greedy video streams (60 Mbps each).
  const std::vector<BandwidthRequest> requests{{1, 2'000'000}, {2, 60'000'000},
                                               {3, 60'000'000}};
  const auto paper = AllocateBandwidth(requests, 100'000'000);
  TextTable table({"flow", "requested", "paper policy", "naive equal split"});
  for (size_t i = 0; i < requests.size(); ++i) {
    int64_t paper_grant = 0;
    for (const auto& g : paper) {
      if (g.flow_id == requests[i].flow_id) {
        paper_grant = g.bits_per_second;
      }
    }
    table.AddRow({Format("%llu", static_cast<unsigned long long>(requests[i].flow_id)),
                  Format("%.1f Mbps", requests[i].bits_per_second / 1e6),
                  Format("%.1f Mbps", paper_grant / 1e6),
                  Format("%.1f Mbps", 100.0 / 3.0)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("The paper's policy satisfies the interactive window in full; the naive split\n"
              "wastes %.1f Mbps on it while starving the streams no further.\n",
              100.0 / 3.0 - 2.0);
}

void BatchingAblation(BenchReporter* report) {
  std::printf("\n6) Section 5.4 future work: batching + header compression on a 56 Kbps link\n");
  // A typing-echo workload: 4 glyph updates per second for 30 s over a modem-speed link.
  TextTable table({"configuration", "bytes on wire", "avg delivery delay"});
  for (const bool batching : {false, true}) {
    Simulator sim;
    FabricOptions options;
    options.link.bits_per_second = 56'000;
    Fabric fabric(&sim, options);
    EndpointOptions endpoint_options;
    endpoint_options.enable_batching = batching;
    endpoint_options.batch_delay = Milliseconds(20);
    SlimEndpoint server(&fabric, fabric.AddNode(), endpoint_options);
    SlimEndpoint console(&fabric, fabric.AddNode());
    RunningStats delay;
    SimTime sent_at = 0;
    console.set_handler([&](const Message&, NodeId) {
      delay.Add(ToMillis(sim.now() - sent_at));
    });
    for (int i = 0; i < 120; ++i) {
      sim.RunUntil(sim.now() + Milliseconds(250));
      sent_at = sim.now();
      // A keystroke echo: cursor fill + glyph bitmap.
      server.Send(console.node(), 1, FillCommand{Rect{i % 64 * 8, 100, 2, 13}, kBlack});
      BitmapCommand glyph;
      glyph.dst = Rect{i % 64 * 8, 100, 8, 13};
      glyph.bits.assign(13, 0x5a);
      server.Send(console.node(), 1, glyph);
    }
    sim.Run();
    table.AddRow({batching ? "batching + compressed headers" : "one datagram per command",
                  Format("%lld", static_cast<long long>(
                                     fabric.uplink_stats(server.node()).bytes_sent)),
                  Format("%.1f ms", delay.mean())});
    report->Metric(batching ? "modem.batched.wire_bytes" : "modem.unbatched.wire_bytes",
                   fabric.uplink_stats(server.node()).bytes_sent, "bytes");
  }
  std::printf("%s", table.Render().c_str());
  std::printf("The paper predicted these optimizations \"could have a dramatic effect\" on\n"
              "low-bandwidth links; the framing overhead is nearly halved.\n");
}

}  // namespace
}  // namespace slim

int main() {
  using namespace slim;
  PrintHeader("Ablations - encoder heuristics, granularity, CSCS depth, transport, allocator",
              "DESIGN.md section 5 (design-choice index)");
  // SLIM_TRACE=<path.json> captures the run as a Chrome trace (chrome://tracing,
  // Perfetto); zero cost when unset.
  ScopedTraceFromEnv trace;
  BenchReporter report("ablation_encoder",
                       "Encoder heuristics, granularity, CSCS depth, transport, allocator");
  EncoderHeuristicAblation(&report);
  GranularityAblation();
  CscsDepthAblation();
  NackAblation(&report);
  AllocatorAblation();
  BatchingAblation(&report);
  return 0;
}
