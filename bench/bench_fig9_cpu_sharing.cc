// Figure 9: average latency added to the 30 ms yardstick burst as simulated active users
// share one CPU (Section 6.1).
//
// The yardstick consumes 30 ms of CPU then thinks for 150 ms; trace-driven load generators
// replay per-application resource profiles (CPU + memory). Paper regimes: added latency
// grows with user count; at the ~100 ms "noticeably poor" threshold the tolerable counts
// are roughly 10-12 Photoshop, 12-14 Netscape, 16-18 FrameMaker, or 34-36 PIM users —
// well past 100% nominal CPU demand, thanks to interactive priority decay.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/loadgen/loadgen.h"
#include "src/util/table.h"

namespace slim {
namespace {

double AddedLatencyMs(AppKind kind, int users, int cpus, SimDuration horizon,
                      uint64_t seed) {
  Simulator sim;
  SchedulerOptions options;
  options.cpus = cpus;
  options.ram_bytes = 4LL * 1024 * 1024 * 1024;  // the paper's E4500 configuration
  MpScheduler sched(&sim, options);
  Rng rng(seed);
  std::vector<std::unique_ptr<LoadGeneratorProcess>> procs;
  procs.reserve(static_cast<size_t>(users));
  for (int i = 0; i < users; ++i) {
    procs.push_back(std::make_unique<LoadGeneratorProcess>(
        &sim, &sched, SynthesizeProfile(kind, horizon, rng.Split()), rng.Split()));
    procs.back()->Start();
  }
  CpuYardstick yardstick(&sim, &sched);
  yardstick.Start();
  sim.RunUntil(horizon);
  return yardstick.AverageAddedLatencyMs();
}

}  // namespace
}  // namespace slim

int main() {
  using namespace slim;
  PrintHeader("Figure 9 - Added yardstick latency vs active users (1 CPU)",
              "Schmidt et al., SOSP'99, Figure 9");
  // SLIM_TRACE=<path.json> captures the run as a Chrome trace (chrome://tracing,
  // Perfetto); zero cost when unset.
  ScopedTraceFromEnv trace;
  BenchReporter report("fig9_cpu_sharing", "Added yardstick latency vs active users");
  const SimDuration horizon = Seconds(EnvInt("SLIM_SECONDS", 60));

  const int counts[] = {0, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 48};
  TextTable table({"users", "Photoshop", "Netscape", "FrameMaker", "PIM"});
  double knee[kAppKindCount] = {0, 0, 0, 0};
  for (const int users : counts) {
    std::vector<std::string> row{Format("%d", users)};
    for (int k = 0; k < kAppKindCount; ++k) {
      const double ms =
          AddedLatencyMs(static_cast<AppKind>(k), users, 1, horizon, 0x916 + users * 7 + k);
      if (knee[k] == 0 && ms >= 100.0) {
        knee[k] = users;
      }
      row.push_back(Format("%.1f ms", ms));
    }
    table.AddRow(row);
    std::fprintf(stderr, "[fig9] %d users done\n", users);
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\nFirst user count with added latency >= 100 ms (paper knees: "
              "PS 10-12, NS 12-14, FM 16-18, PIM 34-36):\n");
  for (int k = 0; k < kAppKindCount; ++k) {
    std::printf("  %-11s %s\n", AppKindName(static_cast<AppKind>(k)),
                knee[k] > 0 ? Format("~%d users", static_cast<int>(knee[k])).c_str()
                            : "beyond sweep");
    report.Metric(std::string(AppKindName(static_cast<AppKind>(k))) + ".knee_users",
                  knee[k], "users");
  }
  return 0;
}
