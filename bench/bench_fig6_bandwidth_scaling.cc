// Figure 6: added packet delays when Netscape protocol traces captured at 100 Mbps are
// retransmitted over lower-bandwidth links (Section 5.4).
//
// Paper regimes: at 10 Mbps added delays stay below 5 ms; at 1-2 Mbps they approach 50 ms
// (noticeable but acceptable); at 56-128 Kbps they blow past 100 ms (unusably slow). The
// method matches the paper, including its footnote that "bandwidth is averaged over 50 ms
// intervals": each user's packet train is shaped by a token bucket that releases
// bandwidth*50ms bytes per window, so a burst that fits one window passes undelayed and
// anything larger spills into later windows. Each user session (a home connection) is
// shaped independently.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/net/fabric.h"
#include "src/util/histogram.h"
#include "src/util/table.h"

namespace slim {
namespace {

struct Packet {
  SimTime at = 0;
  int64_t bytes = 0;
};

std::vector<Packet> PacketizeLog(const ProtocolLog& log) {
  std::vector<Packet> packets;
  for (const LogEntry& entry : log.entries()) {
    if (entry.kind != LogKind::kDisplay) {
      continue;
    }
    int64_t remaining = entry.wire_bytes;
    while (remaining > 0) {
      const int64_t chunk = std::min<int64_t>(remaining, kMtuBytes);
      packets.push_back({entry.time, chunk + kDatagramOverheadBytes});
      remaining -= chunk;
    }
  }
  return packets;
}

// Token-bucket shaper, 50 ms averaging windows: window k (starting at k*50ms) releases
// bps*50ms bytes; a packet completes in the first window with spare capacity at or after
// its arrival. Returns per-packet delays (completion - arrival).
std::vector<SimDuration> QueueDelays(const std::vector<Packet>& packets, int64_t bps) {
  constexpr SimDuration kWindow = Milliseconds(50);
  const int64_t window_bytes = std::max<int64_t>(1, bps / 8 * 50 / 1000);
  std::vector<SimDuration> delays;
  delays.reserve(packets.size());
  int64_t window_index = 0;
  int64_t window_used = 0;
  for (const Packet& p : packets) {
    const int64_t arrival_window = p.at / kWindow;
    if (arrival_window > window_index) {
      window_index = arrival_window;
      window_used = 0;
    }
    int64_t remaining = p.bytes;
    while (remaining > 0) {
      const int64_t take = std::min(remaining, window_bytes - window_used);
      remaining -= take;
      window_used += take;
      if (window_used >= window_bytes && remaining > 0) {
        ++window_index;
        window_used = 0;
      }
    }
    // The packet's last byte leaves part-way through window_index.
    const SimTime done =
        window_index * kWindow +
        static_cast<SimDuration>(static_cast<double>(window_used) /
                                 static_cast<double>(window_bytes) *
                                 static_cast<double>(kWindow));
    delays.push_back(std::max<SimDuration>(0, done - p.at));
  }
  return delays;
}

}  // namespace
}  // namespace slim

int main() {
  using namespace slim;
  PrintHeader("Figure 6 - Added packet delays at reduced link bandwidth (Netscape)",
              "Schmidt et al., SOSP'99, Figure 6 / Section 5.4");
  // SLIM_TRACE=<path.json> captures the run as a Chrome trace (chrome://tracing,
  // Perfetto); zero cost when unset.
  ScopedTraceFromEnv trace;
  BenchReporter report("fig6_bandwidth_scaling",
                       "Added packet delays at reduced link bandwidth");

  // Capture Netscape traces at 100 Mbps; each user's connection is shaped independently
  // (the home-connection scenario the paper simulates).
  std::vector<std::vector<Packet>> per_user;
  size_t total_packets = 0;
  for (const auto& session : RunStudyFor(AppKind::kNetscape)) {
    per_user.push_back(PacketizeLog(session.log));
    total_packets += per_user.back().size();
  }
  std::vector<std::vector<SimDuration>> base;
  base.reserve(per_user.size());
  for (const auto& packets : per_user) {
    base.push_back(QueueDelays(packets, 100'000'000));
  }

  TextTable table({"Bandwidth", "p50 added", "p90 added", "p99 added", ">50ms", ">100ms",
                   "verdict (paper)"});
  struct Level {
    const char* name;
    const char* slug;  // for BENCH json metric names
    int64_t bps;
    const char* verdict;
  };
  const Level levels[] = {
      {"10 Mbps", "10mbps", 10'000'000, "indistinguishable (<5ms)"},
      {"2 Mbps", "2mbps", 2'000'000, "good, occasional hiccups"},
      {"1 Mbps", "1mbps", 1'000'000, "acceptable (~50ms)"},
      {"128 Kbps", "128kbps", 128'000, "unacceptable (>100ms)"},
      {"56 Kbps", "56kbps", 56'000, "painful"},
  };
  for (const Level& level : levels) {
    Histogram cdf(0.0, 60'000.0, 0.01);  // added delay in ms, paper's 0.01 ms buckets
    int64_t over_50 = 0;
    int64_t over_100 = 0;
    int64_t pace_delayed = 0;  // packets the shaper actually held, as in txq.pace_delayed
    int64_t n = 0;
    for (size_t u = 0; u < per_user.size(); ++u) {
      const std::vector<SimDuration> delays = QueueDelays(per_user[u], level.bps);
      for (size_t i = 0; i < delays.size(); ++i) {
        const double added_ms = ToMillis(delays[i] - base[u][i]);
        cdf.Add(added_ms);
        over_50 += added_ms > 50.0 ? 1 : 0;
        over_100 += added_ms > 100.0 ? 1 : 0;
        pace_delayed += added_ms > 0.0 ? 1 : 0;
        ++n;
      }
    }
    const auto pct = [&](int64_t count) {
      return Format("%.1f%%", 100.0 * static_cast<double>(count) / static_cast<double>(n));
    };
    table.AddRow({level.name, Format("%.2f ms", cdf.InverseCdf(0.50)),
                  Format("%.2f ms", cdf.InverseCdf(0.90)),
                  Format("%.2f ms", cdf.InverseCdf(0.99)), pct(over_50), pct(over_100),
                  level.verdict});
    const std::string slug = level.slug;
    report.Metric(slug + ".p50_added", cdf.InverseCdf(0.50), "ms");
    report.Metric(slug + ".p99_added", cdf.InverseCdf(0.99), "ms");
    report.Metric(slug + ".over_100ms",
                  100.0 * static_cast<double>(over_100) / static_cast<double>(n), "percent");
    report.Metric(slug + ".pace_delayed", pace_delayed, "count");
  }
  std::printf("Replayed %zu packets from the captured Netscape traces.\n\n%s",
              total_packets, table.Render().c_str());
  return 0;
}
