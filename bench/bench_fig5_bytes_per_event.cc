// Figure 5: cumulative distributions of SLIM protocol data transmitted per input event.
//
// Paper regimes: a 50 KB update costs only 3.8 ms on a 100 Mbps IF; only ~25% of
// Photoshop/Netscape events need more than 10 KB and only ~5% more than 50 KB; for
// FrameMaker/PIM only ~17% of events need more than 1 KB and ~2% more than 10 KB.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/util/histogram.h"
#include "src/util/table.h"

int main() {
  using namespace slim;
  PrintHeader("Figure 5 - CDF of SLIM protocol bytes per input event",
              "Schmidt et al., SOSP'99, Figure 5");
  // SLIM_TRACE=<path.json> captures the run as a Chrome trace (chrome://tracing,
  // Perfetto); zero cost when unset.
  ScopedTraceFromEnv trace;
  BenchReporter report("fig5_bytes_per_event", "CDF of SLIM protocol bytes per input event");

  TextTable table({"Application", "median B", ">1KB (FM/PIM ~17%)", ">10KB (NS/PS ~25%)",
                   ">50KB (NS/PS ~5%)", "p95 tx delay @100Mbps"});
  for (int k = 0; k < kAppKindCount; ++k) {
    const auto kind = static_cast<AppKind>(k);
    Histogram cdf(0.0, 2e6, 64.0);
    for (const auto& session : RunStudyFor(kind)) {
      for (const auto& update : session.log.AttributeToEvents()) {
        cdf.Add(static_cast<double>(update.slim_bytes));
      }
    }
    const double p95_bytes = cdf.InverseCdf(0.95);
    table.AddRow({AppKindName(kind), Format("%.0f", cdf.InverseCdf(0.5)),
                  Format("%.1f%%", 100.0 * (1.0 - cdf.CdfAt(1'000.0))),
                  Format("%.1f%%", 100.0 * (1.0 - cdf.CdfAt(10'000.0))),
                  Format("%.1f%%", 100.0 * (1.0 - cdf.CdfAt(50'000.0))),
                  Format("%.2f ms", ToMillis(TransmissionDelay(
                                        static_cast<int64_t>(p95_bytes), 100'000'000)))});
    const std::string app = AppKindName(kind);
    report.Metric(app + ".median_bytes", cdf.InverseCdf(0.5), "bytes");
    report.Metric(app + ".over_10kb", 100.0 * (1.0 - cdf.CdfAt(10'000.0)), "percent");
    report.Metric(app + ".p95_tx_delay",
                  ToMillis(TransmissionDelay(static_cast<int64_t>(p95_bytes), 100'000'000)),
                  "ms");
    std::printf("\n%s CDF (bytes -> cumulative fraction):\n%s", AppKindName(kind),
                cdf.CdfSeries(24).c_str());
  }
  std::printf("\n%s", table.Render().c_str());
  std::printf("\nA 50KB update costs %.1f ms of transmission at 100 Mbps (paper: 3.8 ms).\n",
              ToMillis(TransmissionDelay(50'000, 100'000'000)));
  return 0;
}
