// Figure 7: cumulative distributions of display-update service times on the console.
//
// Service time runs from the arrival of an update's first command at the console to the
// completion of its last (queueing + Table 5 decode costs). Paper regimes: ~80% of updates
// complete within 50 ms (below the threshold of perception); only a small tail exceeds
// 100 ms, and those correspond to the largest display changes.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/util/histogram.h"
#include "src/util/table.h"

int main() {
  using namespace slim;
  PrintHeader("Figure 7 - CDF of display update service times at the console",
              "Schmidt et al., SOSP'99, Figure 7");
  // SLIM_TRACE=out.json captures the full pipeline (input dispatch -> render/encode ->
  // transport -> console decode/present) as a Chrome trace across every study session.
  ScopedTraceFromEnv trace;
  BenchReporter report("fig7_service_times",
                       "CDF of display update service times at the console");

  TextTable table({"Application", "updates", "median", "<50ms (paper ~80%+)", ">100ms",
                   "p99"});
  for (int k = 0; k < kAppKindCount; ++k) {
    const auto kind = static_cast<AppKind>(k);
    Histogram cdf(0.0, 500.0, 0.1);  // ms, paper's 0.1 ms buckets
    for (const auto& session : RunStudyFor(kind)) {
      for (const double ms : UpdateServiceTimesMs(session.console_log)) {
        cdf.Add(ms);
      }
    }
    table.AddRow({AppKindName(kind), Format("%lld", static_cast<long long>(cdf.total_count())),
                  Format("%.2f ms", cdf.InverseCdf(0.5)),
                  Format("%.1f%%", 100.0 * cdf.CdfAt(50.0)),
                  Format("%.2f%%", 100.0 * (1.0 - cdf.CdfAt(100.0))),
                  Format("%.1f ms", cdf.InverseCdf(0.99))});
    const std::string app = AppKindName(kind);
    report.Metric(app + ".updates", cdf.total_count(), "count");
    report.Metric(app + ".median_service", cdf.InverseCdf(0.5), "ms");
    report.Metric(app + ".under_50ms", 100.0 * cdf.CdfAt(50.0), "percent");
    report.Metric(app + ".p99_service", cdf.InverseCdf(0.99), "ms");
    std::printf("\n%s CDF (ms -> cumulative fraction):\n%s", AppKindName(kind),
                cdf.CdfSeries(24).c_str());
  }
  std::printf("\n%s", table.Render().c_str());
  return 0;
}
