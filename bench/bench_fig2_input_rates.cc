// Figure 2: cumulative distributions of user input event frequency.
//
// Paper regimes: <1% of events above 28 Hz for every application; ~70% of events below
// 10 Hz; Netscape/Photoshop show a substantially larger share of events at least one second
// apart than FrameMaker/PIM. Input events are keystrokes and mouse clicks; the histogram
// bucket matches the paper's 0.005 events/sec.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/util/histogram.h"
#include "src/util/table.h"

int main() {
  using namespace slim;
  PrintHeader("Figure 2 - CDF of user input event frequency",
              "Schmidt et al., SOSP'99, Figure 2");
  // SLIM_TRACE=<path.json> captures the run as a Chrome trace (chrome://tracing,
  // Perfetto); zero cost when unset.
  ScopedTraceFromEnv trace;
  BenchReporter report("fig2_input_rates", "CDF of user input event frequency");

  TextTable table({"Application", "events", ">28Hz (paper <1%)", "<10Hz (paper ~70%)",
                   ">=1s apart (NS/PS >> FM/PIM)", "median Hz"});
  for (int k = 0; k < kAppKindCount; ++k) {
    const auto kind = static_cast<AppKind>(k);
    Histogram cdf(0.0, 40.0, 0.005);  // events/sec, paper's bucket width
    int64_t total = 0;
    int64_t slow = 0;
    for (const auto& session : RunStudyFor(kind)) {
      for (const double interval : session.log.InputIntervalsSeconds()) {
        if (interval <= 0) {
          continue;
        }
        cdf.Add(1.0 / interval);
        ++total;
        if (interval >= 1.0) {
          ++slow;
        }
      }
    }
    table.AddRow({AppKindName(kind), Format("%lld", static_cast<long long>(total)),
                  Format("%.2f%%", 100.0 * (1.0 - cdf.CdfAt(28.0))),
                  Format("%.1f%%", 100.0 * cdf.CdfAt(10.0)),
                  Format("%.1f%%", 100.0 * static_cast<double>(slow) /
                                       static_cast<double>(total)),
                  Format("%.2f", cdf.InverseCdf(0.5))});
    const std::string app = AppKindName(kind);
    report.Metric(app + ".events", total, "count");
    report.Metric(app + ".over_28hz", 100.0 * (1.0 - cdf.CdfAt(28.0)), "percent");
    report.Metric(app + ".under_10hz", 100.0 * cdf.CdfAt(10.0), "percent");
    report.Metric(app + ".median_rate", cdf.InverseCdf(0.5), "events/s");
    std::printf("\n%s CDF (events/sec -> cumulative fraction):\n%s", AppKindName(kind),
                cdf.CdfSeries(24).c_str());
  }
  std::printf("\n%s", table.Render().c_str());
  return 0;
}
