// Server-farm migration and failover costs (DESIGN.md §9).
//
// Three questions, all in simulated time on the deterministic fabric:
//   1. Blackout — how long is the user's screen dark during a cross-server hotdesk
//      (source freeze -> destination re-attach), at 0/1/10% fabric loss?
//   2. Checkpoint cost — how big is a session checkpoint blob versus the framebuffer it
//      carries, and how many bytes actually cross the wire for one handoff (pre-copy
//      rounds and loss-driven re-sends included)?
//   3. Failover — after the owning server is killed, how long until the user's desktop is
//      back on screen from the warm standby, at the same loss rates?
//
// Knobs: SLIM_MIG_REPS (worlds averaged per configuration, default 3), SLIM_MIG_WIDTH/
// SLIM_MIG_HEIGHT (session geometry, default 640x480). Each rep is an independent world
// (own simulator, fabric, pool) with rep-seeded screen content.

#include <cstdio>
#include <memory>
#include <vector>

#include "src/apps/content.h"
#include "src/console/console.h"
#include "src/net/fabric.h"
#include "src/obs/bench_report.h"
#include "src/obs/metrics.h"
#include "src/obs/stats_stream.h"
#include "src/obs/trace.h"
#include "src/server/checkpoint.h"
#include "src/server/migration.h"
#include "src/server/session.h"
#include "src/server/slim_server.h"
#include "src/sim/simulator.h"
#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/time.h"

namespace slim {
namespace {

struct Scale {
  int reps = 3;
  int32_t width = 640;
  int32_t height = 480;
};

// One self-contained pool world: two migration-enabled servers, one console homed on
// each, a card issued pool-wide.
struct World {
  explicit World(const Scale& scale) : fabric(&sim, {}) {
    ServerOptions server_options;
    server_options.session_width = scale.width;
    server_options.session_height = scale.height;
    ConsoleOptions console_options;
    console_options.width = scale.width;
    console_options.height = scale.height;
    server_a = std::make_unique<SlimServer>(&sim, &fabric, server_options);
    server_b = std::make_unique<SlimServer>(&sim, &fabric, server_options);
    manager_a = &server_a->EnableMigration(pool, MigrationOptions{});
    manager_b = &server_b->EnableMigration(pool, MigrationOptions{});
    console_a = std::make_unique<Console>(&sim, &fabric, console_options);
    console_b = std::make_unique<Console>(&sim, &fabric, console_options);
    card = pool.IssueCard(1);
    // SLIM_STATS_JSONL=<path> streams both servers' migration/checkpoint counters and
    // session-placement gauges for `slimtop -f` (each rep's world rewrites the file, so
    // the surviving stream is the last rep's).
    server_a->RegisterMetrics(&registry, "server_a");
    server_b->RegisterMetrics(&registry, "server_b");
    streamer = MaybeStreamStatsFromEnv(&sim, &registry);
  }

  // Attach at A and paint rep-seeded photo content edge to edge.
  uint64_t Populate(int rep) {
    console_a->InsertCard(server_a->node(), card);
    sim.RunFor(Milliseconds(300));
    ServerSession* session = server_a->SessionForCard(card);
    SLIM_CHECK(session != nullptr && session->attached());
    Rng rng(1000 + static_cast<uint64_t>(rep));
    const Framebuffer& fb = session->framebuffer();
    for (int32_t y = 0; y < fb.height(); y += 120) {
      for (int32_t x = 0; x < fb.width(); x += 160) {
        session->PutImage(Rect{x, y, 160, 120}, MakePhotoBlock(&rng, 160, 120));
      }
    }
    session->Flush();
    sim.RunFor(Seconds(2));
    SLIM_CHECK(session->framebuffer().ContentHash() ==
               console_a->framebuffer().ContentHash());
    return session->framebuffer().ContentHash();
  }

  void InjectLoss(double loss) {
    if (loss <= 0) {
      return;
    }
    FaultProfile lossy;
    lossy.loss = loss;
    lossy.delay_jitter = Milliseconds(1);
    const NodeId pairs[3][2] = {
        {server_a->node(), server_b->node()},
        {server_b->node(), console_b->node()},
        {console_b->node(), server_b->node()},
    };
    fabric.InjectFaults(pairs[0][0], pairs[0][1], lossy);
    fabric.InjectFaults(pairs[0][1], pairs[0][0], lossy);
    fabric.InjectFaults(pairs[1][0], pairs[1][1], lossy);
    fabric.InjectFaults(pairs[2][0], pairs[2][1], lossy);
  }

  // Tap the card at console B (like a user would, re-tapping while the screen is dark)
  // until the session is live there with the expected pixels. Returns sim-time elapsed.
  SimDuration ConvergeAtB(uint64_t content_hash) {
    const SimTime start = sim.now();
    for (int round = 0; round < 400; ++round) {
      ServerSession* moved = server_b->SessionForCard(card);
      if (moved == nullptr || !moved->attached() ||
          moved->console() != console_b->node()) {
        console_b->InsertCard(server_b->node(), card);
      }
      sim.RunFor(Milliseconds(100));
      moved = server_b->SessionForCard(card);
      if (moved != nullptr && moved->attached() &&
          moved->console() == console_b->node() &&
          console_b->framebuffer().ContentHash() == content_hash) {
        return sim.now() - start;
      }
    }
    SLIM_CHECK(false && "migration never converged");
    return 0;
  }

  Simulator sim;
  Fabric fabric;
  ServerPool pool;
  std::unique_ptr<SlimServer> server_a;
  std::unique_ptr<SlimServer> server_b;
  MigrationManager* manager_a = nullptr;
  MigrationManager* manager_b = nullptr;
  std::unique_ptr<Console> console_a;
  std::unique_ptr<Console> console_b;
  MetricRegistry registry;
  std::unique_ptr<SnapshotStreamer> streamer;
  uint64_t card = 0;
};

struct HandoffNumbers {
  double blackout_ms = 0;
  double converge_ms = 0;
  double wire_bytes = 0;
  double retries = 0;
};

HandoffNumbers MeasureHandoff(const Scale& scale, double loss) {
  HandoffNumbers sum;
  for (int rep = 0; rep < scale.reps; ++rep) {
    World world(scale);
    const uint64_t hash = world.Populate(rep);
    world.InjectLoss(loss);
    const SimDuration converge = world.ConvergeAtB(hash);
    SLIM_CHECK(world.manager_b->stats().installs == 1);
    sum.blackout_ms += ToMillis(world.manager_b->stats().blackout_last_ns);
    sum.converge_ms += ToMillis(converge);
    sum.wire_bytes += static_cast<double>(world.manager_a->stats().chunk_bytes_sent);
    sum.retries += static_cast<double>(world.manager_a->stats().retries +
                                       world.manager_b->stats().retries);
  }
  sum.blackout_ms /= scale.reps;
  sum.converge_ms /= scale.reps;
  sum.wire_bytes /= scale.reps;
  sum.retries /= scale.reps;
  return sum;
}

struct FailoverNumbers {
  double recovery_ms = 0;
  double standby_wire_bytes = 0;
};

FailoverNumbers MeasureFailover(const Scale& scale, double loss) {
  FailoverNumbers sum;
  for (int rep = 0; rep < scale.reps; ++rep) {
    World world(scale);
    // Standby ticks sized to the blob's paced transfer time, as an operator would.
    const int64_t blob_bytes =
        2LL * scale.width * scale.height * static_cast<int64_t>(sizeof(Pixel));
    const SimDuration interval =
        Milliseconds(200) +
        static_cast<SimDuration>(static_cast<double>(blob_bytes) * 8.0 /
                                 MigrationOptions{}.rate_bps * kSecond);
    world.manager_a->EnableStandby(world.server_b.get(), interval);
    const uint64_t hash = world.Populate(rep);
    world.InjectLoss(loss);
    // Wait until the standby holds a warm copy of the final screen (lossy rounds are
    // re-replicated wholesale on later ticks).
    bool warm = false;
    for (int tick = 0; tick < 100 && !warm; ++tick) {
      world.sim.RunFor(interval);
      warm = world.manager_b->HasWarmCheckpoint(world.card);
    }
    SLIM_CHECK(warm && "standby never stored a checkpoint");
    // Run one more full interval so the stored blob reflects the final (idle) screen.
    world.sim.RunFor(interval + Milliseconds(200));

    world.pool.KillServer(world.server_a.get());
    const SimDuration recovery = world.ConvergeAtB(hash);
    SLIM_CHECK(world.manager_b->stats().failover_restores >= 1);
    sum.recovery_ms += ToMillis(recovery);
    sum.standby_wire_bytes +=
        static_cast<double>(world.manager_a->stats().chunk_bytes_sent);
  }
  sum.recovery_ms /= scale.reps;
  sum.standby_wire_bytes /= scale.reps;
  return sum;
}

}  // namespace
}  // namespace slim

int main() {
  using namespace slim;
  Scale scale;
  scale.reps = EnvInt("SLIM_MIG_REPS", 3);
  scale.width = EnvInt("SLIM_MIG_WIDTH", 640);
  scale.height = EnvInt("SLIM_MIG_HEIGHT", 480);

  ScopedTraceFromEnv trace;
  BenchReporter report("migration",
                       "Cross-server hotdesk blackout, checkpoint wire cost, and "
                       "crash-failover recovery across a server pool");
  report.Knob("SLIM_MIG_REPS", scale.reps);
  report.Knob("SLIM_MIG_WIDTH", scale.width);
  report.Knob("SLIM_MIG_HEIGHT", scale.height);

  std::printf("Server-farm migration, %dx%d sessions, %d reps per point\n", scale.width,
              scale.height, scale.reps);

  // --- Checkpoint size vs framebuffer (loss-free, deterministic) ---
  {
    World world(scale);
    world.Populate(0);
    ServerSession* session = world.server_a->SessionForCard(world.card);
    SessionCheckpoint ckpt;
    session->CaptureCheckpoint(&ckpt);
    const std::vector<uint8_t> blob = EncodeCheckpoint(ckpt);
    const double blob_bytes = static_cast<double>(blob.size());
    const double fb_bytes = static_cast<double>(ckpt.fb_bytes());
    std::printf("  checkpoint blob %.0f bytes for a %.0f-byte framebuffer (%.2fx: "
                "shadow frame rides along)\n",
                blob_bytes, fb_bytes, blob_bytes / fb_bytes);
    report.Metric("checkpoint.blob_bytes", blob_bytes, "bytes");
    report.Metric("checkpoint.fb_bytes", fb_bytes, "bytes");
    report.Metric("checkpoint.blob_to_fb", blob_bytes / fb_bytes, "x");
  }

  // --- Handoff blackout and bytes on the wire at 0/1/10% loss ---
  const double losses[] = {0.0, 0.01, 0.10};
  std::printf("  %-8s %14s %14s %16s %9s\n", "loss", "blackout ms", "converge ms",
              "wire bytes", "retries");
  for (const double loss : losses) {
    const HandoffNumbers h = MeasureHandoff(scale, loss);
    std::printf("  %-8.2f %14.2f %14.2f %16.0f %9.1f\n", loss * 100, h.blackout_ms,
                h.converge_ms, h.wire_bytes, h.retries);
    const std::string prefix = "handoff.loss" + std::to_string(static_cast<int>(loss * 100));
    report.Metric(prefix + ".blackout_ms", h.blackout_ms, "ms");
    report.Metric(prefix + ".converge_ms", h.converge_ms, "ms");
    report.Metric(prefix + ".wire_bytes", h.wire_bytes, "bytes");
    report.Metric(prefix + ".retries", h.retries, "count");
  }

  // --- Failover recovery from the warm standby at 0/1/10% loss ---
  std::printf("  failover (warm standby, owner killed):\n");
  std::printf("  %-8s %14s %18s\n", "loss", "recovery ms", "standby wire bytes");
  for (const double loss : losses) {
    const FailoverNumbers f = MeasureFailover(scale, loss);
    std::printf("  %-8.2f %14.2f %18.0f\n", loss * 100, f.recovery_ms,
                f.standby_wire_bytes);
    const std::string prefix =
        "failover.loss" + std::to_string(static_cast<int>(loss * 100));
    report.Metric(prefix + ".recovery_ms", f.recovery_ms, "ms");
    report.Metric(prefix + ".standby_wire_bytes", f.standby_wire_bytes, "bytes");
  }

  return report.Write() ? 0 : 1;
}
