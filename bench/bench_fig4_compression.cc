// Figure 4: efficiency of SLIM protocol display commands.
//
// For each application, compares the uncompressed pixel volume (3 bytes per affected pixel)
// against the bytes actually sent, broken down by command type. Paper regimes: overall
// compression of roughly 2x for Photoshop and 10x or more for the other applications; FILL
// accounts for a large share of the uncompressed volume everywhere; CSCS is unused by the
// GUI applications.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/trace/protocol_log.h"
#include "src/util/table.h"

int main() {
  using namespace slim;
  PrintHeader("Figure 4 - Efficiency of SLIM protocol display commands",
              "Schmidt et al., SOSP'99, Figure 4");
  // SLIM_TRACE=<path.json> captures the run as a Chrome trace (chrome://tracing,
  // Perfetto); zero cost when unset.
  ScopedTraceFromEnv trace;
  BenchReporter report("fig4_compression", "Efficiency of SLIM protocol display commands");

  for (int k = 0; k < kAppKindCount; ++k) {
    const auto kind = static_cast<AppKind>(k);
    ProtocolLog::TypeTotals totals[6] = {};
    for (const auto& session : RunStudyFor(kind)) {
      ProtocolLog::TypeTotals per[6];
      session.log.TotalsByType(per);
      for (int i = 0; i < 6; ++i) {
        totals[i].commands += per[i].commands;
        totals[i].wire_bytes += per[i].wire_bytes;
        totals[i].uncompressed_bytes += per[i].uncompressed_bytes;
      }
    }
    int64_t wire = 0;
    int64_t raw = 0;
    TextTable table({"Command", "count", "uncompressed MB", "SLIM MB", "reduction"});
    for (const CommandType type : {CommandType::kSet, CommandType::kBitmap,
                                   CommandType::kFill, CommandType::kCopy,
                                   CommandType::kCscs}) {
      const auto& t = totals[static_cast<size_t>(type)];
      wire += t.wire_bytes;
      raw += t.uncompressed_bytes;
      table.AddRow({CommandTypeName(type), Format("%lld", static_cast<long long>(t.commands)),
                    Format("%.2f", static_cast<double>(t.uncompressed_bytes) / 1e6),
                    Format("%.2f", static_cast<double>(t.wire_bytes) / 1e6),
                    t.wire_bytes > 0
                        ? Format("%.1fx", static_cast<double>(t.uncompressed_bytes) /
                                              static_cast<double>(t.wire_bytes))
                        : std::string("-")});
    }
    std::printf("\n%s (paper: ~2x for Photoshop, >=10x for the others)\n%s",
                AppKindName(kind), table.Render().c_str());
    std::printf("Total: %.2f MB raw -> %.2f MB SLIM  (factor %.1fx)\n",
                static_cast<double>(raw) / 1e6, static_cast<double>(wire) / 1e6,
                wire > 0 ? static_cast<double>(raw) / static_cast<double>(wire) : 0.0);
    const std::string app = AppKindName(kind);
    report.Metric(app + ".uncompressed_mb", static_cast<double>(raw) / 1e6, "MB");
    report.Metric(app + ".wire_mb", static_cast<double>(wire) / 1e6, "MB");
    report.Metric(app + ".compression",
                  wire > 0 ? static_cast<double>(raw) / static_cast<double>(wire) : 0.0,
                  "ratio");
  }
  return 0;
}
