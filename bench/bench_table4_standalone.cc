// Table 4: stand-alone benchmarks for the Sun Ray 1.
//
//   1. Response time over a 100 Mbps switched IF (paper: 550 us; Emacs echo: 3.83 ms).
//      A minimal echo application accepts a keystroke at the console, the server renders
//      one character, and we time keystroke-to-pixels-on-display.
//   2. x11perf / Xmark93 figure of merit with and without display data sent on the IF
//      (paper: 3.834 with transmission vs 7.505 without). We run a weighted suite of
//      drawing requests through the display server and charge the Server CPU model; the
//      no-wire configuration is normalized to the paper's 7.505 so the with-wire score
//      exposes the cost of protocol transmission under the same scale.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/content.h"
#include "src/apps/font.h"
#include "src/console/console.h"
#include "src/net/fabric.h"
#include "src/server/slim_server.h"
#include "src/sim/simulator.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace slim {
namespace {

// One keystroke -> app processing -> one glyph on screen. Returns total latency.
SimDuration EchoResponseTime(SimDuration app_processing) {
  Simulator sim;
  Fabric fabric(&sim, {});
  ServerOptions server_options;
  server_options.model_cpu_delay = true;
  SlimServer server(&sim, &fabric, server_options);
  Console console(&sim, &fabric, {});
  const uint64_t card = server.auth().IssueCard(1);
  ServerSession& session = server.CreateSession(card);
  console.InsertCard(server.node(), card);
  sim.Run();

  const Font& font = DefaultFont();
  int column = 0;
  session.set_input_handler([&](const Message& msg) {
    if (const auto* key = std::get_if<KeyEventMsg>(&msg.body)) {
      if (!key->pressed) {
        return;
      }
      // The application consumes its processing time, then renders the echoed character.
      sim.Schedule(app_processing, [&session, &font, &column, key]() {
        const char c = static_cast<char>('a' + key->keycode % 26);
        const auto glyphs = font.Shape(std::string_view(&c, 1));
        session.DrawGlyphs(40 + column * font.char_width(), 40, glyphs, kBlack, kWhite);
        session.Flush();
        ++column;
      });
    }
  });
  session.FillRect(Rect{0, 0, 400, 100}, kWhite);
  session.Flush();
  sim.Run();

  // Measure 20 keystrokes and average.
  RunningStats stats;
  SimTime key_sent = 0;
  console.set_apply_callback([&](const ServiceRecord& rec) {
    if (rec.type == CommandType::kBitmap) {
      stats.Add(static_cast<double>(rec.completion - key_sent));
    }
  });
  for (int i = 0; i < 20; ++i) {
    sim.Schedule(Milliseconds(20), [&console, &server, &session, &key_sent, &sim, i]() {
      key_sent = sim.now();
      console.SendKey(server.node(), session.id(), static_cast<uint32_t>(i), true);
    });
    sim.Run();
  }
  return static_cast<SimDuration>(stats.mean());
}

struct XperfResult {
  int64_t ops = 0;
  SimDuration cpu = 0;
};

// A weighted x11perf-like request suite (rectangles, text, scrolls, blits, images).
XperfResult RunXperfSuite(bool transmit) {
  Simulator sim;
  Fabric fabric(&sim, {});
  SlimServer server(&sim, &fabric, {});
  Console console(&sim, &fabric, {});
  const uint64_t card = server.auth().IssueCard(1);
  ServerSession& session = server.CreateSession(card);
  if (transmit) {
    console.InsertCard(server.node(), card);
    sim.Run();
  }
  const Font& font = DefaultFont();
  Rng rng(1999);
  XperfResult result;
  auto flush = [&]() {
    session.Flush();
    if (transmit) {
      sim.Run();
    }
  };
  // Weights loosely follow Xmark93's emphasis on small 2-D ops with some image traffic.
  for (int round = 0; round < 60; ++round) {
    for (int i = 0; i < 40; ++i) {  // small fills
      session.FillRect(Rect{i * 8, round % 64, 60, 20}, MakePixel(20, 40, 60));
      ++result.ops;
    }
    for (int i = 0; i < 30; ++i) {  // text runs
      const auto glyphs = font.Shape(MakeTextLine(&rng, 24));
      session.DrawGlyphs(10, 100 + (i % 20) * font.line_height(), glyphs, kBlack, kWhite);
      ++result.ops;
    }
    for (int i = 0; i < 10; ++i) {  // scrolls
      session.CopyArea(0, 120, Rect{0, 100, 600, 300});
      ++result.ops;
    }
    for (int i = 0; i < 8; ++i) {  // 100x100 image blits
      session.PutImage(Rect{500, 400, 100, 100}, MakePhotoBlock(&rng, 100, 100));
      ++result.ops;
    }
    flush();
  }
  result.cpu = session.render_time() + session.encode_time() +
               (transmit ? session.wire_time() : 0);
  return result;
}

}  // namespace
}  // namespace slim

int main() {
  using namespace slim;
  PrintHeader("Table 4 - Stand-alone benchmarks for the SLIM console",
              "Schmidt et al., SOSP'99, Table 4");
  // SLIM_TRACE=<path.json> captures the run as a Chrome trace (chrome://tracing,
  // Perfetto); zero cost when unset.
  ScopedTraceFromEnv trace;
  BenchReporter report("table4_standalone", "Stand-alone benchmarks for the SLIM console");

  const SimDuration echo = EchoResponseTime(Microseconds(430));
  const SimDuration emacs = EchoResponseTime(Microseconds(3300) + Microseconds(430));

  const XperfResult with_wire = RunXperfSuite(/*transmit=*/true);
  const XperfResult no_wire = RunXperfSuite(/*transmit=*/false);
  const double ops_per_cpu_second_wire =
      static_cast<double>(with_wire.ops) / ToSeconds(with_wire.cpu);
  const double ops_per_cpu_second_nowire =
      static_cast<double>(no_wire.ops) / ToSeconds(no_wire.cpu);
  // Normalize the no-transmission configuration to the paper's 7.505 Xmarks.
  const double scale = 7.505 / ops_per_cpu_second_nowire;

  TextTable table({"Benchmark", "Paper", "Measured"});
  table.AddRow({"Response time over 100Mbps switched IF", "550 us",
                Format("%.0f us", ToMicros(echo))});
  table.AddRow({"Response time, Emacs echo", "3.83 ms", Format("%.2f ms", ToMillis(emacs))});
  table.AddRow({"x11perf/Xmark93 (display data on IF)", "3.834",
                Format("%.3f", ops_per_cpu_second_wire * scale)});
  table.AddRow({"x11perf/Xmark93 (no display data sent)", "7.505",
                Format("%.3f", ops_per_cpu_second_nowire * scale)});
  std::printf("%s", table.Render().c_str());
  std::printf("\nNetwork transmission costs the server %.1f%% of its graphics throughput\n",
              (1.0 - ops_per_cpu_second_wire / ops_per_cpu_second_nowire) * 100.0);
  report.Metric("echo_response", ToMicros(echo), "us");
  report.Metric("emacs_echo_response", ToMillis(emacs), "ms");
  report.Metric("xmark_with_wire", ops_per_cpu_second_wire * scale, "xmarks");
  report.Metric("xmark_no_wire", ops_per_cpu_second_nowire * scale, "xmarks");
  return 0;
}
