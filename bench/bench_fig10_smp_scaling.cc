// Figure 10: SMP scaling of the processor-sharing experiment (Section 6.1).
//
// Netscape users on 1-8 CPUs, reported as added yardstick latency against users *per CPU*.
// Paper regimes: the system scales with no obvious contention effects — the per-CPU curves
// roughly coincide — and at low per-CPU load, configurations with more processors do
// slightly better because a waking burst is more likely to find a free CPU.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/loadgen/loadgen.h"
#include "src/util/table.h"

namespace slim {
namespace {

double AddedLatencyMs(int users, int cpus, SimDuration horizon, uint64_t seed) {
  Simulator sim;
  SchedulerOptions options;
  options.cpus = cpus;
  options.ram_bytes = 4LL * 1024 * 1024 * 1024;
  MpScheduler sched(&sim, options);
  Rng rng(seed);
  std::vector<std::unique_ptr<LoadGeneratorProcess>> procs;
  for (int i = 0; i < users; ++i) {
    procs.push_back(std::make_unique<LoadGeneratorProcess>(
        &sim, &sched, SynthesizeProfile(AppKind::kNetscape, horizon, rng.Split()),
        rng.Split()));
    procs.back()->Start();
  }
  CpuYardstick yardstick(&sim, &sched);
  yardstick.Start();
  sim.RunUntil(horizon);
  return yardstick.AverageAddedLatencyMs();
}

}  // namespace
}  // namespace slim

int main() {
  using namespace slim;
  PrintHeader("Figure 10 - SMP scaling, Netscape users per CPU (1-8 CPUs)",
              "Schmidt et al., SOSP'99, Figure 10");
  // SLIM_TRACE=<path.json> captures the run as a Chrome trace (chrome://tracing,
  // Perfetto); zero cost when unset.
  ScopedTraceFromEnv trace;
  BenchReporter report("fig10_smp_scaling", "SMP scaling, Netscape users per CPU");
  const SimDuration horizon = Seconds(EnvInt("SLIM_SECONDS", 60));

  const int cpu_configs[] = {1, 2, 4, 8};
  const int per_cpu_counts[] = {2, 4, 6, 8, 10, 12, 14};
  TextTable table({"users/CPU", "1 CPU", "2 CPUs", "4 CPUs", "8 CPUs"});
  double low_load[4] = {0, 0, 0, 0};
  for (const int per_cpu : per_cpu_counts) {
    std::vector<std::string> row{Format("%d", per_cpu)};
    for (size_t c = 0; c < 4; ++c) {
      const int cpus = cpu_configs[c];
      const double ms = AddedLatencyMs(per_cpu * cpus, cpus, horizon,
                                       0xf16a + static_cast<uint64_t>(per_cpu) * 13 + c);
      if (per_cpu == 4) {
        low_load[c] = ms;
      }
      row.push_back(Format("%.1f ms", ms));
    }
    table.AddRow(row);
    std::fprintf(stderr, "[fig10] %d users/cpu done\n", per_cpu);
  }
  std::printf("%s", table.Render().c_str());
  for (size_t c = 0; c < 4; ++c) {
    report.Metric(Format("added_latency_4percpu_%dcpu", cpu_configs[c]), low_load[c], "ms");
  }
  std::printf("\nAt 4 users/CPU: 1 CPU -> %.1f ms vs 8 CPUs -> %.1f ms (paper: more CPUs "
              "slightly better at light load,\nbecause a waking burst more easily finds a "
              "free processor).\n",
              low_load[0], low_load[3]);
  return 0;
}
