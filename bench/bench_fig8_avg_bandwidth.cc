// Figure 8: average network bandwidth under the X, SLIM, and raw-pixel protocols.
//
// Paper regimes: X and SLIM are competitive everywhere; X is slightly better on the
// text-oriented FrameMaker/PIM (whose absolute demand is so low it does not matter); SLIM
// beats X on the image-heavy Netscape/Photoshop, which demand an order of magnitude more
// bandwidth than the text applications; raw pixels cost ~2x SLIM for Photoshop and >=10x
// for the rest.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/util/table.h"

int main() {
  using namespace slim;
  PrintHeader("Figure 8 - Average bandwidth: X vs SLIM vs raw pixels",
              "Schmidt et al., SOSP'99, Figure 8");
  // SLIM_TRACE=<path.json> captures the run as a Chrome trace (chrome://tracing,
  // Perfetto); zero cost when unset.
  ScopedTraceFromEnv trace;
  BenchReporter report("fig8_avg_bandwidth", "Average bandwidth: X vs SLIM vs raw pixels");

  TextTable table({"Application", "X (Mbps)", "SLIM (Mbps)", "Raw pixels (Mbps)",
                   "X/SLIM", "Raw/SLIM"});
  double image_slim = 0;
  double text_slim = 0;
  for (int k = 0; k < kAppKindCount; ++k) {
    const auto kind = static_cast<AppKind>(k);
    double x = 0;
    double slim = 0;
    double raw = 0;
    int n = 0;
    for (const auto& session : RunStudyFor(kind)) {
      x += session.log.AverageXBps();
      slim += session.log.AverageSlimBps();
      raw += session.log.AverageRawBps();
      ++n;
    }
    x /= n;
    slim /= n;
    raw /= n;
    if (kind == AppKind::kPhotoshop || kind == AppKind::kNetscape) {
      image_slim += slim / 2;
    } else {
      text_slim += slim / 2;
    }
    table.AddRow({AppKindName(kind), Format("%.3f", x / 1e6), Format("%.3f", slim / 1e6),
                  Format("%.3f", raw / 1e6), Format("%.2f", x / slim),
                  Format("%.1f", raw / slim)});
    const std::string app = AppKindName(kind);
    report.Metric(app + ".x_bandwidth", x / 1e6, "Mbps");
    report.Metric(app + ".slim_bandwidth", slim / 1e6, "Mbps");
    report.Metric(app + ".raw_bandwidth", raw / 1e6, "Mbps");
  }
  report.Metric("image_vs_text_slim", image_slim / text_slim, "ratio");
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nImage applications average %.1fx the SLIM bandwidth of text applications\n"
      "(paper: \"an order of magnitude more\").\n",
      image_slim / text_slim);
  return 0;
}
