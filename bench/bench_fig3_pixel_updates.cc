// Figure 3: cumulative distributions of pixels changed per user input event.
//
// Uses the paper's attribution heuristic (all pixel changes between two input events belong
// to the first). Paper regimes: nearly 50% of events for any application change fewer than
// 10 Kpixels; only ~20% of FrameMaker/PIM events exceed 10 Kpixels; only ~30% of
// Netscape/Photoshop events exceed 50 Kpixels.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/util/histogram.h"
#include "src/util/table.h"

int main() {
  using namespace slim;
  PrintHeader("Figure 3 - CDF of pixels changed per input event",
              "Schmidt et al., SOSP'99, Figure 3");
  // SLIM_TRACE=<path.json> captures the run as a Chrome trace (chrome://tracing,
  // Perfetto); zero cost when unset.
  ScopedTraceFromEnv trace;
  BenchReporter report("fig3_pixel_updates", "CDF of pixels changed per input event");

  TextTable table({"Application", "events", "median px", "<10Kpx (paper ~50%+)",
                   ">10Kpx", ">50Kpx (NS/PS ~30%)"});
  for (int k = 0; k < kAppKindCount; ++k) {
    const auto kind = static_cast<AppKind>(k);
    Histogram cdf(0.0, 1.4e6, 256.0);  // up to the 1.25 Mpixel display + margin
    for (const auto& session : RunStudyFor(kind)) {
      for (const auto& update : session.log.AttributeToEvents()) {
        cdf.Add(static_cast<double>(update.pixels));
      }
    }
    table.AddRow({AppKindName(kind), Format("%lld", static_cast<long long>(cdf.total_count())),
                  Format("%.0f", cdf.InverseCdf(0.5)),
                  Format("%.1f%%", 100.0 * cdf.CdfAt(10'000.0)),
                  Format("%.1f%%", 100.0 * (1.0 - cdf.CdfAt(10'000.0))),
                  Format("%.1f%%", 100.0 * (1.0 - cdf.CdfAt(50'000.0)))});
    const std::string app = AppKindName(kind);
    report.Metric(app + ".events", cdf.total_count(), "count");
    report.Metric(app + ".median_pixels", cdf.InverseCdf(0.5), "pixels");
    report.Metric(app + ".under_10kpx", 100.0 * cdf.CdfAt(10'000.0), "percent");
    report.Metric(app + ".over_50kpx", 100.0 * (1.0 - cdf.CdfAt(50'000.0)), "percent");
    std::printf("\n%s CDF (pixels -> cumulative fraction):\n%s", AppKindName(kind),
                cdf.CdfSeries(24).c_str());
  }
  std::printf("\n%s", table.Render().c_str());
  return 0;
}
