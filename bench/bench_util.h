// Shared helpers for the figure/table harnesses.
//
// Every harness prints the paper-style rows for one table or figure. Scale knobs come from
// the environment so the default run finishes in seconds while a paper-scale run
// (SLIM_USERS=50 SLIM_MINUTES=10) reproduces the full study:
//
//   SLIM_USERS    simulated users per application      (default 12, paper 50)
//   SLIM_MINUTES  simulated minutes per user session   (default 5, paper 10)
//   SLIM_SECONDS  horizon for sharing experiments      (default 60)
//
// Alongside the text, every harness writes BENCH_<name>.json through BenchReporter (see
// src/obs/bench_report.h) into $SLIM_BENCH_DIR (cwd by default), and the harnesses that
// drive full sessions honor SLIM_TRACE=<path.json> via ScopedTraceFromEnv.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/obs/bench_report.h"
#include "src/obs/trace.h"
#include "src/workload/user_study.h"

namespace slim {

// EnvInt (strtol-validated, warns and falls back on garbage) comes from
// src/obs/bench_report.h so the library and the harnesses parse knobs identically.

inline int StudyUsers() { return EnvInt("SLIM_USERS", 12); }
inline SimDuration StudyDuration() {
  return Seconds(60L * EnvInt("SLIM_MINUTES", 5));
}

inline std::vector<UserSessionResult> RunStudyFor(AppKind kind) {
  std::fprintf(stderr, "[study] %s: %d users x %d min...\n", AppKindName(kind), StudyUsers(),
               EnvInt("SLIM_MINUTES", 5));
  return RunUserStudy(kind, StudyUsers(), StudyDuration(), 0xbe9c5 + static_cast<int>(kind));
}

inline void PrintHeader(const char* title, const char* paper_reference) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_reference);
  std::printf("==============================================================\n");
}

}  // namespace slim

#endif  // BENCH_BENCH_UTIL_H_
