// Chaos soak harness: one interactive session per fault profile, from a healthy fabric up
// to a seriously sick one, reporting what the chaos layer injected, what the transport's
// recovery machinery did about it, and whether the console converged pixel-identically.
//
// Not a paper figure — this exercises the failure model behind Section 2.2's claim that
// SLIM needs no reliable transport: every fault class must be repaired by NACK replay plus
// idempotent reapplication, at a bounded overhead in repaint rounds and replayed bytes.
//
//   SLIM_SOAK_EVENTS  input events per profile (default 300)

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "src/apps/benchmark_apps.h"
#include "src/console/console.h"
#include "src/net/fabric.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/latency_audit.h"
#include "src/obs/metrics.h"
#include "src/obs/stats_stream.h"
#include "src/server/slim_server.h"
#include "src/sim/simulator.h"
#include "src/util/table.h"

namespace {

struct ProfileRow {
  const char* name;
  slim::FaultProfile profile;
};

}  // namespace

int main() {
  using namespace slim;
  PrintHeader("Chaos soak - session recovery under fabric fault injection",
              "Schmidt et al., SOSP'99, Section 2.2 (error recovery)");
  // SLIM_TRACE=out.json captures the recovery machinery as a Chrome trace: NACK instants,
  // replay stalls (missing-seq -> replayed/given-up spans) and the decode pipeline.
  ScopedTraceFromEnv trace;
  // When SLIM_TRACE is off, the flight recorder's ring buffer stands in as the global
  // tracer so SLO breaches can still dump the last few thousand events as a Chrome trace.
  ScopedFlightRecorder flight;
  BenchReporter report("chaos_soak", "Session recovery under fabric fault injection");

  const int events = EnvInt("SLIM_SOAK_EVENTS", 300);
  report.Knob("SLIM_SOAK_EVENTS", events);
  // Flight dumps land next to the bench report by default so a default soak run leaves
  // inspectable evidence for every breach (SLIM_FLIGHT_DIR overrides).
  LatencyAuditOptions audit_options = LatencyAudit::OptionsFromEnv();
  if (audit_options.flight_dir.empty()) {
    const char* bench_dir = std::getenv("SLIM_BENCH_DIR");
    audit_options.flight_dir = (bench_dir != nullptr && *bench_dir != '\0') ? bench_dir : ".";
  }
  int64_t total_breaches = 0;
  int64_t total_flight_dumps = 0;
  std::vector<ProfileRow> rows;
  rows.push_back({"healthy", {}});
  {
    FaultProfile p;
    p.loss = 0.02;
    rows.push_back({"lossy-2%", p});
  }
  {
    FaultProfile p;
    p.loss = 0.05;
    p.duplicate = 0.02;
    p.delay_jitter = Milliseconds(2);
    rows.push_back({"lossy+dup+jitter", p});
  }
  {
    FaultProfile p;
    p.loss = 0.05;
    p.duplicate = 0.02;
    p.corrupt = 0.02;
    p.truncate = 0.01;
    p.delay_jitter = Milliseconds(2);
    rows.push_back({"hostile", p});
  }
  {
    FaultProfile p;
    p.loss = 0.10;
    p.duplicate = 0.05;
    p.corrupt = 0.05;
    p.truncate = 0.02;
    p.delay_jitter = Milliseconds(5);
    rows.push_back({"very-sick", p});
  }

  TextTable table({"profile", "dropped", "dup", "corrupt", "trunc", "nacks", "replays",
                   "cksum-rejects", "slo-breach", "heal-rounds", "converged"});
  for (const ProfileRow& row : rows) {
    Simulator sim;
    Fabric fabric(&sim, {});
    SlimServer server(&sim, &fabric, {});
    Console console(&sim, &fabric, {});
    // A fresh registry per profile: the same counters the table below reads through the
    // legacy struct accessors, now visible as one named snapshot.
    MetricRegistry registry;
    fabric.RegisterMetrics(&registry);
    server.RegisterMetrics(&registry);
    console.RegisterMetrics(&registry);
    // Per-keystroke latency audit: every input event is tracked dispatch -> present and
    // checked against the interactive SLO; breaches dump the flight recorder's ring.
    LatencyAudit audit(audit_options);
    audit.RegisterMetrics(&registry);
    LatencyAudit::SetGlobal(&audit);
    // SLIM_STATS_JSONL=<path> streams this registry for `slimtop -f` (each profile rewrites
    // the file, so the surviving stream is the sickest fabric's).
    auto streamer = MaybeStreamStatsFromEnv(&sim, &registry);
    const uint64_t card = server.auth().IssueCard(1);
    ServerSession& session = server.CreateSession(card);
    auto app = MakeApplication(AppKind::kPim, &session, 1234);
    app->BindInput();
    if (row.profile.active()) {
      fabric.InjectFaults(server.node(), console.node(), row.profile);
      fabric.InjectFaults(console.node(), server.node(), row.profile);
    }
    console.InsertCard(server.node(), card);
    sim.Run();
    app->Start();
    sim.Run();
    Rng rng(55);
    for (int i = 0; i < events; ++i) {
      if (rng.NextBool(0.8)) {
        console.SendKey(server.node(), session.id(),
                        static_cast<uint32_t>(rng.NextBelow(997)), true);
      } else {
        console.SendMouse(server.node(), session.id(),
                          static_cast<int32_t>(rng.NextBelow(1280)),
                          static_cast<int32_t>(rng.NextBelow(1024)), 1, false);
      }
      sim.RunUntil(sim.now() + Milliseconds(25));
    }
    sim.Run();
    int heal_rounds = 0;
    bool converged =
        session.framebuffer().ContentHash() == console.framebuffer().ContentHash();
    // Forced: loss desyncs the console from the damage tracker's shadow, and a refined
    // repaint of a "clean" shadow would transmit nothing.
    while (!converged && heal_rounds < 30) {
      ++heal_rounds;
      session.ForceRepaintAll();
      session.Flush();
      sim.Run();
      converged =
          session.framebuffer().ContentHash() == console.framebuffer().ContentHash();
    }
    // Settle outstanding display commands, then close the audit ledger: anything still
    // open (e.g. lost past the transport's give-up horizon) is folded in as incomplete.
    audit.FinalizeAll();
    const FaultStats& f = fabric.fault_stats();
    const EndpointStats& cs = console.endpoint().stats();
    const EndpointStats& ss = server.endpoint().stats();
    table.AddRow(
        {row.name, Format("%lld", static_cast<long long>(f.datagrams_dropped)),
         Format("%lld", static_cast<long long>(f.datagrams_duplicated)),
         Format("%lld", static_cast<long long>(f.datagrams_corrupted)),
         Format("%lld", static_cast<long long>(f.datagrams_truncated)),
         Format("%lld", static_cast<long long>(cs.nacks_sent + ss.nacks_sent)),
         Format("%lld", static_cast<long long>(cs.replays_sent + ss.replays_sent)),
         Format("%lld", static_cast<long long>(cs.datagrams_corrupted +
                                               ss.datagrams_corrupted)),
         Format("%lld", static_cast<long long>(audit.breaches())),
         Format("%d", heal_rounds), converged ? "yes" : "NO"});
    const std::string base = row.name;
    report.Metric(base + ".nacks", cs.nacks_sent + ss.nacks_sent, "count");
    report.Metric(base + ".replays", cs.replays_sent + ss.replays_sent, "count");
    report.Metric(base + ".cksum_rejects", cs.datagrams_corrupted + ss.datagrams_corrupted,
                  "count");
    report.Metric(base + ".heal_rounds", int64_t{heal_rounds}, "rounds");
    report.Metric(base + ".converged", int64_t{converged ? 1 : 0}, "bool");
    report.Metric(base + ".audit_events", audit.events_completed(), "count");
    report.Metric(base + ".slo_breaches", audit.breaches(), "count");
    report.Metric(base + ".gave_up", audit.gave_up(), "count");
    report.Metric(base + ".flight_dumps", audit.flight_dumps(), "count");
    total_breaches += audit.breaches();
    total_flight_dumps += audit.flight_dumps();
    // The last profile's full registry snapshot rides along in the report (every profile
    // overwrites the previous, so the surviving one is the sickest fabric) — including the
    // session.latency.* histograms the audit just finalized.
    report.AttachSnapshot(registry);
    LatencyAudit::SetGlobal(nullptr);
  }
  std::printf("%s", table.Render().c_str());
  if (total_breaches > 0) {
    std::printf("SLO breaches across profiles: %lld (%lld flight dumps in %s)\n",
                static_cast<long long>(total_breaches),
                static_cast<long long>(total_flight_dumps),
                audit_options.flight_dir.c_str());
  }
  return 0;
}
