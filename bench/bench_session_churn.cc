// Session churn harness: a pool of users hotdesking between consoles while the fabric
// misbehaves, reporting what the lifecycle layer did about it — attaches, handoffs,
// releases, keepalive timeouts, evictions, transmit-queue pressure — and whether every
// surviving session converged bit-exact on its final console.
//
// Not a paper figure — this exercises Section 2.4's session manager (the desktop that
// "follows" the smart card) at a churn rate the paper never measured, over fabrics from
// healthy to hostile. The invariant under test: however the control messages are lost or
// delayed, the directory ends with one console per session, released consoles blank, and
// the winner pixel-identical.
//
//   SLIM_CHURN_SESSIONS  concurrent user sessions        (default 4)
//   SLIM_CHURN_CONSOLES  consoles they roam across       (default 6)
//   SLIM_CHURN_OPS       card insert/remove operations   (default 120)

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/content.h"
#include "src/console/console.h"
#include "src/net/fabric.h"
#include "src/obs/metrics.h"
#include "src/server/slim_server.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace {

struct ProfileRow {
  const char* name;
  slim::FaultProfile profile;
};

}  // namespace

int main() {
  using namespace slim;
  PrintHeader("Session churn - lifecycle hardening under hotdesk storms",
              "Schmidt et al., SOSP'99, Section 2.4 (session manager / hotdesking)");
  ScopedTraceFromEnv trace;
  BenchReporter report("session_churn", "Hotdesk churn and console liveness under chaos");

  const int n_sessions = EnvInt("SLIM_CHURN_SESSIONS", 4);
  const int n_consoles = EnvInt("SLIM_CHURN_CONSOLES", 6);
  const int n_ops = EnvInt("SLIM_CHURN_OPS", 120);
  report.Knob("SLIM_CHURN_SESSIONS", n_sessions);
  report.Knob("SLIM_CHURN_CONSOLES", n_consoles);
  report.Knob("SLIM_CHURN_OPS", n_ops);

  std::vector<ProfileRow> rows;
  rows.push_back({"healthy", {}});
  {
    FaultProfile p;
    p.loss = 0.10;
    p.delay_jitter = Milliseconds(1);
    rows.push_back({"lossy-10%", p});
  }
  {
    FaultProfile p;
    p.loss = 0.10;
    p.duplicate = 0.03;
    p.corrupt = 0.02;
    p.delay_jitter = Milliseconds(3);
    rows.push_back({"hostile", p});
  }

  TextTable table({"profile", "attaches", "handoffs", "detaches", "timeouts", "evictions",
                   "releases", "txq-max", "heal-rounds", "converged"});
  for (const ProfileRow& row : rows) {
    Simulator sim;
    Fabric fabric(&sim, {});
    ServerOptions options;
    options.model_cpu_delay = true;
    options.lifecycle.keepalive_interval = Milliseconds(50);
    options.lifecycle.keepalive_timeout = Milliseconds(400);
    options.lifecycle.max_missed_probes = 8;
    options.lifecycle.evict_after = Seconds(3);
    SlimServer server(&sim, &fabric, options);
    MetricRegistry registry;
    fabric.RegisterMetrics(&registry);
    server.RegisterMetrics(&registry);

    std::vector<std::unique_ptr<Console>> consoles;
    for (int i = 0; i < n_consoles; ++i) {
      consoles.push_back(std::make_unique<Console>(&sim, &fabric, ConsoleOptions{}));
      consoles.back()->RegisterMetrics(&registry, "console" + std::to_string(i));
      if (row.profile.active()) {
        fabric.InjectFaults(server.node(), consoles.back()->node(), row.profile);
        fabric.InjectFaults(consoles.back()->node(), server.node(), row.profile);
      }
    }
    std::vector<uint64_t> cards;
    for (int u = 0; u < n_sessions; ++u) {
      cards.push_back(server.auth().IssueCard(static_cast<uint32_t>(u + 1)));
      server.CreateSession(cards.back());
      consoles[u % n_consoles]->InsertCard(server.node(), cards.back());
    }
    sim.RunFor(Milliseconds(200));

    // The storm: random users pull their card, reappear at random consoles, and keep
    // drawing so handoffs happen mid-stream. All pacing is RunFor — with keepalive armed
    // the event queue never drains, so Run() would never return.
    Rng rng(0x5e551 + static_cast<uint64_t>(rows.size()));
    for (int op = 0; op < n_ops; ++op) {
      const uint64_t card = cards[rng.NextBelow(cards.size())];
      Console& target = *consoles[rng.NextBelow(consoles.size())];
      if (rng.NextBool(0.2)) {
        target.RemoveCard(server.node(), card);
      } else {
        target.InsertCard(server.node(), card);
      }
      if (ServerSession* session = server.SessionForCard(card);
          session != nullptr && session->attached()) {
        session->FillRect(Rect{static_cast<int32_t>(rng.NextBelow(1100)),
                               static_cast<int32_t>(rng.NextBelow(900)), 96, 64},
                          MakePixel(static_cast<uint8_t>(rng.NextBelow(255)),
                                    static_cast<uint8_t>(rng.NextBelow(255)), 80));
        session->Flush();
      }
      sim.RunFor(Milliseconds(25));
    }

    // Settle: each surviving card gets a home console and heals with forced repaints,
    // faults still active. Sessions evicted during the storm come back fresh on insert.
    int heal_rounds = 0;
    int converged = 0;
    for (int u = 0; u < n_sessions; ++u) {
      Console& home = *consoles[u % n_consoles];
      bool done = false;
      for (int round = 0; round < 40 && !done; ++round) {
        ServerSession* session = server.SessionForCard(cards[u]);
        if (session == nullptr || !session->attached() ||
            session->console() != home.node()) {
          home.InsertCard(server.node(), cards[u]);
        } else {
          ++heal_rounds;
          session->ForceRepaintAll();
          session->Flush();
        }
        sim.RunFor(Milliseconds(100));
        session = server.SessionForCard(cards[u]);
        done = session != nullptr && session->attached() &&
               session->console() == home.node() &&
               session->framebuffer().ContentHash() == home.framebuffer().ContentHash();
      }
      converged += done ? 1 : 0;
    }

    const LifecycleStats& ls = server.lifecycle_stats();
    table.AddRow({row.name, Format("%lld", static_cast<long long>(ls.attaches)),
                  Format("%lld", static_cast<long long>(ls.hotdesk_handoffs)),
                  Format("%lld", static_cast<long long>(ls.detaches)),
                  Format("%lld", static_cast<long long>(ls.keepalive_timeouts)),
                  Format("%lld", static_cast<long long>(ls.evictions)),
                  Format("%lld", static_cast<long long>(ls.releases_sent)),
                  Format("%lld", static_cast<long long>(server.tx_queue().max_depth())),
                  Format("%d", heal_rounds),
                  Format("%d/%d", converged, n_sessions)});
    const std::string base = row.name;
    report.Metric(base + ".attaches", ls.attaches, "count");
    report.Metric(base + ".hotdesk_handoffs", ls.hotdesk_handoffs, "count");
    report.Metric(base + ".detaches", ls.detaches, "count");
    report.Metric(base + ".keepalive_timeouts", ls.keepalive_timeouts, "count");
    report.Metric(base + ".evictions", ls.evictions, "count");
    report.Metric(base + ".releases_sent", ls.releases_sent, "count");
    report.Metric(base + ".txq_max_depth", server.tx_queue().max_depth(), "msgs");
    report.Metric(base + ".heal_rounds", int64_t{heal_rounds}, "rounds");
    report.Metric(base + ".converged", int64_t{converged}, "sessions");
    // The surviving snapshot is the hostile profile's (each overwrites the last): the
    // lifecycle counters and per-console release/ping counters as named metrics.
    report.AttachSnapshot(registry);
  }
  std::printf("%s", table.Render().c_str());
  return 0;
}
