// Real-hardware throughput of the hash-accelerated damage pipeline on a scroll-heavy
// workload (the worst case the shadow-frame tracker exists for: hint-less scrolls that
// reach the server as full-frame damage).
//
// Every frame a terminal-like screen scrolls up one text line and paints a fresh line at
// the bottom, then reports the WHOLE frame damaged. Two pipelines consume the identical
// frame sequence:
//   baseline  — the encoder analyzes the full damage, as a tracker-less session would;
//   refined   — DamageTracker::Refine trims it (salvaging the scroll as one COPY), and
//               the encoder only sees the residual.
// Both streams are applied to replica framebuffers and CHECKed for bit-exact convergence,
// so the speedup numbers are for equivalent, correct output. A second section times the
// hash-indexed scroll detector against the retired probe-based reference on the same
// frames (their results are CHECKed equal).
//
// Knobs: SLIM_DP_FRAMES (timed frames, default 40), SLIM_DP_WIDTH/HEIGHT (default
// 1280x1024), SLIM_DP_REPS (detector timing reps, default 25). Expect the refined
// pipeline >= 2x the baseline at defaults (typically far more: the residual is one text
// line out of 64), and the hash detector well ahead of the probe reference at the default
// 64-row search depth.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/codec/damage_tracker.h"
#include "src/codec/decoder.h"
#include "src/codec/encoder.h"
#include "src/codec/row_hash.h"
#include "src/obs/bench_report.h"
#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace slim {
namespace {

constexpr int32_t kLine = 16;  // text line height in pixels

// A terminal-like screen: unique bicolor text lines, scrolled up one line per Step().
class ScrollScreen {
 public:
  ScrollScreen(int32_t width, int32_t height) : fb_(width, height), rng_(4242) {
    for (int32_t y = 0; y + kLine <= height; y += kLine) {
      PaintLine(y);
    }
  }

  const Framebuffer& fb() const { return fb_; }

  void Step() {
    fb_.CopyRect(0, kLine, Rect{0, 0, fb_.width(), fb_.height() - kLine});
    PaintLine(fb_.height() - kLine);
  }

 private:
  void PaintLine(int32_t y0) {
    const Pixel fg = static_cast<Pixel>(rng_.NextU64() & 0xffffff);
    const int32_t phase = static_cast<int32_t>(rng_.NextBelow(11));
    for (int32_t y = y0; y < y0 + kLine; ++y) {
      for (int32_t x = 0; x < fb_.width(); ++x) {
        fb_.PutPixel(x, y, (((x * 7 + y * 13 + phase) % 11) < 4) ? fg : kBlack);
      }
    }
  }

  Framebuffer fb_;
  Rng rng_;
};

struct PassResult {
  double encode_ms = 0;  // wall time inside the measured pipeline only
  int64_t commands = 0;
  int64_t wire_bytes = 0;
};

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

// Runs `frames` scroll steps, encoding each frame's full-frame damage through the
// baseline or refined pipeline, applying every command to `replica`, and CHECKing the
// replica converges to the frame each step.
PassResult RunPass(int32_t width, int32_t height, int frames, bool refined) {
  ScrollScreen screen(width, height);
  Framebuffer replica(width, height);
  const Encoder encoder;
  DamageTracker tracker(width, height);
  PassResult result;
  for (int frame = -1; frame < frames; ++frame) {  // frame -1 is an untimed warmup
    screen.Step();
    const Region damage(screen.fb().bounds());
    std::vector<DisplayCommand> cmds;
    const auto start = std::chrono::steady_clock::now();
    if (refined) {
      // The scroll COPY lands in cmds first; the residual's commands follow, matching the
      // order ServerSession transmits them in.
      const Region residual =
          tracker.Refine(screen.fb(), damage, /*scroll_max_shift=*/64, &cmds);
      for (DisplayCommand& cmd : encoder.EncodeDamage(screen.fb(), residual)) {
        cmds.push_back(std::move(cmd));
      }
    } else {
      cmds = encoder.EncodeDamage(screen.fb(), damage);
    }
    const double ms = MillisSince(start);
    if (frame >= 0) {
      result.encode_ms += ms;
      result.commands += static_cast<int64_t>(cmds.size());
      for (const DisplayCommand& cmd : cmds) {
        result.wire_bytes += static_cast<int64_t>(WireSize(cmd));
      }
    }
    for (const DisplayCommand& cmd : cmds) {
      SLIM_CHECK(ApplyCommand(cmd, &replica));
    }
    SLIM_CHECK(replica.ContentHash() == screen.fb().ContentHash());
  }
  return result;
}

}  // namespace
}  // namespace slim

int main() {
  using namespace slim;
  const int frames = EnvInt("SLIM_DP_FRAMES", 40);
  const int32_t width = EnvInt("SLIM_DP_WIDTH", 1280);
  const int32_t height = EnvInt("SLIM_DP_HEIGHT", 1024);
  const int reps = EnvInt("SLIM_DP_REPS", 25);

  // SLIM_TRACE=<path.json> captures the run as a Chrome trace (chrome://tracing,
  // Perfetto); zero cost when unset.
  ScopedTraceFromEnv trace;
  BenchReporter report("damage_pipeline",
                       "Shadow-frame damage refinement vs full-damage encoding on a "
                       "scroll-heavy workload");
  report.Knob("SLIM_DP_FRAMES", frames);
  report.Knob("SLIM_DP_WIDTH", width);
  report.Knob("SLIM_DP_HEIGHT", height);
  report.Knob("SLIM_DP_REPS", reps);

  const double mpix =
      static_cast<double>(frames) * width * height / 1e6;  // damage analyzed per pass

  std::printf("Damage pipeline, %dx%d, %d scroll frames (full-frame damage each):\n",
              width, height, frames);
  const PassResult baseline = RunPass(width, height, frames, /*refined=*/false);
  const PassResult refined = RunPass(width, height, frames, /*refined=*/true);
  const double base_tput = baseline.encode_ms > 0 ? mpix * 1000.0 / baseline.encode_ms : 0;
  const double ref_tput = refined.encode_ms > 0 ? mpix * 1000.0 / refined.encode_ms : 0;
  const double speedup =
      refined.encode_ms > 0 ? baseline.encode_ms / refined.encode_ms : 0;
  std::printf("  baseline  %8.2f ms  %7.1f Mpix/s  %6lld cmds  %9lld wire bytes\n",
              baseline.encode_ms, base_tput,
              static_cast<long long>(baseline.commands),
              static_cast<long long>(baseline.wire_bytes));
  std::printf("  refined   %8.2f ms  %7.1f Mpix/s  %6lld cmds  %9lld wire bytes\n",
              refined.encode_ms, ref_tput, static_cast<long long>(refined.commands),
              static_cast<long long>(refined.wire_bytes));
  std::printf("  encode-throughput speedup %.2fx, wire bytes %.1fx smaller\n", speedup,
              refined.wire_bytes > 0
                  ? static_cast<double>(baseline.wire_bytes) / refined.wire_bytes
                  : 0);
  report.Metric("baseline.total_ms", baseline.encode_ms, "ms");
  report.Metric("baseline.throughput", base_tput, "Mpix/s");
  report.Metric("baseline.wire_bytes", static_cast<double>(baseline.wire_bytes), "bytes");
  report.Metric("refined.total_ms", refined.encode_ms, "ms");
  report.Metric("refined.throughput", ref_tput, "Mpix/s");
  report.Metric("refined.wire_bytes", static_cast<double>(refined.wire_bytes), "bytes");
  report.Metric("refined.speedup", speedup, "x");

  // Scroll detector micro-bench: hash-indexed (cold and with the pipeline's hash hints)
  // vs the probe-based reference, best of `reps`, on two inputs:
  //   clean    — one true scroll step, the probe's best case (one confirm after cheap
  //              sparse rejections);
  //   periodic — striped content whose rows repeat every 8 rows plus one noise pixel
  //              mid-frame. Every multiple-of-8 shift passes the sparse probe grid and
  //              dies in a full confirm at the noise row, so the probe pays
  //              O(max_shift / period) near-full-frame scans; the hash index never
  //              proposes a candidate at all.
  // Results of all three detector calls are CHECKed to agree on both inputs.
  const auto bench_pair = [&](const char* label, const Framebuffer& b, const Framebuffer& a,
                              int32_t expect_dy) {
    const Rect rect = a.bounds();
    std::vector<uint64_t> before_rows(static_cast<size_t>(b.height()));
    std::vector<uint64_t> after_rows(static_cast<size_t>(a.height()));
    for (int32_t y = 0; y < b.height(); ++y) {
      before_rows[static_cast<size_t>(y)] = RowHash64(b.Row(y));
    }
    for (int32_t y = 0; y < a.height(); ++y) {
      after_rows[static_cast<size_t>(y)] = RowHash64(a.Row(y));
    }
    const ScrollHashHints hints{before_rows, after_rows};
    double hash_ms = 0, hinted_ms = 0, probe_ms = 0;
    int32_t hash_dy = 0, hinted_dy = 0, probe_dy = 0;
    for (int rep = 0; rep <= reps; ++rep) {
      auto start = std::chrono::steady_clock::now();
      hash_dy = DetectVerticalScroll(b, a, rect, 64);
      const double hms = MillisSince(start);
      start = std::chrono::steady_clock::now();
      hinted_dy = DetectVerticalScroll(b, a, rect, 64, &hints);
      const double tms = MillisSince(start);
      start = std::chrono::steady_clock::now();
      probe_dy = DetectVerticalScrollProbe(b, a, rect, 64);
      const double pms = MillisSince(start);
      if (rep > 0) {  // rep 0 warms up
        hash_ms = hash_ms == 0 ? hms : std::min(hash_ms, hms);
        hinted_ms = hinted_ms == 0 ? tms : std::min(hinted_ms, tms);
        probe_ms = probe_ms == 0 ? pms : std::min(probe_ms, pms);
      }
    }
    SLIM_CHECK(hash_dy == probe_dy && hinted_dy == probe_dy);
    SLIM_CHECK(hash_dy == expect_dy);
    const double detector_speedup = hash_ms > 0 ? probe_ms / hash_ms : 0;
    const double hinted_speedup = hinted_ms > 0 ? probe_ms / hinted_ms : 0;
    std::printf("  %-8s  probe %8.3f ms   hash %8.3f ms (%.2fx)   hinted %8.3f ms "
                "(%.2fx)   dy %d\n",
                label, probe_ms, hash_ms, detector_speedup, hinted_ms, hinted_speedup,
                hash_dy);
    const std::string prefix = std::string("detector.") + label + ".";
    report.Metric(prefix + "probe_best_ms", probe_ms, "ms");
    report.Metric(prefix + "hash_best_ms", hash_ms, "ms");
    report.Metric(prefix + "hinted_best_ms", hinted_ms, "ms");
    report.Metric(prefix + "speedup", detector_speedup, "x");
    report.Metric(prefix + "hinted_speedup", hinted_speedup, "x");
  };

  std::printf("Scroll detector (max_shift 64), best of %d:\n", reps);
  ScrollScreen screen(width, height);
  const Framebuffer clean_before = screen.fb();
  screen.Step();
  bench_pair("clean", clean_before, screen.fb(), -kLine);

  Framebuffer striped(width, height);
  for (int32_t y = 0; y < height; ++y) {
    striped.Fill(Rect{0, y, width, 1},
                 MakePixel(static_cast<uint8_t>(40 * (y % 8)), 64, 128));
  }
  Framebuffer noisy = striped;
  noisy.PutPixel(width / 2 + 77, height / 2 + 1, kWhite);  // off the 16x16 probe grid
  bench_pair("periodic", striped, noisy, 0);

  return report.Write() ? 0 : 1;
}
