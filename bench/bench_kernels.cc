// Throughput of each pixel kernel (src/codec/kernels/) per dispatch tier, plus the
// deterministic cross-tier parity checksums the bench_diff gate pins.
//
// For every kernel in KernelOps and every tier this machine can execute, a pass
// processes SLIM_KB_ROWS rows of SLIM_KB_WIDTH pixels (best of SLIM_KB_REPS reps) and
// reports GB/s of input pixels consumed plus the speedup over the scalar reference.
// Content is chosen per kernel so no early-exit shortcuts the work: bicolor rows for
// the two-color scan and bit-packer (the full-row "is this text?" worst case), equal
// rows for the diff kernel (the dominant refinement case — rows whose full hash
// collided but must be confirmed), random 24-bit pixels for the hash and YUV kernels.
//
// The timing numbers are machine-dependent and excluded from the bench_diff gate
// (bench_diff_smoke_kernels skips "gbps"/"speedup"/"tiers"); what the committed
// baseline pins are the parity.<kernel>.checksum metrics — 32-bit folds of each
// kernel's outputs over a fixed pseudo-random input set, CHECKed identical across
// every available tier here and compared against the baseline by ctest. A kernel
// change that alters output on any machine moves the checksum and fails the gate.
//
// Knobs: SLIM_KB_WIDTH (default 1280), SLIM_KB_ROWS (default 2048), SLIM_KB_REPS
// (default 9).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/codec/kernels/kernels.h"
#include "src/obs/bench_report.h"
#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace slim {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

std::vector<const KernelOps*> AvailableTiers() {
  std::vector<const KernelOps*> tiers{KernelsForTier(KernelTier::kScalar)};
  for (const KernelTier tier :
       {KernelTier::kSse2, KernelTier::kAvx2, KernelTier::kNeon}) {
    if (const KernelOps* ops = KernelsForTier(tier)) {
      tiers.push_back(ops);
    }
  }
  return tiers;
}

// 32-bit FNV-1a fold used for the parity checksums (exactly representable as a double,
// so the JSON round-trip through bench_diff compares it without tolerance slop).
struct Fold {
  uint32_t h = 2166136261u;
  void Byte(uint8_t b) { h = (h ^ b) * 16777619u; }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      Byte(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void U64(uint64_t v) {
    U32(static_cast<uint32_t>(v));
    U32(static_cast<uint32_t>(v >> 32));
  }
};

// The fixed input set the parity checksums run over: widths 0..130 at offsets 0/1/3,
// drawn from a seeded Rng — identical on every machine and every run.
struct ParityInputs {
  std::vector<Pixel> random;   // 24-bit noise
  std::vector<Pixel> bicolor;  // two colors, for scan/pack
  ParityInputs() {
    Rng rng(0x5eed);
    random.resize(160);
    bicolor.resize(160);
    for (size_t i = 0; i < random.size(); ++i) {
      random[i] = static_cast<Pixel>(rng.NextU64() & 0xffffff);
      bicolor[i] = (rng.NextU64() & 1) ? 0xc0ffee : 0x101010;
    }
  }
};

constexpr size_t kParityOffsets[] = {0, 1, 3};
constexpr size_t kParityMaxWidth = 130;

// Computes the per-kernel output checksum for one tier. Bit-identity across tiers means
// these folds agree for every tier; the scalar value is what the baseline pins.
uint32_t ParityChecksum(const KernelOps& ops, const char* kernel,
                        const ParityInputs& in) {
  Fold fold;
  const std::string name = kernel;
  for (const size_t offset : kParityOffsets) {
    for (size_t w = 0; w + offset < kParityMaxWidth; ++w) {
      if (name == "row_hash") {
        fold.U64(ops.row_hash(in.random.data() + offset, w));
      } else if (name == "scan_colors") {
        ColorScan scan;
        ops.scan_colors(in.bicolor.data() + offset, w, &scan);
        ops.scan_colors(in.random.data() + offset, w / 2, &scan);  // mid-state entry
        fold.U32(static_cast<uint32_t>(scan.distinct));
        fold.U32(scan.first);
        fold.U32(scan.second);
      } else if (name == "pack_bitmap_row") {
        uint8_t out[(kParityMaxWidth + 7) / 8] = {};
        ops.pack_bitmap_row(in.bicolor.data() + offset, w, 0xc0ffee, out);
        for (size_t i = 0; i < (w + 7) / 8; ++i) {
          fold.Byte(out[i]);
        }
      } else if (name == "row_diff_span") {
        std::vector<Pixel> b(in.random.begin() + offset,
                             in.random.begin() + offset + w);
        if (w > 2) {
          b[w / 3] ^= 0xffffff;  // plant one diff so lo/hi carry information
        }
        int32_t lo = -1, hi = -1;
        const bool changed =
            ops.row_diff_span(in.random.data() + offset, b.data(), w, &lo, &hi);
        fold.U32(changed ? 1u : 0u);
        fold.U32(static_cast<uint32_t>(lo));
        fold.U32(static_cast<uint32_t>(hi));
      } else {  // rgb_to_yuv_row
        uint8_t y[kParityMaxWidth], u[kParityMaxWidth], v[kParityMaxWidth];
        ops.rgb_to_yuv_row(in.random.data() + offset, w, y, u, v);
        for (size_t i = 0; i < w; ++i) {
          fold.Byte(y[i]);
          fold.Byte(u[i]);
          fold.Byte(v[i]);
        }
      }
    }
  }
  return fold.h;
}

}  // namespace
}  // namespace slim

int main() {
  using namespace slim;
  const int32_t width = EnvInt("SLIM_KB_WIDTH", 1280);
  const int rows = EnvInt("SLIM_KB_ROWS", 2048);
  const int reps = EnvInt("SLIM_KB_REPS", 9);

  ScopedTraceFromEnv trace;
  BenchReporter report("kernels",
                       "Per-tier throughput and cross-tier parity of the SIMD pixel "
                       "kernels");
  report.Knob("SLIM_KB_WIDTH", width);
  report.Knob("SLIM_KB_ROWS", rows);
  report.Knob("SLIM_KB_REPS", reps);

  const auto tiers = AvailableTiers();
  report.Metric("tiers.available", static_cast<int64_t>(tiers.size()), "tiers");
  std::printf("Pixel kernels, %d rows x %d px, best of %d  (dispatch default: %s)\n",
              rows, width, reps, KernelTierName(Kernels().tier));

  // Benchmark inputs, built once. Each pass reads `rows` distinct rows out of a buffer
  // a few rows larger than L2 so the working set resembles framebuffer scans, not a
  // single hot cache line.
  const size_t n = static_cast<size_t>(width);
  const size_t total = n * static_cast<size_t>(rows);
  Rng rng(0xbe7c);
  std::vector<Pixel> noise(total), bicolor(total);
  for (size_t i = 0; i < total; ++i) {
    noise[i] = static_cast<Pixel>(rng.NextU64() & 0xffffff);
    bicolor[i] = (rng.NextU64() & 7) ? 0x123456 : 0xfedcba;
  }
  const std::vector<Pixel> noise_copy = noise;  // equal rows for the diff kernel
  std::vector<uint8_t> bits(n / 8 + 8);
  std::vector<uint8_t> yp(n), up(n), vp(n);

  const double gb = static_cast<double>(total) * sizeof(Pixel) / 1e9;

  struct KernelCase {
    const char* name;
    // Runs one full pass over the input rows; returns a sink value so the optimizer
    // cannot delete the loop.
    uint64_t (*pass)(const KernelOps&, const std::vector<Pixel>&,
                     const std::vector<Pixel>&, const std::vector<Pixel>&, size_t,
                     int, std::vector<uint8_t>*, std::vector<uint8_t>*,
                     std::vector<uint8_t>*, std::vector<uint8_t>*);
  };
  const KernelCase cases[] = {
      {"row_hash",
       [](const KernelOps& ops, const std::vector<Pixel>& noise,
          const std::vector<Pixel>&, const std::vector<Pixel>&, size_t n, int rows,
          std::vector<uint8_t>*, std::vector<uint8_t>*, std::vector<uint8_t>*,
          std::vector<uint8_t>*) {
         uint64_t sink = 0;
         for (int r = 0; r < rows; ++r) {
           sink ^= ops.row_hash(noise.data() + static_cast<size_t>(r) * n, n);
         }
         return sink;
       }},
      {"scan_colors",
       [](const KernelOps& ops, const std::vector<Pixel>&,
          const std::vector<Pixel>& bicolor, const std::vector<Pixel>&, size_t n,
          int rows, std::vector<uint8_t>*, std::vector<uint8_t>*,
          std::vector<uint8_t>*, std::vector<uint8_t>*) {
         uint64_t sink = 0;
         for (int r = 0; r < rows; ++r) {
           ColorScan scan;  // fresh per row: scan the whole row, never early-exit
           ops.scan_colors(bicolor.data() + static_cast<size_t>(r) * n, n, &scan);
           sink += static_cast<uint64_t>(scan.distinct) + scan.first + scan.second;
         }
         return sink;
       }},
      {"pack_bitmap_row",
       [](const KernelOps& ops, const std::vector<Pixel>&,
          const std::vector<Pixel>& bicolor, const std::vector<Pixel>&, size_t n,
          int rows, std::vector<uint8_t>* bits, std::vector<uint8_t>*,
          std::vector<uint8_t>*, std::vector<uint8_t>*) {
         uint64_t sink = 0;
         for (int r = 0; r < rows; ++r) {
           ops.pack_bitmap_row(bicolor.data() + static_cast<size_t>(r) * n, n,
                               0xfedcba, bits->data());
           sink += (*bits)[0] + (*bits)[n / 8 - 1];
         }
         return sink;
       }},
      {"row_diff_span",
       [](const KernelOps& ops, const std::vector<Pixel>& noise,
          const std::vector<Pixel>&, const std::vector<Pixel>& noise_copy, size_t n,
          int rows, std::vector<uint8_t>*, std::vector<uint8_t>*,
          std::vector<uint8_t>*, std::vector<uint8_t>*) {
         uint64_t sink = 0;
         for (int r = 0; r < rows; ++r) {
           int32_t lo = 0, hi = 0;
           const size_t at = static_cast<size_t>(r) * n;
           sink += ops.row_diff_span(noise.data() + at, noise_copy.data() + at, n,
                                     &lo, &hi)
                       ? 1u
                       : 0u;
         }
         return sink;
       }},
      {"rgb_to_yuv_row",
       [](const KernelOps& ops, const std::vector<Pixel>& noise,
          const std::vector<Pixel>&, const std::vector<Pixel>&, size_t n, int rows,
          std::vector<uint8_t>*, std::vector<uint8_t>* yp, std::vector<uint8_t>* up,
          std::vector<uint8_t>* vp) {
         uint64_t sink = 0;
         for (int r = 0; r < rows; ++r) {
           ops.rgb_to_yuv_row(noise.data() + static_cast<size_t>(r) * n, n,
                              yp->data(), up->data(), vp->data());
           sink += (*yp)[0] + (*up)[n / 2] + (*vp)[n - 1];
         }
         return sink;
       }},
  };

  const ParityInputs parity_inputs;
  for (const KernelCase& kc : cases) {
    // Parity checksums first: every tier must fold to the same value, and the scalar
    // fold is the deterministic metric the committed baseline pins.
    const uint32_t checksum = ParityChecksum(*tiers[0], kc.name, parity_inputs);
    for (const KernelOps* ops : tiers) {
      SLIM_CHECK(ParityChecksum(*ops, kc.name, parity_inputs) == checksum);
    }
    report.Metric(std::string("parity.") + kc.name + ".checksum",
                  static_cast<int64_t>(checksum), "fnv32");

    double scalar_ms = 0;
    std::printf("  %-16s", kc.name);
    for (const KernelOps* ops : tiers) {
      double best_ms = 0;
      uint64_t sink = 0;
      for (int rep = 0; rep <= reps; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        sink ^= kc.pass(*ops, noise, bicolor, noise_copy, n, rows, &bits, &yp, &up,
                        &vp);
        const double ms = MillisSince(start);
        if (rep > 0) {  // rep 0 warms up
          best_ms = best_ms == 0 ? ms : std::min(best_ms, ms);
        }
      }
      const double gbps = best_ms > 0 ? gb * 1000.0 / best_ms : 0;
      const std::string prefix = std::string(kc.name) + "." + KernelTierName(ops->tier);
      report.Metric(prefix + ".gbps", gbps, "GB/s");
      if (ops->tier == KernelTier::kScalar) {
        scalar_ms = best_ms;
        std::printf("  scalar %6.2f GB/s", gbps);
      } else {
        const double speedup = best_ms > 0 ? scalar_ms / best_ms : 0;
        report.Metric(prefix + ".speedup", speedup, "x");
        std::printf("   %s %6.2f GB/s (%4.2fx)", KernelTierName(ops->tier), gbps,
                    speedup);
      }
      if (sink == 0x5a5a5a5a5a5a5a5aull) {  // keep the sink observable
        std::printf("!");
      }
    }
    std::printf("\n");
  }

  return report.Write() ? 0 : 1;
}
