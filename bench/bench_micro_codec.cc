// Wall-clock micro-benchmarks of the hot paths (google-benchmark).
//
// Unlike the figure harnesses (simulated time), these measure this implementation's real
// throughput: encoder damage analysis, decoder application, color conversion, CSCS packing,
// message serialization, and raycast rendering.

#include <benchmark/benchmark.h>

#include "src/apps/content.h"
#include "src/obs/bench_report.h"
#include "src/codec/decoder.h"
#include "src/codec/encoder.h"
#include "src/color/yuv.h"
#include "src/protocol/messages.h"
#include "src/quake/raycaster.h"
#include "src/util/rng.h"

namespace slim {
namespace {

void BM_EncodePhotoDamage(benchmark::State& state) {
  const auto edge = static_cast<int32_t>(state.range(0));
  Framebuffer fb(edge, edge);
  Rng rng(1);
  fb.SetPixels(fb.bounds(), MakePhotoBlock(&rng, edge, edge));
  Encoder encoder;
  Region damage(fb.bounds());
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.EncodeDamage(fb, damage));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(edge) * edge);
}
BENCHMARK(BM_EncodePhotoDamage)->Arg(128)->Arg(512);

void BM_EncodeTextDamage(benchmark::State& state) {
  const auto edge = static_cast<int32_t>(state.range(0));
  Framebuffer fb(edge, edge, kWhite);
  Rng rng(2);
  for (int32_t y = 0; y < edge; ++y) {
    for (int32_t x = 0; x < edge; ++x) {
      if (rng.NextBool(0.3)) {
        fb.PutPixel(x, y, kBlack);
      }
    }
  }
  Encoder encoder;
  Region damage(fb.bounds());
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.EncodeDamage(fb, damage));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(edge) * edge);
}
BENCHMARK(BM_EncodeTextDamage)->Arg(128)->Arg(512);

void BM_DecodeSetCommand(benchmark::State& state) {
  const auto edge = static_cast<int32_t>(state.range(0));
  SetCommand cmd;
  cmd.dst = Rect{0, 0, edge, edge};
  cmd.rgb.assign(static_cast<size_t>(edge) * edge * 3, 0x42);
  const DisplayCommand dc(cmd);
  Framebuffer fb(edge, edge);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApplyCommand(dc, &fb));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(edge) * edge);
}
BENCHMARK(BM_DecodeSetCommand)->Arg(128)->Arg(512);

void BM_RgbYuvRoundTrip(benchmark::State& state) {
  Rng rng(3);
  std::vector<Pixel> pixels(4096);
  for (Pixel& p : pixels) {
    p = static_cast<Pixel>(rng.NextU64() & 0xffffff);
  }
  for (auto _ : state) {
    for (const Pixel p : pixels) {
      benchmark::DoNotOptimize(YuvToRgb(RgbToYuv(p)));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(pixels.size()));
}
BENCHMARK(BM_RgbYuvRoundTrip);

void BM_CscsPackUnpack(benchmark::State& state) {
  const auto depth = static_cast<CscsDepth>(state.range(0));
  Rng rng(4);
  YuvImage image(320, 240);
  for (int32_t y = 0; y < 240; ++y) {
    for (int32_t x = 0; x < 320; ++x) {
      image.Set(x, y, Yuv{static_cast<uint8_t>(rng.NextBelow(256)),
                          static_cast<uint8_t>(rng.NextBelow(256)),
                          static_cast<uint8_t>(rng.NextBelow(256))});
    }
  }
  for (auto _ : state) {
    const auto payload = PackCscsPayload(image, depth);
    benchmark::DoNotOptimize(UnpackCscsPayload(payload, 320, 240, depth));
  }
  state.SetItemsProcessed(state.iterations() * 320 * 240);
}
BENCHMARK(BM_CscsPackUnpack)
    ->Arg(static_cast<int>(CscsDepth::k16))
    ->Arg(static_cast<int>(CscsDepth::k8))
    ->Arg(static_cast<int>(CscsDepth::k5));

void BM_MessageSerializeParse(benchmark::State& state) {
  SetCommand cmd;
  cmd.dst = Rect{0, 0, 64, 64};
  cmd.rgb.assign(64 * 64 * 3, 7);
  const Message msg{1, 42, cmd};
  for (auto _ : state) {
    const auto bytes = SerializeMessage(msg);
    benchmark::DoNotOptimize(ParseMessage(bytes));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(MessageWireSize(msg)));
}
BENCHMARK(BM_MessageSerializeParse);

void BM_RaycastFrame(benchmark::State& state) {
  const auto w = static_cast<int32_t>(state.range(0));
  const auto h = static_cast<int32_t>(state.range(1));
  RaycastEngine engine(w, h);
  int frame = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.RenderFrame(engine.DemoCamera(frame++)));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(w) * h);
}
BENCHMARK(BM_RaycastFrame)->Args({320, 240})->Args({640, 480});

void BM_FramebufferDiff(benchmark::State& state) {
  Framebuffer a(1280, 1024);
  Framebuffer b(1280, 1024);
  b.Fill(Rect{500, 400, 200, 150}, kWhite);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.DiffWith(b));
  }
  state.SetItemsProcessed(state.iterations() * 1280 * 1024);
}
BENCHMARK(BM_FramebufferDiff);

// Forwards to the normal console output while mirroring each run into the BENCH json
// (per-iteration real time, plus items/s when the benchmark reports throughput).
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(BenchReporter* out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) {
        continue;
      }
      out_->Metric(run.benchmark_name() + ".real_time", run.GetAdjustedRealTime(), "ns");
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        out_->Metric(run.benchmark_name() + ".items_per_second",
                     static_cast<double>(items->second.value), "items/s");
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchReporter* out_;
};

}  // namespace
}  // namespace slim

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  slim::BenchReporter report("micro_codec", "Wall-clock micro-benchmarks of the hot paths");
  slim::CapturingReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
