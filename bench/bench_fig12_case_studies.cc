// Figure 12: day-long load profiles of two real-world installations (Section 6.3).
//
// Site A models the university lab: a 2-CPU E250-class server with 50 terminals, bursty
// student use peaking in the afternoon; both processors reach full utilization at peak.
// Site B models the product-development group: an 8-CPU E4500-class server with 100+
// terminals, steady office use, processors never saturated. Paper regimes: "Total Users"
// well above "Active Users"; aggregate network load below 5 Mbps at all times (the 1 Gbps
// uplink is massive overkill); snapshots every 10 s reported as 5-minute maxima.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/loadgen/loadgen.h"
#include "src/util/table.h"

namespace slim {
namespace {

// Diurnal presence model: fraction of terminals with a logged-in session and, of those,
// the fraction actively working, as a function of hour of day.
double PresenceAt(double hour, bool lab) {
  if (lab) {
    // Students arrive late morning, peak mid-afternoon, taper late evening.
    if (hour < 8.0 || hour > 23.0) {
      return 0.05;
    }
    const double x = (hour - 15.0) / 4.5;
    return 0.1 + 0.85 * std::exp(-x * x);
  }
  // Office: ramp at 9, lunch dip, ramp down after 18; many sessions stay logged in.
  if (hour < 7.0 || hour > 21.0) {
    return 0.55;  // sessions left active overnight (the hotdesking habit)
  }
  const double morning = std::exp(-std::pow((hour - 11.0) / 3.0, 2));
  const double afternoon = std::exp(-std::pow((hour - 15.5) / 3.0, 2));
  return 0.6 + 0.38 * std::max(morning, afternoon);
}

struct Snapshot {
  double hour = 0;
  double cpu_util = 0;     // aggregate, 0..cpus
  double net_mbps = 0;
  int total_users = 0;
  int active_users = 0;
};

std::vector<Snapshot> SimulateSite(bool lab, int cpus, int terminals, uint64_t seed) {
  // Coarse-grained day simulation: for each 10 s snapshot we draw the active population
  // from the diurnal model and account their CPU/network demand against the server, with
  // 5-minute maxima reported exactly as the paper's monitoring did.
  Rng rng(seed);
  // Per-user demand mix for the site (lab: compilers/Matlab-like, heavier CPU; office:
  // productivity mix close to the benchmark applications).
  const double cpu_per_active = lab ? 0.21 : 0.11;
  const double mbps_per_active = lab ? 0.045 : 0.035;
  std::vector<Snapshot> out;
  Snapshot window_max;
  int in_window = 0;
  for (int tick = 0; tick < 24 * 360; ++tick) {  // 10 s snapshots across 24 h
    const double hour = tick / 360.0;
    const double presence = PresenceAt(hour, lab);
    const int total =
        std::min(terminals, static_cast<int>(presence * terminals + rng.NextInRange(-2, 2)));
    const double active_fraction = lab ? 0.45 : 0.30;
    int active = 0;
    for (int u = 0; u < total; ++u) {
      active += rng.NextBool(active_fraction) ? 1 : 0;
    }
    Snapshot snap;
    snap.hour = hour;
    snap.total_users = std::max(total, 0);
    snap.active_users = active;
    // Demand with per-snapshot burstiness; capped by the machine.
    const double demand = active * cpu_per_active * (0.6 + 0.8 * rng.NextDouble());
    snap.cpu_util = std::min<double>(cpus, demand);
    snap.net_mbps = active * mbps_per_active * (0.5 + rng.NextDouble());
    // Track 5-minute maxima (30 snapshots).
    window_max.hour = hour;
    window_max.cpu_util = std::max(window_max.cpu_util, snap.cpu_util);
    window_max.net_mbps = std::max(window_max.net_mbps, snap.net_mbps);
    window_max.total_users = std::max(window_max.total_users, snap.total_users);
    window_max.active_users = std::max(window_max.active_users, snap.active_users);
    if (++in_window == 30) {
      out.push_back(window_max);
      window_max = Snapshot{};
      in_window = 0;
    }
  }
  return out;
}

void Report(BenchReporter* report, const char* slug, const char* name, bool lab, int cpus,
            int terminals, uint64_t seed) {
  const auto day = SimulateSite(lab, cpus, terminals, seed);
  std::printf("\n%s (%d CPUs, %d terminals) - 5-minute maxima, hourly rows:\n", name, cpus,
              terminals);
  TextTable table({"hour", "CPU util (of N)", "net Mbps", "total users", "active users"});
  double peak_cpu = 0;
  double peak_net = 0;
  int peak_total = 0;
  for (size_t i = 0; i < day.size(); i += 12) {  // one row per hour
    const Snapshot& s = day[i];
    table.AddRow({Format("%02d:00", static_cast<int>(s.hour)),
                  Format("%.2f / %d", s.cpu_util, cpus), Format("%.2f", s.net_mbps),
                  Format("%d", s.total_users), Format("%d", s.active_users)});
  }
  for (const Snapshot& s : day) {
    peak_cpu = std::max(peak_cpu, s.cpu_util);
    peak_net = std::max(peak_net, s.net_mbps);
    peak_total = std::max(peak_total, s.total_users);
  }
  std::printf("%s", table.Render().c_str());
  std::printf("Peaks: CPU %.2f/%d %s, network %.2f Mbps (paper: always below 5 Mbps), "
              "max %d users logged in.\n",
              peak_cpu, cpus,
              peak_cpu > cpus - 0.05 ? "(fully utilized at peak, as the paper's lab)"
                                     : "(headroom remains, as the paper's office)",
              peak_net, peak_total);
  const std::string base = slug;
  report->Metric(base + ".peak_cpu_util", peak_cpu, "cpus");
  report->Metric(base + ".peak_net", peak_net, "Mbps");
  report->Metric(base + ".peak_users", static_cast<int64_t>(peak_total), "users");
}

}  // namespace
}  // namespace slim

int main() {
  using namespace slim;
  PrintHeader("Figure 12 - Day-long load profiles of two installations",
              "Schmidt et al., SOSP'99, Figure 12 / Section 6.3");
  // SLIM_TRACE=<path.json> captures the run as a Chrome trace (chrome://tracing,
  // Perfetto); zero cost when unset.
  ScopedTraceFromEnv trace;
  BenchReporter report("fig12_case_studies", "Day-long load profiles of two installations");
  Report(&report, "site_a", "Site A: university lab (E250-class)", /*lab=*/true, 2, 50,
         0xa11);
  Report(&report, "site_b", "Site B: product development (E4500-class)", /*lab=*/false, 8,
         110, 0xb22);
  return 0;
}
