#include "src/vnc/vnc.h"

#include "src/codec/decoder.h"
#include "src/util/check.h"

namespace slim {

VncViewerSystem::VncViewerSystem(Simulator* sim, Fabric* fabric, ServerSession* source,
                                 VncOptions options)
    : sim_(sim),
      source_(source),
      options_(options),
      encoder_(options.encoder),
      shadow_(source->framebuffer().width(), source->framebuffer().height()),
      viewer_fb_(source->framebuffer().width(), source->framebuffer().height()) {
  SLIM_CHECK(sim != nullptr && fabric != nullptr && source != nullptr);
  server_end_ = std::make_unique<SlimEndpoint>(fabric, fabric->AddNode());
  viewer_end_ = std::make_unique<SlimEndpoint>(fabric, fabric->AddNode());
  server_end_->set_handler(
      [this](const Message& msg, NodeId from) { OnServerMessage(msg, from); });
  viewer_end_->set_handler(
      [this](const Message& msg, NodeId from) { OnViewerMessage(msg, from); });
}

void VncViewerSystem::Start() {
  running_ = true;
  Poll();
}

void VncViewerSystem::Stop() { running_ = false; }

void VncViewerSystem::Poll() {
  if (!running_) {
    return;
  }
  if (!request_outstanding_) {
    request_outstanding_ = true;
    viewer_end_->Send(server_end_->node(), 1, PingMsg{static_cast<uint64_t>(sim_->now())});
  }
  sim_->Schedule(options_.poll_interval, [this] { Poll(); });
}

void VncViewerSystem::OnServerMessage(const Message& msg, NodeId from) {
  if (!std::holds_alternative<PingMsg>(msg.body)) {
    return;
  }
  // The client-pull cost: scan the whole framebuffer against the shadow generation...
  const Framebuffer& live = source_->framebuffer();
  const auto diff = shadow_.DiffWith(live);
  const auto scan_cost = static_cast<SimDuration>(
      options_.diff_ns_per_pixel * static_cast<double>(live.bounds().area()));
  diff_cpu_time_ += scan_cost;
  // ...then encode and send everything that changed, after the scan time has elapsed.
  sim_->Schedule(scan_cost, [this, damage = diff.damage, from]() {
    const Framebuffer& now_live = source_->framebuffer();
    std::vector<DisplayCommand> cmds = encoder_.EncodeDamage(now_live, damage);
    for (auto& cmd : cmds) {
      bytes_sent_ += static_cast<int64_t>(WireSize(cmd));
      const bool ok = ApplyCommand(cmd, &shadow_);
      SLIM_DCHECK(ok);
      (void)ok;
      std::visit([&](auto& body) { server_end_->Send(from, 1, std::move(body)); }, cmd);
    }
    // Terminate the update with a pong so the viewer knows this request is complete.
    server_end_->Send(from, 1, PongMsg{0});
    ++updates_;
  });
}

void VncViewerSystem::OnViewerMessage(const Message& msg, NodeId from) {
  (void)from;
  if (std::holds_alternative<PongMsg>(msg.body)) {
    request_outstanding_ = false;
    if (viewer_fb_.ContentHash() == source_->framebuffer().ContentHash()) {
      last_synced_at_ = sim_->now();
    }
    return;
  }
  std::visit(
      [this](const auto& body) {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, SetCommand> || std::is_same_v<T, BitmapCommand> ||
                      std::is_same_v<T, FillCommand> || std::is_same_v<T, CopyCommand> ||
                      std::is_same_v<T, CscsCommand>) {
          const bool ok = ApplyCommand(DisplayCommand(body), &viewer_fb_);
          SLIM_DCHECK(ok);
          (void)ok;
        }
      },
      msg.body);
}

bool VncViewerSystem::InSync() const {
  return viewer_fb_.ContentHash() == source_->framebuffer().ContentHash();
}

}  // namespace slim
