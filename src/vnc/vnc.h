// A VNC-style client-pull remote display baseline (paper Section 8.3).
//
// The paper contrasts SLIM's server-push model ("updates are transmitted ... as they occur")
// with VNC's client-demand model: the viewer periodically requests the current framebuffer
// state, and the server responds with everything that changed since the last request —
// which requires the server to either keep complex state or compute a large delta between
// framebuffer generations. Both costs are modeled here: the mirror keeps a full shadow copy
// (the state) and scans it against the live framebuffer on every request (the delta).
//
// The encoding reuses the SLIM command set, so the comparison isolates the *update model*:
// pull-with-delta versus push-at-damage-time. bench_related_vnc measures the added
// keystroke-to-pixels latency, reproducing the paper's observation that VNC feels sluggish
// even on a fast network.

#ifndef SRC_VNC_VNC_H_
#define SRC_VNC_VNC_H_

#include <memory>

#include "src/codec/encoder.h"
#include "src/net/transport.h"
#include "src/server/session.h"
#include "src/sim/simulator.h"

namespace slim {

struct VncOptions {
  // Viewer poll cadence. Real VNC viewers request as fast as the previous update completes;
  // on a LAN that is effectively a fixed small interval.
  SimDuration poll_interval = Milliseconds(50);
  // Server CPU cost of scanning one pixel of the framebuffer for the delta.
  double diff_ns_per_pixel = 2.0;
  EncoderOptions encoder;
};

// Attaches a pull-model viewer to a ServerSession's framebuffer. The session should have no
// SLIM console attached (VNC replaces the console in this comparison).
class VncViewerSystem {
 public:
  VncViewerSystem(Simulator* sim, Fabric* fabric, ServerSession* source, VncOptions options);

  void Start();
  void Stop();

  const Framebuffer& viewer_framebuffer() const { return viewer_fb_; }

  int64_t updates() const { return updates_; }
  int64_t bytes_sent() const { return bytes_sent_; }
  SimDuration diff_cpu_time() const { return diff_cpu_time_; }
  // When the viewer's copy last became identical to the source.
  SimTime last_synced_at() const { return last_synced_at_; }
  bool InSync() const;

 private:
  void OnViewerMessage(const Message& msg, NodeId from);
  void OnServerMessage(const Message& msg, NodeId from);
  void Poll();

  Simulator* sim_;
  ServerSession* source_;
  VncOptions options_;
  Encoder encoder_;
  Framebuffer shadow_;     // server-side state of what the viewer has
  Framebuffer viewer_fb_;  // the viewer's actual copy
  std::unique_ptr<SlimEndpoint> server_end_;
  std::unique_ptr<SlimEndpoint> viewer_end_;
  bool running_ = false;
  bool request_outstanding_ = false;
  int64_t updates_ = 0;
  int64_t bytes_sent_ = 0;
  SimDuration diff_cpu_time_ = 0;
  SimTime last_synced_at_ = 0;
};

}  // namespace slim

#endif  // SRC_VNC_VNC_H_
