#include "src/quake/raycaster.h"

#include <algorithm>
#include <cmath>

#include "src/color/yuv.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace slim {

RaycastEngine::RaycastEngine(int32_t width, int32_t height, uint64_t seed)
    : width_(width), height_(height) {
  SLIM_CHECK(width > 0 && height > 0);
  Rng rng(seed);

  // Map: solid border, random interior pillars, with a carved ring corridor the demo camera
  // patrols so it never ends up inside a wall.
  for (int y = 0; y < kMapSize; ++y) {
    for (int x = 0; x < kMapSize; ++x) {
      const bool border = x == 0 || y == 0 || x == kMapSize - 1 || y == kMapSize - 1;
      uint8_t cell = border ? 1 : 0;
      if (!border && rng.NextBool(0.14)) {
        cell = static_cast<uint8_t>(1 + rng.NextBelow(kWallKinds));
      }
      map_[static_cast<size_t>(y)][static_cast<size_t>(x)] = cell;
    }
  }
  const double cx = kMapSize / 2.0;
  const double cy = kMapSize / 2.0;
  for (int y = 1; y < kMapSize - 1; ++y) {
    for (int x = 1; x < kMapSize - 1; ++x) {
      const double r = std::hypot(x + 0.5 - cx, y + 0.5 - cy);
      if (r > 5.5 && r < 9.5) {
        map_[static_cast<size_t>(y)][static_cast<size_t>(x)] = 0;
      }
    }
  }

  // Palette: 32 base colors x 8 brightness shades. Base 0 reserved for ceiling gray ramp,
  // base 1 for floor brown ramp, bases 2.. for wall texture colors.
  auto base_color = [&](int base) -> Pixel {
    switch (base) {
      case 0:
        return MakePixel(70, 70, 90);
      case 1:
        return MakePixel(90, 70, 50);
      default:
        return MakePixel(static_cast<uint8_t>(40 + rng.NextBelow(200)),
                         static_cast<uint8_t>(40 + rng.NextBelow(200)),
                         static_cast<uint8_t>(40 + rng.NextBelow(200)));
    }
  };
  for (int base = 0; base < 32; ++base) {
    const Pixel c = base_color(base);
    for (int shade = 0; shade < kShades; ++shade) {
      const double k = (shade + 1.0) / kShades;
      palette_[static_cast<size_t>(base * kShades + shade)] =
          MakePixel(static_cast<uint8_t>(PixelR(c) * k), static_cast<uint8_t>(PixelG(c) * k),
                    static_cast<uint8_t>(PixelB(c) * k));
    }
  }

  // Wall textures: brick/checker patterns over 3 base colors per wall kind.
  textures_.resize(static_cast<size_t>(kWallKinds) * kTextureSize * kTextureSize);
  for (int kind = 0; kind < kWallKinds; ++kind) {
    const int base0 = 2 + kind * 3;
    for (int v = 0; v < kTextureSize; ++v) {
      for (int u = 0; u < kTextureSize; ++u) {
        int base = base0;
        const bool mortar = (v % 16 == 0) || ((u + (v / 16 % 2) * 8) % 16 == 0);
        if (mortar) {
          base = base0 + 1;
        } else if (((u / 8) ^ (v / 8)) & 1) {
          base = base0 + 2;
        }
        textures_[(static_cast<size_t>(kind) * kTextureSize + v) * kTextureSize + u] =
            static_cast<uint8_t>(base);
      }
    }
  }
}

bool RaycastEngine::IsWall(double x, double y) const {
  const int mx = static_cast<int>(x);
  const int my = static_cast<int>(y);
  if (mx < 0 || my < 0 || mx >= kMapSize || my >= kMapSize) {
    return true;
  }
  return map_[static_cast<size_t>(my)][static_cast<size_t>(mx)] != 0;
}

uint8_t RaycastEngine::TextureIndex(int wall_kind, int32_t u, int32_t v, int shade) const {
  const int kind = std::clamp(wall_kind - 1, 0, kWallKinds - 1);
  const uint8_t base =
      textures_[(static_cast<size_t>(kind) * kTextureSize + (v & (kTextureSize - 1))) *
                    kTextureSize +
                (u & (kTextureSize - 1))];
  return static_cast<uint8_t>(base * kShades + std::clamp(shade, 0, kShades - 1));
}

Camera RaycastEngine::DemoCamera(int frame) const {
  Camera cam;
  const double t = frame * 0.02;
  const double cx = kMapSize / 2.0;
  const double cy = kMapSize / 2.0;
  const double r = 7.5;
  cam.x = cx + r * std::cos(t);
  cam.y = cy + r * std::sin(t);
  // Look along the tangent, with a gentle swivel.
  cam.angle = t + M_PI / 2.0 + 0.35 * std::sin(t * 2.7);
  return cam;
}

std::vector<uint8_t> RaycastEngine::RenderFrame(const Camera& camera) const {
  std::vector<uint8_t> frame(static_cast<size_t>(width_) * height_);
  for (int32_t col = 0; col < width_; ++col) {
    const double ray_angle =
        camera.angle + camera.fov * (static_cast<double>(col) / width_ - 0.5);
    const double dir_x = std::cos(ray_angle);
    const double dir_y = std::sin(ray_angle);

    // DDA grid traversal.
    int mx = static_cast<int>(camera.x);
    int my = static_cast<int>(camera.y);
    const double delta_x = dir_x == 0.0 ? 1e30 : std::abs(1.0 / dir_x);
    const double delta_y = dir_y == 0.0 ? 1e30 : std::abs(1.0 / dir_y);
    const int step_x = dir_x < 0 ? -1 : 1;
    const int step_y = dir_y < 0 ? -1 : 1;
    double side_x = dir_x < 0 ? (camera.x - mx) * delta_x : (mx + 1.0 - camera.x) * delta_x;
    double side_y = dir_y < 0 ? (camera.y - my) * delta_y : (my + 1.0 - camera.y) * delta_y;
    int side = 0;
    int wall = 0;
    for (int iter = 0; iter < 2 * kMapSize; ++iter) {
      if (side_x < side_y) {
        side_x += delta_x;
        mx += step_x;
        side = 0;
      } else {
        side_y += delta_y;
        my += step_y;
        side = 1;
      }
      if (mx < 0 || my < 0 || mx >= kMapSize || my >= kMapSize) {
        wall = 1;
        break;
      }
      wall = map_[static_cast<size_t>(my)][static_cast<size_t>(mx)];
      if (wall != 0) {
        break;
      }
    }
    const double raw_dist = side == 0 ? side_x - delta_x : side_y - delta_y;
    // Fisheye correction: project onto the view direction.
    const double dist =
        std::max(0.05, raw_dist * std::cos(ray_angle - camera.angle));

    const int wall_height = static_cast<int>(height_ / dist);
    const int draw_start = std::max(0, height_ / 2 - wall_height / 2);
    const int draw_end = std::min<int>(height_ - 1, height_ / 2 + wall_height / 2);

    // Texture u from the fractional hit position along the wall.
    double hit = side == 0 ? camera.y + raw_dist * dir_y : camera.x + raw_dist * dir_x;
    hit -= std::floor(hit);
    const auto tex_u = static_cast<int32_t>(hit * kTextureSize);
    // Distance shading; y-side walls one shade darker (classic raycaster look).
    int shade = kShades - 1 - static_cast<int>(dist * 0.6);
    if (side == 1) {
      --shade;
    }
    shade = std::clamp(shade, 0, kShades - 1);

    uint8_t* column = frame.data() + col;
    for (int32_t y = 0; y < height_; ++y) {
      uint8_t index;
      if (y < draw_start) {
        // Ceiling: darkens toward the horizon.
        const int cshade = kShades - 1 - (y * kShades) / std::max(1, height_ / 2 + 1);
        index = static_cast<uint8_t>(0 * kShades + std::clamp(cshade, 0, kShades - 1));
      } else if (y > draw_end) {
        const int fshade =
            ((y - height_ / 2) * kShades) / std::max(1, height_ / 2 + 1);
        index = static_cast<uint8_t>(1 * kShades + std::clamp(fshade, 0, kShades - 1));
      } else {
        const auto tex_v = static_cast<int32_t>(
            (static_cast<double>(y - (height_ / 2 - wall_height / 2)) /
             std::max(1, wall_height)) *
            kTextureSize);
        index = TextureIndex(wall, tex_u, tex_v, shade);
      }
      column[static_cast<size_t>(y) * width_] = index;
    }
  }
  return frame;
}

double RaycastEngine::SceneComplexity(const Camera& camera) const {
  // Sample a few rays; the closer the average wall, the more overdraw the engine pays.
  double total = 0.0;
  constexpr int kSamples = 16;
  for (int i = 0; i < kSamples; ++i) {
    const double ray_angle =
        camera.angle + camera.fov * (static_cast<double>(i) / (kSamples - 1) - 0.5);
    const double dx = std::cos(ray_angle) * 0.1;
    const double dy = std::sin(ray_angle) * 0.1;
    double x = camera.x;
    double y = camera.y;
    int steps = 0;
    while (steps < 200 && !IsWall(x, y)) {
      x += dx;
      y += dy;
      ++steps;
    }
    total += 1.0 / (1.0 + steps * 0.1);
  }
  return std::clamp(0.5 + total / kSamples * 2.0, 0.5, 1.5);
}

YuvTranslationLayer::YuvTranslationLayer(const std::array<Pixel, 256>& palette) {
  for (size_t i = 0; i < palette.size(); ++i) {
    lut_[i] = RgbToYuv(palette[i]);
  }
}

YuvImage YuvTranslationLayer::Translate(std::span<const uint8_t> indices, int32_t w,
                                        int32_t h) const {
  SLIM_CHECK(indices.size() >= static_cast<size_t>(w) * h);
  YuvImage out(w, h);
  for (int32_t y = 0; y < h; ++y) {
    for (int32_t x = 0; x < w; ++x) {
      out.Set(x, y, lut_[indices[static_cast<size_t>(y) * w + x]]);
    }
  }
  return out;
}

}  // namespace slim
