// Software 3-D raycasting engine (paper Section 7.3 substitute for Quake).
//
// A real renderer, not a canned trace: textured walls over a 2-D occupancy grid via DDA
// raycasting, distance shading, and solid floor/ceiling bands — rendered into 8-bit
// indexed-color frames against a 256-entry RGB palette, exactly the output format the paper
// had access to ("we only had access to the code which puts pixels on the display" — 8-bit
// indexed pixels plus a colormap). The frames then go through the same palette->YUV
// translation layer the paper built.

#ifndef SRC_QUAKE_RAYCASTER_H_
#define SRC_QUAKE_RAYCASTER_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/color/yuv.h"
#include "src/fb/framebuffer.h"

namespace slim {

struct Camera {
  double x = 0.0;
  double y = 0.0;
  double angle = 0.0;  // radians
  double fov = 1.1;    // horizontal field of view, radians
};

class RaycastEngine {
 public:
  RaycastEngine(int32_t width, int32_t height, uint64_t seed = 0x9a4e);

  int32_t width() const { return width_; }
  int32_t height() const { return height_; }
  const std::array<Pixel, 256>& palette() const { return palette_; }

  // Renders one frame of indexed pixels (row-major, width*height bytes).
  std::vector<uint8_t> RenderFrame(const Camera& camera) const;

  // A deterministic demo path through the map (what our "player" does).
  Camera DemoCamera(int frame) const;

  // True if (x, y) is inside a wall (for tests and camera clamping).
  bool IsWall(double x, double y) const;

  // Approximate scene complexity of a frame in [0.5, 1.5]: nearer walls cost the engine
  // more (overdraw); used to vary the per-frame render cost like real scenes do.
  double SceneComplexity(const Camera& camera) const;

 private:
  static constexpr int kMapSize = 24;
  static constexpr int kTextureSize = 64;
  static constexpr int kWallKinds = 4;
  static constexpr int kShades = 8;

  uint8_t TextureIndex(int wall_kind, int32_t u, int32_t v, int shade) const;

  int32_t width_;
  int32_t height_;
  std::array<std::array<uint8_t, kMapSize>, kMapSize> map_;
  std::array<Pixel, 256> palette_;
  // Per wall kind, a 64x64 texture of palette *base* indices (before shading).
  std::vector<uint8_t> textures_;
};

// The Section 7.3 translation layer: an RGB colormap is turned into a YUV lookup table once
// per palette, and each frame's 8-bit pixels become 4:2:0-subsampled YUV via table lookup.
class YuvTranslationLayer {
 public:
  explicit YuvTranslationLayer(const std::array<Pixel, 256>& palette);

  // Full-resolution YUV image ready for CSCS packing (5 bpp in the paper's setup).
  YuvImage Translate(std::span<const uint8_t> indices, int32_t w, int32_t h) const;

 private:
  std::array<Yuv, 256> lut_;
};

}  // namespace slim

#endif  // SRC_QUAKE_RAYCASTER_H_
