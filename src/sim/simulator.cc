#include "src/sim/simulator.h"

#include <utility>

#include "src/util/check.h"

namespace slim {

EventId Simulator::Schedule(SimDuration delay, Callback cb) {
  SLIM_CHECK(delay >= 0);
  return ScheduleAt(now_ + delay, std::move(cb));
}

EventId Simulator::ScheduleAt(SimTime t, Callback cb) {
  SLIM_CHECK(t >= now_);
  const EventId id = next_id_++;
  queue_.push(QueueEntry{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

void Simulator::Cancel(EventId id) { callbacks_.erase(id); }

bool Simulator::Step() {
  while (!queue_.empty()) {
    const QueueEntry entry = queue_.top();
    queue_.pop();
    auto it = callbacks_.find(entry.id);
    if (it == callbacks_.end()) {
      continue;  // Cancelled.
    }
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    SLIM_DCHECK(entry.time >= now_);
    now_ = entry.time;
    ++events_executed_;
    cb();
    return true;
  }
  return false;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime t) {
  SLIM_CHECK(t >= now_);
  while (!queue_.empty()) {
    const QueueEntry entry = queue_.top();
    if (callbacks_.find(entry.id) == callbacks_.end()) {
      queue_.pop();
      continue;  // Cancelled; discard and keep scanning.
    }
    if (entry.time > t) {
      break;
    }
    Step();
  }
  now_ = t;
}

}  // namespace slim
