#include "src/sim/simulator.h"

#include <utility>

#include "src/util/check.h"

namespace slim {

EventId Simulator::Schedule(SimDuration delay, Callback cb) {
  SLIM_CHECK(delay >= 0);
  return ScheduleAtImpl(now_ + delay, std::move(cb), /*daemon=*/false);
}

EventId Simulator::ScheduleAt(SimTime t, Callback cb) {
  return ScheduleAtImpl(t, std::move(cb), /*daemon=*/false);
}

EventId Simulator::ScheduleDaemon(SimDuration delay, Callback cb) {
  SLIM_CHECK(delay >= 0);
  return ScheduleAtImpl(now_ + delay, std::move(cb), /*daemon=*/true);
}

EventId Simulator::ScheduleAtImpl(SimTime t, Callback cb, bool daemon) {
  SLIM_CHECK(t >= now_);
  const EventId id = next_id_++;
  queue_.push(QueueEntry{t, next_seq_++, id});
  callbacks_.emplace(id, Pending{std::move(cb), daemon});
  if (!daemon) {
    ++live_non_daemon_;
  }
  return id;
}

void Simulator::Cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) {
    return;
  }
  if (!it->second.daemon) {
    --live_non_daemon_;
  }
  callbacks_.erase(it);
}

bool Simulator::Step() {
  if (live_non_daemon_ == 0) {
    return false;  // Empty, or nothing left but daemon observers.
  }
  return StepAny();
}

bool Simulator::StepAny() {
  while (!queue_.empty()) {
    const QueueEntry entry = queue_.top();
    queue_.pop();
    auto it = callbacks_.find(entry.id);
    if (it == callbacks_.end()) {
      continue;  // Cancelled.
    }
    Callback cb = std::move(it->second.cb);
    if (!it->second.daemon) {
      --live_non_daemon_;
    }
    callbacks_.erase(it);
    SLIM_DCHECK(entry.time >= now_);
    now_ = entry.time;
    ++events_executed_;
    cb();
    return true;
  }
  return false;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime t) {
  SLIM_CHECK(t >= now_);
  while (!queue_.empty()) {
    const QueueEntry entry = queue_.top();
    if (callbacks_.find(entry.id) == callbacks_.end()) {
      queue_.pop();
      continue;  // Cancelled; discard and keep scanning.
    }
    if (entry.time > t) {
      break;
    }
    StepAny();
  }
  now_ = t;
}

}  // namespace slim
