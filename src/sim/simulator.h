// Discrete-event simulation core.
//
// Everything timed in libslim (network serialization, console decode costs, scheduler
// quanta, user think time) runs on one Simulator. Events at equal timestamps execute in
// scheduling order, which makes runs fully deterministic.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/util/time.h"

namespace slim {

using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedules cb to run `delay` from now (delay >= 0). Returns an id usable with Cancel().
  EventId Schedule(SimDuration delay, Callback cb);

  // Schedules cb at absolute time t (t >= now()).
  EventId ScheduleAt(SimTime t, Callback cb);

  // Schedules a daemon event: it fires like any other event while the simulation is
  // otherwise alive, but does not by itself keep Run()/Step() going — when only daemon
  // events remain, Run() returns and they stay queued for a later Run()/RunUntil. Periodic
  // observers (the stats streamer) use this so a self-rescheduling sampler cannot turn
  // `sim.Run()` into an infinite loop.
  EventId ScheduleDaemon(SimDuration delay, Callback cb);

  // Cancels a pending event. Cancelling an already-fired or unknown id is a no-op.
  void Cancel(EventId id);

  // Runs one event; returns false if the queue was empty or held only daemon events.
  bool Step();

  // Runs until the queue is empty (daemon events excepted).
  void Run();

  // Runs all events with time <= t, then advances the clock to exactly t.
  void RunUntil(SimTime t);

  // Runs all events within the next `d` of simulated time, then advances the clock by
  // exactly d. Chaos soak loops use this to pace injected input against a simulator that,
  // under fault injection, always has future events pending (timeouts, delayed duplicates).
  void RunFor(SimDuration d) { RunUntil(now_ + d); }

  // Number of events executed so far (for tests and sanity limits).
  uint64_t events_executed() const { return events_executed_; }
  size_t pending_events() const { return callbacks_.size(); }

 private:
  struct QueueEntry {
    SimTime time;
    uint64_t seq;
    EventId id;
    bool operator>(const QueueEntry& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
  };
  struct Pending {
    Callback cb;
    bool daemon;
  };

  EventId ScheduleAtImpl(SimTime t, Callback cb, bool daemon);
  // Runs the next event regardless of daemon-ness (RunUntil's building block).
  bool StepAny();

  SimTime now_ = 0;
  uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  uint64_t events_executed_ = 0;
  size_t live_non_daemon_ = 0;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue_;
  std::unordered_map<EventId, Pending> callbacks_;
};

}  // namespace slim

#endif  // SRC_SIM_SIMULATOR_H_
