// End-to-end user-study harness (paper Sections 3.1 and 5).
//
// Runs one simulated user per (application, seed) through the full stack — user model ->
// console input -> fabric -> server -> application drawing -> encoder -> fabric -> console
// decode — and returns the instrumented logs that all of Figures 2-8 post-process. Each
// user runs on a private simulator/fabric/server, reproducing the paper's underloaded
// two-server setup where traces are "indicative of stand-alone operation".

#ifndef SRC_WORKLOAD_USER_STUDY_H_
#define SRC_WORKLOAD_USER_STUDY_H_

#include <vector>

#include "src/apps/application.h"
#include "src/console/console.h"
#include "src/trace/protocol_log.h"
#include "src/util/time.h"

namespace slim {

struct UserSessionConfig {
  AppKind kind = AppKind::kNetscape;
  uint64_t seed = 1;
  SimDuration duration = Seconds(600);
  int32_t width = 1280;
  int32_t height = 1024;
  // Skip the initial Start() paint in the logs (the paper's traces measure steady-state
  // interaction, not login).
  bool clear_log_after_start = true;
};

struct UserSessionResult {
  ProtocolLog log;                        // server-side instrumented protocol log
  std::vector<ServiceRecord> console_log;  // per-command decode timings at the console
  int64_t commands_applied = 0;
  int64_t commands_dropped = 0;
  int64_t input_events_sent = 0;
  bool framebuffers_match = false;  // server truth vs console soft state at session end
};

UserSessionResult RunUserSession(const UserSessionConfig& config);

// Convenience: runs `users` independent sessions with seeds derived from base_seed.
std::vector<UserSessionResult> RunUserStudy(AppKind kind, int users, SimDuration duration,
                                            uint64_t base_seed = 0x57d1);

// Groups a console service log into display updates: commands separated by less than
// `gap` belong to one update. Returns (start-to-finish service time in ms) per update —
// the quantity Figure 7 plots.
std::vector<double> UpdateServiceTimesMs(const std::vector<ServiceRecord>& log,
                                         SimDuration gap = Milliseconds(2));

}  // namespace slim

#endif  // SRC_WORKLOAD_USER_STUDY_H_
