#include "src/workload/user_model.h"

#include <algorithm>
#include <cmath>

namespace slim {

UserModel::UserModel(AppKind kind, Rng rng)
    : kind_(kind), rng_(rng), params_(ParamsFor(kind)) {}

UserModel::Params UserModel::ParamsFor(AppKind kind) {
  switch (kind) {
    case AppKind::kPhotoshop:
      // Deliberate work: clicks (filters, selections) dominate; long pauses studying the
      // image between operations.
      return Params{0.70, 2, 10, 150.0, 0.7, 1.0, 1.25};
    case AppKind::kNetscape:
      // Reading-dominated: short scroll/typing bursts, clicks to navigate, long reading
      // pauses (the paper's "less interactive" pair).
      return Params{0.25, 2, 8, 150.0, 0.7, 1.2, 1.3};
    case AppKind::kFrameMaker:
      // Sustained typing at 7-12 Hz with short pauses.
      return Params{0.10, 8, 60, 130.0, 0.5, 0.5, 1.9};
    case AppKind::kPim:
      // Quick fire-and-forget interactions: arrows, short replies.
      return Params{0.20, 4, 30, 140.0, 0.5, 0.5, 1.8};
  }
  return Params{0.2, 2, 10, 150.0, 0.5, 0.8, 1.5};
}

UserModel::NextEvent UserModel::Next() {
  NextEvent event;
  if (burst_remaining_ <= 0) {
    // Start a new burst after a think pause.
    burst_is_click_ = rng_.NextBool(params_.click_fraction);
    burst_remaining_ =
        static_cast<int>(rng_.NextInRange(params_.burst_min, params_.burst_max));
    if (burst_is_click_) {
      // Click runs are shorter than typing runs.
      burst_remaining_ = std::max(1, burst_remaining_ / 4);
    }
    const double think_s = rng_.NextPareto(params_.think_xm_seconds, params_.think_alpha);
    // Cap pathological tail draws at two minutes; users do come back.
    event.delay = static_cast<SimDuration>(std::min(think_s, 120.0) * kSecond);
  } else {
    const double mu = std::log(params_.intra_median_ms);
    double gap_ms = rng_.NextLogNormal(mu, params_.intra_sigma);
    // Humans cannot sustain more than ~28 events/sec (Figure 2's empirical ceiling);
    // a sub-1% sliver of key-rollover events lands just above it.
    const double floor_ms = rng_.NextBool(0.008) ? 30.0 : 36.0;
    gap_ms = std::max(gap_ms, floor_ms);
    event.delay = static_cast<SimDuration>(gap_ms * kMillisecond);
  }
  --burst_remaining_;
  event.is_key = !burst_is_click_;
  event.keycode = static_cast<uint32_t>(rng_.NextBelow(997));
  return event;
}

}  // namespace slim
