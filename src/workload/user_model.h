// Stochastic models of interactive users (paper Section 3.1's 50-subject studies).
//
// Humans interact in bursts: runs of keystrokes or repeated clicks at 3-15 Hz separated by
// heavy-tailed think pauses. The per-application parameters are chosen so the resulting
// input-frequency CDFs land in the regimes Figure 2 reports: fewer than 1% of events above
// 28 Hz, roughly 70% below 10 Hz, and Netscape/Photoshop showing a larger fraction of
// events more than a second apart than FrameMaker/PIM.

#ifndef SRC_WORKLOAD_USER_MODEL_H_
#define SRC_WORKLOAD_USER_MODEL_H_

#include "src/apps/application.h"
#include "src/util/rng.h"
#include "src/util/time.h"

namespace slim {

class UserModel {
 public:
  UserModel(AppKind kind, Rng rng);

  struct NextEvent {
    SimDuration delay = 0;  // since the previous event
    bool is_key = true;
    uint32_t keycode = 0;  // for keys: drives the app's action choice deterministically
  };

  NextEvent Next();

 private:
  struct Params {
    double click_fraction;       // probability an event burst is clicks rather than typing
    int burst_min;               // events per burst
    int burst_max;
    double intra_median_ms;      // median gap inside a burst
    double intra_sigma;          // lognormal sigma of the gap
    double think_xm_seconds;     // Pareto scale of inter-burst think time
    double think_alpha;          // Pareto shape (smaller = heavier tail)
  };

  static Params ParamsFor(AppKind kind);

  AppKind kind_;
  Rng rng_;
  Params params_;
  int burst_remaining_ = 0;
  bool burst_is_click_ = false;
};

}  // namespace slim

#endif  // SRC_WORKLOAD_USER_MODEL_H_
