#include "src/workload/user_study.h"

#include <memory>

#include "src/net/fabric.h"
#include "src/server/slim_server.h"
#include "src/sim/simulator.h"
#include "src/workload/user_model.h"

namespace slim {

UserSessionResult RunUserSession(const UserSessionConfig& config) {
  Simulator sim;
  Fabric fabric(&sim, FabricOptions{});  // 100 Mbps switched IF, the paper's default

  ServerOptions server_options;
  server_options.session_width = config.width;
  server_options.session_height = config.height;
  SlimServer server(&sim, &fabric, server_options);

  ConsoleOptions console_options;
  console_options.width = config.width;
  console_options.height = config.height;
  Console console(&sim, &fabric, console_options);

  // Smart-card login: issue a card, create the session, insert the card at the console.
  const uint64_t card = server.auth().IssueCard(static_cast<uint32_t>(config.seed & 0xffffffff));
  ServerSession& session = server.CreateSession(card);
  std::unique_ptr<Application> app =
      MakeApplication(config.kind, &session, config.seed * 0x9e3779b97f4a7c15ull + 1);
  app->BindInput();

  console.InsertCard(server.node(), card);
  sim.Run();  // attach handshake + blank repaint
  app->Start();
  sim.Run();  // initial paint reaches the console
  if (config.clear_log_after_start) {
    session.log().Clear();
    console.ClearServiceLog();
  }

  // Drive the user model through the console's input devices.
  UserModel user(config.kind, Rng(config.seed * 0xc0ffee + 17));
  Rng click_rng(config.seed * 0xdab + 3);
  int64_t events_sent = 0;
  std::function<void()> schedule_next = [&]() {
    UserModel::NextEvent event = user.Next();
    const SimTime at = sim.now() + event.delay;
    if (at > config.duration) {
      return;
    }
    sim.ScheduleAt(at, [&, event]() {
      ++events_sent;
      if (event.is_key) {
        console.SendKey(server.node(), session.id(), event.keycode, /*pressed=*/true);
      } else {
        const int32_t x = static_cast<int32_t>(click_rng.NextBelow(config.width));
        const int32_t y = static_cast<int32_t>(click_rng.NextBelow(config.height));
        console.SendMouse(server.node(), session.id(), x, y, /*buttons=*/1,
                          /*is_motion=*/false);
      }
      schedule_next();
    });
  };
  schedule_next();
  sim.Run();

  UserSessionResult result;
  result.log = session.log();
  result.console_log = console.service_log();
  result.commands_applied = console.commands_applied();
  result.commands_dropped = console.commands_dropped();
  result.input_events_sent = events_sent;
  result.framebuffers_match =
      session.framebuffer().ContentHash() == console.framebuffer().ContentHash();
  return result;
}

std::vector<UserSessionResult> RunUserStudy(AppKind kind, int users, SimDuration duration,
                                            uint64_t base_seed) {
  std::vector<UserSessionResult> results;
  results.reserve(static_cast<size_t>(users));
  for (int u = 0; u < users; ++u) {
    UserSessionConfig config;
    config.kind = kind;
    config.seed = base_seed + static_cast<uint64_t>(u) * 7919 + 1;
    config.duration = duration;
    results.push_back(RunUserSession(config));
  }
  return results;
}

std::vector<double> UpdateServiceTimesMs(const std::vector<ServiceRecord>& log,
                                         SimDuration gap) {
  std::vector<double> out;
  size_t i = 0;
  while (i < log.size()) {
    const SimTime first_arrival = log[i].arrival;
    SimTime last_completion = log[i].completion;
    SimTime last_arrival = log[i].arrival;
    size_t j = i + 1;
    while (j < log.size() && log[j].arrival - last_arrival < gap) {
      last_arrival = log[j].arrival;
      last_completion = std::max(last_completion, log[j].completion);
      ++j;
    }
    out.push_back(ToMillis(last_completion - first_arrival));
    i = j;
  }
  return out;
}

}  // namespace slim
