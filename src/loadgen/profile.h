// Per-process resource usage profiles (paper Section 6.1).
//
// The paper's tool sampled CPU cycles and resident memory of every process at five-second
// intervals during the user studies and replayed those profiles through a load generator.
// We synthesize statistically matched profiles: interval CPU demand is bursty (lognormal
// around the app's measured mean with idle gaps), residency grows toward an app-specific
// working set, and network bytes follow the Figure 8 averages.

#ifndef SRC_LOADGEN_PROFILE_H_
#define SRC_LOADGEN_PROFILE_H_

#include <cstdint>
#include <vector>

#include "src/apps/application.h"
#include "src/util/rng.h"
#include "src/util/time.h"

namespace slim {

struct ResourceInterval {
  double cpu_fraction = 0.0;  // of one 300 MHz-class CPU, in [0, 1]
  int64_t resident_bytes = 0;
  int64_t net_bytes = 0;  // SLIM protocol bytes sent during the interval
};

struct ResourceProfile {
  SimDuration interval = Seconds(5);
  // CPU cost of one interactive event for this application (a Photoshop filter runs far
  // longer than a PIM keystroke); the load generator replays demand in bursts of this size.
  SimDuration event_burst = Milliseconds(60);
  std::vector<ResourceInterval> intervals;

  double AverageCpu() const;
  int64_t PeakResidentBytes() const;
  double AverageNetBps() const;
};

// The paper's measured per-application averages (Section 6.1 for CPU; memory and network
// chosen to match the workloads' footprints and Figure 8 bandwidths).
struct AppResourceParams {
  double mean_cpu;            // fraction of one CPU
  double active_fraction;     // fraction of intervals with meaningful activity
  int64_t working_set_bytes;
  double mean_net_bps;
  SimDuration event_burst;    // CPU per interactive event
};
AppResourceParams ResourceParamsFor(AppKind kind);

// Synthesizes a profile whose long-run averages match ResourceParamsFor(kind).
ResourceProfile SynthesizeProfile(AppKind kind, SimDuration length, Rng rng);

}  // namespace slim

#endif  // SRC_LOADGEN_PROFILE_H_
