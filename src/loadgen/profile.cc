#include "src/loadgen/profile.h"

#include <algorithm>
#include <cmath>

namespace slim {

double ResourceProfile::AverageCpu() const {
  if (intervals.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const auto& i : intervals) {
    total += i.cpu_fraction;
  }
  return total / static_cast<double>(intervals.size());
}

int64_t ResourceProfile::PeakResidentBytes() const {
  int64_t peak = 0;
  for (const auto& i : intervals) {
    peak = std::max(peak, i.resident_bytes);
  }
  return peak;
}

double ResourceProfile::AverageNetBps() const {
  if (intervals.empty()) {
    return 0.0;
  }
  int64_t total = 0;
  for (const auto& i : intervals) {
    total += i.net_bytes;
  }
  return static_cast<double>(total) * 8.0 /
         (ToSeconds(interval) * static_cast<double>(intervals.size()));
}

AppResourceParams ResourceParamsFor(AppKind kind) {
  switch (kind) {
    case AppKind::kPhotoshop:
      return {0.14, 0.55, 60LL * 1024 * 1024, 700'000, Milliseconds(130)};
    case AppKind::kNetscape:
      return {0.13, 0.50, 45LL * 1024 * 1024, 650'000, Milliseconds(90)};
    case AppKind::kFrameMaker:
      return {0.08, 0.65, 28LL * 1024 * 1024, 200'000, Milliseconds(55)};
    case AppKind::kPim:
      return {0.03, 0.45, 14LL * 1024 * 1024, 180'000, Milliseconds(28)};
  }
  return {0.05, 0.5, 16LL * 1024 * 1024, 100'000, Milliseconds(60)};
}

ResourceProfile SynthesizeProfile(AppKind kind, SimDuration length, Rng rng) {
  const AppResourceParams params = ResourceParamsFor(kind);
  ResourceProfile profile;
  profile.event_burst = params.event_burst;
  const auto n = static_cast<size_t>(std::max<int64_t>(1, length / profile.interval));
  profile.intervals.reserve(n);

  // Mean demand during an active interval such that the long-run mean matches mean_cpu.
  const double active_mean = params.mean_cpu / params.active_fraction;
  const double interval_seconds = ToSeconds(profile.interval);
  int64_t resident = params.working_set_bytes / 3;  // starts partially resident
  for (size_t i = 0; i < n; ++i) {
    ResourceInterval out;
    const bool active = rng.NextBool(params.active_fraction);
    if (active) {
      // Lognormal burstiness around the active mean, capped below one CPU.
      const double sigma = 0.6;
      const double mu = std::log(active_mean) - sigma * sigma / 2.0;
      out.cpu_fraction = std::min(0.95, rng.NextLogNormal(mu, sigma));
      // Bytes on the wire follow display activity, which tracks CPU activity.
      const double net_scale = out.cpu_fraction / params.mean_cpu;
      out.net_bytes = static_cast<int64_t>(params.mean_net_bps / 8.0 * interval_seconds *
                                           net_scale * (0.5 + rng.NextDouble()));
    } else {
      out.cpu_fraction = 0.002 + 0.01 * rng.NextDouble();  // background daemons tick
      out.net_bytes = static_cast<int64_t>(rng.NextBelow(256));
    }
    // Working set ratchets up toward its full size, with small fluctuations.
    resident = std::min<int64_t>(
        params.working_set_bytes,
        resident + static_cast<int64_t>(rng.NextBelow(params.working_set_bytes / 40 + 1)));
    out.resident_bytes =
        resident - static_cast<int64_t>(rng.NextBelow(params.working_set_bytes / 50 + 1));
    profile.intervals.push_back(out);
  }
  return profile;
}

}  // namespace slim
