// Trace-driven load generation and the two yardstick applications (paper Section 6).
//
// LoadGeneratorProcess replays a ResourceProfile's CPU and memory consumption on an
// MpScheduler: within each five-second interval it issues the interval's CPU demand as a
// sequence of short bursts. Demand a saturated system cannot absorb within the interval is
// discarded at the interval boundary — the paper's generator "utilizes the same quantity of
// resources in each time interval as the original application did", which bounds backlog and
// is what lets the system run stably while oversubscribed.
//
// CpuYardstick is the Section 6.1 probe: it repeatedly consumes 30 ms of CPU, then thinks
// for 150 ms, and records how much longer than 30 ms each burst took (the "added latency"
// of Figures 9 and 10).
//
// TrafficGenerator and NetYardstick are the Section 6.2 equivalents for the IF-sharing
// experiment: background flows replay the network portion of the profiles toward a sink,
// and the yardstick sends a 64-byte command packet, receives a 1200-byte response, thinks
// 150 ms, and records round-trip times (Figure 11).

#ifndef SRC_LOADGEN_LOADGEN_H_
#define SRC_LOADGEN_LOADGEN_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/loadgen/profile.h"
#include "src/net/fabric.h"
#include "src/sched/scheduler.h"
#include "src/sim/simulator.h"
#include "src/util/stats.h"

namespace slim {

class LoadGeneratorProcess {
 public:
  // One interval's demand is issued as interactive-event-sized CPU bursts (the profile's
  // event_burst; an application handling one user event runs tens of milliseconds),
  // separated by sleeps that pace the bursts evenly across the interval. Each burst
  // therefore enters the scheduler with the interactive boost, exactly like the real
  // applications whose profiles are being replayed.

  LoadGeneratorProcess(Simulator* sim, MpScheduler* sched, ResourceProfile profile,
                       Rng rng);

  void Start();

  SimDuration cpu_consumed() const { return cpu_consumed_; }
  SimDuration cpu_discarded() const { return cpu_discarded_; }

 private:
  void BeginInterval(size_t index);
  void PumpBurst();

  Simulator* sim_;
  MpScheduler* sched_;
  ResourceProfile profile_;
  Rng rng_;
  int pid_ = -1;
  size_t interval_index_ = 0;
  SimTime interval_end_ = 0;
  SimDuration interval_budget_ = 0;
  SimDuration cpu_consumed_ = 0;
  SimDuration cpu_discarded_ = 0;
  bool idle_since_sleep_ = true;
};

class CpuYardstick {
 public:
  static constexpr SimDuration kBurst = Milliseconds(30);
  static constexpr SimDuration kThink = Milliseconds(150);

  CpuYardstick(Simulator* sim, MpScheduler* sched);

  void Start();

  // Added latency samples in milliseconds (wall time of each burst minus 30 ms).
  const std::vector<double>& added_latency_ms() const { return samples_; }
  double AverageAddedLatencyMs() const;

 private:
  void RunCycle();

  Simulator* sim_;
  MpScheduler* sched_;
  int pid_ = -1;
  std::vector<double> samples_;
};

// Background traffic source for the IF-sharing experiment: replays a profile's network
// bytes as display-update-sized datagram bursts from `src` to `sink`.
class TrafficGenerator {
 public:
  TrafficGenerator(Simulator* sim, Fabric* fabric, NodeId src, NodeId sink,
                   ResourceProfile profile, Rng rng);

  void Start();
  int64_t bytes_offered() const { return bytes_offered_; }

 private:
  void BeginInterval(size_t index);
  void SendBurst();

  Simulator* sim_;
  Fabric* fabric_;
  NodeId src_;
  NodeId sink_;
  ResourceProfile profile_;
  Rng rng_;
  size_t interval_index_ = 0;
  SimTime interval_end_ = 0;
  int64_t interval_bytes_left_ = 0;
  int64_t bytes_offered_ = 0;
};

// Round-trip probe: 64 B request to the echo node, 1200 B reply, 150 ms think time.
// The echo responder must be installed on the peer with InstallEchoResponder.
class NetYardstick {
 public:
  static constexpr int64_t kRequestBytes = 64;
  static constexpr int64_t kResponseBytes = 1200;
  static constexpr SimDuration kThink = Milliseconds(150);
  // A probe unanswered for this long counts as lost and a new cycle starts.
  static constexpr SimDuration kTimeout = Milliseconds(500);

  NetYardstick(Simulator* sim, Fabric* fabric, NodeId self, NodeId server);

  void Start();

  const std::vector<double>& rtt_ms() const { return samples_; }
  double AverageRttMs() const;
  int64_t timeouts() const { return timeouts_; }

 private:
  void SendProbe();

  Simulator* sim_;
  Fabric* fabric_;
  NodeId self_;
  NodeId server_;
  uint64_t next_probe_id_ = 1;
  uint64_t awaiting_probe_id_ = 0;
  SimTime probe_sent_at_ = 0;
  EventId timeout_event_ = kInvalidEventId;
  std::vector<double> samples_;
  int64_t timeouts_ = 0;
};

// Makes `node` respond to NetYardstick probes with kResponseBytes-sized replies and absorb
// all other traffic (the experiment's sink/server role).
void InstallEchoResponder(Fabric* fabric, NodeId node);

}  // namespace slim

#endif  // SRC_LOADGEN_LOADGEN_H_
