#include "src/loadgen/loadgen.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace slim {

LoadGeneratorProcess::LoadGeneratorProcess(Simulator* sim, MpScheduler* sched,
                                           ResourceProfile profile, Rng rng)
    : sim_(sim), sched_(sched), profile_(std::move(profile)), rng_(rng) {
  SLIM_CHECK(sim != nullptr && sched != nullptr);
}

void LoadGeneratorProcess::Start() {
  pid_ = sched_->AddProcess(0);
  BeginInterval(0);
}

void LoadGeneratorProcess::BeginInterval(size_t index) {
  if (index >= profile_.intervals.size()) {
    return;
  }
  interval_index_ = index;
  const ResourceInterval& interval = profile_.intervals[index];
  // Demand the saturated system failed to absorb is dropped at the boundary.
  cpu_discarded_ += std::max<SimDuration>(interval_budget_, 0);
  interval_budget_ = static_cast<SimDuration>(interval.cpu_fraction *
                                              static_cast<double>(profile_.interval));
  interval_end_ = sim_->now() + profile_.interval;
  sched_->SetResidentBytes(pid_, interval.resident_bytes);
  sim_->ScheduleAt(interval_end_, [this, index] { BeginInterval(index + 1); });
  if (!sched_->HasBurstInFlight(pid_)) {
    PumpBurst();
  }
}

void LoadGeneratorProcess::PumpBurst() {
  if (interval_budget_ <= 0 || sim_->now() >= interval_end_) {
    idle_since_sleep_ = true;
    return;  // Wait for the next interval to replenish the budget.
  }
  const SimDuration burst = std::min(profile_.event_burst, interval_budget_);
  const bool accepted = sched_->Submit(pid_, burst, /*interactive=*/true, [this, burst] {
    cpu_consumed_ += burst;
    interval_budget_ -= burst;
    // Sleep long enough to spread the remaining budget evenly over the rest of the
    // interval (with exponential jitter): the process consumes its recorded demand at the
    // recorded pace instead of slamming it in one backlogged run.
    const SimDuration remaining_time = std::max<SimDuration>(interval_end_ - sim_->now(), 0);
    double nap_ms = 5.0;
    if (interval_budget_ > 0 && remaining_time > 0) {
      const double cycles =
          static_cast<double>(interval_budget_) /
          static_cast<double>(std::min(profile_.event_burst, interval_budget_));
      nap_ms =
          std::max(5.0, ToMillis(remaining_time) / cycles - ToMillis(profile_.event_burst));
    }
    idle_since_sleep_ = true;
    const auto nap = static_cast<SimDuration>(rng_.NextExponential(nap_ms) * kMillisecond);
    sim_->Schedule(nap, [this] {
      if (!sched_->HasBurstInFlight(pid_)) {
        PumpBurst();
      }
    });
  });
  SLIM_CHECK(accepted);
}

CpuYardstick::CpuYardstick(Simulator* sim, MpScheduler* sched) : sim_(sim), sched_(sched) {
  SLIM_CHECK(sim != nullptr && sched != nullptr);
}

void CpuYardstick::Start() {
  pid_ = sched_->AddProcess(4LL * 1024 * 1024);
  RunCycle();
}

void CpuYardstick::RunCycle() {
  const SimTime submitted = sim_->now();
  const bool accepted = sched_->Submit(pid_, kBurst, /*interactive=*/true, [this, submitted] {
    const SimDuration wall = sim_->now() - submitted;
    samples_.push_back(ToMillis(wall - kBurst));
    sim_->Schedule(kThink, [this] { RunCycle(); });
  });
  SLIM_CHECK(accepted);
}

double CpuYardstick::AverageAddedLatencyMs() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const double s : samples_) {
    total += s;
  }
  return total / static_cast<double>(samples_.size());
}

TrafficGenerator::TrafficGenerator(Simulator* sim, Fabric* fabric, NodeId src, NodeId sink,
                                   ResourceProfile profile, Rng rng)
    : sim_(sim), fabric_(fabric), src_(src), sink_(sink), profile_(std::move(profile)),
      rng_(rng) {
  SLIM_CHECK(sim != nullptr && fabric != nullptr);
}

void TrafficGenerator::Start() { BeginInterval(0); }

void TrafficGenerator::BeginInterval(size_t index) {
  if (index >= profile_.intervals.size()) {
    return;
  }
  interval_index_ = index;
  interval_bytes_left_ = profile_.intervals[index].net_bytes;
  interval_end_ = sim_->now() + profile_.interval;
  sim_->ScheduleAt(interval_end_, [this, index] { BeginInterval(index + 1); });
  SendBurst();
}

void TrafficGenerator::SendBurst() {
  if (interval_bytes_left_ <= 0 || sim_->now() >= interval_end_) {
    return;
  }
  // Display-update-sized bursts: mostly a few KB, occasionally tens of KB (Figure 5 shape).
  const auto burst = std::min<int64_t>(
      interval_bytes_left_,
      static_cast<int64_t>(std::clamp(rng_.NextLogNormal(7.6, 1.2), 64.0, 120e3)));
  interval_bytes_left_ -= burst;
  bytes_offered_ += burst;
  // Fragment to MTU-sized datagrams.
  int64_t remaining = burst;
  while (remaining > 0) {
    const int64_t chunk = std::min<int64_t>(remaining, kMtuBytes);
    Datagram dgram;
    dgram.src = src_;
    dgram.dst = sink_;
    dgram.payload.assign(static_cast<size_t>(chunk), 0);
    fabric_->Send(std::move(dgram));
    remaining -= chunk;
  }
  // Pace so the interval's bytes spread across the interval with jitter.
  const SimDuration remaining_time = interval_end_ - sim_->now();
  const int64_t remaining_bytes = std::max<int64_t>(interval_bytes_left_, 1);
  const double mean_gap =
      static_cast<double>(remaining_time) * static_cast<double>(burst) /
      static_cast<double>(remaining_bytes + burst);
  const auto gap = static_cast<SimDuration>(
      std::max(1.0, rng_.NextExponential(std::max(mean_gap, 1.0))));
  sim_->Schedule(gap, [this] { SendBurst(); });
}

NetYardstick::NetYardstick(Simulator* sim, Fabric* fabric, NodeId self, NodeId server)
    : sim_(sim), fabric_(fabric), self_(self), server_(server) {
  SLIM_CHECK(sim != nullptr && fabric != nullptr);
  fabric_->SetReceiver(self_, [this](Datagram dgram) {
    if (dgram.payload.size() != static_cast<size_t>(kResponseBytes) ||
        dgram.payload.size() < 8) {
      return;
    }
    uint64_t id = 0;
    for (int i = 0; i < 8; ++i) {
      id |= static_cast<uint64_t>(dgram.payload[static_cast<size_t>(i)]) << (8 * i);
    }
    if (id != awaiting_probe_id_) {
      return;  // Stale response after a timeout.
    }
    awaiting_probe_id_ = 0;
    sim_->Cancel(timeout_event_);
    samples_.push_back(ToMillis(sim_->now() - probe_sent_at_));
    sim_->Schedule(kThink, [this] { SendProbe(); });
  });
}

void NetYardstick::Start() { SendProbe(); }

void NetYardstick::SendProbe() {
  const uint64_t id = next_probe_id_++;
  awaiting_probe_id_ = id;
  probe_sent_at_ = sim_->now();
  Datagram dgram;
  dgram.src = self_;
  dgram.dst = server_;
  dgram.payload.assign(static_cast<size_t>(kRequestBytes), 0);
  for (int i = 0; i < 8; ++i) {
    dgram.payload[static_cast<size_t>(i)] = static_cast<uint8_t>(id >> (8 * i));
  }
  fabric_->Send(std::move(dgram));
  timeout_event_ = sim_->Schedule(kTimeout, [this] {
    ++timeouts_;
    awaiting_probe_id_ = 0;
    SendProbe();
  });
}

double NetYardstick::AverageRttMs() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const double s : samples_) {
    total += s;
  }
  return total / static_cast<double>(samples_.size());
}

void InstallEchoResponder(Fabric* fabric, NodeId node) {
  SLIM_CHECK(fabric != nullptr);
  Simulator* sim = fabric->simulator();
  (void)sim;
  fabric->SetReceiver(node, [fabric, node](Datagram dgram) {
    if (dgram.payload.size() != static_cast<size_t>(NetYardstick::kRequestBytes)) {
      return;  // Background traffic sinks here.
    }
    Datagram reply;
    reply.src = node;
    reply.dst = dgram.src;
    reply.payload.assign(static_cast<size_t>(NetYardstick::kResponseBytes), 0);
    std::copy_n(dgram.payload.begin(), 8, reply.payload.begin());
    fabric->Send(std::move(reply));
  });
}

}  // namespace slim
