#include "src/protocol/messages.h"

#include "src/protocol/wire.h"
#include "src/util/check.h"

namespace slim {

namespace {

void WriteRect(ByteWriter& w, const Rect& r) {
  w.I32(r.x);
  w.I32(r.y);
  w.I32(r.w);
  w.I32(r.h);
}

Rect ReadRect(ByteReader& r) {
  Rect out;
  out.x = r.I32();
  out.y = r.I32();
  out.w = r.I32();
  out.h = r.I32();
  return out;
}

void WriteBody(ByteWriter& w, const MessageBody& body) {
  std::visit(
      [&w](const auto& b) {
        using T = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<T, SetCommand>) {
          WriteRect(w, b.dst);
          w.Bytes(b.rgb);
        } else if constexpr (std::is_same_v<T, BitmapCommand>) {
          WriteRect(w, b.dst);
          w.U32(b.fg);
          w.U32(b.bg);
          w.Bytes(b.bits);
        } else if constexpr (std::is_same_v<T, FillCommand>) {
          WriteRect(w, b.dst);
          w.U32(b.color);
        } else if constexpr (std::is_same_v<T, CopyCommand>) {
          w.I32(b.src_x);
          w.I32(b.src_y);
          WriteRect(w, b.dst);
        } else if constexpr (std::is_same_v<T, CscsCommand>) {
          w.I32(b.src_w);
          w.I32(b.src_h);
          WriteRect(w, b.dst);
          w.U8(static_cast<uint8_t>(b.depth));
          w.Bytes(b.payload);
        } else if constexpr (std::is_same_v<T, KeyEventMsg>) {
          w.U32(b.keycode);
          w.U8(b.pressed ? 1 : 0);
        } else if constexpr (std::is_same_v<T, MouseEventMsg>) {
          w.I32(b.x);
          w.I32(b.y);
          w.U8(b.buttons);
          w.U8(b.is_motion ? 1 : 0);
        } else if constexpr (std::is_same_v<T, StatusMsg>) {
          w.U32(b.code);
          w.U64(b.last_seq_seen);
        } else if constexpr (std::is_same_v<T, NackMsg>) {
          w.U64(b.first_seq);
          w.U64(b.last_seq);
        } else if constexpr (std::is_same_v<T, SessionAttachMsg>) {
          w.U64(b.card_id);
        } else if constexpr (std::is_same_v<T, SessionDetachMsg>) {
          w.U64(b.card_id);
        } else if constexpr (std::is_same_v<T, BandwidthRequestMsg>) {
          w.U64(b.flow_id);
          w.I64(b.bits_per_second);
        } else if constexpr (std::is_same_v<T, BandwidthGrantMsg>) {
          w.U64(b.flow_id);
          w.I64(b.bits_per_second);
          w.I64(b.total_bps);
        } else if constexpr (std::is_same_v<T, AudioMsg>) {
          w.U32(b.sample_rate);
          w.U32(static_cast<uint32_t>(b.samples.size()));
          w.Bytes(b.samples);
        } else if constexpr (std::is_same_v<T, PingMsg>) {
          w.U64(b.payload);
        } else if constexpr (std::is_same_v<T, PongMsg>) {
          w.U64(b.payload);
        } else if constexpr (std::is_same_v<T, SessionReleaseMsg>) {
          w.U8(static_cast<uint8_t>(b.reason));
        } else if constexpr (std::is_same_v<T, CheckpointChunkMsg>) {
          w.U64(b.epoch);
          w.U32(b.round);
          w.U32(b.index);
          w.U32(b.count);
          w.U64(b.offset);
          w.Bytes(b.data);
        } else if constexpr (std::is_same_v<T, MigrateBeginMsg>) {
          w.U64(b.epoch);
          w.U64(b.card_id);
          w.U32(b.origin_session);
          w.U32(b.round);
          w.U8(static_cast<uint8_t>(b.purpose));
          w.U32(b.chunk_count);
          w.U64(b.total_bytes);
        } else if constexpr (std::is_same_v<T, MigrateCommitMsg>) {
          w.U64(b.epoch);
          w.U32(b.round);
          w.U8(b.phase);
        } else if constexpr (std::is_same_v<T, MigrateAbortMsg>) {
          w.U64(b.epoch);
          w.U8(static_cast<uint8_t>(b.reason));
        } else if constexpr (std::is_same_v<T, SeqSyncMsg>) {
          w.U64(b.first_skipped_seq);
          w.U64(b.first_valid_seq);
        }
      },
      body);
}

std::optional<MessageBody> ReadBody(MessageType type, ByteReader& r, size_t payload_len) {
  switch (type) {
    case MessageType::kSet: {
      SetCommand c;
      c.dst = ReadRect(r);
      if (payload_len < 16) {
        return std::nullopt;
      }
      c.rgb = r.Bytes(payload_len - 16);
      return MessageBody(std::move(c));
    }
    case MessageType::kBitmap: {
      BitmapCommand c;
      c.dst = ReadRect(r);
      c.fg = r.U32();
      c.bg = r.U32();
      if (payload_len < 24) {
        return std::nullopt;
      }
      c.bits = r.Bytes(payload_len - 24);
      return MessageBody(std::move(c));
    }
    case MessageType::kFill: {
      FillCommand c;
      c.dst = ReadRect(r);
      c.color = r.U32();
      return MessageBody(c);
    }
    case MessageType::kCopy: {
      CopyCommand c;
      c.src_x = r.I32();
      c.src_y = r.I32();
      c.dst = ReadRect(r);
      return MessageBody(c);
    }
    case MessageType::kCscs: {
      CscsCommand c;
      c.src_w = r.I32();
      c.src_h = r.I32();
      c.dst = ReadRect(r);
      const uint8_t depth = r.U8();
      switch (depth) {
        case 16:
          c.depth = CscsDepth::k16;
          break;
        case 12:
          c.depth = CscsDepth::k12;
          break;
        case 8:
          c.depth = CscsDepth::k8;
          break;
        case 6:
          c.depth = CscsDepth::k6;
          break;
        case 5:
          c.depth = CscsDepth::k5;
          break;
        default:
          return std::nullopt;
      }
      if (payload_len < 25) {
        return std::nullopt;
      }
      c.payload = r.Bytes(payload_len - 25);
      return MessageBody(std::move(c));
    }
    case MessageType::kKeyEvent: {
      KeyEventMsg m;
      m.keycode = r.U32();
      m.pressed = r.U8() != 0;
      return MessageBody(m);
    }
    case MessageType::kMouseEvent: {
      MouseEventMsg m;
      m.x = r.I32();
      m.y = r.I32();
      m.buttons = r.U8();
      m.is_motion = r.U8() != 0;
      return MessageBody(m);
    }
    case MessageType::kStatus: {
      StatusMsg m;
      m.code = r.U32();
      m.last_seq_seen = r.U64();
      return MessageBody(m);
    }
    case MessageType::kNack: {
      NackMsg m;
      m.first_seq = r.U64();
      m.last_seq = r.U64();
      return MessageBody(m);
    }
    case MessageType::kSessionAttach: {
      SessionAttachMsg m;
      m.card_id = r.U64();
      return MessageBody(m);
    }
    case MessageType::kSessionDetach: {
      SessionDetachMsg m;
      m.card_id = r.U64();
      return MessageBody(m);
    }
    case MessageType::kBandwidthRequest: {
      BandwidthRequestMsg m;
      m.flow_id = r.U64();
      m.bits_per_second = r.I64();
      return MessageBody(m);
    }
    case MessageType::kBandwidthGrant: {
      BandwidthGrantMsg m;
      m.flow_id = r.U64();
      m.bits_per_second = r.I64();
      m.total_bps = r.I64();
      return MessageBody(m);
    }
    case MessageType::kAudio: {
      AudioMsg m;
      m.sample_rate = r.U32();
      const uint32_t n = r.U32();
      m.samples = r.Bytes(n);
      return MessageBody(std::move(m));
    }
    case MessageType::kPing: {
      PingMsg m;
      m.payload = r.U64();
      return MessageBody(m);
    }
    case MessageType::kPong: {
      PongMsg m;
      m.payload = r.U64();
      return MessageBody(m);
    }
    case MessageType::kSessionRelease: {
      SessionReleaseMsg m;
      switch (r.U8()) {
        case 1:
          m.reason = ReleaseReason::kHotdesk;
          break;
        case 2:
          m.reason = ReleaseReason::kCardRemoved;
          break;
        case 3:
          m.reason = ReleaseReason::kLivenessTimeout;
          break;
        case 4:
          m.reason = ReleaseReason::kEvicted;
          break;
        case 5:
          m.reason = ReleaseReason::kReplaced;
          break;
        case 6:
          m.reason = ReleaseReason::kMigrated;
          break;
        default:
          return std::nullopt;
      }
      return MessageBody(m);
    }
    case MessageType::kCheckpointChunk: {
      CheckpointChunkMsg m;
      m.epoch = r.U64();
      m.round = r.U32();
      m.index = r.U32();
      m.count = r.U32();
      m.offset = r.U64();
      if (payload_len < 28) {
        return std::nullopt;
      }
      m.data = r.Bytes(payload_len - 28);
      // A chunk that claims to sit outside its own round's chunk table is corrupt even if
      // every byte read cleanly.
      if (m.count == 0 || m.index >= m.count) {
        return std::nullopt;
      }
      return MessageBody(std::move(m));
    }
    case MessageType::kMigrateBegin: {
      MigrateBeginMsg m;
      m.epoch = r.U64();
      m.card_id = r.U64();
      m.origin_session = r.U32();
      m.round = r.U32();
      switch (r.U8()) {
        case 1:
          m.purpose = MigratePurpose::kHandoff;
          break;
        case 2:
          m.purpose = MigratePurpose::kStandby;
          break;
        default:
          return std::nullopt;
      }
      m.chunk_count = r.U32();
      m.total_bytes = r.U64();
      return MessageBody(m);
    }
    case MessageType::kMigrateCommit: {
      MigrateCommitMsg m;
      m.epoch = r.U64();
      m.round = r.U32();
      m.phase = r.U8();
      if (m.phase != 1 && m.phase != 2) {
        return std::nullopt;
      }
      return MessageBody(m);
    }
    case MessageType::kMigrateAbort: {
      MigrateAbortMsg m;
      m.epoch = r.U64();
      switch (r.U8()) {
        case 1:
          m.reason = MigrateAbortReason::kTimeout;
          break;
        case 2:
          m.reason = MigrateAbortReason::kBadCheckpoint;
          break;
        case 3:
          m.reason = MigrateAbortReason::kSuperseded;
          break;
        case 4:
          m.reason = MigrateAbortReason::kShutdown;
          break;
        default:
          return std::nullopt;
      }
      return MessageBody(m);
    }
    case MessageType::kSeqSync: {
      SeqSyncMsg m;
      m.first_skipped_seq = r.U64();
      m.first_valid_seq = r.U64();
      if (m.first_valid_seq < m.first_skipped_seq) {
        return std::nullopt;
      }
      return MessageBody(m);
    }
  }
  return std::nullopt;
}

}  // namespace

MessageType TypeOfBody(const MessageBody& body) {
  return std::visit(
      [](const auto& b) -> MessageType {
        using T = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<T, SetCommand>) {
          return MessageType::kSet;
        } else if constexpr (std::is_same_v<T, BitmapCommand>) {
          return MessageType::kBitmap;
        } else if constexpr (std::is_same_v<T, FillCommand>) {
          return MessageType::kFill;
        } else if constexpr (std::is_same_v<T, CopyCommand>) {
          return MessageType::kCopy;
        } else if constexpr (std::is_same_v<T, CscsCommand>) {
          return MessageType::kCscs;
        } else if constexpr (std::is_same_v<T, KeyEventMsg>) {
          return MessageType::kKeyEvent;
        } else if constexpr (std::is_same_v<T, MouseEventMsg>) {
          return MessageType::kMouseEvent;
        } else if constexpr (std::is_same_v<T, StatusMsg>) {
          return MessageType::kStatus;
        } else if constexpr (std::is_same_v<T, NackMsg>) {
          return MessageType::kNack;
        } else if constexpr (std::is_same_v<T, SessionAttachMsg>) {
          return MessageType::kSessionAttach;
        } else if constexpr (std::is_same_v<T, SessionDetachMsg>) {
          return MessageType::kSessionDetach;
        } else if constexpr (std::is_same_v<T, BandwidthRequestMsg>) {
          return MessageType::kBandwidthRequest;
        } else if constexpr (std::is_same_v<T, BandwidthGrantMsg>) {
          return MessageType::kBandwidthGrant;
        } else if constexpr (std::is_same_v<T, AudioMsg>) {
          return MessageType::kAudio;
        } else if constexpr (std::is_same_v<T, PingMsg>) {
          return MessageType::kPing;
        } else if constexpr (std::is_same_v<T, PongMsg>) {
          return MessageType::kPong;
        } else if constexpr (std::is_same_v<T, SessionReleaseMsg>) {
          return MessageType::kSessionRelease;
        } else if constexpr (std::is_same_v<T, CheckpointChunkMsg>) {
          return MessageType::kCheckpointChunk;
        } else if constexpr (std::is_same_v<T, MigrateBeginMsg>) {
          return MessageType::kMigrateBegin;
        } else if constexpr (std::is_same_v<T, MigrateCommitMsg>) {
          return MessageType::kMigrateCommit;
        } else if constexpr (std::is_same_v<T, MigrateAbortMsg>) {
          return MessageType::kMigrateAbort;
        } else {
          static_assert(std::is_same_v<T, SeqSyncMsg>);
          return MessageType::kSeqSync;
        }
      },
      body);
}

MessageType TypeOfMessage(const Message& msg) { return TypeOfBody(msg.body); }

bool IsDisplayCommand(const Message& msg) {
  const auto type = static_cast<uint8_t>(TypeOfMessage(msg));
  return type >= 1 && type <= 5;
}

std::vector<uint8_t> SerializeMessageBody(const MessageBody& body) {
  ByteWriter w;
  WriteBody(w, body);
  return w.Take();
}

std::optional<MessageBody> ParseMessageBody(MessageType type,
                                            std::span<const uint8_t> payload) {
  ByteReader r(payload);
  auto body = ReadBody(type, r, payload.size());
  if (!body.has_value() || !r.ok()) {
    return std::nullopt;
  }
  return body;
}

std::vector<uint8_t> SerializeMessage(const Message& msg) {
  ByteWriter body_writer;
  WriteBody(body_writer, msg.body);
  const std::vector<uint8_t>& payload = body_writer.data();

  ByteWriter w;
  w.U8(kMessageMagic);
  w.U8(static_cast<uint8_t>(TypeOfMessage(msg)));
  w.U16(0);
  w.U32(msg.session_id);
  w.U64(msg.seq);
  w.U32(static_cast<uint32_t>(payload.size()));
  w.Bytes(payload);
  return w.Take();
}

std::optional<Message> ParseMessage(std::span<const uint8_t> data) {
  ByteReader r(data);
  if (r.U8() != kMessageMagic) {
    return std::nullopt;
  }
  const uint8_t raw_type = r.U8();
  r.U16();  // reserved
  Message msg;
  msg.session_id = r.U32();
  msg.seq = r.U64();
  const uint32_t payload_len = r.U32();
  if (!r.ok() || r.remaining() < payload_len) {
    return std::nullopt;
  }
  auto body = ReadBody(static_cast<MessageType>(raw_type), r, payload_len);
  if (!body.has_value() || !r.ok()) {
    return std::nullopt;
  }
  msg.body = std::move(*body);
  return msg;
}

size_t MessageWireSize(const Message& msg) { return BodyWireSize(msg.body); }

size_t BodyWireSize(const MessageBody& body) {
  const auto type = static_cast<uint8_t>(TypeOfBody(body));
  if (type >= 1 && type <= 5) {
    return std::visit(
        [](const auto& b) -> size_t {
          using T = std::decay_t<decltype(b)>;
          if constexpr (std::is_same_v<T, SetCommand> || std::is_same_v<T, BitmapCommand> ||
                        std::is_same_v<T, FillCommand> || std::is_same_v<T, CopyCommand> ||
                        std::is_same_v<T, CscsCommand>) {
            return WireSize(DisplayCommand(b));
          } else {
            return 0;
          }
        },
        body);
  }
  ByteWriter w;
  WriteBody(w, body);
  return kMessageHeaderBytes + w.size();
}

}  // namespace slim
