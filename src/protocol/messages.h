// Complete SLIM protocol message set.
//
// Besides the five display commands, the protocol carries keyboard/mouse state, audio,
// console status, bandwidth allocation requests (Section 7), session control for the
// smart-card hotdesking model, and NACK-based replay requests for the unreliable transport
// (Section 2.2: all messages carry unique identifiers and can be replayed with no ill
// effects).

#ifndef SRC_PROTOCOL_MESSAGES_H_
#define SRC_PROTOCOL_MESSAGES_H_

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "src/protocol/commands.h"

namespace slim {

enum class MessageType : uint8_t {
  // Display commands reuse the CommandType values 1..5.
  kSet = 1,
  kBitmap = 2,
  kFill = 3,
  kCopy = 4,
  kCscs = 5,
  // Console -> server.
  kKeyEvent = 16,
  kMouseEvent = 17,
  kStatus = 18,
  kNack = 19,
  kSessionAttach = 20,   // smart card inserted
  kSessionDetach = 21,   // smart card removed
  kBandwidthRequest = 22,  // server -> console: ask the console's allocator for a share
  // Server -> console (non-display).
  kAudio = 32,
  kBandwidthGrant = 33,  // console -> server: the allocator's answer (Section 7)
  kPing = 34,
  kPong = 35,
  kSessionRelease = 36,  // session left this console: blank and stop displaying
};

// Why a session's console binding ended; carried on SessionReleaseMsg so consoles and
// logs can distinguish a hotdesk pull from an operator-visible failure.
enum class ReleaseReason : uint8_t {
  kHotdesk = 1,          // the card appeared at another console
  kCardRemoved = 2,      // the user pulled the card at this console
  kLivenessTimeout = 3,  // the console stopped answering keepalive probes
  kEvicted = 4,          // idle-session eviction reclaimed the session
  kReplaced = 5,         // a different card was inserted at this console
};

struct KeyEventMsg {
  uint32_t keycode = 0;
  bool pressed = true;
  bool operator==(const KeyEventMsg&) const = default;
};

struct MouseEventMsg {
  int32_t x = 0;
  int32_t y = 0;
  uint8_t buttons = 0;  // bitmask of pressed buttons
  bool is_motion = false;
  bool operator==(const MouseEventMsg&) const = default;
};

struct StatusMsg {
  uint32_t code = 0;
  uint64_t last_seq_seen = 0;
  bool operator==(const StatusMsg&) const = default;
};

// Request replay of messages in [first_seq, last_seq]; idempotent application makes replay
// safe even if some of them did arrive.
struct NackMsg {
  uint64_t first_seq = 0;
  uint64_t last_seq = 0;
  bool operator==(const NackMsg&) const = default;
};

struct SessionAttachMsg {
  uint64_t card_id = 0;  // smart card identity presented at the console
  bool operator==(const SessionAttachMsg&) const = default;
};

struct SessionDetachMsg {
  uint64_t card_id = 0;
  bool operator==(const SessionDetachMsg&) const = default;
};

// Server -> console: a flow (our flows are sessions) asking the console's allocator for
// `bits_per_second` of the last-mile link. A non-positive rate withdraws the flow's
// reservation — the console removes it and redistributes to the surviving flows.
struct BandwidthRequestMsg {
  uint64_t flow_id = 0;
  int64_t bits_per_second = 0;
  bool operator==(const BandwidthRequestMsg&) const = default;
};

// Console -> server: the allocator's decision for one flow. Sent to the requester and —
// whenever a recompute changes other flows' shares — to every flow whose grant moved, so
// freed bandwidth is reabsorbed without a stale-grant window. `total_bps` is the console's
// whole allocatable link, letting the server judge headroom, not just its own share.
struct BandwidthGrantMsg {
  uint64_t flow_id = 0;
  int64_t bits_per_second = 0;
  int64_t total_bps = 0;
  bool operator==(const BandwidthGrantMsg&) const = default;
};

struct AudioMsg {
  uint32_t sample_rate = 8000;
  std::vector<uint8_t> samples;
  bool operator==(const AudioMsg&) const = default;
};

struct PingMsg {
  uint64_t payload = 0;
  bool operator==(const PingMsg&) const = default;
};

struct PongMsg {
  uint64_t payload = 0;
  bool operator==(const PongMsg&) const = default;
};

// Server -> console: the hotdesk handoff's "blank notice". The console that receives this
// no longer shows the session — it blanks its soft-state framebuffer and (via the seq
// guards in Console) ignores any stale display traffic for the session still in flight.
// Idempotent: the server re-sends it a bounded number of times so a lossy fabric cannot
// leave a released console displaying a dead session's last frame.
struct SessionReleaseMsg {
  ReleaseReason reason = ReleaseReason::kHotdesk;
  bool operator==(const SessionReleaseMsg&) const = default;
};

using MessageBody =
    std::variant<SetCommand, BitmapCommand, FillCommand, CopyCommand, CscsCommand, KeyEventMsg,
                 MouseEventMsg, StatusMsg, NackMsg, SessionAttachMsg, SessionDetachMsg,
                 BandwidthRequestMsg, BandwidthGrantMsg, AudioMsg, PingMsg, PongMsg,
                 SessionReleaseMsg>;

struct Message {
  uint32_t session_id = 0;
  uint64_t seq = 0;  // unique, monotonically increasing per session and direction
  MessageBody body;
};

MessageType TypeOfMessage(const Message& msg);
bool IsDisplayCommand(const Message& msg);

// Wire format: u8 magic, u8 type, u16 reserved, u32 session, u64 seq, u32 payload length,
// payload. Total header size is kMessageHeaderBytes.
constexpr size_t kMessageHeaderBytes = 20;
constexpr uint8_t kMessageMagic = 0xA5;

std::vector<uint8_t> SerializeMessage(const Message& msg);
std::optional<Message> ParseMessage(std::span<const uint8_t> data);

// Serialized size without actually serializing (used by traffic accounting hot paths).
size_t MessageWireSize(const Message& msg);
// Same, header included, for a body that has not been wrapped in a Message yet (used by
// the transmit queue's wire pacing to charge a send against its session's token bucket).
size_t BodyWireSize(const MessageBody& body);

// Body-level (de)serialization without the 20-byte message header; used by the transport's
// batching mode (Section 5.4's "header compression and batching of command packets").
std::vector<uint8_t> SerializeMessageBody(const MessageBody& body);
std::optional<MessageBody> ParseMessageBody(MessageType type,
                                            std::span<const uint8_t> payload);
MessageType TypeOfBody(const MessageBody& body);

}  // namespace slim

#endif  // SRC_PROTOCOL_MESSAGES_H_
