// Complete SLIM protocol message set.
//
// Besides the five display commands, the protocol carries keyboard/mouse state, audio,
// console status, bandwidth allocation requests (Section 7), session control for the
// smart-card hotdesking model, and NACK-based replay requests for the unreliable transport
// (Section 2.2: all messages carry unique identifiers and can be replayed with no ill
// effects).

#ifndef SRC_PROTOCOL_MESSAGES_H_
#define SRC_PROTOCOL_MESSAGES_H_

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "src/protocol/commands.h"

namespace slim {

enum class MessageType : uint8_t {
  // Display commands reuse the CommandType values 1..5.
  kSet = 1,
  kBitmap = 2,
  kFill = 3,
  kCopy = 4,
  kCscs = 5,
  // Console -> server.
  kKeyEvent = 16,
  kMouseEvent = 17,
  kStatus = 18,
  kNack = 19,
  kSessionAttach = 20,   // smart card inserted
  kSessionDetach = 21,   // smart card removed
  kBandwidthRequest = 22,  // server -> console: ask the console's allocator for a share
  // Server -> console (non-display).
  kAudio = 32,
  kBandwidthGrant = 33,  // console -> server: the allocator's answer (Section 7)
  kPing = 34,
  kPong = 35,
  kSessionRelease = 36,  // session left this console: blank and stop displaying
  // Server <-> server (session checkpointing / migration, DESIGN.md §9).
  kCheckpointChunk = 37,  // one bounded slice of a serialized session checkpoint
  kMigrateBegin = 38,     // source -> destination: a checkpoint transfer is starting
  kMigrateCommit = 39,    // two-phase commit handshake (phase 1 dest->src, phase 2 src->dest)
  kMigrateAbort = 40,     // either side: this migration epoch is dead
  kSeqSync = 41,          // sender's sequence stream jumped; seqs below the floor never existed
};

// Why a session's console binding ended; carried on SessionReleaseMsg so consoles and
// logs can distinguish a hotdesk pull from an operator-visible failure.
enum class ReleaseReason : uint8_t {
  kHotdesk = 1,          // the card appeared at another console
  kCardRemoved = 2,      // the user pulled the card at this console
  kLivenessTimeout = 3,  // the console stopped answering keepalive probes
  kEvicted = 4,          // idle-session eviction reclaimed the session
  kReplaced = 5,         // a different card was inserted at this console
  kMigrated = 6,         // the session moved to another server in the pool
};

struct KeyEventMsg {
  uint32_t keycode = 0;
  bool pressed = true;
  bool operator==(const KeyEventMsg&) const = default;
};

struct MouseEventMsg {
  int32_t x = 0;
  int32_t y = 0;
  uint8_t buttons = 0;  // bitmask of pressed buttons
  bool is_motion = false;
  bool operator==(const MouseEventMsg&) const = default;
};

struct StatusMsg {
  uint32_t code = 0;
  uint64_t last_seq_seen = 0;
  bool operator==(const StatusMsg&) const = default;
};

// Request replay of messages in [first_seq, last_seq]; idempotent application makes replay
// safe even if some of them did arrive.
struct NackMsg {
  uint64_t first_seq = 0;
  uint64_t last_seq = 0;
  bool operator==(const NackMsg&) const = default;
};

struct SessionAttachMsg {
  uint64_t card_id = 0;  // smart card identity presented at the console
  bool operator==(const SessionAttachMsg&) const = default;
};

struct SessionDetachMsg {
  uint64_t card_id = 0;
  bool operator==(const SessionDetachMsg&) const = default;
};

// Server -> console: a flow (our flows are sessions) asking the console's allocator for
// `bits_per_second` of the last-mile link. A non-positive rate withdraws the flow's
// reservation — the console removes it and redistributes to the surviving flows.
struct BandwidthRequestMsg {
  uint64_t flow_id = 0;
  int64_t bits_per_second = 0;
  bool operator==(const BandwidthRequestMsg&) const = default;
};

// Console -> server: the allocator's decision for one flow. Sent to the requester and —
// whenever a recompute changes other flows' shares — to every flow whose grant moved, so
// freed bandwidth is reabsorbed without a stale-grant window. `total_bps` is the console's
// whole allocatable link, letting the server judge headroom, not just its own share.
struct BandwidthGrantMsg {
  uint64_t flow_id = 0;
  int64_t bits_per_second = 0;
  int64_t total_bps = 0;
  bool operator==(const BandwidthGrantMsg&) const = default;
};

struct AudioMsg {
  uint32_t sample_rate = 8000;
  std::vector<uint8_t> samples;
  bool operator==(const AudioMsg&) const = default;
};

struct PingMsg {
  uint64_t payload = 0;
  bool operator==(const PingMsg&) const = default;
};

struct PongMsg {
  uint64_t payload = 0;
  bool operator==(const PongMsg&) const = default;
};

// Server -> console: the hotdesk handoff's "blank notice". The console that receives this
// no longer shows the session — it blanks its soft-state framebuffer and (via the seq
// guards in Console) ignores any stale display traffic for the session still in flight.
// Idempotent: the server re-sends it a bounded number of times so a lossy fabric cannot
// leave a released console displaying a dead session's last frame.
struct SessionReleaseMsg {
  ReleaseReason reason = ReleaseReason::kHotdesk;
  bool operator==(const SessionReleaseMsg&) const = default;
};

// --- Server <-> server migration messages (DESIGN.md §9) ---
// A migration attempt is identified by an epoch (globally unique: the source node id in
// the high bits). The bulk state travels as CheckpointChunk slices; Begin/Commit/Abort
// carry the two-phase-commit control flow. All four are idempotent and safe to replay,
// like every other SLIM message.

// Why a checkpoint transfer is happening; carried on MigrateBeginMsg.
enum class MigratePurpose : uint8_t {
  kHandoff = 1,  // cross-server hotdesk pull: two-phase commit transfers ownership
  kStandby = 2,  // periodic warm-standby replication: stored, never acked or committed
};

// Why a migration epoch died; carried on MigrateAbortMsg.
enum class MigrateAbortReason : uint8_t {
  kTimeout = 1,        // the other side went silent past the retry budget
  kBadCheckpoint = 2,  // the reassembled blob failed to decode
  kSuperseded = 3,     // a newer epoch/round for the same session replaced this one
  kShutdown = 4,       // the sending server is going away
};

// Source -> destination: announces (or, on retry, refreshes) one round of a checkpoint
// transfer. Re-sending it is the source's liveness poke: the fresh transport seq exposes
// any chunk gaps to the receiver's NACK machinery.
struct MigrateBeginMsg {
  uint64_t epoch = 0;
  uint64_t card_id = 0;        // the smart card whose session is moving
  uint32_t origin_session = 0; // the session id on the source server (audit only)
  uint32_t round = 0;          // pre-copy round; a higher round supersedes a lower one
  MigratePurpose purpose = MigratePurpose::kHandoff;
  uint32_t chunk_count = 0;
  uint64_t total_bytes = 0;    // size of the serialized checkpoint blob
  bool operator==(const MigrateBeginMsg&) const = default;
};

// One bounded slice of the checkpoint blob for (epoch, round).
struct CheckpointChunkMsg {
  uint64_t epoch = 0;
  uint32_t round = 0;
  uint32_t index = 0;   // 0-based chunk number
  uint32_t count = 0;   // total chunks in this round
  uint64_t offset = 0;  // byte offset of `data` within the blob
  std::vector<uint8_t> data;
  bool operator==(const CheckpointChunkMsg&) const = default;
};

// The commit handshake. Phase 1 (destination -> source): the blob decoded and the session
// is staged, ready to own. Phase 2 (source -> destination): the source released its copy;
// the destination is now the single owner and may go live.
struct MigrateCommitMsg {
  uint64_t epoch = 0;
  uint32_t round = 0;
  uint8_t phase = 1;  // 1 = restored, 2 = committed
  bool operator==(const MigrateCommitMsg&) const = default;
};

struct MigrateAbortMsg {
  uint64_t epoch = 0;
  MigrateAbortReason reason = MigrateAbortReason::kTimeout;
  bool operator==(const MigrateAbortMsg&) const = default;
};

// Unsequenced (seq 0), either direction: the sender's sequence stream toward this peer
// jumped forward — a migrated session raised the send-seq floor past numbers that were
// never put on the wire (EnsureSendSeqAtLeast). Without this notice the receiver would
// book every skipped seq as a loss and burn its NACK budget on messages that cannot be
// replayed, starving repair of the real gaps. On receipt, seqs below `first_valid_seq`
// stop being treated as missing. Replayed on demand: a NACK asking for sub-floor seqs
// provokes a fresh copy, so losing the notice itself is harmless.
// The bounds are exact so pre-jump losses stay repairable: only [first_skipped_seq,
// first_valid_seq) is excused; anything older was really sent and can still be NACKed.
struct SeqSyncMsg {
  uint64_t first_skipped_seq = 0;  // first seq that was never emitted
  uint64_t first_valid_seq = 0;    // next seq that will actually appear on the wire
  bool operator==(const SeqSyncMsg&) const = default;
};

using MessageBody =
    std::variant<SetCommand, BitmapCommand, FillCommand, CopyCommand, CscsCommand, KeyEventMsg,
                 MouseEventMsg, StatusMsg, NackMsg, SessionAttachMsg, SessionDetachMsg,
                 BandwidthRequestMsg, BandwidthGrantMsg, AudioMsg, PingMsg, PongMsg,
                 SessionReleaseMsg, CheckpointChunkMsg, MigrateBeginMsg, MigrateCommitMsg,
                 MigrateAbortMsg, SeqSyncMsg>;

struct Message {
  uint32_t session_id = 0;
  uint64_t seq = 0;  // unique, monotonically increasing per session and direction
  MessageBody body;
};

MessageType TypeOfMessage(const Message& msg);
bool IsDisplayCommand(const Message& msg);

// Wire format: u8 magic, u8 type, u16 reserved, u32 session, u64 seq, u32 payload length,
// payload. Total header size is kMessageHeaderBytes.
constexpr size_t kMessageHeaderBytes = 20;
constexpr uint8_t kMessageMagic = 0xA5;

std::vector<uint8_t> SerializeMessage(const Message& msg);
std::optional<Message> ParseMessage(std::span<const uint8_t> data);

// Serialized size without actually serializing (used by traffic accounting hot paths).
size_t MessageWireSize(const Message& msg);
// Same, header included, for a body that has not been wrapped in a Message yet (used by
// the transmit queue's wire pacing to charge a send against its session's token bucket).
size_t BodyWireSize(const MessageBody& body);

// Body-level (de)serialization without the 20-byte message header; used by the transport's
// batching mode (Section 5.4's "header compression and batching of command packets").
std::vector<uint8_t> SerializeMessageBody(const MessageBody& body);
std::optional<MessageBody> ParseMessageBody(MessageType type,
                                            std::span<const uint8_t> payload);
MessageType TypeOfBody(const MessageBody& body);

}  // namespace slim

#endif  // SRC_PROTOCOL_MESSAGES_H_
