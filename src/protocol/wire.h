// Bounds-checked little-endian wire encoding primitives.

#ifndef SRC_PROTOCOL_WIRE_H_
#define SRC_PROTOCOL_WIRE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace slim {

class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void Bytes(std::span<const uint8_t> data);

  size_t size() const { return buf_.size(); }
  std::vector<uint8_t> Take() { return std::move(buf_); }
  const std::vector<uint8_t>& data() const { return buf_; }

 private:
  std::vector<uint8_t> buf_;
};

// Reader over a fixed buffer. Reads past the end set ok() to false and return zeros; callers
// check ok() once at the end of parsing rather than after every field.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  uint8_t U8();
  uint16_t U16();
  uint32_t U32();
  uint64_t U64();
  int32_t I32() { return static_cast<int32_t>(U32()); }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  std::vector<uint8_t> Bytes(size_t n);

  bool ok() const { return ok_; }
  size_t remaining() const { return data_.size() - pos_; }

  // The not-yet-consumed tail of the buffer (without consuming it); lets framing layers
  // checksum everything that follows a header field.
  std::span<const uint8_t> Rest() const { return data_.subspan(pos_); }

 private:
  bool Need(size_t n);

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// 32-bit FNV-1a over a byte span. The transport stamps every datagram with this so that
// corrupted or truncated datagrams are detected, counted and dropped instead of being
// parsed as protocol bytes (the fabric's chaos layer flips and chops bytes on purpose).
uint32_t Fnv1a32(std::span<const uint8_t> data);

}  // namespace slim

#endif  // SRC_PROTOCOL_WIRE_H_
