// The SLIM display protocol commands (paper Table 1).
//
//   SET    — literal pixel values of a rectangular region (packed 3-byte RGB on the wire)
//   BITMAP — expand a 1-bit bitmap with foreground/background colors (text windows)
//   FILL   — one pixel value across a rectangular region
//   COPY   — move a rectangular region of the frame buffer (scrolling, window moves)
//   CSCS   — color-space convert YUV to RGB with optional bilinear scaling (video, games)
//
// Commands are pure data: the codec module encodes framebuffer damage into them and applies
// them to framebuffers; this header only defines their shapes and wire sizes.

#ifndef SRC_PROTOCOL_COMMANDS_H_
#define SRC_PROTOCOL_COMMANDS_H_

#include <cstdint>
#include <variant>
#include <vector>

#include "src/color/yuv.h"
#include "src/fb/framebuffer.h"
#include "src/fb/geometry.h"

namespace slim {

enum class CommandType : uint8_t {
  kSet = 1,
  kBitmap = 2,
  kFill = 3,
  kCopy = 4,
  kCscs = 5,
};

const char* CommandTypeName(CommandType type);

struct SetCommand {
  Rect dst;
  // Packed 3-byte RGB, row-major, exactly dst.w * dst.h * 3 bytes.
  std::vector<uint8_t> rgb;

  bool operator==(const SetCommand&) const = default;
};

struct BitmapCommand {
  Rect dst;
  Pixel fg = kWhite;
  Pixel bg = kBlack;
  // Rows padded to whole bytes: stride = (dst.w + 7) / 8, dst.h rows, MSB leftmost.
  std::vector<uint8_t> bits;

  bool operator==(const BitmapCommand&) const = default;
};

struct FillCommand {
  Rect dst;
  Pixel color = kBlack;

  bool operator==(const FillCommand&) const = default;
};

struct CopyCommand {
  int32_t src_x = 0;
  int32_t src_y = 0;
  Rect dst;

  bool operator==(const CopyCommand&) const = default;
};

struct CscsCommand {
  int32_t src_w = 0;  // YUV source dimensions; dst may be larger (bilinear upscale).
  int32_t src_h = 0;
  Rect dst;
  CscsDepth depth = CscsDepth::k16;
  std::vector<uint8_t> payload;  // PackCscsPayload(src_w, src_h, depth) bytes.

  bool operator==(const CscsCommand&) const = default;
};

using DisplayCommand =
    std::variant<SetCommand, BitmapCommand, FillCommand, CopyCommand, CscsCommand>;

CommandType TypeOf(const DisplayCommand& cmd);

// Destination rectangle (the pixels the command touches on screen).
Rect DestinationOf(const DisplayCommand& cmd);

// Number of destination pixels the command writes.
int64_t AffectedPixels(const DisplayCommand& cmd);

// Bytes this command occupies on the wire including the per-message header.
size_t WireSize(const DisplayCommand& cmd);

// Bytes the same update would need as raw packed 24-bit pixels (the "Raw Pixels" baseline
// of Figure 8): 3 bytes per affected pixel.
int64_t UncompressedBytes(const DisplayCommand& cmd);

// Converts packed 3-byte RGB rows into Pixel words and back (SET payload helpers).
std::vector<Pixel> UnpackRgb(std::span<const uint8_t> rgb);
std::vector<uint8_t> PackRgb(std::span<const Pixel> pixels);

}  // namespace slim

#endif  // SRC_PROTOCOL_COMMANDS_H_
