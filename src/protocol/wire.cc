#include "src/protocol/wire.h"

namespace slim {

void ByteWriter::U16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::Bytes(std::span<const uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

bool ByteReader::Need(size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t ByteReader::U8() {
  if (!Need(1)) {
    return 0;
  }
  return data_[pos_++];
}

uint16_t ByteReader::U16() {
  if (!Need(2)) {
    return 0;
  }
  uint16_t v = static_cast<uint16_t>(data_[pos_]) | (static_cast<uint16_t>(data_[pos_ + 1]) << 8);
  pos_ += 2;
  return v;
}

uint32_t ByteReader::U32() {
  if (!Need(4)) {
    return 0;
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

uint64_t ByteReader::U64() {
  if (!Need(8)) {
    return 0;
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::vector<uint8_t> ByteReader::Bytes(size_t n) {
  if (!Need(n)) {
    return {};
  }
  std::vector<uint8_t> out(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

uint32_t Fnv1a32(std::span<const uint8_t> data) {
  uint32_t hash = 0x811c9dc5u;
  for (const uint8_t byte : data) {
    hash ^= byte;
    hash *= 0x01000193u;
  }
  return hash;
}

}  // namespace slim
