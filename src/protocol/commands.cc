#include "src/protocol/commands.h"

#include "src/protocol/messages.h"
#include "src/util/check.h"

namespace slim {

const char* CommandTypeName(CommandType type) {
  switch (type) {
    case CommandType::kSet:
      return "SET";
    case CommandType::kBitmap:
      return "BITMAP";
    case CommandType::kFill:
      return "FILL";
    case CommandType::kCopy:
      return "COPY";
    case CommandType::kCscs:
      return "CSCS";
  }
  return "?";
}

CommandType TypeOf(const DisplayCommand& cmd) {
  return std::visit(
      [](const auto& c) -> CommandType {
        using T = std::decay_t<decltype(c)>;
        if constexpr (std::is_same_v<T, SetCommand>) {
          return CommandType::kSet;
        } else if constexpr (std::is_same_v<T, BitmapCommand>) {
          return CommandType::kBitmap;
        } else if constexpr (std::is_same_v<T, FillCommand>) {
          return CommandType::kFill;
        } else if constexpr (std::is_same_v<T, CopyCommand>) {
          return CommandType::kCopy;
        } else {
          return CommandType::kCscs;
        }
      },
      cmd);
}

Rect DestinationOf(const DisplayCommand& cmd) {
  return std::visit([](const auto& c) { return c.dst; }, cmd);
}

int64_t AffectedPixels(const DisplayCommand& cmd) { return DestinationOf(cmd).area(); }

namespace {

size_t PayloadSize(const DisplayCommand& cmd) {
  return std::visit(
      [](const auto& c) -> size_t {
        using T = std::decay_t<decltype(c)>;
        if constexpr (std::is_same_v<T, SetCommand>) {
          return 16 + c.rgb.size();
        } else if constexpr (std::is_same_v<T, BitmapCommand>) {
          return 16 + 8 + c.bits.size();
        } else if constexpr (std::is_same_v<T, FillCommand>) {
          return 16 + 4;
        } else if constexpr (std::is_same_v<T, CopyCommand>) {
          return 8 + 16;
        } else {
          return 8 + 16 + 1 + c.payload.size();
        }
      },
      cmd);
}

}  // namespace

size_t WireSize(const DisplayCommand& cmd) { return kMessageHeaderBytes + PayloadSize(cmd); }

int64_t UncompressedBytes(const DisplayCommand& cmd) { return AffectedPixels(cmd) * 3; }

std::vector<Pixel> UnpackRgb(std::span<const uint8_t> rgb) {
  SLIM_CHECK(rgb.size() % 3 == 0);
  std::vector<Pixel> out(rgb.size() / 3);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = MakePixel(rgb[i * 3], rgb[i * 3 + 1], rgb[i * 3 + 2]);
  }
  return out;
}

std::vector<uint8_t> PackRgb(std::span<const Pixel> pixels) {
  std::vector<uint8_t> out;
  out.reserve(pixels.size() * 3);
  for (const Pixel p : pixels) {
    out.push_back(PixelR(p));
    out.push_back(PixelG(p));
    out.push_back(PixelB(p));
  }
  return out;
}

}  // namespace slim
