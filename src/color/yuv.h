// Color-space conversion and the CSCS pixel encodings.
//
// The SLIM CSCS display command carries YUV data that the console converts back to RGB with
// optional bilinear upscaling (Section 2.2, Table 5). The Sun Ray 1 supports several bit
// depths; the paper measures 16, 12, 8 and 5 bits/pixel variants and the MPEG player uses a
// 6 bits/pixel mode. We realize those depths as planar YUV with chroma subsampling plus
// component quantization:
//
//   depth   luma       chroma               bits/pixel
//   16      Y8 / px    U8,V8 per 2x1 block  8 + 16/2  = 16     (4:2:2)
//   12      Y8 / px    U8,V8 per 2x2 block  8 + 16/4  = 12     (4:2:0)
//    8      Y6 / px    U4,V4 per 2x2 block  6 + 8/4   = 8      (4:2:0, quantized)
//    6      Y4 / px    U4,V4 per 2x2 block  4 + 8/4   = 6      (4:2:0, quantized)
//    5      Y4 / px    U2,V2 per 2x2 block  4 + 4/4   = 5      (4:2:0, quantized)
//
// Quantized components store the top bits of the 8-bit value and are expanded by bit
// replication on decode. RGB->YUV uses BT.601 studio-swing-free ("full range") constants
// in 20-bit fixed point shared with the SIMD kernel layer (src/codec/kernels/), so the
// conversion is bit-identical across kernel tiers and between the single-pixel and bulk
// (FromPixels) paths.

#ifndef SRC_COLOR_YUV_H_
#define SRC_COLOR_YUV_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/fb/framebuffer.h"

namespace slim {

struct Yuv {
  uint8_t y = 0;
  uint8_t u = 128;
  uint8_t v = 128;
  bool operator==(const Yuv&) const = default;
};

Yuv RgbToYuv(Pixel rgb);
Pixel YuvToRgb(Yuv yuv);

enum class CscsDepth : uint8_t {
  k16 = 16,
  k12 = 12,
  k8 = 8,
  k6 = 6,
  k5 = 5,
};

// Bits of payload per pixel for a depth (matches the enum value).
int BitsPerPixel(CscsDepth depth);

// A planar, full-resolution YUV image; the staging format between video sources / renderers
// and the CSCS encoder.
class YuvImage {
 public:
  YuvImage(int32_t width, int32_t height);

  int32_t width() const { return width_; }
  int32_t height() const { return height_; }

  Yuv At(int32_t x, int32_t y) const;
  void Set(int32_t x, int32_t y, Yuv value);

  // Converts an RGB block (row-major, w*h) into this image. Sizes must match.
  static YuvImage FromPixels(std::span<const Pixel> rgb, int32_t w, int32_t h);

  std::span<const uint8_t> y_plane() const { return y_; }
  std::span<const uint8_t> u_plane() const { return u_; }
  std::span<const uint8_t> v_plane() const { return v_; }

 private:
  int32_t width_;
  int32_t height_;
  std::vector<uint8_t> y_;
  std::vector<uint8_t> u_;
  std::vector<uint8_t> v_;
};

// Packs a YuvImage into the CSCS wire payload for a depth. Deterministic layout: the whole
// (possibly subsampled/quantized) Y plane, then U, then V, each byte-packed MSB-first.
std::vector<uint8_t> PackCscsPayload(const YuvImage& image, CscsDepth depth);

// Number of payload bytes PackCscsPayload produces for a w*h image at the given depth.
size_t CscsPayloadBytes(int32_t w, int32_t h, CscsDepth depth);

// Unpacks a CSCS payload back into a full-resolution YuvImage (chroma is replicated across
// its subsampling block; quantized components are bit-replicated back to 8 bits).
YuvImage UnpackCscsPayload(std::span<const uint8_t> payload, int32_t w, int32_t h,
                           CscsDepth depth);

// Converts the YUV image to RGB pixels, bilinearly scaled to dst_w x dst_h.
// When the sizes match this is a straight conversion.
std::vector<Pixel> YuvToRgbScaled(const YuvImage& image, int32_t dst_w, int32_t dst_h);

}  // namespace slim

#endif  // SRC_COLOR_YUV_H_
