#include "src/color/yuv.h"

#include <algorithm>
#include <cmath>

#include "src/codec/kernels/kernels.h"
#include "src/codec/kernels/kernels_internal.h"
#include "src/util/check.h"

namespace slim {

namespace {

uint8_t ClampByte(int v) { return static_cast<uint8_t>(std::clamp(v, 0, 255)); }

// Expands the top `bits` bits of a component back to 8 bits by bit replication.
uint8_t ExpandBits(uint32_t value, int bits) {
  SLIM_DCHECK(bits >= 1 && bits <= 8);
  uint32_t out = value << (8 - bits);
  int filled = bits;
  while (filled < 8) {
    out |= out >> filled;
    filled *= 2;
  }
  return static_cast<uint8_t>(out & 0xff);
}

struct DepthSpec {
  int y_bits;
  int c_bits;
  int c_sub_x;  // chroma subsample factor in x
  int c_sub_y;  // chroma subsample factor in y
};

DepthSpec SpecFor(CscsDepth depth) {
  switch (depth) {
    case CscsDepth::k16:
      return {8, 8, 2, 1};
    case CscsDepth::k12:
      return {8, 8, 2, 2};
    case CscsDepth::k8:
      return {6, 4, 2, 2};
    case CscsDepth::k6:
      return {4, 4, 2, 2};
    case CscsDepth::k5:
      return {4, 2, 2, 2};
  }
  SLIM_CHECK(false);
}

class BitWriter {
 public:
  explicit BitWriter(std::vector<uint8_t>* out) : out_(out) {}

  void Write(uint32_t value, int bits) {
    for (int i = bits - 1; i >= 0; --i) {
      if (bit_pos_ == 0) {
        out_->push_back(0);
      }
      const uint8_t bit = (value >> i) & 1;
      out_->back() |= static_cast<uint8_t>(bit << (7 - bit_pos_));
      bit_pos_ = (bit_pos_ + 1) & 7;
    }
  }

  void AlignByte() { bit_pos_ = 0; }

 private:
  std::vector<uint8_t>* out_;
  int bit_pos_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const uint8_t> data) : data_(data) {}

  uint32_t Read(int bits) {
    uint32_t value = 0;
    for (int i = 0; i < bits; ++i) {
      uint8_t bit = 0;
      if (byte_pos_ < data_.size()) {
        bit = (data_[byte_pos_] >> (7 - bit_pos_)) & 1;
      }
      value = (value << 1) | bit;
      if (++bit_pos_ == 8) {
        bit_pos_ = 0;
        ++byte_pos_;
      }
    }
    return value;
  }

  void AlignByte() {
    if (bit_pos_ != 0) {
      bit_pos_ = 0;
      ++byte_pos_;
    }
  }

 private:
  std::span<const uint8_t> data_;
  size_t byte_pos_ = 0;
  int bit_pos_ = 0;
};

size_t PlaneBits(int64_t samples, int bits) { return static_cast<size_t>(samples) * bits; }

size_t BitsToBytes(size_t bits) { return (bits + 7) / 8; }

}  // namespace

Yuv RgbToYuv(Pixel rgb) {
  // Fixed-point BT.601 (20-bit coefficients, round-half-up) shared with the SIMD kernel
  // layer — the single-pixel and bulk conversions must agree bit-for-bit, and integer
  // arithmetic is what makes the per-tier vector implementations exactly reproducible.
  // Differs from the old double-based lround formula by at most 1 LSB on ~0.06% of the
  // 2^24 inputs (verified exhaustively).
  Yuv out;
  RgbToYuvScalarOne(rgb, &out.y, &out.u, &out.v);
  return out;
}

Pixel YuvToRgb(Yuv yuv) {
  const double y = yuv.y;
  const double u = yuv.u - 128.0;
  const double v = yuv.v - 128.0;
  const uint8_t r = ClampByte(static_cast<int>(std::lround(y + 1.402 * v)));
  const uint8_t g = ClampByte(static_cast<int>(std::lround(y - 0.344136 * u - 0.714136 * v)));
  const uint8_t b = ClampByte(static_cast<int>(std::lround(y + 1.772 * u)));
  return MakePixel(r, g, b);
}

int BitsPerPixel(CscsDepth depth) { return static_cast<int>(depth); }

YuvImage::YuvImage(int32_t width, int32_t height) : width_(width), height_(height) {
  SLIM_CHECK(width > 0 && height > 0);
  const size_t n = static_cast<size_t>(width) * height;
  y_.assign(n, 0);
  u_.assign(n, 128);
  v_.assign(n, 128);
}

Yuv YuvImage::At(int32_t x, int32_t y) const {
  SLIM_DCHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
  const size_t i = static_cast<size_t>(y) * width_ + x;
  return Yuv{y_[i], u_[i], v_[i]};
}

void YuvImage::Set(int32_t x, int32_t y, Yuv value) {
  SLIM_DCHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
  const size_t i = static_cast<size_t>(y) * width_ + x;
  y_[i] = value.y;
  u_[i] = value.u;
  v_[i] = value.v;
}

YuvImage YuvImage::FromPixels(std::span<const Pixel> rgb, int32_t w, int32_t h) {
  SLIM_CHECK(rgb.size() >= static_cast<size_t>(w) * h);
  YuvImage image(w, h);
  // Row-span conversion straight into the planes through the dispatched kernel — no
  // per-pixel bounds-checked Set() calls; this loop is the whole CSCS encode cost for
  // video frames, so it gets the vector tier when the CPU has one.
  const KernelOps& kernels = Kernels();
  for (int32_t y = 0; y < h; ++y) {
    const size_t row = static_cast<size_t>(y) * w;
    kernels.rgb_to_yuv_row(rgb.data() + row, static_cast<size_t>(w),
                           image.y_.data() + row, image.u_.data() + row,
                           image.v_.data() + row);
  }
  return image;
}

size_t CscsPayloadBytes(int32_t w, int32_t h, CscsDepth depth) {
  const DepthSpec spec = SpecFor(depth);
  const int64_t cw = (w + spec.c_sub_x - 1) / spec.c_sub_x;
  const int64_t ch = (h + spec.c_sub_y - 1) / spec.c_sub_y;
  const size_t y_bytes = BitsToBytes(PlaneBits(static_cast<int64_t>(w) * h, spec.y_bits));
  const size_t c_bytes = BitsToBytes(PlaneBits(cw * ch, spec.c_bits));
  return y_bytes + 2 * c_bytes;
}

std::vector<uint8_t> PackCscsPayload(const YuvImage& image, CscsDepth depth) {
  const DepthSpec spec = SpecFor(depth);
  const int32_t w = image.width();
  const int32_t h = image.height();
  std::vector<uint8_t> out;
  out.reserve(CscsPayloadBytes(w, h, depth));
  BitWriter writer(&out);
  // Y plane: quantize by keeping top bits.
  for (int32_t y = 0; y < h; ++y) {
    for (int32_t x = 0; x < w; ++x) {
      writer.Write(image.At(x, y).y >> (8 - spec.y_bits), spec.y_bits);
    }
  }
  writer.AlignByte();
  // Chroma planes: average each subsampling block, then quantize.
  const int32_t cw = (w + spec.c_sub_x - 1) / spec.c_sub_x;
  const int32_t ch = (h + spec.c_sub_y - 1) / spec.c_sub_y;
  for (const bool is_u : {true, false}) {
    for (int32_t cy = 0; cy < ch; ++cy) {
      for (int32_t cx = 0; cx < cw; ++cx) {
        int sum = 0;
        int count = 0;
        for (int32_t dy = 0; dy < spec.c_sub_y; ++dy) {
          for (int32_t dx = 0; dx < spec.c_sub_x; ++dx) {
            const int32_t px = cx * spec.c_sub_x + dx;
            const int32_t py = cy * spec.c_sub_y + dy;
            if (px < w && py < h) {
              const Yuv s = image.At(px, py);
              sum += is_u ? s.u : s.v;
              ++count;
            }
          }
        }
        const int avg = count > 0 ? (sum + count / 2) / count : 128;
        writer.Write(static_cast<uint32_t>(avg) >> (8 - spec.c_bits), spec.c_bits);
      }
    }
    writer.AlignByte();
  }
  return out;
}

YuvImage UnpackCscsPayload(std::span<const uint8_t> payload, int32_t w, int32_t h,
                           CscsDepth depth) {
  const DepthSpec spec = SpecFor(depth);
  YuvImage image(w, h);
  BitReader reader(payload);
  for (int32_t y = 0; y < h; ++y) {
    for (int32_t x = 0; x < w; ++x) {
      Yuv s = image.At(x, y);
      s.y = ExpandBits(reader.Read(spec.y_bits), spec.y_bits);
      image.Set(x, y, s);
    }
  }
  reader.AlignByte();
  const int32_t cw = (w + spec.c_sub_x - 1) / spec.c_sub_x;
  const int32_t ch = (h + spec.c_sub_y - 1) / spec.c_sub_y;
  for (const bool is_u : {true, false}) {
    for (int32_t cy = 0; cy < ch; ++cy) {
      for (int32_t cx = 0; cx < cw; ++cx) {
        const uint8_t value = ExpandBits(reader.Read(spec.c_bits), spec.c_bits);
        for (int32_t dy = 0; dy < spec.c_sub_y; ++dy) {
          for (int32_t dx = 0; dx < spec.c_sub_x; ++dx) {
            const int32_t px = cx * spec.c_sub_x + dx;
            const int32_t py = cy * spec.c_sub_y + dy;
            if (px < w && py < h) {
              Yuv s = image.At(px, py);
              if (is_u) {
                s.u = value;
              } else {
                s.v = value;
              }
              image.Set(px, py, s);
            }
          }
        }
      }
    }
    reader.AlignByte();
  }
  return image;
}

std::vector<Pixel> YuvToRgbScaled(const YuvImage& image, int32_t dst_w, int32_t dst_h) {
  SLIM_CHECK(dst_w > 0 && dst_h > 0);
  std::vector<Pixel> out(static_cast<size_t>(dst_w) * dst_h);
  const int32_t sw = image.width();
  const int32_t sh = image.height();
  const double x_ratio = static_cast<double>(sw) / dst_w;
  const double y_ratio = static_cast<double>(sh) / dst_h;
  for (int32_t dy = 0; dy < dst_h; ++dy) {
    const double sy = std::max(0.0, (dy + 0.5) * y_ratio - 0.5);
    const int32_t y0 = std::min(static_cast<int32_t>(sy), sh - 1);
    const int32_t y1 = std::min(y0 + 1, sh - 1);
    const double fy = sy - y0;
    for (int32_t dx = 0; dx < dst_w; ++dx) {
      const double sx = std::max(0.0, (dx + 0.5) * x_ratio - 0.5);
      const int32_t x0 = std::min(static_cast<int32_t>(sx), sw - 1);
      const int32_t x1 = std::min(x0 + 1, sw - 1);
      const double fx = sx - x0;
      auto lerp = [&](auto get) {
        const double top = get(x0, y0) * (1 - fx) + get(x1, y0) * fx;
        const double bot = get(x0, y1) * (1 - fx) + get(x1, y1) * fx;
        return top * (1 - fy) + bot * fy;
      };
      Yuv s;
      s.y = ClampByte(static_cast<int>(
          std::lround(lerp([&](int32_t x, int32_t y) { return double{1} * image.At(x, y).y; }))));
      s.u = ClampByte(static_cast<int>(
          std::lround(lerp([&](int32_t x, int32_t y) { return double{1} * image.At(x, y).u; }))));
      s.v = ClampByte(static_cast<int>(
          std::lround(lerp([&](int32_t x, int32_t y) { return double{1} * image.At(x, y).v; }))));
      out[static_cast<size_t>(dy) * dst_w + dx] = YuvToRgb(s);
    }
  }
  return out;
}

}  // namespace slim
