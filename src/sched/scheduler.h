// Multiprocessor time-sharing scheduler simulation.
//
// Drives the processor-sharing experiments (paper Section 6.1, Figures 9 and 10). The model
// is a multilevel-feedback scheduler in the spirit of the Solaris TS class the paper ran on:
// a process that voluntarily sleeps (an interactive burst) re-enters at the highest priority,
// while a process that keeps consuming quanta is demoted toward the bottom level. This is
// the mechanism that lets the paper oversubscribe a CPU by 50-70% while the interactive
// yardstick still sees tolerable latency: backlogged load-generator processes decay into CPU
// hogs and the freshly-woken yardstick preempts them.
//
// Memory is accounted too: when the resident set of all processes exceeds RAM, every quantum
// is stretched by a paging penalty that grows with the overcommit ratio (the E4500's swap
// behaviour, coarse-grained).

#ifndef SRC_SCHED_SCHEDULER_H_
#define SRC_SCHED_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/time.h"

namespace slim {

struct SchedulerOptions {
  int cpus = 1;
  // Quantum at the upper priority levels; the bottom level runs 3x longer slices (the
  // classic MLFQ trade of responsiveness at the top for efficiency at the bottom). Slices
  // are not preempted mid-quantum, so a long bottom-level slice is exactly what delays a
  // freshly-woken interactive burst.
  SimDuration quantum = Milliseconds(10);
  int priority_levels = 3;
  // Consecutive full quanta a burst may consume at one level before demotion. With the
  // default of 1, a freshly-woken burst descends one level per quantum: a 30 ms interactive
  // burst touches the bottom level briefly, while a long hog lives there - which is what
  // produces the paper's Figure 9 latency knees.
  int quanta_per_level = 1;
  int64_t ram_bytes = 4LL * 1024 * 1024 * 1024;
  // Quantum stretch factor per unit of memory overcommit beyond RAM
  // (slowdown = 1 + factor * max(0, resident/ram - 1)).
  double paging_penalty = 4.0;
};

class MpScheduler {
 public:
  using CompletionFn = std::function<void()>;

  MpScheduler(Simulator* sim, SchedulerOptions options);

  // Registers a process and returns its id. resident_bytes joins the memory accounting.
  int AddProcess(int64_t resident_bytes);
  void SetResidentBytes(int pid, int64_t bytes);

  // Submits a CPU burst for pid. The process must not have a burst in flight (sequential
  // execution, like a single-threaded application); returns false and ignores the burst
  // otherwise. `interactive` marks a burst that follows a voluntary sleep (enters at the
  // top priority level); a false value enqueues at the bottom (pure background work).
  bool Submit(int pid, SimDuration cpu_time, bool interactive, CompletionFn on_complete);

  bool HasBurstInFlight(int pid) const;

  // Total CPU time executed so far across all CPUs.
  SimDuration busy_time() const { return busy_time_; }
  // Utilization over [0, now] given the configured CPU count.
  double Utilization() const;

  int cpus() const { return options_.cpus; }
  int64_t total_resident_bytes() const { return total_resident_; }
  double MemoryOvercommit() const;

 private:
  struct Burst {
    int pid = -1;
    SimDuration remaining = 0;
    int level = 0;
    int quanta_at_level = 0;
    CompletionFn on_complete;
  };

  void TryDispatch();
  void RunSlice(int cpu, Burst burst);

  Simulator* sim_;
  SchedulerOptions options_;
  std::vector<std::deque<Burst>> queues_;  // one per priority level
  std::vector<bool> cpu_busy_;
  std::vector<int64_t> resident_;
  std::vector<bool> in_flight_;
  int64_t total_resident_ = 0;
  SimDuration busy_time_ = 0;
};

}  // namespace slim

#endif  // SRC_SCHED_SCHEDULER_H_
