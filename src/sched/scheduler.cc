#include "src/sched/scheduler.h"

#include <algorithm>

#include "src/util/check.h"

namespace slim {

MpScheduler::MpScheduler(Simulator* sim, SchedulerOptions options)
    : sim_(sim), options_(options) {
  SLIM_CHECK(sim != nullptr);
  SLIM_CHECK(options.cpus >= 1);
  SLIM_CHECK(options.priority_levels >= 1);
  SLIM_CHECK(options.quantum > 0);
  queues_.resize(static_cast<size_t>(options.priority_levels));
  cpu_busy_.assign(static_cast<size_t>(options.cpus), false);
}

int MpScheduler::AddProcess(int64_t resident_bytes) {
  const int pid = static_cast<int>(resident_.size());
  resident_.push_back(resident_bytes);
  in_flight_.push_back(false);
  total_resident_ += resident_bytes;
  return pid;
}

void MpScheduler::SetResidentBytes(int pid, int64_t bytes) {
  SLIM_CHECK(pid >= 0 && pid < static_cast<int>(resident_.size()));
  total_resident_ += bytes - resident_[static_cast<size_t>(pid)];
  resident_[static_cast<size_t>(pid)] = bytes;
}

double MpScheduler::MemoryOvercommit() const {
  if (options_.ram_bytes <= 0) {
    return 0.0;
  }
  const double ratio =
      static_cast<double>(total_resident_) / static_cast<double>(options_.ram_bytes);
  return std::max(0.0, ratio - 1.0);
}

bool MpScheduler::Submit(int pid, SimDuration cpu_time, bool interactive,
                         CompletionFn on_complete) {
  SLIM_CHECK(pid >= 0 && pid < static_cast<int>(in_flight_.size()));
  SLIM_CHECK(cpu_time > 0);
  if (in_flight_[static_cast<size_t>(pid)]) {
    return false;
  }
  in_flight_[static_cast<size_t>(pid)] = true;
  Burst burst;
  burst.pid = pid;
  burst.remaining = cpu_time;
  burst.level = interactive ? 0 : options_.priority_levels - 1;
  burst.on_complete = std::move(on_complete);
  queues_[static_cast<size_t>(burst.level)].push_back(std::move(burst));
  TryDispatch();
  return true;
}

bool MpScheduler::HasBurstInFlight(int pid) const {
  SLIM_CHECK(pid >= 0 && pid < static_cast<int>(in_flight_.size()));
  return in_flight_[static_cast<size_t>(pid)];
}

double MpScheduler::Utilization() const {
  const SimTime now = sim_->now();
  if (now <= 0) {
    return 0.0;
  }
  return static_cast<double>(busy_time_) /
         (static_cast<double>(now) * static_cast<double>(options_.cpus));
}

void MpScheduler::TryDispatch() {
  for (int cpu = 0; cpu < options_.cpus; ++cpu) {
    if (cpu_busy_[static_cast<size_t>(cpu)]) {
      continue;
    }
    // Highest-priority (lowest index) non-empty queue wins; round-robin within a level.
    for (auto& queue : queues_) {
      if (queue.empty()) {
        continue;
      }
      Burst burst = std::move(queue.front());
      queue.pop_front();
      cpu_busy_[static_cast<size_t>(cpu)] = true;
      RunSlice(cpu, std::move(burst));
      break;
    }
  }
}

void MpScheduler::RunSlice(int cpu, Burst burst) {
  const bool bottom = burst.level == options_.priority_levels - 1;
  const SimDuration level_quantum = bottom ? 3 * options_.quantum : options_.quantum;
  const SimDuration slice = std::min(level_quantum, burst.remaining);
  // Paging stretches wall-clock time without adding useful CPU work.
  const double stretch = 1.0 + options_.paging_penalty * MemoryOvercommit();
  const auto wall = static_cast<SimDuration>(static_cast<double>(slice) * stretch);
  sim_->Schedule(wall, [this, cpu, b = std::move(burst), slice]() mutable {
    busy_time_ += slice;
    b.remaining -= slice;
    cpu_busy_[static_cast<size_t>(cpu)] = false;
    if (b.remaining <= 0) {
      in_flight_[static_cast<size_t>(b.pid)] = false;
      if (b.on_complete) {
        // Dispatch before running the callback so a completion that immediately resubmits
        // (the yardstick's next cycle) cannot starve queued work.
        TryDispatch();
        b.on_complete();
        TryDispatch();
        return;
      }
    } else {
      // Used a full quantum without sleeping: demote after quanta_per_level of them.
      if (++b.quanta_at_level >= options_.quanta_per_level) {
        b.level = std::min(b.level + 1, options_.priority_levels - 1);
        b.quanta_at_level = 0;
      }
      queues_[static_cast<size_t>(b.level)].push_back(std::move(b));
    }
    TryDispatch();
  });
}

}  // namespace slim
