#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace slim {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::span<const double> samples, double p) {
  if (samples.empty()) {
    return 0.0;
  }
  SLIM_DCHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) {
    return sorted[0];
  }
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

LinearFit FitLine(std::span<const double> x, std::span<const double> y) {
  SLIM_CHECK(x.size() == y.size());
  LinearFit fit;
  const auto n = static_cast<double>(x.size());
  if (x.size() < 2) {
    if (x.size() == 1) {
      fit.intercept = y[0];
    }
    return fit;
  }
  double sx = 0.0;
  double sy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) {
    fit.intercept = my;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace slim
