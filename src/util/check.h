// Lightweight invariant checking.
//
// SLIM_CHECK is always on (benches and tests both rely on it); SLIM_DCHECK compiles away in
// release builds. These are deliberately simple: print, flush, abort.

#ifndef SRC_UTIL_CHECK_H_
#define SRC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace slim {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "%s:%d: check failed: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace slim

#define SLIM_CHECK(expr)                                \
  do {                                                  \
    if (!(expr)) {                                      \
      ::slim::CheckFailed(__FILE__, __LINE__, #expr);   \
    }                                                   \
  } while (0)

#ifdef NDEBUG
#define SLIM_DCHECK(expr) \
  do {                    \
  } while (0)
#else
#define SLIM_DCHECK(expr) SLIM_CHECK(expr)
#endif

#endif  // SRC_UTIL_CHECK_H_
