// Simulated-time primitives used throughout libslim.
//
// All simulated clocks count integer nanoseconds from the start of the simulation. Using a
// plain integer (rather than std::chrono) keeps the discrete-event core trivially serializable
// and makes arithmetic in rate computations explicit.

#ifndef SRC_UTIL_TIME_H_
#define SRC_UTIL_TIME_H_

#include <cstdint>

namespace slim {

// A point in simulated time, in nanoseconds since simulation start.
using SimTime = int64_t;

// A span of simulated time, in nanoseconds.
using SimDuration = int64_t;

constexpr SimDuration kNanosecond = 1;
constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;

constexpr SimDuration Nanoseconds(int64_t n) { return n * kNanosecond; }
constexpr SimDuration Microseconds(int64_t n) { return n * kMicrosecond; }
constexpr SimDuration Milliseconds(int64_t n) { return n * kMillisecond; }
constexpr SimDuration Seconds(int64_t n) { return n * kSecond; }

constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / kSecond; }
constexpr double ToMillis(SimDuration d) { return static_cast<double>(d) / kMillisecond; }
constexpr double ToMicros(SimDuration d) { return static_cast<double>(d) / kMicrosecond; }

// Converts a byte count and a link rate in bits per second into the serialization delay.
constexpr SimDuration TransmissionDelay(int64_t bytes, int64_t bits_per_second) {
  // Rounded up so that a positive payload always consumes positive time.
  const int64_t bits = bytes * 8;
  return (bits * kSecond + bits_per_second - 1) / bits_per_second;
}

}  // namespace slim

#endif  // SRC_UTIL_TIME_H_
