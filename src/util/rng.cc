#include "src/util/rng.h"

#include <cmath>

#include "src/util/check.h"

namespace slim {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  SLIM_DCHECK(bound != 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  SLIM_DCHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(span == 0 ? NextU64() : NextBelow(span));
}

double Rng::NextDouble() {
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  SLIM_DCHECK(mean > 0.0);
  double u = NextDouble();
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(1.0 - u);
}

double Rng::NextNormal(double mean, double stddev) {
  double u1 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

double Rng::NextLogNormal(double mu, double sigma) { return std::exp(NextNormal(mu, sigma)); }

double Rng::NextPareto(double xm, double alpha) {
  SLIM_DCHECK(xm > 0.0 && alpha > 0.0);
  double u = NextDouble();
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return xm / std::pow(1.0 - u, 1.0 / alpha);
}

int Rng::NextPoisson(double mean) {
  SLIM_DCHECK(mean >= 0.0);
  if (mean <= 0.0) {
    return 0;
  }
  // Knuth's method; fine for the small means the workload models use.
  const double limit = std::exp(-mean);
  int k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= NextDouble();
  } while (p > limit);
  return k - 1;
}

Rng Rng::Split() { return Rng(NextU64()); }

uint64_t Rng::MixSeed(uint64_t seed, uint64_t salt_a, uint64_t salt_b) {
  uint64_t x = seed;
  uint64_t mixed = SplitMix64(x);
  x ^= salt_a * 0x9e3779b97f4a7c15ull;
  mixed ^= SplitMix64(x);
  x ^= salt_b * 0xbf58476d1ce4e5b9ull;
  mixed ^= SplitMix64(x);
  return mixed;
}

}  // namespace slim
