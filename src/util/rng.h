// Deterministic pseudo-random number generation.
//
// Every stochastic component in libslim (workload models, network jitter, video content)
// draws from an explicitly seeded Rng so that simulations are bit-for-bit reproducible.
// The core generator is xoshiro256++ seeded via SplitMix64.

#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstdint>

namespace slim {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5f11a9e1u);

  // Uniform over the full 64-bit range.
  uint64_t NextU64();

  // Uniform over [0, bound). bound must be nonzero.
  uint64_t NextBelow(uint64_t bound);

  // Uniform over [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform over [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0, 1]).
  bool NextBool(double p);

  // Exponentially distributed with the given mean (> 0).
  double NextExponential(double mean);

  // Standard normal via Box-Muller, scaled to (mean, stddev).
  double NextNormal(double mean, double stddev);

  // Log-normal: exp(N(mu, sigma)). Heavy-tailed sizes (display updates, page weights).
  double NextLogNormal(double mu, double sigma);

  // Pareto with scale xm > 0 and shape alpha > 0. Heavy-tailed think times.
  double NextPareto(double xm, double alpha);

  // Poisson-distributed count with the given mean (small means only; inversion method).
  int NextPoisson(double mean);

  // Splits off an independently seeded child generator; used to give each simulated user or
  // flow its own stream so adding one does not perturb the others.
  Rng Split();

  // Mixes a base seed with identifying salts into a fresh seed (SplitMix64 finalizer).
  // Unlike Split(), this does not advance any generator: the fabric's chaos layer uses it to
  // derive one deterministic stream per (src, dst) link regardless of the order in which
  // links first see traffic.
  static uint64_t MixSeed(uint64_t seed, uint64_t salt_a, uint64_t salt_b = 0);

 private:
  uint64_t state_[4];
};

}  // namespace slim

#endif  // SRC_UTIL_RNG_H_
