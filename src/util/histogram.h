// Fixed-bucket histograms and cumulative distributions.
//
// The paper reports nearly all of its results as cumulative distributions with an explicit
// histogram bucket size (e.g. "bucket size is 0.005 events/sec" in Figure 2). Histogram
// mirrors that: values are accumulated into uniform buckets and the CDF is read back either
// as (value, fraction) pairs for plotting or as inverse lookups for percentile statements.

#ifndef SRC_UTIL_HISTOGRAM_H_
#define SRC_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace slim {

class Histogram {
 public:
  // Buckets are [min + i*width, min + (i+1)*width); values outside the range clamp to the
  // first/last bucket. width must be positive.
  Histogram(double min, double max, double bucket_width);

  void Add(double value);
  void AddN(double value, int64_t n);

  int64_t total_count() const { return total_; }

  // Fraction of samples with value <= v, in [0, 1].
  double CdfAt(double v) const;

  // Smallest bucket upper edge u such that CdfAt(u) >= fraction. fraction in (0, 1].
  double InverseCdf(double fraction) const;

  double mean() const { return total_ > 0 ? sum_ / static_cast<double>(total_) : 0.0; }

  // One sampled CDF point per row: "value<TAB>cumulative_fraction". Buckets with zero counts
  // are skipped so plots stay small. Used by the figure benches to emit paper-style series.
  // A histogram with no samples yields the single marker line "# empty\n".
  std::string CdfSeries(int max_points = 64) const;

 private:
  double min_;
  double max_;
  double width_;
  std::vector<int64_t> buckets_;
  int64_t total_ = 0;
  double sum_ = 0.0;
};

}  // namespace slim

#endif  // SRC_UTIL_HISTOGRAM_H_
