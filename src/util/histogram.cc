#include "src/util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/util/check.h"

namespace slim {

Histogram::Histogram(double min, double max, double bucket_width)
    : min_(min), max_(max), width_(bucket_width) {
  SLIM_CHECK(bucket_width > 0.0);
  SLIM_CHECK(max > min);
  const auto n = static_cast<size_t>(std::ceil((max - min) / bucket_width));
  buckets_.assign(std::max<size_t>(n, 1), 0);
}

void Histogram::Add(double value) { AddN(value, 1); }

void Histogram::AddN(double value, int64_t n) {
  SLIM_DCHECK(n >= 0);
  double clamped = std::clamp(value, min_, max_);
  auto idx = static_cast<size_t>((clamped - min_) / width_);
  idx = std::min(idx, buckets_.size() - 1);
  buckets_[idx] += n;
  total_ += n;
  sum_ += value * static_cast<double>(n);
}

double Histogram::CdfAt(double v) const {
  if (total_ == 0) {
    return 0.0;
  }
  if (v < min_) {
    return 0.0;
  }
  const auto last = static_cast<size_t>((std::min(v, max_) - min_) / width_);
  int64_t count = 0;
  for (size_t i = 0; i < buckets_.size() && i <= last; ++i) {
    count += buckets_[i];
  }
  return static_cast<double>(count) / static_cast<double>(total_);
}

double Histogram::InverseCdf(double fraction) const {
  SLIM_DCHECK(fraction > 0.0 && fraction <= 1.0);
  if (total_ == 0) {
    return min_;
  }
  const double target = fraction * static_cast<double>(total_);
  int64_t running = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    running += buckets_[i];
    if (static_cast<double>(running) >= target) {
      return min_ + static_cast<double>(i + 1) * width_;
    }
  }
  return max_;
}

std::string Histogram::CdfSeries(int max_points) const {
  std::string out;
  if (total_ == 0) {
    // An empty histogram still emits one marker row so downstream gnuplot/awk pipelines see
    // the series exists (an empty file is indistinguishable from a missing one).
    return "# empty\n";
  }
  // Collect nonzero buckets first, then thin to at most max_points rows.
  std::vector<std::pair<double, double>> points;
  int64_t running = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    running += buckets_[i];
    const double edge = min_ + static_cast<double>(i + 1) * width_;
    points.emplace_back(edge, static_cast<double>(running) / static_cast<double>(total_));
  }
  const size_t stride =
      points.size() <= static_cast<size_t>(max_points) ? 1 : points.size() / max_points + 1;
  char buf[64];
  for (size_t i = 0; i < points.size(); i += stride) {
    std::snprintf(buf, sizeof(buf), "%.6g\t%.4f\n", points[i].first, points[i].second);
    out += buf;
  }
  if (stride > 1 && !points.empty() && (points.size() - 1) % stride != 0) {
    std::snprintf(buf, sizeof(buf), "%.6g\t%.4f\n", points.back().first, points.back().second);
    out += buf;
  }
  return out;
}

}  // namespace slim
