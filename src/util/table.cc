#include "src/util/table.h"

#include <cstdarg>
#include <cstdio>

#include "src/util/check.h"

namespace slim {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  SLIM_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::AddRow(std::initializer_list<std::string> cells) {
  AddRow(std::vector<std::string>(cells));
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += "| ";
      line += row[c];
      line.append(widths[c] - row[c].size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };
  std::string out = render_row(headers_);
  std::string rule;
  for (const size_t w : widths) {
    rule += "|";
    rule.append(w + 2, '-');
  }
  rule += "|\n";
  out += rule;
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace slim
