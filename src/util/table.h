// Plain-text table rendering for benchmark output.
//
// Every figure/table bench prints its rows through TextTable so the regenerated results read
// like the paper's tables and are easy to diff between runs.

#ifndef SRC_UTIL_TABLE_H_
#define SRC_UTIL_TABLE_H_

#include <initializer_list>
#include <string>
#include <vector>

namespace slim {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  // Convenience for mixed literal rows.
  void AddRow(std::initializer_list<std::string> cells);

  std::string Render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// printf-style std::string formatting helper.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace slim

#endif  // SRC_UTIL_TABLE_H_
