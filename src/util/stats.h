// Descriptive statistics used by the measurement harnesses.

#ifndef SRC_UTIL_STATS_H_
#define SRC_UTIL_STATS_H_

#include <cstdint>
#include <span>
#include <vector>

namespace slim {

// Streaming mean / variance / extrema (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Returns the p-th percentile (0 <= p <= 100) of the sample using linear interpolation.
// The input is copied and sorted; empty input yields 0.
double Percentile(std::span<const double> samples, double p);

// Least-squares fit y = intercept + slope * x. Returns {slope, intercept}.
// Used to recover per-pixel and startup costs from saturation measurements (Table 5).
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};
LinearFit FitLine(std::span<const double> x, std::span<const double> y);

}  // namespace slim

#endif  // SRC_UTIL_STATS_H_
