#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace slim {

namespace {

// Largest value bucket i covers (bucket i holds values with bit_width i). The top bucket
// also absorbs everything wider, so its edge is saturated rather than shifted into the
// sign bit.
int64_t BucketUpperBound(int i) {
  if (i <= 0) {
    return 0;
  }
  if (i >= 63) {
    return INT64_MAX;
  }
  return (int64_t{1} << i) - 1;
}

}  // namespace

void ExpHistogram::Record(int64_t value) {
  const uint64_t magnitude = value > 0 ? static_cast<uint64_t>(value) : 0;
  const int bucket = std::bit_width(magnitude);  // 0 for v <= 0, else floor(log2)+1
  ++buckets_[bucket >= kBuckets ? kBuckets - 1 : bucket];
  if (count_ == 0 || value < min_) {
    min_ = value;
  }
  if (value > max_) {
    max_ = value;
  }
  ++count_;
  sum_ += value;
}

int64_t ExpHistogram::PercentileUpperBound(double p) const {
  if (count_ == 0) {
    return 0;
  }
  const double target = p * static_cast<double>(count_);
  int64_t running = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    running += buckets_[i];
    if (static_cast<double>(running) >= target) {
      // Linear interpolation within the bucket, assuming samples spread uniformly across
      // it: tightens the raw power-of-two quantization (up to 2x) considerably. The exact
      // min/max clamp the edges, so single-bucket distributions come back exact.
      int64_t lower = i == 0 ? 0 : BucketUpperBound(i - 1) + 1;
      int64_t upper = BucketUpperBound(i);
      lower = std::max(lower, min_);
      upper = std::min(upper, max_);
      if (upper <= lower) {
        return lower;
      }
      const double before = static_cast<double>(running - buckets_[i]);
      const double frac = (target - before) / static_cast<double>(buckets_[i]);
      return lower + static_cast<int64_t>(
                         frac * static_cast<double>(upper - lower) + 0.5);
    }
  }
  return max_;
}

bool IsValidMetricName(std::string_view name) {
  if (name.empty() || name.front() == '.' || name.back() == '.') {
    return false;
  }
  bool has_dot = false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' || c == '.';
    if (!ok) {
      return false;
    }
    has_dot = has_dot || c == '.';
  }
  return has_dot;
}

bool MetricRegistry::Admit(const std::string& name, const char* kind_label) {
  if (!IsValidMetricName(name)) {
    std::fprintf(stderr, "[metrics] rejecting %s '%s': names must be subsystem.name style\n",
                 kind_label, name.c_str());
    return false;
  }
  if (entries_.count(name) > 0) {
    std::fprintf(stderr, "[metrics] rejecting duplicate %s '%s'\n", kind_label, name.c_str());
    return false;
  }
  return true;
}

bool MetricRegistry::BindCounter(std::string name, const int64_t* cell) {
  if (cell == nullptr || !Admit(name, "counter")) {
    return false;
  }
  Entry entry;
  entry.kind = Kind::kCounter;
  entry.cell = cell;
  entries_.emplace(std::move(name), std::move(entry));
  return true;
}

int64_t* MetricRegistry::Counter(std::string name) {
  if (!Admit(name, "counter")) {
    return nullptr;
  }
  Entry entry;
  entry.kind = Kind::kCounter;
  entry.owned_cell = std::make_unique<int64_t>(0);
  entry.cell = entry.owned_cell.get();
  int64_t* cell = entry.owned_cell.get();
  entries_.emplace(std::move(name), std::move(entry));
  return cell;
}

bool MetricRegistry::BindGauge(std::string name, std::function<double()> read) {
  if (!read || !Admit(name, "gauge")) {
    return false;
  }
  Entry entry;
  entry.kind = Kind::kGauge;
  entry.read = std::move(read);
  entries_.emplace(std::move(name), std::move(entry));
  return true;
}

ExpHistogram* MetricRegistry::Histogram(std::string name) {
  if (!Admit(name, "histogram")) {
    return nullptr;
  }
  Entry entry;
  entry.kind = Kind::kHistogram;
  entry.histogram = std::make_unique<ExpHistogram>();
  ExpHistogram* hist = entry.histogram.get();
  entries_.emplace(std::move(name), std::move(entry));
  return hist;
}

bool MetricRegistry::Contains(std::string_view name) const {
  return entries_.find(name) != entries_.end();
}

std::optional<double> MetricRegistry::Value(std::string_view name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    return std::nullopt;
  }
  switch (it->second.kind) {
    case Kind::kCounter:
      return static_cast<double>(*it->second.cell);
    case Kind::kGauge:
      return it->second.read();
    case Kind::kHistogram:
      return std::nullopt;
  }
  return std::nullopt;
}

std::optional<int64_t> MetricRegistry::CounterValue(std::string_view name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != Kind::kCounter) {
    return std::nullopt;
  }
  return *it->second.cell;
}

JsonValue MetricRegistry::Snapshot() const {
  JsonObject counters;
  JsonObject gauges;
  JsonObject histograms;
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        counters.emplace_back(name, JsonValue(*entry.cell));
        break;
      case Kind::kGauge:
        gauges.emplace_back(name, JsonValue(entry.read()));
        break;
      case Kind::kHistogram: {
        const ExpHistogram& h = *entry.histogram;
        JsonObject summary;
        summary.emplace_back("count", JsonValue(h.count()));
        summary.emplace_back("sum", JsonValue(h.sum()));
        summary.emplace_back("min", JsonValue(h.min()));
        summary.emplace_back("max", JsonValue(h.max()));
        summary.emplace_back("mean", JsonValue(h.mean()));
        summary.emplace_back("p50", JsonValue(h.PercentileUpperBound(0.5)));
        summary.emplace_back("p90", JsonValue(h.PercentileUpperBound(0.9)));
        summary.emplace_back("p99", JsonValue(h.PercentileUpperBound(0.99)));
        summary.emplace_back("p999", JsonValue(h.PercentileUpperBound(0.999)));
        // Sparse bucket list: [bucket_upper_bound, count] for nonzero buckets only.
        JsonArray buckets;
        for (int i = 0; i < ExpHistogram::kBuckets; ++i) {
          if (h.buckets()[i] == 0) {
            continue;
          }
          buckets.push_back(JsonValue(
              JsonArray{JsonValue(BucketUpperBound(i)), JsonValue(h.buckets()[i])}));
        }
        summary.emplace_back("buckets", JsonValue(std::move(buckets)));
        histograms.emplace_back(name, JsonValue(std::move(summary)));
        break;
      }
    }
  }
  JsonObject root;
  root.emplace_back("counters", JsonValue(std::move(counters)));
  root.emplace_back("gauges", JsonValue(std::move(gauges)));
  root.emplace_back("histograms", JsonValue(std::move(histograms)));
  return JsonValue(std::move(root));
}

std::string MetricRegistry::SnapshotJson(int indent) const { return Snapshot().Dump(indent); }

}  // namespace slim
