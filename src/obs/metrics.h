// Unified metrics registry for the simulation runtime.
//
// The paper's methodology is "log every protocol event, answer every question by
// post-processing" (Section 3.1); this registry is the runtime half of that bargain. Every
// subsystem's counters live behind one naming convention — `subsystem.name`, lowercase,
// dot-scoped (e.g. `transport.nacks_sent`, `fabric.fault.datagrams_corrupted`) — and one
// Snapshot() call serializes them all to JSON.
//
// Hot-path cost is zero by construction: counters are plain int64_t cells that callers bump
// directly (`++stats_.nacks_sent` compiles to the same instruction it always did); the
// registry only holds *pointers* to those cells and reads them at snapshot time. Gauges are
// pull-mode callbacks, also evaluated only at snapshot time. Histograms bucket by
// power-of-two, so a Record() is a clz plus two adds. Nothing locks: every registered cell
// is written only from the thread that owns its subsystem (the simulation thread). Code
// that fans work out to real threads — the band-parallel encoder in src/codec/parallel.h —
// must accumulate into worker-local scratch and merge on the owning thread before the
// result reaches a registered cell; snapshots then never race with writes.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/json.h"

namespace slim {

// Power-of-two-bucketed histogram for latency (ns) and size (bytes) distributions.
// Bucket i counts values v with 2^(i-1) <= v < 2^i (bucket 0 counts v <= 0 and v == 1's
// lower half: exactly, values where bit_width(v) == i). Exact count/sum/min/max ride along
// so means are not quantized.
class ExpHistogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(int64_t value);

  int64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  int64_t min() const { return count_ > 0 ? min_ : 0; }
  int64_t max() const { return max_; }
  double mean() const {
    return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }
  // Estimated p-th percentile (p in (0, 1]): the bucket holding the p-th sample is found
  // exactly, then the position within it is linearly interpolated (and clamped by the
  // exact min/max), tightening the raw power-of-two quantization's 2x error bound to the
  // within-bucket interpolation error. Single-bucket distributions come back exact at the
  // edges.
  int64_t PercentileUpperBound(double p) const;

  const std::array<int64_t, kBuckets>& buckets() const { return buckets_; }

 private:
  std::array<int64_t, kBuckets> buckets_{};
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

// Names must be dot-scoped, lowercase `[a-z0-9_.]` with at least one '.', so every metric
// reads as `subsystem.name` (deeper scoping like `fabric.fault.loss` is fine).
bool IsValidMetricName(std::string_view name);

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Registers a counter backed by an external cell (the legacy stats-struct fields). The
  // struct stays the owner — its accessors keep working unchanged — and the registry reads
  // through the pointer at snapshot time. Returns false (and registers nothing) on a
  // duplicate or invalid name; the first registration wins.
  bool BindCounter(std::string name, const int64_t* cell);

  // Registers a registry-owned counter and returns its cell for the caller to bump.
  // Returns nullptr on duplicate/invalid name.
  int64_t* Counter(std::string name);

  // Registers a pull-mode gauge; `read` is evaluated only at snapshot time.
  bool BindGauge(std::string name, std::function<double()> read);

  // Registers (or returns nullptr on duplicate/invalid name) a registry-owned histogram.
  ExpHistogram* Histogram(std::string name);

  bool Contains(std::string_view name) const;
  size_t size() const { return entries_.size(); }

  // Scalar read-back by name: counters return their exact value, gauges are evaluated.
  // nullopt for unknown names and histograms.
  std::optional<double> Value(std::string_view name) const;
  std::optional<int64_t> CounterValue(std::string_view name) const;

  // One JSON object: {"counters": {...}, "gauges": {...}, "histograms": {...}}, each
  // section keyed by metric name in sorted order so snapshots diff cleanly.
  JsonValue Snapshot() const;
  std::string SnapshotJson(int indent = 2) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    const int64_t* cell = nullptr;            // counters
    std::function<double()> read;             // gauges
    std::unique_ptr<ExpHistogram> histogram;  // histograms
    std::unique_ptr<int64_t> owned_cell;      // registry-owned counters
  };

  bool Admit(const std::string& name, const char* kind_label);

  // std::map keeps snapshot order sorted by name with zero work at snapshot time.
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace slim

#endif  // SRC_OBS_METRICS_H_
