// Minimal JSON value model, writer and parser for the observability layer.
//
// Everything the telemetry stack emits — metric snapshots, Chrome trace files, BENCH
// reports — is JSON, and the bench_smoke validator must read it back. Keeping one tiny,
// dependency-free implementation here means the writer and the validator can never drift:
// they share the same value model.

#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace slim {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
// Ordered map: snapshots and reports serialize with deterministic key order so runs diff
// cleanly, which is the whole point of machine-readable bench output.
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(std::nullptr_t) : kind_(Kind::kNull) {}  // NOLINT(runtime/explicit)
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}  // NOLINT(runtime/explicit)
  JsonValue(double d) : kind_(Kind::kNumber), number_(d) {}  // NOLINT(runtime/explicit)
  JsonValue(int64_t n)  // NOLINT(runtime/explicit)
      : kind_(Kind::kNumber), number_(static_cast<double>(n)), int_(n), is_int_(true) {}
  JsonValue(int n) : JsonValue(static_cast<int64_t>(n)) {}  // NOLINT(runtime/explicit)
  JsonValue(uint64_t n) : JsonValue(static_cast<int64_t>(n)) {}  // NOLINT(runtime/explicit)
  JsonValue(std::string s)  // NOLINT(runtime/explicit)
      : kind_(Kind::kString), string_(std::move(s)) {}
  JsonValue(const char* s) : JsonValue(std::string(s)) {}  // NOLINT(runtime/explicit)
  JsonValue(JsonArray a)  // NOLINT(runtime/explicit)
      : kind_(Kind::kArray), array_(std::move(a)) {}
  JsonValue(JsonObject o)  // NOLINT(runtime/explicit)
      : kind_(Kind::kObject), object_(std::move(o)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_double() const { return number_; }
  int64_t as_int() const { return is_int_ ? int_ : static_cast<int64_t>(number_); }
  const std::string& as_string() const { return string_; }
  const JsonArray& as_array() const { return array_; }
  JsonArray& as_array() { return array_; }
  const JsonObject& as_object() const { return object_; }
  JsonObject& as_object() { return object_; }

  // Object field lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
  // Appends (does not replace) a field; callers build objects once, in order.
  void Set(std::string key, JsonValue value);

  // Compact serialization (no insignificant whitespace). `indent` > 0 pretty-prints.
  std::string Dump(int indent = 0) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  int64_t int_ = 0;
  bool is_int_ = false;
  std::string string_;
  JsonArray array_;
  JsonObject object_;
};

// Parses a complete JSON document. Returns nullopt (with a position/reason in *error when
// non-null) on malformed input or trailing garbage.
std::optional<JsonValue> JsonParse(std::string_view text, std::string* error = nullptr);

// Escapes `s` into a quoted JSON string literal (used by the streaming trace writer, which
// cannot afford to buffer a JsonValue per event).
std::string JsonQuote(std::string_view s);

}  // namespace slim

#endif  // SRC_OBS_JSON_H_
