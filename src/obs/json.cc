#include "src/obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace slim {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : object_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

void JsonValue::Set(std::string key, JsonValue value) {
  kind_ = Kind::kObject;
  object_.emplace_back(std::move(key), std::move(value));
}

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

void AppendNumber(std::string* out, double d, int64_t i, bool is_int) {
  char buf[40];
  if (is_int) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(i));
  } else if (std::isfinite(d)) {
    // %.17g round-trips every double; trim to the shortest form that still does.
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    double parsed = std::strtod(buf, nullptr);
    for (int prec = 15; prec <= 16; ++prec) {
      char shorter[40];
      std::snprintf(shorter, sizeof(shorter), "%.*g", prec, d);
      if (std::strtod(shorter, nullptr) == d) {
        std::snprintf(buf, sizeof(buf), "%s", shorter);
        break;
      }
      (void)parsed;
    }
  } else {
    // JSON has no Inf/NaN; null is the least-wrong encoding and parsers accept it.
    std::snprintf(buf, sizeof(buf), "null");
  }
  *out += buf;
}

void Newline(std::string* out, int indent, int depth) {
  if (indent > 0) {
    out->push_back('\n');
    out->append(static_cast<size_t>(indent) * depth, ' ');
  }
}

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      AppendNumber(out, number_, int_, is_int_);
      break;
    case Kind::kString:
      *out += JsonQuote(string_);
      break;
    case Kind::kArray: {
      if (array_.empty()) {
        *out += "[]";
        break;
      }
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) {
          out->push_back(',');
        }
        Newline(out, indent, depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out->push_back(']');
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        *out += "{}";
        break;
      }
      out->push_back('{');
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) {
          out->push_back(',');
        }
        Newline(out, indent, depth + 1);
        *out += JsonQuote(object_[i].first);
        *out += indent > 0 ? ": " : ":";
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> Parse(std::string* error) {
    std::optional<JsonValue> v = ParseValue();
    SkipSpace();
    if (v.has_value() && pos_ != text_.size()) {
      Fail("trailing characters");
      v.reset();
    }
    if (!v.has_value() && error != nullptr) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), " at offset %zu", pos_);
      *error = error_ + buf;
    }
    return v;
  }

 private:
  void Fail(const char* why) {
    if (error_.empty()) {
      error_ = why;
    }
  }

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  std::optional<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == '{') {
      return ParseObject();
    }
    if (c == '[') {
      return ParseArray();
    }
    if (c == '"') {
      std::optional<std::string> s = ParseString();
      if (!s.has_value()) {
        return std::nullopt;
      }
      return JsonValue(std::move(*s));
    }
    if (ConsumeLiteral("true")) {
      return JsonValue(true);
    }
    if (ConsumeLiteral("false")) {
      return JsonValue(false);
    }
    if (ConsumeLiteral("null")) {
      return JsonValue(nullptr);
    }
    return ParseNumber();
  }

  std::optional<JsonValue> ParseNumber() {
    const size_t start = pos_;
    bool is_int = true;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_int = false;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
              text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
              text_[pos_] == '-')) {
        ++pos_;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      Fail("invalid value");
      return std::nullopt;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    if (is_int) {
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (end == token.c_str() + token.size()) {
        return JsonValue(static_cast<int64_t>(v));
      }
    }
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      Fail("invalid number");
      return std::nullopt;
    }
    return JsonValue(d);
  }

  std::optional<std::string> ParseString() {
    if (!Consume('"')) {
      Fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            Fail("truncated \\u escape");
            return std::nullopt;
          }
          const std::string hex(text_.substr(pos_, 4));
          pos_ += 4;
          char* end = nullptr;
          const long cp = std::strtol(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 4) {
            Fail("invalid \\u escape");
            return std::nullopt;
          }
          // UTF-8 encode the code point (surrogate pairs are not recombined; the telemetry
          // writers only ever emit escapes for control characters).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          }
          break;
        }
        default:
          Fail("invalid escape");
          return std::nullopt;
      }
    }
    Fail("unterminated string");
    return std::nullopt;
  }

  std::optional<JsonValue> ParseArray() {
    Consume('[');
    JsonArray items;
    SkipSpace();
    if (Consume(']')) {
      return JsonValue(std::move(items));
    }
    while (true) {
      std::optional<JsonValue> v = ParseValue();
      if (!v.has_value()) {
        return std::nullopt;
      }
      items.push_back(std::move(*v));
      if (Consume(']')) {
        return JsonValue(std::move(items));
      }
      if (!Consume(',')) {
        Fail("expected ',' or ']'");
        return std::nullopt;
      }
    }
  }

  std::optional<JsonValue> ParseObject() {
    Consume('{');
    JsonObject fields;
    SkipSpace();
    if (Consume('}')) {
      return JsonValue(std::move(fields));
    }
    while (true) {
      SkipSpace();
      std::optional<std::string> key = ParseString();
      if (!key.has_value()) {
        return std::nullopt;
      }
      if (!Consume(':')) {
        Fail("expected ':'");
        return std::nullopt;
      }
      std::optional<JsonValue> v = ParseValue();
      if (!v.has_value()) {
        return std::nullopt;
      }
      fields.emplace_back(std::move(*key), std::move(*v));
      if (Consume('}')) {
        return JsonValue(std::move(fields));
      }
      if (!Consume(',')) {
        Fail("expected ',' or '}'");
        return std::nullopt;
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> JsonParse(std::string_view text, std::string* error) {
  return Parser(text).Parse(error);
}

}  // namespace slim
