#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace slim {

Tracer* Tracer::global_ = nullptr;

void Tracer::Stamp(Event* event) {
  event->seq = next_seq_++;
  if (current_input_ >= 0) {
    // Attach the correlation id unless the caller already did.
    bool present = false;
    for (const auto& [k, v] : event->args) {
      if (k == "input_id") {
        present = true;
        break;
      }
    }
    if (!present) {
      event->args.emplace_back("input_id", JsonValue(current_input_));
    }
  }
}

void Tracer::Push(Event event) {
  Stamp(&event);
  events_.push_back(std::move(event));
}

void Tracer::Begin(SimTime ts, std::string name, std::string cat, int tid, JsonObject args) {
  open_[tid].push_back(name);
  Event e;
  e.ts = ts;
  e.ph = 'B';
  e.tid = tid;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.args = std::move(args);
  Push(std::move(e));
}

void Tracer::End(SimTime ts, int tid) {
  auto it = open_.find(tid);
  if (it == open_.end() || it->second.empty()) {
    return;  // unbalanced End: drop rather than corrupt the trace
  }
  Event e;
  e.ts = ts;
  e.ph = 'E';
  e.tid = tid;
  e.name = std::move(it->second.back());
  it->second.pop_back();
  Push(std::move(e));
}

void Tracer::Complete(SimTime start, SimDuration dur, std::string name, std::string cat,
                      int tid, JsonObject args) {
  Event e;
  e.ts = start;
  e.dur = dur < 0 ? 0 : dur;
  e.ph = 'X';
  e.tid = tid;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.args = std::move(args);
  Push(std::move(e));
}

void Tracer::Instant(SimTime ts, std::string name, std::string cat, int tid, JsonObject args) {
  Event e;
  e.ts = ts;
  e.ph = 'i';
  e.tid = tid;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.args = std::move(args);
  Push(std::move(e));
}

void Tracer::SetThreadName(int tid, std::string name) {
  thread_names_[tid] = std::move(name);
}

size_t Tracer::open_spans() const {
  size_t open = 0;
  for (const auto& [tid, stack] : open_) {
    open += stack.size();
  }
  return open;
}

namespace {

// Chrome trace timestamps are microseconds; the sim clock is nanoseconds. Emitting
// fractional microseconds keeps sub-us events (transport fragments) distinguishable.
void AppendTs(std::string* out, const char* key, SimTime ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.3f", key, static_cast<double>(ns) / 1000.0);
  *out += buf;
}

}  // namespace

std::string Tracer::Json() const {
  // Sort by (ts, record order). B/E pairs stay balanced under the sort because an E is
  // recorded after its B with ts >= the B's ts.
  std::vector<const Event*> ordered;
  ordered.reserve(events_.size());
  for (const Event& e : events_) {
    ordered.push_back(&e);
  }
  std::stable_sort(ordered.begin(), ordered.end(), [](const Event* a, const Event* b) {
    if (a->ts != b->ts) {
      return a->ts < b->ts;
    }
    return a->seq < b->seq;
  });
  return EmitJson(ordered);
}

std::string Tracer::EmitJson(const std::vector<const Event*>& ordered) const {
  std::string out = "[\n";
  bool first = true;
  const auto comma = [&] {
    if (!first) {
      out += ",\n";
    }
    first = false;
  };
  for (const auto& [tid, name] : thread_names_) {
    comma();
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":" + JsonQuote(name) + "}}";
  }
  for (const Event* e : ordered) {
    comma();
    out += "{\"ph\":\"";
    out.push_back(e->ph);
    out += "\",\"pid\":1,\"tid\":" + std::to_string(e->tid) + ",";
    AppendTs(&out, "ts", e->ts);
    if (e->ph == 'X') {
      out += ",";
      AppendTs(&out, "dur", e->dur);
    }
    if (e->ph == 'i') {
      out += ",\"s\":\"t\"";  // thread-scoped instant
    }
    out += ",\"name\":" + JsonQuote(e->name);
    if (!e->cat.empty()) {
      out += ",\"cat\":" + JsonQuote(e->cat);
    }
    if (!e->args.empty()) {
      out += ",\"args\":" + JsonValue(e->args).Dump();
    }
    out += "}";
  }
  out += "\n]\n";
  return out;
}

bool Tracer::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[trace] cannot open %s for writing\n", path.c_str());
    return false;
  }
  const std::string json = Json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

TraceSpan::TraceSpan(Simulator* sim, std::string name, std::string cat, int tid,
                     JsonObject args)
    : sim_(sim), tracer_(Tracer::Global()), tid_(tid) {
  if (tracer_ != nullptr) {
    tracer_->Begin(sim_->now(), std::move(name), std::move(cat), tid_, std::move(args));
  }
}

TraceSpan::~TraceSpan() {
  if (tracer_ != nullptr) {
    tracer_->End(sim_->now(), tid_);
  }
}

ScopedTraceFromEnv::ScopedTraceFromEnv() {
  const char* path = std::getenv("SLIM_TRACE");
  if (path == nullptr || *path == '\0') {
    return;
  }
  path_ = path;
  tracer_ = std::make_unique<Tracer>();
  tracer_->SetThreadName(kTraceTidInput, "input");
  tracer_->SetThreadName(kTraceTidServer, "server pipeline");
  tracer_->SetThreadName(kTraceTidConsole, "console decode");
  Tracer::SetGlobal(tracer_.get());
  std::fprintf(stderr, "[trace] recording sim-time trace to %s\n", path_.c_str());
}

ScopedTraceFromEnv::~ScopedTraceFromEnv() {
  if (tracer_ == nullptr) {
    return;
  }
  Tracer::SetGlobal(nullptr);
  if (tracer_->WriteFile(path_)) {
    std::fprintf(stderr, "[trace] wrote %zu events to %s\n", tracer_->event_count(),
                 path_.c_str());
  }
}

}  // namespace slim
