// Periodic MetricRegistry snapshots as a JSONL stream, on the simulated clock.
//
// The dashboard half of the observability layer: a harness that owns a registry arms a
// SnapshotStreamer and every `interval` of sim time one line
//
//   {"sample": N, "t_ns": <sim time>, "snapshot": {counters, gauges, histograms}}
//
// is appended to `path`. tools/slimtop tails that file (live, `-f`) or post-processes it,
// rendering per-sample deltas — latency percentiles, breach counts, txq depth, chaos
// counters — without the harness knowing anything about presentation. Harnesses gate this
// behind SLIM_STATS_JSONL via MaybeStreamStatsFromEnv, so default runs pay nothing.

#ifndef SRC_OBS_STATS_STREAM_H_
#define SRC_OBS_STATS_STREAM_H_

#include <cstdio>
#include <memory>
#include <string>

#include "src/sim/simulator.h"

namespace slim {

class MetricRegistry;

class SnapshotStreamer {
 public:
  // Starts sampling: one line at each interval boundary while the simulation runs, plus a
  // final line from Stop()/the destructor so the end-of-run state is always captured.
  SnapshotStreamer(Simulator* sim, const MetricRegistry* registry, std::string path,
                   SimDuration interval);
  ~SnapshotStreamer();
  SnapshotStreamer(const SnapshotStreamer&) = delete;
  SnapshotStreamer& operator=(const SnapshotStreamer&) = delete;

  // Writes the final sample and stops; idempotent.
  void Stop();

  bool ok() const { return file_ != nullptr; }
  int64_t samples() const { return samples_; }
  const std::string& path() const { return path_; }

 private:
  void Arm();
  void WriteSample();

  Simulator* sim_;
  const MetricRegistry* registry_;
  std::string path_;
  SimDuration interval_;
  std::FILE* file_ = nullptr;
  EventId event_ = kInvalidEventId;
  int64_t samples_ = 0;
};

// Creates a streamer sampling every SLIM_STATS_INTERVAL_MS (default 1000) of sim time when
// SLIM_STATS_JSONL=<path> is set; returns null (zero cost) otherwise.
std::unique_ptr<SnapshotStreamer> MaybeStreamStatsFromEnv(Simulator* sim,
                                                          const MetricRegistry* registry);

}  // namespace slim

#endif  // SRC_OBS_STATS_STREAM_H_
