// Sim-time pipeline tracer emitting Chrome trace_event JSON.
//
// The output loads directly in Perfetto / chrome://tracing: every pipeline stage — input
// dispatch -> app render -> encode -> transport send/frag/replay -> console decode ->
// present — becomes a span on a named track, correlated by a per-input-event id carried in
// the span args, so one Figure-7 service time decomposes visually into its stage costs
// (including NACK/replay stalls under a chaos fabric).
//
// Events are buffered in memory, stamped with the *simulated* clock (ns, emitted as the
// trace format's microseconds), and sorted by timestamp on write — completion-style events
// are recorded when their end is known, which is after later-starting events may already
// have been recorded. Tracing is off by default and costs one null-pointer check per
// instrumentation point: the deep layers consult Tracer::Global(), which harnesses install
// only when SLIM_TRACE=path.json is set.

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/sim/simulator.h"
#include "src/util/time.h"

namespace slim {

// Conventional track (tid) assignments so traces from every harness read the same way.
// Transport endpoints add their fabric NodeId to kTraceTidTransportBase, giving each
// endpoint its own replay/stall track.
constexpr int kTraceTidInput = 1;
constexpr int kTraceTidServer = 2;
constexpr int kTraceTidConsole = 3;
constexpr int kTraceTidTransportBase = 16;

class Tracer {
 public:
  Tracer() = default;
  virtual ~Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // --- Event emission (ts is simulated time in ns) ---
  void Begin(SimTime ts, std::string name, std::string cat, int tid, JsonObject args = {});
  // Ends the innermost open span on `tid`. Unbalanced Ends are dropped (never emitted), so
  // the output always carries balanced B/E pairs.
  void End(SimTime ts, int tid);
  // A span whose duration is known at record time (e.g. console decode: queued-at ->
  // completion), free of B/E nesting constraints.
  void Complete(SimTime start, SimDuration dur, std::string name, std::string cat, int tid,
                JsonObject args = {});
  void Instant(SimTime ts, std::string name, std::string cat, int tid, JsonObject args = {});
  void SetThreadName(int tid, std::string name);

  // --- Input-event correlation ---
  // The id of the input event currently being dispatched; spans recorded while it is set
  // attach it as args.input_id. -1 = none.
  void set_current_input(int64_t id) { current_input_ = id; }
  int64_t current_input() const { return current_input_; }
  int64_t NextInputId() { return ++last_input_id_; }

  size_t event_count() const { return events_.size(); }
  // Number of B spans still open (for tests; a finished pipeline trace should report 0).
  size_t open_spans() const;

  // Serializes the buffered events as a Chrome trace JSON array, sorted by timestamp
  // (metadata first). Safe to call repeatedly. The FlightRecorder subclass overrides this
  // to additionally drop B/E halves whose partner was overwritten by the ring.
  virtual std::string Json() const;
  bool WriteFile(const std::string& path) const;

  // --- Process-global tracer ---
  // Deep layers (transport, console, session) consult this; null means tracing is off and
  // the instrumentation point costs one branch.
  static Tracer* Global() { return global_; }
  static void SetGlobal(Tracer* tracer) { global_ = tracer; }

 protected:
  struct Event {
    SimTime ts = 0;
    SimDuration dur = 0;
    char ph = 'i';
    int tid = 0;
    std::string name;
    std::string cat;
    JsonObject args;
    uint64_t seq = 0;  // record order; ties on ts sort by it
  };

  // Stamps record order + input-id correlation; every emission funnels through here.
  void Stamp(Event* event);
  // Storage policy: the base class appends without bound; the flight recorder overwrites
  // its ring's oldest slot.
  virtual void Push(Event event);
  // Shared serializer: metadata records then `ordered`, already sorted by (ts, seq).
  std::string EmitJson(const std::vector<const Event*>& ordered) const;

  std::vector<Event> events_;
  std::map<int, std::vector<std::string>> open_;  // per-tid stack of open B span names
  std::map<int, std::string> thread_names_;
  int64_t current_input_ = -1;
  int64_t last_input_id_ = 0;
  uint64_t next_seq_ = 0;

 private:
  static Tracer* global_;
};

// RAII span against the global tracer: no-op when tracing is off. Reads the simulator's
// clock at construction and destruction.
class TraceSpan {
 public:
  TraceSpan(Simulator* sim, std::string name, std::string cat, int tid, JsonObject args = {});
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Simulator* sim_;
  Tracer* tracer_;  // captured once so SetGlobal mid-span cannot unbalance B/E
  int tid_;
};

// Installs a global tracer for the lifetime of the object when SLIM_TRACE=<path> is set in
// the environment; writes the trace file and uninstalls on destruction. Harness mains hold
// one of these so default runs (no SLIM_TRACE) pay zero cost.
class ScopedTraceFromEnv {
 public:
  ScopedTraceFromEnv();
  ~ScopedTraceFromEnv();
  ScopedTraceFromEnv(const ScopedTraceFromEnv&) = delete;
  ScopedTraceFromEnv& operator=(const ScopedTraceFromEnv&) = delete;

  bool enabled() const { return tracer_ != nullptr; }
  Tracer* tracer() { return tracer_.get(); }

 private:
  std::string path_;
  std::unique_ptr<Tracer> tracer_;
};

}  // namespace slim

#endif  // SRC_OBS_TRACE_H_
