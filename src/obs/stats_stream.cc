#include "src/obs/stats_stream.h"

#include <cstdlib>

#include "src/obs/bench_report.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/util/check.h"

namespace slim {

SnapshotStreamer::SnapshotStreamer(Simulator* sim, const MetricRegistry* registry,
                                   std::string path, SimDuration interval)
    : sim_(sim), registry_(registry), path_(std::move(path)), interval_(interval) {
  SLIM_CHECK(sim != nullptr && registry != nullptr && interval > 0);
  file_ = std::fopen(path_.c_str(), "w");
  if (file_ == nullptr) {
    std::fprintf(stderr, "[stats] cannot open %s for writing\n", path_.c_str());
    return;
  }
  Arm();
}

SnapshotStreamer::~SnapshotStreamer() { Stop(); }

void SnapshotStreamer::Arm() {
  // Daemon: a periodic sampler must never be the reason sim.Run() keeps going.
  event_ = sim_->ScheduleDaemon(interval_, [this] {
    event_ = kInvalidEventId;
    WriteSample();
    Arm();
  });
}

void SnapshotStreamer::WriteSample() {
  if (file_ == nullptr) {
    return;
  }
  JsonObject line;
  line.emplace_back("sample", JsonValue(samples_));
  line.emplace_back("t_ns", JsonValue(sim_->now()));
  line.emplace_back("snapshot", registry_->Snapshot());
  const std::string out = JsonValue(std::move(line)).Dump(0) + "\n";
  std::fwrite(out.data(), 1, out.size(), file_);
  std::fflush(file_);  // a live slimtop -f should see the sample immediately
  ++samples_;
}

void SnapshotStreamer::Stop() {
  if (event_ != kInvalidEventId) {
    sim_->Cancel(event_);
    event_ = kInvalidEventId;
  }
  if (file_ != nullptr) {
    WriteSample();  // end-of-run state
    std::fclose(file_);
    file_ = nullptr;
  }
}

std::unique_ptr<SnapshotStreamer> MaybeStreamStatsFromEnv(Simulator* sim,
                                                          const MetricRegistry* registry) {
  const char* path = std::getenv("SLIM_STATS_JSONL");
  if (path == nullptr || *path == '\0') {
    return nullptr;
  }
  const SimDuration interval =
      static_cast<SimDuration>(EnvInt("SLIM_STATS_INTERVAL_MS", 1000)) * kMillisecond;
  auto streamer = std::make_unique<SnapshotStreamer>(sim, registry, path, interval);
  std::fprintf(stderr, "[stats] streaming registry snapshots to %s every %lld sim-ms\n",
               path, static_cast<long long>(interval / kMillisecond));
  return streamer;
}

}  // namespace slim
