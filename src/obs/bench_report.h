// Machine-readable benchmark output.
//
// Every figure/table harness prints paper-style text for humans; BenchReporter makes the
// same run emit BENCH_<name>.json next to it — metric name/value/unit rows, the scale
// knobs the run used, and git-describable run metadata — so the perf trajectory of this
// repo is a set of parseable artifacts rather than text to eyeball. The schema is
// validated by the bench_smoke ctest target through ValidateBenchReport(), which shares
// this file's writer, so writer and validator cannot drift.

#ifndef SRC_OBS_BENCH_REPORT_H_
#define SRC_OBS_BENCH_REPORT_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/obs/json.h"
#include "src/obs/metrics.h"

namespace slim {

// Robust environment integer: parses with strtol, warns on stderr and falls back to
// `fallback` when the variable is unset, not a number, has trailing garbage, or is not
// positive (every SLIM_* scale knob is a count or a duration, so zero and negatives are
// configuration mistakes, not valid scales).
int EnvInt(const char* name, int fallback);

class BenchReporter {
 public:
  // Bumped whenever a required key is added/renamed; the bench_smoke validator pins it, so
  // schema drift fails CI instead of silently producing unparseable trajectories.
  static constexpr int64_t kSchemaVersion = 1;

  // `name` identifies the harness (e.g. "fig7_service_times"); the report lands at
  // $SLIM_BENCH_DIR/BENCH_<name>.json (cwd when SLIM_BENCH_DIR is unset). The standard
  // scale knobs (SLIM_USERS, SLIM_MINUTES, SLIM_SECONDS) are captured automatically;
  // harness-specific knobs are added with Knob().
  BenchReporter(std::string name, std::string title);
  // Writes the report if Write() was never called (best-effort; errors already warned).
  ~BenchReporter();
  BenchReporter(const BenchReporter&) = delete;
  BenchReporter& operator=(const BenchReporter&) = delete;

  void Metric(std::string metric, double value, std::string unit);
  void Metric(std::string metric, int64_t value, std::string unit);
  // Adds/overrides a scale knob recorded under "scale".
  void Knob(std::string knob, int64_t value);
  // Attaches a full metrics-registry snapshot under the optional "metrics_registry" key.
  void AttachSnapshot(const MetricRegistry& registry);

  size_t metric_count() const { return metrics_.size(); }
  const std::string& path() const { return path_; }

  // Serializes and writes the report. Returns false (after warning) on I/O failure.
  bool Write();
  // The document that Write() serializes (exposed for tests).
  JsonValue Document() const;

 private:
  std::string name_;
  std::string title_;
  JsonObject scale_;
  JsonArray metrics_;
  std::optional<JsonValue> snapshot_;
  std::string path_;
  bool written_ = false;
};

// Validates one BENCH_*.json document against the required schema: returns an error
// message, or nullopt when the document conforms.
std::optional<std::string> ValidateBenchReport(const JsonValue& doc);

}  // namespace slim

#endif  // SRC_OBS_BENCH_REPORT_H_
