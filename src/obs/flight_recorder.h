// Always-on, bounded-memory sibling of the Chrome-trace Tracer.
//
// SLIM_TRACE buffers every event for the whole run, which is the right tool for a planned
// capture and the wrong one for "what happened just before the first bad keystroke of a
// two-hour soak". The FlightRecorder keeps the same event model and the same emission
// points (it IS a Tracer, installed through Tracer::SetGlobal, so every existing
// instrumentation site feeds it unchanged) but stores events in a fixed-capacity ring,
// overwriting the oldest — bounded memory, no file until someone asks. The LatencyAudit
// dumps it on an SLO breach, a transport give-up, or a forced detach, so the trace around
// the incident survives without paying for the rest of the run.
//
// Ring overwrite can orphan one half of a B/E pair (the B falls off the ring while its E
// survives, or a dump happens between B and E). Json() therefore balance-filters: per tid,
// in (ts, seq) order, an E with no surviving B is dropped and a B with no surviving E is
// dropped, so the dump always loads cleanly in Perfetto.

#ifndef SRC_OBS_FLIGHT_RECORDER_H_
#define SRC_OBS_FLIGHT_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "src/obs/trace.h"

namespace slim {

class FlightRecorder : public Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 8192;

  explicit FlightRecorder(size_t capacity = kDefaultCapacity);

  size_t capacity() const { return capacity_; }
  // Events ever recorded, including those since overwritten.
  uint64_t total_recorded() const { return total_recorded_; }
  // Events currently held in the ring.
  size_t size() const { return events_.size(); }

  // Balance-filtered Chrome trace JSON of the ring's current contents.
  std::string Json() const override;

 protected:
  void Push(Event event) override;

 private:
  size_t capacity_;
  size_t write_ = 0;  // next slot to overwrite once the ring is full
  uint64_t total_recorded_ = 0;
};

// Installs a FlightRecorder as the process-global tracer for the lifetime of the object —
// but only when no tracer is already installed (a SLIM_TRACE full capture outranks the
// ring: it records strictly more). Capacity comes from SLIM_FLIGHT_EVENTS when set.
class ScopedFlightRecorder {
 public:
  ScopedFlightRecorder();
  ~ScopedFlightRecorder();
  ScopedFlightRecorder(const ScopedFlightRecorder&) = delete;
  ScopedFlightRecorder& operator=(const ScopedFlightRecorder&) = delete;

  // The recorder this scope installed; null when a full tracer was already global.
  FlightRecorder* recorder() { return recorder_.get(); }

 private:
  std::unique_ptr<FlightRecorder> recorder_;
};

}  // namespace slim

#endif  // SRC_OBS_FLIGHT_RECORDER_H_
