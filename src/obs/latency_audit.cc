#include "src/obs/latency_audit.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "src/obs/bench_report.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace slim {

LatencyAudit* LatencyAudit::global_ = nullptr;

const char* LatencyStageName(int stage) {
  switch (stage) {
    case kStageRender:
      return "render";
    case kStageEncode:
      return "encode";
    case kStageWireCpu:
      return "wire_cpu";
    case kStageTxq:
      return "txq";
    case kStagePace:
      return "pace";
    case kStageNetwork:
      return "network";
    case kStageReplay:
      return "replay";
    case kStageDecode:
      return "decode";
    default:
      return "none";
  }
}

LatencyAuditOptions LatencyAudit::OptionsFromEnv() {
  LatencyAuditOptions options;
  options.slo = static_cast<SimDuration>(EnvInt("SLIM_SLO_MS", 150)) * kMillisecond;
  if (const char* dir = std::getenv("SLIM_FLIGHT_DIR"); dir != nullptr && *dir != '\0') {
    options.flight_dir = dir;
  }
  return options;
}

LatencyAudit::LatencyAudit(LatencyAuditOptions options) : options_(std::move(options)) {}

LatencyAudit::~LatencyAudit() {
  if (global_ == this) {
    global_ = nullptr;
  }
}

bool LatencyAudit::RegisterMetrics(MetricRegistry* registry, const std::string& prefix) {
  if (registry == nullptr) {
    return false;
  }
  registry_ = registry;
  prefix_ = prefix;
  bool ok = true;
  ok = registry->BindCounter(prefix + ".events", &events_completed_) && ok;
  ok = registry->BindCounter(prefix + ".incomplete", &events_incomplete_) && ok;
  ok = registry->BindCounter(prefix + ".breaches", &breaches_) && ok;
  ok = registry->BindCounter(prefix + ".gave_up", &gave_up_) && ok;
  ok = registry->BindCounter(prefix + ".flight_dumps", &flight_dumps_) && ok;
  ok = registry->BindCounter(prefix + ".migrations", &migrations_observed_) && ok;
  migration_blackout_hist_ = registry->Histogram(prefix + ".migration_blackout_ns");
  ok = ok && migration_blackout_hist_ != nullptr;
  e2e_hist_ = registry->Histogram(prefix + ".e2e_ns");
  ok = ok && e2e_hist_ != nullptr;
  for (int s = 0; s < kStageCount; ++s) {
    const std::string stage = LatencyStageName(s);
    ok = registry->BindCounter(prefix + ".breach_by." + stage, &breach_by_stage_[s]) && ok;
    stage_hist_[s] = registry->Histogram(prefix + "." + stage + "_ns");
    ok = ok && stage_hist_[s] != nullptr;
  }
  return ok;
}

ExpHistogram* LatencyAudit::SessionHistogram(uint32_t session_id) {
  const auto it = session_hist_.find(session_id);
  if (it != session_hist_.end()) {
    return it->second;
  }
  ExpHistogram* hist = nullptr;
  if (registry_ != nullptr) {
    hist = registry_->Histogram(prefix_ + ".s" + std::to_string(session_id) + ".e2e_ns");
  }
  session_hist_.emplace(session_id, hist);
  return hist;
}

int64_t LatencyAudit::BeginInput(uint32_t session_id, SimTime now, int64_t tracer_id) {
  // Share the tracer's id space when both are on, so a breach dump's input_id matches the
  // audit row; keep the audit's own counter ahead of anything it has seen.
  const int64_t id = tracer_id >= 0 ? tracer_id : ++next_input_id_;
  next_input_id_ = std::max(next_input_id_, id);
  OpenEvent ev;
  ev.session = session_id;
  ev.t_dispatch = now;
  ev.dispatch_done = now;
  open_[id] = ev;
  current_input_ = id;
  if (open_.size() > options_.max_open_events) {
    // Bounded ledger: fold the oldest still-open event as incomplete.
    auto oldest = open_.begin();
    Finalize(oldest->first, oldest->second, /*complete=*/false);
    open_.erase(oldest);
  }
  return id;
}

void LatencyAudit::EndInput(int64_t input_id, SimDuration render, SimDuration encode,
                            SimDuration wire_cpu, SimTime now) {
  current_input_ = -1;
  const auto it = open_.find(input_id);
  if (it == open_.end()) {
    return;
  }
  OpenEvent& ev = it->second;
  ev.dispatched = true;
  ev.stage_cpu[kStageRender] = std::max<SimDuration>(render, 0);
  ev.stage_cpu[kStageEncode] = std::max<SimDuration>(encode, 0);
  ev.stage_cpu[kStageWireCpu] = std::max<SimDuration>(wire_cpu, 0);
  // Sim time does not advance during synchronous dispatch; the modeled CPU the input
  // charged is when the server is "done" with it.
  ev.dispatch_done =
      now + ev.stage_cpu[kStageRender] + ev.stage_cpu[kStageEncode] + ev.stage_cpu[kStageWireCpu];
  MaybeFinalize(input_id, ev);
}

void LatencyAudit::NoteEnqueued(int64_t input_id) {
  const auto it = open_.find(input_id);
  if (it == open_.end()) {
    return;
  }
  // Counted at enqueue, not departure: a send deferred behind the busy transmit pipeline
  // fires *after* EndInput, and without this the entry would fold before its tail.
  ++it->second.outstanding;
}

void LatencyAudit::NoteDeparture(int64_t input_id, NodeId console, uint64_t seq,
                                 SimTime departed, SimDuration pace_delay) {
  const auto it = open_.find(input_id);
  if (it == open_.end()) {
    return;
  }
  OpenEvent& ev = it->second;
  if (departed >= ev.last_departure) {
    // The critical-path (latest-departing) command's pacing stall is the one the stage
    // decomposition attributes; earlier siblings' stalls overlap it.
    ev.last_departure = departed;
    ev.pace_stall = std::max<SimDuration>(pace_delay, 0);
  }
  in_flight_[{console, seq}] = {input_id, 0};
}

void LatencyAudit::NotePurged(int64_t input_id) {
  const auto it = open_.find(input_id);
  if (it == open_.end()) {
    return;
  }
  OpenEvent& ev = it->second;
  if (ev.outstanding > 0) {
    --ev.outstanding;
  }
  MaybeFinalize(input_id, ev);
}

void LatencyAudit::NoteReplayResolved(NodeId self, uint64_t seq, SimTime since, SimTime now,
                                      const char* reason) {
  const auto flight = in_flight_.find({self, seq});
  if (flight == in_flight_.end()) {
    return;  // not one of ours (input-event traffic, repaints, other peers)
  }
  const int64_t input_id = flight->second.first;
  const auto it = open_.find(input_id);
  if (std::strncmp(reason, "gave_up", 7) != 0) {
    // Replayed: the stall is part of this event's network time; the command itself is
    // still inbound and will present normally.
    if (it != open_.end()) {
      it->second.replay_stall += std::max<SimDuration>(now - since, 0);
    }
    return;
  }
  // The transport abandoned this seq: the pixels will never arrive (until some later
  // repaint). That is the worst interactive outcome there is — breach immediately and
  // attribute it to the replay stage.
  in_flight_.erase(flight);
  if (it == open_.end()) {
    return;
  }
  OpenEvent& ev = it->second;
  ev.replay_stall += std::max<SimDuration>(now - since, 0);
  ev.gave_up = true;
  ev.last_completion = std::max(ev.last_completion, now);
  ++gave_up_;
  if (ev.outstanding > 0) {
    --ev.outstanding;
  }
  Finalize(input_id, ev, /*complete=*/true);
  open_.erase(it);
}

void LatencyAudit::NoteDecodeStart(NodeId self, uint64_t seq, SimTime arrival) {
  const auto flight = in_flight_.find({self, seq});
  if (flight != in_flight_.end()) {
    flight->second.second = arrival;
  }
}

void LatencyAudit::NotePresent(NodeId self, uint64_t seq, SimTime completion) {
  const auto flight = in_flight_.find({self, seq});
  if (flight == in_flight_.end()) {
    return;
  }
  const int64_t input_id = flight->second.first;
  const SimTime arrival = flight->second.second;
  in_flight_.erase(flight);
  const auto it = open_.find(input_id);
  if (it == open_.end()) {
    return;  // already folded (give-up on a sibling seq, ledger bound)
  }
  OpenEvent& ev = it->second;
  if (completion >= ev.last_completion) {
    ev.last_completion = completion;
    ev.final_arrival = arrival;
  }
  if (ev.outstanding > 0) {
    --ev.outstanding;
  }
  MaybeFinalize(input_id, ev);
}

void LatencyAudit::NoteConsoleDrop(NodeId self, uint64_t seq) {
  const auto flight = in_flight_.find({self, seq});
  if (flight == in_flight_.end()) {
    return;
  }
  const int64_t input_id = flight->second.first;
  in_flight_.erase(flight);
  const auto it = open_.find(input_id);
  if (it == open_.end()) {
    return;
  }
  OpenEvent& ev = it->second;
  if (ev.outstanding > 0) {
    --ev.outstanding;
  }
  MaybeFinalize(input_id, ev);
}

void LatencyAudit::NoteForcedDetach(uint32_t session_id, int reason, SimTime now) {
  if (Tracer* tracer = Tracer::Global()) {
    tracer->Instant(now, "audit.forced_detach", "audit", kTraceTidServer,
                    {{"session", JsonValue(int64_t{session_id})},
                     {"reason", JsonValue(int64_t{reason})}});
  }
  DumpFlight(/*input_id=*/-1, kStageCount, "forced_detach", now, 0);
}

void LatencyAudit::NoteMigrationBlackout(uint32_t session_id, SimDuration blackout,
                                         SimTime now) {
  ++migrations_observed_;
  if (migration_blackout_hist_ != nullptr) {
    migration_blackout_hist_->Record(blackout);
  }
  if (Tracer* tracer = Tracer::Global()) {
    tracer->Instant(now, "audit.migration_blackout", "audit", kTraceTidServer,
                    {{"session", JsonValue(int64_t{session_id})},
                     {"blackout_ns", JsonValue(int64_t{blackout})}});
  }
}

void LatencyAudit::MaybeFinalize(int64_t input_id, OpenEvent& ev) {
  if (!ev.dispatched || ev.outstanding > 0) {
    return;
  }
  Finalize(input_id, ev, /*complete=*/true);
  open_.erase(input_id);
}

void LatencyAudit::Finalize(int64_t input_id, OpenEvent& ev, bool complete) {
  if (!complete) {
    ++events_incomplete_;
    return;
  }
  // An input with no display output completes when its modeled CPU drains; one with
  // output completes when its last command presents.
  const SimTime end = std::max(ev.last_completion, ev.dispatch_done);
  const SimDuration e2e = std::max<SimDuration>(end - ev.t_dispatch, 0);

  SimDuration stages[kStageCount] = {};
  stages[kStageRender] = ev.stage_cpu[kStageRender];
  stages[kStageEncode] = ev.stage_cpu[kStageEncode];
  stages[kStageWireCpu] = ev.stage_cpu[kStageWireCpu];
  if (ev.last_departure > 0) {
    // The wait between dispatch-done and departure splits into the token-bucket stall
    // (pace) and whatever the shared CPU pipeline imposed on top (txq).
    stages[kStagePace] = ev.pace_stall;
    stages[kStageTxq] =
        std::max<SimDuration>(ev.last_departure - ev.dispatch_done - ev.pace_stall, 0);
  }
  stages[kStageReplay] = ev.replay_stall;
  if (ev.final_arrival > 0 && ev.last_departure > 0) {
    // Fabric flight time of the critical-path (latest-completing) command, minus the
    // explicitly accounted replay stalls.
    stages[kStageNetwork] =
        std::max<SimDuration>(ev.final_arrival - ev.last_departure - ev.replay_stall, 0);
    stages[kStageDecode] = std::max<SimDuration>(ev.last_completion - ev.final_arrival, 0);
  }

  ++events_completed_;
  if (e2e_hist_ != nullptr) {
    e2e_hist_->Record(e2e);
    for (int s = 0; s < kStageCount; ++s) {
      stage_hist_[s]->Record(stages[s]);
    }
  }
  if (ExpHistogram* hist = SessionHistogram(ev.session)) {
    hist->Record(e2e);
  }

  const bool breach = ev.gave_up || e2e > options_.slo;
  if (!breach) {
    return;
  }
  int dominant = kStageRender;
  for (int s = 1; s < kStageCount; ++s) {
    if (stages[s] > stages[dominant]) {
      dominant = s;
    }
  }
  if (ev.gave_up) {
    dominant = kStageReplay;  // the lost pixels are the breach, whatever else cost time
  }
  RecordBreach(input_id, ev, dominant, ev.gave_up ? "transport_gave_up" : "slo_breach");
  if (Tracer* tracer = Tracer::Global()) {
    tracer->Instant(end, "audit.breach", "audit", kTraceTidServer,
                    {{"input_id", JsonValue(input_id)},
                     {"session", JsonValue(int64_t{ev.session})},
                     {"e2e_ns", JsonValue(e2e)},
                     {"slo_ns", JsonValue(options_.slo)},
                     {"stage", JsonValue(LatencyStageName(dominant))},
                     {"reason",
                      JsonValue(ev.gave_up ? "transport_gave_up" : "slo_breach")}});
  }
  DumpFlight(input_id, dominant, ev.gave_up ? "transport_gave_up" : "slo_breach", end, e2e);
}

void LatencyAudit::RecordBreach(int64_t input_id, const OpenEvent& ev, int stage,
                                const char* reason) {
  (void)ev;
  (void)reason;
  ++breaches_;
  ++breach_by_stage_[stage];
  last_breach_input_ = input_id;
  last_breach_stage_ = stage;
}

void LatencyAudit::DumpFlight(int64_t input_id, int stage, const char* reason, SimTime now,
                              SimDuration e2e) {
  (void)now;
  (void)e2e;
  if (options_.flight_dir.empty() || flight_dumps_ >= options_.max_flight_dumps) {
    return;
  }
  Tracer* tracer = Tracer::Global();
  if (tracer == nullptr) {
    return;  // nothing recorded, nothing to dump
  }
  char name[128];
  std::snprintf(name, sizeof(name), "flight_%03d_%s_input%lld.json",
                static_cast<int>(flight_dumps_), reason,
                static_cast<long long>(input_id));
  const std::string path = options_.flight_dir + "/" + name;
  if (tracer->WriteFile(path)) {
    ++flight_dumps_;
    last_flight_path_ = path;
    std::fprintf(stderr, "[audit] %s (input %lld, stage %s): flight dump -> %s\n", reason,
                 static_cast<long long>(input_id), LatencyStageName(stage), path.c_str());
  }
}

void LatencyAudit::FinalizeAll() {
  for (auto& [id, ev] : open_) {
    // Events whose tail never happened (commands still in flight at shutdown) are counted
    // as incomplete; events that were fully dispatched with nothing outstanding would
    // already have folded.
    Finalize(id, ev, /*complete=*/ev.dispatched && ev.outstanding == 0);
  }
  open_.clear();
  in_flight_.clear();
  current_input_ = -1;
}

}  // namespace slim
