#include "src/obs/bench_report.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

namespace slim {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "[env] %s='%s' is not an integer; using default %d\n", name, value,
                 fallback);
    return fallback;
  }
  if (parsed <= 0 || parsed > INT32_MAX) {
    std::fprintf(stderr, "[env] %s=%ld is out of range (must be positive); using default %d\n",
                 name, parsed, fallback);
    return fallback;
  }
  return static_cast<int>(parsed);
}

namespace {

// Best-effort git description for run metadata: the SLIM_GIT_DESCRIBE override first (CI
// sets it when running outside the checkout), then `git describe` from the cwd.
std::string GitDescribe() {
  if (const char* env = std::getenv("SLIM_GIT_DESCRIBE"); env != nullptr && *env != '\0') {
    return env;
  }
  std::string out;
  if (std::FILE* pipe = popen("git describe --always --dirty 2>/dev/null", "r")) {
    char buf[128];
    while (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
      out += buf;
    }
    pclose(pipe);
  }
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out.empty() ? "unknown" : out;
}

JsonValue RunMetadata() {
  JsonObject run;
  run.emplace_back("git", JsonValue(GitDescribe()));
  run.emplace_back("unix_time", JsonValue(static_cast<int64_t>(std::time(nullptr))));
  char host[256] = "unknown";
  gethostname(host, sizeof(host) - 1);
  run.emplace_back("host", JsonValue(std::string(host)));
  return JsonValue(std::move(run));
}

}  // namespace

BenchReporter::BenchReporter(std::string name, std::string title)
    : name_(std::move(name)), title_(std::move(title)) {
  scale_.emplace_back("SLIM_USERS", JsonValue(int64_t{EnvInt("SLIM_USERS", 12)}));
  scale_.emplace_back("SLIM_MINUTES", JsonValue(int64_t{EnvInt("SLIM_MINUTES", 5)}));
  scale_.emplace_back("SLIM_SECONDS", JsonValue(int64_t{EnvInt("SLIM_SECONDS", 60)}));
  const char* dir = std::getenv("SLIM_BENCH_DIR");
  path_ = (dir != nullptr && *dir != '\0') ? std::string(dir) + "/" : std::string();
  path_ += "BENCH_" + name_ + ".json";
}

BenchReporter::~BenchReporter() {
  if (!written_ && !metrics_.empty()) {
    Write();
  }
}

void BenchReporter::Metric(std::string metric, double value, std::string unit) {
  JsonObject row;
  row.emplace_back("name", JsonValue(std::move(metric)));
  row.emplace_back("value", JsonValue(value));
  row.emplace_back("unit", JsonValue(std::move(unit)));
  metrics_.push_back(JsonValue(std::move(row)));
}

void BenchReporter::Metric(std::string metric, int64_t value, std::string unit) {
  JsonObject row;
  row.emplace_back("name", JsonValue(std::move(metric)));
  row.emplace_back("value", JsonValue(value));
  row.emplace_back("unit", JsonValue(std::move(unit)));
  metrics_.push_back(JsonValue(std::move(row)));
}

void BenchReporter::Knob(std::string knob, int64_t value) {
  for (auto& [k, v] : scale_) {
    if (k == knob) {
      v = JsonValue(value);
      return;
    }
  }
  scale_.emplace_back(std::move(knob), JsonValue(value));
}

void BenchReporter::AttachSnapshot(const MetricRegistry& registry) {
  snapshot_ = registry.Snapshot();
}

JsonValue BenchReporter::Document() const {
  JsonObject doc;
  doc.emplace_back("schema_version", JsonValue(kSchemaVersion));
  doc.emplace_back("bench", JsonValue(name_));
  doc.emplace_back("title", JsonValue(title_));
  doc.emplace_back("run", RunMetadata());
  doc.emplace_back("scale", JsonValue(scale_));
  doc.emplace_back("metrics", JsonValue(metrics_));
  if (snapshot_.has_value()) {
    doc.emplace_back("metrics_registry", *snapshot_);
  }
  return JsonValue(std::move(doc));
}

bool BenchReporter::Write() {
  written_ = true;
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot open %s: %s\n", path_.c_str(), std::strerror(errno));
    return false;
  }
  const std::string json = Document().Dump(2) + "\n";
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (ok) {
    std::fprintf(stderr, "[bench] wrote %zu metrics to %s\n", metrics_.size(), path_.c_str());
  }
  return ok;
}

std::optional<std::string> ValidateBenchReport(const JsonValue& doc) {
  if (!doc.is_object()) {
    return "document is not a JSON object";
  }
  const JsonValue* version = doc.Find("schema_version");
  if (version == nullptr || !version->is_number()) {
    return "missing numeric 'schema_version'";
  }
  if (version->as_int() != BenchReporter::kSchemaVersion) {
    return "schema_version " + std::to_string(version->as_int()) + " != expected " +
           std::to_string(BenchReporter::kSchemaVersion);
  }
  for (const char* key : {"bench", "title"}) {
    const JsonValue* v = doc.Find(key);
    if (v == nullptr || !v->is_string() || v->as_string().empty()) {
      return std::string("missing or empty string '") + key + "'";
    }
  }
  const JsonValue* run = doc.Find("run");
  if (run == nullptr || !run->is_object()) {
    return "missing object 'run'";
  }
  if (const JsonValue* git = run->Find("git"); git == nullptr || !git->is_string()) {
    return "run.git missing or not a string";
  }
  if (const JsonValue* t = run->Find("unix_time"); t == nullptr || !t->is_number()) {
    return "run.unix_time missing or not a number";
  }
  const JsonValue* scale = doc.Find("scale");
  if (scale == nullptr || !scale->is_object()) {
    return "missing object 'scale'";
  }
  for (const auto& [knob, value] : scale->as_object()) {
    if (!value.is_number()) {
      return "scale." + knob + " is not a number";
    }
  }
  const JsonValue* metrics = doc.Find("metrics");
  if (metrics == nullptr || !metrics->is_array()) {
    return "missing array 'metrics'";
  }
  if (metrics->as_array().empty()) {
    return "'metrics' is empty: the harness emitted no machine-readable results";
  }
  for (size_t i = 0; i < metrics->as_array().size(); ++i) {
    const JsonValue& row = metrics->as_array()[i];
    const std::string at = "metrics[" + std::to_string(i) + "]";
    if (!row.is_object()) {
      return at + " is not an object";
    }
    const JsonValue* name = row.Find("name");
    if (name == nullptr || !name->is_string() || name->as_string().empty()) {
      return at + ".name missing or empty";
    }
    const JsonValue* value = row.Find("value");
    if (value == nullptr || !value->is_number()) {
      return at + ".value missing or not a number (" + name->as_string() + ")";
    }
    const JsonValue* unit = row.Find("unit");
    if (unit == nullptr || !unit->is_string()) {
      return at + ".unit missing or not a string (" + name->as_string() + ")";
    }
  }
  // The registry snapshot is optional, but when present it must have the full shape —
  // including the histogram percentile summaries (p50/p90/p99/p999) the latency audit
  // reports through; a snapshot writer that drops them breaks the trajectory consumers.
  if (const JsonValue* reg = doc.Find("metrics_registry"); reg != nullptr) {
    if (!reg->is_object()) {
      return "'metrics_registry' is not an object";
    }
    for (const char* section : {"counters", "gauges", "histograms"}) {
      const JsonValue* v = reg->Find(section);
      if (v == nullptr || !v->is_object()) {
        return std::string("metrics_registry.") + section + " missing or not an object";
      }
    }
    for (const auto& [name, summary] : reg->Find("histograms")->as_object()) {
      const std::string at = "metrics_registry.histograms." + name;
      if (!summary.is_object()) {
        return at + " is not an object";
      }
      for (const char* key :
           {"count", "sum", "min", "max", "mean", "p50", "p90", "p99", "p999"}) {
        const JsonValue* v = summary.Find(key);
        if (v == nullptr || !v->is_number()) {
          return at + "." + key + " missing or not a number";
        }
      }
      const JsonValue* buckets = summary.Find("buckets");
      if (buckets == nullptr || !buckets->is_array()) {
        return at + ".buckets missing or not an array";
      }
    }
  }
  return std::nullopt;
}

}  // namespace slim
