#include "src/obs/flight_recorder.h"

#include <algorithm>
#include <map>
#include <vector>

#include "src/obs/bench_report.h"

namespace slim {

FlightRecorder::FlightRecorder(size_t capacity) : capacity_(capacity > 0 ? capacity : 1) {
  events_.reserve(capacity_);
}

void FlightRecorder::Push(Event event) {
  Stamp(&event);
  ++total_recorded_;
  if (events_.size() < capacity_) {
    events_.push_back(std::move(event));
    return;
  }
  events_[write_] = std::move(event);
  write_ = (write_ + 1) % capacity_;
}

std::string FlightRecorder::Json() const {
  std::vector<const Event*> ordered;
  ordered.reserve(events_.size());
  for (const Event& e : events_) {
    ordered.push_back(&e);
  }
  std::stable_sort(ordered.begin(), ordered.end(), [](const Event* a, const Event* b) {
    if (a->ts != b->ts) {
      return a->ts < b->ts;
    }
    return a->seq < b->seq;
  });

  // Balance filter: walk each tid's events in order, matching E's against a stack of open
  // B's. An E with an empty stack lost its B to the ring; a B left on a stack at the end
  // lost its E (overwritten, or simply not yet recorded at dump time). Both are dropped.
  std::vector<char> keep(ordered.size(), 1);
  std::map<int, std::vector<size_t>> open;  // per-tid indices into `ordered` of open B's
  for (size_t i = 0; i < ordered.size(); ++i) {
    const Event* e = ordered[i];
    if (e->ph == 'B') {
      open[e->tid].push_back(i);
    } else if (e->ph == 'E') {
      auto& stack = open[e->tid];
      if (stack.empty()) {
        keep[i] = 0;  // orphaned end
      } else {
        stack.pop_back();
      }
    }
  }
  for (const auto& [tid, stack] : open) {
    for (const size_t i : stack) {
      keep[i] = 0;  // unclosed begin
    }
  }
  std::vector<const Event*> balanced;
  balanced.reserve(ordered.size());
  for (size_t i = 0; i < ordered.size(); ++i) {
    if (keep[i]) {
      balanced.push_back(ordered[i]);
    }
  }
  return EmitJson(balanced);
}

ScopedFlightRecorder::ScopedFlightRecorder() {
  if (Tracer::Global() != nullptr) {
    return;  // a full capture is already recording strictly more
  }
  recorder_ = std::make_unique<FlightRecorder>(
      static_cast<size_t>(EnvInt("SLIM_FLIGHT_EVENTS",
                                 static_cast<int>(FlightRecorder::kDefaultCapacity))));
  recorder_->SetThreadName(kTraceTidInput, "input");
  recorder_->SetThreadName(kTraceTidServer, "server pipeline");
  recorder_->SetThreadName(kTraceTidConsole, "console decode");
  Tracer::SetGlobal(recorder_.get());
}

ScopedFlightRecorder::~ScopedFlightRecorder() {
  if (recorder_ != nullptr && Tracer::Global() == recorder_.get()) {
    Tracer::SetGlobal(nullptr);
  }
}

}  // namespace slim
