// Software framebuffer.
//
// Pixels are stored as 32-bit 0x00RRGGBB words ("RGBX"), matching the Sun Ray 1's expansion
// of packed 24-bit protocol pixels into 4-byte frame buffer quantities. Both the server
// (persistent true state) and each console (soft state) own one Framebuffer, and equality of
// the two after a protocol exchange is the core correctness property of the whole system.

#ifndef SRC_FB_FRAMEBUFFER_H_
#define SRC_FB_FRAMEBUFFER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/fb/geometry.h"
#include "src/util/check.h"

namespace slim {

using Pixel = uint32_t;  // 0x00RRGGBB

constexpr Pixel MakePixel(uint8_t r, uint8_t g, uint8_t b) {
  return (static_cast<Pixel>(r) << 16) | (static_cast<Pixel>(g) << 8) | b;
}
constexpr uint8_t PixelR(Pixel p) { return static_cast<uint8_t>(p >> 16); }
constexpr uint8_t PixelG(Pixel p) { return static_cast<uint8_t>(p >> 8); }
constexpr uint8_t PixelB(Pixel p) { return static_cast<uint8_t>(p); }

constexpr Pixel kBlack = MakePixel(0, 0, 0);
constexpr Pixel kWhite = MakePixel(255, 255, 255);

class Framebuffer {
 public:
  Framebuffer(int32_t width, int32_t height, Pixel fill = kBlack);

  int32_t width() const { return width_; }
  int32_t height() const { return height_; }
  Rect bounds() const { return Rect{0, 0, width_, height_}; }

  Pixel GetPixel(int32_t x, int32_t y) const;
  void PutPixel(int32_t x, int32_t y, Pixel p);

  // Fills the intersection of r with the framebuffer.
  void Fill(const Rect& r, Pixel color);

  // Writes a w*h block of pixels (row-major, stride w) at r; clipped to bounds.
  void SetPixels(const Rect& r, std::span<const Pixel> pixels);

  // Expands a row-padded 1-bit bitmap: set bits become fg, clear bits bg. Bit rows are padded
  // to whole bytes (stride = (w+7)/8), bit 7 of each byte is the leftmost pixel.
  void ExpandBitmap(const Rect& r, std::span<const uint8_t> bits, Pixel fg, Pixel bg);

  // Copies the w*h block at (src_x, src_y) to dst (overlap-safe). Source pixels outside the
  // framebuffer are treated as black.
  void CopyRect(int32_t src_x, int32_t src_y, const Rect& dst);

  // Reads back a rectangle (clipped); out is resized to r.w * r.h with black outside bounds.
  void ReadPixels(const Rect& r, std::vector<Pixel>* out) const;

  std::span<const Pixel> data() const { return data_; }

  // Contiguous span of row y, optionally restricted to columns [x0, x0+w). Unlike
  // GetPixel, these do not clip: the requested span must lie inside the framebuffer.
  // They exist for the hot analysis loops (encoder scans, damage refinement, scroll
  // detection), which pay one bounds check per row instead of one per pixel and can
  // memcmp/auto-vectorize over the returned memory.
  std::span<const Pixel> Row(int32_t y) const {
    SLIM_DCHECK(y >= 0 && y < height_);
    return {data_.data() + static_cast<size_t>(y) * width_, static_cast<size_t>(width_)};
  }
  std::span<const Pixel> Row(int32_t y, int32_t x0, int32_t w) const {
    SLIM_DCHECK(y >= 0 && y < height_ && x0 >= 0 && w >= 0 && x0 + w <= width_);
    return {data_.data() + static_cast<size_t>(y) * width_ + x0, static_cast<size_t>(w)};
  }

  // Writable row span with the same no-clipping contract as Row(). For bulk row writers
  // that already hold a validated extent (the damage tracker's shadow sync memcpys fb
  // rows straight in); everything else should go through SetPixels/Fill, which clip.
  std::span<Pixel> MutableRow(int32_t y, int32_t x0, int32_t w) {
    SLIM_DCHECK(y >= 0 && y < height_ && x0 >= 0 && w >= 0 && x0 + w <= width_);
    return {data_.data() + static_cast<size_t>(y) * width_ + x0, static_cast<size_t>(w)};
  }

  // FNV-1a hash of the full contents; used by tests to compare server/console state.
  uint64_t ContentHash() const;

  // Exact per-pixel difference between two same-sized framebuffers, reported as a region of
  // 16x16-aligned tiles covering all differing pixels plus the exact differing pixel count.
  struct Diff {
    Region damage;
    int64_t differing_pixels = 0;
  };
  Diff DiffWith(const Framebuffer& other) const;

 private:
  int32_t width_;
  int32_t height_;
  std::vector<Pixel> data_;
};

}  // namespace slim

#endif  // SRC_FB_FRAMEBUFFER_H_
