#include "src/fb/framebuffer.h"

#include <algorithm>
#include <cstring>

#include "src/util/check.h"

namespace slim {

Framebuffer::Framebuffer(int32_t width, int32_t height, Pixel fill)
    : width_(width), height_(height) {
  SLIM_CHECK(width > 0 && height > 0);
  data_.assign(static_cast<size_t>(width) * height, fill);
}

Pixel Framebuffer::GetPixel(int32_t x, int32_t y) const {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) {
    return kBlack;
  }
  return data_[static_cast<size_t>(y) * width_ + x];
}

void Framebuffer::PutPixel(int32_t x, int32_t y, Pixel p) {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) {
    return;
  }
  data_[static_cast<size_t>(y) * width_ + x] = p;
}

void Framebuffer::Fill(const Rect& r, Pixel color) {
  const Rect clipped = Intersect(r, bounds());
  for (int32_t y = clipped.y; y < clipped.bottom(); ++y) {
    Pixel* row = &data_[static_cast<size_t>(y) * width_];
    std::fill(row + clipped.x, row + clipped.right(), color);
  }
}

void Framebuffer::SetPixels(const Rect& r, std::span<const Pixel> pixels) {
  if (r.empty()) {
    return;
  }
  SLIM_CHECK(pixels.size() >= static_cast<size_t>(r.area()));
  const Rect clipped = Intersect(r, bounds());
  for (int32_t y = clipped.y; y < clipped.bottom(); ++y) {
    const size_t src_row = static_cast<size_t>(y - r.y) * r.w + (clipped.x - r.x);
    Pixel* dst = &data_[static_cast<size_t>(y) * width_ + clipped.x];
    std::memcpy(dst, &pixels[src_row], static_cast<size_t>(clipped.w) * sizeof(Pixel));
  }
}

void Framebuffer::ExpandBitmap(const Rect& r, std::span<const uint8_t> bits, Pixel fg,
                               Pixel bg) {
  if (r.empty()) {
    return;
  }
  const size_t stride = (static_cast<size_t>(r.w) + 7) / 8;
  SLIM_CHECK(bits.size() >= stride * static_cast<size_t>(r.h));
  const Rect clipped = Intersect(r, bounds());
  for (int32_t y = clipped.y; y < clipped.bottom(); ++y) {
    const uint8_t* row_bits = &bits[static_cast<size_t>(y - r.y) * stride];
    Pixel* dst_row = &data_[static_cast<size_t>(y) * width_];
    for (int32_t x = clipped.x; x < clipped.right(); ++x) {
      const int32_t bit_index = x - r.x;
      const uint8_t byte = row_bits[bit_index >> 3];
      const bool set = (byte >> (7 - (bit_index & 7))) & 1;
      dst_row[x] = set ? fg : bg;
    }
  }
}

void Framebuffer::CopyRect(int32_t src_x, int32_t src_y, const Rect& dst) {
  if (dst.empty()) {
    return;
  }
  // Stage through a temporary so overlapping copies behave like a simultaneous move; this
  // matches hardware blitters that pick a copy direction, and is trivially overlap-safe.
  std::vector<Pixel> staged;
  ReadPixels(Rect{src_x, src_y, dst.w, dst.h}, &staged);
  SetPixels(dst, staged);
}

void Framebuffer::ReadPixels(const Rect& r, std::vector<Pixel>* out) const {
  SLIM_DCHECK(out != nullptr);
  out->assign(static_cast<size_t>(std::max<int64_t>(r.area(), 0)), kBlack);
  if (r.empty()) {
    return;
  }
  const Rect clipped = Intersect(r, bounds());
  for (int32_t y = clipped.y; y < clipped.bottom(); ++y) {
    const Pixel* src = &data_[static_cast<size_t>(y) * width_ + clipped.x];
    Pixel* dst = &(*out)[static_cast<size_t>(y - r.y) * r.w + (clipped.x - r.x)];
    std::memcpy(dst, src, static_cast<size_t>(clipped.w) * sizeof(Pixel));
  }
}

uint64_t Framebuffer::ContentHash() const {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (const Pixel p : data_) {
    hash ^= p;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

Framebuffer::Diff Framebuffer::DiffWith(const Framebuffer& other) const {
  SLIM_CHECK(width_ == other.width_ && height_ == other.height_);
  Diff diff;
  constexpr int32_t kTile = 16;
  for (int32_t ty = 0; ty < height_; ty += kTile) {
    const int32_t th = std::min(kTile, height_ - ty);
    int32_t run_start = -1;
    for (int32_t tx = 0; tx < width_ + kTile; tx += kTile) {
      bool tile_dirty = false;
      if (tx < width_) {
        const int32_t tw = std::min(kTile, width_ - tx);
        for (int32_t y = ty; y < ty + th && !tile_dirty; ++y) {
          const Pixel* a = &data_[static_cast<size_t>(y) * width_ + tx];
          const Pixel* b = &other.data_[static_cast<size_t>(y) * width_ + tx];
          tile_dirty = std::memcmp(a, b, static_cast<size_t>(tw) * sizeof(Pixel)) != 0;
        }
      }
      if (tile_dirty && run_start < 0) {
        run_start = tx;
      } else if (!tile_dirty && run_start >= 0) {
        diff.damage.Add(Rect{run_start, ty, std::min(tx, width_) - run_start, th});
        run_start = -1;
      }
    }
  }
  for (size_t i = 0; i < data_.size(); ++i) {
    if (data_[i] != other.data_[i]) {
      ++diff.differing_pixels;
    }
  }
  return diff;
}

}  // namespace slim
