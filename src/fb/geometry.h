// Integer rectangle and region algebra for framebuffer damage tracking.

#ifndef SRC_FB_GEOMETRY_H_
#define SRC_FB_GEOMETRY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace slim {

struct Point {
  int32_t x = 0;
  int32_t y = 0;
  bool operator==(const Point&) const = default;
};

// Half-open rectangle: covers columns [x, x+w) and rows [y, y+h).
struct Rect {
  int32_t x = 0;
  int32_t y = 0;
  int32_t w = 0;
  int32_t h = 0;

  bool operator==(const Rect&) const = default;

  bool empty() const { return w <= 0 || h <= 0; }
  int64_t area() const { return empty() ? 0 : static_cast<int64_t>(w) * h; }
  int32_t right() const { return x + w; }
  int32_t bottom() const { return y + h; }

  bool Contains(Point p) const {
    return !empty() && p.x >= x && p.x < right() && p.y >= y && p.y < bottom();
  }
  bool ContainsRect(const Rect& r) const;
  bool Intersects(const Rect& r) const;

  std::string ToString() const;
};

// Intersection; returns an empty rect when disjoint.
Rect Intersect(const Rect& a, const Rect& b);

// Smallest rectangle covering both (empty inputs are ignored).
Rect BoundingUnion(const Rect& a, const Rect& b);

// Subtracts b from a, appending up to four disjoint fragments to out.
void SubtractRect(const Rect& a, const Rect& b, std::vector<Rect>* out);

// A set of pixels maintained as disjoint rectangles. Exact (not a bounding approximation):
// area() is the true number of covered pixels, which the Figure 3 harness relies on.
class Region {
 public:
  Region() = default;
  explicit Region(const Rect& r) { Add(r); }

  void Add(const Rect& r);
  // Appends r without the de-overlap pass. The caller guarantees r is disjoint from every
  // rect already in the region (checked in debug builds); the damage tracker uses this for
  // its refined rects, which are disjoint by construction, so building a region of n rects
  // stays O(n) instead of O(n^2).
  void AddDisjoint(const Rect& r);
  void AddRegion(const Region& other);
  void Subtract(const Rect& r);
  void Clear() { rects_.clear(); }

  bool empty() const { return rects_.empty(); }
  int64_t area() const;
  Rect bounds() const;
  bool Contains(Point p) const;
  bool Intersects(const Rect& r) const;

  const std::vector<Rect>& rects() const { return rects_; }

  // Rewrites the region as at most max_rects rectangles by merging into the bounding box
  // when fragmentation exceeds the limit. Damage tracking uses this to bound encoder work.
  void Coalesce(size_t max_rects);

 private:
  std::vector<Rect> rects_;  // Invariant: pairwise disjoint, none empty.
};

}  // namespace slim

#endif  // SRC_FB_GEOMETRY_H_
