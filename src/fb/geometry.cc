#include "src/fb/geometry.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/table.h"

namespace slim {

bool Rect::ContainsRect(const Rect& r) const {
  if (r.empty()) {
    return true;
  }
  return !empty() && r.x >= x && r.y >= y && r.right() <= right() && r.bottom() <= bottom();
}

bool Rect::Intersects(const Rect& r) const { return !Intersect(*this, r).empty(); }

std::string Rect::ToString() const { return Format("[%d,%d %dx%d]", x, y, w, h); }

Rect Intersect(const Rect& a, const Rect& b) {
  const int32_t x0 = std::max(a.x, b.x);
  const int32_t y0 = std::max(a.y, b.y);
  const int32_t x1 = std::min(a.right(), b.right());
  const int32_t y1 = std::min(a.bottom(), b.bottom());
  if (x1 <= x0 || y1 <= y0) {
    return Rect{};
  }
  return Rect{x0, y0, x1 - x0, y1 - y0};
}

Rect BoundingUnion(const Rect& a, const Rect& b) {
  if (a.empty()) {
    return b.empty() ? Rect{} : b;
  }
  if (b.empty()) {
    return a;
  }
  const int32_t x0 = std::min(a.x, b.x);
  const int32_t y0 = std::min(a.y, b.y);
  const int32_t x1 = std::max(a.right(), b.right());
  const int32_t y1 = std::max(a.bottom(), b.bottom());
  return Rect{x0, y0, x1 - x0, y1 - y0};
}

void SubtractRect(const Rect& a, const Rect& b, std::vector<Rect>* out) {
  SLIM_DCHECK(out != nullptr);
  if (a.empty()) {
    return;
  }
  const Rect overlap = Intersect(a, b);
  if (overlap.empty()) {
    out->push_back(a);
    return;
  }
  // Top band.
  if (overlap.y > a.y) {
    out->push_back(Rect{a.x, a.y, a.w, overlap.y - a.y});
  }
  // Bottom band.
  if (overlap.bottom() < a.bottom()) {
    out->push_back(Rect{a.x, overlap.bottom(), a.w, a.bottom() - overlap.bottom()});
  }
  // Left sliver within the overlap's rows.
  if (overlap.x > a.x) {
    out->push_back(Rect{a.x, overlap.y, overlap.x - a.x, overlap.h});
  }
  // Right sliver within the overlap's rows.
  if (overlap.right() < a.right()) {
    out->push_back(Rect{overlap.right(), overlap.y, a.right() - overlap.right(), overlap.h});
  }
}

void Region::Add(const Rect& r) {
  if (r.empty()) {
    return;
  }
  // Reduce the new rect to the parts not already covered, then append them. This is what
  // maintains the pairwise-disjoint invariant: overlapping damage reaches the encoder as
  // disjoint rects, so no pixel is encoded (or counted in wire_bytes/pixels stats) twice.
  // The fragments of r are disjoint from every existing rect by construction, and disjoint
  // from each other because SubtractRect emits disjoint pieces of disjoint inputs.
  // Property-tested in tests/property_test.cc (RegionProperty / EncoderProperty).
  std::vector<Rect> pending{r};
  for (const Rect& existing : rects_) {
    std::vector<Rect> next;
    for (const Rect& p : pending) {
      SubtractRect(p, existing, &next);
    }
    pending = std::move(next);
    if (pending.empty()) {
      return;
    }
  }
  rects_.insert(rects_.end(), pending.begin(), pending.end());
}

void Region::AddDisjoint(const Rect& r) {
  if (r.empty()) {
    return;
  }
#ifndef NDEBUG
  for (const Rect& existing : rects_) {
    SLIM_DCHECK(!existing.Intersects(r));
  }
#endif
  rects_.push_back(r);
}

void Region::AddRegion(const Region& other) {
  for (const Rect& r : other.rects_) {
    Add(r);
  }
}

void Region::Subtract(const Rect& r) {
  if (r.empty() || rects_.empty()) {
    return;
  }
  std::vector<Rect> next;
  next.reserve(rects_.size());
  for (const Rect& existing : rects_) {
    SubtractRect(existing, r, &next);
  }
  rects_ = std::move(next);
}

int64_t Region::area() const {
  int64_t total = 0;
  for (const Rect& r : rects_) {
    total += r.area();
  }
  return total;
}

Rect Region::bounds() const {
  Rect b{};
  for (const Rect& r : rects_) {
    b = BoundingUnion(b, r);
  }
  return b;
}

bool Region::Contains(Point p) const {
  return std::any_of(rects_.begin(), rects_.end(),
                     [&](const Rect& r) { return r.Contains(p); });
}

bool Region::Intersects(const Rect& r) const {
  return std::any_of(rects_.begin(), rects_.end(),
                     [&](const Rect& other) { return other.Intersects(r); });
}

void Region::Coalesce(size_t max_rects) {
  if (rects_.size() <= max_rects) {
    return;
  }
  const Rect b = bounds();
  rects_.clear();
  rects_.push_back(b);
}

}  // namespace slim
