// Session-lifecycle policy for the SLIM server's session manager.
//
// The paper's signature property (Section 5.4, hotdesking) is that a session is pure
// server state: the card can appear at any console and the session follows it. That is
// only true if the lifecycle layer is robust on a lossy fabric with consoles that die
// silently, which is what these knobs govern:
//
//   detached ──attach──────────────▶ attached
//   attached ──attach@other─────────▶ attached   (hotdesk handoff: old console released)
//   attached ──detach/card pulled──▶ detached    (release sent to the console)
//   attached ──keepalive timeout───▶ detached    (console presumed dead)
//   detached ──evict_after idle────▶ (evicted)   (session + card mapping reclaimed)
//
// Liveness: while a session is attached the server pings its console every
// keepalive_interval; any message from that console (pong, input, status) counts as life.
// When the console has been silent for longer than keepalive_timeout, the probe counts as
// missed and the re-probe gap backs off exponentially (bounded by probe_backoff_max) so a
// dead console is not ping-hammered; after max_missed_probes consecutive misses the
// session is detached.
//
// Both periodic mechanisms default OFF (0) because an armed keepalive timer keeps the
// discrete-event queue non-empty forever: harnesses that enable them must pace the
// simulator with RunFor/RunUntil instead of Run().

#ifndef SRC_SERVER_LIFECYCLE_H_
#define SRC_SERVER_LIFECYCLE_H_

#include "src/util/time.h"

namespace slim {

// Where a session is in the attach/detach state machine. There is no distinct "handoff"
// state: a hotdesk pull releases the old console and attaches the new one in one step, so
// the session is never observable half-attached.
enum class SessionState { kDetached, kAttached };

inline const char* SessionStateName(SessionState s) {
  return s == SessionState::kAttached ? "attached" : "detached";
}

struct SessionLifecycleOptions {
  // Liveness probing period for attached sessions; 0 disables probing entirely.
  SimDuration keepalive_interval = 0;
  // Console silence beyond this makes a probe count as missed.
  SimDuration keepalive_timeout = Milliseconds(250);
  // Consecutive missed probes before the console is presumed dead and the session
  // detaches.
  int max_missed_probes = 3;
  // After a missed probe the re-probe gap doubles, bounded by this cap.
  SimDuration probe_backoff_max = Seconds(2);
  // A session detached for this long is evicted (destroyed, card mapping reclaimed);
  // 0 keeps detached sessions forever (the seed behaviour).
  SimDuration evict_after = 0;
  // SessionReleaseMsg is fire-and-forget, so the server sends this many extra copies
  // (spaced release_resend_gap apart) — blanking is idempotent, and the extra copies give
  // the transport's gap-detection fresh traffic to NACK a lost one against.
  int release_resends = 2;
  SimDuration release_resend_gap = Milliseconds(25);
};

}  // namespace slim

#endif  // SRC_SERVER_LIFECYCLE_H_
