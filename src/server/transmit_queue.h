// The server's single ordering point for everything it sends to consoles.
//
// The response-time experiments model the server's render/encode/wire CPU as one busy
// pipeline: a display command costed at `cpu_cost` leaves the machine only when the
// pipeline has drained down to it. Before this queue existed, zero-cost traffic (audio,
// pongs, session control) bypassed the pipeline and could overtake display commands that
// were still "being processed" — the console would hear an audio sample for a frame it had
// not been sent yet. TransmitQueue routes every server->console send through the same
// FIFO: zero-cost messages add no busy time but still queue behind whatever the modeled
// CPU has already committed to, so no send can overtake an earlier one to any console.
//
// Per-session depth is tracked so the telemetry registry can expose how much of the
// pipeline each session currently occupies (`server.txq.depth`, per-session
// `<session>.txq_depth`).

#ifndef SRC_SERVER_TRANSMIT_QUEUE_H_
#define SRC_SERVER_TRANSMIT_QUEUE_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/net/transport.h"
#include "src/sim/simulator.h"

namespace slim {

class MetricRegistry;

class TransmitQueue {
 public:
  // When `model_cpu_delay` is false every send is immediate (call order is wire order, so
  // there is nothing to reorder) and only the counters are maintained.
  TransmitQueue(Simulator* sim, SlimEndpoint* endpoint, bool model_cpu_delay);

  // Queues one message behind the modeled CPU pipeline and accounts `cpu_cost` of busy
  // time (clamped to >= 0). Returns the simulated time at which the message leaves.
  SimTime Send(NodeId console, uint32_t session_id, MessageBody body, SimDuration cpu_cost);

  // Messages accepted / messages that had to wait for the pipeline.
  int64_t sends() const { return sends_; }
  int64_t deferred() const { return deferred_; }

  // Messages currently queued behind the pipeline (total and for one session).
  int64_t total_depth() const { return total_depth_; }
  int64_t depth(uint32_t session_id) const;
  // High-water mark of total_depth over the queue's lifetime.
  int64_t max_depth() const { return max_depth_; }

  SimTime busy_until() const { return busy_until_; }

  // Registers `<prefix>.sends`, `<prefix>.deferred` counters and `<prefix>.depth`,
  // `<prefix>.max_depth` gauges.
  bool RegisterMetrics(MetricRegistry* registry, const std::string& prefix);

 private:
  Simulator* sim_;
  SlimEndpoint* endpoint_;
  bool model_cpu_delay_;

  SimTime busy_until_ = 0;
  int64_t sends_ = 0;
  int64_t deferred_ = 0;
  int64_t total_depth_ = 0;
  int64_t max_depth_ = 0;
  // Entries are erased when they drain to zero so evicted sessions leave nothing behind.
  std::map<uint32_t, int64_t> depth_;
};

}  // namespace slim

#endif  // SRC_SERVER_TRANSMIT_QUEUE_H_
