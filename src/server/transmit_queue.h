// The server's single ordering point for everything it sends to consoles.
//
// The response-time experiments model the server's render/encode/wire CPU as one busy
// pipeline: a display command costed at `cpu_cost` leaves the machine only when the
// pipeline has drained down to it. Before this queue existed, zero-cost traffic (audio,
// pongs, session control) bypassed the pipeline and could overtake display commands that
// were still "being processed" — the console would hear an audio sample for a frame it had
// not been sent yet. TransmitQueue routes every server->console send through the same
// FIFO: zero-cost messages add no busy time but still queue behind whatever the modeled
// CPU has already committed to, so no send can overtake an earlier one to any console.
//
// Wire pacing (paper Section 7): on top of the modeled CPU, each send may name a *flow*
// (an application-level traffic class: a session's interactive display server, its video
// library). A flow with a bandwidth grant owns a token bucket — GCRA-style: the bucket
// tracks the virtual time at which everything accepted so far would have finished at
// exactly the granted bits/s, and a send may not depart while that time runs more than
// `burst` ahead of the clock. Departures within one flow stay FIFO (a floor carries each
// flow's last release forward, even across grant changes); *across* flows of one session
// the FIFO is intentionally relaxed — a keystroke's glyphs must not wait behind a paced
// video backlog. That is the one deliberate departure from the PR 5 "no send overtakes an
// earlier one" invariant, and it is safe for the same reason the paper's allocator is:
// flows own disjoint screen real estate, and the console applies commands idempotently in
// arrival order. Flow 0 is never paced (control traffic).
//
// Per-session depth is tracked so the telemetry registry can expose how much of the
// pipeline each session currently occupies (`server.txq.depth`, per-session
// `<session>.txq_depth`). Entries erase when they drain; PurgeSession cancels a released
// session's still-queued sends outright so eviction leaves nothing behind.

#ifndef SRC_SERVER_TRANSMIT_QUEUE_H_
#define SRC_SERVER_TRANSMIT_QUEUE_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/net/transport.h"
#include "src/sim/simulator.h"

namespace slim {

class MetricRegistry;

class TransmitQueue {
 public:
  // When `model_cpu_delay` is false sends skip the CPU pipeline (call order is wire order
  // unless a flow's token bucket defers) and only the counters are maintained.
  TransmitQueue(Simulator* sim, SlimEndpoint* endpoint, bool model_cpu_delay);

  // Queues one message behind the modeled CPU pipeline, accounts `cpu_cost` of busy time
  // (clamped to >= 0), and — when `flow_id` names a flow with a positive rate — charges
  // the message's wire bytes to that flow's token bucket, deferring the departure until
  // the bucket admits it. Returns the simulated time at which the message leaves.
  SimTime Send(NodeId console, uint32_t session_id, MessageBody body, SimDuration cpu_cost,
               uint64_t flow_id = 0);

  // --- Flow pacing (driven by BandwidthGrantMsg) ---
  // Installs or updates a flow's granted rate. A non-positive rate stops pacing the flow
  // but keeps its FIFO floor so in-flight backlog cannot be overtaken.
  void SetFlowRate(uint64_t flow_id, int64_t bits_per_second, SimDuration burst);
  // Forgets the flow entirely (session gone).
  void ReleaseFlow(uint64_t flow_id);
  int64_t flow_rate(uint64_t flow_id) const;
  // How far the flow's accepted bytes run ahead of the clock (0 when idle/unpaced).
  SimDuration PaceBacklog(uint64_t flow_id) const;
  // Earliest time the flow's next byte could depart (now when the bucket has credit).
  SimTime FlowReadyAt(uint64_t flow_id) const;

  // Cancels every still-queued send of one session (released/evicted: the console will
  // blank, the bytes are worthless) and clears its depth. Returns how many were dropped.
  int64_t PurgeSession(uint32_t session_id);

  // Messages accepted / messages that had to wait for the pipeline.
  int64_t sends() const { return sends_; }
  int64_t deferred() const { return deferred_; }
  // Messages charged to a token bucket / of those, messages the bucket actually delayed /
  // messages cancelled by PurgeSession.
  int64_t paced() const { return paced_; }
  int64_t pace_delayed() const { return pace_delayed_; }
  int64_t purged() const { return purged_; }

  // Messages currently queued behind the pipeline (total and for one session).
  int64_t total_depth() const { return total_depth_; }
  int64_t depth(uint32_t session_id) const;
  // High-water mark of total_depth over the queue's lifetime.
  int64_t max_depth() const { return max_depth_; }
  // Sessions with a live depth entry (eviction hygiene: must drop to zero on drain/purge).
  size_t tracked_sessions() const { return depth_.size(); }

  SimTime busy_until() const { return busy_until_; }

  // Registers `<prefix>.sends`, `<prefix>.deferred`, `<prefix>.paced`,
  // `<prefix>.pace_delayed`, `<prefix>.purged` counters and `<prefix>.depth`,
  // `<prefix>.max_depth` gauges.
  bool RegisterMetrics(MetricRegistry* registry, const std::string& prefix);

 private:
  // GCRA state for one granted flow. `wire_until` is the virtual time at which every
  // byte accepted so far would have finished at exactly `rate_bps`; a send is admitted
  // once `wire_until` runs no more than `burst` ahead of its CPU-release time.
  struct FlowPacer {
    int64_t rate_bps = 0;
    SimDuration burst = 0;
    SimTime wire_until = 0;
    SimTime last_release = 0;  // per-flow FIFO floor, kept across grant changes
  };

  Simulator* sim_;
  SlimEndpoint* endpoint_;
  bool model_cpu_delay_;

  SimTime busy_until_ = 0;
  int64_t sends_ = 0;
  int64_t deferred_ = 0;
  int64_t paced_ = 0;
  int64_t pace_delayed_ = 0;
  int64_t purged_ = 0;
  int64_t total_depth_ = 0;
  int64_t max_depth_ = 0;
  // Entries are erased when they drain to zero so evicted sessions leave nothing behind.
  std::map<uint32_t, int64_t> depth_;
  std::map<uint64_t, FlowPacer> pacers_;
  // Still-scheduled sends per session: event id -> latency-audit input id (-1 when the
  // send is not audited). PurgeSession cancels these and tells the audit.
  std::map<uint32_t, std::map<EventId, int64_t>> pending_by_session_;
};

}  // namespace slim

#endif  // SRC_SERVER_TRANSMIT_QUEUE_H_
