// Cross-server session migration and crash failover (DESIGN.md §9).
//
// The paper's hotdesking story (Section 5.4) holds within one server because a session is
// pure server state. This layer makes it hold across a *pool* of servers: a ServerPool is
// the control-plane directory (who owns which card, who is alive), and each server's
// MigrationManager moves serialized session checkpoints (src/server/checkpoint.h) between
// servers over the ordinary SLIM transport.
//
// Handoff protocol (two-phase commit with pre-copy, all messages idempotent):
//
//   source                                destination
//     StartMigration: capture blob
//     MigrateBegin + CheckpointChunk* ──▶  reassemble, decode, stage session (unregistered)
//                                   ◀──  MigrateCommit(phase=1)   "restored, ready to own"
//     blob changed? another pre-copy round (source still serving); else FREEZE:
//     detach console (SessionRelease kMigrated), capture the final delta, send it,
//     wait for its phase-1, then COMMIT: transfer ownership in the pool, discard the
//     local session, tombstone the epoch
//     MigrateCommit(phase=2) ──────────▶  install staged session, attach the waiting
//                                         console (forced full repaint)
//
// Single-owner invariant: ownership changes hands exactly once, at the source's commit
// point — before it the source serves and the destination's copy is an unregistered
// staging object; after it the source has discarded its copy and only re-acks phase-2
// from the tombstone. Lost messages are healed by bounded re-sends (each with a fresh
// transport seq, so the receiver's NACK machinery repairs chunk gaps) and by the
// destination re-sending phase-1 until phase-2 or an abort arrives. Abort is only legal
// before the source commits, which is exactly when the source still owns the session —
// so no abort can strand a session nowhere, and no commit can leave it in two places.
//
// The same checkpoint path powers crash failover: EnableStandby replicates periodic
// checkpoints (purpose kStandby, fire-and-forget) to a warm standby; when a card shows up
// at the standby and the pool says the owner is dead, the warm blob is restored locally
// and the forced full repaint on attach repairs the console.

#ifndef SRC_SERVER_MIGRATION_H_
#define SRC_SERVER_MIGRATION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/net/fabric.h"
#include "src/protocol/messages.h"
#include "src/server/checkpoint.h"
#include "src/sim/simulator.h"
#include "src/util/time.h"

namespace slim {

class MetricRegistry;
class MigrationManager;
class ServerSession;
class SlimServer;

struct MigrationOptions {
  // Checkpoint blobs travel in slices of at most this many bytes per CheckpointChunkMsg
  // (the transport further fragments to the MTU underneath).
  size_t chunk_bytes = 16 * 1024;
  // Token-bucket rate for the bulk transfer so a multi-megabyte checkpoint cannot starve
  // interactive traffic sharing the transmit queue; <= 0 sends unpaced.
  int64_t rate_bps = 20'000'000;
  SimDuration burst_window = 50 * kMillisecond;
  // Source: re-send the current round (Begin + chunks) when no phase-1 ack arrives within
  // this; give up and abort after max_retries re-sends. Destination: re-send phase-1 on
  // the same cadence (it never gives up while the source is alive — the source's abort is
  // the only thing that can kill a staged handoff, see the header comment).
  SimDuration ack_timeout = 100 * kMillisecond;
  int max_retries = 10;
  // Pre-copy rounds before the source freezes regardless of dirtiness. Round 0 is the
  // initial full copy; at most this many total rounds precede the freeze.
  uint32_t max_precopy_rounds = 4;
};

// Counters for the migration protocol, readable directly and through the registry
// (`server.migration.*`).
struct MigrationStats {
  // Source side.
  int64_t started = 0;           // StartMigration accepted
  int64_t committed = 0;         // ownership transferred (phase-2 sent)
  int64_t aborted = 0;           // epochs that died (either side)
  int64_t superseded = 0;        // outgoing attempts replaced by a newer one
  int64_t rounds_sent = 0;       // pre-copy/final rounds beyond round 0
  int64_t begins_sent = 0;       // MigrateBegin copies (retries included)
  int64_t chunks_sent = 0;
  int64_t chunk_bytes_sent = 0;
  int64_t phase2_sent = 0;       // commit acks (tombstone re-acks included)
  int64_t retries = 0;           // timer-driven re-sends (both sides)
  // Destination side.
  int64_t chunks_received = 0;   // chunks accepted into a reassembly buffer
  int64_t staged = 0;            // blobs decoded into a staged session
  int64_t phase1_sent = 0;       // restored-acks (re-sends included)
  int64_t installs = 0;          // staged sessions that went live (phase-2)
  int64_t pulls_requested = 0;   // cross-server attaches that asked the owner to migrate
  int64_t adoptions = 0;         // staged sessions adopted after the source died mid-commit
  // Standby / failover.
  int64_t standby_sent = 0;      // checkpoints replicated to the standby
  int64_t standby_stored = 0;    // complete blobs stored in the warm map
  int64_t failover_restores = 0; // warm blobs restored on attach after owner death
  int64_t cold_starts = 0;       // owner dead and no warm blob: session lost, fresh start
  // Blackout (freeze -> destination re-attach), mirrored into the latency audit.
  int64_t blackout_last_ns = 0;
  int64_t blackout_total_ns = 0;
};

// Counters for checkpoint capture/restore (`server.checkpoint.*`).
struct CheckpointStats {
  int64_t captures = 0;
  int64_t capture_bytes = 0;   // serialized blob bytes across all captures
  int64_t restores = 0;        // blobs decoded and restored into a session
  int64_t decode_failures = 0; // blobs rejected by DecodeCheckpoint
};

// The server-pool directory: which servers exist, which are alive, and which server owns
// each card's session. This is control-plane state (the product would keep it in the
// authentication/session-manager service); in the sim it is a plain shared object that
// every SlimServer in the pool points at. It is also where KillServer-style fault
// injection lives, and where the migration blackout clock is parked between the source's
// freeze and the destination's re-attach.
class ServerPool {
 public:
  // Called by SlimServer::EnableMigration. A server registers exactly once.
  void Register(SlimServer* server, MigrationManager* manager);

  SlimServer* owner(uint64_t card_id) const;
  void SetOwner(uint64_t card_id, SlimServer* server);
  // Clears the mapping only if it still points at `server` (a newer owner wins).
  void ClearOwnerIf(uint64_t card_id, SlimServer* server);

  bool alive(const SlimServer* server) const;
  // Crash fault injection: the server's endpoint goes deaf and mute (it neither sends nor
  // receives), its pool entry is marked dead, and it stops standby replication. Nothing
  // reboots it.
  void KillServer(SlimServer* server);

  // Issues `user_number`'s card on every registered server's authentication manager, so
  // the card verifies wherever it is inserted. All servers share a site key, so every
  // server derives the same card id.
  uint64_t IssueCard(uint32_t user_number);

  // Asks `card_id`'s current owner to migrate the session to `dest`. False when there is
  // no live owner, the owner is `dest` itself, or the owner has no session for the card
  // (a stale directory entry, which is cleared).
  bool RequestMigration(uint64_t card_id, SlimServer* dest);

  SlimServer* ServerForNode(NodeId node) const;
  MigrationManager* ManagerFor(const SlimServer* server) const;

  // --- Blackout clock (set at the source's freeze, consumed at the destination's
  // re-attach; -1 when no blackout is in progress for the card) ---
  void NoteBlackoutStart(uint64_t card_id, SimTime t) { blackout_start_[card_id] = t; }
  SimTime TakeBlackoutStart(uint64_t card_id);

  size_t server_count() const { return entries_.size(); }
  const std::vector<SlimServer*>& servers() const { return servers_; }
  size_t owned_cards() const { return owner_.size(); }

 private:
  struct Entry {
    SlimServer* server = nullptr;
    MigrationManager* manager = nullptr;
    bool alive = true;
  };

  std::vector<Entry> entries_;
  std::vector<SlimServer*> servers_;  // same order as entries_, for iteration
  std::map<uint64_t, SlimServer*> owner_;
  std::map<uint64_t, SimTime> blackout_start_;
};

// One server's half of the migration protocol. Owned by its SlimServer (EnableMigration);
// receives the four migration message types from SlimServer::OnMessage and hooks the
// attach path for cross-server pulls and failover restores.
class MigrationManager {
 public:
  MigrationManager(SlimServer* server, ServerPool* pool, MigrationOptions options);

  const MigrationOptions& options() const { return options_; }
  const MigrationStats& stats() const { return stats_; }
  const CheckpointStats& checkpoint_stats() const { return checkpoint_stats_; }

  // Source side: begin migrating `card_id`'s session to `dest`. False when the card has
  // no local session. An in-flight attempt for the same card is superseded (aborted).
  bool StartMigration(uint64_t card_id, SlimServer* dest);

  // Periodically checkpoint every local session to `standby` (purpose kStandby,
  // fire-and-forget). The tick is a daemon event, so it never keeps Run() alive.
  void EnableStandby(SlimServer* standby, SimDuration interval);

  // --- Message entry points (dispatched by SlimServer::OnMessage) ---
  void OnMigrateBegin(const MigrateBeginMsg& msg, NodeId from);
  void OnCheckpointChunk(const CheckpointChunkMsg& msg, NodeId from);
  void OnMigrateCommit(const MigrateCommitMsg& msg, NodeId from);
  void OnMigrateAbort(const MigrateAbortMsg& msg, NodeId from);

  // --- Attach-path hooks (called by SlimServer) ---
  // An authenticated card with no local session arrived at `console`. Outcomes: `pending`
  // (a pull from the live owner started; the attach completes when the session installs),
  // a restored session (failover from the warm map), or neither — the caller creates a
  // fresh session.
  struct AdoptResult {
    ServerSession* session = nullptr;
    bool pending = false;
  };
  AdoptResult AdoptCard(uint64_t card_id, NodeId console);
  // A fresh session was created locally for the card: record ownership in the pool.
  void NoteLocalSession(uint64_t card_id);
  // A session is about to (re-)attach to `console`: apply the migrated seq watermark (if
  // one is pending for the card) and close the blackout clock.
  void OnSessionAttached(uint64_t card_id, uint32_t session_id, NodeId console);

  // True while any migration state is unresolved on this server (outgoing attempt,
  // incomplete or staged incoming transfer, or a console waiting on a pull). Tests use
  // this to check convergence.
  bool MigrationInFlight() const;

  bool HasWarmCheckpoint(uint64_t card_id) const { return warm_.contains(card_id); }

  // Registers `<prefix>.migration.*` and `<prefix>.checkpoint.*`.
  bool RegisterMetrics(MetricRegistry* registry, const std::string& prefix = "server");

 private:
  struct Outgoing {
    uint64_t epoch = 0;
    uint64_t card_id = 0;
    uint32_t origin_session = 0;
    SlimServer* dest = nullptr;
    NodeId peer = kInvalidNode;
    uint32_t round = 0;
    bool frozen = false;  // console released, final round in flight (or committed next)
    std::vector<uint8_t> blob;
    uint64_t flow = 0;
    int retries = 0;
    EventId timer = kInvalidEventId;
  };

  struct Incoming {
    NodeId from = kInvalidNode;
    uint64_t card_id = 0;
    uint32_t origin_session = 0;
    MigratePurpose purpose = MigratePurpose::kHandoff;
    uint32_t round = 0;
    bool begin_seen = false;
    uint32_t chunk_count = 0;
    uint64_t total_bytes = 0;
    std::vector<uint8_t> blob;
    std::vector<bool> got;
    uint32_t received = 0;
    // Chunks that arrived before their round's Begin (the transport can deliver out of
    // order around a replayed gap); applied once the Begin lands.
    std::map<uint32_t, CheckpointChunkMsg> early_chunks;
    std::unique_ptr<ServerSession> staged;  // handoff only, after a successful decode
    uint64_t staged_seq_floor = 0;
    int retries = 0;
    EventId timer = kInvalidEventId;
  };

  uint64_t NewEpoch();
  // Fills a checkpoint from the session plus the server-side identity fields (card,
  // lifecycle state, seq watermark toward the attached console).
  SessionCheckpoint Capture(uint64_t card_id, ServerSession& session);
  // Sends the current round: one MigrateBegin plus every chunk of out.blob.
  void SendRound(Outgoing& out, MigratePurpose purpose);
  void ArmSourceTimer(uint64_t epoch);
  void OnSourceTimeout(uint64_t epoch);
  void AbortOutgoing(uint64_t epoch, MigrateAbortReason reason, bool notify_peer);
  void CommitOutgoing(uint64_t epoch);

  void ResetIncomingRound(Incoming& in, const MigrateBeginMsg& msg, NodeId from);
  void ApplyChunk(Incoming& in, const CheckpointChunkMsg& msg);
  // All chunks present: decode, then store (standby) or stage + phase-1 (handoff).
  void CompleteIncoming(uint64_t epoch);
  void SendPhase1(uint64_t epoch);
  void ArmDestTimer(uint64_t epoch);
  void OnDestTimeout(uint64_t epoch);
  // Phase-2 (or adoption after source death): register the staged session and attach any
  // waiting console.
  void InstallIncoming(uint64_t epoch);
  // Discards an incoming transfer. `tombstone` additionally marks the epoch done so
  // stragglers (late chunks, a replayed Begin) are ignored — correct for aborted or
  // superseded epochs, but NOT for a chunk-only orphan whose Begin was lost in flight:
  // the source is still retrying that Begin, and a tombstone would make every retry a
  // no-op, wedging the handoff until the source gives up and aborts.
  void DropIncoming(uint64_t epoch, bool tombstone = true);

  void StandbyTick();
  void SendStandbyCheckpoint(uint64_t card_id, ServerSession& session);

  SlimServer* server_;
  ServerPool* pool_;
  MigrationOptions options_;
  MigrationStats stats_;
  CheckpointStats checkpoint_stats_;

  uint64_t epoch_counter_ = 0;
  std::map<uint64_t, Outgoing> outgoing_;
  std::map<uint64_t, Incoming> incoming_;
  // Source-side commit tombstones: epochs whose ownership already transferred. A re-sent
  // phase-1 for one of these is answered with a fresh phase-2 and nothing else.
  std::set<uint64_t> committed_;
  // Destination-side terminal epochs (installed or aborted): late/duplicate traffic for
  // them is ignored.
  std::set<uint64_t> done_;
  // Consoles waiting for a pulled session to install, by card.
  std::map<uint64_t, NodeId> pending_attach_;
  // Migrated seq watermarks to apply on the next attach, by card.
  std::map<uint64_t, uint64_t> seq_floor_;
  // Warm standby store: the latest complete checkpoint blob per card.
  std::map<uint64_t, std::vector<uint8_t>> warm_;

  SlimServer* standby_ = nullptr;
  SimDuration standby_interval_ = 0;
  uint64_t standby_flow_ = 0;
};

}  // namespace slim

#endif  // SRC_SERVER_MIGRATION_H_
