// A user session on a SLIM server.
//
// The session owns the persistent, true framebuffer state (the console's copy is only soft
// state), a SLIM encoder acting as the X-server's virtual device driver, and the protocol
// log that instruments everything it does. The drawing API mirrors what reaches an X device
// driver: fills, glyph runs, images and copies. Every call is costed under both the SLIM
// and X protocols so one session run produces the data for Figures 2-8.

#ifndef SRC_SERVER_SESSION_H_
#define SRC_SERVER_SESSION_H_

#include <functional>
#include <span>
#include <string>
#include <vector>

#include <memory>

#include "src/codec/damage_tracker.h"
#include "src/codec/encoder.h"
#include "src/codec/parallel.h"
#include "src/fb/framebuffer.h"
#include "src/net/fabric.h"
#include "src/protocol/messages.h"
#include "src/server/cpu_model.h"
#include "src/sim/simulator.h"
#include "src/trace/protocol_log.h"

namespace slim {

class MetricRegistry;

// A 1-bit glyph image; the apps toolkit supplies these from its font.
struct GlyphBitmap {
  int32_t width = 0;
  int32_t height = 0;
  // (width+7)/8 bytes per row, MSB leftmost, height rows.
  std::vector<uint8_t> bits;
};

class SlimServer;

class ServerSession {
 public:
  ServerSession(SlimServer* server, uint32_t id, int32_t width, int32_t height,
                EncoderOptions encoder_options = {});

  uint32_t id() const { return id_; }
  // The simulator driving this session's server (for applications that defer work, e.g.
  // progressive page rendering).
  Simulator* simulator();
  Framebuffer& framebuffer() { return fb_; }
  const Framebuffer& framebuffer() const { return fb_; }
  ProtocolLog& log() { return log_; }
  const ProtocolLog& log() const { return log_; }

  // --- Console attachment (hotdesking) ---
  void AttachConsole(NodeId console);
  void DetachConsole();
  bool attached() const { return console_ != kInvalidNode; }
  NodeId console() const { return console_; }

  // --- Input routing ---
  using InputHandler = std::function<void(const Message&)>;
  void set_input_handler(InputHandler handler) { input_handler_ = std::move(handler); }
  void DeliverInput(const Message& msg);

  // --- Drawing API (virtual device driver level) ---
  void FillRect(const Rect& r, Pixel color);
  void DrawGlyphs(int32_t x, int32_t y, std::span<const GlyphBitmap* const> glyphs, Pixel fg,
                  Pixel bg);
  void PutImage(const Rect& r, std::span<const Pixel> pixels);
  void CopyArea(int32_t src_x, int32_t src_y, const Rect& dst);
  // The Section 2.2 video library path: a YUV frame sent directly with CSCS.
  void SendVideoFrame(const YuvImage& frame, const Rect& dst, CscsDepth depth);
  void SendAudio(uint32_t sample_rate, std::span<const uint8_t> samples);

  // Encodes pending damage and transmits everything queued to the attached console.
  void Flush();

  // Full-screen refresh. With the damage tracker on this is cheap: the tracker refines the
  // full-frame damage down to whatever actually differs from the last-transmitted frame
  // (possibly nothing), so callers may repaint liberally.
  void RepaintAll();

  // RepaintAll that also discards the damage tracker's shadow frame, forcing a genuine
  // full retransmission. This is the loss-recovery path: when the transport gave up on a
  // message the console's soft state has silently diverged from the shadow, and a refined
  // repaint would wrongly transmit nothing. Used on console (re)attach for the same
  // reason — a fresh console displays black regardless of what the shadow says.
  void ForceRepaintAll();

  const Region& pending_damage() const { return damage_; }

  // Present when the encoder options enable shadow-frame damage refinement.
  const DamageTracker* damage_tracker() const { return tracker_.get(); }

  // Simulated CPU accounting (Section 5.5 / Table 4).
  SimDuration render_time() const { return render_time_; }
  SimDuration encode_time() const { return encode_time_; }
  SimDuration wire_time() const { return wire_time_; }

  int64_t commands_sent() const { return commands_sent_; }
  int64_t bytes_sent() const { return bytes_sent_; }

  // Per-command-type encoder output accumulated over everything this session transmitted,
  // indexed by CommandType (slot 0 unused) — the same shape Encoder::Accumulate produces.
  const EncodeStats* encode_stats() const { return encode_stats_; }

  // Worker threads used for damage encoding (1 = serial on the session's thread).
  int encode_threads() const { return pool_ != nullptr ? pool_->threads() : 1; }

  // Registers the session's counters, CPU-time gauges and per-command-type encoder
  // counters (`<prefix>.codec.<type>.*`) with `registry`. Returns false if any name was
  // rejected (duplicate prefix).
  bool RegisterMetrics(MetricRegistry* registry, const std::string& prefix = "session");

 private:
  void QueueCommand(DisplayCommand cmd);
  void EncodeDamageToPending();
  void TransmitPending();

  SlimServer* server_;
  uint32_t id_;
  Framebuffer fb_;
  Encoder encoder_;
  // Present when encoder options ask for threads > 1. Encoding fans out to the pool's
  // workers, but every stats cell the MetricRegistry can see (encode_stats_, the time and
  // byte counters) is still written only from this session's owning thread: the pool merges
  // worker-local scratch before EncodeDamage returns.
  std::unique_ptr<EncoderPool> pool_;
  // Shadow-frame damage refinement (src/codec/damage_tracker.h); null when disabled. Owned
  // and touched only by the session's thread — refinement happens before any pool fan-out.
  std::unique_ptr<DamageTracker> tracker_;
  ProtocolLog log_;
  Region damage_;
  std::vector<DisplayCommand> pending_;
  NodeId console_ = kInvalidNode;
  InputHandler input_handler_;

  SimDuration render_time_ = 0;
  SimDuration encode_time_ = 0;
  SimDuration wire_time_ = 0;
  int64_t commands_sent_ = 0;
  int64_t bytes_sent_ = 0;
  EncodeStats encode_stats_[6] = {};
};

}  // namespace slim

#endif  // SRC_SERVER_SESSION_H_
