// A user session on a SLIM server.
//
// The session owns the persistent, true framebuffer state (the console's copy is only soft
// state), a SLIM encoder acting as the X-server's virtual device driver, and the protocol
// log that instruments everything it does. The drawing API mirrors what reaches an X device
// driver: fills, glyph runs, images and copies. Every call is costed under both the SLIM
// and X protocols so one session run produces the data for Figures 2-8.

#ifndef SRC_SERVER_SESSION_H_
#define SRC_SERVER_SESSION_H_

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include <memory>

#include "src/codec/damage_tracker.h"
#include "src/codec/encoder.h"
#include "src/codec/parallel.h"
#include "src/fb/framebuffer.h"
#include "src/net/fabric.h"
#include "src/protocol/messages.h"
#include "src/server/cpu_model.h"
#include "src/sim/simulator.h"
#include "src/trace/protocol_log.h"

namespace slim {

class MetricRegistry;
struct SessionCheckpoint;

// A 1-bit glyph image; the apps toolkit supplies these from its font.
struct GlyphBitmap {
  int32_t width = 0;
  int32_t height = 0;
  // (width+7)/8 bytes per row, MSB leftmost, height rows.
  std::vector<uint8_t> bits;
};

class SlimServer;

class ServerSession {
 public:
  ServerSession(SlimServer* server, uint32_t id, int32_t width, int32_t height,
                EncoderOptions encoder_options = {});

  uint32_t id() const { return id_; }

  // --- Bandwidth flows (Section 7) ---
  // Each session owns two console-bandwidth flows, mirroring the paper's applications: the
  // display server (interactive drawing) and the video library. Flow 0 is reserved for
  // unpaced control traffic, so the ids interleave from 1.
  static uint64_t InteractiveFlow(uint32_t session_id) {
    return static_cast<uint64_t>(session_id) * 2 + 1;
  }
  static uint64_t VideoFlow(uint32_t session_id) {
    return static_cast<uint64_t>(session_id) * 2 + 2;
  }
  static uint32_t SessionOfFlow(uint64_t flow_id) {
    return static_cast<uint32_t>((flow_id - 1) / 2);
  }
  uint64_t interactive_flow() const { return InteractiveFlow(id_); }
  uint64_t video_flow() const { return VideoFlow(id_); }

  // A console grant for one of this session's flows (relayed by SlimServer::ApplyGrant
  // after the transmit queue's pacer was updated). May un-stage work that was waiting for
  // headroom. `total_bps` is the console's whole allocatable link.
  void OnBandwidthGrant(uint64_t flow_id, int64_t bits_per_second, int64_t total_bps);
  // Sends a (re-)request for one of this session's flows to the attached console — used by
  // applications that know their real offered rate (the video pipeline at Start).
  void RequestFlowBandwidth(uint64_t flow_id, int64_t bits_per_second);
  // Fired by SlimServer::SchedulePaceRetry: re-check staged video and deferred damage now
  // that the paced backlog had time to drain.
  void OnPaceRetry();

  int64_t interactive_grant_bps() const { return interactive_grant_bps_; }
  int64_t video_grant_bps() const { return video_grant_bps_; }
  int64_t link_total_bps() const { return link_total_bps_; }
  bool has_staged_video() const { return staged_video_.has_value(); }
  int64_t video_deferred() const { return video_deferred_; }
  int64_t video_dropped() const { return video_dropped_; }
  int64_t coalesced_flushes() const { return coalesced_flushes_; }
  // The simulator driving this session's server (for applications that defer work, e.g.
  // progressive page rendering).
  Simulator* simulator();
  Framebuffer& framebuffer() { return fb_; }
  const Framebuffer& framebuffer() const { return fb_; }
  ProtocolLog& log() { return log_; }
  const ProtocolLog& log() const { return log_; }

  // --- Console attachment (hotdesking) ---
  void AttachConsole(NodeId console);
  void DetachConsole();
  bool attached() const { return console_ != kInvalidNode; }
  NodeId console() const { return console_; }

  // --- Input routing ---
  using InputHandler = std::function<void(const Message&)>;
  void set_input_handler(InputHandler handler) { input_handler_ = std::move(handler); }
  void DeliverInput(const Message& msg);

  // --- Drawing API (virtual device driver level) ---
  void FillRect(const Rect& r, Pixel color);
  void DrawGlyphs(int32_t x, int32_t y, std::span<const GlyphBitmap* const> glyphs, Pixel fg,
                  Pixel bg);
  void PutImage(const Rect& r, std::span<const Pixel> pixels);
  void CopyArea(int32_t src_x, int32_t src_y, const Rect& dst);
  // The Section 2.2 video library path: a YUV frame sent directly with CSCS.
  void SendVideoFrame(const YuvImage& frame, const Rect& dst, CscsDepth depth);
  void SendAudio(uint32_t sample_rate, std::span<const uint8_t> samples);

  // Encodes pending damage and transmits everything queued to the attached console.
  void Flush();

  // Full-screen refresh. With the damage tracker on this is cheap: the tracker refines the
  // full-frame damage down to whatever actually differs from the last-transmitted frame
  // (possibly nothing), so callers may repaint liberally.
  void RepaintAll();

  // RepaintAll that also discards the damage tracker's shadow frame, forcing a genuine
  // full retransmission. This is the loss-recovery path: when the transport gave up on a
  // message the console's soft state has silently diverged from the shadow, and a refined
  // repaint would wrongly transmit nothing. Used on console (re)attach for the same
  // reason — a fresh console displays black regardless of what the shadow says.
  void ForceRepaintAll();

  const Region& pending_damage() const { return damage_; }

  // Present when the encoder options enable shadow-frame damage refinement.
  const DamageTracker* damage_tracker() const { return tracker_.get(); }

  // Simulated CPU accounting (Section 5.5 / Table 4).
  SimDuration render_time() const { return render_time_; }
  SimDuration encode_time() const { return encode_time_; }
  SimDuration wire_time() const { return wire_time_; }

  int64_t commands_sent() const { return commands_sent_; }
  int64_t bytes_sent() const { return bytes_sent_; }

  // Per-command-type encoder output accumulated over everything this session transmitted,
  // indexed by CommandType (slot 0 unused) — the same shape Encoder::Accumulate produces.
  const EncodeStats* encode_stats() const { return encode_stats_; }

  // Worker threads used for damage encoding (1 = serial on the session's thread).
  int encode_threads() const { return pool_ != nullptr ? pool_->threads() : 1; }

  // Registers the session's counters, CPU-time gauges and per-command-type encoder
  // counters (`<prefix>.codec.<type>.*`) with `registry`. Returns false if any name was
  // rejected (duplicate prefix).
  bool RegisterMetrics(MetricRegistry* registry, const std::string& prefix = "session");

  // --- Checkpointing (src/server/checkpoint.{h,cc}) ---
  // Fills `out` with this session's complete serializable state: framebuffer bits, the
  // damage tracker's shadow + row hashes, pending damage, pacing/grant state, and the
  // accounting watermarks. Identity beyond the session id (card, lifecycle state, the
  // console seq watermark) is the server's knowledge and is filled in by the caller.
  // Staged video is deliberately not captured — it never touched session state, and the
  // paper's drop-stale-frames rule makes losing it the correct behavior.
  void CaptureCheckpoint(SessionCheckpoint* out) const;
  // Overwrites this session's state from a decoded checkpoint. The session must be
  // detached and its geometry must match the checkpoint's (checked): the restoring
  // server constructs the session from the checkpoint's width/height first.
  void RestoreFromCheckpoint(const SessionCheckpoint& ckpt);

 private:
  void QueueCommand(DisplayCommand cmd);
  void EncodeDamageToPending();
  void TransmitPending();

  // --- Backpressure adaptation (pacing.adapt) ---
  // True while the video flow's token bucket runs further ahead of the clock than the
  // watermark: new frames are staged (newest wins) instead of queued.
  bool ShouldStageVideo() const;
  // True while the interactive flow (or the session's txq depth) is over its watermark:
  // Flush leaves damage coalescing instead of encoding more rects into the queue.
  bool ShouldDeferFlush() const;
  // Applies the staged CSCS frame to the framebuffer/shadow/log and transmits it — the
  // only place a video frame touches session state, so a dropped frame leaves no trace.
  void TransmitVideoFrame(CscsCommand cmd);
  // Schedules one OnPaceRetry at the earliest time any deferred concern could clear
  // (deduplicated: at most one retry in flight per session).
  void ArmPaceRetry();
  // Drops staged video and forgets grants (console detach/handoff: the next console's
  // allocator starts fresh).
  void ClearPacedState();

  SlimServer* server_;
  uint32_t id_;
  Framebuffer fb_;
  Encoder encoder_;
  // Present when encoder options ask for threads > 1. Encoding fans out to the pool's
  // workers, but every stats cell the MetricRegistry can see (encode_stats_, the time and
  // byte counters) is still written only from this session's owning thread: the pool merges
  // worker-local scratch before EncodeDamage returns.
  std::unique_ptr<EncoderPool> pool_;
  // Shadow-frame damage refinement (src/codec/damage_tracker.h); null when disabled. Owned
  // and touched only by the session's thread — refinement happens before any pool fan-out.
  std::unique_ptr<DamageTracker> tracker_;
  ProtocolLog log_;
  Region damage_;
  std::vector<DisplayCommand> pending_;
  NodeId console_ = kInvalidNode;
  InputHandler input_handler_;

  SimDuration render_time_ = 0;
  SimDuration encode_time_ = 0;
  SimDuration wire_time_ = 0;
  int64_t commands_sent_ = 0;
  int64_t bytes_sent_ = 0;
  EncodeStats encode_stats_[6] = {};

  // Backpressure state. The staged frame is already packed (the pack cost was paid by the
  // caller); it has NOT touched fb_/shadow/damage/log — that happens only on transmit.
  std::optional<CscsCommand> staged_video_;
  bool pace_retry_armed_ = false;
  int64_t interactive_grant_bps_ = 0;
  int64_t video_grant_bps_ = 0;
  int64_t link_total_bps_ = 0;
  int64_t video_deferred_ = 0;
  int64_t video_dropped_ = 0;
  int64_t coalesced_flushes_ = 0;
};

}  // namespace slim

#endif  // SRC_SERVER_SESSION_H_
