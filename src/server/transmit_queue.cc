#include "src/server/transmit_queue.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <variant>

#include "src/obs/latency_audit.h"
#include "src/obs/metrics.h"
#include "src/util/check.h"

namespace slim {

namespace {

// Only display commands are latency-audited: they are the messages whose console-side
// present closes an input event's end-to-end path (audio/pongs/control never present).
bool IsAuditedDisplayCommand(const MessageBody& body) {
  return std::holds_alternative<SetCommand>(body) ||
         std::holds_alternative<BitmapCommand>(body) ||
         std::holds_alternative<FillCommand>(body) ||
         std::holds_alternative<CopyCommand>(body) ||
         std::holds_alternative<CscsCommand>(body);
}

}  // namespace

TransmitQueue::TransmitQueue(Simulator* sim, SlimEndpoint* endpoint, bool model_cpu_delay)
    : sim_(sim), endpoint_(endpoint), model_cpu_delay_(model_cpu_delay) {
  SLIM_CHECK(sim != nullptr && endpoint != nullptr);
}

SimTime TransmitQueue::Send(NodeId console, uint32_t session_id, MessageBody body,
                            SimDuration cpu_cost, uint64_t flow_id) {
  ++sends_;
  const SimTime now = sim_->now();
  // Latency-audit correlation, captured at enqueue time: the input event being dispatched
  // right now is the one this display command belongs to, even if the actual endpoint
  // send is deferred behind the busy pipeline.
  LatencyAudit* const enqueue_audit = LatencyAudit::Global();
  const int64_t input_id =
      enqueue_audit != nullptr && IsAuditedDisplayCommand(body) ? enqueue_audit->current_input()
                                                                : -1;
  if (input_id >= 0) {
    // Hold the audit entry open now: the send below may be deferred past EndInput.
    enqueue_audit->NoteEnqueued(input_id);
  }
  SimTime release = now;
  if (model_cpu_delay_) {
    const SimTime start = std::max(now, busy_until_);
    release = start + std::max<SimDuration>(cpu_cost, 0);
    busy_until_ = release;
  }
  SimDuration pace_delay = 0;
  if (flow_id != 0) {
    if (const auto it = pacers_.find(flow_id); it != pacers_.end()) {
      FlowPacer& p = it->second;
      if (p.rate_bps > 0) {
        ++paced_;
        const auto bytes = static_cast<int64_t>(BodyWireSize(body));
        const SimDuration wire_time = TransmissionDelay(bytes, p.rate_bps);
        // GCRA: admit once the bucket's virtual finish time is within `burst` of the
        // CPU-release time; an idle flow earns at most `burst` of credit.
        const SimTime ready = std::max(release, p.wire_until - p.burst);
        p.wire_until = std::max(p.wire_until, ready) + wire_time;
        pace_delay = ready - release;
        release = ready;
        if (pace_delay > 0) {
          ++pace_delayed_;
        }
      }
      // Per-flow FIFO floor: a send may never depart before an earlier one of the same
      // flow, even if a grant change (or withdrawal) shrank its own pacing delay.
      release = std::max(release, p.last_release);
      p.last_release = release;
    }
  }
  if (release <= now && total_depth_ == 0) {
    // Pipeline idle and nothing in flight ahead of us: the fast path stays a direct send.
    const uint64_t seq = endpoint_->Send(console, session_id, std::move(body));
    if (input_id >= 0) {
      enqueue_audit->NoteDeparture(input_id, console, seq, now, pace_delay);
    }
    return now;
  }
  // Everything else — including zero-cost messages behind a busy pipeline, and sends at
  // the exact instant an earlier send is due (equal-time events run in scheduling order,
  // so FIFO is preserved) — goes through the simulator.
  ++deferred_;
  ++depth_[session_id];
  ++total_depth_;
  max_depth_ = std::max(max_depth_, total_depth_);
  // The lambda needs its own event id to unregister from the purge index; the id is only
  // known after scheduling, so it travels through a shared slot (filled in synchronously
  // below — the event cannot fire before this call returns).
  auto id_slot = std::make_shared<EventId>(kInvalidEventId);
  const EventId event_id = sim_->ScheduleAt(
      release, [this, console, session_id, input_id, release, pace_delay, id_slot,
                b = std::move(body)]() mutable {
        if (const auto pending = pending_by_session_.find(session_id);
            pending != pending_by_session_.end()) {
          pending->second.erase(*id_slot);
          if (pending->second.empty()) {
            pending_by_session_.erase(pending);
          }
        }
        const auto it = depth_.find(session_id);
        if (it != depth_.end() && --it->second <= 0) {
          depth_.erase(it);
        }
        --total_depth_;
        const uint64_t seq = endpoint_->Send(console, session_id, std::move(b));
        if (LatencyAudit* audit = LatencyAudit::Global(); audit != nullptr && input_id >= 0) {
          audit->NoteDeparture(input_id, console, seq, release, pace_delay);
        }
      });
  *id_slot = event_id;
  pending_by_session_[session_id][event_id] = input_id;
  return release;
}

void TransmitQueue::SetFlowRate(uint64_t flow_id, int64_t bits_per_second,
                                SimDuration burst) {
  SLIM_CHECK(flow_id != 0);
  FlowPacer& p = pacers_[flow_id];
  p.rate_bps = bits_per_second;
  p.burst = std::max<SimDuration>(burst, 0);
}

void TransmitQueue::ReleaseFlow(uint64_t flow_id) { pacers_.erase(flow_id); }

int64_t TransmitQueue::flow_rate(uint64_t flow_id) const {
  const auto it = pacers_.find(flow_id);
  return it == pacers_.end() ? 0 : it->second.rate_bps;
}

SimDuration TransmitQueue::PaceBacklog(uint64_t flow_id) const {
  const auto it = pacers_.find(flow_id);
  if (it == pacers_.end()) {
    return 0;
  }
  return std::max<SimDuration>(it->second.wire_until - sim_->now(), 0);
}

SimTime TransmitQueue::FlowReadyAt(uint64_t flow_id) const {
  const SimTime now = sim_->now();
  const auto it = pacers_.find(flow_id);
  if (it == pacers_.end()) {
    return now;
  }
  return std::max(now, it->second.wire_until - it->second.burst);
}

int64_t TransmitQueue::PurgeSession(uint32_t session_id) {
  const auto pending = pending_by_session_.find(session_id);
  if (pending == pending_by_session_.end()) {
    return 0;
  }
  LatencyAudit* const audit = LatencyAudit::Global();
  int64_t dropped = 0;
  for (const auto& [event_id, input_id] : pending->second) {
    sim_->Cancel(event_id);
    ++dropped;
    if (audit != nullptr && input_id >= 0) {
      // The command will never depart; close its slot in the ledger so the input event
      // does not linger as incomplete.
      audit->NotePurged(input_id);
    }
  }
  pending_by_session_.erase(pending);
  if (const auto it = depth_.find(session_id); it != depth_.end()) {
    total_depth_ -= it->second;
    depth_.erase(it);
  }
  purged_ += dropped;
  return dropped;
}

int64_t TransmitQueue::depth(uint32_t session_id) const {
  const auto it = depth_.find(session_id);
  return it == depth_.end() ? 0 : it->second;
}

bool TransmitQueue::RegisterMetrics(MetricRegistry* registry, const std::string& prefix) {
  SLIM_CHECK(registry != nullptr);
  bool ok = registry->BindCounter(prefix + ".sends", &sends_);
  ok = registry->BindCounter(prefix + ".deferred", &deferred_) && ok;
  ok = registry->BindCounter(prefix + ".paced", &paced_) && ok;
  ok = registry->BindCounter(prefix + ".pace_delayed", &pace_delayed_) && ok;
  ok = registry->BindCounter(prefix + ".purged", &purged_) && ok;
  ok = registry->BindGauge(prefix + ".depth",
                           [this] { return static_cast<double>(total_depth_); }) &&
       ok;
  ok = registry->BindGauge(prefix + ".max_depth",
                           [this] { return static_cast<double>(max_depth_); }) &&
       ok;
  return ok;
}

}  // namespace slim
