#include "src/server/transmit_queue.h"

#include <algorithm>
#include <utility>
#include <variant>

#include "src/obs/latency_audit.h"
#include "src/obs/metrics.h"
#include "src/util/check.h"

namespace slim {

namespace {

// Only display commands are latency-audited: they are the messages whose console-side
// present closes an input event's end-to-end path (audio/pongs/control never present).
bool IsDisplayCommand(const MessageBody& body) {
  return std::holds_alternative<SetCommand>(body) ||
         std::holds_alternative<BitmapCommand>(body) ||
         std::holds_alternative<FillCommand>(body) ||
         std::holds_alternative<CopyCommand>(body) ||
         std::holds_alternative<CscsCommand>(body);
}

}  // namespace

TransmitQueue::TransmitQueue(Simulator* sim, SlimEndpoint* endpoint, bool model_cpu_delay)
    : sim_(sim), endpoint_(endpoint), model_cpu_delay_(model_cpu_delay) {
  SLIM_CHECK(sim != nullptr && endpoint != nullptr);
}

SimTime TransmitQueue::Send(NodeId console, uint32_t session_id, MessageBody body,
                            SimDuration cpu_cost) {
  ++sends_;
  const SimTime now = sim_->now();
  // Latency-audit correlation, captured at enqueue time: the input event being dispatched
  // right now is the one this display command belongs to, even if the actual endpoint
  // send is deferred behind the busy pipeline.
  LatencyAudit* const enqueue_audit = LatencyAudit::Global();
  const int64_t input_id =
      enqueue_audit != nullptr && IsDisplayCommand(body) ? enqueue_audit->current_input() : -1;
  if (input_id >= 0) {
    // Hold the audit entry open now: the send below may be deferred past EndInput.
    enqueue_audit->NoteEnqueued(input_id);
  }
  if (!model_cpu_delay_) {
    const uint64_t seq = endpoint_->Send(console, session_id, std::move(body));
    if (input_id >= 0) {
      enqueue_audit->NoteDeparture(input_id, console, seq, now);
    }
    return now;
  }
  const SimTime start = std::max(now, busy_until_);
  const SimTime done = start + std::max<SimDuration>(cpu_cost, 0);
  busy_until_ = done;
  if (done <= now && total_depth_ == 0) {
    // Pipeline idle and nothing in flight ahead of us: the fast path stays a direct send.
    const uint64_t seq = endpoint_->Send(console, session_id, std::move(body));
    if (input_id >= 0) {
      enqueue_audit->NoteDeparture(input_id, console, seq, now);
    }
    return now;
  }
  // Everything else — including zero-cost messages behind a busy pipeline, and sends at
  // the exact instant an earlier send is due (equal-time events run in scheduling order,
  // so FIFO is preserved) — goes through the simulator.
  ++deferred_;
  ++depth_[session_id];
  ++total_depth_;
  max_depth_ = std::max(max_depth_, total_depth_);
  sim_->ScheduleAt(done, [this, console, session_id, input_id, done,
                          b = std::move(body)]() mutable {
    const auto it = depth_.find(session_id);
    if (it != depth_.end() && --it->second <= 0) {
      depth_.erase(it);
    }
    --total_depth_;
    const uint64_t seq = endpoint_->Send(console, session_id, std::move(b));
    if (LatencyAudit* audit = LatencyAudit::Global(); audit != nullptr && input_id >= 0) {
      audit->NoteDeparture(input_id, console, seq, done);
    }
  });
  return done;
}

int64_t TransmitQueue::depth(uint32_t session_id) const {
  const auto it = depth_.find(session_id);
  return it == depth_.end() ? 0 : it->second;
}

bool TransmitQueue::RegisterMetrics(MetricRegistry* registry, const std::string& prefix) {
  SLIM_CHECK(registry != nullptr);
  bool ok = registry->BindCounter(prefix + ".sends", &sends_);
  ok = registry->BindCounter(prefix + ".deferred", &deferred_) && ok;
  ok = registry->BindGauge(prefix + ".depth",
                           [this] { return static_cast<double>(total_depth_); }) &&
       ok;
  ok = registry->BindGauge(prefix + ".max_depth",
                           [this] { return static_cast<double>(max_depth_); }) &&
       ok;
  return ok;
}

}  // namespace slim
