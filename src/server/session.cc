#include "src/server/session.h"

#include <algorithm>
#include <limits>

#include "src/obs/latency_audit.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/server/slim_server.h"
#include "src/util/check.h"
#include "src/xproto/xcost.h"

namespace slim {

ServerSession::ServerSession(SlimServer* server, uint32_t id, int32_t width, int32_t height,
                             EncoderOptions encoder_options)
    : server_(server), id_(id), fb_(width, height), encoder_(encoder_options) {
  SLIM_CHECK(server != nullptr);
  if (encoder_options.threads > 1) {
    pool_ = std::make_unique<EncoderPool>(encoder_options);
  }
  if (encoder_options.damage_tracker) {
    tracker_ = std::make_unique<DamageTracker>(width, height);
  }
}

Simulator* ServerSession::simulator() { return server_->simulator(); }

bool ServerSession::RegisterMetrics(MetricRegistry* registry, const std::string& prefix) {
  SLIM_CHECK(registry != nullptr);
  bool ok = true;
  ok = registry->BindCounter(prefix + ".commands_sent", &commands_sent_) && ok;
  ok = registry->BindCounter(prefix + ".bytes_sent", &bytes_sent_) && ok;
  ok = registry->BindGauge(prefix + ".render_ns",
                           [this] { return static_cast<double>(render_time_); }) &&
       ok;
  ok = registry->BindGauge(prefix + ".encode_ns",
                           [this] { return static_cast<double>(encode_time_); }) &&
       ok;
  ok = registry->BindGauge(prefix + ".wire_cpu_ns",
                           [this] { return static_cast<double>(wire_time_); }) &&
       ok;
  // How much of the server's shared transmit pipeline this session currently occupies.
  ok = registry->BindGauge(prefix + ".txq_depth",
                           [this] {
                             return static_cast<double>(server_->tx_queue().depth(id_));
                           }) &&
       ok;
  // Congestion-adaptation counters and the current grants (gauges so they track revisions).
  ok = registry->BindCounter(prefix + ".video_deferred", &video_deferred_) && ok;
  ok = registry->BindCounter(prefix + ".video_dropped", &video_dropped_) && ok;
  ok = registry->BindCounter(prefix + ".coalesced_flushes", &coalesced_flushes_) && ok;
  ok = registry->BindGauge(prefix + ".interactive_grant_bps",
                           [this] { return static_cast<double>(interactive_grant_bps_); }) &&
       ok;
  ok = registry->BindGauge(prefix + ".video_grant_bps",
                           [this] { return static_cast<double>(video_grant_bps_); }) &&
       ok;
  // One counter block per display command type, mirroring EncodeStats field for field.
  static constexpr const char* kTypeNames[6] = {nullptr, "set", "bitmap", "fill", "copy",
                                                "cscs"};
  for (int t = 1; t < 6; ++t) {
    const std::string base = prefix + ".codec." + kTypeNames[t] + ".";
    ok = registry->BindCounter(base + "commands", &encode_stats_[t].commands) && ok;
    ok = registry->BindCounter(base + "wire_bytes", &encode_stats_[t].wire_bytes) && ok;
    ok = registry->BindCounter(base + "uncompressed_bytes",
                               &encode_stats_[t].uncompressed_bytes) &&
         ok;
    ok = registry->BindCounter(base + "pixels", &encode_stats_[t].pixels) && ok;
  }
  return ok;
}

void ServerSession::AttachConsole(NodeId console) {
  console_ = console;
  // Grants belong to a console; whatever the previous one allowed is void here (the server
  // already released the flows, and fresh requests are in flight to the new console).
  ClearPacedState();
  // The newly attached console displays black (its framebuffer is soft state and this may
  // be a hotdesking move to a different terminal), so the repaint must not be refined
  // against whatever the previous console was showing.
  ForceRepaintAll();
  Flush();
}

void ServerSession::DetachConsole() {
  console_ = kInvalidNode;
  ClearPacedState();
}

void ServerSession::ClearPacedState() {
  // A staged frame never touched fb/shadow/damage/log, so dropping it here leaves the
  // session bit-identical to one that never saw the frame.
  if (staged_video_.has_value()) {
    staged_video_.reset();
    ++video_dropped_;
    ++server_->pacing_stats().video_dropped;
  }
  interactive_grant_bps_ = 0;
  video_grant_bps_ = 0;
  link_total_bps_ = 0;
  // pace_retry_armed_ is left alone: an already-scheduled retry will fire regardless, and
  // OnPaceRetry handles the detached (or re-attached) session it finds.
}

void ServerSession::OnBandwidthGrant(uint64_t flow_id, int64_t bits_per_second,
                                     int64_t total_bps) {
  if (flow_id == interactive_flow()) {
    interactive_grant_bps_ = bits_per_second;
  } else if (flow_id == video_flow()) {
    video_grant_bps_ = bits_per_second;
  }
  link_total_bps_ = total_bps;
  // A bigger (or smaller) share changes when staged work can go; re-evaluate.
  if (staged_video_.has_value() || !damage_.empty()) {
    ArmPaceRetry();
  }
}

void ServerSession::RequestFlowBandwidth(uint64_t flow_id, int64_t bits_per_second) {
  if (!attached() || !server_->options().pacing.enabled) {
    return;
  }
  ++server_->pacing_stats().requests_sent;
  server_->Transmit(console_, id_, BandwidthRequestMsg{flow_id, bits_per_second}, 0);
}

void ServerSession::DeliverInput(const Message& msg) {
  const SimTime now = server_->simulator()->now();
  // Sim time does not advance during synchronous dispatch, so the stage decomposition is
  // emitted as modeled-CPU-cost spans: the dispatch span ends at now + the CPU time this
  // input charged, with render/encode/wire laid back-to-back inside it. Nested transport
  // sends inherit the input_id, which is the join key against console-side decode spans
  // (via their seq args).
  Tracer* const tracer = Tracer::Global();
  LatencyAudit* const audit = LatencyAudit::Global();
  SimDuration render0 = 0;
  SimDuration encode0 = 0;
  SimDuration wire0 = 0;
  int64_t input_id = -1;
  if (tracer != nullptr) {
    input_id = tracer->NextInputId();
    tracer->set_current_input(input_id);
    tracer->Begin(now, "input.dispatch", "server", kTraceTidServer,
                  {{"session", JsonValue(int64_t{id_})}});
  }
  if (audit != nullptr) {
    // Shares the tracer's id when both are on, so trace spans and audit rows correlate.
    input_id = audit->BeginInput(id_, now, input_id);
  }
  if (tracer != nullptr || audit != nullptr) {
    render0 = render_time_;
    encode0 = encode_time_;
    wire0 = wire_time_;
  }
  if (const auto* key = std::get_if<KeyEventMsg>(&msg.body)) {
    if (key->pressed) {
      log_.RecordInput(now, /*is_key=*/true);
      // Under X the keystroke is delivered to the client as a 32-byte event.
      log_.RecordXRequest(now, XEventBytes());
    }
  } else if (const auto* mouse = std::get_if<MouseEventMsg>(&msg.body)) {
    if (!mouse->is_motion && mouse->buttons != 0) {
      log_.RecordInput(now, /*is_key=*/false);
      log_.RecordXRequest(now, XEventBytes());
    }
  }
  if (input_handler_) {
    input_handler_(msg);
  }
  if (tracer != nullptr) {
    SimTime cursor = now;
    const auto stage = [&](const char* name, SimDuration dur) {
      if (dur > 0) {
        tracer->Complete(cursor, dur, name, "server", kTraceTidServer, {});
        cursor += dur;
      }
    };
    stage("server.render", render_time_ - render0);
    stage("server.encode", encode_time_ - encode0);
    stage("server.wire_cpu", wire_time_ - wire0);
    tracer->End(cursor, kTraceTidServer);
    tracer->set_current_input(-1);
  }
  if (audit != nullptr) {
    audit->EndInput(input_id, render_time_ - render0, encode_time_ - encode0,
                    wire_time_ - wire0, now);
  }
}

void ServerSession::FillRect(const Rect& r, Pixel color) {
  const Rect clipped = Intersect(r, fb_.bounds());
  if (clipped.empty()) {
    return;
  }
  const SimTime now = server_->simulator()->now();
  render_time_ += server_->options().cpu.RenderCost(clipped.area());
  log_.RecordXRequest(now, XFillRectBytes());
  fb_.Fill(clipped, color);
  // Fills pass straight through the driver: the rectangle is already in protocol form.
  damage_.Subtract(clipped);
  QueueCommand(FillCommand{clipped, color});
  if (tracker_ != nullptr) {
    // The FILL bypasses the encoder (and thus refinement), so mirror it into the shadow.
    tracker_->SyncRect(fb_, clipped);
  }
}

void ServerSession::DrawGlyphs(int32_t x, int32_t y, std::span<const GlyphBitmap* const> glyphs,
                               Pixel fg, Pixel bg) {
  const SimTime now = server_->simulator()->now();
  int32_t pen_x = x;
  Rect dirty{};
  for (const GlyphBitmap* glyph : glyphs) {
    SLIM_DCHECK(glyph != nullptr);
    const Rect dst{pen_x, y, glyph->width, glyph->height};
    fb_.ExpandBitmap(dst, glyph->bits, fg, bg);
    dirty = BoundingUnion(dirty, Intersect(dst, fb_.bounds()));
    pen_x += glyph->width;
  }
  if (!dirty.empty()) {
    damage_.Add(dirty);
  }
  render_time_ +=
      server_->options().cpu.RenderCost(dirty.area(), static_cast<int>(glyphs.size()));
  log_.RecordXRequest(now, XDrawTextBytes(static_cast<int>(glyphs.size())));
}

void ServerSession::PutImage(const Rect& r, std::span<const Pixel> pixels) {
  const Rect clipped = Intersect(r, fb_.bounds());
  if (clipped.empty()) {
    return;
  }
  const SimTime now = server_->simulator()->now();
  fb_.SetPixels(r, pixels);
  damage_.Add(clipped);
  render_time_ += server_->options().cpu.RenderCost(clipped.area());
  log_.RecordXRequest(now, XPutImageBytes(clipped.area()));
}

void ServerSession::CopyArea(int32_t src_x, int32_t src_y, const Rect& dst) {
  const Rect clipped = Intersect(dst, fb_.bounds());
  if (clipped.empty()) {
    return;
  }
  // Clipping the destination must shift the source origin by the same amount, or the copied
  // pixels land misaligned relative to what the caller asked for.
  const int32_t shifted_src_x = src_x + (clipped.x - dst.x);
  const int32_t shifted_src_y = src_y + (clipped.y - dst.y);
  const SimTime now = server_->simulator()->now();
  // The copy reads the current screen, so any not-yet-encoded damage must be encoded first
  // to keep the console's command stream in order.
  EncodeDamageToPending();
  fb_.CopyRect(shifted_src_x, shifted_src_y, clipped);
  render_time_ += server_->options().cpu.CopyCost(clipped.area());
  log_.RecordXRequest(now, XCopyAreaBytes());
  const Rect src_rect{shifted_src_x, shifted_src_y, clipped.w, clipped.h};
  if (fb_.bounds().ContainsRect(src_rect)) {
    QueueCommand(CopyCommand{shifted_src_x, shifted_src_y, clipped});
    if (tracker_ != nullptr) {
      // Damage was encoded (and the shadow synced) just above, so copying the already-
      // updated fb pixels into the shadow equals applying the COPY the console will apply.
      tracker_->SyncRect(fb_, clipped);
    }
  } else {
    // The console rejects COPYs that read out of bounds, so send the result literally:
    // CopyRect already wrote the (partially black-padded) pixels, mark them damaged and let
    // the encoder pick the representation.
    damage_.Add(clipped);
  }
}

void ServerSession::SendVideoFrame(const YuvImage& frame, const Rect& dst, CscsDepth depth) {
  CscsCommand cmd;
  cmd.src_w = frame.width();
  cmd.src_h = frame.height();
  cmd.dst = Intersect(dst, fb_.bounds());
  cmd.depth = depth;
  if (cmd.dst.empty()) {
    return;
  }
  cmd.payload = PackCscsPayload(frame, depth);
  if (ShouldStageVideo()) {
    // The video flow's bucket is too far ahead of the clock: stage instead of queue, and
    // let a newer frame supersede this one — stale video is worthless by the time the
    // wire would take it, and dropping it is what frees the link (Section 7's allocator
    // assumes the video library adapts its rate to its grant).
    ++video_deferred_;
    ++server_->pacing_stats().video_deferred;
    if (staged_video_.has_value()) {
      ++video_dropped_;
      ++server_->pacing_stats().video_dropped;
    }
    staged_video_ = std::move(cmd);
    ArmPaceRetry();
    return;
  }
  TransmitVideoFrame(std::move(cmd));
}

void ServerSession::TransmitVideoFrame(CscsCommand cmd) {
  const SimTime now = server_->simulator()->now();
  // Keep the server's true framebuffer in sync with what the console will display.
  fb_.SetPixels(cmd.dst, YuvToRgbScaled(UnpackCscsPayload(cmd.payload, cmd.src_w, cmd.src_h,
                                                          cmd.depth),
                                        cmd.dst.w, cmd.dst.h));
  damage_.Subtract(cmd.dst);
  log_.RecordXRequest(now, XVideoFrameBytes(cmd.dst.w, cmd.dst.h));
  if (tracker_ != nullptr) {
    // CSCS bypasses the encoder; the fb already holds the converted pixels.
    tracker_->SyncRect(fb_, cmd.dst);
  }
  QueueCommand(std::move(cmd));
  Flush();
}

void ServerSession::SendAudio(uint32_t sample_rate, std::span<const uint8_t> samples) {
  if (!attached()) {
    return;
  }
  AudioMsg msg;
  msg.sample_rate = sample_rate;
  msg.samples.assign(samples.begin(), samples.end());
  server_->Transmit(console_, id_, std::move(msg), 0);
}

void ServerSession::Flush() {
  if (ShouldDeferFlush()) {
    // Under pressure the damage region keeps absorbing updates (overlapping dirt merges
    // for free) and is encoded once, when the queue drains — against the same shadow
    // frame, so the bytes that eventually go out are exactly what an unpaced flush of the
    // final state would have sent. Anything already encoded still goes now: those
    // commands are committed to the shadow and must not be reordered around.
    damage_.Coalesce(8);
    ++coalesced_flushes_;
    ++server_->pacing_stats().coalesced_flushes;
    ArmPaceRetry();
    TransmitPending();
    return;
  }
  EncodeDamageToPending();
  TransmitPending();
}

bool ServerSession::ShouldStageVideo() const {
  const PacingOptions& p = server_->options().pacing;
  return p.enabled && p.adapt && attached() &&
         server_->tx_queue().PaceBacklog(video_flow()) > p.pace_backlog_watermark;
}

bool ServerSession::ShouldDeferFlush() const {
  const PacingOptions& p = server_->options().pacing;
  if (!p.enabled || !p.adapt || !attached() || damage_.empty()) {
    return false;
  }
  const TransmitQueue& tx = server_->tx_queue();
  return tx.depth(id_) > p.coalesce_watermark ||
         tx.PaceBacklog(interactive_flow()) > p.pace_backlog_watermark;
}

void ServerSession::ArmPaceRetry() {
  if (pace_retry_armed_) {
    return;
  }
  const PacingOptions& p = server_->options().pacing;
  const TransmitQueue& tx = server_->tx_queue();
  const SimTime now = server_->simulator()->now();
  SimTime at = std::numeric_limits<SimTime>::max();
  if (staged_video_.has_value()) {
    at = std::min(at, now + std::max<SimDuration>(
                           tx.PaceBacklog(video_flow()) - p.pace_backlog_watermark, 0));
  }
  if (!damage_.empty()) {
    at = std::min(at, now + std::max<SimDuration>(
                           tx.PaceBacklog(interactive_flow()) - p.pace_backlog_watermark, 0));
  }
  if (at == std::numeric_limits<SimTime>::max()) {
    return;
  }
  // Clamped away from `now`: a depth-triggered deferral has no flow ETA, and retrying in
  // the same instant would spin. Each retry either makes progress or re-arms >= 1ms out.
  at = std::max(at, now + kMillisecond);
  pace_retry_armed_ = true;
  server_->SchedulePaceRetry(id_, at);
}

void ServerSession::OnPaceRetry() {
  pace_retry_armed_ = false;
  if (!attached()) {
    // Whatever was deferred was for a console this session no longer has; the staged
    // frame (if any) was already dropped by ClearPacedState.
    staged_video_.reset();
    return;
  }
  if (staged_video_.has_value() && !ShouldStageVideo()) {
    CscsCommand cmd = std::move(*staged_video_);
    staged_video_.reset();
    TransmitVideoFrame(std::move(cmd));
  }
  if (!damage_.empty()) {
    Flush();  // re-checks deferral and re-arms if still over the watermark
  }
  if ((staged_video_.has_value() || !damage_.empty()) && !pace_retry_armed_) {
    ArmPaceRetry();
  }
}

void ServerSession::RepaintAll() {
  damage_.Clear();
  damage_.Add(fb_.bounds());
}

void ServerSession::ForceRepaintAll() {
  if (tracker_ != nullptr) {
    tracker_->Invalidate();
  }
  RepaintAll();
}

void ServerSession::QueueCommand(DisplayCommand cmd) { pending_.push_back(std::move(cmd)); }

void ServerSession::EncodeDamageToPending() {
  if (damage_.empty()) {
    return;
  }
  damage_.Coalesce(64);
  Region refined;
  const Region* to_encode = &damage_;
  if (tracker_ != nullptr) {
    // Trim the damage to what actually differs from the last-transmitted frame, salvaging
    // large vertical scrolls as COPY commands. The scroll COPYs must precede the commands
    // encoded from the refined residual, which diffs against the post-copy display state.
    std::vector<DisplayCommand> scroll_cmds;
    refined = tracker_->Refine(fb_, damage_, encoder_.options().scroll_max_shift,
                               &scroll_cmds);
    for (auto& cmd : scroll_cmds) {
      QueueCommand(std::move(cmd));
    }
    to_encode = &refined;
  }
  if (!to_encode->empty()) {
    std::vector<DisplayCommand> cmds = pool_ != nullptr
                                           ? pool_->EncodeDamage(fb_, *to_encode)
                                           : encoder_.EncodeDamage(fb_, *to_encode);
    int64_t pixels = 0;
    for (auto& cmd : cmds) {
      pixels += AffectedPixels(cmd);
      pending_.push_back(std::move(cmd));
    }
    encode_time_ += server_->options().cpu.EncodeCost(pixels, static_cast<int>(cmds.size()));
  }
  damage_.Clear();
}

void ServerSession::TransmitPending() {
  const SimTime now = server_->simulator()->now();
  Encoder::Accumulate(pending_, encode_stats_);
  for (DisplayCommand& cmd : pending_) {
    const size_t bytes = WireSize(cmd);
    log_.RecordCommand(now, cmd);
    ++commands_sent_;
    bytes_sent_ += static_cast<int64_t>(bytes);
    const SimDuration wire_cost = server_->options().cpu.WireCost(static_cast<int64_t>(bytes));
    wire_time_ += wire_cost;
    if (attached()) {
      // CSCS frames bill the video library's flow; every other display command is the
      // display server's interactive traffic. With pacing off the transmit queue has no
      // pacer for either id and the flow tag is inert.
      const uint64_t flow =
          std::holds_alternative<CscsCommand>(cmd) ? video_flow() : interactive_flow();
      std::visit(
          [&](auto& body) {
            server_->Transmit(console_, id_, std::move(body), wire_cost, flow);
          },
          cmd);
    }
  }
  pending_.clear();
}

}  // namespace slim
