// Server-side processing cost model.
//
// Calibrated against a ~300 MHz UltraSPARC-II running the paper's modified X-server. These
// constants drive (a) the Table 4 stand-alone results — the x11perf-style figure of merit
// with and without wire transmission and the 550 us echo path — and (b) the Section 5.5
// claim that SLIM encoding adds only ~1.7% to the X-server's execution time.

#ifndef SRC_SERVER_CPU_MODEL_H_
#define SRC_SERVER_CPU_MODEL_H_

#include <cstdint>

#include "src/util/time.h"

namespace slim {

struct ServerCpuModel {
  // Request dispatch: protocol parsing, clipping, GC validation per drawing request.
  SimDuration per_request = Microseconds(12);
  // Software rasterization into the virtual framebuffer.
  double render_ns_per_pixel = 6.0;
  double render_ns_per_glyph = 900.0;
  // Screen-to-screen copies move words without rasterizing: much cheaper per pixel.
  double copy_ns_per_pixel = 1.5;
  // SLIM virtual device driver: damage analysis and command generation.
  SimDuration encode_per_command = Microseconds(3);
  double encode_ns_per_pixel = 1.2;
  // Network transmission CPU cost: a fixed per-send cost (socket call, header build,
  // driver handoff) plus a per-byte cost (copy + checksum). This is what x11perf loses when
  // display data actually goes out on the IF (3.834 vs 7.505 Xmarks).
  SimDuration per_send = Microseconds(45);
  double wire_ns_per_byte = 70.0;
  // Input event delivery to the application (device driver + event queue).
  SimDuration input_dispatch = Microseconds(80);

  SimDuration RenderCost(int64_t pixels, int glyphs = 0) const {
    return per_request +
           static_cast<SimDuration>(render_ns_per_pixel * static_cast<double>(pixels)) +
           static_cast<SimDuration>(render_ns_per_glyph * glyphs);
  }
  SimDuration CopyCost(int64_t pixels) const {
    return per_request +
           static_cast<SimDuration>(copy_ns_per_pixel * static_cast<double>(pixels));
  }
  SimDuration EncodeCost(int64_t pixels, int commands) const {
    return encode_per_command * commands +
           static_cast<SimDuration>(encode_ns_per_pixel * static_cast<double>(pixels));
  }
  SimDuration WireCost(int64_t bytes) const {
    return per_send + static_cast<SimDuration>(wire_ns_per_byte * static_cast<double>(bytes));
  }
};

}  // namespace slim

#endif  // SRC_SERVER_CPU_MODEL_H_
