// Session checkpointing: a complete ServerSession serialized to a versioned blob.
//
// The paper's signature property (Section 5.4) is that a session is pure server state —
// the console holds nothing worth saving. A checkpoint makes that property mechanical: it
// captures everything a SLIM server knows about one session (true framebuffer, the damage
// tracker's shadow frame and row hashes, pending damage, pacing/grant state, lifecycle
// state, CPU/byte counters, the send-seq watermark toward its console) into one
// length-prefixed byte blob that any other server in the pool can restore bit-identically.
// Migration (src/server/migration.h) moves these blobs between servers; crash failover
// replays the most recent one on a warm standby.
//
// Format (all little-endian): u32 magic "SLCK", u32 version, u64 body length, body. The
// decoder rejects version mismatches, truncated bodies, and geometry that disagrees with
// the pixel payload — a corrupted blob yields nullopt, never a half-restored session.

#ifndef SRC_SERVER_CHECKPOINT_H_
#define SRC_SERVER_CHECKPOINT_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/fb/framebuffer.h"
#include "src/fb/geometry.h"
#include "src/util/time.h"

namespace slim {

constexpr uint32_t kCheckpointMagic = 0x534C434Bu;  // "SLCK"
constexpr uint32_t kCheckpointVersion = 1;

// Per-command-type encoder totals, mirroring EncodeStats (slot 0 unused, 1..5 = SET,
// BITMAP, FILL, COPY, CSCS). Duplicated here rather than including the codec header so
// the checkpoint format is self-describing.
struct CheckpointEncodeStats {
  int64_t commands = 0;
  int64_t wire_bytes = 0;
  int64_t uncompressed_bytes = 0;
  int64_t pixels = 0;
  bool operator==(const CheckpointEncodeStats&) const = default;
};

// The decoded, in-memory form of one session checkpoint.
struct SessionCheckpoint {
  // Identity (on the source server; the restoring server allocates its own session id).
  uint32_t origin_session = 0;
  uint64_t card_id = 0;
  uint8_t lifecycle_state = 0;  // SessionState: 0 = detached, 1 = attached
  // Highest transport seq the source had assigned toward its attached console. Restored
  // as a floor on the destination so the migrated session's seq space stays monotonic
  // across the pool even though consoles key their guards per server node.
  uint64_t console_send_seq = 0;

  // Framebuffer (the round-trip contract: restore must reproduce these bits exactly).
  int32_t width = 0;
  int32_t height = 0;
  std::vector<Pixel> fb_pixels;

  // Damage-tracker shadow state; absent when the source ran without a tracker.
  bool tracker_present = false;
  bool tracker_valid = false;
  std::vector<Pixel> shadow_pixels;       // width * height when present
  std::vector<uint64_t> shadow_row_hashes;  // height entries when present

  // Not-yet-encoded damage at capture time (pending commands are flushed pre-capture).
  std::vector<Rect> damage;

  // Pacing/grant state (Section 7). Grants are per-console and are cleared again on the
  // next attach; they travel so a restored-but-not-yet-reattached session reads back
  // exactly as it was.
  int64_t interactive_grant_bps = 0;
  int64_t video_grant_bps = 0;
  int64_t link_total_bps = 0;
  int64_t video_deferred = 0;
  int64_t video_dropped = 0;
  int64_t coalesced_flushes = 0;

  // Accounting watermarks.
  int64_t commands_sent = 0;
  int64_t bytes_sent = 0;
  SimDuration render_time = 0;
  SimDuration encode_time = 0;
  SimDuration wire_time = 0;
  CheckpointEncodeStats encode_stats[6] = {};

  bool operator==(const SessionCheckpoint&) const = default;

  int64_t fb_bytes() const {
    return static_cast<int64_t>(width) * height * static_cast<int64_t>(sizeof(Pixel));
  }
};

// Serializes to the versioned wire form described above.
std::vector<uint8_t> EncodeCheckpoint(const SessionCheckpoint& ckpt);

// Parses a blob. Returns nullopt on a version mismatch, truncation, a body length that
// disagrees with the buffer, or internal inconsistency (pixel counts vs geometry, an
// unreasonable rect count). Never crashes on hostile input (fuzzed in migration_test).
std::optional<SessionCheckpoint> DecodeCheckpoint(std::span<const uint8_t> blob);

}  // namespace slim

#endif  // SRC_SERVER_CHECKPOINT_H_
