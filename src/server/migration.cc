#include "src/server/migration.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/obs/latency_audit.h"
#include "src/obs/metrics.h"
#include "src/server/slim_server.h"
#include "src/util/check.h"

namespace slim {

namespace {

// Migration bulk-transfer flows live far above the session flow id space
// (session_id * 2 + {1,2}), so a pacer for a checkpoint transfer can never collide with a
// session's interactive or video flow.
constexpr uint64_t kMigrationFlowBit = 1ull << 62;

}  // namespace

// --- ServerPool ---

void ServerPool::Register(SlimServer* server, MigrationManager* manager) {
  SLIM_CHECK(server != nullptr && manager != nullptr);
  for (const Entry& e : entries_) {
    SLIM_CHECK(e.server != server);
  }
  entries_.push_back(Entry{server, manager, /*alive=*/true});
  servers_.push_back(server);
}

SlimServer* ServerPool::owner(uint64_t card_id) const {
  const auto it = owner_.find(card_id);
  return it == owner_.end() ? nullptr : it->second;
}

void ServerPool::SetOwner(uint64_t card_id, SlimServer* server) {
  owner_[card_id] = server;
}

void ServerPool::ClearOwnerIf(uint64_t card_id, SlimServer* server) {
  const auto it = owner_.find(card_id);
  if (it != owner_.end() && it->second == server) {
    owner_.erase(it);
  }
}

bool ServerPool::alive(const SlimServer* server) const {
  for (const Entry& e : entries_) {
    if (e.server == server) {
      return e.alive;
    }
  }
  return false;
}

void ServerPool::KillServer(SlimServer* server) {
  for (Entry& e : entries_) {
    if (e.server == server) {
      e.alive = false;
      server->Kill();
      return;
    }
  }
}

uint64_t ServerPool::IssueCard(uint32_t user_number) {
  SLIM_CHECK(!entries_.empty());
  uint64_t card_id = 0;
  for (const Entry& e : entries_) {
    const uint64_t issued = e.server->auth().IssueCard(user_number);
    SLIM_CHECK(card_id == 0 || issued == card_id);  // shared site key: one id everywhere
    card_id = issued;
  }
  return card_id;
}

bool ServerPool::RequestMigration(uint64_t card_id, SlimServer* dest) {
  SlimServer* src = owner(card_id);
  if (src == nullptr || src == dest || !alive(src)) {
    return false;
  }
  MigrationManager* manager = ManagerFor(src);
  if (manager == nullptr || !manager->StartMigration(card_id, dest)) {
    ClearOwnerIf(card_id, src);  // stale directory entry: the owner has nothing to move
    return false;
  }
  return true;
}

SlimServer* ServerPool::ServerForNode(NodeId node) const {
  for (const Entry& e : entries_) {
    if (e.server->node() == node) {
      return e.server;
    }
  }
  return nullptr;
}

MigrationManager* ServerPool::ManagerFor(const SlimServer* server) const {
  for (const Entry& e : entries_) {
    if (e.server == server) {
      return e.manager;
    }
  }
  return nullptr;
}

SimTime ServerPool::TakeBlackoutStart(uint64_t card_id) {
  const auto it = blackout_start_.find(card_id);
  if (it == blackout_start_.end()) {
    return -1;
  }
  const SimTime t = it->second;
  blackout_start_.erase(it);
  return t;
}

// --- MigrationManager ---

MigrationManager::MigrationManager(SlimServer* server, ServerPool* pool,
                                   MigrationOptions options)
    : server_(server), pool_(pool), options_(options) {
  SLIM_CHECK(server != nullptr && pool != nullptr);
  SLIM_CHECK(options_.chunk_bytes > 0);
}

uint64_t MigrationManager::NewEpoch() {
  // Globally unique without coordination: the server's node id in the high bits, a local
  // counter in the low. Stays clear of kMigrationFlowBit so epoch ^ flow-bit is reversible.
  return (static_cast<uint64_t>(server_->node()) << 40) | ++epoch_counter_;
}

SessionCheckpoint MigrationManager::Capture(uint64_t card_id, ServerSession& session) {
  SessionCheckpoint ckpt;
  session.CaptureCheckpoint(&ckpt);
  ckpt.card_id = card_id;
  ckpt.lifecycle_state =
      server_->session_state(session.id()) == SessionState::kAttached ? 1 : 0;
  ckpt.console_send_seq =
      session.attached() ? server_->endpoint().send_seq(session.console()) : 0;
  ++checkpoint_stats_.captures;
  return ckpt;
}

void MigrationManager::SendRound(Outgoing& out, MigratePurpose purpose) {
  const uint32_t chunk_count = static_cast<uint32_t>(
      (out.blob.size() + options_.chunk_bytes - 1) / options_.chunk_bytes);
  MigrateBeginMsg begin;
  begin.epoch = out.epoch;
  begin.card_id = out.card_id;
  begin.origin_session = out.origin_session;
  begin.round = out.round;
  begin.purpose = purpose;
  begin.chunk_count = chunk_count;
  begin.total_bytes = out.blob.size();
  // session_id 0 on every migration message: control-plane traffic must never be caught
  // by a PurgeSession for the migrating session.
  server_->Transmit(out.peer, 0, begin, 0, out.flow);
  ++stats_.begins_sent;
  for (uint32_t i = 0; i < chunk_count; ++i) {
    const size_t offset = static_cast<size_t>(i) * options_.chunk_bytes;
    const size_t len = std::min(options_.chunk_bytes, out.blob.size() - offset);
    CheckpointChunkMsg chunk;
    chunk.epoch = out.epoch;
    chunk.round = out.round;
    chunk.index = i;
    chunk.count = chunk_count;
    chunk.offset = offset;
    chunk.data.assign(out.blob.begin() + static_cast<ptrdiff_t>(offset),
                      out.blob.begin() + static_cast<ptrdiff_t>(offset + len));
    server_->Transmit(out.peer, 0, std::move(chunk), 0, out.flow);
    ++stats_.chunks_sent;
    stats_.chunk_bytes_sent += static_cast<int64_t>(len);
  }
}

bool MigrationManager::StartMigration(uint64_t card_id, SlimServer* dest) {
  SLIM_CHECK(dest != nullptr && dest != server_);
  ServerSession* session = server_->SessionForCard(card_id);
  if (session == nullptr) {
    return false;
  }
  // One outgoing attempt per card: a newer request supersedes an older one.
  for (const auto& [epoch, out] : outgoing_) {
    if (out.card_id == card_id) {
      AbortOutgoing(epoch, MigrateAbortReason::kSuperseded, /*notify_peer=*/true);
      ++stats_.superseded;
      break;
    }
  }

  Outgoing out;
  out.epoch = NewEpoch();
  out.card_id = card_id;
  out.origin_session = session->id();
  out.dest = dest;
  out.peer = dest->node();
  out.round = 0;
  out.blob = EncodeCheckpoint(Capture(card_id, *session));
  checkpoint_stats_.capture_bytes += static_cast<int64_t>(out.blob.size());
  out.flow = kMigrationFlowBit ^ out.epoch;
  if (options_.rate_bps > 0) {
    server_->tx_->SetFlowRate(out.flow, options_.rate_bps, options_.burst_window);
  }
  const uint64_t epoch = out.epoch;
  outgoing_[epoch] = std::move(out);
  SendRound(outgoing_[epoch], MigratePurpose::kHandoff);
  ArmSourceTimer(epoch);
  ++stats_.started;
  return true;
}

void MigrationManager::ArmSourceTimer(uint64_t epoch) {
  const auto it = outgoing_.find(epoch);
  if (it == outgoing_.end()) {
    return;
  }
  if (it->second.timer != kInvalidEventId) {
    server_->simulator()->Cancel(it->second.timer);
  }
  // The ack cannot arrive before the paced blob has even drained: budget the transfer
  // time at the configured rate on top of the ack window, or a multi-megabyte checkpoint
  // would be re-sent (and eventually aborted) mid-flight.
  SimDuration timeout = options_.ack_timeout;
  if (options_.rate_bps > 0) {
    timeout += static_cast<SimDuration>(
        static_cast<double>(it->second.blob.size()) * 8.0 / options_.rate_bps * kSecond);
  }
  it->second.timer = server_->simulator()->Schedule(
      timeout, [this, epoch] { OnSourceTimeout(epoch); });
}

void MigrationManager::OnSourceTimeout(uint64_t epoch) {
  const auto it = outgoing_.find(epoch);
  if (it == outgoing_.end()) {
    return;
  }
  Outgoing& out = it->second;
  out.timer = kInvalidEventId;
  ++out.retries;
  ++stats_.retries;
  if (!pool_->alive(out.dest) || out.retries > options_.max_retries) {
    // The destination is gone or unreachable: keep the session here. If it was frozen the
    // console was already released — it stays detached on this (still-owning) server until
    // the card shows up somewhere again.
    AbortOutgoing(epoch, MigrateAbortReason::kTimeout, /*notify_peer=*/true);
    return;
  }
  // Re-send the whole round. Each copy travels with fresh transport seqs, so beyond being
  // the retry it also feeds the receiver's NACK gap-detection new evidence.
  SendRound(out, MigratePurpose::kHandoff);
  ArmSourceTimer(epoch);
}

void MigrationManager::AbortOutgoing(uint64_t epoch, MigrateAbortReason reason,
                                     bool notify_peer) {
  const auto it = outgoing_.find(epoch);
  if (it == outgoing_.end()) {
    return;
  }
  Outgoing& out = it->second;
  if (out.timer != kInvalidEventId) {
    server_->simulator()->Cancel(out.timer);
  }
  server_->tx_->ReleaseFlow(out.flow);
  if (notify_peer) {
    server_->Transmit(out.peer, 0, MigrateAbortMsg{epoch, reason}, 0);
  }
  ++stats_.aborted;
  outgoing_.erase(it);
}

void MigrationManager::CommitOutgoing(uint64_t epoch) {
  const auto it = outgoing_.find(epoch);
  if (it == outgoing_.end()) {
    return;
  }
  Outgoing out = std::move(it->second);
  outgoing_.erase(it);
  if (out.timer != kInvalidEventId) {
    server_->simulator()->Cancel(out.timer);
  }
  server_->tx_->ReleaseFlow(out.flow);
  // The commit point: ownership changes hands exactly here.
  committed_.insert(epoch);
  pool_->SetOwner(out.card_id, out.dest);
  server_->DiscardSession(out.origin_session);
  server_->Transmit(out.peer, 0, MigrateCommitMsg{epoch, out.round, /*phase=*/2}, 0);
  ++stats_.phase2_sent;
  ++stats_.committed;
}

// --- Destination side ---

void MigrationManager::ResetIncomingRound(Incoming& in, const MigrateBeginMsg& msg,
                                          NodeId from) {
  in.from = from;
  in.card_id = msg.card_id;
  in.origin_session = msg.origin_session;
  in.purpose = msg.purpose;
  in.round = msg.round;
  in.begin_seen = true;
  in.chunk_count = msg.chunk_count;
  in.total_bytes = msg.total_bytes;
  in.blob.assign(msg.total_bytes, 0);
  in.got.assign(msg.chunk_count, false);
  in.received = 0;
  in.staged.reset();
  in.retries = 0;
  if (in.timer != kInvalidEventId) {
    server_->simulator()->Cancel(in.timer);
    in.timer = kInvalidEventId;
  }
}

void MigrationManager::OnMigrateBegin(const MigrateBeginMsg& msg, NodeId from) {
  if (done_.contains(msg.epoch)) {
    return;
  }
  Incoming& in = incoming_[msg.epoch];
  if (in.begin_seen && msg.round < in.round) {
    return;  // a stale round's retry
  }
  if (!in.begin_seen || msg.round > in.round) {
    // First Begin for this round: (re)size the reassembly buffer, then drain any chunks
    // that raced ahead of it.
    std::map<uint32_t, CheckpointChunkMsg> early = std::move(in.early_chunks);
    ResetIncomingRound(in, msg, from);
    for (auto& [index, chunk] : early) {
      if (chunk.round == in.round) {
        ApplyChunk(in, chunk);
      }
    }
  }
  if (in.begin_seen && in.chunk_count > 0 && in.received == in.chunk_count) {
    // Re-announced round whose chunks all arrived already (a retry after our phase-1 was
    // lost): re-complete, which re-sends phase-1.
    CompleteIncoming(msg.epoch);
  }
  if (in.begin_seen && in.chunk_count == 0) {
    CompleteIncoming(msg.epoch);  // degenerate empty blob (never produced, but total)
  }
  const auto it = incoming_.find(msg.epoch);
  if (it != incoming_.end() && it->second.staged == nullptr &&
      it->second.purpose == MigratePurpose::kStandby) {
    // Fire-and-forget rounds have no source retry driving them: arm the quiet-period GC
    // so a chunk-lossy round is reclaimed instead of leaking per tick.
    ArmDestTimer(msg.epoch);
  }
}

void MigrationManager::ApplyChunk(Incoming& in, const CheckpointChunkMsg& msg) {
  if (msg.count != in.chunk_count || msg.index >= in.chunk_count ||
      msg.offset + msg.data.size() > in.total_bytes) {
    return;  // inconsistent with this round's Begin: drop, the blob decode would reject it
  }
  if (in.got[msg.index]) {
    return;  // duplicate
  }
  std::memcpy(in.blob.data() + msg.offset, msg.data.data(), msg.data.size());
  in.got[msg.index] = true;
  ++in.received;
  ++stats_.chunks_received;
}

void MigrationManager::OnCheckpointChunk(const CheckpointChunkMsg& msg, NodeId from) {
  if (done_.contains(msg.epoch)) {
    return;
  }
  Incoming& in = incoming_[msg.epoch];
  if (in.begin_seen && msg.round < in.round) {
    return;
  }
  if (!in.begin_seen || msg.round > in.round) {
    // No Begin for this round yet (delivery raced around a replayed gap): hold the chunk
    // until the Begin supplies the buffer dimensions.
    if (in.from == kInvalidNode) {
      in.from = from;
    }
    auto& early = in.early_chunks;
    // Drop stashed chunks of older rounds the moment a newer round's chunk appears.
    for (auto it = early.begin(); it != early.end();) {
      it = it->second.round < msg.round ? early.erase(it) : std::next(it);
    }
    early[msg.index] = msg;
    if (!in.begin_seen) {
      // No Begin yet: if one never arrives (lost and never retried — a standby round),
      // the quiet-period GC reclaims this orphan.
      ArmDestTimer(msg.epoch);
    }
    return;
  }
  ApplyChunk(in, msg);
  if (in.chunk_count > 0 && in.received == in.chunk_count) {
    CompleteIncoming(msg.epoch);
  }
}

void MigrationManager::CompleteIncoming(uint64_t epoch) {
  const auto it = incoming_.find(epoch);
  if (it == incoming_.end()) {
    return;
  }
  Incoming& in = it->second;
  if (in.purpose == MigratePurpose::kStandby) {
    // Warm replication: store the blob, no handshake. Decode up front so a corrupt blob
    // is counted now, not at the worst possible moment (failover).
    if (DecodeCheckpoint(in.blob).has_value()) {
      warm_[in.card_id] = std::move(in.blob);
      ++stats_.standby_stored;
    } else {
      ++checkpoint_stats_.decode_failures;
    }
    done_.insert(epoch);
    incoming_.erase(it);
    return;
  }
  if (in.staged == nullptr) {
    std::optional<SessionCheckpoint> ckpt = DecodeCheckpoint(in.blob);
    if (!ckpt.has_value()) {
      ++checkpoint_stats_.decode_failures;
      server_->Transmit(in.from, 0,
                        MigrateAbortMsg{epoch, MigrateAbortReason::kBadCheckpoint}, 0);
      ++stats_.aborted;
      done_.insert(epoch);
      incoming_.erase(it);
      return;
    }
    in.staged = server_->BuildStagedSession(*ckpt);
    in.staged_seq_floor = ckpt->console_send_seq;
    ++checkpoint_stats_.restores;
    ++stats_.staged;
  }
  SendPhase1(epoch);
  ArmDestTimer(epoch);
}

void MigrationManager::SendPhase1(uint64_t epoch) {
  const auto it = incoming_.find(epoch);
  if (it == incoming_.end()) {
    return;
  }
  server_->Transmit(it->second.from, 0,
                    MigrateCommitMsg{epoch, it->second.round, /*phase=*/1}, 0);
  ++stats_.phase1_sent;
}

void MigrationManager::ArmDestTimer(uint64_t epoch) {
  const auto it = incoming_.find(epoch);
  if (it == incoming_.end()) {
    return;
  }
  if (it->second.timer != kInvalidEventId) {
    server_->simulator()->Cancel(it->second.timer);
  }
  // Mirror of the source timer's budget: while a round is still reassembling, its chunks
  // are draining through the source's paced flow, so a flat ack window would garbage-
  // collect a perfectly healthy multi-megabyte transfer mid-flight. Both servers run the
  // same MigrationOptions, so the source's configured rate prices the wait here too.
  SimDuration timeout = options_.ack_timeout;
  if (options_.rate_bps > 0 && it->second.received < it->second.chunk_count) {
    timeout += static_cast<SimDuration>(static_cast<double>(it->second.total_bytes) * 8.0 /
                                        options_.rate_bps * kSecond);
  }
  it->second.timer = server_->simulator()->Schedule(
      timeout, [this, epoch] { OnDestTimeout(epoch); });
}

void MigrationManager::OnDestTimeout(uint64_t epoch) {
  const auto it = incoming_.find(epoch);
  if (it == incoming_.end()) {
    return;
  }
  Incoming& in = it->second;
  in.timer = kInvalidEventId;
  if (in.staged == nullptr) {
    // An incomplete reassembly went quiet. Handoffs are driven by the source's own retry
    // timer, so keep waiting while the source lives; everything else — standby rounds
    // (the next tick re-replicates from scratch), chunk-only orphans whose Begin died,
    // and any transfer from a dead source — is dropped so it cannot leak or read as
    // in-flight forever.
    SlimServer* src = pool_->ServerForNode(in.from);
    if (src == nullptr || !pool_->alive(src) || !in.begin_seen ||
        in.purpose == MigratePurpose::kStandby) {
      // A chunk-only orphan from a live source is dropped WITHOUT a tombstone: its Begin
      // was lost but the source is still retrying it, and the retry must be able to
      // restart the round under the same epoch.
      const bool live_orphan = src != nullptr && pool_->alive(src) && !in.begin_seen;
      DropIncoming(epoch, /*tombstone=*/!live_orphan);
    }
    return;
  }
  ++in.retries;
  ++stats_.retries;
  SlimServer* source = pool_->ServerForNode(in.from);
  if (in.retries > options_.max_retries && (source == nullptr || !pool_->alive(source))) {
    // The source died after we staged (maybe after it committed — its phase-2 will never
    // come). Nobody else can own the session, and our staged copy is the freshest state
    // in the pool: adopt it. If the source had NOT committed this would double-own — but
    // a live source either answers or aborts, so adoption only triggers on a dead one.
    if (source != nullptr) {
      pool_->ClearOwnerIf(in.card_id, source);
    }
    ++stats_.adoptions;
    InstallIncoming(epoch);
    return;
  }
  // Keep asking. The destination never unilaterally drops a staged handoff while the
  // source lives: the source's phase-2 or abort is the only resolution (see migration.h).
  SendPhase1(epoch);
  ArmDestTimer(epoch);
}

void MigrationManager::InstallIncoming(uint64_t epoch) {
  const auto it = incoming_.find(epoch);
  if (it == incoming_.end() || it->second.staged == nullptr) {
    return;
  }
  Incoming in = std::move(it->second);
  incoming_.erase(it);
  done_.insert(epoch);
  if (in.timer != kInvalidEventId) {
    server_->simulator()->Cancel(in.timer);
  }
  seq_floor_[in.card_id] = in.staged_seq_floor;
  ServerSession& session = server_->InstallSession(in.card_id, std::move(in.staged));
  pool_->SetOwner(in.card_id, server_);
  ++stats_.installs;
  const auto waiting = pending_attach_.find(in.card_id);
  if (waiting != pending_attach_.end()) {
    const NodeId console = waiting->second;
    pending_attach_.erase(waiting);
    server_->AttachSessionToConsole(session, console);
  }
}

void MigrationManager::DropIncoming(uint64_t epoch, bool tombstone) {
  const auto it = incoming_.find(epoch);
  if (it == incoming_.end()) {
    return;
  }
  if (it->second.timer != kInvalidEventId) {
    server_->simulator()->Cancel(it->second.timer);
  }
  pending_attach_.erase(it->second.card_id);
  if (tombstone) {
    done_.insert(epoch);
  }
  incoming_.erase(it);
}

// --- Commit / abort dispatch ---

void MigrationManager::OnMigrateCommit(const MigrateCommitMsg& msg, NodeId from) {
  if (msg.phase == 2) {
    // Destination: the source released its copy — go live.
    InstallIncoming(msg.epoch);
    return;
  }
  // Source: destination staged round `msg.round`.
  if (committed_.contains(msg.epoch)) {
    // Our phase-2 was lost; the tombstone re-acks forever.
    server_->Transmit(from, 0, MigrateCommitMsg{msg.epoch, msg.round, /*phase=*/2}, 0);
    ++stats_.phase2_sent;
    return;
  }
  const auto it = outgoing_.find(msg.epoch);
  if (it == outgoing_.end() || msg.round != it->second.round) {
    return;  // unknown epoch or an earlier round's ack: the current round is still in flight
  }
  Outgoing& out = it->second;
  out.retries = 0;
  if (!out.frozen) {
    ServerSession* session = server_->FindSession(out.origin_session);
    if (session == nullptr) {
      // Evicted from under the migration: nothing left to move.
      AbortOutgoing(msg.epoch, MigrateAbortReason::kShutdown, /*notify_peer=*/true);
      return;
    }
    // Pre-copy loop: while the session keeps changing and the round budget lasts, send
    // another delta-as-full-copy round with the source still serving.
    std::vector<uint8_t> blob = EncodeCheckpoint(Capture(out.card_id, *session));
    checkpoint_stats_.capture_bytes += static_cast<int64_t>(blob.size());
    if (blob != out.blob && out.round + 1 < options_.max_precopy_rounds) {
      out.blob = std::move(blob);
      ++out.round;
      ++stats_.rounds_sent;
      SendRound(out, MigratePurpose::kHandoff);
      ArmSourceTimer(msg.epoch);
      return;
    }
    // Freeze: stop serving (the old console gets its blank notice through the ordinary
    // release path) and ship the final state. The blackout clock starts here.
    if (session->attached()) {
      pool_->NoteBlackoutStart(out.card_id, server_->simulator()->now());
    }
    server_->DetachSession(*session, ReleaseReason::kMigrated);
    std::vector<uint8_t> final_blob = EncodeCheckpoint(Capture(out.card_id, *session));
    checkpoint_stats_.capture_bytes += static_cast<int64_t>(final_blob.size());
    out.frozen = true;
    if (final_blob != out.blob) {
      out.blob = std::move(final_blob);
      ++out.round;
      ++stats_.rounds_sent;
      SendRound(out, MigratePurpose::kHandoff);
      ArmSourceTimer(msg.epoch);
      return;
    }
    // The staged round already IS the final state (the session was idle and detached
    // cleanly): commit against it.
  }
  CommitOutgoing(msg.epoch);
}

void MigrationManager::OnMigrateAbort(const MigrateAbortMsg& msg, NodeId /*from*/) {
  if (committed_.contains(msg.epoch)) {
    return;  // too late to abort: ownership moved, the tombstone answers phase-1 retries
  }
  if (outgoing_.contains(msg.epoch)) {
    AbortOutgoing(msg.epoch, msg.reason, /*notify_peer=*/false);
    return;
  }
  if (incoming_.contains(msg.epoch)) {
    DropIncoming(msg.epoch);
    ++stats_.aborted;
  }
}

// --- Attach-path hooks ---

MigrationManager::AdoptResult MigrationManager::AdoptCard(uint64_t card_id,
                                                          NodeId console) {
  AdoptResult result;
  // A dead server's half-finished transfers (standby rounds the crash cut off mid-flight)
  // can never complete: drop them so they neither read as in-flight forever nor leak.
  // Staged handoffs are kept — the adoption timeout is their resolution.
  for (auto it = incoming_.begin(); it != incoming_.end();) {
    const uint64_t epoch = it->first;
    const Incoming& in = it->second;
    ++it;
    SlimServer* src = pool_->ServerForNode(in.from);
    if (in.staged == nullptr && src != nullptr && !pool_->alive(src)) {
      DropIncoming(epoch);
    }
  }
  SlimServer* card_owner = pool_->owner(card_id);
  const auto waiting = pending_attach_.find(card_id);
  if (waiting != pending_attach_.end()) {
    bool staged_here = false;
    for (const auto& [epoch, in] : incoming_) {
      staged_here = staged_here || (in.card_id == card_id && in.staged != nullptr);
    }
    if (staged_here ||
        (card_owner != nullptr && card_owner != server_ && pool_->alive(card_owner))) {
      // A pull for this card is already in flight (or staged, pending the source's
      // phase-2 / the adoption timeout): re-inserting the card must not supersede the
      // transfer, just retarget which console gets the session when it installs.
      waiting->second = console;
      result.pending = true;
      return result;
    }
    // The pull's source died (or ownership collapsed onto us) before the install: the
    // transfer can never finish. Drop its remains and fall through to failover/fresh.
    pending_attach_.erase(waiting);
    for (auto it = incoming_.begin(); it != incoming_.end();) {
      const uint64_t epoch = it->first;
      ++it;
      if (incoming_.at(epoch).card_id == card_id) {
        DropIncoming(epoch);
      }
    }
  }
  if (card_owner == server_) {
    // We are listed as owner but hold no session (it was evicted): stale entry.
    pool_->ClearOwnerIf(card_id, server_);
    card_owner = nullptr;
  }
  if (card_owner != nullptr && pool_->alive(card_owner)) {
    if (pool_->RequestMigration(card_id, server_)) {
      pending_attach_[card_id] = console;
      ++stats_.pulls_requested;
      result.pending = true;
      return result;
    }
    // RequestMigration cleared the stale entry; fall through to a fresh session.
    card_owner = pool_->owner(card_id);
  }
  const bool owner_dead = card_owner != nullptr && !pool_->alive(card_owner);
  const auto warm = warm_.find(card_id);
  if (warm != warm_.end()) {
    std::optional<SessionCheckpoint> ckpt = DecodeCheckpoint(warm->second);
    if (ckpt.has_value()) {
      // Crash failover: restore the warm copy and take ownership. The forced full
      // repaint on attach repairs whatever the standby lag cost the console.
      if (card_owner != nullptr) {
        pool_->ClearOwnerIf(card_id, card_owner);
      }
      seq_floor_[card_id] = ckpt->console_send_seq;
      result.session = &server_->InstallSession(card_id, server_->BuildStagedSession(*ckpt));
      pool_->SetOwner(card_id, server_);
      ++checkpoint_stats_.restores;
      ++stats_.failover_restores;
      return result;
    }
    ++checkpoint_stats_.decode_failures;
    warm_.erase(warm);
  }
  if (owner_dead) {
    // The owner died and no warm copy exists: the session is lost. Reclaim the card for a
    // fresh session rather than leaving the user locked out.
    pool_->ClearOwnerIf(card_id, card_owner);
    ++stats_.cold_starts;
  }
  return result;  // caller creates a fresh session
}

void MigrationManager::NoteLocalSession(uint64_t card_id) {
  pool_->SetOwner(card_id, server_);
}

void MigrationManager::OnSessionAttached(uint64_t card_id, uint32_t session_id,
                                         NodeId console) {
  const auto floor = seq_floor_.find(card_id);
  if (floor != seq_floor_.end()) {
    server_->endpoint().EnsureSendSeqAtLeast(console, floor->second);
    seq_floor_.erase(floor);
  }
  const SimTime start = pool_->TakeBlackoutStart(card_id);
  if (start >= 0) {
    const SimDuration blackout = server_->simulator()->now() - start;
    stats_.blackout_last_ns = blackout;
    stats_.blackout_total_ns += blackout;
    if (LatencyAudit* audit = LatencyAudit::Global()) {
      audit->NoteMigrationBlackout(session_id, blackout, server_->simulator()->now());
    }
  }
}

bool MigrationManager::MigrationInFlight() const {
  return !outgoing_.empty() || !incoming_.empty() || !pending_attach_.empty();
}

// --- Standby replication ---

void MigrationManager::EnableStandby(SlimServer* standby, SimDuration interval) {
  SLIM_CHECK(standby != nullptr && standby != server_ && interval > 0);
  standby_ = standby;
  standby_interval_ = interval;
  standby_flow_ = kMigrationFlowBit | 1;
  if (options_.rate_bps > 0) {
    server_->tx_->SetFlowRate(standby_flow_, options_.rate_bps, options_.burst_window);
  }
  server_->simulator()->ScheduleDaemon(standby_interval_, [this] { StandbyTick(); });
}

void MigrationManager::StandbyTick() {
  if (!pool_->alive(server_)) {
    return;  // killed servers stop replicating (and stop re-arming the tick)
  }
  for (const auto& [card_id, session_id] : server_->card_to_session_) {
    if (ServerSession* session = server_->FindSession(session_id)) {
      SendStandbyCheckpoint(card_id, *session);
    }
  }
  server_->simulator()->ScheduleDaemon(standby_interval_, [this] { StandbyTick(); });
}

void MigrationManager::SendStandbyCheckpoint(uint64_t card_id, ServerSession& session) {
  // Reuses the Outgoing chunking machinery for the send, but keeps no state: standby
  // replication is fire-and-forget, refreshed wholesale on the next tick.
  Outgoing out;
  out.epoch = NewEpoch();
  out.card_id = card_id;
  out.origin_session = session.id();
  out.peer = standby_->node();
  out.round = 0;
  out.blob = EncodeCheckpoint(Capture(card_id, session));
  checkpoint_stats_.capture_bytes += static_cast<int64_t>(out.blob.size());
  out.flow = standby_flow_;
  SendRound(out, MigratePurpose::kStandby);
  ++stats_.standby_sent;
}

bool MigrationManager::RegisterMetrics(MetricRegistry* registry,
                                       const std::string& prefix) {
  SLIM_CHECK(registry != nullptr);
  const std::string mp = prefix + ".migration";
  bool ok = registry->BindCounter(mp + ".started", &stats_.started);
  ok = registry->BindCounter(mp + ".committed", &stats_.committed) && ok;
  ok = registry->BindCounter(mp + ".aborted", &stats_.aborted) && ok;
  ok = registry->BindCounter(mp + ".superseded", &stats_.superseded) && ok;
  ok = registry->BindCounter(mp + ".rounds_sent", &stats_.rounds_sent) && ok;
  ok = registry->BindCounter(mp + ".begins_sent", &stats_.begins_sent) && ok;
  ok = registry->BindCounter(mp + ".chunks_sent", &stats_.chunks_sent) && ok;
  ok = registry->BindCounter(mp + ".chunk_bytes_sent", &stats_.chunk_bytes_sent) && ok;
  ok = registry->BindCounter(mp + ".phase2_sent", &stats_.phase2_sent) && ok;
  ok = registry->BindCounter(mp + ".retries", &stats_.retries) && ok;
  ok = registry->BindCounter(mp + ".chunks_received", &stats_.chunks_received) && ok;
  ok = registry->BindCounter(mp + ".staged", &stats_.staged) && ok;
  ok = registry->BindCounter(mp + ".phase1_sent", &stats_.phase1_sent) && ok;
  ok = registry->BindCounter(mp + ".installs", &stats_.installs) && ok;
  ok = registry->BindCounter(mp + ".pulls_requested", &stats_.pulls_requested) && ok;
  ok = registry->BindCounter(mp + ".adoptions", &stats_.adoptions) && ok;
  ok = registry->BindCounter(mp + ".standby_sent", &stats_.standby_sent) && ok;
  ok = registry->BindCounter(mp + ".standby_stored", &stats_.standby_stored) && ok;
  ok = registry->BindCounter(mp + ".failover_restores", &stats_.failover_restores) && ok;
  ok = registry->BindCounter(mp + ".cold_starts", &stats_.cold_starts) && ok;
  ok = registry->BindCounter(mp + ".blackout_last_ns", &stats_.blackout_last_ns) && ok;
  ok = registry->BindCounter(mp + ".blackout_total_ns", &stats_.blackout_total_ns) && ok;
  const std::string cp = prefix + ".checkpoint";
  ok = registry->BindCounter(cp + ".captures", &checkpoint_stats_.captures) && ok;
  ok = registry->BindCounter(cp + ".capture_bytes", &checkpoint_stats_.capture_bytes) && ok;
  ok = registry->BindCounter(cp + ".restores", &checkpoint_stats_.restores) && ok;
  ok = registry->BindCounter(cp + ".decode_failures", &checkpoint_stats_.decode_failures) &&
       ok;
  return ok;
}

}  // namespace slim
