#include "src/server/checkpoint.h"

#include <algorithm>
#include <cstring>

#include "src/codec/damage_tracker.h"
#include "src/protocol/wire.h"
#include "src/server/session.h"
#include "src/util/check.h"

namespace slim {

namespace {

// Hard ceilings the decoder enforces so a corrupt length field cannot request an absurd
// allocation: the largest session geometry anyone simulates is well under 16k x 16k, and
// pending damage is Coalesce()-bounded long before it reaches hundreds of rects.
constexpr int32_t kMaxDimension = 16384;
constexpr uint32_t kMaxDamageRects = 1u << 16;

void WritePixels(ByteWriter& w, std::span<const Pixel> pixels) {
  for (const Pixel p : pixels) {
    w.U32(p);
  }
}

bool ReadPixels(ByteReader& r, size_t n, std::vector<Pixel>* out) {
  out->resize(n);
  for (size_t i = 0; i < n; ++i) {
    (*out)[i] = r.U32();
  }
  return r.ok();
}

}  // namespace

std::vector<uint8_t> EncodeCheckpoint(const SessionCheckpoint& ckpt) {
  ByteWriter body;
  body.U32(ckpt.origin_session);
  body.U64(ckpt.card_id);
  body.U8(ckpt.lifecycle_state);
  body.U64(ckpt.console_send_seq);
  body.I32(ckpt.width);
  body.I32(ckpt.height);
  WritePixels(body, ckpt.fb_pixels);
  body.U8(ckpt.tracker_present ? 1 : 0);
  if (ckpt.tracker_present) {
    body.U8(ckpt.tracker_valid ? 1 : 0);
    for (const uint64_t h : ckpt.shadow_row_hashes) {
      body.U64(h);
    }
    WritePixels(body, ckpt.shadow_pixels);
  }
  body.U32(static_cast<uint32_t>(ckpt.damage.size()));
  for (const Rect& rect : ckpt.damage) {
    body.I32(rect.x);
    body.I32(rect.y);
    body.I32(rect.w);
    body.I32(rect.h);
  }
  body.I64(ckpt.interactive_grant_bps);
  body.I64(ckpt.video_grant_bps);
  body.I64(ckpt.link_total_bps);
  body.I64(ckpt.video_deferred);
  body.I64(ckpt.video_dropped);
  body.I64(ckpt.coalesced_flushes);
  body.I64(ckpt.commands_sent);
  body.I64(ckpt.bytes_sent);
  body.I64(ckpt.render_time);
  body.I64(ckpt.encode_time);
  body.I64(ckpt.wire_time);
  for (int t = 1; t < 6; ++t) {
    body.I64(ckpt.encode_stats[t].commands);
    body.I64(ckpt.encode_stats[t].wire_bytes);
    body.I64(ckpt.encode_stats[t].uncompressed_bytes);
    body.I64(ckpt.encode_stats[t].pixels);
  }

  ByteWriter w;
  w.U32(kCheckpointMagic);
  w.U32(kCheckpointVersion);
  w.U64(static_cast<uint64_t>(body.size()));
  w.Bytes(body.data());
  return w.Take();
}

std::optional<SessionCheckpoint> DecodeCheckpoint(std::span<const uint8_t> blob) {
  ByteReader r(blob);
  if (r.U32() != kCheckpointMagic) {
    return std::nullopt;
  }
  if (r.U32() != kCheckpointVersion) {
    // A newer (or garbage) version: refuse rather than guess at the layout. Restoring a
    // half-understood session is strictly worse than forcing a fresh one.
    return std::nullopt;
  }
  const uint64_t body_len = r.U64();
  if (!r.ok() || r.remaining() != body_len) {
    return std::nullopt;  // length-prefix and buffer must agree exactly
  }

  SessionCheckpoint ckpt;
  ckpt.origin_session = r.U32();
  ckpt.card_id = r.U64();
  ckpt.lifecycle_state = r.U8();
  ckpt.console_send_seq = r.U64();
  ckpt.width = r.I32();
  ckpt.height = r.I32();
  if (!r.ok() || ckpt.width <= 0 || ckpt.height <= 0 || ckpt.width > kMaxDimension ||
      ckpt.height > kMaxDimension || ckpt.lifecycle_state > 1) {
    return std::nullopt;
  }
  const size_t pixel_count = static_cast<size_t>(ckpt.width) * static_cast<size_t>(ckpt.height);
  // Cheap up-front bound: the framebuffer section alone needs 4 bytes per pixel; a blob
  // shorter than that lies about its geometry.
  if (r.remaining() < pixel_count * sizeof(Pixel)) {
    return std::nullopt;
  }
  if (!ReadPixels(r, pixel_count, &ckpt.fb_pixels)) {
    return std::nullopt;
  }
  ckpt.tracker_present = r.U8() != 0;
  if (ckpt.tracker_present) {
    ckpt.tracker_valid = r.U8() != 0;
    ckpt.shadow_row_hashes.resize(static_cast<size_t>(ckpt.height));
    for (auto& h : ckpt.shadow_row_hashes) {
      h = r.U64();
    }
    if (r.remaining() < pixel_count * sizeof(Pixel) ||
        !ReadPixels(r, pixel_count, &ckpt.shadow_pixels)) {
      return std::nullopt;
    }
  }
  const uint32_t rect_count = r.U32();
  if (!r.ok() || rect_count > kMaxDamageRects) {
    return std::nullopt;
  }
  ckpt.damage.resize(rect_count);
  for (Rect& rect : ckpt.damage) {
    rect.x = r.I32();
    rect.y = r.I32();
    rect.w = r.I32();
    rect.h = r.I32();
  }
  ckpt.interactive_grant_bps = r.I64();
  ckpt.video_grant_bps = r.I64();
  ckpt.link_total_bps = r.I64();
  ckpt.video_deferred = r.I64();
  ckpt.video_dropped = r.I64();
  ckpt.coalesced_flushes = r.I64();
  ckpt.commands_sent = r.I64();
  ckpt.bytes_sent = r.I64();
  ckpt.render_time = r.I64();
  ckpt.encode_time = r.I64();
  ckpt.wire_time = r.I64();
  for (int t = 1; t < 6; ++t) {
    ckpt.encode_stats[t].commands = r.I64();
    ckpt.encode_stats[t].wire_bytes = r.I64();
    ckpt.encode_stats[t].uncompressed_bytes = r.I64();
    ckpt.encode_stats[t].pixels = r.I64();
  }
  if (!r.ok() || r.remaining() != 0) {
    return std::nullopt;  // trailing garbage is as suspect as truncation
  }
  return ckpt;
}

void ServerSession::CaptureCheckpoint(SessionCheckpoint* out) const {
  out->origin_session = id_;
  out->width = fb_.width();
  out->height = fb_.height();
  out->fb_pixels.assign(fb_.data().begin(), fb_.data().end());

  out->tracker_present = tracker_ != nullptr;
  if (tracker_ != nullptr) {
    out->tracker_valid = tracker_->valid();
    const Framebuffer& shadow = tracker_->shadow();
    out->shadow_pixels.assign(shadow.data().begin(), shadow.data().end());
    out->shadow_row_hashes.resize(static_cast<size_t>(out->height));
    for (int32_t y = 0; y < out->height; ++y) {
      out->shadow_row_hashes[static_cast<size_t>(y)] = tracker_->row_hash(y);
    }
  } else {
    out->tracker_valid = false;
    out->shadow_pixels.clear();
    out->shadow_row_hashes.clear();
  }

  out->damage = damage_.rects();

  out->interactive_grant_bps = interactive_grant_bps_;
  out->video_grant_bps = video_grant_bps_;
  out->link_total_bps = link_total_bps_;
  out->video_deferred = video_deferred_;
  out->video_dropped = video_dropped_;
  out->coalesced_flushes = coalesced_flushes_;

  out->commands_sent = commands_sent_;
  out->bytes_sent = bytes_sent_;
  out->render_time = render_time_;
  out->encode_time = encode_time_;
  out->wire_time = wire_time_;
  for (int t = 0; t < 6; ++t) {
    out->encode_stats[t].commands = encode_stats_[t].commands;
    out->encode_stats[t].wire_bytes = encode_stats_[t].wire_bytes;
    out->encode_stats[t].uncompressed_bytes = encode_stats_[t].uncompressed_bytes;
    out->encode_stats[t].pixels = encode_stats_[t].pixels;
  }
}

void ServerSession::RestoreFromCheckpoint(const SessionCheckpoint& ckpt) {
  SLIM_CHECK(!attached());
  SLIM_CHECK(ckpt.width == fb_.width() && ckpt.height == fb_.height());
  SLIM_CHECK(ckpt.fb_pixels.size() == fb_.data().size());

  fb_.SetPixels(fb_.bounds(), ckpt.fb_pixels);

  if (tracker_ != nullptr) {
    if (ckpt.tracker_present && ckpt.shadow_pixels.size() == fb_.data().size() &&
        ckpt.shadow_row_hashes.size() == static_cast<size_t>(ckpt.height)) {
      tracker_->RestoreShadow(ckpt.shadow_pixels, ckpt.shadow_row_hashes,
                              ckpt.tracker_valid);
    } else {
      // Source ran without a tracker (or the blob's shadow is inconsistent): distrust
      // everything, worst case is one full retransmit on the next attach.
      tracker_->Invalidate();
    }
  }

  damage_.Clear();
  for (const Rect& r : ckpt.damage) {
    damage_.Add(r);
  }
  pending_.clear();
  staged_video_.reset();

  interactive_grant_bps_ = ckpt.interactive_grant_bps;
  video_grant_bps_ = ckpt.video_grant_bps;
  link_total_bps_ = ckpt.link_total_bps;
  video_deferred_ = ckpt.video_deferred;
  video_dropped_ = ckpt.video_dropped;
  coalesced_flushes_ = ckpt.coalesced_flushes;

  commands_sent_ = ckpt.commands_sent;
  bytes_sent_ = ckpt.bytes_sent;
  render_time_ = ckpt.render_time;
  encode_time_ = ckpt.encode_time;
  wire_time_ = ckpt.wire_time;
  for (int t = 0; t < 6; ++t) {
    encode_stats_[t].commands = ckpt.encode_stats[t].commands;
    encode_stats_[t].wire_bytes = ckpt.encode_stats[t].wire_bytes;
    encode_stats_[t].uncompressed_bytes = ckpt.encode_stats[t].uncompressed_bytes;
    encode_stats_[t].pixels = ckpt.encode_stats[t].pixels;
  }
}

}  // namespace slim
