// The SLIM server: transport endpoint plus the three system daemons the architecture adds
// (Section 2.4) — authentication manager, session manager, and remote device manager.

#ifndef SRC_SERVER_SLIM_SERVER_H_
#define SRC_SERVER_SLIM_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/net/fabric.h"
#include "src/net/transport.h"
#include "src/server/cpu_model.h"
#include "src/server/session.h"
#include "src/sim/simulator.h"

namespace slim {

class MetricRegistry;

// Verifies smart-card identities. Cards must be registered before they authenticate; the
// check is a keyed hash so that forged ids are rejected (a stand-in for the product's
// challenge-response, enough to exercise the accept/reject paths).
class AuthenticationManager {
 public:
  explicit AuthenticationManager(uint64_t site_key);

  // Registers a user's card and returns its id.
  uint64_t IssueCard(uint32_t user_number);
  bool Verify(uint64_t card_id) const;

  int64_t accepted() const { return accepted_; }
  int64_t rejected() const { return rejected_; }

  // Registers the accept/reject counters (`<prefix>.accepted`, `<prefix>.rejected`).
  bool RegisterMetrics(MetricRegistry* registry, const std::string& prefix = "auth");

 private:
  uint64_t Sign(uint32_t user_number) const;

  uint64_t site_key_;
  std::map<uint64_t, uint32_t> issued_;
  mutable int64_t accepted_ = 0;
  mutable int64_t rejected_ = 0;
};

// Tracks peripherals attached through consoles' USB ports.
class RemoteDeviceManager {
 public:
  void DeviceAttached(NodeId console, uint32_t device_class);
  void DeviceDetached(NodeId console, uint32_t device_class);
  int DevicesAt(NodeId console) const;
  int total_devices() const;

 private:
  std::map<NodeId, std::vector<uint32_t>> devices_;
};

struct ServerOptions {
  int32_t session_width = 1280;
  int32_t session_height = 1024;
  // encoder.threads is overridden by SLIM_ENCODE_THREADS when that env var is set (applied
  // in the SlimServer constructor), so benches and CI can fan encoding out without
  // plumbing a flag through every harness.
  EncoderOptions encoder;
  ServerCpuModel cpu;
  // When true, Flush() defers transmission by the simulated render/encode/wire CPU time on
  // a single busy-server pipeline (used by the response-time experiments). When false,
  // transmission is immediate and CPU time is only accounted (used for trace generation).
  bool model_cpu_delay = false;
};

class SlimServer {
 public:
  SlimServer(Simulator* sim, Fabric* fabric, ServerOptions options = {});

  NodeId node() const { return endpoint_->node(); }
  Simulator* simulator() { return sim_; }
  SlimEndpoint& endpoint() { return *endpoint_; }
  const ServerOptions& options() const { return options_; }
  AuthenticationManager& auth() { return auth_; }
  RemoteDeviceManager& devices() { return devices_; }

  // Creates a session bound to a card id (the session manager resumes it on card insert).
  ServerSession& CreateSession(uint64_t card_id);
  ServerSession* FindSession(uint32_t session_id);
  ServerSession* SessionForCard(uint64_t card_id);
  size_t session_count() const { return sessions_.size(); }

  // Used by ServerSession to push messages to a console; accounts wire CPU time and applies
  // the optional busy-pipeline delay. Returns the simulated time at which the message left.
  SimTime Transmit(NodeId console, uint32_t session_id, MessageBody body,
                   SimDuration cpu_cost);

  // Registers the server's daemons and transport endpoint with `registry`:
  // `<prefix>.auth.*`, `<prefix>.sessions` / `<prefix>.devices` gauges, and
  // `<prefix>.transport.*`. Sessions register themselves (per-session prefixes) via
  // ServerSession::RegisterMetrics.
  bool RegisterMetrics(MetricRegistry* registry, const std::string& prefix = "server");

 private:
  void OnMessage(const Message& msg, NodeId from);

  Simulator* sim_;
  ServerOptions options_;
  std::unique_ptr<SlimEndpoint> endpoint_;
  AuthenticationManager auth_;
  RemoteDeviceManager devices_;
  std::map<uint32_t, std::unique_ptr<ServerSession>> sessions_;
  std::map<uint64_t, uint32_t> card_to_session_;
  uint32_t next_session_id_ = 1;
  SimTime cpu_busy_until_ = 0;
};

}  // namespace slim

#endif  // SRC_SERVER_SLIM_SERVER_H_
