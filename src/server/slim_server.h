// The SLIM server: transport endpoint plus the three system daemons the architecture adds
// (Section 2.4) — authentication manager, session manager, and remote device manager.
//
// The session manager is a full lifecycle layer (src/server/lifecycle.h): a session
// directory keyed by card, an attach/detach state machine with an explicit hotdesk
// handoff (the old console is released — told to blank — before the new console gets its
// repaint), console liveness via keepalive probes with timeout->detach, idle-session
// eviction, and a per-session ordered transmit queue (src/server/transmit_queue.h) that
// every server->console send goes through.

#ifndef SRC_SERVER_SLIM_SERVER_H_
#define SRC_SERVER_SLIM_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/net/fabric.h"
#include "src/net/transport.h"
#include "src/server/cpu_model.h"
#include "src/server/lifecycle.h"
#include "src/server/session.h"
#include "src/server/transmit_queue.h"
#include "src/sim/simulator.h"

namespace slim {

class MetricRegistry;
class MigrationManager;
class ServerPool;
struct MigrationOptions;
struct SessionCheckpoint;

// Verifies smart-card identities. Cards must be registered before they authenticate; the
// check is a keyed hash so that forged ids are rejected (a stand-in for the product's
// challenge-response, enough to exercise the accept/reject paths).
class AuthenticationManager {
 public:
  explicit AuthenticationManager(uint64_t site_key);

  // Registers a user's card and returns its id.
  uint64_t IssueCard(uint32_t user_number);
  bool Verify(uint64_t card_id) const;

  int64_t accepted() const { return accepted_; }
  int64_t rejected() const { return rejected_; }

  // Registers the accept/reject counters (`<prefix>.accepted`, `<prefix>.rejected`).
  bool RegisterMetrics(MetricRegistry* registry, const std::string& prefix = "auth");

 private:
  uint64_t Sign(uint32_t user_number) const;

  uint64_t site_key_;
  std::map<uint64_t, uint32_t> issued_;
  mutable int64_t accepted_ = 0;
  mutable int64_t rejected_ = 0;
};

// Tracks peripherals attached through consoles' USB ports.
class RemoteDeviceManager {
 public:
  void DeviceAttached(NodeId console, uint32_t device_class);
  void DeviceDetached(NodeId console, uint32_t device_class);
  int DevicesAt(NodeId console) const;
  int total_devices() const;

 private:
  std::map<NodeId, std::vector<uint32_t>> devices_;
};

// Section 7 congestion control. When enabled, every session that attaches asks its
// console's bandwidth allocator for two flows — a modest one for the interactive display
// server and a large one for the video library. The console's grants come back as
// BandwidthGrantMsg and are enforced as per-flow token buckets in the TransmitQueue. The
// interactive request is small on purpose: the ascending allocator satisfies small
// requests first, which is exactly the paper's guarantee that a saturating video stream
// cannot starve interactive windows. `adapt` additionally makes the session back off
// under pressure (newest-frame-wins video staging, damage coalescing) instead of letting
// the paced backlog grow without bound.
struct PacingOptions {
  bool enabled = false;
  // Default per-flow requests sent at attach. Applications may re-request with their own
  // numbers (the video pipeline requests its actual offered rate when it starts).
  int64_t interactive_request_bps = 2'000'000;
  int64_t video_request_bps = 40'000'000;
  // Token-bucket depth, expressed as time at the granted rate (the paper's Section 7
  // allocator averages over windows of this order).
  SimDuration burst_window = 50 * kMillisecond;
  // Backpressure adaptation. Off leaves grants enforced but the session naive — the
  // configuration the contended-desktop bench uses to show unbounded queue growth.
  bool adapt = true;
  // A video frame is staged (newest wins) instead of sent while its flow's bucket runs
  // further than this ahead of the clock; interactive flushes defer — damage keeps
  // coalescing — while the interactive flow is equally far behind or the session's txq
  // depth exceeds coalesce_watermark.
  SimDuration pace_backlog_watermark = 50 * kMillisecond;
  int64_t coalesce_watermark = 8;
};

// Counters for the congestion-control loop, readable directly and through the registry
// (`server.pacing.*`).
struct PacingStats {
  int64_t requests_sent = 0;      // BandwidthRequestMsg sent to consoles
  int64_t grants_applied = 0;     // BandwidthGrantMsg applied to the transmit queue
  int64_t video_deferred = 0;     // video frames staged instead of sent immediately
  int64_t video_dropped = 0;      // staged frames superseded by a newer one (never sent)
  int64_t coalesced_flushes = 0;  // flushes deferred with damage left coalescing
};

struct ServerOptions {
  int32_t session_width = 1280;
  int32_t session_height = 1024;
  // encoder.threads is overridden by SLIM_ENCODE_THREADS when that env var is set (applied
  // in the SlimServer constructor), so benches and CI can fan encoding out without
  // plumbing a flag through every harness.
  EncoderOptions encoder;
  ServerCpuModel cpu;
  // When true, Flush() defers transmission by the simulated render/encode/wire CPU time on
  // a single busy-server pipeline (used by the response-time experiments). When false,
  // transmission is immediate and CPU time is only accounted (used for trace generation).
  bool model_cpu_delay = false;
  // Attach/detach state machine, keepalive liveness and eviction policy.
  SessionLifecycleOptions lifecycle;
  // Bandwidth-grant enforcement and backpressure adaptation (off by default: runs that
  // never request bandwidth are byte-for-byte identical to the pre-pacing behavior).
  PacingOptions pacing;
};

// Counters for every lifecycle transition; readable directly and through the registry
// (`server.lifecycle.*`).
struct LifecycleStats {
  int64_t attaches = 0;           // sessions bound to a console (incl. hotdesk re-binds)
  int64_t detaches = 0;           // any attached -> detached transition
  int64_t hotdesk_handoffs = 0;   // attaches that pulled the session from another console
  int64_t releases_sent = 0;      // SessionReleaseMsg copies sent (incl. re-sends)
  int64_t keepalive_timeouts = 0; // detaches caused by a silent console
  int64_t probes_sent = 0;        // keepalive pings sent
  int64_t evictions = 0;          // idle sessions destroyed and card mappings reclaimed
};

class SlimServer {
 public:
  SlimServer(Simulator* sim, Fabric* fabric, ServerOptions options = {});
  ~SlimServer();

  NodeId node() const { return endpoint_->node(); }
  Simulator* simulator() { return sim_; }
  SlimEndpoint& endpoint() { return *endpoint_; }
  const ServerOptions& options() const { return options_; }
  AuthenticationManager& auth() { return auth_; }
  RemoteDeviceManager& devices() { return devices_; }
  const TransmitQueue& tx_queue() const { return *tx_; }
  const LifecycleStats& lifecycle_stats() const { return lifecycle_stats_; }
  const PacingStats& pacing_stats() const { return pacing_stats_; }
  // Sessions update the adaptation counters (video drops, coalesced flushes) directly.
  PacingStats& pacing_stats() { return pacing_stats_; }

  // Creates a session bound to a card id (the session manager resumes it on card insert).
  // If the card was already bound to a live session, that session is evicted first so the
  // directory never holds two sessions for one card.
  ServerSession& CreateSession(uint64_t card_id);
  ServerSession* FindSession(uint32_t session_id);
  ServerSession* SessionForCard(uint64_t card_id);
  size_t session_count() const { return sessions_.size(); }
  size_t card_count() const { return card_to_session_.size(); }

  // The lifecycle state of a session (kDetached for unknown ids, which is what an evicted
  // session reads as).
  SessionState session_state(uint32_t session_id) const;

  // Detaches `session` from its console (no-op when already detached): the console is sent
  // a release notice telling it to blank, liveness probing stops, and — when eviction is
  // configured — the idle timer starts. Exposed so harnesses can force a server-side
  // detach without a console round trip.
  void DetachSession(ServerSession& session, ReleaseReason reason);

  // Used by ServerSession to push messages to a console; accounts wire CPU time and applies
  // the optional busy-pipeline delay. Returns the simulated time at which the message left.
  // Every send — display commands, audio, pongs, session control — funnels through the
  // ordered transmit queue, so zero-cost messages cannot overtake CPU-delayed ones.
  // `flow_id` charges the send to a granted flow's token bucket (0 = unpaced control).
  SimTime Transmit(NodeId console, uint32_t session_id, MessageBody body,
                   SimDuration cpu_cost, uint64_t flow_id = 0);

  // Arms a one-shot callback into ServerSession::OnPaceRetry (session looked up by id at
  // fire time, so a retry can never dangle past an eviction).
  void SchedulePaceRetry(uint32_t session_id, SimTime at);

  // --- Server pool / migration (src/server/migration.h, DESIGN.md §9) ---
  // Joins `pool` and enables the migration protocol on this server. Call at most once.
  MigrationManager& EnableMigration(ServerPool& pool, const MigrationOptions& options);
  MigrationManager* migration() { return migration_.get(); }

  // Constructs an unregistered session restored from `ckpt` (fresh local id, checkpoint
  // geometry). It joins the directory only via InstallSession — the single-owner
  // invariant's staging step.
  std::unique_ptr<ServerSession> BuildStagedSession(const SessionCheckpoint& ckpt);
  // Registers a staged session under `card_id` (directory entry, card mapping, idle
  // eviction armed). Any session the card was previously bound to is reclaimed first.
  ServerSession& InstallSession(uint64_t card_id, std::unique_ptr<ServerSession> session);
  // Destroys a detached session after its ownership moved to another server: directory
  // entry, card mapping and session object go, but — unlike EvictSession — it is not
  // counted as an eviction (the session lives on elsewhere).
  void DiscardSession(uint32_t session_id);

  // Crash fault injection (ServerPool::KillServer): the endpoint goes deaf and mute.
  void Kill();

  // Registers the server's daemons and transport endpoint with `registry`:
  // `<prefix>.auth.*`, `<prefix>.sessions` / `<prefix>.cards` / `<prefix>.devices` gauges,
  // `<prefix>.lifecycle.*` counters, `<prefix>.txq.*`, and `<prefix>.transport.*`.
  // Sessions register themselves (per-session prefixes) via ServerSession::RegisterMetrics.
  bool RegisterMetrics(MetricRegistry* registry, const std::string& prefix = "server");

 private:
  // The migration manager reaches into the attach machinery (AttachSessionToConsole for
  // installed sessions' waiting consoles, the transmit queue for bulk-transfer pacing).
  friend class MigrationManager;

  // Per-session lifecycle record: the directory entry tying a session to its card, its
  // state-machine state, and the liveness/eviction timers.
  struct Lifecycle {
    uint64_t card_id = 0;
    SessionState state = SessionState::kDetached;
    SimTime last_heard = 0;          // last message from the attached console
    int missed_probes = 0;
    SimDuration probe_gap = 0;       // current (possibly backed-off) re-probe gap
    EventId probe_event = kInvalidEventId;
    EventId evict_event = kInvalidEventId;
  };

  void OnMessage(const Message& msg, NodeId from);
  void HandleAttach(uint64_t card_id, NodeId from);
  void HandleDetach(uint64_t card_id, NodeId from);

  // A console's allocator answered (or revised) a flow's share: enforce it in the
  // transmit queue and tell the owning session its budget.
  void ApplyGrant(const BandwidthGrantMsg& grant);
  // Sends the attach-time bandwidth requests for a session's flows to its console.
  void RequestSessionBandwidth(ServerSession& session, NodeId console);
  // Drops a session's queued sends and forgets its flows (release/handoff/eviction).
  void ResetSessionPacing(uint32_t session_id);

  // Binds `session` to `console`: updates the directory, cancels eviction, repaints, and
  // arms the keepalive probe.
  void AttachSessionToConsole(ServerSession& session, NodeId console);
  // Sends the release notice (plus bounded idempotent re-sends) to `console`.
  void ReleaseConsole(NodeId console, uint32_t session_id, ReleaseReason reason);
  void CancelPendingReleases(NodeId console);

  // Any inbound message from a console counts as liveness for the session shown there.
  void NoteConsoleAlive(NodeId from);
  void ArmProbe(uint32_t session_id, SimDuration gap);
  void OnProbeTimer(uint32_t session_id);

  void ScheduleEviction(uint32_t session_id);
  // Destroys a (detached) session: directory entry, card mapping and session object.
  void EvictSession(uint32_t session_id);

  Simulator* sim_;
  ServerOptions options_;
  std::unique_ptr<SlimEndpoint> endpoint_;
  std::unique_ptr<TransmitQueue> tx_;
  AuthenticationManager auth_;
  RemoteDeviceManager devices_;
  std::map<uint32_t, std::unique_ptr<ServerSession>> sessions_;
  std::map<uint64_t, uint32_t> card_to_session_;
  std::map<uint32_t, Lifecycle> lifecycle_;
  // Which session each console is currently showing (inverse of session->console()); at
  // most one session per console, which is the state-machine invariant the handoff keeps.
  std::map<NodeId, uint32_t> console_to_session_;
  // Pending release re-send events per console, cancelled when the console re-attaches so
  // a stale blank notice cannot chase a fresh repaint.
  std::map<NodeId, std::vector<EventId>> pending_releases_;
  LifecycleStats lifecycle_stats_;
  PacingStats pacing_stats_;
  // Present only after EnableMigration; every migration code path is behind a null check,
  // so a pool-less server is byte-for-byte the pre-migration behavior.
  std::unique_ptr<MigrationManager> migration_;
  uint32_t next_session_id_ = 1;
};

}  // namespace slim

#endif  // SRC_SERVER_SLIM_SERVER_H_
