// The SLIM server: transport endpoint plus the three system daemons the architecture adds
// (Section 2.4) — authentication manager, session manager, and remote device manager.
//
// The session manager is a full lifecycle layer (src/server/lifecycle.h): a session
// directory keyed by card, an attach/detach state machine with an explicit hotdesk
// handoff (the old console is released — told to blank — before the new console gets its
// repaint), console liveness via keepalive probes with timeout->detach, idle-session
// eviction, and a per-session ordered transmit queue (src/server/transmit_queue.h) that
// every server->console send goes through.

#ifndef SRC_SERVER_SLIM_SERVER_H_
#define SRC_SERVER_SLIM_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/net/fabric.h"
#include "src/net/transport.h"
#include "src/server/cpu_model.h"
#include "src/server/lifecycle.h"
#include "src/server/session.h"
#include "src/server/transmit_queue.h"
#include "src/sim/simulator.h"

namespace slim {

class MetricRegistry;

// Verifies smart-card identities. Cards must be registered before they authenticate; the
// check is a keyed hash so that forged ids are rejected (a stand-in for the product's
// challenge-response, enough to exercise the accept/reject paths).
class AuthenticationManager {
 public:
  explicit AuthenticationManager(uint64_t site_key);

  // Registers a user's card and returns its id.
  uint64_t IssueCard(uint32_t user_number);
  bool Verify(uint64_t card_id) const;

  int64_t accepted() const { return accepted_; }
  int64_t rejected() const { return rejected_; }

  // Registers the accept/reject counters (`<prefix>.accepted`, `<prefix>.rejected`).
  bool RegisterMetrics(MetricRegistry* registry, const std::string& prefix = "auth");

 private:
  uint64_t Sign(uint32_t user_number) const;

  uint64_t site_key_;
  std::map<uint64_t, uint32_t> issued_;
  mutable int64_t accepted_ = 0;
  mutable int64_t rejected_ = 0;
};

// Tracks peripherals attached through consoles' USB ports.
class RemoteDeviceManager {
 public:
  void DeviceAttached(NodeId console, uint32_t device_class);
  void DeviceDetached(NodeId console, uint32_t device_class);
  int DevicesAt(NodeId console) const;
  int total_devices() const;

 private:
  std::map<NodeId, std::vector<uint32_t>> devices_;
};

struct ServerOptions {
  int32_t session_width = 1280;
  int32_t session_height = 1024;
  // encoder.threads is overridden by SLIM_ENCODE_THREADS when that env var is set (applied
  // in the SlimServer constructor), so benches and CI can fan encoding out without
  // plumbing a flag through every harness.
  EncoderOptions encoder;
  ServerCpuModel cpu;
  // When true, Flush() defers transmission by the simulated render/encode/wire CPU time on
  // a single busy-server pipeline (used by the response-time experiments). When false,
  // transmission is immediate and CPU time is only accounted (used for trace generation).
  bool model_cpu_delay = false;
  // Attach/detach state machine, keepalive liveness and eviction policy.
  SessionLifecycleOptions lifecycle;
};

// Counters for every lifecycle transition; readable directly and through the registry
// (`server.lifecycle.*`).
struct LifecycleStats {
  int64_t attaches = 0;           // sessions bound to a console (incl. hotdesk re-binds)
  int64_t detaches = 0;           // any attached -> detached transition
  int64_t hotdesk_handoffs = 0;   // attaches that pulled the session from another console
  int64_t releases_sent = 0;      // SessionReleaseMsg copies sent (incl. re-sends)
  int64_t keepalive_timeouts = 0; // detaches caused by a silent console
  int64_t probes_sent = 0;        // keepalive pings sent
  int64_t evictions = 0;          // idle sessions destroyed and card mappings reclaimed
};

class SlimServer {
 public:
  SlimServer(Simulator* sim, Fabric* fabric, ServerOptions options = {});

  NodeId node() const { return endpoint_->node(); }
  Simulator* simulator() { return sim_; }
  SlimEndpoint& endpoint() { return *endpoint_; }
  const ServerOptions& options() const { return options_; }
  AuthenticationManager& auth() { return auth_; }
  RemoteDeviceManager& devices() { return devices_; }
  const TransmitQueue& tx_queue() const { return *tx_; }
  const LifecycleStats& lifecycle_stats() const { return lifecycle_stats_; }

  // Creates a session bound to a card id (the session manager resumes it on card insert).
  // If the card was already bound to a live session, that session is evicted first so the
  // directory never holds two sessions for one card.
  ServerSession& CreateSession(uint64_t card_id);
  ServerSession* FindSession(uint32_t session_id);
  ServerSession* SessionForCard(uint64_t card_id);
  size_t session_count() const { return sessions_.size(); }
  size_t card_count() const { return card_to_session_.size(); }

  // The lifecycle state of a session (kDetached for unknown ids, which is what an evicted
  // session reads as).
  SessionState session_state(uint32_t session_id) const;

  // Detaches `session` from its console (no-op when already detached): the console is sent
  // a release notice telling it to blank, liveness probing stops, and — when eviction is
  // configured — the idle timer starts. Exposed so harnesses can force a server-side
  // detach without a console round trip.
  void DetachSession(ServerSession& session, ReleaseReason reason);

  // Used by ServerSession to push messages to a console; accounts wire CPU time and applies
  // the optional busy-pipeline delay. Returns the simulated time at which the message left.
  // Every send — display commands, audio, pongs, session control — funnels through the
  // ordered transmit queue, so zero-cost messages cannot overtake CPU-delayed ones.
  SimTime Transmit(NodeId console, uint32_t session_id, MessageBody body,
                   SimDuration cpu_cost);

  // Registers the server's daemons and transport endpoint with `registry`:
  // `<prefix>.auth.*`, `<prefix>.sessions` / `<prefix>.cards` / `<prefix>.devices` gauges,
  // `<prefix>.lifecycle.*` counters, `<prefix>.txq.*`, and `<prefix>.transport.*`.
  // Sessions register themselves (per-session prefixes) via ServerSession::RegisterMetrics.
  bool RegisterMetrics(MetricRegistry* registry, const std::string& prefix = "server");

 private:
  // Per-session lifecycle record: the directory entry tying a session to its card, its
  // state-machine state, and the liveness/eviction timers.
  struct Lifecycle {
    uint64_t card_id = 0;
    SessionState state = SessionState::kDetached;
    SimTime last_heard = 0;          // last message from the attached console
    int missed_probes = 0;
    SimDuration probe_gap = 0;       // current (possibly backed-off) re-probe gap
    EventId probe_event = kInvalidEventId;
    EventId evict_event = kInvalidEventId;
  };

  void OnMessage(const Message& msg, NodeId from);
  void HandleAttach(uint64_t card_id, NodeId from);
  void HandleDetach(uint64_t card_id, NodeId from);

  // Binds `session` to `console`: updates the directory, cancels eviction, repaints, and
  // arms the keepalive probe.
  void AttachSessionToConsole(ServerSession& session, NodeId console);
  // Sends the release notice (plus bounded idempotent re-sends) to `console`.
  void ReleaseConsole(NodeId console, uint32_t session_id, ReleaseReason reason);
  void CancelPendingReleases(NodeId console);

  // Any inbound message from a console counts as liveness for the session shown there.
  void NoteConsoleAlive(NodeId from);
  void ArmProbe(uint32_t session_id, SimDuration gap);
  void OnProbeTimer(uint32_t session_id);

  void ScheduleEviction(uint32_t session_id);
  // Destroys a (detached) session: directory entry, card mapping and session object.
  void EvictSession(uint32_t session_id);

  Simulator* sim_;
  ServerOptions options_;
  std::unique_ptr<SlimEndpoint> endpoint_;
  std::unique_ptr<TransmitQueue> tx_;
  AuthenticationManager auth_;
  RemoteDeviceManager devices_;
  std::map<uint32_t, std::unique_ptr<ServerSession>> sessions_;
  std::map<uint64_t, uint32_t> card_to_session_;
  std::map<uint32_t, Lifecycle> lifecycle_;
  // Which session each console is currently showing (inverse of session->console()); at
  // most one session per console, which is the state-machine invariant the handoff keeps.
  std::map<NodeId, uint32_t> console_to_session_;
  // Pending release re-send events per console, cancelled when the console re-attaches so
  // a stale blank notice cannot chase a fresh repaint.
  std::map<NodeId, std::vector<EventId>> pending_releases_;
  LifecycleStats lifecycle_stats_;
  uint32_t next_session_id_ = 1;
};

}  // namespace slim

#endif  // SRC_SERVER_SLIM_SERVER_H_
