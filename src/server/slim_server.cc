#include "src/server/slim_server.h"

#include "src/codec/damage_tracker.h"
#include "src/codec/parallel.h"
#include "src/obs/metrics.h"
#include "src/util/check.h"

namespace slim {

AuthenticationManager::AuthenticationManager(uint64_t site_key) : site_key_(site_key) {}

uint64_t AuthenticationManager::Sign(uint32_t user_number) const {
  // A keyed mix (SplitMix64-style) standing in for the product's challenge-response.
  uint64_t x = site_key_ ^ (static_cast<uint64_t>(user_number) * 0x9e3779b97f4a7c15ull);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t AuthenticationManager::IssueCard(uint32_t user_number) {
  const uint64_t card_id = Sign(user_number);
  issued_[card_id] = user_number;
  return card_id;
}

bool AuthenticationManager::Verify(uint64_t card_id) const {
  const auto it = issued_.find(card_id);
  if (it == issued_.end() || Sign(it->second) != card_id) {
    ++rejected_;
    return false;
  }
  ++accepted_;
  return true;
}

bool AuthenticationManager::RegisterMetrics(MetricRegistry* registry,
                                            const std::string& prefix) {
  SLIM_CHECK(registry != nullptr);
  bool ok = registry->BindCounter(prefix + ".accepted", &accepted_);
  ok = registry->BindCounter(prefix + ".rejected", &rejected_) && ok;
  return ok;
}

void RemoteDeviceManager::DeviceAttached(NodeId console, uint32_t device_class) {
  devices_[console].push_back(device_class);
}

void RemoteDeviceManager::DeviceDetached(NodeId console, uint32_t device_class) {
  auto it = devices_.find(console);
  if (it == devices_.end()) {
    return;
  }
  auto& list = it->second;
  for (auto d = list.begin(); d != list.end(); ++d) {
    if (*d == device_class) {
      list.erase(d);
      break;
    }
  }
  if (list.empty()) {
    devices_.erase(it);
  }
}

int RemoteDeviceManager::DevicesAt(NodeId console) const {
  const auto it = devices_.find(console);
  return it == devices_.end() ? 0 : static_cast<int>(it->second.size());
}

int RemoteDeviceManager::total_devices() const {
  int total = 0;
  for (const auto& [node, list] : devices_) {
    total += static_cast<int>(list.size());
  }
  return total;
}

SlimServer::SlimServer(Simulator* sim, Fabric* fabric, ServerOptions options)
    : sim_(sim), options_(options), auth_(0x51e7e5c4e7u) {
  SLIM_CHECK(sim != nullptr && fabric != nullptr);
  options_.encoder.threads = EncodeThreadsFromEnv(options_.encoder.threads);
  options_.encoder.damage_tracker = DamageTrackerFromEnv(options_.encoder.damage_tracker);
  endpoint_ = std::make_unique<SlimEndpoint>(fabric, fabric->AddNode());
  endpoint_->set_handler([this](const Message& msg, NodeId from) { OnMessage(msg, from); });
}

ServerSession& SlimServer::CreateSession(uint64_t card_id) {
  const uint32_t id = next_session_id_++;
  auto session = std::make_unique<ServerSession>(this, id, options_.session_width,
                                                 options_.session_height, options_.encoder);
  ServerSession& ref = *session;
  sessions_[id] = std::move(session);
  card_to_session_[card_id] = id;
  return ref;
}

ServerSession* SlimServer::FindSession(uint32_t session_id) {
  const auto it = sessions_.find(session_id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

ServerSession* SlimServer::SessionForCard(uint64_t card_id) {
  const auto it = card_to_session_.find(card_id);
  return it == card_to_session_.end() ? nullptr : FindSession(it->second);
}

SimTime SlimServer::Transmit(NodeId console, uint32_t session_id, MessageBody body,
                             SimDuration cpu_cost) {
  if (!options_.model_cpu_delay || cpu_cost <= 0) {
    endpoint_->Send(console, session_id, std::move(body));
    return sim_->now();
  }
  const SimTime start = std::max(sim_->now(), cpu_busy_until_);
  const SimTime done = start + cpu_cost;
  cpu_busy_until_ = done;
  sim_->ScheduleAt(done, [this, console, session_id, b = std::move(body)]() mutable {
    endpoint_->Send(console, session_id, std::move(b));
  });
  return done;
}

bool SlimServer::RegisterMetrics(MetricRegistry* registry, const std::string& prefix) {
  SLIM_CHECK(registry != nullptr);
  bool ok = auth_.RegisterMetrics(registry, prefix + ".auth");
  ok = registry->BindGauge(prefix + ".sessions",
                           [this] { return static_cast<double>(sessions_.size()); }) &&
       ok;
  ok = registry->BindGauge(prefix + ".devices",
                           [this] { return static_cast<double>(devices_.total_devices()); }) &&
       ok;
  return endpoint_->RegisterMetrics(registry, prefix + ".transport") && ok;
}

void SlimServer::OnMessage(const Message& msg, NodeId from) {
  if (const auto* attach = std::get_if<SessionAttachMsg>(&msg.body)) {
    if (!auth_.Verify(attach->card_id)) {
      return;  // Unknown card: the screen stays dark.
    }
    ServerSession* session = SessionForCard(attach->card_id);
    if (session == nullptr) {
      session = &CreateSession(attach->card_id);
    }
    // Hotdesking: if the session is showing on another console, pull it from there.
    session->AttachConsole(from);
    return;
  }
  if (const auto* detach = std::get_if<SessionDetachMsg>(&msg.body)) {
    ServerSession* session = SessionForCard(detach->card_id);
    if (session != nullptr && session->console() == from) {
      session->DetachConsole();
    }
    return;
  }
  if (std::holds_alternative<KeyEventMsg>(msg.body) ||
      std::holds_alternative<MouseEventMsg>(msg.body)) {
    ServerSession* session = FindSession(msg.session_id);
    if (session != nullptr) {
      session->DeliverInput(msg);
    }
    return;
  }
  if (const auto* ping = std::get_if<PingMsg>(&msg.body)) {
    endpoint_->Send(from, msg.session_id, PongMsg{ping->payload});
    return;
  }
  // Status / audio / grants from consoles need no action in the experiments.
}

}  // namespace slim
