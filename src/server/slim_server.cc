#include "src/server/slim_server.h"

#include <algorithm>

#include "src/codec/damage_tracker.h"
#include "src/codec/kernels/kernels.h"
#include "src/codec/parallel.h"
#include "src/obs/latency_audit.h"
#include "src/obs/metrics.h"
#include "src/server/checkpoint.h"
#include "src/server/migration.h"
#include "src/util/check.h"

namespace slim {

AuthenticationManager::AuthenticationManager(uint64_t site_key) : site_key_(site_key) {}

uint64_t AuthenticationManager::Sign(uint32_t user_number) const {
  // A keyed mix (SplitMix64-style) standing in for the product's challenge-response.
  uint64_t x = site_key_ ^ (static_cast<uint64_t>(user_number) * 0x9e3779b97f4a7c15ull);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t AuthenticationManager::IssueCard(uint32_t user_number) {
  const uint64_t card_id = Sign(user_number);
  issued_[card_id] = user_number;
  return card_id;
}

bool AuthenticationManager::Verify(uint64_t card_id) const {
  const auto it = issued_.find(card_id);
  if (it == issued_.end() || Sign(it->second) != card_id) {
    ++rejected_;
    return false;
  }
  ++accepted_;
  return true;
}

bool AuthenticationManager::RegisterMetrics(MetricRegistry* registry,
                                            const std::string& prefix) {
  SLIM_CHECK(registry != nullptr);
  bool ok = registry->BindCounter(prefix + ".accepted", &accepted_);
  ok = registry->BindCounter(prefix + ".rejected", &rejected_) && ok;
  return ok;
}

void RemoteDeviceManager::DeviceAttached(NodeId console, uint32_t device_class) {
  devices_[console].push_back(device_class);
}

void RemoteDeviceManager::DeviceDetached(NodeId console, uint32_t device_class) {
  auto it = devices_.find(console);
  if (it == devices_.end()) {
    return;
  }
  auto& list = it->second;
  for (auto d = list.begin(); d != list.end(); ++d) {
    if (*d == device_class) {
      list.erase(d);
      break;
    }
  }
  if (list.empty()) {
    devices_.erase(it);
  }
}

int RemoteDeviceManager::DevicesAt(NodeId console) const {
  const auto it = devices_.find(console);
  return it == devices_.end() ? 0 : static_cast<int>(it->second.size());
}

int RemoteDeviceManager::total_devices() const {
  int total = 0;
  for (const auto& [node, list] : devices_) {
    total += static_cast<int>(list.size());
  }
  return total;
}

SlimServer::SlimServer(Simulator* sim, Fabric* fabric, ServerOptions options)
    : sim_(sim), options_(options), auth_(0x51e7e5c4e7u) {
  SLIM_CHECK(sim != nullptr && fabric != nullptr);
  options_.encoder.threads = EncodeThreadsFromEnv(options_.encoder.threads);
  options_.encoder.damage_tracker = DamageTrackerFromEnv(options_.encoder.damage_tracker);
  endpoint_ = std::make_unique<SlimEndpoint>(fabric, fabric->AddNode());
  endpoint_->set_handler([this](const Message& msg, NodeId from) { OnMessage(msg, from); });
  tx_ = std::make_unique<TransmitQueue>(sim_, endpoint_.get(), options_.model_cpu_delay);
}

SlimServer::~SlimServer() = default;

MigrationManager& SlimServer::EnableMigration(ServerPool& pool,
                                              const MigrationOptions& options) {
  SLIM_CHECK(migration_ == nullptr);
  migration_ = std::make_unique<MigrationManager>(this, &pool, options);
  pool.Register(this, migration_.get());
  return *migration_;
}

std::unique_ptr<ServerSession> SlimServer::BuildStagedSession(const SessionCheckpoint& ckpt) {
  const uint32_t id = next_session_id_++;
  auto session =
      std::make_unique<ServerSession>(this, id, ckpt.width, ckpt.height, options_.encoder);
  session->RestoreFromCheckpoint(ckpt);
  return session;
}

ServerSession& SlimServer::InstallSession(uint64_t card_id,
                                          std::unique_ptr<ServerSession> session) {
  SLIM_CHECK(session != nullptr && !session->attached());
  const auto existing = card_to_session_.find(card_id);
  if (existing != card_to_session_.end()) {
    // Same rule as CreateSession: one card, one session. (Reaching here means a local
    // session raced the migration — the installed copy is the owning one.)
    const uint32_t old_id = existing->second;
    if (ServerSession* old = FindSession(old_id)) {
      DetachSession(*old, ReleaseReason::kEvicted);
      EvictSession(old_id);
    } else {
      card_to_session_.erase(existing);
    }
  }
  const uint32_t id = session->id();
  ServerSession& ref = *session;
  sessions_[id] = std::move(session);
  card_to_session_[card_id] = id;
  Lifecycle lc;
  lc.card_id = card_id;
  lc.last_heard = sim_->now();
  lifecycle_[id] = lc;
  ScheduleEviction(id);
  return ref;
}

void SlimServer::DiscardSession(uint32_t session_id) {
  const auto it = lifecycle_.find(session_id);
  if (it == lifecycle_.end()) {
    return;
  }
  Lifecycle& lc = it->second;
  SLIM_CHECK(lc.state == SessionState::kDetached);
  if (lc.probe_event != kInvalidEventId) {
    sim_->Cancel(lc.probe_event);
  }
  if (lc.evict_event != kInvalidEventId) {
    sim_->Cancel(lc.evict_event);
  }
  const auto card = card_to_session_.find(lc.card_id);
  if (card != card_to_session_.end() && card->second == session_id) {
    card_to_session_.erase(card);
  }
  if (options_.pacing.enabled) {
    ResetSessionPacing(session_id);
  }
  lifecycle_.erase(it);
  sessions_.erase(session_id);
}

void SlimServer::Kill() { endpoint_->set_dead(true); }

ServerSession& SlimServer::CreateSession(uint64_t card_id) {
  const auto existing = card_to_session_.find(card_id);
  if (existing != card_to_session_.end()) {
    // The card is being re-bound (re-issued, or a caller asked for a fresh session): the
    // directory must never hold two sessions for one card, so the old one is reclaimed —
    // not left dangling in sessions_ behind an overwritten mapping.
    const uint32_t old_id = existing->second;
    if (ServerSession* old = FindSession(old_id)) {
      DetachSession(*old, ReleaseReason::kEvicted);
      EvictSession(old_id);
    } else {
      card_to_session_.erase(existing);
    }
  }
  const uint32_t id = next_session_id_++;
  auto session = std::make_unique<ServerSession>(this, id, options_.session_width,
                                                 options_.session_height, options_.encoder);
  ServerSession& ref = *session;
  sessions_[id] = std::move(session);
  card_to_session_[card_id] = id;
  Lifecycle lc;
  lc.card_id = card_id;
  lc.last_heard = sim_->now();
  lifecycle_[id] = lc;
  // A freshly created session is detached; if eviction is on, its idle clock starts now so
  // a session whose attach never arrives (lost on the fabric) does not live forever.
  ScheduleEviction(id);
  return ref;
}

ServerSession* SlimServer::FindSession(uint32_t session_id) {
  const auto it = sessions_.find(session_id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

ServerSession* SlimServer::SessionForCard(uint64_t card_id) {
  const auto it = card_to_session_.find(card_id);
  return it == card_to_session_.end() ? nullptr : FindSession(it->second);
}

SessionState SlimServer::session_state(uint32_t session_id) const {
  const auto it = lifecycle_.find(session_id);
  return it == lifecycle_.end() ? SessionState::kDetached : it->second.state;
}

SimTime SlimServer::Transmit(NodeId console, uint32_t session_id, MessageBody body,
                             SimDuration cpu_cost, uint64_t flow_id) {
  return tx_->Send(console, session_id, std::move(body), cpu_cost, flow_id);
}

void SlimServer::SchedulePaceRetry(uint32_t session_id, SimTime at) {
  sim_->ScheduleAt(std::max(at, sim_->now()), [this, session_id] {
    if (ServerSession* session = FindSession(session_id)) {
      session->OnPaceRetry();
    }
  });
}

void SlimServer::ApplyGrant(const BandwidthGrantMsg& grant) {
  if (!options_.pacing.enabled || grant.flow_id == 0) {
    return;
  }
  ServerSession* session = FindSession(ServerSession::SessionOfFlow(grant.flow_id));
  if (session == nullptr || !session->attached()) {
    return;  // stale grant for a session that moved on; the new console will re-grant
  }
  tx_->SetFlowRate(grant.flow_id, grant.bits_per_second, options_.pacing.burst_window);
  ++pacing_stats_.grants_applied;
  session->OnBandwidthGrant(grant.flow_id, grant.bits_per_second, grant.total_bps);
}

void SlimServer::RequestSessionBandwidth(ServerSession& session, NodeId console) {
  const auto request = [&](uint64_t flow, int64_t bps) {
    if (bps <= 0) {
      return;
    }
    ++pacing_stats_.requests_sent;
    Transmit(console, session.id(), BandwidthRequestMsg{flow, bps}, 0);
  };
  request(ServerSession::InteractiveFlow(session.id()),
          options_.pacing.interactive_request_bps);
  request(ServerSession::VideoFlow(session.id()), options_.pacing.video_request_bps);
}

void SlimServer::ResetSessionPacing(uint32_t session_id) {
  tx_->PurgeSession(session_id);
  tx_->ReleaseFlow(ServerSession::InteractiveFlow(session_id));
  tx_->ReleaseFlow(ServerSession::VideoFlow(session_id));
}

bool SlimServer::RegisterMetrics(MetricRegistry* registry, const std::string& prefix) {
  SLIM_CHECK(registry != nullptr);
  bool ok = auth_.RegisterMetrics(registry, prefix + ".auth");
  // Which SIMD kernel tier the encode path resolved at startup (KernelTier numeric
  // value: 0=scalar 1=sse2 2=avx2 3=neon). A gauge so dashboards snapshotting a server
  // can tell whether its pixel loops are running vectorized without shell access.
  ok = registry->BindGauge("codec.kernels.tier",
                           [] { return static_cast<double>(Kernels().tier); }) &&
       ok;
  ok = registry->BindGauge(prefix + ".sessions",
                           [this] { return static_cast<double>(sessions_.size()); }) &&
       ok;
  ok = registry->BindGauge(prefix + ".cards",
                           [this] { return static_cast<double>(card_to_session_.size()); }) &&
       ok;
  ok = registry->BindGauge(prefix + ".devices",
                           [this] { return static_cast<double>(devices_.total_devices()); }) &&
       ok;
  const std::string lp = prefix + ".lifecycle";
  ok = registry->BindCounter(lp + ".attaches", &lifecycle_stats_.attaches) && ok;
  ok = registry->BindCounter(lp + ".detaches", &lifecycle_stats_.detaches) && ok;
  ok = registry->BindCounter(lp + ".hotdesk_handoffs", &lifecycle_stats_.hotdesk_handoffs) &&
       ok;
  ok = registry->BindCounter(lp + ".releases_sent", &lifecycle_stats_.releases_sent) && ok;
  ok = registry->BindCounter(lp + ".keepalive_timeouts",
                             &lifecycle_stats_.keepalive_timeouts) &&
       ok;
  ok = registry->BindCounter(lp + ".probes_sent", &lifecycle_stats_.probes_sent) && ok;
  ok = registry->BindCounter(lp + ".evictions", &lifecycle_stats_.evictions) && ok;
  const std::string pp = prefix + ".pacing";
  ok = registry->BindCounter(pp + ".requests_sent", &pacing_stats_.requests_sent) && ok;
  ok = registry->BindCounter(pp + ".grants_applied", &pacing_stats_.grants_applied) && ok;
  ok = registry->BindCounter(pp + ".video_deferred", &pacing_stats_.video_deferred) && ok;
  ok = registry->BindCounter(pp + ".video_dropped", &pacing_stats_.video_dropped) && ok;
  ok = registry->BindCounter(pp + ".coalesced_flushes", &pacing_stats_.coalesced_flushes) &&
       ok;
  ok = tx_->RegisterMetrics(registry, prefix + ".txq") && ok;
  if (migration_ != nullptr) {
    ok = migration_->RegisterMetrics(registry, prefix) && ok;
  }
  return endpoint_->RegisterMetrics(registry, prefix + ".transport") && ok;
}

void SlimServer::OnMessage(const Message& msg, NodeId from) {
  // Anything a console says proves it is alive; this is what the keepalive pong (and every
  // input event) feeds.
  NoteConsoleAlive(from);
  if (const auto* attach = std::get_if<SessionAttachMsg>(&msg.body)) {
    HandleAttach(attach->card_id, from);
    return;
  }
  if (const auto* detach = std::get_if<SessionDetachMsg>(&msg.body)) {
    HandleDetach(detach->card_id, from);
    return;
  }
  if (std::holds_alternative<KeyEventMsg>(msg.body) ||
      std::holds_alternative<MouseEventMsg>(msg.body)) {
    ServerSession* session = FindSession(msg.session_id);
    if (session != nullptr) {
      session->DeliverInput(msg);
    }
    return;
  }
  if (const auto* ping = std::get_if<PingMsg>(&msg.body)) {
    // Through the ordered queue: a pong must not overtake display commands still queued
    // behind the modeled CPU (it would report a state the console has not seen).
    Transmit(from, msg.session_id, PongMsg{ping->payload}, 0);
    return;
  }
  if (const auto* grant = std::get_if<BandwidthGrantMsg>(&msg.body)) {
    // The console's allocator answered (or revised a surviving flow's share after some
    // other flow came or went): close the Section 7 loop by enforcing it on the send path.
    ApplyGrant(*grant);
    return;
  }
  if (migration_ != nullptr) {
    // Server <-> server traffic (DESIGN.md §9); ignored entirely by pool-less servers.
    if (const auto* begin = std::get_if<MigrateBeginMsg>(&msg.body)) {
      migration_->OnMigrateBegin(*begin, from);
      return;
    }
    if (const auto* chunk = std::get_if<CheckpointChunkMsg>(&msg.body)) {
      migration_->OnCheckpointChunk(*chunk, from);
      return;
    }
    if (const auto* commit = std::get_if<MigrateCommitMsg>(&msg.body)) {
      migration_->OnMigrateCommit(*commit, from);
      return;
    }
    if (const auto* abort = std::get_if<MigrateAbortMsg>(&msg.body)) {
      migration_->OnMigrateAbort(*abort, from);
      return;
    }
  }
  // Status / audio / pongs from consoles need no further action (the pong's job —
  // liveness — was done by NoteConsoleAlive above).
}

void SlimServer::HandleAttach(uint64_t card_id, NodeId from) {
  if (!auth_.Verify(card_id)) {
    return;  // Unknown card: the screen stays dark.
  }
  ServerSession* session = SessionForCard(card_id);
  if (session == nullptr && migration_ != nullptr) {
    // The card may live on another server in the pool: pull it (attach completes when the
    // migrated session installs) or restore it from the warm store if the owner is dead.
    MigrationManager::AdoptResult adopted = migration_->AdoptCard(card_id, from);
    if (adopted.pending) {
      return;
    }
    session = adopted.session;
  }
  if (session == nullptr) {
    session = &CreateSession(card_id);
    if (migration_ != nullptr) {
      migration_->NoteLocalSession(card_id);
    }
  }
  Lifecycle& lc = lifecycle_.at(session->id());
  if (lc.state == SessionState::kAttached && session->console() != from) {
    // Hotdesking: the card surfaced at another console. Release the old console first —
    // the blank notice enters the ordered pipeline ahead of the new console's repaint, so
    // the old console is told to stop before the new one starts.
    ++lifecycle_stats_.hotdesk_handoffs;
    console_to_session_.erase(session->console());
    ReleaseConsole(session->console(), session->id(), ReleaseReason::kHotdesk);
  }
  AttachSessionToConsole(*session, from);
}

void SlimServer::HandleDetach(uint64_t card_id, NodeId from) {
  ServerSession* session = SessionForCard(card_id);
  if (session != nullptr && session->attached() && session->console() == from) {
    DetachSession(*session, ReleaseReason::kCardRemoved);
  }
}

void SlimServer::AttachSessionToConsole(ServerSession& session, NodeId console) {
  // A console shows one session: if another session was on this screen, it loses it (its
  // user's card is gone — a new card was inserted over it).
  const auto shown = console_to_session_.find(console);
  if (shown != console_to_session_.end() && shown->second != session.id()) {
    if (ServerSession* old = FindSession(shown->second)) {
      DetachSession(*old, ReleaseReason::kReplaced);
    } else {
      console_to_session_.erase(shown);
    }
  }
  // A re-attach supersedes any in-flight blank notice for this console: without this, a
  // delayed release re-send could blank the screen right after the repaint below.
  CancelPendingReleases(console);

  Lifecycle& lc = lifecycle_.at(session.id());
  lc.state = SessionState::kAttached;
  lc.last_heard = sim_->now();
  lc.missed_probes = 0;
  lc.probe_gap = options_.lifecycle.keepalive_interval;
  if (lc.evict_event != kInvalidEventId) {
    sim_->Cancel(lc.evict_event);
    lc.evict_event = kInvalidEventId;
  }
  console_to_session_[console] = session.id();
  ++lifecycle_stats_.attaches;
  if (options_.pacing.enabled) {
    // Ask the console's allocator for this session's flows before the repaint enters the
    // pipeline, so the grants are usually in force by the time steady-state traffic flows.
    RequestSessionBandwidth(session, console);
  }
  if (migration_ != nullptr) {
    // Before the repaint's first send: raise the seq floor for a migrated session and
    // close the blackout clock if one is running for this card.
    migration_->OnSessionAttached(lc.card_id, session.id(), console);
  }
  // ForceRepaintAll + Flush: the console's framebuffer is soft state and starts black.
  session.AttachConsole(console);
  ArmProbe(session.id(), lc.probe_gap);
}

void SlimServer::DetachSession(ServerSession& session, ReleaseReason reason) {
  const auto it = lifecycle_.find(session.id());
  if (it == lifecycle_.end() || it->second.state == SessionState::kDetached) {
    return;
  }
  Lifecycle& lc = it->second;
  lc.state = SessionState::kDetached;
  if (lc.probe_event != kInvalidEventId) {
    sim_->Cancel(lc.probe_event);
    lc.probe_event = kInvalidEventId;
  }
  const NodeId console = session.console();
  const auto shown = console_to_session_.find(console);
  if (shown != console_to_session_.end() && shown->second == session.id()) {
    console_to_session_.erase(shown);
  }
  ReleaseConsole(console, session.id(), reason);
  session.DetachConsole();
  ++lifecycle_stats_.detaches;
  if (LatencyAudit* audit = LatencyAudit::Global();
      audit != nullptr && (reason == ReleaseReason::kLivenessTimeout ||
                           reason == ReleaseReason::kEvicted)) {
    // A silent console or a forced eviction is an incident, not a hotdesk move: capture
    // the flight ring while the events leading up to it are still in it.
    audit->NoteForcedDetach(session.id(), static_cast<int>(reason), sim_->now());
  }
  ScheduleEviction(session.id());
}

void SlimServer::ReleaseConsole(NodeId console, uint32_t session_id, ReleaseReason reason) {
  if (options_.pacing.enabled) {
    // The queued backlog is for a console about to blank: cancel it so the release notice
    // is neither stuck behind nor overtaken by worthless bytes, and forget the old
    // console's grants — the next console's allocator starts fresh.
    ResetSessionPacing(session_id);
  }
  ++lifecycle_stats_.releases_sent;
  Transmit(console, session_id, SessionReleaseMsg{reason}, 0);
  // Bounded idempotent re-sends: a lost notice would otherwise leave the console showing
  // the dead session forever, since nothing else flows there to expose the loss. A newer
  // release for the same console supersedes the pending copies.
  CancelPendingReleases(console);
  if (options_.lifecycle.release_resends <= 0) {
    return;
  }
  auto& pending = pending_releases_[console];
  for (int i = 1; i <= options_.lifecycle.release_resends; ++i) {
    pending.push_back(sim_->Schedule(
        i * options_.lifecycle.release_resend_gap, [this, console, session_id, reason] {
          ++lifecycle_stats_.releases_sent;
          Transmit(console, session_id, SessionReleaseMsg{reason}, 0);
        }));
  }
}

void SlimServer::CancelPendingReleases(NodeId console) {
  const auto it = pending_releases_.find(console);
  if (it == pending_releases_.end()) {
    return;
  }
  for (const EventId id : it->second) {
    sim_->Cancel(id);  // no-op for copies that already went out
  }
  pending_releases_.erase(it);
}

void SlimServer::NoteConsoleAlive(NodeId from) {
  const auto it = console_to_session_.find(from);
  if (it == console_to_session_.end()) {
    return;
  }
  const auto lc = lifecycle_.find(it->second);
  if (lc == lifecycle_.end() || lc->second.state != SessionState::kAttached) {
    return;
  }
  lc->second.last_heard = sim_->now();
  lc->second.missed_probes = 0;
  lc->second.probe_gap = options_.lifecycle.keepalive_interval;
}

void SlimServer::ArmProbe(uint32_t session_id, SimDuration gap) {
  if (options_.lifecycle.keepalive_interval <= 0) {
    return;
  }
  Lifecycle& lc = lifecycle_.at(session_id);
  if (lc.probe_event != kInvalidEventId) {
    sim_->Cancel(lc.probe_event);
  }
  lc.probe_event = sim_->Schedule(gap, [this, session_id] { OnProbeTimer(session_id); });
}

void SlimServer::OnProbeTimer(uint32_t session_id) {
  const auto it = lifecycle_.find(session_id);
  if (it == lifecycle_.end() || it->second.state != SessionState::kAttached) {
    return;
  }
  Lifecycle& lc = it->second;
  lc.probe_event = kInvalidEventId;
  ServerSession* session = FindSession(session_id);
  if (session == nullptr || !session->attached()) {
    return;
  }
  const SimTime now = sim_->now();
  if (now - lc.last_heard > options_.lifecycle.keepalive_timeout) {
    // The console has been silent across a whole probe window: count the miss and back
    // off the re-probe gap (bounded) so a dead console is not ping-hammered.
    ++lc.missed_probes;
    lc.probe_gap = std::min<SimDuration>(lc.probe_gap * 2,
                                         options_.lifecycle.probe_backoff_max);
    if (lc.missed_probes >= options_.lifecycle.max_missed_probes) {
      ++lifecycle_stats_.keepalive_timeouts;
      DetachSession(*session, ReleaseReason::kLivenessTimeout);
      return;
    }
  } else {
    lc.missed_probes = 0;
    lc.probe_gap = options_.lifecycle.keepalive_interval;
  }
  ++lifecycle_stats_.probes_sent;
  Transmit(session->console(), session_id, PingMsg{static_cast<uint64_t>(now)}, 0);
  ArmProbe(session_id, lc.probe_gap);
}

void SlimServer::ScheduleEviction(uint32_t session_id) {
  if (options_.lifecycle.evict_after <= 0) {
    return;
  }
  Lifecycle& lc = lifecycle_.at(session_id);
  if (lc.evict_event != kInvalidEventId) {
    sim_->Cancel(lc.evict_event);
  }
  lc.evict_event = sim_->Schedule(options_.lifecycle.evict_after,
                                  [this, session_id] { EvictSession(session_id); });
}

void SlimServer::EvictSession(uint32_t session_id) {
  const auto it = lifecycle_.find(session_id);
  if (it == lifecycle_.end() || it->second.state == SessionState::kAttached) {
    return;  // reattached (or already gone): the idle clock no longer applies
  }
  Lifecycle& lc = it->second;
  if (lc.probe_event != kInvalidEventId) {
    sim_->Cancel(lc.probe_event);
  }
  if (lc.evict_event != kInvalidEventId) {
    sim_->Cancel(lc.evict_event);
  }
  // Reclaim the card mapping only if it still points here (the card may have been re-bound
  // to a fresh session by CreateSession).
  const auto card = card_to_session_.find(lc.card_id);
  if (card != card_to_session_.end() && card->second == session_id) {
    card_to_session_.erase(card);
  }
  if (options_.pacing.enabled) {
    // Eviction hygiene: no cancelled session may leave queued sends, depth, or a flow
    // pacer behind in the transmit queue.
    ResetSessionPacing(session_id);
  }
  lifecycle_.erase(it);
  sessions_.erase(session_id);
  ++lifecycle_stats_.evictions;
}

}  // namespace slim
