// X11 protocol wire-cost model (the paper's comparison baseline, Figure 8).
//
// For each high-level drawing request the display server executes, these functions return
// the bytes the same operation would occupy on an X11 connection. Sizes follow the core
// protocol encoding (X Protocol Reference Manual): every request is a 4-byte-padded multiple
// with a 4-byte header core. X is modeled at 24-bit depth, where ZPixmap image data costs
// 4 bytes per pixel on the wire — the key structural difference from SLIM's packed 3-byte
// SET encoding that Figure 8 exposes on image-heavy applications.

#ifndef SRC_XPROTO_XCOST_H_
#define SRC_XPROTO_XCOST_H_

#include <cstdint>

namespace slim {

// PolyFillRectangle: 12-byte request + 8 bytes per rectangle.
int64_t XFillRectBytes(int rect_count = 1);

// PolyText8: 16-byte request + per-string item (2 bytes) + the characters, padded to 4.
int64_t XDrawTextBytes(int chars);

// CopyArea: fixed 28-byte request.
int64_t XCopyAreaBytes();

// PutImage, ZPixmap, depth 24: 24-byte request + 4 bytes per pixel (rows padded to 32-bit
// units, which the 4-byte pixel already satisfies).
int64_t XPutImageBytes(int64_t pixels);

// ChangeGC (color/font switches around text and fills): 12 + 4 per value.
int64_t XChangeGcBytes(int values = 1);

// Input delivery cost (server -> client event): all X events are 32 bytes.
int64_t XEventBytes();

// XPutImage for a video frame under X (Section 8.1: "a full 24 bits must be transmitted for
// each pixel", no compression possible) — used by the multimedia comparison.
int64_t XVideoFrameBytes(int32_t w, int32_t h);

}  // namespace slim

#endif  // SRC_XPROTO_XCOST_H_
