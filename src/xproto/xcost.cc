#include "src/xproto/xcost.h"

namespace slim {

namespace {

int64_t Pad4(int64_t n) { return (n + 3) & ~int64_t{3}; }

}  // namespace

int64_t XFillRectBytes(int rect_count) { return 12 + 8 * static_cast<int64_t>(rect_count); }

int64_t XDrawTextBytes(int chars) { return 16 + Pad4(2 + chars); }

int64_t XCopyAreaBytes() { return 28; }

int64_t XPutImageBytes(int64_t pixels) { return 24 + 4 * pixels; }

int64_t XChangeGcBytes(int values) { return 12 + 4 * static_cast<int64_t>(values); }

int64_t XEventBytes() { return 32; }

int64_t XVideoFrameBytes(int32_t w, int32_t h) {
  return XPutImageBytes(static_cast<int64_t>(w) * h);
}

}  // namespace slim
