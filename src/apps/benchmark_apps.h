// Concrete benchmark applications; see application.h for the class rationale.

#ifndef SRC_APPS_BENCHMARK_APPS_H_
#define SRC_APPS_BENCHMARK_APPS_H_

#include <string>
#include <vector>

#include "src/apps/application.h"

namespace slim {

// "Photoshop": image canvas with filters, brush strokes and tool chrome.
class ImageEditorApp : public Application {
 public:
  ImageEditorApp(ServerSession* session, Rng rng);

  AppKind kind() const override { return AppKind::kPhotoshop; }
  void Start() override;
  void OnKey(uint32_t keycode) override;
  void OnClick(int32_t x, int32_t y) override;

 private:
  Rect canvas_;
  int32_t brush_x_ = 0;
  int32_t brush_y_ = 0;
  bool panel_open_ = false;
};

// "Netscape": page renderer with inline images and scrolling.
class BrowserApp : public Application {
 public:
  BrowserApp(ServerSession* session, Rng rng);

  AppKind kind() const override { return AppKind::kNetscape; }
  void Start() override;
  void OnKey(uint32_t keycode) override;
  void OnClick(int32_t x, int32_t y) override;

 private:
  void RenderPage(bool full);
  void RenderStrip(const Rect& strip);

  Rect view_;
  int32_t scroll_row_ = 0;  // virtual document row at top of view
};

// "FrameMaker": document editor with character typing and page scrolling.
class DocEditorApp : public Application {
 public:
  DocEditorApp(ServerSession* session, Rng rng);

  AppKind kind() const override { return AppKind::kFrameMaker; }
  void Start() override;
  void OnKey(uint32_t keycode) override;
  void OnClick(int32_t x, int32_t y) override;

 private:
  void NewLine();

  Rect page_;
  int32_t cursor_x_ = 0;
  int32_t cursor_y_ = 0;
  int chars_typed_ = 0;
  bool menu_open_ = false;
};

// "PIM": mail/calendar with list navigation and pane switches.
class PimApp : public Application {
 public:
  PimApp(ServerSession* session, Rng rng);

  AppKind kind() const override { return AppKind::kPim; }
  void Start() override;
  void OnKey(uint32_t keycode) override;
  void OnClick(int32_t x, int32_t y) override;

 private:
  void RenderList();
  void RenderPreview();

  Rect list_;
  Rect preview_;
  int selected_ = 0;
  int32_t compose_x_ = 0;
};

}  // namespace slim

#endif  // SRC_APPS_BENCHMARK_APPS_H_
