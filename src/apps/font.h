// A deterministic bitmap font for the synthetic applications.
//
// The experiments never look at glyph shapes — only at the pixel statistics text produces
// (bicolor regions the encoder turns into BITMAP commands). Glyphs are therefore generated
// procedurally: each printable character gets a stable, text-like 1-bit pattern with an ink
// coverage of roughly 30%, empty margins between characters and lines, and an empty glyph
// for space. The same codepoint always yields the same pattern, so repainted text re-encodes
// identically.

#ifndef SRC_APPS_FONT_H_
#define SRC_APPS_FONT_H_

#include <array>
#include <string_view>
#include <vector>

#include "src/server/session.h"

namespace slim {

class Font {
 public:
  // Cell size defaults to 8x13, the classic fixed terminal font.
  explicit Font(int32_t width = 8, int32_t height = 13);

  int32_t char_width() const { return width_; }
  int32_t char_height() const { return height_; }
  int32_t line_height() const { return height_ + 2; }

  const GlyphBitmap& Glyph(char c) const;

  // Glyph pointers for a whole string, ready for ServerSession::DrawGlyphs.
  std::vector<const GlyphBitmap*> Shape(std::string_view text) const;

  int32_t TextWidth(std::string_view text) const {
    return static_cast<int32_t>(text.size()) * width_;
  }

 private:
  void BuildGlyph(char c);

  int32_t width_;
  int32_t height_;
  std::array<GlyphBitmap, 96> glyphs_;  // printable ASCII 0x20..0x7f
};

// Process-wide shared font (the apps all use the same face, as the paper's desktop did).
const Font& DefaultFont();

}  // namespace slim

#endif  // SRC_APPS_FONT_H_
