// Synthetic pixel content generators.
//
// The compression results depend on what kinds of pixels applications produce: photographic
// content defeats the SLIM encoder (SET), UI chrome is solid (FILL), text is bicolor
// (BITMAP). These generators produce each class deterministically from a seeded Rng.

#ifndef SRC_APPS_CONTENT_H_
#define SRC_APPS_CONTENT_H_

#include <string>
#include <vector>

#include "src/fb/framebuffer.h"
#include "src/util/rng.h"

namespace slim {

// Photograph-like block: smooth value-noise gradients plus per-pixel noise. Virtually every
// pixel differs from its neighbours, so the encoder must fall back to SET.
std::vector<Pixel> MakePhotoBlock(Rng* rng, int32_t w, int32_t h);

// Dithered/graphic content: a small palette with structured regions (like GIF artwork);
// compresses partially (some uniform chunks, some busy ones).
std::vector<Pixel> MakeArtBlock(Rng* rng, int32_t w, int32_t h);

// A line of pseudo-prose with word structure, for text rendering.
std::string MakeTextLine(Rng* rng, int max_chars);

// Deterministic UI palette helpers.
Pixel UiBackground();
Pixel UiPanel();
Pixel UiAccent();
Pixel UiText();

}  // namespace slim

#endif  // SRC_APPS_CONTENT_H_
