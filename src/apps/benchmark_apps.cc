#include "src/apps/benchmark_apps.h"

#include <algorithm>

#include "src/apps/content.h"
#include "src/util/check.h"

namespace slim {

const char* AppKindName(AppKind kind) {
  switch (kind) {
    case AppKind::kPhotoshop:
      return "Photoshop";
    case AppKind::kNetscape:
      return "Netscape";
    case AppKind::kFrameMaker:
      return "FrameMaker";
    case AppKind::kPim:
      return "PIM";
  }
  return "?";
}

Application::Application(ServerSession* session, Rng rng)
    : session_(session), rng_(rng), font_(&DefaultFont()) {
  SLIM_CHECK(session != nullptr);
}

void Application::BindInput() {
  session_->set_input_handler([this](const Message& msg) {
    if (const auto* key = std::get_if<KeyEventMsg>(&msg.body)) {
      if (key->pressed) {
        OnKey(key->keycode);
        session_->Flush();
      }
    } else if (const auto* mouse = std::get_if<MouseEventMsg>(&msg.body)) {
      if (!mouse->is_motion && mouse->buttons != 0) {
        OnClick(mouse->x, mouse->y);
        session_->Flush();
      }
    }
  });
}

void Application::Defer(SimDuration delay, std::function<void()> draw) {
  session_->simulator()->Schedule(delay, [this, draw = std::move(draw)]() {
    draw();
    session_->Flush();
  });
}

void Application::DrawTextLine(int32_t x, int32_t y, std::string_view text, Pixel fg,
                               Pixel bg) {
  const auto glyphs = font_->Shape(text);
  session_->DrawGlyphs(x, y, glyphs, fg, bg);
}

void Application::DrawPanel(const Rect& r, Pixel fill, Pixel border) {
  session_->FillRect(r, border);
  session_->FillRect(Rect{r.x + 1, r.y + 1, r.w - 2, r.h - 2}, fill);
}

std::unique_ptr<Application> MakeApplication(AppKind kind, ServerSession* session,
                                             uint64_t seed) {
  Rng rng(seed);
  switch (kind) {
    case AppKind::kPhotoshop:
      return std::make_unique<ImageEditorApp>(session, rng);
    case AppKind::kNetscape:
      return std::make_unique<BrowserApp>(session, rng);
    case AppKind::kFrameMaker:
      return std::make_unique<DocEditorApp>(session, rng);
    case AppKind::kPim:
      return std::make_unique<PimApp>(session, rng);
  }
  SLIM_CHECK(false);
}

// ---------------------------------------------------------------------------
// ImageEditorApp ("Photoshop")
// ---------------------------------------------------------------------------

ImageEditorApp::ImageEditorApp(ServerSession* session, Rng rng) : Application(session, rng) {
  const Rect bounds = this->session().framebuffer().bounds();
  canvas_ = Rect{48, 72, std::min(900, bounds.w - 220), std::min(640, bounds.h - 140)};
  brush_x_ = canvas_.x + canvas_.w / 2;
  brush_y_ = canvas_.y + canvas_.h / 2;
}

void ImageEditorApp::Start() {
  auto& s = session();
  s.FillRect(s.framebuffer().bounds(), UiBackground());
  // Menu bar and tool palette.
  DrawPanel(Rect{0, 0, s.framebuffer().bounds().w, 28}, UiPanel(), UiAccent());
  DrawTextLine(8, 8, "file edit image layer select filter view window", UiText(), UiPanel());
  DrawPanel(Rect{8, 48, 32, 420}, UiPanel(), UiAccent());
  // The photograph being edited.
  const auto photo = MakePhotoBlock(&rng(), canvas_.w, canvas_.h);
  s.PutImage(canvas_, photo);
  s.Flush();
}

void ImageEditorApp::OnKey(uint32_t keycode) {
  auto& s = session();
  if (keycode % 11 == 0) {
    // Tool switch: highlight a palette slot.
    const int slot = static_cast<int>(keycode % 12);
    DrawPanel(Rect{10, 50 + slot * 34, 28, 30}, UiAccent(), UiText());
    return;
  }
  // Brush dab: small photographic patch at a wandering cursor.
  const int32_t size = 16 + static_cast<int32_t>(rng().NextBelow(20));
  brush_x_ = std::clamp(brush_x_ + static_cast<int32_t>(rng().NextInRange(-40, 40)),
                        canvas_.x, canvas_.right() - size);
  brush_y_ = std::clamp(brush_y_ + static_cast<int32_t>(rng().NextInRange(-40, 40)),
                        canvas_.y, canvas_.bottom() - size);
  const Rect dab{brush_x_, brush_y_, size, size};
  s.PutImage(dab, MakePhotoBlock(&rng(), dab.w, dab.h));
}

void ImageEditorApp::OnClick(int32_t x, int32_t y) {
  auto& s = session();
  // Users aim at the canvas: clicks that the uniform model lands elsewhere mostly get
  // folded back onto it (tool palettes and dialogs take the remainder).
  const bool canvas_click =
      !panel_open_ && (canvas_.Contains(Point{x, y}) || rng().NextBool(0.75));
  if (canvas_click) {
    x = std::clamp(x, canvas_.x, canvas_.right() - 1);
    y = std::clamp(y, canvas_.y, canvas_.bottom() - 1);
    // Apply a filter to a selection around the click. Sizes are heavy-tailed: most
    // selections are modest, some span much of the canvas (Figure 3's Photoshop tail).
    const double scale = rng().NextLogNormal(5.3, 1.0);  // median ~200 px edge
    const int32_t w = std::clamp(static_cast<int32_t>(scale), 24, canvas_.w);
    const int32_t h = std::clamp(static_cast<int32_t>(scale * (0.7 + rng().NextDouble())), 24,
                                 canvas_.h);
    const Rect sel{std::clamp(x - w / 2, canvas_.x, canvas_.right() - w),
                   std::clamp(y - h / 2, canvas_.y, canvas_.bottom() - h), w, h};
    // Filter output statistics vary: most keep photographic detail, posterize/threshold
    // passes flatten toward a palette, and levels clamps can saturate a region solid.
    const double filter_kind = rng().NextDouble();
    if (filter_kind < 0.60) {
      s.PutImage(sel, MakePhotoBlock(&rng(), sel.w, sel.h));
    } else if (filter_kind < 0.85) {
      s.PutImage(sel, MakeArtBlock(&rng(), sel.w, sel.h));
    } else {
      s.FillRect(sel, MakePixel(static_cast<uint8_t>(rng().NextBelow(256)),
                                static_cast<uint8_t>(rng().NextBelow(256)),
                                static_cast<uint8_t>(rng().NextBelow(256))));
    }
    return;
  }
  // Toggle a dialog (levels/curves) over the canvas.
  const Rect dialog{canvas_.x + 120, canvas_.y + 80, 360, 240};
  if (!panel_open_) {
    DrawPanel(dialog, UiPanel(), UiText());
    for (int i = 0; i < 6; ++i) {
      DrawTextLine(dialog.x + 12, dialog.y + 16 + i * font().line_height(),
                   MakeTextLine(&rng(), 38), UiText(), UiPanel());
    }
    panel_open_ = true;
  } else {
    // Closing the dialog re-exposes the photograph beneath it.
    std::vector<Pixel> behind;
    session().framebuffer().ReadPixels(dialog, &behind);
    s.PutImage(dialog, MakePhotoBlock(&rng(), dialog.w, dialog.h));
    panel_open_ = false;
  }
}

// ---------------------------------------------------------------------------
// BrowserApp ("Netscape")
// ---------------------------------------------------------------------------

BrowserApp::BrowserApp(ServerSession* session, Rng rng) : Application(session, rng) {
  const Rect bounds = this->session().framebuffer().bounds();
  view_ = Rect{24, 96, std::min(980, bounds.w - 48), std::min(720, bounds.h - 140)};
}

void BrowserApp::Start() {
  auto& s = session();
  s.FillRect(s.framebuffer().bounds(), UiBackground());
  DrawPanel(Rect{0, 0, s.framebuffer().bounds().w, 64}, UiPanel(), UiAccent());
  DrawTextLine(8, 8, "back forward reload home search print security stop", UiText(),
               UiPanel());
  DrawTextLine(8, 34, "location: http://www.example.edu/research/slim.html", UiText(),
               UiPanel());
  RenderPage(/*full=*/true);
  s.Flush();
}

void BrowserApp::RenderPage(bool full) {
  auto& s = session();
  const Rect target =
      full ? view_ : Rect{view_.x, view_.y, view_.w, view_.h / 2};
  s.FillRect(target, kWhite);
  int32_t y = target.y + 8;
  // Headline.
  DrawTextLine(target.x + 12, y, MakeTextLine(&rng(), 40), UiAccent(), kWhite);
  y += font().line_height() * 2;
  // Images share one "download connection": their progressive strips paint sequentially.
  SimDuration paint_at =
      static_cast<SimDuration>(rng().NextExponential(200.0) * kMillisecond);
  // Body: paragraphs interleaved with images.
  while (y + font().line_height() < target.bottom()) {
    if (rng().NextBool(0.40)) {
      // Inline image (photograph or artwork), 1999-sized.
      const int32_t iw = 120 + static_cast<int32_t>(rng().NextBelow(280));
      const int32_t ih = std::min<int32_t>(
          90 + static_cast<int32_t>(rng().NextBelow(180)), target.bottom() - y - 4);
      if (ih < 40) {
        break;
      }
      const Rect img{target.x + 16 + static_cast<int32_t>(rng().NextBelow(60)), y, iw, ih};
      // Progressive rendering: the image paints in scanline strips as its data "arrives"
      // from the network, exactly how 1999 Netscape displayed JPEGs. This is what keeps
      // individual protocol bursts small even when a whole page is large (Figure 6).
      auto pixels = std::make_shared<std::vector<Pixel>>(
          rng().NextBool(0.7) ? MakePhotoBlock(&rng(), iw, ih)
                              : MakeArtBlock(&rng(), iw, ih));
      const int32_t strip_rows = std::max<int32_t>(1, 3600 / iw);
      for (int32_t row = 0; row < ih; row += strip_rows) {
        const int32_t rows = std::min(strip_rows, ih - row);
        Defer(paint_at, [this, img, pixels, iw, row, rows]() {
          std::vector<Pixel> strip(pixels->begin() + static_cast<size_t>(row) * iw,
                                   pixels->begin() + static_cast<size_t>(row + rows) * iw);
          session().PutImage(Rect{img.x, img.y + row, iw, rows}, strip);
        });
        paint_at +=
            static_cast<SimDuration>((50.0 + rng().NextExponential(55.0)) * kMillisecond);
      }
      paint_at += static_cast<SimDuration>(rng().NextExponential(120.0) * kMillisecond);
      y += ih + 10;
    } else {
      const int lines = 1 + static_cast<int>(rng().NextBelow(5));
      for (int i = 0; i < lines && y + font().line_height() < target.bottom(); ++i) {
        DrawTextLine(target.x + 12, y, MakeTextLine(&rng(), (target.w - 24) / 8), UiText(),
                     kWhite);
        y += font().line_height();
      }
      y += 6;
    }
  }
}

void BrowserApp::RenderStrip(const Rect& strip) {
  auto& s = session();
  s.FillRect(strip, kWhite);
  int32_t y = strip.y;
  while (y + font().line_height() <= strip.bottom()) {
    if (rng().NextBool(0.15)) {
      // Image slices scrolling into view are already decoded; they still paint in pieces.
      const int32_t ih = std::min<int32_t>(strip.bottom() - y,
                                           40 + static_cast<int32_t>(rng().NextBelow(60)));
      const int32_t iw = 120 + static_cast<int32_t>(rng().NextBelow(240));
      const Rect img{strip.x + 20, y, iw, ih};
      auto pixels = std::make_shared<std::vector<Pixel>>(MakePhotoBlock(&rng(), iw, ih));
      const int32_t strip_rows = std::max<int32_t>(1, 3600 / iw);
      SimDuration at = Milliseconds(10);
      for (int32_t row = 0; row < ih; row += strip_rows) {
        const int32_t rows = std::min(strip_rows, ih - row);
        Defer(at, [this, img, pixels, iw, row, rows]() {
          std::vector<Pixel> piece(pixels->begin() + static_cast<size_t>(row) * iw,
                                   pixels->begin() + static_cast<size_t>(row + rows) * iw);
          session().PutImage(Rect{img.x, img.y + row, iw, rows}, piece);
        });
        at += Milliseconds(60);
      }
      y += ih;
    } else {
      DrawTextLine(strip.x + 12, y, MakeTextLine(&rng(), (strip.w - 24) / 8), UiText(),
                   kWhite);
      y += font().line_height();
    }
  }
}

void BrowserApp::OnKey(uint32_t keycode) {
  auto& s = session();
  if (keycode % 6 != 0) {
    // Typing into the location bar or a form field: one glyph.
    const char c = static_cast<char>('a' + keycode % 26);
    const int32_t slot = 88 + static_cast<int32_t>(keycode % 48) * 8;
    DrawTextLine(slot, 34, std::string_view(&c, 1), UiText(), UiPanel());
    return;
  }
  // Scroll down three text lines: COPY the view up, render the exposed strip.
  const int32_t dy = font().line_height() * 3;
  s.CopyArea(view_.x, view_.y + dy, Rect{view_.x, view_.y, view_.w, view_.h - dy});
  RenderStrip(Rect{view_.x, view_.bottom() - dy, view_.w, dy});
  scroll_row_ += dy;
}

void BrowserApp::OnClick(int32_t x, int32_t y) {
  (void)x;
  (void)y;
  const double kind = rng().NextDouble();
  if (kind < 0.55) {
    RenderPage(/*full=*/true);  // followed a link
    scroll_row_ = 0;
  } else if (kind < 0.80) {
    RenderPage(/*full=*/false);  // in-page update (frame, image swap)
  } else {
    // Button highlight in the chrome.
    DrawPanel(Rect{8 + static_cast<int32_t>(rng().NextBelow(8)) * 56, 4, 52, 20}, UiAccent(),
              UiText());
  }
}

// ---------------------------------------------------------------------------
// DocEditorApp ("FrameMaker")
// ---------------------------------------------------------------------------

DocEditorApp::DocEditorApp(ServerSession* session, Rng rng) : Application(session, rng) {
  const Rect bounds = this->session().framebuffer().bounds();
  page_ = Rect{140, 80, std::min(860, bounds.w - 280), std::min(760, bounds.h - 160)};
  cursor_x_ = page_.x + 24;
  cursor_y_ = page_.y + 24;
}

void DocEditorApp::Start() {
  auto& s = session();
  s.FillRect(s.framebuffer().bounds(), UiBackground());
  DrawPanel(Rect{0, 0, s.framebuffer().bounds().w, 30}, UiPanel(), UiAccent());
  DrawTextLine(8, 9, "file edit format view special graphics table", UiText(), UiPanel());
  // Ruler.
  DrawPanel(Rect{page_.x, 44, page_.w, 18}, UiPanel(), UiText());
  // The page.
  DrawPanel(page_, kWhite, UiText());
  // Some existing document content.
  int32_t y = page_.y + 24;
  for (int line = 0; line < 8; ++line) {
    DrawTextLine(page_.x + 24, y, MakeTextLine(&rng(), (page_.w - 48) / 8), UiText(), kWhite);
    y += font().line_height();
  }
  cursor_y_ = y;
  s.Flush();
}

void DocEditorApp::NewLine() {
  cursor_x_ = page_.x + 24;
  cursor_y_ += font().line_height();
  if (cursor_y_ + font().line_height() > page_.bottom() - 16) {
    // Scroll the page body up one line.
    auto& s = session();
    const int32_t dy = font().line_height();
    const Rect body{page_.x + 2, page_.y + 2, page_.w - 4, page_.h - 4};
    s.CopyArea(body.x, body.y + dy, Rect{body.x, body.y, body.w, body.h - dy});
    s.FillRect(Rect{body.x, body.bottom() - dy, body.w, dy}, kWhite);
    cursor_y_ -= dy;
  }
}

void DocEditorApp::OnKey(uint32_t keycode) {
  ++chars_typed_;
  if (keycode % 9 == 0 || cursor_x_ + font().char_width() > page_.right() - 24) {
    NewLine();
    return;
  }
  if (keycode % 23 == 1) {
    // Style/zoom change: the visible half of the page repaints (bicolor text, cheap for
    // SLIM's BITMAP but a large pixel count).
    auto& s = session();
    const Rect half{page_.x + 2, page_.y + 2, page_.w - 4, page_.h / 2};
    s.FillRect(half, kWhite);
    for (int i = 0; i < half.h / font().line_height() - 1; ++i) {
      DrawTextLine(half.x + 22, half.y + 8 + i * font().line_height(),
                   MakeTextLine(&rng(), (half.w - 44) / 8), UiText(), kWhite);
    }
    return;
  }
  const char c = static_cast<char>('a' + keycode % 26);
  DrawTextLine(cursor_x_, cursor_y_, std::string_view(&c, 1), UiText(), kWhite);
  cursor_x_ += font().char_width();
  if (chars_typed_ % 96 == 0) {
    // Paragraph reflow: repaint a few lines.
    auto& s = session();
    const Rect para{page_.x + 24, std::max(page_.y + 24, cursor_y_ - 3 * font().line_height()),
                    page_.w - 48, 4 * font().line_height()};
    s.FillRect(para, kWhite);
    for (int i = 0; i < 4; ++i) {
      DrawTextLine(para.x, para.y + i * font().line_height(),
                   MakeTextLine(&rng(), para.w / 8), UiText(), kWhite);
    }
  }
}

void DocEditorApp::OnClick(int32_t x, int32_t y) {
  auto& s = session();
  if (y < 30 || menu_open_) {
    const Rect menu{60, 30, 180, 220};
    if (!menu_open_) {
      DrawPanel(menu, UiPanel(), UiText());
      for (int i = 0; i < 12; ++i) {
        DrawTextLine(menu.x + 8, menu.y + 6 + i * font().line_height(),
                     MakeTextLine(&rng(), 20), UiText(), UiPanel());
      }
      menu_open_ = true;
    } else {
      // Close: re-expose what the menu covered (background + page corner + text).
      s.FillRect(menu, UiBackground());
      const Rect page_part = Intersect(menu, page_);
      if (!page_part.empty()) {
        s.FillRect(page_part, kWhite);
      }
      menu_open_ = false;
    }
    return;
  }
  // Reposition the insertion point: the affected line repaints with the new caret.
  if (page_.Contains(Point{x, y})) {
    cursor_x_ = std::clamp(x, page_.x + 24, page_.right() - 32);
    cursor_y_ = std::clamp(y, page_.y + 24, page_.bottom() - 32);
    const Rect line{page_.x + 2, cursor_y_ - 1, page_.w - 4, font().line_height()};
    s.FillRect(line, kWhite);
    DrawTextLine(line.x + 22, cursor_y_, MakeTextLine(&rng(), (line.w - 44) / 8), UiText(),
                 kWhite);
    s.FillRect(Rect{cursor_x_, cursor_y_, 2, font().char_height()}, UiText());
  }
}

// ---------------------------------------------------------------------------
// PimApp
// ---------------------------------------------------------------------------

PimApp::PimApp(ServerSession* session, Rng rng) : Application(session, rng) {
  const Rect bounds = this->session().framebuffer().bounds();
  list_ = Rect{200, 60, std::min(560, bounds.w - 420), 380};
  preview_ = Rect{200, 460, std::min(860, bounds.w - 280), std::min(420, bounds.h - 520)};
  compose_x_ = preview_.x + 8;
}

void PimApp::RenderList() {
  auto& s = session();
  DrawPanel(list_, kWhite, UiText());
  for (int i = 0; i < 20; ++i) {
    const int32_t y = list_.y + 6 + i * font().line_height();
    if (y + font().line_height() > list_.bottom()) {
      break;
    }
    const Pixel bg = (i == selected_) ? UiAccent() : kWhite;
    const Pixel fg = (i == selected_) ? kWhite : UiText();
    s.FillRect(Rect{list_.x + 2, y - 1, list_.w - 4, font().line_height()}, bg);
    DrawTextLine(list_.x + 8, y, MakeTextLine(&rng(), (list_.w - 16) / 8), fg, bg);
  }
}

void PimApp::RenderPreview() {
  DrawPanel(preview_, kWhite, UiText());
  const int lines = std::min(18, (preview_.h - 12) / font().line_height());
  for (int i = 0; i < lines; ++i) {
    DrawTextLine(preview_.x + 8, preview_.y + 6 + i * font().line_height(),
                 MakeTextLine(&rng(), (preview_.w - 16) / 8), UiText(), kWhite);
  }
}

void PimApp::Start() {
  auto& s = session();
  s.FillRect(s.framebuffer().bounds(), UiBackground());
  DrawPanel(Rect{0, 0, s.framebuffer().bounds().w, 26}, UiPanel(), UiAccent());
  DrawTextLine(8, 7, "mailbox message calendar compose reply forward delete", UiText(),
               UiPanel());
  // Folder list.
  DrawPanel(Rect{24, 60, 150, 700}, UiPanel(), UiText());
  for (int i = 0; i < 14; ++i) {
    DrawTextLine(32, 68 + i * font().line_height() * 2, MakeTextLine(&rng(), 14), UiText(),
                 UiPanel());
  }
  RenderList();
  RenderPreview();
  s.Flush();
}

void PimApp::OnKey(uint32_t keycode) {
  if (keycode % 7 == 0) {
    auto& s = session();
    // Arrow navigation: move the selection bar (two rows repaint).
    const int old = selected_;
    selected_ = (selected_ + 1) % 20;
    for (const int row : {old, selected_}) {
      const int32_t y = list_.y + 6 + row * font().line_height();
      if (y + font().line_height() > list_.bottom()) {
        continue;
      }
      const Pixel bg = (row == selected_) ? UiAccent() : kWhite;
      const Pixel fg = (row == selected_) ? kWhite : UiText();
      s.FillRect(Rect{list_.x + 2, y - 1, list_.w - 4, font().line_height()}, bg);
      DrawTextLine(list_.x + 8, y, MakeTextLine(&rng(), (list_.w - 16) / 8), fg, bg);
    }
    return;
  }
  // Compose typing: one character into the preview/compose pane.
  const char c = static_cast<char>('a' + keycode % 26);
  DrawTextLine(compose_x_, preview_.bottom() - font().line_height() - 4,
               std::string_view(&c, 1), UiText(), kWhite);
  compose_x_ += font().char_width();
  if (compose_x_ > preview_.right() - 16) {
    compose_x_ = preview_.x + 8;
  }
}

void PimApp::OnClick(int32_t x, int32_t y) {
  if (list_.Contains(Point{x, y})) {
    selected_ = std::clamp((y - list_.y - 6) / font().line_height(), 0, 19);
    RenderList();
    RenderPreview();  // open the message
  } else if (x < 180) {
    // Folder switch: both panes refresh.
    RenderList();
    RenderPreview();
  } else {
    RenderPreview();  // reply/expand in the preview pane
  }
}

}  // namespace slim
