// Synthetic benchmark applications (paper Table 2).
//
// Four GUI applications stand in for the paper's user-study programs. They are not pixel
// replicas; what matters is that each reproduces its original's *display I/O class*:
//
//   ImageEditorApp ("Photoshop")  — photographic canvas, filter regions, brush dabs:
//                                   SET-heavy, largest incompressible updates.
//   BrowserApp     ("Netscape")   — page loads mixing text with inline images, scrolling:
//                                   large mixed updates, moderate compressibility.
//   DocEditorApp   ("FrameMaker") — character-at-a-time typing, line wraps, page scrolls:
//                                   tiny bicolor updates, heavy COPY from scrolling.
//   PimApp         ("PIM")        — mail/calendar forms, list navigation, pane switches:
//                                   small text/fill updates.
//
// Each application draws through a ServerSession, so every experiment exercises the real
// encoder, transport and console decode paths.

#ifndef SRC_APPS_APPLICATION_H_
#define SRC_APPS_APPLICATION_H_

#include <functional>
#include <memory>

#include "src/apps/font.h"
#include "src/server/session.h"
#include "src/util/rng.h"

namespace slim {

enum class AppKind {
  kPhotoshop = 0,
  kNetscape = 1,
  kFrameMaker = 2,
  kPim = 3,
};
constexpr int kAppKindCount = 4;

const char* AppKindName(AppKind kind);

class Application {
 public:
  Application(ServerSession* session, Rng rng);
  virtual ~Application() = default;

  virtual AppKind kind() const = 0;

  // Paints the initial screen (not attributed to any input event).
  virtual void Start() = 0;

  virtual void OnKey(uint32_t keycode) = 0;
  virtual void OnClick(int32_t x, int32_t y) = 0;

  // Routes the session's input messages into OnKey/OnClick and flushes after each event.
  void BindInput();

 protected:
  ServerSession& session() { return *session_; }
  Rng& rng() { return rng_; }
  const Font& font() const { return *font_; }

  // Drawing helpers shared by the apps.
  void DrawTextLine(int32_t x, int32_t y, std::string_view text, Pixel fg, Pixel bg);
  void DrawPanel(const Rect& r, Pixel fill, Pixel border);

  // Schedules deferred drawing (progressive rendering: images painting as they "download").
  // The callback runs on the session's simulator and flushes afterwards.
  void Defer(SimDuration delay, std::function<void()> draw);

 private:
  ServerSession* session_;
  Rng rng_;
  const Font* font_;
};

std::unique_ptr<Application> MakeApplication(AppKind kind, ServerSession* session,
                                             uint64_t seed);

}  // namespace slim

#endif  // SRC_APPS_APPLICATION_H_
