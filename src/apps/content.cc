#include "src/apps/content.h"

#include <algorithm>
#include <cmath>

namespace slim {

namespace {

uint8_t Clamp255(double v) {
  return static_cast<uint8_t>(std::clamp(v, 0.0, 255.0));
}

}  // namespace

std::vector<Pixel> MakePhotoBlock(Rng* rng, int32_t w, int32_t h) {
  std::vector<Pixel> out(static_cast<size_t>(w) * h);
  // Coarse lattice of random color anchors, bilinearly interpolated, plus grain.
  constexpr int32_t kCell = 16;
  const int32_t gw = w / kCell + 2;
  const int32_t gh = h / kCell + 2;
  std::vector<double> lattice_r(static_cast<size_t>(gw) * gh);
  std::vector<double> lattice_g(lattice_r.size());
  std::vector<double> lattice_b(lattice_r.size());
  for (size_t i = 0; i < lattice_r.size(); ++i) {
    lattice_r[i] = rng->NextDouble() * 255.0;
    lattice_g[i] = rng->NextDouble() * 255.0;
    lattice_b[i] = rng->NextDouble() * 255.0;
  }
  auto sample = [&](const std::vector<double>& lat, double x, double y) {
    const int32_t x0 = static_cast<int32_t>(x / kCell);
    const int32_t y0 = static_cast<int32_t>(y / kCell);
    const double fx = x / kCell - x0;
    const double fy = y / kCell - y0;
    const auto at = [&](int32_t gx, int32_t gy) {
      return lat[static_cast<size_t>(std::min(gy, gh - 1)) * gw + std::min(gx, gw - 1)];
    };
    const double top = at(x0, y0) * (1 - fx) + at(x0 + 1, y0) * fx;
    const double bot = at(x0, y0 + 1) * (1 - fx) + at(x0 + 1, y0 + 1) * fx;
    return top * (1 - fy) + bot * fy;
  };
  for (int32_t y = 0; y < h; ++y) {
    for (int32_t x = 0; x < w; ++x) {
      const double grain = (rng->NextDouble() - 0.5) * 24.0;
      out[static_cast<size_t>(y) * w + x] =
          MakePixel(Clamp255(sample(lattice_r, x, y) + grain),
                    Clamp255(sample(lattice_g, x, y) + grain),
                    Clamp255(sample(lattice_b, x, y) + grain));
    }
  }
  return out;
}

std::vector<Pixel> MakeArtBlock(Rng* rng, int32_t w, int32_t h) {
  std::vector<Pixel> out(static_cast<size_t>(w) * h);
  // A small palette and rectangular patches; produces a mix of FILLable and busy chunks.
  Pixel palette[6];
  for (Pixel& p : palette) {
    p = MakePixel(static_cast<uint8_t>(rng->NextBelow(256)),
                  static_cast<uint8_t>(rng->NextBelow(256)),
                  static_cast<uint8_t>(rng->NextBelow(256)));
  }
  std::fill(out.begin(), out.end(), palette[0]);
  const int patches = 8 + static_cast<int>(rng->NextBelow(12));
  for (int i = 0; i < patches; ++i) {
    const int32_t pw = 4 + static_cast<int32_t>(rng->NextBelow(static_cast<uint64_t>(w)));
    const int32_t ph = 4 + static_cast<int32_t>(rng->NextBelow(static_cast<uint64_t>(h) / 2 + 1));
    const int32_t px = static_cast<int32_t>(rng->NextBelow(static_cast<uint64_t>(w)));
    const int32_t py = static_cast<int32_t>(rng->NextBelow(static_cast<uint64_t>(h)));
    const Pixel color = palette[rng->NextBelow(6)];
    const bool dither = rng->NextBool(0.3);
    for (int32_t y = py; y < std::min(h, py + ph); ++y) {
      for (int32_t x = px; x < std::min(w, px + pw); ++x) {
        if (!dither || ((x ^ y) & 1) == 0) {
          out[static_cast<size_t>(y) * w + x] = color;
        }
      }
    }
  }
  return out;
}

std::string MakeTextLine(Rng* rng, int max_chars) {
  static constexpr char kLetters[] = "etaoinshrdlucmfwypvbgkqjxz";
  std::string line;
  while (static_cast<int>(line.size()) < max_chars) {
    const int word = 2 + static_cast<int>(rng->NextBelow(8));
    for (int i = 0; i < word && static_cast<int>(line.size()) < max_chars; ++i) {
      line.push_back(kLetters[rng->NextBelow(sizeof(kLetters) - 1)]);
    }
    if (static_cast<int>(line.size()) < max_chars) {
      line.push_back(' ');
    }
  }
  return line;
}

Pixel UiBackground() { return MakePixel(214, 214, 206); }
Pixel UiPanel() { return MakePixel(239, 239, 231); }
Pixel UiAccent() { return MakePixel(49, 97, 156); }
Pixel UiText() { return MakePixel(16, 16, 16); }

}  // namespace slim
