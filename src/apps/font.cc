#include "src/apps/font.h"

#include "src/util/check.h"
#include "src/util/rng.h"

namespace slim {

Font::Font(int32_t width, int32_t height) : width_(width), height_(height) {
  SLIM_CHECK(width >= 4 && height >= 6);
  for (int c = 0x20; c < 0x80; ++c) {
    BuildGlyph(static_cast<char>(c));
  }
}

void Font::BuildGlyph(char c) {
  GlyphBitmap& glyph = glyphs_[static_cast<size_t>(c) - 0x20];
  glyph.width = width_;
  glyph.height = height_;
  const size_t stride = (static_cast<size_t>(width_) + 7) / 8;
  glyph.bits.assign(stride * static_cast<size_t>(height_), 0);
  if (c == ' ') {
    return;
  }
  // Stable per-character pattern: strokes inside a 1-pixel margin. Vertical and horizontal
  // runs look enough like letterforms to produce realistic bicolor statistics.
  Rng rng(0xf047u ^ (static_cast<uint64_t>(c) * 0x9e3779b97f4a7c15ull));
  auto set_bit = [&](int32_t x, int32_t y) {
    if (x < 1 || y < 1 || x >= width_ - 1 || y >= height_ - 2) {
      return;  // margins keep adjacent characters separated
    }
    glyph.bits[static_cast<size_t>(y) * stride + (x >> 3)] |=
        static_cast<uint8_t>(1u << (7 - (x & 7)));
  };
  const int strokes = 3 + static_cast<int>(rng.NextBelow(3));
  for (int s = 0; s < strokes; ++s) {
    const bool vertical = rng.NextBool(0.5);
    const int32_t x0 = static_cast<int32_t>(rng.NextBelow(static_cast<uint64_t>(width_)));
    const int32_t y0 = static_cast<int32_t>(rng.NextBelow(static_cast<uint64_t>(height_)));
    const int32_t len = 2 + static_cast<int32_t>(rng.NextBelow(
                                static_cast<uint64_t>(vertical ? height_ : width_)));
    for (int32_t i = 0; i < len; ++i) {
      set_bit(vertical ? x0 : x0 + i, vertical ? y0 + i : y0);
    }
  }
}

const GlyphBitmap& Font::Glyph(char c) const {
  if (c < 0x20 || static_cast<unsigned char>(c) >= 0x80) {
    c = '?';
  }
  return glyphs_[static_cast<size_t>(c) - 0x20];
}

std::vector<const GlyphBitmap*> Font::Shape(std::string_view text) const {
  std::vector<const GlyphBitmap*> out;
  out.reserve(text.size());
  for (const char c : text) {
    out.push_back(&Glyph(c));
  }
  return out;
}

const Font& DefaultFont() {
  static const Font font;
  return font;
}

}  // namespace slim
