// Synthetic video sources (paper Section 7.1/7.2 substitutes).
//
// We have neither an MPEG-II clip nor an NTSC capture card, and the experiments do not care
// about picture content — they measure the server decode pipeline, the CSCS encoding rate,
// bandwidth, and the console's sustained processing. SyntheticVideoSource produces moving,
// photograph-statistics YUV frames (panning gradients, moving objects, film grain), and the
// server-side costs of the codecs it stands in for are modeled in VideoCpuModel.

#ifndef SRC_VIDEO_VIDEO_SOURCE_H_
#define SRC_VIDEO_VIDEO_SOURCE_H_

#include <cstdint>

#include "src/color/yuv.h"
#include "src/util/rng.h"
#include "src/util/time.h"

namespace slim {

class SyntheticVideoSource {
 public:
  SyntheticVideoSource(int32_t width, int32_t height, uint64_t seed);

  int32_t width() const { return width_; }
  int32_t height() const { return height_; }

  // Produces frame `index` (deterministic; frames differ from each other).
  YuvImage Frame(int index) const;

  // Interlaced field capture: even or odd lines only, at half height (the NTSC path).
  YuvImage Field(int index, bool odd) const;

 private:
  int32_t width_;
  int32_t height_;
  uint64_t seed_;
};

// Server-side CPU costs of the media pipelines, calibrated to the paper's reported rates on
// a ~336 MHz UltraSPARC-II (Section 7: MPEG-II 720x480 at 20 Hz consumes nearly a CPU;
// JPEG NTSC field decode fully consumes one; Quake translation costs 30 ms/frame and its
// transmission 13 ms/frame at 640x480).
struct VideoCpuModel {
  double mpeg_decode_ns_per_pixel = 60.0;   // full-frame MPEG-II decode
  double jpeg_decode_ns_per_pixel = 250.0;  // JPEG field decompression
  double convert_ns_per_pixel = 60.0;       // YUV extraction / packing for CSCS
  double translate_ns_per_pixel = 97.0;     // Quake 8-bit -> 5-bit YUV table lookup
  double send_ns_per_byte = 30.0;           // UDP transmit path

  SimDuration MpegFrameCost(int64_t decode_pixels, int64_t sent_pixels) const;
  SimDuration JpegFieldCost(int64_t pixels) const;
  SimDuration QuakeTranslateCost(int64_t pixels) const;
  SimDuration SendCost(int64_t bytes) const;
};

}  // namespace slim

#endif  // SRC_VIDEO_VIDEO_SOURCE_H_
