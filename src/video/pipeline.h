// Media pipeline: paces frames from a producer through a ServerSession's CSCS path.
//
// Models one media application instance running on one server CPU (the paper's players are
// single-threaded): a frame timer fires at the target rate; if the CPU is still producing or
// transmitting the previous frame, the tick is dropped — exactly how the paper's players
// degrade to 16-21 Hz when the server is the bottleneck. Frame production cost comes from
// the caller (decode/translate model), transmission CPU cost from VideoCpuModel::SendCost.

#ifndef SRC_VIDEO_PIPELINE_H_
#define SRC_VIDEO_PIPELINE_H_

#include <functional>

#include "src/server/session.h"
#include "src/sim/simulator.h"
#include "src/video/video_source.h"

namespace slim {

struct MediaPipelineOptions {
  double target_fps = 30.0;
  CscsDepth depth = CscsDepth::k6;
  Rect dst;                // on-screen destination (console upscales if larger than frames)
  VideoCpuModel cpu;
  SimDuration run_for = Seconds(10);
};

class MediaPipeline {
 public:
  // Produces frame `index` and reports the server CPU cost of producing it.
  using FrameProducer = std::function<YuvImage(int index, SimDuration* cpu_cost)>;

  MediaPipeline(Simulator* sim, ServerSession* session, MediaPipelineOptions options,
                FrameProducer producer);

  void Start();

  int frames_sent() const { return frames_sent_; }
  int frames_dropped() const { return frames_dropped_; }
  int64_t bytes_sent() const { return bytes_sent_; }
  // The bandwidth this stream asked its console for at Start (0 before Start).
  int64_t offered_bps() const { return offered_bps_; }
  double AchievedFps() const;
  double AverageMbps() const;

 private:
  void Tick(int index);

  Simulator* sim_;
  ServerSession* session_;
  MediaPipelineOptions options_;
  FrameProducer producer_;
  SimTime started_at_ = 0;
  SimTime cpu_busy_until_ = 0;
  int frames_sent_ = 0;
  int frames_dropped_ = 0;
  int64_t bytes_sent_ = 0;
  int64_t offered_bps_ = 0;
};

}  // namespace slim

#endif  // SRC_VIDEO_PIPELINE_H_
