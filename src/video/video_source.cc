#include "src/video/video_source.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace slim {

SyntheticVideoSource::SyntheticVideoSource(int32_t width, int32_t height, uint64_t seed)
    : width_(width), height_(height), seed_(seed) {
  SLIM_CHECK(width > 0 && height > 0);
}

YuvImage SyntheticVideoSource::Frame(int index) const {
  YuvImage frame(width_, height_);
  // A slowly panning luminance field, two moving "objects", and per-frame grain. Everything
  // derives from (seed, index, x, y) so frames are reproducible and genuinely moving.
  const double t = index * 0.12;
  const double pan_x = 40.0 * std::sin(t * 0.35);
  const double pan_y = 24.0 * std::cos(t * 0.21);
  const double ox1 = width_ * (0.5 + 0.3 * std::sin(t));
  const double oy1 = height_ * (0.5 + 0.3 * std::cos(t * 1.3));
  const double ox2 = width_ * (0.5 + 0.35 * std::cos(t * 0.7));
  const double oy2 = height_ * (0.5 + 0.25 * std::sin(t * 0.9));
  Rng grain(seed_ ^ (static_cast<uint64_t>(index) * 0x9e3779b97f4a7c15ull));
  for (int32_t y = 0; y < height_; ++y) {
    for (int32_t x = 0; x < width_; ++x) {
      const double gx = (x + pan_x) * 0.02;
      const double gy = (y + pan_y) * 0.02;
      double luma = 110.0 + 70.0 * std::sin(gx) * std::cos(gy * 1.4);
      double u = 128.0 + 30.0 * std::sin(gx * 0.5 + t);
      double v = 128.0 + 30.0 * std::cos(gy * 0.5 - t);
      const double d1 = std::hypot(x - ox1, y - oy1);
      if (d1 < 40.0) {
        luma = 220.0 - d1;
        u = 90.0;
        v = 170.0;
      }
      const double d2 = std::hypot(x - ox2, y - oy2);
      if (d2 < 28.0) {
        luma = 60.0 + d2;
        u = 170.0;
        v = 90.0;
      }
      luma += (grain.NextDouble() - 0.5) * 10.0;
      frame.Set(x, y,
                Yuv{static_cast<uint8_t>(std::clamp(luma, 0.0, 255.0)),
                    static_cast<uint8_t>(std::clamp(u, 0.0, 255.0)),
                    static_cast<uint8_t>(std::clamp(v, 0.0, 255.0))});
    }
  }
  return frame;
}

YuvImage SyntheticVideoSource::Field(int index, bool odd) const {
  const YuvImage full = Frame(index);
  YuvImage field(width_, std::max(1, height_ / 2));
  for (int32_t y = 0; y < field.height(); ++y) {
    const int32_t src_y = std::min(height_ - 1, y * 2 + (odd ? 1 : 0));
    for (int32_t x = 0; x < width_; ++x) {
      field.Set(x, y, full.At(x, src_y));
    }
  }
  return field;
}

SimDuration VideoCpuModel::MpegFrameCost(int64_t decode_pixels, int64_t sent_pixels) const {
  return static_cast<SimDuration>(mpeg_decode_ns_per_pixel *
                                  static_cast<double>(decode_pixels)) +
         static_cast<SimDuration>(convert_ns_per_pixel * static_cast<double>(sent_pixels));
}

SimDuration VideoCpuModel::JpegFieldCost(int64_t pixels) const {
  return static_cast<SimDuration>((jpeg_decode_ns_per_pixel + convert_ns_per_pixel) *
                                  static_cast<double>(pixels));
}

SimDuration VideoCpuModel::QuakeTranslateCost(int64_t pixels) const {
  return static_cast<SimDuration>(translate_ns_per_pixel * static_cast<double>(pixels));
}

SimDuration VideoCpuModel::SendCost(int64_t bytes) const {
  return static_cast<SimDuration>(send_ns_per_byte * static_cast<double>(bytes));
}

}  // namespace slim
