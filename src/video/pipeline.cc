#include "src/video/pipeline.h"

#include <algorithm>

#include "src/util/check.h"

namespace slim {

MediaPipeline::MediaPipeline(Simulator* sim, ServerSession* session,
                             MediaPipelineOptions options, FrameProducer producer)
    : sim_(sim), session_(session), options_(options), producer_(std::move(producer)) {
  SLIM_CHECK(sim != nullptr && session != nullptr);
  SLIM_CHECK(options.target_fps > 0.0);
  SLIM_CHECK(!options.dst.empty());
}

void MediaPipeline::Start() {
  started_at_ = sim_->now();
  // Section 7: applications request console bandwidth based on their needs. The library
  // knows its real offered rate (destination-sized CSCS payloads at the target fps), so it
  // replaces the server's attach-time default request with the honest number. A no-op when
  // pacing is off or the session is detached.
  const auto frame_bytes = static_cast<int64_t>(
      CscsPayloadBytes(options_.dst.w, options_.dst.h, options_.depth));
  offered_bps_ = static_cast<int64_t>(static_cast<double>(frame_bytes) * 8.0 *
                                      options_.target_fps);
  session_->RequestFlowBandwidth(session_->video_flow(), offered_bps_);
  Tick(0);
}

void MediaPipeline::Tick(int index) {
  // Frame pacing with catch-up: the player never runs ahead of the target rate, but when
  // production is slower than the frame period it produces back to back, skipping the
  // source frames whose presentation time has already passed (a real player drops frames to
  // keep audio sync rather than slipping ever further behind).
  const auto period = static_cast<SimDuration>(kSecond / options_.target_fps);
  if (sim_->now() - started_at_ >= options_.run_for) {
    return;
  }
  const SimTime due = started_at_ + static_cast<SimDuration>(index) * period;
  if (sim_->now() < due) {
    sim_->ScheduleAt(due, [this, index] { Tick(index); });
    return;
  }

  SimDuration produce_cost = 0;
  YuvImage frame = producer_(index, &produce_cost);
  const auto payload_bytes =
      static_cast<int64_t>(CscsPayloadBytes(frame.width(), frame.height(), options_.depth));
  const SimDuration send_cost = options_.cpu.SendCost(payload_bytes);
  cpu_busy_until_ = sim_->now() + produce_cost + send_cost;
  bytes_sent_ += payload_bytes;
  ++frames_sent_;
  sim_->ScheduleAt(cpu_busy_until_, [this, index, period, f = std::move(frame)]() {
    session_->SendVideoFrame(f, options_.dst, options_.depth);
    // Next frame: the first index whose presentation time has not passed, or the immediate
    // successor when we are keeping up.
    const auto elapsed = sim_->now() - started_at_;
    // Largest frame index whose presentation time has already passed: when we are late,
    // jump straight to it and produce immediately.
    const int latest_due = static_cast<int>(elapsed / period);
    const int next = std::max(index + 1, latest_due);
    frames_dropped_ += next - (index + 1);
    Tick(next);
  });
}

double MediaPipeline::AchievedFps() const {
  const SimDuration elapsed = sim_->now() - started_at_;
  if (elapsed <= 0) {
    return 0.0;
  }
  return frames_sent_ / ToSeconds(elapsed);
}

double MediaPipeline::AverageMbps() const {
  const SimDuration elapsed = sim_->now() - started_at_;
  if (elapsed <= 0) {
    return 0.0;
  }
  return static_cast<double>(bytes_sent_) * 8.0 / ToSeconds(elapsed) / 1e6;
}

}  // namespace slim
