#include "src/net/fabric.h"

#include <algorithm>

#include <utility>

#include "src/util/check.h"

namespace slim {

Link::Link(Simulator* sim, LinkOptions options, Rng rng)
    : sim_(sim), options_(options), rng_(rng) {
  SLIM_CHECK(sim != nullptr);
  SLIM_CHECK(options.bits_per_second > 0);
}

void Link::Send(Datagram dgram) {
  const int64_t wire_bytes = static_cast<int64_t>(dgram.payload.size()) + kDatagramOverheadBytes;
  if (queued_bytes_ + wire_bytes > options_.queue_limit_bytes) {
    ++stats_.datagrams_dropped_queue;
    return;
  }
  if (options_.loss_probability > 0.0 && rng_.NextBool(options_.loss_probability)) {
    ++stats_.datagrams_dropped_loss;
    return;
  }
  ++stats_.datagrams_sent;
  stats_.bytes_sent += wire_bytes;
  queued_bytes_ += wire_bytes;

  const SimTime start = std::max(sim_->now(), busy_until_);
  const SimTime done = start + TransmissionDelay(wire_bytes, options_.bits_per_second);
  busy_until_ = done;
  SimDuration extra = options_.propagation;
  if (options_.reorder_jitter > 0) {
    extra += static_cast<SimDuration>(rng_.NextBelow(static_cast<uint64_t>(
        options_.reorder_jitter)));
  }
  sim_->ScheduleAt(done + extra, [this, d = std::move(dgram), wire_bytes]() mutable {
    queued_bytes_ -= wire_bytes;
    if (deliver_) {
      deliver_(std::move(d));
    }
  });
}

Fabric::Fabric(Simulator* sim, FabricOptions options)
    : sim_(sim), options_(options), rng_(0xfab41c) {
  SLIM_CHECK(sim != nullptr);
}

NodeId Fabric::AddNode() { return AddNode(options_.link); }

NodeId Fabric::AddNode(const LinkOptions& link_options) {
  const NodeId id = static_cast<NodeId>(ports_.size());
  auto port = std::make_unique<Port>();
  LinkOptions up_options = link_options;
  up_options.queue_limit_bytes = std::max(up_options.queue_limit_bytes,
                                          options_.host_queue_bytes);
  port->up = std::make_unique<Link>(sim_, up_options, rng_.Split());
  port->down = std::make_unique<Link>(sim_, link_options, rng_.Split());
  // The uplink terminates at the switch, which forwards onto the destination's downlink.
  port->up->set_deliver([this](Datagram dgram) {
    if (dgram.dst >= ports_.size()) {
      ++misrouted_;
      return;
    }
    ports_[dgram.dst]->down->Send(std::move(dgram));
  });
  // The downlink terminates at the node's receive callback.
  Port* raw = port.get();
  port->down->set_deliver([raw](Datagram dgram) {
    if (raw->receive) {
      raw->receive(std::move(dgram));
    }
  });
  ports_.push_back(std::move(port));
  return id;
}

void Fabric::SetReceiver(NodeId node, ReceiveFn fn) {
  SLIM_CHECK(node < ports_.size());
  ports_[node]->receive = std::move(fn);
}

void Fabric::Send(Datagram dgram) {
  if (dgram.src >= ports_.size() || dgram.dst >= ports_.size()) {
    ++misrouted_;
    return;
  }
  ports_[dgram.src]->up->Send(std::move(dgram));
}

const LinkStats& Fabric::uplink_stats(NodeId node) const {
  SLIM_CHECK(node < ports_.size());
  return ports_[node]->up->stats();
}

const LinkStats& Fabric::downlink_stats(NodeId node) const {
  SLIM_CHECK(node < ports_.size());
  return ports_[node]->down->stats();
}

}  // namespace slim
